package predtop

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

// tinyGPT is a shrunken GPT config used to keep facade tests fast.
func tinyGPT() ModelConfig {
	cfg := GPT3Config()
	cfg.Layers = 6
	return cfg
}

func TestFacadeModelBuilding(t *testing.T) {
	m := BuildModel(tinyGPT())
	if m.NumSegments() != 8 {
		t.Fatalf("segments %d", m.NumSegments())
	}
	if BuildModel(MoEConfig()).NumSegments() != 34 {
		t.Fatal("MoE segments wrong")
	}
}

func TestFacadePlatforms(t *testing.T) {
	if len(Scenarios(Platform1())) != 3 || len(Scenarios(Platform2())) != 6 {
		t.Fatal("scenario counts diverge from Tables V/VI")
	}
	if len(Meshes(Platform2())) != 3 {
		t.Fatal("platform-2 meshes")
	}
}

func TestFacadeProfilingAndEncoding(t *testing.T) {
	m := BuildModel(tinyGPT())
	sc := Scenarios(Platform1())[0]
	trueLat, measured, ok := ProfileStage(m, StageSpec{Lo: 1, Hi: 3}, sc, DefaultProfiler())
	if !ok || trueLat <= 0 || measured <= 0 {
		t.Fatalf("profiling failed: %v %v %v", trueLat, measured, ok)
	}
	enc := NewEncoder(m, true)
	e := enc.Encode(StageSpec{Lo: 1, Hi: 3})
	if e.N() == 0 {
		t.Fatal("empty encoding")
	}
}

func TestFacadeDatasetAndSplit(t *testing.T) {
	m := BuildModel(tinyGPT())
	rng := rand.New(rand.NewSource(1))
	specs := SampleStages(m, rng, 10, 2)
	if len(specs) != 10 {
		t.Fatalf("sampled %d", len(specs))
	}
	if len(AllStages(m, 2)) != 8+7 {
		t.Fatal("stage universe wrong")
	}
	ds := BuildDataset(NewEncoder(m, true), specs, Scenarios(Platform1())[0], DefaultProfiler())
	if len(ds.Samples) == 0 {
		t.Fatal("empty dataset")
	}
	train, val, test := Split(rng, len(ds.Samples), 0.5, 0.2)
	if len(train)+len(val)+len(test) != len(ds.Samples) {
		t.Fatal("split does not partition")
	}
}

func TestFacadePredictors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, net := range []PredictorModel{
		NewDAGTransformer(rng, TransformerConfig{Layers: 1, Dim: 16, Heads: 2}),
		NewGCN(rng, GCNConfig{Layers: 2, Dim: 16}),
		NewGAT(rng, GATConfig{Layers: 1, Dim: 8, Heads: 2}),
	} {
		if net.Name() == "" || len(net.Params()) == 0 {
			t.Fatalf("predictor %T incomplete", net)
		}
	}
}

func TestFacadePipeline(t *testing.T) {
	lats := []float64{1, 3, 1, 1}
	if PipelineLatency(lats, 3) != 12 {
		t.Fatal("Eqn 4 wrong")
	}
	makespan, tasks := SimulatePipeline(lats, 3)
	if makespan != 12 || len(tasks) != 12 {
		t.Fatalf("simulator: %v, %d tasks", makespan, len(tasks))
	}
}

func TestFacadePlannerEndToEnd(t *testing.T) {
	m := BuildModel(tinyGPT())
	p := Platform1()
	meter := &CostMeter{}
	plan, ok := OptimizePlan(m.NumSegments(), p,
		FullProfiling(m, DefaultProfiler(), meter), PlanOptions{Microbatches: 4})
	if !ok {
		t.Fatal("no plan")
	}
	lat, ok := EvaluatePlan(m, plan, 4)
	if !ok || lat <= 0 {
		t.Fatalf("evaluation: %v %v", lat, ok)
	}
	if meter.Total() <= 0 {
		t.Fatal("cost not metered")
	}
	if _, ok := TrueStageLatency(m, StageSpec{Lo: 0, Hi: 2}, Meshes(p)[0]); !ok {
		t.Fatal("true stage latency failed")
	}
}

func TestFacadePlanReportAndWhatIf(t *testing.T) {
	m := BuildModel(tinyGPT())
	p := Platform1()
	meter := &CostMeter{}
	var stats PlanSearchStats
	plan, ok := OptimizePlan(m.NumSegments(), p,
		FullProfiling(m, DefaultProfiler(), meter),
		PlanOptions{Microbatches: 4, Stats: &stats})
	if !ok {
		t.Fatal("no plan")
	}
	if stats.LatencyLookups == 0 || stats.TmaxCandidates == 0 {
		t.Fatalf("search stats empty: %+v", stats)
	}
	report := BuildPlanReport(m, p, plan, PlanReportOptions{
		Version: "Alpa-Full", Microbatches: 4, Search: &stats, Meter: meter,
		Provenance: PlanProviderInfo{Source: "Alpa-Full"},
	})
	if len(report.Stages) != plan.NumStages() || report.Pipeline.Total <= 0 {
		t.Fatalf("report incomplete: %+v", report)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := report.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPlanReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Pipeline.Total != report.Pipeline.Total {
		t.Fatal("report did not round-trip")
	}

	pt, err := ParsePlanPerturbation("microbatches=8")
	if err != nil {
		t.Fatal(err)
	}
	scen, ok := PlanWhatIf(m, p, plan, 4, pt, PlanReportOptions{Version: "Alpa-Full"})
	if !ok {
		t.Fatal("what-if infeasible")
	}
	if scen.Pipeline.Total <= report.Pipeline.Total {
		t.Fatal("doubling microbatches must lengthen the iteration")
	}
	d := DiffPlanReports(report, scen)
	if d.Delta <= 0 || !strings.Contains(d.Render(), "microbatches=8") {
		t.Fatalf("diff wrong: %+v", d)
	}
}

func TestFacadeExtendedSchedules(t *testing.T) {
	lat := []float64{1, 3, 1, 1}
	if GPipeLatency(lat, 3, 0) < PipelineLatency(lat, 3) {
		t.Fatal("GPipe flush cannot beat 1F1B")
	}
	if InterleavedLatency(lat, 8, 4) >= PipelineLatency(lat, 8) {
		t.Fatal("interleaving must shrink the bubble")
	}
	if CommAwareLatency(lat, []float64{0, 0, 0}, 3) != PipelineLatency(lat, 3) {
		t.Fatal("zero comm must reduce to Eqn 4")
	}
	if b := BubbleFraction(lat, 3); b <= 0 || b >= 1 {
		t.Fatalf("bubble fraction %v", b)
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	m := BuildModel(tinyGPT())
	rng := rand.New(rand.NewSource(5))
	ds := BuildDataset(NewEncoder(m, true), SampleStages(m, rng, 10, 2),
		Scenarios(Platform1())[0], DefaultProfiler())
	train, val, _ := Split(rng, len(ds.Samples), 0.6, 0.2)
	net := NewDAGTransformer(rng, TransformerConfig{Layers: 1, Dim: 16, Heads: 2})
	trained, _ := Train(net, ds, train, val, TrainConfig{Epochs: 2, Patience: 2, BatchSize: 4})
	path := t.TempDir() + "/m.predtop"
	if err := SaveTrained(path, trained); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrained(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.PredictGraph(&ds.Samples[0]) != trained.PredictGraph(&ds.Samples[0]) {
		t.Fatal("round-trip prediction drift")
	}
}

// TestFacadeTraceCorrelation is the acceptance check for run correlation: one
// deterministic trace id, derived from the seed, must appear verbatim in the
// Prometheus exposition (predtop_run_info), every JSONL record, the Chrome
// trace metadata, traced log lines, and the flight-recorder dump — so a
// single grep joins every telemetry channel of a run.
func TestFacadeTraceCorrelation(t *testing.T) {
	tc := NewTraceContext(1, "predtop-train")
	id := tc.TraceID()
	if id == "" || id != NewTraceContext(1, "predtop-train").TraceID() {
		t.Fatalf("trace id not deterministic: %q", id)
	}

	// Prometheus exposition.
	reg := NewMetricsRegistry()
	reg.SetRunInfo(tc)
	var prom bytes.Buffer
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `predtop_run_info{name="predtop-train",trace_id="`+id+`"} 1`) {
		t.Fatalf("exposition missing run-info metric:\n%s", prom.String())
	}

	// JSONL events.
	var jsonl bytes.Buffer
	sink := NewEventSink(&jsonl)
	sink.SetTraceContext(tc)
	sink.Emit(struct {
		Event string `json:"event"`
	}{"run"})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), `"trace_id":"`+id+`"`) {
		t.Fatalf("JSONL record missing trace id: %q", jsonl.String())
	}

	// Chrome trace metadata.
	tb := NewTrace()
	tb.SetTraceID(id)
	tb.Begin("phases", "train").End()
	var chrome bytes.Buffer
	if err := tb.Render(&chrome); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome.String(), `"trace_id":"`+id+`"`) {
		t.Fatalf("Chrome trace missing trace id:\n%s", chrome.String())
	}

	// Traced progress log lines.
	var logBuf bytes.Buffer
	NewProgressLogger(&logBuf, false).WithTrace(tc).Printf("profiled %d stages", 7)
	if !strings.Contains(logBuf.String(), "["+id+"] ") {
		t.Fatalf("log line missing trace prefix: %q", logBuf.String())
	}

	// Flight-recorder dump.
	fr := NewFlightRecorder(16)
	fr.SetTraceContext(tc)
	fr.Note("run", "start")
	var dump bytes.Buffer
	if err := fr.Dump(&dump); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump.String(), `"trace_id":"`+id+`"`) {
		t.Fatalf("flight dump missing trace id:\n%s", dump.String())
	}
}

// TestFacadeKernelTune: ApplyKernelTune installs the requested split and
// publishes the predtop_kernel_* gauges so the formerly hardcoded constants
// are visible on /metrics.
func TestFacadeKernelTune(t *testing.T) {
	defer func() { _, _ = ApplyKernelTune("off", nil) }()
	reg := NewMetricsRegistry()
	res, err := ApplyKernelTune("4096", reg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "fixed" || res.MinFlops != 4096 {
		t.Fatalf("unexpected tune result: %+v", res)
	}
	if v := reg.Gauge("predtop_kernel_min_flops").Value(); v != 4096 {
		t.Fatalf("predtop_kernel_min_flops = %v, want 4096", v)
	}
	if v := reg.Gauge("predtop_kernel_row_block").Value(); v != float64(res.RowBlock) {
		t.Fatalf("predtop_kernel_row_block = %v, want %d", v, res.RowBlock)
	}
	var prom bytes.Buffer
	if err := WriteMetricsProm(&prom, reg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `predtop_kernel_tune_info{mode="fixed"} 1`) {
		t.Fatalf("exposition missing tune info gauge:\n%s", prom.String())
	}
	if _, err := ApplyKernelTune("sideways", reg); err == nil {
		t.Fatal("bad kernel-tune value accepted")
	}
}
