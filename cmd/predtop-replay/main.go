// Command predtop-replay drives a synthetic query load against a running
// predtop-serve daemon and reports client-side throughput and latency
// percentiles next to the daemon's own batching and cache counters (scraped
// from /metrics after the run).
//
// Usage:
//
//	predtop-replay -url http://127.0.0.1:9400 \
//	               [-n 100000] [-c 32] [-bench GPT-3,MoE] [-layers 8] \
//	               [-maxlen 3] [-model key] [-gtfrac 0.1] [-seed 1] \
//	               [-json result.json] [-runledger runs] [-quiet] [-smoke]
//
// -smoke issues a single query and exits 0 only when it was answered AND the
// daemon is not in SLO breach — the one-shot liveness-plus-health probe used
// by `make serve-smoke`. Without it, the full replay prints a human summary
// including the daemon's SLO verdict and (with -json) writes the ReplayResult
// for archiving next to the BENCH_*.json files; -quiet suppresses the
// summary (the exit status still reports errors); -runledger records the
// replay's manifest — the query-stream config plus throughput, latency, and
// cache readings as session metrics — into the given run-ledger directory
// for predtop-runs to list and inspect.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"predtop"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:9400", "base URL of a running predtop-serve daemon")
	queries := flag.Int("n", 100000, "total /predict queries")
	conc := flag.Int("c", 32, "concurrent clients")
	benches := flag.String("bench", "GPT-3", "comma-separated benchmark rotation (GPT-3, MoE)")
	layers := flag.Int("layers", 8, "benchmark depth override for every query (0 = Table IV)")
	maxLen := flag.Int("maxlen", 3, "max stage length in segments")
	model := flag.String("model", "", "registry key to query (empty = daemon's sole model)")
	gtFrac := flag.Float64("gtfrac", 0, "fraction of queries carrying a synthetic ground_truth")
	seed := flag.Int64("seed", 1, "query-stream seed")
	jsonPath := flag.String("json", "", "write the ReplayResult as JSON to this file")
	ledgerDir := flag.String("runledger", "", "record this replay's manifest into the given run-ledger directory (see predtop-runs)")
	quiet := flag.Bool("quiet", false, "suppress the human summary (exit status still reports errors)")
	smoke := flag.Bool("smoke", false, "one query, exit 0 iff it was answered")
	flag.Parse()

	if *smoke {
		res, err := predtop.ServeReplay(predtop.ServeReplayConfig{
			URL: *url, Queries: 1, Concurrency: 1, Seed: *seed,
			Benches: splitBenches(*benches), Layers: *layers, MaxLen: *maxLen, Model: *model,
		})
		if err != nil {
			log.Fatalf("smoke query failed: %v", err)
		}
		if res.Errors != 0 {
			log.Fatalf("smoke query answered with an error (%d/%d failed)", res.Errors, res.Queries)
		}
		if res.SLOBreached > 0 {
			log.Fatalf("smoke: daemon is in SLO breach (%.0f breach(es), 1m burn %.2f, 1m p99 %.4gs)",
				res.SLOBreaches, res.SLOBurn1m, res.SLOP991m)
		}
		fmt.Printf("smoke ok: 1 query in %.1fms (generation %.0f, %s)\n",
			res.P50ms, res.Generation, sloVerdict(res))
		return
	}

	started := time.Now()
	res, err := predtop.ServeReplay(predtop.ServeReplayConfig{
		URL: *url, Queries: *queries, Concurrency: *conc, Seed: *seed,
		Benches: splitBenches(*benches), Layers: *layers, MaxLen: *maxLen,
		Model: *model, GroundTruthFrac: *gtFrac,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		fmt.Printf("replay: %d queries, %d errors, %.2fs wall, %.0f qps\n",
			res.Queries, res.Errors, res.WallSeconds, res.QPS)
		fmt.Printf("latency: p50 %.2fms  p95 %.2fms  p99 %.2fms\n", res.P50ms, res.P95ms, res.P99ms)
		fmt.Printf("cache:   %d hits / %d misses (hit rate %.1f%%)\n",
			res.CacheHits, res.CacheMisses, res.CacheHitRate*100)
		fmt.Printf("batches: %d (mean size %.2f, max %.0f)\n", res.Batches, res.MeanBatch, res.MaxBatch)
		fmt.Printf("slo:     %s\n", sloVerdict(res))
	}
	if ledger := predtop.OpenRunLedger(*ledgerDir); ledger != nil {
		man := predtop.NewRunManifest("predtop-replay", *seed)
		man.Session.StartedUnix = started.Unix()
		man.SetTraceID(predtop.NewTraceContext(*seed, "predtop-replay").TraceID())
		// The query stream is seed-deterministic (canonical); everything the
		// daemon answered — throughput, latency, cache behavior — is a fact
		// about this particular session, so it lands in the session section.
		man.SetConfig("n", fmt.Sprint(*queries))
		man.SetConfig("c", fmt.Sprint(*conc))
		man.SetConfig("bench", strings.ToLower(*benches))
		man.SetConfig("layers", fmt.Sprint(*layers))
		man.SetConfig("maxlen", fmt.Sprint(*maxLen))
		man.SetConfig("gtfrac", fmt.Sprint(*gtFrac))
		man.SetOutput("url", *url)
		man.SetOutput("json", *jsonPath)
		man.RecordSessionMetric("qps", res.QPS)
		man.RecordSessionMetric("errors", float64(res.Errors))
		man.RecordSessionMetric("cache_hit_rate", res.CacheHitRate)
		man.RecordSessionMetric("mean_batch", res.MeanBatch)
		man.RecordBench("replay_p50", res.P50ms*1e6, 0)
		man.RecordBench("replay_p99", res.P99ms*1e6, 0)
		man.Session.WallSeconds = res.WallSeconds
		entry, err := ledger.Put(man)
		if err != nil {
			log.Fatal(err)
		}
		if !*quiet {
			fmt.Printf("recorded run %s in %s\n", entry.ID, ledger.Dir())
		}
	}
	if *jsonPath != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if res.Errors > 0 {
		os.Exit(1)
	}
}

// sloVerdict renders the daemon's scraped SLO state for the human summaries.
func sloVerdict(res *predtop.ServeReplayResult) string {
	if !res.SLOConfigured() {
		return "slo not configured"
	}
	state := "slo ok"
	if res.SLOBreached > 0 {
		state = "SLO BREACHED"
	}
	return fmt.Sprintf("%s: 1m p99 %.4gs, 1m burn %.2f, %.0f breach(es)",
		state, res.SLOP991m, res.SLOBurn1m, res.SLOBreaches)
}

func splitBenches(s string) []string {
	var out []string
	for _, b := range strings.Split(s, ",") {
		if b = strings.TrimSpace(b); b != "" {
			out = append(out, b)
		}
	}
	return out
}
