// Command predtop-eval regenerates the prediction-accuracy results of the
// paper: the MRE grids of Tables V and VI and their aggregations in Figs 3,
// 8, and 9.
//
// Usage:
//
//	predtop-eval [-preset quick|paper] [-bench GPT-3|MoE|all]
//	             [-platform 1|2|0] [-fig3frac 50] [-seed 0] [-out results.txt]
//	             [-metrics run.jsonl] [-trace run.json] [-listen :9090]
//	             [-profile spans.txt] [-driftmre 25] [-runledger runs] [-quiet]
//
// -metrics streams JSONL records (run config, one record per grid cell,
// per-family accuracy records, a final metrics snapshot); -trace writes a
// Chrome-tracing JSON timeline of the grid runs, loadable in Perfetto;
// -listen serves live telemetry over HTTP while the grids run (GET /metrics
// in Prometheus text format, GET /healthz, GET /debug/flightrecorder,
// /debug/pprof/); -profile writes a hierarchical self-time span tree covering
// grid phases and predictor layers; -driftmre arms the accuracy monitor's
// drift warning at the given MRE percentage; -seed overrides the preset's
// seed (0 keeps the preset default); -runledger records the run's manifest —
// per-table win rates, per-(family, mesh, op) accuracy stats, and per-family
// error-attribution snapshots — into the given run-ledger directory for
// predtop-runs to list, diff, and gate; -quiet silences the per-cell
// progress on stderr (the report itself still prints). All of them observe
// only — the tables are bitwise identical with or without them.
//
// Every run derives a deterministic trace id from the preset seed, stamped
// onto every telemetry channel (see predtop-train's doc comment); worker
// panics and SIGQUIT dump the flight recorder's recent events plus goroutine
// stacks.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"predtop/internal/cluster"
	"predtop/internal/experiments"
	"predtop/internal/obs"
	"predtop/internal/parallel"
	"predtop/internal/predictor"
	"predtop/internal/runledger"
)

func main() {
	presetName := flag.String("preset", "quick", "experiment scale: quick or paper")
	bench := flag.String("bench", "all", "benchmark: GPT-3, MoE, or all")
	platformSel := flag.Int("platform", 0, "platform index: 1, 2, or 0 for both")
	fig3frac := flag.Int("fig3frac", 50, "training fraction (%) for the Fig 3 comparison")
	ablate := flag.Bool("ablate", false, "also run the DAG-Transformer design ablation")
	tables := flag.Bool("tables", true, "run the MRE tables (disable for -ablate only)")
	workers := flag.Int("workers", 0, "worker goroutines for grid cells and training (0 = all cores, 1 = serial; results are bitwise identical)")
	out := flag.String("out", "", "also write the report to this file")
	metricsPath := flag.String("metrics", "", "write JSONL run records and a metrics snapshot to this file")
	tracePath := flag.String("trace", "", "write a Chrome-tracing (Perfetto) JSON file to this path")
	listen := flag.String("listen", "", "serve live telemetry (/metrics, /healthz, /debug/flightrecorder, /debug/pprof/) on this address, e.g. :9090")
	profilePath := flag.String("profile", "", "write a per-phase/per-layer self-time span profile to this file")
	driftMRE := flag.Float64("driftmre", 0, "warn and count drift when a grid cell family's test MRE exceeds this percentage (0 = off)")
	seed := flag.Int64("seed", 0, "override the preset's random seed (0 = preset default)")
	ledgerDir := flag.String("runledger", "", "record this run's manifest into the given run-ledger directory (see predtop-runs)")
	quiet := flag.Bool("quiet", false, "suppress per-cell progress on stderr (the report still prints)")
	flag.Parse()

	started := time.Now()
	var p experiments.Preset
	switch *presetName {
	case "quick":
		p = experiments.Quick()
	case "paper":
		p = experiments.Paper()
	case "paperlite":
		p = experiments.PaperLite()
	default:
		log.Fatalf("unknown preset %q", *presetName)
	}
	p.Workers = *workers
	if *seed != 0 {
		p.Seed = *seed
	}

	ledger := runledger.Open(*ledgerDir)
	var man *runledger.Manifest
	if ledger != nil {
		man = runledger.New("predtop-eval", p.Seed)
		man.Session.StartedUnix = started.Unix()
		man.SetConfig("preset", p.Name)
		man.SetConfig("bench", strings.ToLower(*bench))
		man.SetConfig("platform", fmt.Sprint(*platformSel))
		man.SetConfig("fig3frac", fmt.Sprint(*fig3frac))
		man.SetConfig("ablate", fmt.Sprint(*ablate))
		man.SetConfig("tables", fmt.Sprint(*tables))
		man.SetConfig("driftmre", fmt.Sprint(*driftMRE))
		man.SetOutput("out", *out)
		man.SetOutput("metrics", *metricsPath)
		man.SetOutput("trace", *tracePath)
		man.SetOutput("listen", *listen)
		man.SetOutput("profile", *profilePath)
		man.RecordSessionMetric("workers", float64(*workers))
	}

	tc := obs.NewTraceContext(p.Seed, "predtop-eval")
	man.SetTraceID(tc.TraceID())
	ctx := obs.WithTraceContext(context.Background(), tc)
	fr := obs.NewFlightRecorder(0)
	fr.SetTraceContext(tc)
	parallel.SetPanicHook(fr.PanicHook(os.Stderr))
	stopSig := fr.HandleSignals(os.Stderr)
	defer stopSig()

	var sink *obs.Sink
	var reg *obs.Registry
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		sink = obs.NewSink(f)
		sink.SetTraceContext(tc)
		sink.AttachFlight(fr)
		reg = obs.NewRegistry()
	}
	var tb *obs.TraceBuilder
	if *tracePath != "" {
		tb = obs.NewTrace()
		tb.SetTraceID(tc.TraceID())
	}
	if *listen != "" && reg == nil {
		reg = obs.NewRegistry()
	}
	reg.SetRunInfo(tc)
	var prof *obs.Profiler
	if *profilePath != "" {
		prof = obs.NewProfiler()
		if tb != nil {
			prof.AttachTrace(tb, "spans")
		}
	}
	progressLg := obs.NewLogger(os.Stderr, *quiet).WithTrace(tc)
	var acc *obs.AccuracyMonitor
	if reg != nil || sink != nil || man != nil {
		acc = obs.NewAccuracyMonitor(obs.AccuracyConfig{
			DriftThresholdPct: *driftMRE, Metrics: reg, Log: progressLg,
		})
	}
	if sink != nil || tb != nil || reg != nil || prof != nil || acc != nil {
		p.Obs = &obs.Observer{Metrics: reg, Events: sink, Trace: tb, Prof: prof, Acc: acc, Flight: fr, Ctx: tc}
	}
	progress := progressLg.Writer()
	if *listen != "" {
		srv, err := obs.StartServer(ctx, obs.ServerConfig{Addr: *listen, Registry: reg, Flight: fr})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		sampler := obs.StartRuntimeSampler(reg, 0)
		defer sampler.Stop()
		progressLg.Printf("serving telemetry at %s/metrics", srv.URL())
	}
	fr.Note("run", "start")
	sink.Emit(struct {
		Event    string `json:"event"`
		Tool     string `json:"tool"`
		Preset   string `json:"preset"`
		Bench    string `json:"bench"`
		Platform int    `json:"platform"`
		Workers  int    `json:"workers"`
	}{"run", "predtop-eval", p.Name, *bench, *platformSel, *workers})

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	var platforms []cluster.Platform
	if *platformSel == 0 || *platformSel == 1 {
		platforms = append(platforms, cluster.Platform1())
	}
	if *platformSel == 0 || *platformSel == 2 {
		platforms = append(platforms, cluster.Platform2())
	}

	var mreTables []*experiments.MRETable
	for _, b := range p.Benchmarks() {
		if !*tables {
			break
		}
		if *bench != "all" && !strings.EqualFold(*bench, b.Name) {
			continue
		}
		for _, plat := range platforms {
			tableName := "Table V"
			if plat.Index == 2 {
				tableName = "Table VI"
			}
			fmt.Fprintf(w, "=== %s — %s on %s (preset %s) ===\n", tableName, b.Name, plat.Name, p.Name)
			t := experiments.RunMRETable(p, b, plat, progress)
			fmt.Fprint(w, t.Render())
			fmt.Fprintf(w, "DAG Transformer wins %.1f%% of cells\n\n", t.WinRate(2)*100)
			man.RecordMetric(fmt.Sprintf("win_rate_%s_p%d", strings.ToLower(b.Name), plat.Index), t.WinRate(2)*100)
			mreTables = append(mreTables, t)
		}
	}

	if len(mreTables) > 0 {
		aggs := experiments.Aggregates(mreTables)
		fmt.Fprintln(w, experiments.RenderAggregates(aggs, false))
		fmt.Fprintln(w, experiments.RenderAggregates(aggs, true))
		fmt.Fprintln(w, experiments.RenderFig3(mreTables, *fig3frac))
	}

	if *ablate {
		for _, b := range p.Benchmarks() {
			if *bench != "all" && !strings.EqualFold(*bench, b.Name) {
				continue
			}
			rows := experiments.RunAblation(p, b, cluster.Platform1(), 0.5, progress)
			fmt.Fprintln(w, experiments.RenderAblation(b.Name, rows))
		}
	}

	if man != nil {
		// Merge each family's attribution across the tables so the manifest
		// answers "where do this predictor's residuals live" for the whole run.
		parts := map[string][]*predictor.Attribution{}
		for _, t := range mreTables {
			for fam, a := range t.Attribution {
				parts[fam] = append(parts[fam], a)
			}
		}
		for fam, as := range parts {
			man.RecordAttribution(fam, predictor.MergeAttributions(as...))
		}
		man.RecordAccuracy(acc)
	}

	acc.EmitTo(sink)
	sink.EmitMetrics(reg)
	if err := sink.Close(); err != nil {
		log.Fatalf("writing %s: %v", *metricsPath, err)
	}
	if *tracePath != "" {
		if err := tb.WriteFile(*tracePath); err != nil {
			log.Fatal(err)
		}
	}
	if *profilePath != "" {
		if err := prof.WriteFile(*profilePath); err != nil {
			log.Fatal(err)
		}
	}
	if man != nil {
		man.Session.WallSeconds = time.Since(started).Seconds()
		entry, err := ledger.Put(man)
		if err != nil {
			log.Fatal(err)
		}
		progressLg.Printf("recorded run %s in %s", entry.ID, ledger.Dir())
	}
}
