// Command predtop-plan regenerates the paper's Fig-10 use case: automatic
// parallelization-plan search on Platform 2 under five latency sources —
// vanilla Alpa with full and partial profiling, and PredTOP with GCN, GAT,
// and DAG Transformer predictors — reporting optimization cost (Fig 10a)
// and the ground-truth iteration latency of each optimized plan (Fig 10b).
//
// Usage:
//
//	predtop-plan [-preset quick|paper] [-bench GPT-3|MoE|all] [-seed 0]
//	             [-out results.txt]
//	             [-metrics run.jsonl] [-trace run.json] [-listen :9090]
//	             [-profile spans.txt] [-driftmre 25] [-runledger runs] [-quiet]
//	             [-report DIR] [-whatif SPEC] [-diff a.json,b.json]
//
// -report writes each feasible plan's provenance report — per-stage
// latencies, mesh assignments, Eqn-4 decomposition, predictor fingerprint,
// and search statistics — to DIR as both canonical JSON (byte-identical for
// a fixed seed) and a human-readable text rendering. -whatif replays every
// cached plan against a perturbed cluster without re-searching and prints
// the side-by-side latency diff; SPEC is comma-separated key=value pairs:
// microbatches=N (alias b), platform=1|2, and intranode-bw / internode-bw /
// internode-lat scale factors (e.g. "microbatches=32,internode-bw=x4").
// -diff compares two report files written by -report and exits.
//
// -metrics streams JSONL records (run config, one plan_run record per
// planner version, per-family accuracy records, a final metrics snapshot);
// -trace writes a Chrome-tracing JSON timeline — optimize/evaluate spans per
// planner version plus the simulated 1F1B schedule of each feasible plan —
// loadable in Perfetto; -listen serves live telemetry over HTTP while the
// search runs (GET /metrics in Prometheus text format, GET /healthz,
// GET /debug/flightrecorder, /debug/pprof/); -profile writes a hierarchical
// self-time span tree covering planner phases (estimate, DP) and embedded
// predictor training; -driftmre arms the accuracy monitor's drift warning at
// the given MRE percentage; -seed overrides the preset's seed (0 keeps the
// preset default); -runledger records the run's manifest — each feasible
// plan's Eqn-4 decomposition and predictor fingerprint plus per-key accuracy
// stats — into the given run-ledger directory for predtop-runs to list,
// diff, and gate; -quiet silences the per-run progress on stderr (the report
// still prints). All of them observe only — plans are bitwise identical with
// or without them.
//
// Every run derives a deterministic trace id from -seed, stamped onto every
// telemetry channel (see predtop-train's doc comment); worker panics and
// SIGQUIT dump the flight recorder's recent events plus goroutine stacks.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"predtop/internal/cluster"
	"predtop/internal/experiments"
	"predtop/internal/obs"
	"predtop/internal/parallel"
	"predtop/internal/planner"
	"predtop/internal/runledger"
)

func main() {
	presetName := flag.String("preset", "quick", "experiment scale: quick or paper")
	bench := flag.String("bench", "all", "benchmark: GPT-3, MoE, or all")
	workers := flag.Int("workers", 0, "worker goroutines for planner runs and training (0 = all cores, 1 = serial; results are bitwise identical)")
	out := flag.String("out", "", "also write the report to this file")
	metricsPath := flag.String("metrics", "", "write JSONL run records and a metrics snapshot to this file")
	tracePath := flag.String("trace", "", "write a Chrome-tracing (Perfetto) JSON file to this path")
	listen := flag.String("listen", "", "serve live telemetry (/metrics, /healthz, /debug/flightrecorder, /debug/pprof/) on this address, e.g. :9090")
	profilePath := flag.String("profile", "", "write a per-phase self-time span profile to this file")
	driftMRE := flag.Float64("driftmre", 0, "warn and count drift when a predictor family's validation MRE exceeds this percentage (0 = off)")
	seed := flag.Int64("seed", 0, "override the preset's random seed (0 = preset default)")
	ledgerDir := flag.String("runledger", "", "record this run's manifest into the given run-ledger directory (see predtop-runs)")
	quiet := flag.Bool("quiet", false, "suppress per-run progress on stderr (the report still prints)")
	reportDir := flag.String("report", "", "write per-plan provenance reports (JSON + text) into this directory")
	whatifSpec := flag.String("whatif", "", "replay each plan against a perturbation (e.g. \"microbatches=32,internode-bw=x4\") and print the latency diff")
	diffSpec := flag.String("diff", "", "compare two report files (\"base.json,scenario.json\"), print the diff, and exit")
	flag.Parse()

	if *diffSpec != "" {
		if err := runDiff(*diffSpec); err != nil {
			log.Fatal(err)
		}
		return
	}
	whatif, err := planner.ParsePerturbation(*whatifSpec)
	if err != nil {
		log.Fatal(err)
	}
	if *reportDir != "" {
		if err := os.MkdirAll(*reportDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	var p experiments.Preset
	switch *presetName {
	case "quick":
		p = experiments.Quick()
	case "paper":
		p = experiments.Paper()
	case "paperlite":
		p = experiments.PaperLite()
	default:
		log.Fatalf("unknown preset %q", *presetName)
	}
	p.Workers = *workers
	if *seed != 0 {
		p.Seed = *seed
	}

	started := time.Now()
	ledger := runledger.Open(*ledgerDir)
	var man *runledger.Manifest
	if ledger != nil {
		man = runledger.New("predtop-plan", p.Seed)
		man.Session.StartedUnix = started.Unix()
		man.SetConfig("preset", p.Name)
		man.SetConfig("bench", strings.ToLower(*bench))
		man.SetConfig("driftmre", fmt.Sprint(*driftMRE))
		if *whatifSpec != "" {
			man.SetConfig("whatif", whatif.String())
		}
		man.SetOutput("out", *out)
		man.SetOutput("metrics", *metricsPath)
		man.SetOutput("trace", *tracePath)
		man.SetOutput("listen", *listen)
		man.SetOutput("profile", *profilePath)
		man.SetOutput("report", *reportDir)
		man.RecordSessionMetric("workers", float64(*workers))
	}

	tc := obs.NewTraceContext(p.Seed, "predtop-plan")
	man.SetTraceID(tc.TraceID())
	ctx := obs.WithTraceContext(context.Background(), tc)
	fr := obs.NewFlightRecorder(0)
	fr.SetTraceContext(tc)
	parallel.SetPanicHook(fr.PanicHook(os.Stderr))
	stopSig := fr.HandleSignals(os.Stderr)
	defer stopSig()

	var sink *obs.Sink
	var reg *obs.Registry
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		sink = obs.NewSink(f)
		sink.SetTraceContext(tc)
		sink.AttachFlight(fr)
		reg = obs.NewRegistry()
	}
	var tb *obs.TraceBuilder
	if *tracePath != "" {
		tb = obs.NewTrace()
		tb.SetTraceID(tc.TraceID())
	}
	if *listen != "" && reg == nil {
		reg = obs.NewRegistry()
	}
	reg.SetRunInfo(tc)
	var prof *obs.Profiler
	if *profilePath != "" {
		prof = obs.NewProfiler()
		if tb != nil {
			prof.AttachTrace(tb, "spans")
		}
	}
	progressLg := obs.NewLogger(os.Stderr, *quiet).WithTrace(tc)
	var acc *obs.AccuracyMonitor
	if reg != nil || sink != nil || man != nil {
		acc = obs.NewAccuracyMonitor(obs.AccuracyConfig{
			DriftThresholdPct: *driftMRE, Metrics: reg, Log: progressLg,
		})
	}
	if sink != nil || tb != nil || reg != nil || prof != nil || *reportDir != "" || *whatifSpec != "" || acc != nil {
		p.Obs = &obs.Observer{Metrics: reg, Events: sink, Trace: tb, Prof: prof, Acc: acc, Flight: fr, Ctx: tc}
	}
	progress := progressLg.Writer()
	if *listen != "" {
		srv, err := obs.StartServer(ctx, obs.ServerConfig{Addr: *listen, Registry: reg, Flight: fr})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		sampler := obs.StartRuntimeSampler(reg, 0)
		defer sampler.Stop()
		progressLg.Printf("serving telemetry at %s/metrics", srv.URL())
	}
	fr.Note("run", "start")
	sink.Emit(struct {
		Event   string `json:"event"`
		Tool    string `json:"tool"`
		Preset  string `json:"preset"`
		Bench   string `json:"bench"`
		Workers int    `json:"workers"`
	}{"run", "predtop-plan", p.Name, *bench, *workers})

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	for _, b := range p.Benchmarks() {
		if *bench != "all" && !strings.EqualFold(*bench, b.Name) {
			continue
		}
		runs := experiments.RunFig10(p, b, progress)
		fmt.Fprintln(w, experiments.RenderFig10(b.Name, runs))
		for _, r := range runs {
			if !r.OK {
				continue
			}
			man.RecordPlan(r.Report)
			if man != nil {
				key := slug(b.Name) + "-" + slug(r.Version)
				man.RecordMetric("optimize_seconds_"+key, r.OptimizeSeconds)
				man.RecordMetric("iteration_latency_"+key, r.IterationLatency)
			}
		}
		if *reportDir != "" {
			if err := saveReports(*reportDir, b.Name, runs); err != nil {
				log.Fatal(err)
			}
		}
		if !whatif.IsZero() {
			if err := runWhatIf(w, p, b, runs, whatif, *reportDir); err != nil {
				log.Fatal(err)
			}
		}
	}

	man.RecordAccuracy(acc)

	acc.EmitTo(sink)
	sink.EmitMetrics(reg)
	if err := sink.Close(); err != nil {
		log.Fatalf("writing %s: %v", *metricsPath, err)
	}
	if *tracePath != "" {
		if err := tb.WriteFile(*tracePath); err != nil {
			log.Fatal(err)
		}
	}
	if *profilePath != "" {
		if err := prof.WriteFile(*profilePath); err != nil {
			log.Fatal(err)
		}
	}
	if man != nil {
		man.Session.WallSeconds = time.Since(started).Seconds()
		entry, err := ledger.Put(man)
		if err != nil {
			log.Fatal(err)
		}
		progressLg.Printf("recorded run %s in %s", entry.ID, ledger.Dir())
	}
}

// slug renders a benchmark or version name as a filename component.
func slug(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, s)
}

// saveReports writes each feasible run's provenance report to dir as
// <bench>-<version>.json (canonical, byte-identical per seed) and
// <bench>-<version>.txt (human rendering).
func saveReports(dir, bench string, runs []experiments.PlanRun) error {
	for _, r := range runs {
		if r.Report == nil {
			continue
		}
		base := filepath.Join(dir, slug(bench)+"-"+slug(r.Version))
		if err := r.Report.SaveFile(base + ".json"); err != nil {
			return err
		}
		if err := os.WriteFile(base+".txt", []byte(r.Report.Render()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// runWhatIf replays every feasible plan against the perturbation and prints
// the per-stage/total latency diff; scenario reports also land in reportDir
// (as *-whatif.json) when -report is set.
func runWhatIf(w io.Writer, p experiments.Preset, b experiments.Benchmark, runs []experiments.PlanRun, pt planner.Perturbation, reportDir string) error {
	mdl, _ := experiments.Fig10Model(p, b)
	platform := cluster.Platform2()
	fmt.Fprintf(w, "what-if scenario: %s (%s benchmark)\n", pt.String(), b.Name)
	for _, r := range runs {
		if !r.OK || r.Report == nil {
			continue
		}
		scen, ok := planner.WhatIf(mdl, platform, r.Plan, p.Microbatches, pt, planner.ReportOptions{
			Version:    r.Version,
			TraceID:    r.Report.TraceID,
			Provenance: r.Report.Provenance,
		})
		if !ok {
			fmt.Fprintf(w, "[%s] plan infeasible under scenario %s\n", r.Version, pt.String())
			continue
		}
		fmt.Fprintf(w, "[%s]\n%s", r.Version, planner.Diff(r.Report, scen).Render())
		if reportDir != "" {
			path := filepath.Join(reportDir, slug(b.Name)+"-"+slug(r.Version)+"-whatif.json")
			if err := scen.SaveFile(path); err != nil {
				return err
			}
		}
	}
	fmt.Fprintln(w)
	return nil
}

// runDiff loads two report files and prints their side-by-side diff.
func runDiff(spec string) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-diff wants \"base.json,scenario.json\", got %q", spec)
	}
	base, err := planner.LoadReport(strings.TrimSpace(parts[0]))
	if err != nil {
		return err
	}
	scen, err := planner.LoadReport(strings.TrimSpace(parts[1]))
	if err != nil {
		return err
	}
	fmt.Print(planner.Diff(base, scen).Render())
	return nil
}
