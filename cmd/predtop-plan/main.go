// Command predtop-plan regenerates the paper's Fig-10 use case: automatic
// parallelization-plan search on Platform 2 under five latency sources —
// vanilla Alpa with full and partial profiling, and PredTOP with GCN, GAT,
// and DAG Transformer predictors — reporting optimization cost (Fig 10a)
// and the ground-truth iteration latency of each optimized plan (Fig 10b).
//
// Usage:
//
//	predtop-plan [-preset quick|paper] [-bench GPT-3|MoE|all] [-out results.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"predtop/internal/experiments"
)

func main() {
	presetName := flag.String("preset", "quick", "experiment scale: quick or paper")
	bench := flag.String("bench", "all", "benchmark: GPT-3, MoE, or all")
	workers := flag.Int("workers", 0, "worker goroutines for planner runs and training (0 = all cores, 1 = serial; results are bitwise identical)")
	out := flag.String("out", "", "also write the report to this file")
	flag.Parse()

	var p experiments.Preset
	switch *presetName {
	case "quick":
		p = experiments.Quick()
	case "paper":
		p = experiments.Paper()
	case "paperlite":
		p = experiments.PaperLite()
	default:
		log.Fatalf("unknown preset %q", *presetName)
	}
	p.Workers = *workers

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	for _, b := range p.Benchmarks() {
		if *bench != "all" && !strings.EqualFold(*bench, b.Name) {
			continue
		}
		runs := experiments.RunFig10(p, b, os.Stderr)
		fmt.Fprintln(w, experiments.RenderFig10(b.Name, runs))
	}
}
