// Command predtop-plan regenerates the paper's Fig-10 use case: automatic
// parallelization-plan search on Platform 2 under five latency sources —
// vanilla Alpa with full and partial profiling, and PredTOP with GCN, GAT,
// and DAG Transformer predictors — reporting optimization cost (Fig 10a)
// and the ground-truth iteration latency of each optimized plan (Fig 10b).
//
// Usage:
//
//	predtop-plan [-preset quick|paper] [-bench GPT-3|MoE|all] [-out results.txt]
//	             [-metrics run.jsonl] [-trace run.json] [-listen :9090]
//	             [-profile spans.txt] [-driftmre 25] [-quiet]
//
// -metrics streams JSONL records (run config, one plan_run record per
// planner version, per-family accuracy records, a final metrics snapshot);
// -trace writes a Chrome-tracing JSON timeline — optimize/evaluate spans per
// planner version plus the simulated 1F1B schedule of each feasible plan —
// loadable in Perfetto; -listen serves live telemetry over HTTP while the
// search runs (GET /metrics in Prometheus text format, GET /healthz,
// GET /debug/flightrecorder, /debug/pprof/); -profile writes a hierarchical
// self-time span tree covering planner phases (estimate, DP) and embedded
// predictor training; -driftmre arms the accuracy monitor's drift warning at
// the given MRE percentage; -quiet silences the per-run progress on stderr
// (the report still prints). All of them observe only — plans are bitwise
// identical with or without them.
//
// Every run derives a deterministic trace id from -seed, stamped onto every
// telemetry channel (see predtop-train's doc comment); worker panics and
// SIGQUIT dump the flight recorder's recent events plus goroutine stacks.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"predtop/internal/experiments"
	"predtop/internal/obs"
	"predtop/internal/parallel"
)

func main() {
	presetName := flag.String("preset", "quick", "experiment scale: quick or paper")
	bench := flag.String("bench", "all", "benchmark: GPT-3, MoE, or all")
	workers := flag.Int("workers", 0, "worker goroutines for planner runs and training (0 = all cores, 1 = serial; results are bitwise identical)")
	out := flag.String("out", "", "also write the report to this file")
	metricsPath := flag.String("metrics", "", "write JSONL run records and a metrics snapshot to this file")
	tracePath := flag.String("trace", "", "write a Chrome-tracing (Perfetto) JSON file to this path")
	listen := flag.String("listen", "", "serve live telemetry (/metrics, /healthz, /debug/flightrecorder, /debug/pprof/) on this address, e.g. :9090")
	profilePath := flag.String("profile", "", "write a per-phase self-time span profile to this file")
	driftMRE := flag.Float64("driftmre", 0, "warn and count drift when a predictor family's validation MRE exceeds this percentage (0 = off)")
	quiet := flag.Bool("quiet", false, "suppress per-run progress on stderr (the report still prints)")
	flag.Parse()

	var p experiments.Preset
	switch *presetName {
	case "quick":
		p = experiments.Quick()
	case "paper":
		p = experiments.Paper()
	case "paperlite":
		p = experiments.PaperLite()
	default:
		log.Fatalf("unknown preset %q", *presetName)
	}
	p.Workers = *workers

	tc := obs.NewTraceContext(p.Seed, "predtop-plan")
	ctx := obs.WithTraceContext(context.Background(), tc)
	fr := obs.NewFlightRecorder(0)
	fr.SetTraceContext(tc)
	parallel.SetPanicHook(fr.PanicHook(os.Stderr))
	stopSig := fr.HandleSignals(os.Stderr)
	defer stopSig()

	var sink *obs.Sink
	var reg *obs.Registry
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		sink = obs.NewSink(f)
		sink.SetTraceContext(tc)
		sink.AttachFlight(fr)
		reg = obs.NewRegistry()
	}
	var tb *obs.TraceBuilder
	if *tracePath != "" {
		tb = obs.NewTrace()
		tb.SetTraceID(tc.TraceID())
	}
	if *listen != "" && reg == nil {
		reg = obs.NewRegistry()
	}
	reg.SetRunInfo(tc)
	var prof *obs.Profiler
	if *profilePath != "" {
		prof = obs.NewProfiler()
		if tb != nil {
			prof.AttachTrace(tb, "spans")
		}
	}
	progressLg := obs.NewLogger(os.Stderr, *quiet).WithTrace(tc)
	var acc *obs.AccuracyMonitor
	if reg != nil || sink != nil {
		acc = obs.NewAccuracyMonitor(obs.AccuracyConfig{
			DriftThresholdPct: *driftMRE, Metrics: reg, Log: progressLg,
		})
	}
	if sink != nil || tb != nil || reg != nil || prof != nil {
		p.Obs = &obs.Observer{Metrics: reg, Events: sink, Trace: tb, Prof: prof, Acc: acc, Flight: fr, Ctx: tc}
	}
	progress := progressLg.Writer()
	if *listen != "" {
		srv, err := obs.StartServer(ctx, obs.ServerConfig{Addr: *listen, Registry: reg, Flight: fr})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		sampler := obs.StartRuntimeSampler(reg, 0)
		defer sampler.Stop()
		progressLg.Printf("serving telemetry at %s/metrics", srv.URL())
	}
	fr.Note("run", "start")
	sink.Emit(struct {
		Event   string `json:"event"`
		Tool    string `json:"tool"`
		Preset  string `json:"preset"`
		Bench   string `json:"bench"`
		Workers int    `json:"workers"`
	}{"run", "predtop-plan", p.Name, *bench, *workers})

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	for _, b := range p.Benchmarks() {
		if *bench != "all" && !strings.EqualFold(*bench, b.Name) {
			continue
		}
		runs := experiments.RunFig10(p, b, progress)
		fmt.Fprintln(w, experiments.RenderFig10(b.Name, runs))
	}

	acc.EmitTo(sink)
	sink.EmitMetrics(reg)
	if err := sink.Close(); err != nil {
		log.Fatalf("writing %s: %v", *metricsPath, err)
	}
	if *tracePath != "" {
		if err := tb.WriteFile(*tracePath); err != nil {
			log.Fatal(err)
		}
	}
	if *profilePath != "" {
		if err := prof.WriteFile(*profilePath); err != nil {
			log.Fatal(err)
		}
	}
}
