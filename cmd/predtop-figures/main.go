// Command predtop-figures regenerates the paper's motivating figures:
// Fig 2 (latency variation across random parallelization plans) and Fig 6
// (the 1F1B pipeline timeline behind the Eqn-4 white-box model).
//
// Usage:
//
//	predtop-figures [-preset quick|paper] [-fig 2|6|0] [-out results.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"predtop/internal/experiments"
)

func main() {
	presetName := flag.String("preset", "quick", "experiment scale: quick or paper")
	fig := flag.Int("fig", 0, "figure to regenerate: 2, 6, or 0 for all")
	out := flag.String("out", "", "also write the report to this file")
	flag.Parse()

	var p experiments.Preset
	switch *presetName {
	case "quick":
		p = experiments.Quick()
	case "paper":
		p = experiments.Paper()
	case "paperlite":
		p = experiments.PaperLite()
	default:
		log.Fatalf("unknown preset %q", *presetName)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *fig == 0 || *fig == 2 {
		for _, r := range experiments.RunFig2(p, os.Stderr) {
			fmt.Fprintln(w, r.Render())
		}
	}
	if *fig == 0 || *fig == 6 {
		fmt.Fprintln(w, experiments.RenderFig6())
	}
}
