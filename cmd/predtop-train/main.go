// Command predtop-train profiles a sample of a benchmark's pipeline stages
// under one runtime scenario, trains a latency predictor on them, reports
// its held-out accuracy, and saves the trained model for predtop-predict.
//
// Usage:
//
//	predtop-train -bench GPT-3 -platform 2 -mesh 1 -conf 1 -arch tran \
//	              -layers 12 -samples 0 -maxlen 3 -epochs 30 -o model.predtop
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"predtop"
)

func main() {
	bench := flag.String("bench", "GPT-3", "benchmark: GPT-3 or MoE")
	platformSel := flag.Int("platform", 2, "platform index: 1 or 2")
	meshIdx := flag.Int("mesh", 1, "mesh index (Table II)")
	confIdx := flag.Int("conf", 1, "configuration index (Table III)")
	arch := flag.String("arch", "tran", "architecture: tran, gcn, or gat")
	layers := flag.Int("layers", 0, "override benchmark depth (0 = Table IV)")
	samples := flag.Int("samples", 0, "stages to profile (0 = whole universe)")
	maxLen := flag.Int("maxlen", 3, "max stage length in segments")
	epochs := flag.Int("epochs", 30, "training epochs (cosine-decay horizon)")
	trainFrac := flag.Float64("trainfrac", 0.5, "training fraction")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "data-parallel training workers (0 = all cores, 1 = serial; results are bitwise identical)")
	out := flag.String("o", "model.predtop", "output model path")
	flag.Parse()

	cfg := predtop.GPT3Config()
	if strings.EqualFold(*bench, "MoE") {
		cfg = predtop.MoEConfig()
	}
	if *layers > 0 {
		cfg.Layers = *layers
	}
	model := predtop.BuildModel(cfg)

	platform := predtop.Platform2()
	if *platformSel == 1 {
		platform = predtop.Platform1()
	}
	var scenario predtop.Scenario
	found := false
	for _, sc := range predtop.Scenarios(platform) {
		if sc.Mesh.Index == *meshIdx && sc.Config.Index == *confIdx {
			scenario, found = sc, true
		}
	}
	if !found {
		log.Fatalf("no scenario mesh=%d conf=%d on platform %d", *meshIdx, *confIdx, *platformSel)
	}

	rng := rand.New(rand.NewSource(*seed))
	specs := predtop.SampleStages(model, rng, *samples, *maxLen)
	enc := predtop.NewEncoder(model, true)
	ds := predtop.BuildDataset(enc, specs, scenario, predtop.DefaultProfiler())
	fmt.Printf("profiled %d stages of %s under %v\n", len(ds.Samples), cfg.Name, scenario)

	var net predtop.PredictorModel
	switch strings.ToLower(*arch) {
	case "gcn":
		net = predtop.NewGCN(rng, predtop.GCNConfig{Layers: 6, Dim: 64})
	case "gat":
		net = predtop.NewGAT(rng, predtop.GATConfig{Layers: 6, Dim: 24, Heads: 3})
	case "tran":
		net = predtop.NewDAGTransformer(rng, predtop.TransformerConfig{Layers: 2, Dim: 32, Heads: 2, FFNDim: 64})
	default:
		log.Fatalf("unknown architecture %q", *arch)
	}

	train, val, test := predtop.Split(rng, len(ds.Samples), *trainFrac, 0.1)
	trained, res := predtop.Train(net, ds, train, val, predtop.TrainConfig{
		Epochs: *epochs, Patience: *epochs / 3, BatchSize: 4, Seed: *seed, Workers: *workers,
	})
	fmt.Printf("trained %s for %d epochs (best val %.4f) in %.1fs\n",
		net.Name(), res.EpochsRun, res.BestValLoss, res.WallSeconds)
	fmt.Printf("test MRE: %.2f%% over %d held-out stages\n", trained.MRE(ds, test), len(test))

	if err := predtop.SaveTrained(*out, trained); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved model to %s\n", *out)
}
