// Command predtop-train profiles a sample of a benchmark's pipeline stages
// under one runtime scenario, trains a latency predictor on them, reports
// its held-out accuracy, and saves the trained model for predtop-predict.
//
// Usage:
//
//	predtop-train -bench GPT-3 -platform 2 -mesh 1 -conf 1 -arch tran \
//	              -layers 12 -samples 0 -maxlen 3 -epochs 30 -o model.predtop \
//	              [-metrics run.jsonl] [-trace run.json] [-listen :9090] \
//	              [-profile spans.txt] [-driftmre 25] [-kernel-tune auto] \
//	              [-runledger runs] [-quiet]
//
// -metrics streams JSONL records (run config, one record per epoch, a final
// summary, accuracy records, and a metrics snapshot); -trace writes a
// Chrome-tracing JSON file (profile/train/evaluate phases plus one slice per
// training epoch) loadable in Perfetto; -listen serves live telemetry over
// HTTP while the run is in flight — GET /metrics in Prometheus text format
// (training counters and histograms plus sampled Go runtime gauges),
// GET /healthz, GET /debug/flightrecorder, and /debug/pprof/; -profile writes
// a hierarchical self-time span tree attributing wall time to training phases
// and individual predictor layers; -driftmre arms the accuracy monitor's
// drift warning at the given MRE percentage; -runledger records the run's
// manifest — config fingerprint, trained-weight fingerprint, held-out MRE,
// per-key accuracy stats, and an error-attribution snapshot — into the given
// run-ledger directory for predtop-runs to list, diff, and gate; -quiet
// suppresses progress lines. All of them observe only — trained weights are
// bitwise identical with or without them.
//
// Every run derives a deterministic trace id from -seed; the same id appears
// in the Prometheus exposition (predtop_run_info), every JSONL record, the
// Chrome trace metadata, progress log lines, and flight-recorder dumps, so a
// single grep correlates all channels of one run. A panic in any parallel
// worker dumps the flight recorder's recent-event window plus goroutine
// stacks to stderr as JSONL before the panic surfaces, as does SIGQUIT.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"time"

	"predtop"
)

func main() {
	bench := flag.String("bench", "GPT-3", "benchmark: GPT-3 or MoE")
	platformSel := flag.Int("platform", 2, "platform index: 1 or 2")
	meshIdx := flag.Int("mesh", 1, "mesh index (Table II)")
	confIdx := flag.Int("conf", 1, "configuration index (Table III)")
	arch := flag.String("arch", "tran", "architecture: tran, gcn, or gat")
	layers := flag.Int("layers", 0, "override benchmark depth (0 = Table IV)")
	samples := flag.Int("samples", 0, "stages to profile (0 = whole universe)")
	maxLen := flag.Int("maxlen", 3, "max stage length in segments")
	epochs := flag.Int("epochs", 30, "training epochs (cosine-decay horizon)")
	trainFrac := flag.Float64("trainfrac", 0.5, "training fraction")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "data-parallel training workers (0 = all cores, 1 = serial; results are bitwise identical)")
	out := flag.String("o", "model.predtop", "output model path")
	metricsPath := flag.String("metrics", "", "write JSONL run records and a metrics snapshot to this file")
	tracePath := flag.String("trace", "", "write a Chrome-tracing (Perfetto) JSON file to this path")
	listen := flag.String("listen", "", "serve live telemetry (/metrics, /healthz, /debug/flightrecorder, /debug/pprof/) on this address, e.g. :9090")
	profilePath := flag.String("profile", "", "write a per-phase/per-layer self-time span profile to this file")
	driftMRE := flag.Float64("driftmre", 0, "warn and count drift when held-out MRE exceeds this percentage (0 = off)")
	kernelTune := flag.String("kernel-tune", os.Getenv("PREDTOP_KERNEL_TUNE"), "matmul kernel split: off (built-in defaults), auto (measure on this host), or a fixed crossover in multiply-adds")
	ledgerDir := flag.String("runledger", "", "record this run's manifest into the given run-ledger directory (see predtop-runs)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	started := time.Now()
	ledger := predtop.OpenRunLedger(*ledgerDir)
	var man *predtop.RunManifest
	if ledger != nil {
		man = predtop.NewRunManifest("predtop-train", *seed)
		man.Session.StartedUnix = started.Unix()
	}

	// One deterministic correlation identity per run: seed in, trace id out.
	tc := predtop.NewTraceContext(*seed, "predtop-train")
	ctx := predtop.WithTraceContext(context.Background(), tc)
	fr := predtop.NewFlightRecorder(0)
	fr.SetTraceContext(tc)
	predtop.SetWorkerPanicHook(fr.PanicHook(os.Stderr))
	stopSig := fr.HandleSignals(os.Stderr)
	defer stopSig()

	lg := predtop.NewProgressLogger(os.Stdout, *quiet).WithTrace(tc)
	var sink *predtop.EventSink
	var reg *predtop.MetricsRegistry
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		sink = predtop.NewEventSink(f)
		sink.SetTraceContext(tc)
		sink.AttachFlight(fr)
		reg = predtop.NewMetricsRegistry()
	}
	var tb *predtop.TraceBuilder
	if *tracePath != "" {
		tb = predtop.NewTrace()
		tb.SetTraceID(tc.TraceID())
	}
	if *listen != "" {
		if reg == nil {
			reg = predtop.NewMetricsRegistry()
		}
		srv, err := predtop.StartMetricsServer(ctx, predtop.MetricsServerConfig{
			Addr: *listen, Registry: reg, Flight: fr,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		sampler := predtop.StartRuntimeSampler(reg, 0)
		defer sampler.Stop()
		lg.Printf("serving telemetry at %s/metrics", srv.URL())
	}
	reg.SetRunInfo(tc)
	tune, err := predtop.ApplyKernelTune(*kernelTune, reg)
	if err != nil {
		log.Fatal(err)
	}
	if tune.Mode != "off" {
		lg.Printf("kernel tune %s: crossover %d multiply-adds, row block %d", tune.Mode, tune.MinFlops, tune.RowBlock)
	}
	var prof *predtop.SpanProfiler
	if *profilePath != "" {
		prof = predtop.NewSpanProfiler()
		if tb != nil {
			prof.AttachTrace(tb, "spans")
		}
	}
	var acc *predtop.AccuracyMonitor
	if reg != nil || sink != nil || man != nil {
		acc = predtop.NewAccuracyMonitor(predtop.AccuracyConfig{
			DriftThresholdPct: *driftMRE, MinSamples: 1, Metrics: reg, Log: lg,
		})
	}

	cfg := predtop.GPT3Config()
	if strings.EqualFold(*bench, "MoE") {
		cfg = predtop.MoEConfig()
	}
	if *layers > 0 {
		cfg.Layers = *layers
	}
	model := predtop.BuildModel(cfg)

	platform := predtop.Platform2()
	if *platformSel == 1 {
		platform = predtop.Platform1()
	}
	var scenario predtop.Scenario
	found := false
	for _, sc := range predtop.Scenarios(platform) {
		if sc.Mesh.Index == *meshIdx && sc.Config.Index == *confIdx {
			scenario, found = sc, true
		}
	}
	if !found {
		log.Fatalf("no scenario mesh=%d conf=%d on platform %d", *meshIdx, *confIdx, *platformSel)
	}

	fr.Note("run", "start")
	sink.Emit(struct {
		Event    string `json:"event"`
		Tool     string `json:"tool"`
		Bench    string `json:"bench"`
		Platform int    `json:"platform"`
		Mesh     int    `json:"mesh"`
		Conf     int    `json:"conf"`
		Arch     string `json:"arch"`
		MaxLen   int    `json:"maxlen"`
		Epochs   int    `json:"epochs"`
		Seed     int64  `json:"seed"`
		Workers  int    `json:"workers"`
	}{"run", "predtop-train", cfg.Name, *platformSel, *meshIdx, *confIdx, *arch, *maxLen, *epochs, *seed, *workers})

	// Result-determining flags land in the manifest's canonical section;
	// paths, addresses, and worker counts are session facts (reruns at any
	// worker count are bitwise identical, so they must not move the run id).
	man.SetTraceID(tc.TraceID())
	man.SetConfig("bench", cfg.Name)
	man.SetConfig("platform", fmt.Sprint(*platformSel))
	man.SetConfig("mesh", fmt.Sprint(*meshIdx))
	man.SetConfig("conf", fmt.Sprint(*confIdx))
	man.SetConfig("arch", strings.ToLower(*arch))
	man.SetConfig("layers", fmt.Sprint(cfg.Layers))
	man.SetConfig("samples", fmt.Sprint(*samples))
	man.SetConfig("maxlen", fmt.Sprint(*maxLen))
	man.SetConfig("epochs", fmt.Sprint(*epochs))
	man.SetConfig("trainfrac", fmt.Sprint(*trainFrac))
	man.SetConfig("driftmre", fmt.Sprint(*driftMRE))
	man.SetOutput("o", *out)
	man.SetOutput("metrics", *metricsPath)
	man.SetOutput("trace", *tracePath)
	man.SetOutput("listen", *listen)
	man.SetOutput("profile", *profilePath)
	if man != nil {
		man.RecordSessionMetric("workers", float64(*workers))
	}

	rng := rand.New(rand.NewSource(*seed))
	profSpan := tb.Begin("phases", "profile")
	specs := predtop.SampleStages(model, rng, *samples, *maxLen)
	enc := predtop.NewEncoder(model, true)
	ds := predtop.BuildDataset(enc, specs, scenario, predtop.DefaultProfiler())
	profSpan.End()
	fr.Note("run", "profiled")
	lg.Printf("profiled %d stages of %s under %v", len(ds.Samples), cfg.Name, scenario)

	var net predtop.PredictorModel
	switch strings.ToLower(*arch) {
	case "gcn":
		net = predtop.NewGCN(rng, predtop.GCNConfig{Layers: 6, Dim: 64})
	case "gat":
		net = predtop.NewGAT(rng, predtop.GATConfig{Layers: 6, Dim: 24, Heads: 3})
	case "tran":
		net = predtop.NewDAGTransformer(rng, predtop.TransformerConfig{Layers: 2, Dim: 32, Heads: 2, FFNDim: 64})
	default:
		log.Fatalf("unknown architecture %q", *arch)
	}

	// Epoch slices carry cumulative wall offsets from the start of training,
	// anchored at the trace's wall-clock position so they align with the
	// Begin/End phase spans.
	trainStart := tb.Since()
	prevWall := 0.0
	hooks := &predtop.TrainHooks{
		Metrics:  reg,
		Profiler: prof,
		Flight:   fr,
		OnEpoch: func(e predtop.EpochStats) {
			sink.Emit(struct {
				Event string `json:"event"`
				predtop.EpochStats
			}{"epoch", e})
			tb.Slice("epochs", fmt.Sprintf("epoch %d", e.Epoch), trainStart+prevWall, e.WallSeconds-prevWall)
			prevWall = e.WallSeconds
		},
		OnEarlyStop: func(epoch int) {
			tb.Instant("epochs", "early stop")
			sink.Emit(struct {
				Event string `json:"event"`
				Epoch int    `json:"epoch"`
			}{"early_stop", epoch})
			lg.Printf("early stop at epoch %d", epoch)
		},
		OnRestore: func(bestEpoch int, bestValLoss float64) {
			sink.Emit(struct {
				Event       string  `json:"event"`
				BestEpoch   int     `json:"best_epoch"`
				BestValLoss float64 `json:"best_val_loss"`
			}{"restore", bestEpoch, bestValLoss})
		},
	}

	train, val, test := predtop.Split(rng, len(ds.Samples), *trainFrac, 0.1)
	trainSpan := tb.Begin("phases", "train")
	trained, res := predtop.Train(net, ds, train, val, predtop.TrainConfig{
		Epochs: *epochs, Patience: *epochs / 3, BatchSize: 4, Seed: *seed, Workers: *workers,
		Hooks: hooks,
	})
	trainSpan.End()
	lg.Printf("trained %s for %d epochs (best val %.4f at epoch %d) in %.1fs",
		net.Name(), res.EpochsRun, res.BestValLoss, res.BestEpoch, res.WallSeconds)

	evalSpan := tb.Begin("phases", "evaluate")
	mre := trained.MREWith(ds, test, acc, predtop.AccuracyKey{
		Family: net.Name(),
		Mesh:   fmt.Sprintf("%dx%d", scenario.Mesh.Nodes, scenario.Mesh.GPUsPerNode),
		Op:     cfg.Name,
	})
	evalSpan.End()
	fr.Note("run", "evaluated")
	lg.Printf("test MRE: %.2f%% over %d held-out stages", mre, len(test))

	if man != nil {
		man.SetWeightsFingerprint(predtop.WeightFingerprint(trained))
		man.RecordMetric("test_mre_pct", mre)
		man.RecordMetric("test_stages", float64(len(test)))
		man.RecordMetric("epochs_run", float64(res.EpochsRun))
		man.RecordMetric("best_epoch", float64(res.BestEpoch))
		man.RecordMetric("best_val_loss", res.BestValLoss)
		man.RecordAttribution(net.Name(), trained.Attribute(ds, test))
		man.RecordAccuracy(acc)
		man.RecordSessionMetric("train_wall_seconds", res.WallSeconds)
	}

	sink.Emit(struct {
		Event       string  `json:"event"`
		EpochsRun   int     `json:"epochs_run"`
		BestEpoch   int     `json:"best_epoch"`
		BestValLoss float64 `json:"best_val_loss"`
		WallSeconds float64 `json:"wall_s"`
		TestMRE     float64 `json:"test_mre_pct"`
		TestStages  int     `json:"test_stages"`
	}{"summary", res.EpochsRun, res.BestEpoch, res.BestValLoss, res.WallSeconds, mre, len(test)})
	acc.EmitTo(sink)
	sink.EmitMetrics(reg)
	if err := sink.Close(); err != nil {
		log.Fatalf("writing %s: %v", *metricsPath, err)
	}
	if *tracePath != "" {
		if err := tb.WriteFile(*tracePath); err != nil {
			log.Fatal(err)
		}
		lg.Printf("wrote trace to %s", *tracePath)
	}
	if *profilePath != "" {
		if err := prof.WriteFile(*profilePath); err != nil {
			log.Fatal(err)
		}
		lg.Printf("wrote span profile to %s", *profilePath)
	}

	if err := predtop.SaveTrained(*out, trained); err != nil {
		log.Fatal(err)
	}
	lg.Printf("saved model to %s", *out)

	if man != nil {
		man.Session.WallSeconds = time.Since(started).Seconds()
		entry, err := ledger.Put(man)
		if err != nil {
			log.Fatal(err)
		}
		lg.Printf("recorded run %s in %s", entry.ID, ledger.Dir())
	}
}
