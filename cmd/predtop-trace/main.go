// Command predtop-trace plans a benchmark on Platform 2 and writes the
// optimized pipeline's 1F1B schedule as a Chrome-tracing JSON file (open in
// chrome://tracing or Perfetto) — a navigable version of the paper's Fig 6.
//
// Usage:
//
//	predtop-trace -bench GPT-3 -layers 12 -microbatches 8 -o pipeline.trace.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"predtop"
	"predtop/internal/pipeline"
)

func main() {
	bench := flag.String("bench", "GPT-3", "benchmark: GPT-3 or MoE")
	layers := flag.Int("layers", 12, "benchmark depth (0 = Table IV)")
	microbatches := flag.Int("microbatches", 8, "microbatches per iteration")
	maxStageLen := flag.Int("maxlen", 7, "max stage length in segments")
	out := flag.String("o", "pipeline.trace.json", "output trace path")
	flag.Parse()

	cfg := predtop.GPT3Config()
	if strings.EqualFold(*bench, "MoE") {
		cfg = predtop.MoEConfig()
	}
	if *layers > 0 {
		cfg.Layers = *layers
	}
	model := predtop.BuildModel(cfg)

	meter := &predtop.CostMeter{}
	plan, ok := predtop.OptimizePlan(model.NumSegments(), predtop.Platform2(),
		predtop.FullProfiling(model, predtop.DefaultProfiler(), meter),
		predtop.PlanOptions{Microbatches: *microbatches, MaxStageLen: *maxStageLen})
	if !ok {
		log.Fatal("no feasible plan")
	}
	lats := make([]float64, plan.NumStages())
	for i, sp := range plan.Stages {
		lats[i], _ = predtop.TrueStageLatency(model, sp, plan.Meshes[i])
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := pipeline.WriteChromeTrace(f, lats, *microbatches); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d stages, iteration latency %.4fs (bubble %.1f%%)\n",
		plan.NumStages(), predtop.PipelineLatency(lats, *microbatches),
		pipeline.BubbleFraction(lats, *microbatches)*100)
	fmt.Printf("wrote %s\n", *out)
}
