// Command predtop-serve is the predictor-as-a-service daemon: it loads every
// trained model (*.predtop) in a directory, then answers POST /predict
// queries over HTTP/JSON, coalescing concurrent requests into batched
// forwards and memoizing repeated stage queries in a bounded LRU.
//
// Usage:
//
//	predtop-serve -models ./models -listen 127.0.0.1:9400 \
//	              [-maxbatch 32] [-window 2ms] [-workers 0] [-cachesize 4096] \
//	              [-metrics serve.jsonl] [-addrfile serve.addr] [-quiet]
//
// Endpoints: POST /predict (query a model), GET /models (registry listing),
// POST /reload (hot-reload the model directory), plus the standard telemetry
// set — GET /metrics, /healthz, /debug/flightrecorder, /debug/pprof/ — all
// on the one listener. SIGHUP also triggers a hot reload; SIGINT/SIGTERM
// shut down gracefully. -addrfile writes the bound address (useful with
// -listen 127.0.0.1:0) so scripts can find an ephemeral port.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"predtop"
)

func main() {
	modelDir := flag.String("models", "models", "directory of *.predtop model files")
	listen := flag.String("listen", "127.0.0.1:9400", "listen address (host:0 picks a free port)")
	maxBatch := flag.Int("maxbatch", 32, "max concurrent requests coalesced into one batched forward")
	window := flag.Duration("window", 0, "how long to wait to fill a batch (0 = batch only queued requests)")
	workers := flag.Int("workers", 0, "intra-batch parallelism (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cachesize", 4096, "latency memo capacity in entries")
	seed := flag.Int64("seed", 1, "trace-identity seed")
	metricsPath := flag.String("metrics", "", "write JSONL request events and a final metrics snapshot to this file")
	addrFile := flag.String("addrfile", "", "write the bound listen address to this file once serving")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	tc := predtop.NewTraceContext(*seed, "predtop-serve")
	fr := predtop.NewFlightRecorder(0)
	fr.SetTraceContext(tc)
	predtop.SetWorkerPanicHook(fr.PanicHook(os.Stderr))

	lg := predtop.NewProgressLogger(os.Stderr, *quiet).WithTrace(tc)
	reg := predtop.NewMetricsRegistry()
	var sink *predtop.EventSink
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		sink = predtop.NewEventSink(f)
		sink.SetTraceContext(tc)
		sink.AttachFlight(fr)
		defer func() {
			sink.EmitMetrics(reg)
			if err := sink.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *metricsPath, err)
			}
		}()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := predtop.StartServe(ctx, predtop.ServeConfig{
		Addr:      *listen,
		ModelDir:  *modelDir,
		MaxBatch:  *maxBatch,
		Window:    *window,
		Workers:   *workers,
		CacheSize: *cacheSize,
		Metrics:   reg,
		Sink:      sink,
		Flight:    fr,
		Trace:     tc,
		Log:       lg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	sampler := predtop.StartRuntimeSampler(reg, 0)
	defer sampler.Stop()

	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	lg.Printf("predtop-serve listening on %s (POST %s/predict)", srv.Addr(), srv.URL())

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	for sig := range sigs {
		if sig == syscall.SIGHUP {
			if gen, n, err := srv.Reload(); err != nil {
				fmt.Fprintf(os.Stderr, "reload failed (old models keep serving): %v\n", err)
			} else {
				lg.Printf("SIGHUP reload: generation %d, %d model(s)", gen, n)
			}
			continue
		}
		lg.Printf("%v: shutting down", sig)
		break
	}
}
