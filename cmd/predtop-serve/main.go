// Command predtop-serve is the predictor-as-a-service daemon: it loads every
// trained model (*.predtop) in a directory, then answers POST /predict
// queries over HTTP/JSON, coalescing concurrent requests into batched
// forwards and memoizing repeated stage queries in a bounded LRU.
//
// Usage:
//
//	predtop-serve -models ./models -listen 127.0.0.1:9400 \
//	              [-maxbatch 32] [-window 2ms] [-workers 0] [-cachesize 4096] \
//	              [-metrics serve.jsonl] [-addrfile serve.addr] [-quiet] \
//	              [-slo-p99 500ms] [-slo-err 0.05] [-accesslog access.jsonl] \
//	              [-incidents ./incidents] [-float32] [-kernel-tune auto] \
//	              [-runledger runs]
//
// Endpoints: POST /predict (query a model), GET /models (registry listing),
// POST /reload (hot-reload the model directory), GET /statusz (human-readable
// SLO and queue state), plus the standard telemetry set — GET /metrics,
// /healthz, /debug/flightrecorder, /debug/pprof/ — all on the one listener.
// SIGHUP also triggers a hot reload; SIGINT/SIGTERM shut down gracefully,
// flushing every registered JSONL sink before exit. -addrfile writes the
// bound address (useful with -listen 127.0.0.1:0) so scripts can find an
// ephemeral port.
//
// -slo-p99 and -slo-err set the serving objectives: /predict p99 latency and
// the tolerated bad-request fraction. The daemon tracks both over rolling
// 1m/5m/1h windows (predtop_slo_* gauges); the moment any window goes out of
// objective it captures an incident bundle under -incidents — a flight
// recorder dump plus a short CPU profile, referenced from an slo_breach JSONL
// record. Both objectives zero disables SLO tracking. -accesslog streams the
// sampled per-request records (first requests, slow requests, errors, and a
// steady 1-in-64 background sample) with per-phase trace spans.
//
// -runledger records the serving session's manifest at shutdown — the served
// models' weight fingerprint, the request/batch/cache counters, and the
// session's wall time — into the given run-ledger directory for predtop-runs
// to list and inspect.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"predtop"
)

func main() {
	modelDir := flag.String("models", "models", "directory of *.predtop model files")
	listen := flag.String("listen", "127.0.0.1:9400", "listen address (host:0 picks a free port)")
	maxBatch := flag.Int("maxbatch", 32, "max concurrent requests coalesced into one batched forward")
	window := flag.Duration("window", 0, "how long to wait to fill a batch (0 = batch only queued requests)")
	workers := flag.Int("workers", 0, "intra-batch parallelism (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cachesize", 4096, "latency memo capacity in entries")
	seed := flag.Int64("seed", 1, "trace-identity seed")
	metricsPath := flag.String("metrics", "", "write JSONL request events and a final metrics snapshot to this file")
	addrFile := flag.String("addrfile", "", "write the bound listen address to this file once serving")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	sloP99 := flag.Duration("slo-p99", 500*time.Millisecond, "p99 latency objective for /predict (0 with -slo-err 0 disables SLO tracking)")
	sloErr := flag.Float64("slo-err", 0.05, "tolerated bad-request fraction (the error budget)")
	accessPath := flag.String("accesslog", "", "write sampled per-request access records (JSONL) to this file")
	incidentDir := flag.String("incidents", "", "write SLO-breach evidence bundles (flight dump + CPU profile) under this directory")
	useFloat32 := flag.Bool("float32", false, "serve through reduced-precision float32 inference engines (tolerance-pinned vs float64, not bitwise)")
	kernelTune := flag.String("kernel-tune", os.Getenv("PREDTOP_KERNEL_TUNE"), "matmul kernel split: off (built-in defaults), auto (measure on this host), or a fixed crossover in multiply-adds")
	ledgerDir := flag.String("runledger", "", "record this serving session's manifest at shutdown into the given run-ledger directory (see predtop-runs)")
	flag.Parse()

	started := time.Now()
	ledger := predtop.OpenRunLedger(*ledgerDir)
	var man *predtop.RunManifest
	if ledger != nil {
		man = predtop.NewRunManifest("predtop-serve", *seed)
		man.Session.StartedUnix = started.Unix()
		man.SetConfig("float32", fmt.Sprint(*useFloat32))
		man.SetConfig("slo_p99", sloP99.String())
		man.SetConfig("slo_err", fmt.Sprint(*sloErr))
		man.SetOutput("models", *modelDir)
		man.SetOutput("metrics", *metricsPath)
		man.SetOutput("accesslog", *accessPath)
		man.SetOutput("incidents", *incidentDir)
		man.RecordSessionMetric("maxbatch", float64(*maxBatch))
		man.RecordSessionMetric("cachesize", float64(*cacheSize))
		man.RecordSessionMetric("workers", float64(*workers))
	}

	tc := predtop.NewTraceContext(*seed, "predtop-serve")
	man.SetTraceID(tc.TraceID())
	fr := predtop.NewFlightRecorder(0)
	fr.SetTraceContext(tc)
	predtop.SetWorkerPanicHook(fr.PanicHook(os.Stderr))

	lg := predtop.NewProgressLogger(os.Stderr, *quiet).WithTrace(tc)
	reg := predtop.NewMetricsRegistry()
	tune, err := predtop.ApplyKernelTune(*kernelTune, reg)
	if err != nil {
		log.Fatal(err)
	}
	if tune.Mode != "off" {
		lg.Printf("kernel tune %s: crossover %d multiply-adds, row block %d", tune.Mode, tune.MinFlops, tune.RowBlock)
	}

	// newSink opens one JSONL sink and registers its close; the graceful
	// shutdown path (SIGTERM breaking the signal loop) runs every registered
	// close after the daemon has drained, so no buffered record is lost.
	var sinkCloses []func()
	newSink := func(path string) *predtop.EventSink {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		s := predtop.NewEventSink(f)
		s.SetTraceContext(tc)
		s.AttachFlight(fr)
		sinkCloses = append(sinkCloses, func() {
			if err := s.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
			}
			f.Close()
		})
		return s
	}
	defer func() {
		for i := len(sinkCloses) - 1; i >= 0; i-- {
			sinkCloses[i]()
		}
	}()

	var sink, access *predtop.EventSink
	if *metricsPath != "" {
		sink = newSink(*metricsPath)
		defer sink.EmitMetrics(reg) // runs before the registered closes above
	}
	if *accessPath != "" {
		access = newSink(*accessPath)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := predtop.StartServe(ctx, predtop.ServeConfig{
		Addr:        *listen,
		ModelDir:    *modelDir,
		MaxBatch:    *maxBatch,
		Window:      *window,
		Workers:     *workers,
		CacheSize:   *cacheSize,
		Float32:     *useFloat32,
		Metrics:     reg,
		Sink:        sink,
		Flight:      fr,
		Trace:       tc,
		Log:         lg,
		SLOP99:      *sloP99,
		SLOErr:      *sloErr,
		IncidentDir: *incidentDir,
		AccessLog:   access,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	sampler := predtop.StartRuntimeSampler(reg, 0)
	defer sampler.Stop()

	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	lg.Printf("predtop-serve listening on %s (POST %s/predict)", srv.Addr(), srv.URL())

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	for sig := range sigs {
		if sig == syscall.SIGHUP {
			if gen, n, err := srv.Reload(); err != nil {
				fmt.Fprintf(os.Stderr, "reload failed (old models keep serving): %v\n", err)
			} else {
				lg.Printf("SIGHUP reload: generation %d, %d model(s)", gen, n)
			}
			continue
		}
		lg.Printf("%v: shutting down", sig)
		break
	}

	if man != nil {
		// Pin the identity of the weights this session served (sorted
		// registry order, same FNV-1a scheme as plan provenance) and archive
		// the session's serve/SLO counters before the daemon tears down.
		entries, gen := srv.Registry().Snapshot()
		trs := make([]predtop.Trained, 0, len(entries))
		for _, e := range entries {
			trs = append(trs, e.Trained)
		}
		man.SetWeightsFingerprint(predtop.WeightFingerprint(trs...))
		man.RecordSessionMetric("registry_generation", float64(gen))
		man.RecordSessionMetric("models", float64(len(entries)))
		for _, mt := range reg.Snapshot() {
			if mt.Kind == "histogram" ||
				(!strings.HasPrefix(mt.Name, "predtop_serve_") && !strings.HasPrefix(mt.Name, "predtop_slo_")) {
				continue
			}
			key := mt.Name
			if mt.Labels != "" {
				key += "{" + mt.Labels + "}"
			}
			man.RecordSessionMetric(key, mt.Value)
		}
		man.Session.WallSeconds = time.Since(started).Seconds()
		entry, err := ledger.Put(man)
		if err != nil {
			log.Fatal(err)
		}
		lg.Printf("recorded run %s in %s", entry.ID, ledger.Dir())
	}
}
