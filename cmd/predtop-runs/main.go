// Command predtop-runs inspects the run ledger: the manifests that
// predtop-train, predtop-eval, predtop-plan, predtop-serve, and
// predtop-replay record under -runledger (conventionally the runs/
// directory). Each manifest splits into a canonical section — a pure
// function of (tool, seed, result-determining config), byte-identical
// across reruns — and a session section holding wall-clock and host facts,
// so "did this change move the numbers" is a file diff, not scrollback
// archaeology.
//
// Usage:
//
//	predtop-runs [-dir runs] list [-tool predtop-train] [-files]
//	predtop-runs [-dir runs] show [-canonical] [REF]
//	predtop-runs [-dir runs] diff [-gate] [-mre 2] [-latency 5] [BASE] [OTHER]
//	predtop-runs [-dir runs] baseline [REF]
//
// A REF is "latest" (the default), "baseline" (the pinned run), an existing
// file path, or a run id / unique id prefix. list prints every stored run
// oldest first, marking the pinned baseline with '*'. show prints one
// manifest; -canonical emits exactly the canonical JSON bytes (the
// serialization the run id hashes), so two same-seed runs can be compared
// with cmp. diff renders a side-by-side comparison — identity fields,
// per-(family, mesh, op) MRE, Eqn-4 plan totals, and the error-attribution
// breakdown; with no refs it compares the pinned baseline against the
// latest run, with one ref the baseline against that run. -gate turns the
// diff into a regression sentinel: exit 1 when any accuracy population's
// MRE grew by more than -mre points or any plan's Eqn-4 total grew by more
// than -latency percent. baseline pins a run (or prints the current pin).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"
	"time"

	"predtop/internal/runledger"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: predtop-runs [-dir runs] <subcommand> [flags] [args]

subcommands:
  list      [-tool NAME] [-files]                 list stored runs, oldest first
  show      [-canonical] [REF]                    print one manifest
  diff      [-gate] [-mre 2] [-latency 5] [BASE] [OTHER]
                                                  compare two runs (default: baseline vs latest)
  baseline  [REF]                                 pin a run as the gate baseline (no REF: print the pin)

A REF is "latest", "baseline", a file path, or a run id / unique prefix.
`)
}

func main() {
	dir := flag.String("dir", "runs", "run-ledger directory")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	store := runledger.Open(*dir)
	var err error
	switch args[0] {
	case "list":
		err = runList(store, args[1:])
	case "show":
		err = runShow(store, args[1:])
	case "diff":
		err = runDiff(store, args[1:])
	case "baseline":
		err = runBaseline(store, args[1:])
	default:
		fmt.Fprintf(os.Stderr, "predtop-runs: unknown subcommand %q\n", args[0])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "predtop-runs:", err)
		os.Exit(1)
	}
}

func runList(store *runledger.Store, args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	tool := fs.String("tool", "", "only list runs of this tool")
	files := fs.Bool("files", false, "also print each run's file path")
	fs.Parse(args)

	entries, err := store.List()
	if err != nil {
		return err
	}
	baseline, _ := store.Baseline() // unpinned is fine: nothing marked
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, " \tRUN\tTOOL\tSEED\tSTARTED\tWALL")
	n := 0
	for _, e := range entries {
		if *tool != "" && e.Tool != *tool {
			continue
		}
		n++
		mark := " "
		if baseline != "" && e.Path == baseline {
			mark = "*"
		}
		started := "-"
		if e.StartedUnix != 0 {
			started = time.Unix(e.StartedUnix, 0).UTC().Format("2006-01-02 15:04:05")
		}
		name := runName(e.Path)
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\t%.1fs\n", mark, name, e.Tool, e.Seed, started, e.WallSeconds)
		if *files {
			fmt.Fprintf(tw, " \t  %s\t\t\t\t\n", e.Path)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if n == 0 {
		fmt.Printf("no runs recorded in %s\n", store.Dir())
	}
	return nil
}

// runName is the run's display name: the stored file name without the .json
// extension, which keeps the .N rerun suffix visible (and referencable).
func runName(path string) string {
	return strings.TrimSuffix(filepath.Base(path), ".json")
}

func runShow(store *runledger.Store, args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	canonical := fs.Bool("canonical", false, "print exactly the canonical JSON bytes (the section the run id hashes)")
	fs.Parse(args)

	ref := "latest"
	if fs.NArg() > 0 {
		ref = fs.Arg(0)
	}
	path, err := store.Resolve(ref)
	if err != nil {
		return err
	}
	m, err := runledger.Load(path)
	if err != nil {
		return err
	}
	if *canonical {
		b, err := m.CanonicalJSON()
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(b)
		return err
	}
	id, err := m.RunID()
	if err != nil {
		return err
	}
	fmt.Printf("run %s (%s)\n", id, path)
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", b)
	return nil
}

func runDiff(store *runledger.Store, args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	gate := fs.Bool("gate", false, "exit 1 when the comparison regresses past the thresholds")
	mre := fs.Float64("mre", 2, "gate threshold: tolerated per-population MRE growth in percentage points (0 = off)")
	latency := fs.Float64("latency", 5, "gate threshold: tolerated plan Eqn-4 total growth in percent (0 = off)")
	fs.Parse(args)

	baseRef, otherRef := "baseline", "latest"
	switch fs.NArg() {
	case 0:
	case 1:
		otherRef = fs.Arg(0)
	case 2:
		baseRef, otherRef = fs.Arg(0), fs.Arg(1)
	default:
		return fmt.Errorf("diff takes at most two run references")
	}
	basePath, err := store.Resolve(baseRef)
	if err != nil {
		return err
	}
	otherPath, err := store.Resolve(otherRef)
	if err != nil {
		return err
	}
	base, err := runledger.Load(basePath)
	if err != nil {
		return err
	}
	other, err := runledger.Load(otherPath)
	if err != nil {
		return err
	}
	d := runledger.Compare(base, other, runName(basePath), runName(otherPath))
	fmt.Print(d.Render())
	if !*gate {
		return nil
	}
	msgs := d.Gate(runledger.GateThresholds{MREPct: *mre, LatencyPct: *latency})
	if len(msgs) == 0 {
		fmt.Println("gate: ok")
		return nil
	}
	for _, msg := range msgs {
		fmt.Fprintln(os.Stderr, "gate:", msg)
	}
	return fmt.Errorf("%d regression(s) past thresholds", len(msgs))
}

func runBaseline(store *runledger.Store, args []string) error {
	fs := flag.NewFlagSet("baseline", flag.ExitOnError)
	fs.Parse(args)

	if fs.NArg() == 0 {
		path, err := store.Baseline()
		if err != nil {
			return err
		}
		fmt.Printf("baseline: %s (%s)\n", runName(path), path)
		return nil
	}
	path, err := store.SetBaseline(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("pinned baseline: %s (%s)\n", runName(path), path)
	return nil
}
