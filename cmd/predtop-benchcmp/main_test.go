package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseStreamSubBenchmarks: per-batch-size sub-benchmark names survive
// parsing as distinct series with the GOMAXPROCS suffix stripped, so the
// regression gates apply to every point of the series.
func TestParseStreamSubBenchmarks(t *testing.T) {
	in := strings.NewReader(`{"Action":"output","Output":"BenchmarkPredictBatch/B=1-8  \t1\t1000000 ns/op\t2048 B/op\t12 allocs/op\n"}
{"Action":"output","Output":"BenchmarkPredictBatch/B=8-8  \t1\t4000000 ns/op\t8192 B/op\t40 allocs/op\n"}
{"Action":"output","Output":"BenchmarkTableV_GPT3-8  \t1\t5320812 ns/op\t36.50 tran-MRE-%\t576120 B/op\t1221516 allocs/op\n"}`)
	res, err := parseStream(in)
	if err != nil {
		t.Fatal(err)
	}
	b1, ok := res["BenchmarkPredictBatch/B=1"]
	if !ok || b1.NsPerOp != 1000000 || b1.AllocsPerOp != 12 {
		t.Fatalf("B=1 series: %+v ok=%v", b1, ok)
	}
	if b8 := res["BenchmarkPredictBatch/B=8"]; b8.NsPerOp != 4000000 {
		t.Fatalf("B=8 series: %+v", b8)
	}
	if tv := res["BenchmarkTableV_GPT3"]; tv.BytesPerOp != 576120 {
		t.Fatalf("custom-metric line misparsed: %+v", tv)
	}
}

// TestNsRegressionFloor: the ns gate exempts benchmarks whose baseline op
// time is below the floor — one short iteration is noise — but still fires
// on benchmarks at or above it.
func TestNsRegressionFloor(t *testing.T) {
	if r := nsRegression(10, 10e6, 1e6, 2e6); r != "" {
		t.Fatalf("sub-floor benchmark gated: %q", r)
	}
	if r := nsRegression(10, 10e6, 20e6, 40e6); r == "" {
		t.Fatal("above-floor regression not gated")
	}
	if r := nsRegression(10, 0, 1e6, 2e6); r == "" {
		t.Fatal("floor 0 should gate everything")
	}
	if r := nsRegression(10, 10e6, 20e6, 21e6); r != "" {
		t.Fatalf("within-threshold growth gated: %q", r)
	}
}

// TestPrintBatchSeries: families with at least two B=<n> points render a
// per-item scaling block with the speedup over the smallest batch and the
// baseline per-item cost when available.
func TestPrintBatchSeries(t *testing.T) {
	newRes := map[string]result{
		"BenchmarkPredictBatch/B=1":  {NsPerOp: 1000},
		"BenchmarkPredictBatch/B=8":  {NsPerOp: 4000},
		"BenchmarkPredictBatch/B=64": {NsPerOp: 16000},
		"BenchmarkLonely/B=1":        {NsPerOp: 5},
		"BenchmarkTableV_GPT3":       {NsPerOp: 99},
	}
	baseRes := map[string]result{
		"BenchmarkPredictBatch/B=8": {NsPerOp: 8000},
	}
	var sb strings.Builder
	printBatchSeries(&sb, baseRes, newRes)
	out := sb.String()
	for _, want := range []string{
		"BenchmarkPredictBatch per-item scaling:",
		"B=1 ", "(2.00x vs B=1)", "(4.00x vs B=1)",
		"[baseline 1,000 ns/item]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Lonely") || strings.Contains(out, "TableV") {
		t.Fatalf("single-point family or non-series bench rendered:\n%s", out)
	}
}

func TestArchiveKey(t *testing.T) {
	cases := []struct {
		name string
		date string
		n    int
		ok   bool
	}{
		{"BENCH_2026-08-06.json", "2026-08-06", 0, true},
		{"BENCH_2026-08-06.1.json", "2026-08-06", 1, true},
		{"BENCH_2026-08-06.10.json", "2026-08-06", 10, true},
		{"BENCH_2026-8-6.json", "", 0, false},
		{"BENCH_2026-08-06.json.bak", "", 0, false},
		{"bench_2026-08-06.json", "", 0, false},
		{"results.json", "", 0, false},
	}
	for _, c := range cases {
		date, n, ok := archiveKey(c.name)
		if date != c.date || n != c.n || ok != c.ok {
			t.Errorf("archiveKey(%q) = (%q, %d, %v), want (%q, %d, %v)",
				c.name, date, n, ok, c.date, c.n, c.ok)
		}
	}
}

func TestPickLatest(t *testing.T) {
	cases := []struct {
		names []string
		want  string
	}{
		// Latest date wins regardless of list order.
		{[]string{"BENCH_2026-08-06.json", "BENCH_2026-08-09.json", "BENCH_2026-08-08.json"},
			"BENCH_2026-08-09.json"},
		// Within a day, the highest rerun suffix is the most recent.
		{[]string{"BENCH_2026-08-06.json", "BENCH_2026-08-06.1.json"},
			"BENCH_2026-08-06.1.json"},
		// Numeric, not lexical: .10 outranks .2.
		{[]string{"BENCH_2026-08-06.2.json", "BENCH_2026-08-06.10.json"},
			"BENCH_2026-08-06.10.json"},
		// A newer date beats an older date's reruns.
		{[]string{"BENCH_2026-08-06.9.json", "BENCH_2026-08-07.json"},
			"BENCH_2026-08-07.json"},
		// Non-archive names are ignored.
		{[]string{"results.json", "BENCH_2026-08-06.json"}, "BENCH_2026-08-06.json"},
		{[]string{"results.json"}, ""},
		{nil, ""},
	}
	for _, c := range cases {
		if got := pickLatest(c.names); got != c.want {
			t.Errorf("pickLatest(%v) = %q, want %q", c.names, got, c.want)
		}
	}
}

func TestSelectBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{
		"BENCH_2026-08-06.json",
		"BENCH_2026-08-06.1.json",
		"BENCH_2026-08-08.json",
		"results.json",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Automatic selection: newest archive by name.
	got, err := selectBaseline(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_2026-08-08.json" {
		t.Fatalf("auto-selected %s", got)
	}

	// Explicit refs: archive name, bare date, date.N, and a direct path.
	for ref, want := range map[string]string{
		"BENCH_2026-08-06.json": "BENCH_2026-08-06.json",
		"2026-08-06":            "BENCH_2026-08-06.json",
		"2026-08-06.1":          "BENCH_2026-08-06.1.json",
		filepath.Join(dir, "BENCH_2026-08-08.json"): "BENCH_2026-08-08.json",
	} {
		got, err := selectBaseline(dir, ref)
		if err != nil {
			t.Fatalf("selectBaseline(%q): %v", ref, err)
		}
		if filepath.Base(got) != want {
			t.Errorf("selectBaseline(%q) = %s, want %s", ref, got, want)
		}
	}

	if _, err := selectBaseline(dir, "2026-01-01"); err == nil {
		t.Fatal("unknown ref should fail")
	}
	if _, err := selectBaseline(t.TempDir(), ""); err == nil {
		t.Fatal("empty dir should fail auto-selection")
	}
}
