// Command predtop-benchcmp compares two benchmark runs archived as
// `go test -json` event streams (the BENCH_<date>.json files written by
// `make bench`) and prints per-benchmark deltas for ns/op, B/op, and
// allocs/op. The new run may be a second file or the event stream piped on
// stdin, which is how `make bench-compare` wires a fresh run against the
// most recent archive:
//
//	go test -bench=. -benchmem -benchtime=1x -run '^$' -json . |
//	    predtop-benchcmp -base BENCH_2026-08-06.json
//
// The baseline archive may be named three ways: -base takes an explicit
// file path; -baseline selects an archive from -dir (default ".") by name,
// bare date, or date.N rerun suffix (e.g. "2026-08-06.1"); with neither,
// the most recent archive in -dir is selected automatically — latest date
// first, then highest .N rerun suffix, by name rather than file mtime so
// the choice survives checkouts and copies.
//
// With -allocthreshold N the comparison also acts as a regression gate:
// any benchmark whose allocs/op grew by more than N percent over the
// baseline — or allocated at all where the baseline was zero, which is how
// the guarded zero-alloc hot paths are pinned — fails the run with exit
// status 1 after the full report prints. -nsthreshold N (default 10) gates
// ns/op the same way: wall-time regressions beyond N percent fail the run;
// 0 disables the gate for noisy one-off comparisons. Benchmarks whose
// baseline op time is under -nsfloor (default 10ms) are exempt from the ns
// gate — a single sub-floor iteration measures scheduler noise, not the
// code — while the alloc gate still applies to them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of the test2json record shape we need.
type event struct {
	Action string
	Output string
}

// result holds one benchmark's reported metrics.
type result struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
}

// benchLine matches a flattened benchmark result, e.g.
// "BenchmarkTableV_GPT3-8  1  5320812 ns/op  36.50 tran-MRE-%  576120 B/op
// 1221516 allocs/op" — custom metrics may appear between the standard ones,
// so B/op and allocs/op are found anywhere later on the same line.
var benchLine = regexp.MustCompile(
	`(?m)^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:[^\n]*?\s([\d.]+) B/op)?(?:[^\n]*?\s([\d.]+) allocs/op)?`)

// parseStream reads a go test -json event stream and returns the benchmark
// results it reports. Benchmark output arrives fragmented across Output
// events, so all fragments are concatenated before matching.
func parseStream(r io.Reader) (map[string]result, error) {
	var text strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			// Tolerate non-JSON noise (e.g. a plain `go test` line) so the
			// tool also works on raw benchmark output.
			text.WriteString(line + "\n")
			continue
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := map[string]result{}
	for _, m := range benchLine.FindAllStringSubmatch(text.String(), -1) {
		var res result
		res.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			res.BytesPerOp, _ = strconv.ParseFloat(m[3], 64)
		}
		if m[4] != "" {
			res.AllocsPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		out[m[1]] = res
	}
	return out, nil
}

func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseStream(f)
}

// archiveName matches the `make bench` naming convention:
// BENCH_<date>.json for the first archive of a day, BENCH_<date>.N.json for
// same-day reruns.
var archiveName = regexp.MustCompile(`^BENCH_(\d{4}-\d{2}-\d{2})(?:\.(\d+))?\.json$`)

// archiveKey splits an archive file name into its date and rerun number
// (0 for the unsuffixed original); ok is false for names outside the
// convention.
func archiveKey(name string) (date string, n int, ok bool) {
	m := archiveName.FindStringSubmatch(name)
	if m == nil {
		return "", 0, false
	}
	if m[2] != "" {
		n, _ = strconv.Atoi(m[2])
	}
	return m[1], n, true
}

// pickLatest returns the newest archive among names: latest date first, then
// highest rerun suffix. The suffix comparison is numeric — .10 outranks .2 —
// because the suffixes count up within a day. Names outside the BENCH_*
// convention are ignored; "" means nothing matched.
func pickLatest(names []string) string {
	best, bestDate, bestN := "", "", -1
	for _, name := range names {
		date, n, ok := archiveKey(name)
		if !ok {
			continue
		}
		if date > bestDate || (date == bestDate && n > bestN) {
			best, bestDate, bestN = name, date, n
		}
	}
	return best
}

// selectBaseline resolves the baseline archive in dir: an explicit ref (a
// path, an archive file name, or a bare "<date>" / "<date>.N"), or with ref
// empty the most recent archive by name.
func selectBaseline(dir, ref string) (string, error) {
	if ref != "" {
		for _, cand := range []string{
			ref,
			filepath.Join(dir, ref),
			filepath.Join(dir, "BENCH_"+ref+".json"),
		} {
			if st, err := os.Stat(cand); err == nil && !st.IsDir() {
				return cand, nil
			}
		}
		return "", fmt.Errorf("no BENCH archive matches %q in %s", ref, dir)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	names := make([]string, len(paths))
	for i, p := range paths {
		names[i] = filepath.Base(p)
	}
	latest := pickLatest(names)
	if latest == "" {
		return "", fmt.Errorf("no BENCH_*.json archives in %s; run 'make bench' first", dir)
	}
	return filepath.Join(dir, latest), nil
}

// delta renders "old → new (±x%)"; a missing old value renders as new only.
func delta(unit string, old, new float64) string {
	if old == 0 {
		return fmt.Sprintf("%s %s", humanize(new), unit)
	}
	pct := (new - old) / old * 100
	return fmt.Sprintf("%s → %s %s (%+.1f%%)", humanize(old), humanize(new), unit, pct)
}

// humanize prints large counts with thousands separators for readability.
func humanize(v float64) string {
	s := strconv.FormatFloat(v, 'f', -1, 64)
	dot := strings.IndexByte(s, '.')
	if dot < 0 {
		dot = len(s)
	}
	var b strings.Builder
	for i, c := range s[:dot] {
		if i > 0 && (dot-i)%3 == 0 && c != '-' {
			b.WriteByte(',')
		}
		b.WriteRune(c)
	}
	b.WriteString(s[dot:])
	return b.String()
}

func main() {
	base := flag.String("base", "", "baseline BENCH_*.json archive path (empty = select from -dir, see -baseline)")
	baseline := flag.String("baseline", "", "select the baseline archive from -dir by name, date, or date.N (empty = most recent)")
	dir := flag.String("dir", ".", "directory holding BENCH_*.json archives for baseline selection")
	next := flag.String("new", "", "new run archive; reads the event stream from stdin when omitted")
	allocThreshold := flag.Float64("allocthreshold", 0,
		"fail (exit 1) when any benchmark's allocs/op grows by more than this percentage; a zero-alloc baseline fails on any allocation (0 = off)")
	nsThreshold := flag.Float64("nsthreshold", 10,
		"fail (exit 1) when any benchmark's ns/op grows by more than this percentage over the baseline (0 = off)")
	nsFloor := flag.Float64("nsfloor", 10e6,
		"exempt benchmarks whose baseline ns/op is below this from the ns gate; single iterations this short are scheduling noise, not signal (0 = gate everything)")
	flag.Parse()
	if *base != "" && *baseline != "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -base and -baseline are mutually exclusive")
		os.Exit(2)
	}
	if *base == "" {
		selected, err := selectBaseline(*dir, *baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(1)
		}
		*base = selected
	}
	baseRes, err := parseFile(*base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	var newRes map[string]result
	if *next != "" {
		newRes, err = parseFile(*next)
	} else {
		newRes, err = parseStream(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	if len(newRes) == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no benchmark results in new run")
		os.Exit(1)
	}

	names := make([]string, 0, len(newRes))
	for name := range newRes {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("baseline: %s\n", *base)
	var regressions []string
	for _, name := range names {
		n := newRes[name]
		b, ok := baseRes[name]
		if !ok {
			fmt.Printf("%s (no baseline)\n", name)
			b = result{}
		} else {
			fmt.Printf("%s\n", name)
			if r := allocRegression(*allocThreshold, b.AllocsPerOp, n.AllocsPerOp); r != "" {
				regressions = append(regressions, fmt.Sprintf("%s: %s", name, r))
			}
			if r := nsRegression(*nsThreshold, *nsFloor, b.NsPerOp, n.NsPerOp); r != "" {
				regressions = append(regressions, fmt.Sprintf("%s: %s", name, r))
			}
		}
		fmt.Printf("  %s\n", delta("ns/op", b.NsPerOp, n.NsPerOp))
		fmt.Printf("  %s\n", delta("B/op", b.BytesPerOp, n.BytesPerOp))
		fmt.Printf("  %s\n", delta("allocs/op", b.AllocsPerOp, n.AllocsPerOp))
	}
	for name := range baseRes {
		if _, ok := newRes[name]; !ok {
			fmt.Printf("%s: present in baseline only\n", name)
		}
	}
	printBatchSeries(os.Stdout, baseRes, newRes)
	if len(regressions) > 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: regressions beyond thresholds:")
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
}

// batchName matches one point of a per-batch-size benchmark series, e.g.
// "BenchmarkPredictBatch/B=8".
var batchName = regexp.MustCompile(`^(.+)/B=(\d+)$`)

// printBatchSeries renders the per-batch-size amortization curve of every
// "Foo/B=<n>" family in the new run: cost per item (ns/op ÷ B), the speedup
// over the family's smallest batch, and the baseline per-item cost where one
// exists. The regression gates already apply to each point individually —
// this section only makes the scaling shape readable at a glance.
func printBatchSeries(w io.Writer, baseRes, newRes map[string]result) {
	type point struct {
		b    int
		name string
	}
	fams := map[string][]point{}
	for name := range newRes {
		if m := batchName.FindStringSubmatch(name); m != nil {
			n, _ := strconv.Atoi(m[2])
			fams[m[1]] = append(fams[m[1]], point{b: n, name: name})
		}
	}
	famNames := make([]string, 0, len(fams))
	for fam, pts := range fams {
		if len(pts) >= 2 {
			famNames = append(famNames, fam)
		}
	}
	sort.Strings(famNames)
	for _, fam := range famNames {
		pts := fams[fam]
		sort.Slice(pts, func(i, j int) bool { return pts[i].b < pts[j].b })
		fmt.Fprintf(w, "%s per-item scaling:\n", fam)
		first := newRes[pts[0].name].NsPerOp / float64(pts[0].b)
		for _, p := range pts {
			per := newRes[p.name].NsPerOp / float64(p.b)
			line := fmt.Sprintf("  B=%-4d %s ns/item", p.b, humanize(per))
			if per > 0 {
				line += fmt.Sprintf(" (%.2fx vs B=%d)", first/per, pts[0].b)
			}
			if b, ok := baseRes[p.name]; ok && b.NsPerOp > 0 {
				line += fmt.Sprintf("  [baseline %s ns/item]", humanize(b.NsPerOp/float64(p.b)))
			}
			fmt.Fprintln(w, line)
		}
	}
}

// nsRegression reports why a benchmark fails the -nsthreshold gate, or ""
// when it passes. Benchmarks whose baseline op time is under the floor are
// exempt: at -benchtime=1x a sub-floor iteration's wall time is dominated
// by scheduler and cache noise, so a percentage gate on it only flakes.
func nsRegression(threshold, floor, old, new float64) string {
	if threshold <= 0 || old == 0 || old < floor {
		return ""
	}
	pct := (new - old) / old * 100
	if pct > threshold {
		return fmt.Sprintf("ns/op %s → %s (%+.1f%%)", humanize(old), humanize(new), pct)
	}
	return ""
}

// allocRegression reports why a benchmark fails the -allocthreshold gate, or
// "" when it passes. A zero-alloc baseline is a pinned hot path: any
// allocation at all regresses it, regardless of the percentage threshold.
func allocRegression(threshold, old, new float64) string {
	if threshold <= 0 {
		return ""
	}
	if old == 0 {
		if new > 0 {
			return fmt.Sprintf("zero-alloc baseline now allocates %s allocs/op", humanize(new))
		}
		return ""
	}
	pct := (new - old) / old * 100
	if pct > threshold {
		return fmt.Sprintf("allocs/op %s → %s (%+.1f%%)", humanize(old), humanize(new), pct)
	}
	return ""
}
