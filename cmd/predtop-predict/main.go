// Command predtop-predict loads a model saved by predtop-train and predicts
// the optimal intra-stage latency of a stage, optionally checking it against
// the simulator's profiled ground truth.
//
// Usage:
//
//	predtop-predict -model model.predtop -bench GPT-3 -layers 12 \
//	                -lo 2 -hi 5 [-platform 2 -mesh 1 -conf 1 -check]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"

	"predtop"
)

func main() {
	modelPath := flag.String("model", "model.predtop", "trained model path")
	bench := flag.String("bench", "GPT-3", "benchmark: GPT-3 or MoE")
	layers := flag.Int("layers", 0, "override benchmark depth (0 = Table IV)")
	lo := flag.Int("lo", 0, "stage start segment (inclusive)")
	hi := flag.Int("hi", 1, "stage end segment (exclusive)")
	platformSel := flag.Int("platform", 2, "platform for -check")
	meshIdx := flag.Int("mesh", 1, "mesh for -check")
	confIdx := flag.Int("conf", 1, "configuration for -check")
	check := flag.Bool("check", false, "compare against the simulator's profiled latency")
	flag.Parse()

	trained, err := predtop.LoadTrained(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	cfg := predtop.GPT3Config()
	if strings.EqualFold(*bench, "MoE") {
		cfg = predtop.MoEConfig()
	}
	if *layers > 0 {
		cfg.Layers = *layers
	}
	model := predtop.BuildModel(cfg)
	if *lo < 0 || *hi > model.NumSegments() || *lo >= *hi {
		log.Fatalf("bad stage range [%d,%d) of %d segments", *lo, *hi, model.NumSegments())
	}

	enc := predtop.NewEncoder(model, true)
	sp := predtop.StageSpec{Lo: *lo, Hi: *hi}
	pred := trained.PredictEncoded(enc.Encode(sp))
	fmt.Printf("%s stage [%d,%d) (%s): predicted %.3fms\n",
		cfg.Name, sp.Lo, sp.Hi, trained.Model.Name(), pred*1e3)

	if *check {
		platform := predtop.Platform2()
		if *platformSel == 1 {
			platform = predtop.Platform1()
		}
		for _, sc := range predtop.Scenarios(platform) {
			if sc.Mesh.Index != *meshIdx || sc.Config.Index != *confIdx {
				continue
			}
			trueLat, _, ok := predtop.ProfileStage(model, sp, sc, predtop.DefaultProfiler())
			if !ok {
				log.Fatalf("stage infeasible under %v", sc)
			}
			fmt.Printf("profiled under %v: %.3fms (relative error %.2f%%)\n",
				sc, trueLat*1e3, math.Abs(pred-trueLat)/trueLat*100)
			return
		}
		log.Fatalf("no scenario mesh=%d conf=%d", *meshIdx, *confIdx)
	}
}
