// Command predtop-predict loads a model saved by predtop-train and predicts
// the optimal intra-stage latency of a stage, optionally checking it against
// the simulator's profiled ground truth.
//
// Usage:
//
//	predtop-predict -model model.predtop -bench GPT-3 -layers 12 \
//	                -lo 2 -hi 5 [-platform 2 -mesh 1 -conf 1 -check] \
//	                [-metrics run.jsonl] [-trace run.json] [-listen :9090] \
//	                [-profile spans.txt] [-quiet]
//
// The live-telemetry flags mirror the other predtop commands: -metrics
// streams JSONL records (run config, the prediction, optional check result,
// a metrics snapshot); -trace writes a Chrome-tracing JSON file of the
// predict/check phases; -listen serves GET /metrics, /healthz,
// /debug/flightrecorder, and /debug/pprof/ while the command runs; -profile
// writes a self-time span tree; -quiet suppresses progress lines. A
// deterministic trace id derived from -seed joins all channels; with -check
// the predicted-vs-profiled residual feeds the accuracy gauges.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"predtop"
)

func main() {
	modelPath := flag.String("model", "model.predtop", "trained model path")
	bench := flag.String("bench", "GPT-3", "benchmark: GPT-3 or MoE")
	layers := flag.Int("layers", 0, "override benchmark depth (0 = Table IV)")
	lo := flag.Int("lo", 0, "stage start segment (inclusive)")
	hi := flag.Int("hi", 1, "stage end segment (exclusive)")
	platformSel := flag.Int("platform", 2, "platform for -check")
	meshIdx := flag.Int("mesh", 1, "mesh for -check")
	confIdx := flag.Int("conf", 1, "configuration for -check")
	check := flag.Bool("check", false, "compare against the simulator's profiled latency")
	seed := flag.Int64("seed", 1, "trace-identity seed (predictions are deterministic regardless)")
	metricsPath := flag.String("metrics", "", "write JSONL run records and a metrics snapshot to this file")
	tracePath := flag.String("trace", "", "write a Chrome-tracing (Perfetto) JSON file to this path")
	listen := flag.String("listen", "", "serve live telemetry (/metrics, /healthz, /debug/flightrecorder, /debug/pprof/) on this address, e.g. :9090")
	profilePath := flag.String("profile", "", "write a per-phase self-time span profile to this file")
	quiet := flag.Bool("quiet", false, "suppress progress output (the prediction still prints)")
	flag.Parse()

	tc := predtop.NewTraceContext(*seed, "predtop-predict")
	ctx := predtop.WithTraceContext(context.Background(), tc)
	fr := predtop.NewFlightRecorder(0)
	fr.SetTraceContext(tc)
	predtop.SetWorkerPanicHook(fr.PanicHook(os.Stderr))
	stopSig := fr.HandleSignals(os.Stderr)
	defer stopSig()

	lg := predtop.NewProgressLogger(os.Stderr, *quiet).WithTrace(tc)
	var sink *predtop.EventSink
	var reg *predtop.MetricsRegistry
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		sink = predtop.NewEventSink(f)
		sink.SetTraceContext(tc)
		sink.AttachFlight(fr)
		reg = predtop.NewMetricsRegistry()
	}
	var tb *predtop.TraceBuilder
	if *tracePath != "" {
		tb = predtop.NewTrace()
		tb.SetTraceID(tc.TraceID())
	}
	if *listen != "" {
		if reg == nil {
			reg = predtop.NewMetricsRegistry()
		}
		srv, err := predtop.StartMetricsServer(ctx, predtop.MetricsServerConfig{
			Addr: *listen, Registry: reg, Flight: fr,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		sampler := predtop.StartRuntimeSampler(reg, 0)
		defer sampler.Stop()
		lg.Printf("serving telemetry at %s/metrics", srv.URL())
	}
	reg.SetRunInfo(tc)
	var prof *predtop.SpanProfiler
	if *profilePath != "" {
		prof = predtop.NewSpanProfiler()
		if tb != nil {
			prof.AttachTrace(tb, "spans")
		}
	}
	var acc *predtop.AccuracyMonitor
	if reg != nil || sink != nil {
		acc = predtop.NewAccuracyMonitor(predtop.AccuracyConfig{MinSamples: 1, Metrics: reg, Log: lg})
	}

	trained, err := predtop.LoadTrained(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	cfg := predtop.GPT3Config()
	if strings.EqualFold(*bench, "MoE") {
		cfg = predtop.MoEConfig()
	}
	if *layers > 0 {
		cfg.Layers = *layers
	}
	model := predtop.BuildModel(cfg)
	if *lo < 0 || *hi > model.NumSegments() || *lo >= *hi {
		log.Fatalf("bad stage range [%d,%d) of %d segments", *lo, *hi, model.NumSegments())
	}

	fr.Note("run", "start")
	sink.Emit(struct {
		Event string `json:"event"`
		Tool  string `json:"tool"`
		Bench string `json:"bench"`
		Lo    int    `json:"lo"`
		Hi    int    `json:"hi"`
		Model string `json:"model"`
		Seed  int64  `json:"seed"`
	}{"run", "predtop-predict", cfg.Name, *lo, *hi, *modelPath, *seed})

	predSpan := tb.Begin("phases", "predict")
	ps := prof.Start("predict")
	enc := predtop.NewEncoder(model, true)
	sp := predtop.StageSpec{Lo: *lo, Hi: *hi}
	pred := trained.PredictEncoded(enc.Encode(sp))
	ps.End()
	predSpan.End()
	fr.Note("run", "predicted")
	fmt.Printf("%s stage [%d,%d) (%s): predicted %.3fms\n",
		cfg.Name, sp.Lo, sp.Hi, trained.Model.Name(), pred*1e3)
	sink.Emit(struct {
		Event       string  `json:"event"`
		Lo          int     `json:"lo"`
		Hi          int     `json:"hi"`
		PredictedMS float64 `json:"predicted_ms"`
	}{"prediction", sp.Lo, sp.Hi, pred * 1e3})

	if *check {
		platform := predtop.Platform2()
		if *platformSel == 1 {
			platform = predtop.Platform1()
		}
		found := false
		for _, sc := range predtop.Scenarios(platform) {
			if sc.Mesh.Index != *meshIdx || sc.Config.Index != *confIdx {
				continue
			}
			checkSpan := tb.Begin("phases", "check")
			cs := prof.Start("check")
			trueLat, _, ok := predtop.ProfileStage(model, sp, sc, predtop.DefaultProfiler())
			cs.End()
			checkSpan.End()
			if !ok {
				log.Fatalf("stage infeasible under %v", sc)
			}
			relErr := math.Abs(pred-trueLat) / trueLat * 100
			acc.Observe(predtop.AccuracyKey{
				Family: trained.Model.Name(),
				Mesh:   fmt.Sprintf("%dx%d", sc.Mesh.Nodes, sc.Mesh.GPUsPerNode),
				Op:     cfg.Name,
			}, pred, trueLat)
			fmt.Printf("profiled under %v: %.3fms (relative error %.2f%%)\n", sc, trueLat*1e3, relErr)
			sink.Emit(struct {
				Event      string  `json:"event"`
				ProfiledMS float64 `json:"profiled_ms"`
				RelErrPct  float64 `json:"rel_err_pct"`
			}{"check", trueLat * 1e3, relErr})
			found = true
			break
		}
		if !found {
			log.Fatalf("no scenario mesh=%d conf=%d", *meshIdx, *confIdx)
		}
	}

	acc.EmitTo(sink)
	sink.EmitMetrics(reg)
	if err := sink.Close(); err != nil {
		log.Fatalf("writing %s: %v", *metricsPath, err)
	}
	if *tracePath != "" {
		if err := tb.WriteFile(*tracePath); err != nil {
			log.Fatal(err)
		}
		lg.Printf("wrote trace to %s", *tracePath)
	}
	if *profilePath != "" {
		if err := prof.WriteFile(*profilePath); err != nil {
			log.Fatal(err)
		}
		lg.Printf("wrote span profile to %s", *profilePath)
	}
}
