// Quickstart: train a DAG Transformer latency predictor on profiled GPT-3
// pipeline stages and evaluate its accuracy — the core PredTOP loop
// (profile a sample → train → predict) on a single scenario.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"predtop"
)

func main() {
	// A 12-layer slice of GPT-3 keeps this example under a minute on a CPU;
	// swap in predtop.GPT3Config() for the full 24-layer benchmark.
	cfg := predtop.GPT3Config()
	cfg.Layers = 12
	model := predtop.BuildModel(cfg)
	fmt.Printf("model: %s with %d segments, %.2fB parameters\n",
		cfg.Name, model.NumSegments(), float64(model.TotalParams())/1e9)

	// Scenario: one A5500 GPU of Platform 2, no intra-operator parallelism.
	platform := predtop.Platform2()
	scenario := predtop.Scenarios(platform)[0]
	fmt.Printf("scenario: %v\n", scenario)

	// Profile every stage of up to 3 segments (in a real deployment this is
	// the expensive step PredTOP minimizes — here the simulator profiles).
	rng := rand.New(rand.NewSource(42))
	specs := predtop.SampleStages(model, rng, 0, 3)
	enc := predtop.NewEncoder(model, true)
	ds := predtop.BuildDataset(enc, specs, scenario, predtop.DefaultProfiler())
	fmt.Printf("profiled %d stages\n", len(ds.Samples))

	// Train on half the profiles, validate on 10%, test on the rest.
	train, val, test := predtop.Split(rng, len(ds.Samples), 0.5, 0.1)
	net := predtop.NewDAGTransformer(rng, predtop.TransformerConfig{
		Layers: 2, Dim: 32, Heads: 2, FFNDim: 64,
	})
	trained, res := predtop.Train(net, ds, train, val, predtop.TrainConfig{
		Epochs: 30, Patience: 10, BatchSize: 4,
	})
	fmt.Printf("trained %d epochs (best val loss %.4f) in %.1fs\n",
		res.EpochsRun, res.BestValLoss, res.WallSeconds)

	// Evaluate: mean relative error (Eqn 5) on held-out stages.
	fmt.Printf("test MRE: %.2f%%\n", trained.MRE(ds, test))

	// Predict a stage the planner might ask about.
	sp := predtop.StageSpec{Lo: 2, Hi: 5}
	pred := trained.PredictEncoded(enc.Encode(sp))
	trueLat, _, _ := predtop.ProfileStage(model, sp, scenario, predtop.DefaultProfiler())
	fmt.Printf("stage [%d,%d): predicted %.3fms, profiled %.3fms\n",
		sp.Lo, sp.Hi, pred*1e3, trueLat*1e3)
}
