// custommodel: using PredTOP on a model that is not one of the paper's
// benchmarks. Any dense or mixture-of-experts decoder architecture can be
// described with a ModelConfig; everything downstream — stage slicing,
// graph pruning, Table-I encoding, profiling, training, planning — works
// unchanged. This example defines a small "LLaMA-ish" configuration and
// compares the GCN baseline against the DAG Transformer on it.
//
// Run with:
//
//	go run ./examples/custommodel
package main

import (
	"fmt"
	"math/rand"

	"predtop"
)

func main() {
	cfg := predtop.ModelConfig{
		Name:   "Custom-0.4B",
		SeqLen: 2048, Hidden: 1024, Layers: 16, Heads: 16, Vocab: 32000,
	}
	model := predtop.BuildModel(cfg)
	fmt.Printf("custom model: %d segments, %.2fB parameters\n",
		model.NumSegments(), float64(model.TotalParams())/1e9)

	// Train both predictors on profiled stages of the new model.
	platform := predtop.Platform1()
	scenario := predtop.Scenarios(platform)[2] // mesh 2, 2-way model parallel
	fmt.Printf("scenario: %v\n", scenario)

	rng := rand.New(rand.NewSource(11))
	specs := predtop.SampleStages(model, rng, 0, 3)
	enc := predtop.NewEncoder(model, true)
	ds := predtop.BuildDataset(enc, specs, scenario, predtop.DefaultProfiler())
	train, val, test := predtop.Split(rng, len(ds.Samples), 0.5, 0.1)
	fmt.Printf("profiled %d stages (%d train / %d val / %d test)\n",
		len(ds.Samples), len(train), len(val), len(test))

	tcfg := predtop.TrainConfig{Epochs: 25, Patience: 10, BatchSize: 4}
	nets := []predtop.PredictorModel{
		predtop.NewGCN(rng, predtop.GCNConfig{Layers: 4, Dim: 48}),
		predtop.NewDAGTransformer(rng, predtop.TransformerConfig{Layers: 2, Dim: 32, Heads: 2, FFNDim: 64}),
	}
	for _, net := range nets {
		trained, res := predtop.Train(net, ds, train, val, tcfg)
		fmt.Printf("%-4s: test MRE %.2f%% (%d epochs, %.1fs)\n",
			net.Name(), trained.MRE(ds, test), res.EpochsRun, res.WallSeconds)
	}
}
