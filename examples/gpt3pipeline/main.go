// gpt3pipeline: end-to-end automatic parallelization of GPT-3 on the
// 2-node × 2-GPU Platform 2 — the paper's Fig-10 use case in miniature.
// It searches for the optimal (stage partition, submesh assignment) plan
// twice: once with exhaustive profiling (vanilla Alpa) and once with a
// trained DAG Transformer predictor (PredTOP), then compares optimization
// cost and resulting plan quality.
//
// Run with:
//
//	go run ./examples/gpt3pipeline
package main

import (
	"fmt"

	"predtop"
)

func main() {
	cfg := predtop.GPT3Config()
	cfg.Layers = 12 // keep the example fast; the paper's run uses 24
	model := predtop.BuildModel(cfg)
	platform := predtop.Platform2()
	prof := predtop.DefaultProfiler()
	opts := predtop.PlanOptions{Microbatches: 16, MaxStageLen: 7}

	// --- Vanilla Alpa: profile every (stage, mesh) pair. ---
	fullMeter := &predtop.CostMeter{}
	fullPlan, ok := predtop.OptimizePlan(model.NumSegments(), platform,
		predtop.FullProfiling(model, prof, fullMeter), opts)
	if !ok {
		panic("no plan found with full profiling")
	}
	fullLat, _ := predtop.EvaluatePlan(model, fullPlan, opts.Microbatches)
	fmt.Printf("Alpa full profiling: %d profiles, %.0f simulated seconds of optimization\n",
		fullMeter.StagesProfiled, fullMeter.Total())
	describe("full-profiling plan", model, fullPlan, fullLat)

	// --- PredTOP: profile a sample, train, predict the rest. ---
	predMeter := &predtop.CostMeter{}
	latFn := predtop.TrainPredictorProvider(model, platform, predtop.PredictorOptions{
		Kind:        predtop.KindTransformer,
		SampleFrac:  0.2,
		MaxStageLen: opts.MaxStageLen,
		Train:       predtop.TrainConfig{Epochs: 15, Patience: 8, BatchSize: 4},
		Tran:        predtop.TransformerConfig{Layers: 2, Dim: 32, Heads: 2, FFNDim: 64},
		Seed:        7,
	}, prof, predMeter)
	predPlan, ok := predtop.OptimizePlan(model.NumSegments(), platform, latFn, opts)
	if !ok {
		panic("no plan found with predictions")
	}
	predLat, _ := predtop.EvaluatePlan(model, predPlan, opts.Microbatches)
	fmt.Printf("\nPredTOP: %d profiles, %.0f simulated seconds "+
		"(profile %.0f + train %.0f + infer %.0f)\n",
		predMeter.StagesProfiled, predMeter.Total(),
		predMeter.ProfileSeconds, predMeter.TrainSeconds, predMeter.InferSeconds)
	describe("PredTOP plan", model, predPlan, predLat)

	fmt.Printf("\noptimization cost: %.1f%% of full profiling; "+
		"plan latency: %+.1f%% vs full profiling\n",
		predMeter.Total()/fullMeter.Total()*100,
		(predLat-fullLat)/fullLat*100)
}

func describe(name string, model *predtop.Model, plan predtop.Plan, iterLat float64) {
	fmt.Printf("%s (%d stages, iteration latency %.3fs):\n", name, plan.NumStages(), iterLat)
	for i, sp := range plan.Stages {
		lat, _ := predtop.TrueStageLatency(model, sp, plan.Meshes[i])
		fmt.Printf("  stage %d: segments [%2d,%2d) on %v — %.3fms\n",
			i+1, sp.Lo, sp.Hi, plan.Meshes[i], lat*1e3)
	}
}
