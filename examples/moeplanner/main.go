// moeplanner: white-box pipeline analysis of a Mixture-of-Experts model.
// It plans MoE training across Platform 2, breaks the chosen plan down with
// the Eqn-4 white-box model, renders the 1F1B schedule timeline (Fig 6
// style), and shows how the microbatch count moves the bottleneck's weight.
//
// Run with:
//
//	go run ./examples/moeplanner
package main

import (
	"fmt"

	"predtop"
	"predtop/internal/pipeline"
)

func main() {
	cfg := predtop.MoEConfig()
	cfg.Layers = 12 // keep the example fast; the paper's run uses 32
	model := predtop.BuildModel(cfg)
	platform := predtop.Platform2()
	fmt.Printf("model: %s, %d segments, %.2fB parameters (%d experts/MoE layer)\n",
		cfg.Name, model.NumSegments(), float64(model.TotalParams())/1e9, cfg.Experts)

	// Plan with the simulator's exact stage latencies (oracle source): this
	// example is about the white-box side, not prediction error.
	meter := &predtop.CostMeter{}
	latFn := predtop.FullProfiling(model, predtop.DefaultProfiler(), meter)
	opts := predtop.PlanOptions{Microbatches: 16, MaxStageLen: 7}
	plan, ok := predtop.OptimizePlan(model.NumSegments(), platform, latFn, opts)
	if !ok {
		panic("no feasible plan")
	}

	// White-box breakdown: per-stage latency, bottleneck, Eqn 4.
	lats := make([]float64, plan.NumStages())
	fmt.Printf("\noptimized pipeline (%d stages):\n", plan.NumStages())
	for i, sp := range plan.Stages {
		lats[i], _ = predtop.TrueStageLatency(model, sp, plan.Meshes[i])
		fmt.Printf("  stage %d: segments [%2d,%2d) on %v — %.3fms\n",
			i+1, sp.Lo, sp.Hi, plan.Meshes[i], lats[i]*1e3)
	}
	bi, bmax := pipeline.Bottleneck(lats)
	fmt.Printf("bottleneck: stage %d at %.3fms\n", bi+1, bmax*1e3)

	for _, b := range []int{1, 4, 16, 64} {
		closed := predtop.PipelineLatency(lats, b)
		simulated, _ := predtop.SimulatePipeline(lats, b)
		fmt.Printf("B=%2d microbatches: Eqn 4 = %.4fs, schedule simulator = %.4fs\n",
			b, closed, simulated)
	}

	fmt.Println("\nschedule timeline (3 microbatches):")
	fmt.Print(pipeline.RenderTimeline(lats, 3, 66))
}
