package predtop

// One benchmark per table and figure of the paper's evaluation (§VIII).
// Each bench regenerates its artifact end-to-end at the "quick" preset —
// shrunken models, thin grid — so `go test -bench=.` exercises every
// experiment pipeline in minutes; the recorded results in EXPERIMENTS.md
// come from the "paper" preset via the cmd/ tools.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"predtop/internal/cluster"
	"predtop/internal/experiments"
	"predtop/internal/stage"
)

// benchPreset is the quick preset with a fixed seed per bench iteration.
func benchPreset(i int) experiments.Preset {
	p := experiments.Quick()
	p.Seed = int64(i + 1)
	return p
}

func reportTable(b *testing.B, t *experiments.MRETable) {
	b.ReportMetric(t.WinRate(2)*100, "tran-win-%")
	// Mean Tran MRE at the largest fraction, the headline accuracy number.
	fi := len(t.Fractions) - 1
	sum := 0.0
	for si := range t.Scenarios {
		sum += t.MRE[fi][si][2]
	}
	b.ReportMetric(sum/float64(len(t.Scenarios)), "tran-MRE-%")
}

// BenchmarkTableV_GPT3 regenerates Table V(a): MRE grid, GPT-3 on Platform 1.
func BenchmarkTableV_GPT3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchPreset(i)
		t := experiments.RunMRETable(p, p.Benchmarks()[0], cluster.Platform1(), nil)
		reportTable(b, t)
	}
}

// BenchmarkTableV_MoE regenerates Table V(b): MRE grid, MoE on Platform 1.
func BenchmarkTableV_MoE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchPreset(i)
		t := experiments.RunMRETable(p, p.Benchmarks()[1], cluster.Platform1(), nil)
		reportTable(b, t)
	}
}

// BenchmarkTableVI_GPT3 regenerates Table VI(a): MRE grid, GPT-3 on
// Platform 2 (meshes 1–3).
func BenchmarkTableVI_GPT3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchPreset(i)
		t := experiments.RunMRETable(p, p.Benchmarks()[0], cluster.Platform2(), nil)
		reportTable(b, t)
	}
}

// BenchmarkTableVI_MoE regenerates Table VI(b): MRE grid, MoE on Platform 2.
func BenchmarkTableVI_MoE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchPreset(i)
		t := experiments.RunMRETable(p, p.Benchmarks()[1], cluster.Platform2(), nil)
		reportTable(b, t)
	}
}

// BenchmarkFig2PlanVariation regenerates Fig 2: the latency spread of random
// parallelization plans of both benchmarks on Platform 2.
func BenchmarkFig2PlanVariation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := experiments.RunFig2(benchPreset(i), nil)
		for _, r := range rs {
			b.ReportMetric(r.Spread(), "spread-"+r.Benchmark)
		}
	}
}

// BenchmarkFig3GCNvsTransformer regenerates Fig 3: GCN vs DAG Transformer
// MRE across runtime configurations.
func BenchmarkFig3GCNvsTransformer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchPreset(i)
		t := experiments.RunMRETable(p, p.Benchmarks()[0], cluster.Platform2(), nil)
		out := experiments.RenderFig3([]*experiments.MRETable{t}, p.Fractions[len(p.Fractions)-1])
		if len(out) == 0 {
			b.Fatal("empty Fig 3")
		}
	}
}

// BenchmarkFig6Pipeline regenerates Fig 6: the 1F1B pipeline timeline and
// validates Eqn 4 against the schedule simulator.
func BenchmarkFig6Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.RenderFig6(); len(out) == 0 {
			b.Fatal("empty Fig 6")
		}
	}
}

// BenchmarkFig8MeanMRE regenerates Fig 8: mean MRE across scenarios per
// model and training fraction.
func BenchmarkFig8MeanMRE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchPreset(i)
		t := experiments.RunMRETable(p, p.Benchmarks()[0], cluster.Platform1(), nil)
		aggs := experiments.Aggregates([]*experiments.MRETable{t})
		if out := experiments.RenderAggregates(aggs, false); len(out) == 0 {
			b.Fatal("empty Fig 8")
		}
	}
}

// BenchmarkFig9StdMRE regenerates Fig 9: standard deviation of MREs across
// scenarios (the stability comparison).
func BenchmarkFig9StdMRE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchPreset(i)
		t := experiments.RunMRETable(p, p.Benchmarks()[0], cluster.Platform1(), nil)
		aggs := experiments.Aggregates([]*experiments.MRETable{t})
		if out := experiments.RenderAggregates(aggs, true); len(out) == 0 {
			b.Fatal("empty Fig 9")
		}
	}
}

// BenchmarkFig10aOptimizationCost regenerates Fig 10a: optimization cost of
// the five planner versions on the GPT-3 benchmark.
func BenchmarkFig10aOptimizationCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchPreset(i)
		runs := experiments.RunFig10(p, p.Benchmarks()[0], nil)
		var partial, tran float64
		for _, r := range runs {
			if r.Version == "Alpa-Partial" {
				partial = r.OptimizeSeconds
			}
			if r.Version == "PredTOP-Tran" {
				tran = r.OptimizeSeconds
			}
		}
		if partial > 0 {
			b.ReportMetric((partial-tran)/partial*100, "cost-saving-%")
		}
	}
}

// BenchmarkFig10bPlanQuality regenerates Fig 10b: iteration latency of the
// plans produced by the five planner versions (MoE benchmark).
func BenchmarkFig10bPlanQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchPreset(i)
		runs := experiments.RunFig10(p, p.Benchmarks()[1], nil)
		var full, tran float64
		for _, r := range runs {
			if r.Version == "Alpa-Full" {
				full = r.IterationLatency
			}
			if r.Version == "PredTOP-Tran" {
				tran = r.IterationLatency
			}
		}
		if full > 0 {
			b.ReportMetric((tran-full)/full*100, "latency-degradation-%")
		}
	}
}

// Example of the one-line white-box model (Eqn 4), kept here so the root
// package has an executable doc example.
func ExamplePipelineLatency() {
	fmt.Println(PipelineLatency([]float64{1, 3, 1, 1}, 3))
	// Output: 12
}

var (
	benchTrainOnce sync.Once
	benchTrainDS   *Dataset
	benchTrainIdx  []int
	benchValIdx    []int
)

// benchTrainData profiles a shared dataset once: a shrunken GPT-3 stage
// universe under the first Platform-1 scenario, split 70/20/10.
func benchTrainData() (*Dataset, []int, []int) {
	benchTrainOnce.Do(func() {
		cfg := GPT3Config()
		cfg.Layers = 8
		model := BuildModel(cfg)
		rng := rand.New(rand.NewSource(1))
		specs := SampleStages(model, rng, 0, 2)
		enc := NewEncoder(model, true)
		benchTrainDS = BuildDataset(enc, specs, Scenarios(Platform1())[0], DefaultProfiler())
		benchTrainIdx, benchValIdx, _ = Split(rng, len(benchTrainDS.Samples), 0.7, 0.2)
	})
	return benchTrainDS, benchTrainIdx, benchValIdx
}

func benchTrain(b *testing.B, workers int) {
	ds, trainIdx, valIdx := benchTrainData()
	b.ResetTimer()
	var loss float64
	for i := 0; i < b.N; i++ {
		net := NewDAGTransformer(rand.New(rand.NewSource(7)),
			TransformerConfig{Layers: 2, Dim: 32, Heads: 2, FFNDim: 64})
		_, res := Train(net, ds, trainIdx, valIdx, TrainConfig{
			Epochs: 6, Patience: 6, BatchSize: 8, Seed: 1, Workers: workers,
		})
		loss = res.BestValLoss
	}
	b.ReportMetric(loss, "best-val-loss")
}

// BenchmarkTrainSerial is the single-worker baseline for the data-parallel
// training engine.
func BenchmarkTrainSerial(b *testing.B) { benchTrain(b, 1) }

// BenchmarkTrainParallel trains the identical recipe with one worker per
// core. Compare ns/op against BenchmarkTrainSerial for the speedup;
// best-val-loss is bitwise identical between the two by construction
// (deterministic fixed-order gradient reduction) — TestTrainDeterminismNote
// enforces it.
func BenchmarkTrainParallel(b *testing.B) { benchTrain(b, 0) }

// TestTrainDeterminismNote proves the serial/parallel benchmark pair above
// optimizes identically: same weights, same loss, any worker count.
func TestTrainDeterminismNote(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by internal/predictor determinism tests")
	}
	ds, trainIdx, valIdx := benchTrainData()
	run := func(workers int) float64 {
		net := NewDAGTransformer(rand.New(rand.NewSource(7)),
			TransformerConfig{Layers: 1, Dim: 16, Heads: 2, FFNDim: 32})
		_, res := Train(net, ds, trainIdx, valIdx, TrainConfig{
			Epochs: 2, Patience: 2, BatchSize: 8, Seed: 1, Workers: workers,
		})
		return res.BestValLoss
	}
	serial, parallel := run(1), run(0)
	if math.Float64bits(serial) != math.Float64bits(parallel) {
		t.Fatalf("serial %v != parallel %v", serial, parallel)
	}
}

// BenchmarkAblation regenerates the DAG-Transformer design ablation
// (DAGRA / DAGPE / pruning / loss) on the GPT-3 benchmark.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchPreset(i)
		rows := experiments.RunAblation(p, p.Benchmarks()[0], cluster.Platform1(), 0.5, nil)
		for _, r := range rows {
			if r.Variant == "full" {
				b.ReportMetric(r.MRE, "full-MRE-%")
			}
		}
	}
}

var (
	benchPredictOnce    sync.Once
	benchPredictTrained Trained
	benchPredictPool    []*stage.Encoded
)

// benchPredictSetup trains one small DAG-Transformer predictor and encodes a
// ragged pool of GPT-3 stage graphs, shared by every PredictBatch size.
func benchPredictSetup() (Trained, []*stage.Encoded) {
	benchPredictOnce.Do(func() {
		ds, trainIdx, valIdx := benchTrainData()
		net := NewDAGTransformer(rand.New(rand.NewSource(7)),
			TransformerConfig{Layers: 2, Dim: 32, Heads: 2, FFNDim: 64})
		benchPredictTrained, _ = Train(net, ds, trainIdx, valIdx, TrainConfig{
			Epochs: 2, Patience: 2, BatchSize: 8, Seed: 1,
		})
		cfg := GPT3Config()
		cfg.Layers = 8
		enc := NewEncoder(BuildModel(cfg), true)
		for _, sp := range []stage.Spec{{Lo: 0, Hi: 2}, {Lo: 1, Hi: 3}, {Lo: 2, Hi: 4}, {Lo: 0, Hi: 3}, {Lo: 3, Hi: 4}, {Lo: 1, Hi: 2}} {
			benchPredictPool = append(benchPredictPool, enc.Encode(sp))
		}
	})
	return benchPredictTrained, benchPredictPool
}

// BenchmarkPredictBatch measures the fused batched forward at fixed batch
// sizes: each op predicts B ragged stage graphs through PredictEncodedBatch,
// which pads them into one blocked panel per layer. Compare per-graph cost
// (ns/op ÷ B) across the B=1/8/64 series for the amortization curve —
// results are bitwise identical to B serial PredictEncoded calls at every
// size, so this dial trades nothing but wall time.
func BenchmarkPredictBatch(b *testing.B) {
	trained, pool := benchPredictSetup()
	var sink float64
	for _, size := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("B=%d", size), func(b *testing.B) {
			batch := make([]*stage.Encoded, size)
			for i := range batch {
				batch[i] = pool[i%len(pool)]
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := trained.PredictEncodedBatch(batch, 0)
				sink = out[0]
			}
		})
	}
	if math.IsNaN(sink) {
		b.Fatal("NaN prediction")
	}
}

// BenchmarkServeReplay measures the serving daemon end to end: a tiny
// predictor is trained and saved, predtop-serve's Start brings it up on an
// ephemeral port, and a 100k-query synthetic replay hammers /predict from 32
// concurrent clients. Reported metrics are the serving SLOs: throughput,
// client-side P50/P95, the LRU hit rate, and the mean coalesced batch size
// (> 1 means batched forwards actually happened).
func BenchmarkServeReplay(b *testing.B) {
	dir := b.TempDir()
	cfg := GPT3Config()
	cfg.Layers = 4
	m := BuildModel(cfg)
	rng := rand.New(rand.NewSource(1))
	specs := SampleStages(m, rng, 10, 3)
	enc := NewEncoder(m, true)
	ds := BuildDataset(enc, specs, Scenarios(Platform1())[0], DefaultProfiler())
	var trainIdx, valIdx []int
	for i := range ds.Samples {
		if i%4 == 3 {
			valIdx = append(valIdx, i)
		} else {
			trainIdx = append(trainIdx, i)
		}
	}
	net := NewDAGTransformer(rng, TransformerConfig{Layers: 1, Dim: 16, Heads: 2, FFNDim: 32})
	trained, _ := Train(net, ds, trainIdx, valIdx, TrainConfig{Epochs: 2, Patience: 2, BatchSize: 4, Seed: 1})
	if err := SaveTrained(dir+"/tran.predtop", trained); err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := StartServe(ctx, ServeConfig{
		ModelDir: dir, Window: 2 * time.Millisecond, Metrics: NewMetricsRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ServeReplay(ServeReplayConfig{
			URL: srv.URL(), Queries: 100000, Concurrency: 32,
			Seed: int64(i + 1), Layers: 4, MaxLen: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Errors > 0 {
			b.Fatalf("%d of %d replay queries failed", res.Errors, res.Queries)
		}
		b.ReportMetric(res.QPS, "qps")
		b.ReportMetric(res.P50ms, "p50-ms")
		b.ReportMetric(res.P95ms, "p95-ms")
		b.ReportMetric(res.CacheHitRate*100, "lru-hit-%")
		b.ReportMetric(res.MeanBatch, "mean-batch")
		b.ReportMetric(res.MaxBatch, "max-batch")
	}
}
