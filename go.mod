module predtop

go 1.22
