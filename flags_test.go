package predtop

import (
	"os"
	"regexp"
	"testing"
)

// flagDecl matches a top-level flag declaration in a command's main.go and
// captures the flag name. The commands declare every flag with the stdlib
// flag package, so scanning source keeps this test in sync without running
// the binaries.
var flagDecl = regexp.MustCompile(`flag\.(?:String|Bool|Int|Int64|Float64|Duration)\("([a-z0-9-]+)"`)

// TestCLIFlagParity pins the cross-cutting flag contract between the
// run-producing commands: every tool that records into the run ledger takes
// the same -seed/-quiet/-runledger trio, and the experiment drivers share
// the same telemetry flag set. A new command (or a renamed flag) that breaks
// the convention fails here with the tool and flag named.
func TestCLIFlagParity(t *testing.T) {
	runProducers := []string{
		"predtop-train", "predtop-eval", "predtop-plan", "predtop-serve", "predtop-replay",
	}
	experimentDrivers := []string{"predtop-train", "predtop-eval", "predtop-plan"}

	groups := []struct {
		what  string
		flags []string
		tools []string
	}{
		{"ledger trio", []string{"seed", "quiet", "runledger"}, runProducers},
		{"telemetry set", []string{"workers", "metrics", "trace", "listen", "profile", "driftmre"}, experimentDrivers},
	}

	declared := map[string]map[string]bool{}
	for _, tool := range runProducers {
		src, err := os.ReadFile("cmd/" + tool + "/main.go")
		if err != nil {
			t.Fatal(err)
		}
		flags := map[string]bool{}
		for _, m := range flagDecl.FindAllStringSubmatch(string(src), -1) {
			flags[m[1]] = true
		}
		if len(flags) == 0 {
			t.Fatalf("%s: no flag declarations found; has the declaration style changed?", tool)
		}
		declared[tool] = flags
	}

	for _, g := range groups {
		for _, tool := range g.tools {
			for _, name := range g.flags {
				if !declared[tool][name] {
					t.Errorf("%s: missing -%s (%s parity)", tool, name, g.what)
				}
			}
		}
	}
}
