// Package models builds tensor-level operator graphs (internal/ir) for the
// two benchmark models of the paper's evaluation (Table IV): GPT-3 1.3B and
// GShard-MoE 2.6B.
//
// A model is a sequence of segments — token embedding, decoder layers
// (dense or mixture-of-experts), and the LM head. A pipeline stage is a
// contiguous segment range; StageGraph emits its forward and (optionally)
// backward operators exactly the way Alpa slices a model's jaxpr into stage
// jaxprs before intra-operator compilation.
package models

import (
	"fmt"

	"predtop/internal/ir"
	"predtop/internal/obs"
)

// Config describes a benchmark model (Table IV).
type Config struct {
	Name         string
	SeqLen       int // tokens per microbatch
	Hidden       int
	Layers       int
	Heads        int
	Vocab        int
	Experts      int // 0 = dense model
	ExpertHidden int // expert FFN hidden size (MoE only)
	MoEEvery     int // every k-th decoder layer is MoE (GShard uses 2)
	Act          ir.DType
}

// GPT3 returns the GPT-3 1.3B configuration from Table IV.
func GPT3() Config {
	return Config{
		Name:   "GPT-3",
		SeqLen: 1024, Hidden: 2048, Layers: 24, Heads: 32, Vocab: 51200,
		Act: ir.BF16,
	}
}

// MoE returns the GShard-MoE 2.6B configuration from Table IV.
func MoE() Config {
	return Config{
		Name:   "MoE",
		SeqLen: 1024, Hidden: 768, Layers: 32, Heads: 16, Vocab: 32000,
		Experts: 16, ExpertHidden: 2048, MoEEvery: 2,
		Act: ir.BF16,
	}
}

// SegmentKind identifies the role of a model segment.
type SegmentKind uint8

// Segment kinds.
const (
	SegEmbedding SegmentKind = iota
	SegDecoder
	SegMoEDecoder
	SegHead
)

// String implements fmt.Stringer.
func (k SegmentKind) String() string {
	switch k {
	case SegEmbedding:
		return "embedding"
	case SegDecoder:
		return "decoder"
	case SegMoEDecoder:
		return "moe-decoder"
	case SegHead:
		return "head"
	}
	return "segment"
}

// Segment is one pipeline-sliceable unit of the model.
type Segment struct {
	Name  string
	Kind  SegmentKind
	Index int // decoder layer index, −1 for embedding/head
}

// Model is a benchmark model ready to emit stage graphs.
type Model struct {
	Config   Config
	Segments []Segment
	// Prof, when non-nil, times every StageGraph emission as a
	// "stage_graph[lo:hi)" span — the planner's latency queries rebuild
	// stage graphs constantly, so this is where simulator-side time goes.
	// A nil profiler costs nothing (obs no-op contract).
	Prof *obs.Profiler
}

// Build constructs the segment list for cfg.
func Build(cfg Config) *Model {
	m := &Model{Config: cfg}
	m.Segments = append(m.Segments, Segment{Name: "embed", Kind: SegEmbedding, Index: -1})
	for i := 0; i < cfg.Layers; i++ {
		kind := SegDecoder
		if cfg.Experts > 0 && cfg.MoEEvery > 0 && i%cfg.MoEEvery == 1 {
			kind = SegMoEDecoder
		}
		m.Segments = append(m.Segments, Segment{Name: fmt.Sprintf("layer%d", i), Kind: kind, Index: i})
	}
	m.Segments = append(m.Segments, Segment{Name: "head", Kind: SegHead, Index: -1})
	return m
}

// NumSegments returns the number of sliceable segments.
func (m *Model) NumSegments() int { return len(m.Segments) }

// SegmentParams returns the trainable-parameter count of segment i.
func (m *Model) SegmentParams(i int) int64 {
	c := m.Config
	h := int64(c.Hidden)
	switch m.Segments[i].Kind {
	case SegEmbedding:
		return int64(c.Vocab)*h + int64(c.SeqLen)*h
	case SegDecoder:
		// QKV + out projection + dense FFN (4×hidden) + layer norms.
		return 4*h*h + 8*h*h + 4*h
	case SegMoEDecoder:
		attn := 4 * h * h
		gate := h * int64(c.Experts)
		experts := int64(c.Experts) * 2 * h * int64(c.ExpertHidden)
		return attn + gate + experts + 4*h
	case SegHead:
		return h * int64(c.Vocab)
	}
	return 0
}

// TotalParams returns the model's total trainable-parameter count.
func (m *Model) TotalParams() int64 {
	var t int64
	for i := range m.Segments {
		t += m.SegmentParams(i)
	}
	return t
}

// StageGraph emits the operator graph for segments [lo, hi). When backward
// is true (training stages — the case the paper profiles) the backward pass
// is appended.
func (m *Model) StageGraph(lo, hi int, backward bool) *ir.Graph {
	if lo < 0 || hi > len(m.Segments) || lo >= hi {
		panic(fmt.Sprintf("models: bad stage range [%d,%d) of %d", lo, hi, len(m.Segments)))
	}
	if m.Prof.Enabled() { // skip span-name formatting when profiling is off
		sp := m.Prof.Start(fmt.Sprintf("stage_graph[%d:%d)", lo, hi))
		defer sp.End()
	}
	c := m.Config
	b := ir.NewBuilder()
	e := emitter{b: b, cfg: c}

	var x *ir.Node
	if m.Segments[lo].Kind == SegEmbedding {
		ids := b.Input("ids", []int{c.SeqLen}, ir.I32)
		x = e.embedding(ids)
		lo++
	} else {
		x = b.Input("act", []int{c.SeqLen, c.Hidden}, c.Act)
	}
	for i := lo; i < hi; i++ {
		switch m.Segments[i].Kind {
		case SegDecoder:
			x = e.decoder(x, m.Segments[i].Index, false)
		case SegMoEDecoder:
			x = e.decoder(x, m.Segments[i].Index, true)
		case SegHead:
			x = e.head(x)
		case SegEmbedding:
			panic("models: embedding segment must be first in a stage")
		}
	}
	b.Output(x)
	if backward {
		b.AppendBackward()
	}
	return b.Graph()
}

// emitter emits segment subgraphs into one builder.
type emitter struct {
	b   *ir.Builder
	cfg Config
}

// scalar emits a scalar literal in x's dtype (1/√d, GELU constants, …);
// element-wise ops broadcast it implicitly, as jaxprs do after
// canonicalization.
func (e *emitter) scalar(name string, x *ir.Node) *ir.Node {
	return e.b.Literal(name, []int{1}, x.DType)
}

// layerNorm emits a decomposed layer normalization over the last axis of x
// plus the learned affine transform. Note the affine weights are rank-1 but
// multiply a rank-2 activation; jaxprs express this with broadcasts that the
// pruner would elide, so we emit the fused pattern directly.
func (e *emitter) layerNorm(name string, x *ir.Node) *ir.Node {
	b := e.b
	d := len(x.Shape) - 1
	mean := b.Reduce(ir.KindReduceSum, x, d)
	mean = b.Ewise(ir.KindMul, mean, e.scalar(name+".invd", x))
	xc := b.Ewise(ir.KindSub, x, mean)
	sq := b.Ewise(ir.KindMul, xc, xc)
	varr := b.Reduce(ir.KindReduceSum, sq, d)
	inv := b.Unary(ir.KindRsqrt, varr)
	xn := b.Ewise(ir.KindMul, xc, inv)
	// Affine transform along the hidden axis: emitted as a rank-2 literal
	// row so the element-wise broadcast stays prefix-shaped.
	gamma := b.Weight(name+".gamma", []int{e.cfg.Hidden}, ir.F32)
	beta := b.Weight(name+".beta", []int{e.cfg.Hidden}, ir.F32)
	xn = b.Ewise(ir.KindMul, xn, b.Broadcast(b.Convert(gamma, x.DType), x.Shape))
	return b.Ewise(ir.KindAdd, xn, b.Broadcast(b.Convert(beta, x.DType), x.Shape))
}

// linear emits x·W with weights stored in f32 and converted to the
// activation dtype (the mixed-precision pattern that makes
// convert_element_type pruning worthwhile).
func (e *emitter) linear(name string, x *ir.Node, in, out int) *ir.Node {
	b := e.b
	w := b.Weight(name+".w", []int{in, out}, ir.F32)
	return b.Dot(x, b.Convert(w, x.DType))
}

// gelu emits the erf-form GELU: x·(1 + erf(x/√2))/2.
func (e *emitter) gelu(name string, x *ir.Node) *ir.Node {
	b := e.b
	scaled := b.Ewise(ir.KindMul, x, e.scalar(name+".isqrt2", x))
	erf := b.Unary(ir.KindErf, scaled)
	one := b.Ewise(ir.KindAdd, erf, e.scalar(name+".one", erf))
	return b.Ewise(ir.KindMul, b.Ewise(ir.KindMul, x, one), e.scalar(name+".half", x))
}

// softmaxLastAxis emits the decomposed numerically-stable softmax.
func (e *emitter) softmaxLastAxis(x *ir.Node) *ir.Node {
	b := e.b
	d := len(x.Shape) - 1
	mx := b.Reduce(ir.KindReduceMax, x, d)
	ex := b.Unary(ir.KindExp, b.Ewise(ir.KindSub, x, mx))
	z := b.Reduce(ir.KindReduceSum, ex, d)
	return b.Ewise(ir.KindDiv, ex, z)
}

// embedding emits token + position embedding lookup: ids [S] → [S, H].
func (e *emitter) embedding(ids *ir.Node) *ir.Node {
	b, c := e.b, e.cfg
	table := b.Weight("embed.tok", []int{c.Vocab, c.Hidden}, ir.F32)
	x := b.Gather(table, ids, []int{c.SeqLen, c.Hidden})
	x = b.Convert(x, c.Act)
	pos := b.Weight("embed.pos", []int{c.SeqLen, c.Hidden}, ir.F32)
	return b.Ewise(ir.KindAdd, x, b.Convert(pos, c.Act))
}

// attention emits multi-head causal self-attention on x [S, H].
func (e *emitter) attention(name string, x *ir.Node) *ir.Node {
	b, c := e.b, e.cfg
	s, h := c.SeqLen, c.Hidden
	dk := h / c.Heads
	q := e.linear(name+".q", x, h, h)
	k := e.linear(name+".k", x, h, h)
	v := e.linear(name+".v", x, h, h)
	// [S, H] → [heads, S, dk]
	qh := b.Transpose(b.Reshape(q, []int{s, c.Heads, dk}), 1, 0, 2)
	kh := b.Transpose(b.Reshape(k, []int{s, c.Heads, dk}), 1, 2, 0) // [heads, dk, S]
	vh := b.Transpose(b.Reshape(v, []int{s, c.Heads, dk}), 1, 0, 2)
	scores := b.Dot(qh, kh) // [heads, S, S]
	scores = b.Ewise(ir.KindMul, scores, e.scalar(name+".scale", scores))
	mask := b.Literal(name+".causal", scores.Shape, c.Act)
	scores = b.Ewise(ir.KindAdd, scores, mask)
	probs := e.softmaxLastAxis(scores)
	ctxv := b.Dot(probs, vh) // [heads, S, dk]
	out := b.Reshape(b.Transpose(ctxv, 1, 0, 2), []int{s, h})
	return e.linear(name+".o", out, h, h)
}

// decoder emits one transformer decoder layer (dense or MoE FFN).
func (e *emitter) decoder(x *ir.Node, layer int, moe bool) *ir.Node {
	b := e.b
	name := fmt.Sprintf("l%d", layer)
	attnIn := e.layerNorm(name+".ln1", x)
	x = b.Ewise(ir.KindAdd, x, e.attention(name+".attn", attnIn))
	ffnIn := e.layerNorm(name+".ln2", x)
	var ffnOut *ir.Node
	if moe {
		ffnOut = e.moeFFN(name+".moe", ffnIn)
	} else {
		ffnOut = e.denseFFN(name+".ffn", ffnIn)
	}
	return b.Ewise(ir.KindAdd, x, ffnOut)
}

// denseFFN emits the standard H→4H→H feed-forward block.
func (e *emitter) denseFFN(name string, x *ir.Node) *ir.Node {
	h := e.cfg.Hidden
	up := e.linear(name+".up", x, h, 4*h)
	return e.linear(name+".down", e.gelu(name, up), 4*h, h)
}

// moeFFN emits a GShard-style top-1 routed mixture-of-experts block:
// gating, dispatch, per-expert batched FFN, combine.
func (e *emitter) moeFFN(name string, x *ir.Node) *ir.Node {
	b, c := e.b, e.cfg
	s, h, ne, eh := c.SeqLen, c.Hidden, c.Experts, c.ExpertHidden
	capacity := s / ne * 2 // capacity factor 2

	logits := e.linear(name+".gate", x, h, ne) // [S, E]
	gates := e.softmaxLastAxis(logits)
	top := b.Reduce(ir.KindReduceMax, gates, 1) // [S]
	sel := b.Ewise(ir.KindCompare, gates, top)
	masked := b.Select(sel, gates, b.Literal(name+".zeros", []int{1}, gates.DType))
	pos := b.CumSum(masked, 0) // position within expert buffers

	// Dispatch: [E·cap, S] one-hot-like dispatch matrix times tokens.
	dispatch := b.Gather(pos, b.Iota([]int{ne * capacity}, ir.I32), []int{ne * capacity, s})
	buf := b.Dot(dispatch, x)                      // [E·cap, H]
	buf3 := b.Reshape(buf, []int{ne, capacity, h}) // [E, cap, H]
	w1 := b.Weight(name+".w1", []int{ne, h, eh}, ir.F32)
	hmid := b.Dot(buf3, b.Convert(w1, buf3.DType)) // [E, cap, eh]
	hact := e.gelu(name+".egelu", hmid)
	w2 := b.Weight(name+".w2", []int{ne, eh, h}, ir.F32)
	eout := b.Dot(hact, b.Convert(w2, hact.DType)) // [E, cap, H]
	flat := b.Reshape(eout, []int{ne * capacity, h})

	// Combine back to token order, scaled by the gate value.
	combine := b.Transpose(dispatch, 1, 0) // [S, E·cap]
	y := b.Dot(combine, flat)              // [S, H]
	return b.Ewise(ir.KindMul, y, top)
}

// head emits the final layer norm, LM projection, and a cross-entropy-style
// loss reduction (training stages end in the loss).
func (e *emitter) head(x *ir.Node) *ir.Node {
	b, c := e.b, e.cfg
	xn := e.layerNorm("head.ln", x)
	logits := e.linear("head.lm", xn, c.Hidden, c.Vocab) // [S, V]
	probs := e.softmaxLastAxis(logits)
	lp := b.Unary(ir.KindLog, probs)
	picked := b.Ewise(ir.KindMul, lp, b.Literal("head.onehot", lp.Shape, lp.DType))
	loss := b.Reduce(ir.KindReduceSum, b.Reduce(ir.KindReduceSum, picked, 1), 0)
	return b.Unary(ir.KindNeg, loss)
}
