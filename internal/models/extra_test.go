package models

import (
	"testing"

	"predtop/internal/ir"
)

func TestSegmentKindStrings(t *testing.T) {
	for _, k := range []SegmentKind{SegEmbedding, SegDecoder, SegMoEDecoder, SegHead} {
		if k.String() == "segment" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
}

func TestHeadOnlyStage(t *testing.T) {
	m := Build(GPT3())
	g := m.StageGraph(m.NumSegments()-1, m.NumSegments(), true)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The head ends in a scalar loss.
	if n := g.Outputs[0]; n.NumElements() != 1 {
		t.Fatalf("loss output shape %v", n.Shape)
	}
}

func TestEmbeddingStageGathersVocab(t *testing.T) {
	m := Build(GPT3())
	g := m.StageGraph(0, 1, false)
	found := false
	for _, n := range g.Nodes {
		if n.Kind == ir.KindGather && n.Ins[0].Shape[0] == m.Config.Vocab {
			found = true
		}
	}
	if !found {
		t.Fatal("embedding stage missing vocab gather")
	}
}

func TestMixedPrecisionPattern(t *testing.T) {
	// Weights are f32 literals converted to the bf16 activation dtype — the
	// pattern that makes convert_element_type pruning meaningful.
	m := Build(GPT3())
	g := m.StageGraph(2, 3, false)
	converts := 0
	for _, n := range g.Nodes {
		if n.Kind == ir.KindConvert && n.Ins[0].Param && n.Ins[0].DType == ir.F32 && n.DType == ir.BF16 {
			converts++
		}
	}
	if converts < 6 {
		t.Fatalf("expected ≥6 weight converts per decoder layer, got %d", converts)
	}
}

func TestAttentionShapesUseHeads(t *testing.T) {
	cfg := GPT3()
	m := Build(cfg)
	g := m.StageGraph(2, 3, false)
	found := false
	for _, n := range g.Nodes {
		if n.Kind == ir.KindDot && len(n.Shape) == 3 &&
			n.Shape[0] == cfg.Heads && n.Shape[1] == cfg.SeqLen && n.Shape[2] == cfg.SeqLen {
			found = true
		}
	}
	if !found {
		t.Fatal("no [heads, S, S] attention-score dot found")
	}
}

func TestSegmentParamsSumToTotal(t *testing.T) {
	for _, cfg := range []Config{GPT3(), MoE()} {
		m := Build(cfg)
		var sum int64
		for i := range m.Segments {
			sum += m.SegmentParams(i)
		}
		if sum != m.TotalParams() {
			t.Fatalf("%s: segment params %d != total %d", cfg.Name, sum, m.TotalParams())
		}
	}
}

func TestDepthOverrideScalesGraph(t *testing.T) {
	small := GPT3()
	small.Layers = 6
	m := Build(small)
	if m.NumSegments() != 8 {
		t.Fatalf("segments %d", m.NumSegments())
	}
	if err := m.StageGraph(0, 8, true).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestActivationDTypePropagates(t *testing.T) {
	m := Build(GPT3())
	g := m.StageGraph(3, 4, false)
	if g.Outputs[0].DType != ir.BF16 {
		t.Fatalf("stage output dtype %v", g.Outputs[0].DType)
	}
}
