package models

import (
	"testing"

	"predtop/internal/ir"
)

func TestBuildSegmentLayout(t *testing.T) {
	gpt := Build(GPT3())
	if gpt.NumSegments() != 26 { // embed + 24 layers + head
		t.Fatalf("GPT-3 segments %d", gpt.NumSegments())
	}
	if gpt.Segments[0].Kind != SegEmbedding || gpt.Segments[25].Kind != SegHead {
		t.Fatal("GPT-3 segment roles wrong")
	}
	for i := 1; i <= 24; i++ {
		if gpt.Segments[i].Kind != SegDecoder {
			t.Fatalf("GPT-3 segment %d is %v", i, gpt.Segments[i].Kind)
		}
	}

	moe := Build(MoE())
	if moe.NumSegments() != 34 { // embed + 32 layers + head
		t.Fatalf("MoE segments %d", moe.NumSegments())
	}
	nMoE := 0
	for _, s := range moe.Segments {
		if s.Kind == SegMoEDecoder {
			nMoE++
		}
	}
	if nMoE != 16 { // every other decoder layer
		t.Fatalf("MoE layers %d", nMoE)
	}
}

func TestParamCounts(t *testing.T) {
	gpt := Build(GPT3())
	total := gpt.TotalParams()
	// Table IV calls this configuration 1.3B; with the (untied) LM head the
	// graph carries ~1.4B trainable scalars.
	if total < 1_100_000_000 || total > 1_700_000_000 {
		t.Fatalf("GPT-3 params %d out of plausible range", total)
	}
	moe := Build(MoE())
	if moe.TotalParams() < 700_000_000 {
		t.Fatalf("MoE params %d too small", moe.TotalParams())
	}
	if moe.TotalParams() <= gpt.TotalParams()/3 {
		t.Fatalf("MoE should carry substantial expert weight")
	}
}

func TestStageGraphsValidate(t *testing.T) {
	for _, cfg := range []Config{GPT3(), MoE()} {
		m := Build(cfg)
		ranges := [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 4}, {m.NumSegments() - 2, m.NumSegments()}, {0, m.NumSegments()}}
		for _, r := range ranges {
			for _, backward := range []bool{false, true} {
				g := m.StageGraph(r[0], r[1], backward)
				if err := g.Validate(); err != nil {
					t.Fatalf("%s stage [%d,%d) backward=%v: %v", cfg.Name, r[0], r[1], backward, err)
				}
				if len(g.Outputs) == 0 {
					t.Fatalf("%s stage [%d,%d): no outputs", cfg.Name, r[0], r[1])
				}
			}
		}
	}
}

func TestStageGraphInputKinds(t *testing.T) {
	m := Build(GPT3())
	// A stage starting at the embedding takes token ids.
	g := m.StageGraph(0, 2, false)
	if g.Inputs[0].DType != ir.I32 {
		t.Fatalf("embedding stage input dtype %v", g.Inputs[0].DType)
	}
	// A mid-model stage takes activations [S, H].
	g = m.StageGraph(3, 5, false)
	in := g.Inputs[0]
	if in.DType != m.Config.Act || in.Shape[0] != m.Config.SeqLen || in.Shape[1] != m.Config.Hidden {
		t.Fatalf("mid stage input %v %v", in.DType, in.Shape)
	}
}

func TestBackwardGrowsGraph(t *testing.T) {
	m := Build(GPT3())
	fwd := m.StageGraph(2, 3, false)
	full := m.StageGraph(2, 3, true)
	if full.NumNodes() <= fwd.NumNodes()+10 {
		t.Fatalf("backward pass too small: fwd=%d full=%d", fwd.NumNodes(), full.NumNodes())
	}
	// Training stages emit one gradient output per trainable weight.
	weights := 0
	for _, n := range full.Nodes {
		if n.Param {
			weights++
		}
	}
	if len(full.Outputs) != 1+weights {
		t.Fatalf("outputs %d for %d weights", len(full.Outputs), weights)
	}
}

func TestStageGraphSizesTractable(t *testing.T) {
	// Forward single-decoder stages are what the predictor trains on; keep
	// an eye on their size so attention over nodes stays affordable.
	gpt := Build(GPT3())
	n := gpt.StageGraph(2, 3, false).NumNodes()
	if n < 30 || n > 140 {
		t.Fatalf("GPT-3 single-layer forward graph has %d nodes", n)
	}
	moe := Build(MoE())
	nm := moe.StageGraph(2, 3, false).NumNodes() // layer index 1 is MoE
	if nm <= n-20 {
		t.Fatalf("MoE layer graph (%d) should not be much smaller than dense (%d)", nm, n)
	}
}

func TestMoEStagesContainExpertOps(t *testing.T) {
	m := Build(MoE())
	g := m.StageGraph(2, 3, false) // segment 2 = layer index 1 = MoE
	var hasCumSum, hasBatchedDot bool
	for _, n := range g.Nodes {
		if n.Kind == ir.KindCumSum {
			hasCumSum = true
		}
		if n.Kind == ir.KindDot && len(n.Shape) == 3 && n.Shape[0] == m.Config.Experts {
			hasBatchedDot = true
		}
	}
	if !hasCumSum || !hasBatchedDot {
		t.Fatalf("MoE graph missing routing ops: cumsum=%v expertDot=%v", hasCumSum, hasBatchedDot)
	}
}

func TestFlopsScaleWithLayers(t *testing.T) {
	m := Build(GPT3())
	one := m.StageGraph(1, 2, true).ComputeStats().TotalFlops
	three := m.StageGraph(1, 4, true).ComputeStats().TotalFlops
	if three < 2*one || three > 4*one {
		t.Fatalf("flops should scale ~linearly with layers: 1→%d 3→%d", one, three)
	}
}

func TestBadStageRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(GPT3()).StageGraph(5, 5, false)
}
