package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"predtop/internal/cluster"
	"predtop/internal/graphnn"
	"predtop/internal/models"
	"predtop/internal/parallel"
	"predtop/internal/predictor"
	"predtop/internal/sim"
	"predtop/internal/stage"
	"predtop/internal/tensor"
)

// AblationRow is one ablated configuration's accuracy.
type AblationRow struct {
	Variant string
	MRE     float64
	Epochs  int
	AvgN    float64 // mean encoded graph size (pruning ablation)
}

// RunAblation quantifies the design choices DESIGN.md calls out, all on the
// DAG Transformer at one scenario and training fraction:
//
//   - full: DAGRA mask + DAGPE + pruning + MAE loss (the paper's design)
//   - no-DAGRA: attention open to all node pairs (mask ablation, §IV-A)
//   - no-DAGPE: depth positional encodings zeroed (§IV-A)
//   - no-pruning: reshape/convert/broadcast nodes retained (§IV-B4)
//   - MSE-loss: MSE instead of MAE (§IV-B7 claims MAE always wins)
func RunAblation(p Preset, bench Benchmark, platform cluster.Platform, frac float64, log io.Writer) []AblationRow {
	if log == nil {
		log = io.Discard
	}
	mdl := models.Build(bench.Config)
	rng := rand.New(rand.NewSource(p.Seed))
	specs := predictor.CollectStages(mdl, rng, bench.Stages, bench.MaxLen)
	sc := cluster.Scenarios(platform)[0]
	prof := sim.DefaultProfiler()

	pruned := predictor.NewEncoder(mdl, true)
	unpruned := predictor.NewEncoder(mdl, false)
	base := predictor.BuildDataset(pruned, specs, sc, prof)
	noPrune := predictor.BuildDataset(unpruned, specs, sc, prof)

	train, val, test := stage.Split(rng, len(base.Samples), frac, p.ValFrac)

	variants := []struct {
		name string
		ds   *predictor.Dataset
		loss predictor.Loss
	}{
		{"full", base, predictor.MAE},
		{"no-DAGRA", maskAblated(base, true, false), predictor.MAE},
		{"no-DAGPE", maskAblated(base, false, true), predictor.MAE},
		{"no-pruning", noPrune, predictor.MAE},
		{"MSE-loss", base, predictor.MSE},
	}

	// Variants are independent (each trains its own model from the same
	// seed), so they run concurrently; logs print in variant order.
	rows := make([]AblationRow, len(variants))
	logs := make([]string, len(variants))
	parallel.ForLimit(len(variants), p.Workers, func(i int) {
		v := variants[i]
		cfg := trainConfig(p.Train, p.Workers)
		cfg.Loss = v.loss
		cfg.Seed = p.Seed + 31
		model := graphnn.NewDAGTransformer(rand.New(rand.NewSource(cfg.Seed)), p.Tran)
		trained, res := predictor.Train(model, v.ds, train, val, cfg)
		row := AblationRow{
			Variant: v.name,
			MRE:     trained.MRE(v.ds, test),
			Epochs:  res.EpochsRun,
			AvgN:    avgNodes(v.ds),
		}
		rows[i] = row
		logs[i] = fmt.Sprintf("[ablate %s] %-11s MRE %.2f%% (avg %.0f nodes)\n", bench.Name, v.name, row.MRE, row.AvgN)
	})
	for _, line := range logs {
		io.WriteString(log, line)
	}
	return rows
}

// maskAblated clones the dataset with the DAGRA mask opened and/or depths
// zeroed, leaving labels and splits identical.
func maskAblated(ds *predictor.Dataset, openMask, zeroDepth bool) *predictor.Dataset {
	out := &predictor.Dataset{Model: ds.Model, Scenario: ds.Scenario}
	for _, s := range ds.Samples {
		enc := *s.Encoded
		if openMask {
			enc.ReachMask = tensor.New(s.Encoded.ReachMask.R, s.Encoded.ReachMask.C)
		}
		if zeroDepth {
			enc.Depths = make([]int, len(s.Encoded.Depths))
		}
		s.Encoded = &enc
		out.Samples = append(out.Samples, s)
	}
	return out
}

func avgNodes(ds *predictor.Dataset) float64 {
	if len(ds.Samples) == 0 {
		return 0
	}
	total := 0
	for _, s := range ds.Samples {
		total += s.Encoded.N()
	}
	return float64(total) / float64(len(ds.Samples))
}

// RenderAblation prints the ablation table.
func RenderAblation(bench string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation (%s, DAG Transformer): design-choice contributions\n", bench)
	fmt.Fprintf(&b, "    %-12s %10s %10s %8s\n", "variant", "MRE", "avg nodes", "epochs")
	for _, r := range rows {
		fmt.Fprintf(&b, "    %-12s %9.2f%% %10.0f %8d\n", r.Variant, r.MRE, r.AvgN, r.Epochs)
	}
	return b.String()
}
