package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"predtop/internal/cluster"
	"predtop/internal/graphnn"
	"predtop/internal/models"
	"predtop/internal/obs"
	"predtop/internal/parallel"
	"predtop/internal/predictor"
	"predtop/internal/sim"
	"predtop/internal/stage"
)

// ModelNames lists the compared predictors in table column order.
var ModelNames = []string{"GCN", "GAT", "Tran"}

// MRETable is one of the paper's MRE grids: Table V(a/b) for Platform 1 or
// Table VI(a/b) for Platform 2.
type MRETable struct {
	Benchmark string
	Platform  cluster.Platform
	Scenarios []cluster.Scenario
	Fractions []int
	// MRE[f][s][m] is the test MRE (%) at fraction index f, scenario index
	// s, model index m (ModelNames order).
	MRE [][][]float64
	// Attribution maps each model family (ModelNames entry) to its
	// error-attribution snapshot merged across every (fraction, scenario)
	// cell of the grid, in grid order — so the table reports not just how
	// wrong each predictor is per cell but where the residuals live
	// (op type, node count, stage depth).
	Attribution map[string]*predictor.Attribution
}

// newModel instantiates one of the three predictors at the preset's sizes.
func (p Preset) newModel(name string, seed int64) graphnn.Model {
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "GCN":
		return graphnn.NewGCN(rng, p.GCN)
	case "GAT":
		return graphnn.NewGAT(rng, p.GAT)
	default:
		return graphnn.NewDAGTransformer(rng, p.Tran)
	}
}

// RunMRETable reproduces one MRE grid: for every (mesh, configuration)
// scenario of the platform and every training fraction, it trains GCN, GAT,
// and DAG Transformer predictors on profiled stage latencies and measures
// test MRE (Eqn 5). log (may be nil) receives progress lines.
//
// Scenario datasets are profiled concurrently and the grid's
// (fraction, scenario, model) cells train concurrently (p.Workers bound).
// Every cell derives its model/split RNGs from (p.Seed, cell indices) and
// gradient reduction is order-fixed, so the grid is reproducible — and
// bitwise identical — for any worker count. Progress lines are buffered per
// cell and emitted in the serial grid order.
func RunMRETable(p Preset, bench Benchmark, platform cluster.Platform, log io.Writer) *MRETable {
	if log == nil {
		log = io.Discard
	}
	mdl := models.Build(bench.Config)
	mdl.Prof = p.Obs.Profiler()
	rng := rand.New(rand.NewSource(p.Seed))
	specs := predictor.CollectStages(mdl, rng, bench.Stages, bench.MaxLen)
	enc := predictor.NewEncoder(mdl, true)
	prof := sim.DefaultProfiler()
	prof.Metrics = p.Obs.Registry()
	scenarios := cluster.Scenarios(platform)
	gridTrack := fmt.Sprintf("grid %s %s", bench.Name, platform.Name)

	t := &MRETable{
		Benchmark: bench.Name,
		Platform:  platform,
		Scenarios: scenarios,
		Fractions: p.Fractions,
		MRE:       make([][][]float64, len(p.Fractions)),
	}
	for fi := range p.Fractions {
		t.MRE[fi] = make([][]float64, len(scenarios))
		for si := range scenarios {
			t.MRE[fi][si] = make([]float64, len(ModelNames))
		}
	}

	// Profiling is seeded per (stage, scenario), so concurrent dataset
	// construction yields the exact samples a serial sweep would.
	profSpan := p.Obs.Tracer().Begin(gridTrack, "profile")
	datasets := make([]*predictor.Dataset, len(scenarios))
	parallel.ForLimit(len(scenarios), p.Workers, func(si int) {
		datasets[si] = predictor.BuildDataset(enc, specs, scenarios[si], prof)
	})
	profSpan.End()
	for si, sc := range scenarios {
		fmt.Fprintf(log, "[%s %s %v] %d stages profiled\n", bench.Name, platform.Name, sc, len(datasets[si].Samples))
	}

	type cell struct{ si, fi, mi int }
	var cells []cell
	for si := range scenarios {
		for fi := range p.Fractions {
			for mi := range ModelNames {
				cells = append(cells, cell{si, fi, mi})
			}
		}
	}
	reg := p.Obs.Registry()
	cellHist := reg.Histogram("grid_cell_seconds", nil)
	cellCtr := reg.Counter("grid_cells_total")
	gridSpan := p.Obs.Tracer().Begin(gridTrack, "train cells")
	logs := make([]string, len(cells))
	// Per-cell evaluation output, kept for the serial post-pass: the
	// accuracy-monitor feed and the JSONL cell records happen in grid order
	// after the parallel loop, never inside it, so cells sharing a monitor
	// key stream their samples in a run-independent order.
	evals := make([]predictor.Evaluation, len(cells))
	tests := make([][]int, len(cells))
	records := make([]gridCellRecord, len(cells))
	parallel.ForLimit(len(cells), p.Workers, func(ci int) {
		c := cells[ci]
		cellStart := time.Now()
		ds := datasets[c.si]
		splitRng := rand.New(rand.NewSource(p.Seed*1000 + int64(c.fi*100+c.si)))
		train, val, test := stage.Split(splitRng, len(ds.Samples), float64(p.Fractions[c.fi])/100, p.ValFrac)
		cfg := trainConfig(p.Train, p.Workers)
		cfg.Hooks = &predictor.TrainHooks{Metrics: reg, Profiler: p.Obs.Profiler(), Flight: p.Obs.Recorder()}
		cfg.Seed = p.Seed + int64(c.fi*1000+c.si*10+c.mi)
		model := p.newModel(ModelNames[c.mi], cfg.Seed)
		trained, res := predictor.Train(model, ds, train, val, cfg)
		ev := trained.Evaluate(ds, test)
		evals[ci], tests[ci] = ev, test
		t.MRE[c.fi][c.si][c.mi] = ev.MREPct
		wall := time.Since(cellStart).Seconds()
		cellHist.Observe(wall)
		cellCtr.Inc()
		records[ci] = gridCellRecord{
			Event: "grid_cell", Benchmark: bench.Name, Platform: platform.Name,
			Mesh: scenarios[c.si].Mesh.Index, Config: scenarios[c.si].Config.Index,
			Fraction: p.Fractions[c.fi], Model: ModelNames[c.mi],
			MRE: ev.MREPct, Epochs: res.EpochsRun, BestEpoch: res.BestEpoch,
			TrainWallS: res.WallSeconds, CellWallS: wall,
		}
		logs[ci] = fmt.Sprintf("  [%s %v] frac %d%% %s: MRE %.2f%% (%d epochs, %.1fs)\n",
			bench.Name, scenarios[c.si], p.Fractions[c.fi], ModelNames[c.mi], ev.MREPct, res.EpochsRun, res.WallSeconds)
	})
	gridSpan.End()
	mon := p.Obs.Accuracy()
	sink := p.Obs.Sink()
	parts := map[string][]*predictor.Attribution{}
	for ci, c := range cells {
		if mon != nil {
			sc := scenarios[c.si]
			key := obs.AccuracyKey{
				Family: ModelNames[c.mi],
				Mesh:   fmt.Sprintf("%dx%d", sc.Mesh.Nodes, sc.Mesh.GPUsPerNode),
				Op:     bench.Name,
			}
			ds := datasets[c.si]
			for k, pred := range evals[ci].Preds {
				mon.Observe(key, pred, ds.Samples[tests[ci][k]].Measured)
			}
		}
		sink.Emit(records[ci])
		parts[ModelNames[c.mi]] = append(parts[ModelNames[c.mi]], evals[ci].Attribution)
	}
	t.Attribution = map[string]*predictor.Attribution{}
	for _, name := range ModelNames {
		t.Attribution[name] = predictor.MergeAttributions(parts[name]...)
	}
	for _, line := range logs {
		io.WriteString(log, line)
	}
	return t
}

// gridCellRecord is the JSONL record emitted per MRE-grid cell (one trained
// predictor at one scenario and training fraction).
type gridCellRecord struct {
	Event      string  `json:"event"`
	Benchmark  string  `json:"bench"`
	Platform   string  `json:"platform"`
	Mesh       int     `json:"mesh"`
	Config     int     `json:"config"`
	Fraction   int     `json:"fraction"`
	Model      string  `json:"model"`
	MRE        float64 `json:"mre"`
	Epochs     int     `json:"epochs"`
	BestEpoch  int     `json:"best_epoch"`
	TrainWallS float64 `json:"train_wall_s"`
	CellWallS  float64 `json:"cell_wall_s"`
}

// Render prints the grid in the layout of Tables V/VI: one row per training
// fraction (descending, as in the paper), one column group per scenario,
// each group holding GCN / GAT / Tran, with the per-group winner starred.
func (t *MRETable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MRE (%%) — %s benchmark on %s\n", t.Benchmark, t.Platform.Name)
	fmt.Fprintf(&b, "%-8s", "# Samp")
	for _, sc := range t.Scenarios {
		fmt.Fprintf(&b, "| Mesh %d Conf %d %9s", sc.Mesh.Index, sc.Config.Index, "")
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-8s", "")
	for range t.Scenarios {
		fmt.Fprintf(&b, "| %7s %7s %7s ", "GCN", "GAT", "Tran")
	}
	b.WriteString("\n")
	for fi := len(t.Fractions) - 1; fi >= 0; fi-- {
		fmt.Fprintf(&b, "%-8s", fmt.Sprintf("%d%%", t.Fractions[fi]))
		for si := range t.Scenarios {
			row := t.MRE[fi][si]
			best := 0
			for mi := range row {
				if row[mi] < row[best] {
					best = mi
				}
			}
			b.WriteString("|")
			for mi, v := range row {
				mark := " "
				if mi == best {
					mark = "*"
				}
				fmt.Fprintf(&b, " %6.2f%s", v, mark)
			}
			b.WriteString(" ")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// WinRate returns the fraction of (fraction, scenario) cells in which model
// mi achieves the lowest MRE (the paper reports 73.6% for GPT-3 and 91.7%
// for MoE in favor of the DAG Transformer).
func (t *MRETable) WinRate(mi int) float64 {
	cells, wins := 0, 0
	for fi := range t.Fractions {
		for si := range t.Scenarios {
			row := t.MRE[fi][si]
			best := 0
			for m := range row {
				if row[m] < row[best] {
					best = m
				}
			}
			cells++
			if best == mi {
				wins++
			}
		}
	}
	if cells == 0 {
		return 0
	}
	return float64(wins) / float64(cells)
}

// Aggregate is a Fig-8/Fig-9 data point: the mean and standard deviation of
// a model's MREs across a platform's scenarios at one training fraction.
type Aggregate struct {
	Benchmark string
	Platform  string
	Model     string
	Fraction  int
	Mean, Std float64
}

// Aggregates reduces tables to the Fig 8 (mean) and Fig 9 (std-dev) series.
func Aggregates(tables []*MRETable) []Aggregate {
	var out []Aggregate
	for _, t := range tables {
		for fi, frac := range t.Fractions {
			for mi, name := range ModelNames {
				var vals []float64
				for si := range t.Scenarios {
					vals = append(vals, t.MRE[fi][si][mi])
				}
				mean, std := meanStd(vals)
				out = append(out, Aggregate{
					Benchmark: t.Benchmark, Platform: t.Platform.Name,
					Model: name, Fraction: frac, Mean: mean, Std: std,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Benchmark != b.Benchmark {
			return a.Benchmark < b.Benchmark
		}
		if a.Platform != b.Platform {
			return a.Platform < b.Platform
		}
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		return a.Fraction < b.Fraction
	})
	return out
}

// RenderAggregates prints Fig 8 (mean) or Fig 9 (std) series as rows of
// fraction → value per (benchmark, platform, model).
func RenderAggregates(aggs []Aggregate, std bool) string {
	metric := "mean"
	fig := "Fig 8: average of MREs across scenarios"
	if std {
		metric = "std"
		fig = "Fig 9: standard deviation of MREs across scenarios"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", fig)
	type key struct{ bench, plat, model string }
	series := map[key]map[int]float64{}
	fracSet := map[int]bool{}
	for _, a := range aggs {
		k := key{a.Benchmark, a.Platform, a.Model}
		if series[k] == nil {
			series[k] = map[int]float64{}
		}
		v := a.Mean
		if std {
			v = a.Std
		}
		series[k][a.Fraction] = v
		fracSet[a.Fraction] = true
	}
	var fracs []int
	for f := range fracSet {
		fracs = append(fracs, f)
	}
	sort.Ints(fracs)
	var keys []key
	for k := range series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].bench != keys[j].bench {
			return keys[i].bench < keys[j].bench
		}
		if keys[i].plat != keys[j].plat {
			return keys[i].plat < keys[j].plat
		}
		return keys[i].model < keys[j].model
	})
	fmt.Fprintf(&b, "%-34s", "series \\ fraction")
	for _, f := range fracs {
		fmt.Fprintf(&b, "%8d%%", f)
	}
	b.WriteString("\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "%-34s", fmt.Sprintf("%s %s %s (%s)", k.bench, k.plat, k.model, metric))
		for _, f := range fracs {
			fmt.Fprintf(&b, "%9.2f", series[k][f])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFig3 prints the Fig-3 comparison — GCN vs DAG Transformer MRE per
// scenario at the given training fraction — from an already-computed table.
func RenderFig3(tables []*MRETable, fraction int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3: stage-latency prediction error, GCN vs DAG Transformer (%d%% training samples)\n", fraction)
	fmt.Fprintf(&b, "%-40s %10s %10s\n", "configuration", "GCN", "Tran")
	for _, t := range tables {
		fi := -1
		for i, f := range t.Fractions {
			if f == fraction {
				fi = i
			}
		}
		// Fall back to the largest fraction the run actually evaluated.
		if fi < 0 && len(t.Fractions) > 0 {
			fi = len(t.Fractions) - 1
		}
		if fi < 0 {
			continue
		}
		for si, sc := range t.Scenarios {
			fmt.Fprintf(&b, "%-40s %9.2f%% %9.2f%%\n",
				fmt.Sprintf("%s %s (%d,%d)", t.Benchmark, t.Platform.Name, sc.Mesh.Index, sc.Config.Index),
				t.MRE[fi][si][0], t.MRE[fi][si][2])
		}
	}
	return b.String()
}

func meanStd(vals []float64) (float64, float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	varr := 0.0
	for _, v := range vals {
		varr += (v - mean) * (v - mean)
	}
	return mean, math.Sqrt(varr / float64(len(vals)))
}
