package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"predtop/internal/cluster"
	"predtop/internal/models"
	"predtop/internal/pipeline"
	"predtop/internal/planner"
)

// Fig2Result is the plan-latency distribution of one benchmark on
// Platform 2 (Fig 2: 100 random parallelization plans).
type Fig2Result struct {
	Benchmark string
	Latencies []float64 // sorted, seconds
}

// RunFig2 evaluates RandomPlans random parallelization plans of each
// benchmark on Platform 2 under the ground-truth simulator.
func RunFig2(p Preset, log io.Writer) []Fig2Result {
	if log == nil {
		log = io.Discard
	}
	platform := cluster.Platform2()
	var out []Fig2Result
	for _, bench := range p.Benchmarks() {
		mdl := models.Build(bench.Config)
		rng := rand.New(rand.NewSource(p.Seed))
		var lats []float64
		attempts := 0
		for len(lats) < p.RandomPlans && attempts < p.RandomPlans*20 {
			attempts++
			if t, ok := planner.RandomPlanLatency(mdl, platform, rng, p.Microbatches); ok {
				lats = append(lats, t)
			}
		}
		sort.Float64s(lats)
		fmt.Fprintf(log, "[fig2 %s] %d plans in %d attempts\n", bench.Name, len(lats), attempts)
		out = append(out, Fig2Result{Benchmark: bench.Name, Latencies: lats})
	}
	return out
}

// Render prints the Fig-2 distribution: summary statistics and a CDF strip.
func (r Fig2Result) Render() string {
	var b strings.Builder
	n := len(r.Latencies)
	if n == 0 {
		return fmt.Sprintf("Fig 2 (%s): no feasible plans\n", r.Benchmark)
	}
	q := func(f float64) float64 { return r.Latencies[int(f*float64(n-1))] }
	fmt.Fprintf(&b, "Fig 2 (%s): iteration latency of %d random parallelization plans\n", r.Benchmark, n)
	fmt.Fprintf(&b, "  min %.3fs  p25 %.3fs  median %.3fs  p75 %.3fs  max %.3fs  (max/min = %.1fx)\n",
		q(0), q(0.25), q(0.5), q(0.75), q(1), q(1)/q(0))
	// Histogram over 10 buckets.
	lo, hi := q(0), q(1)
	buckets := make([]int, 10)
	for _, v := range r.Latencies {
		i := int((v - lo) / (hi - lo + 1e-12) * 10)
		if i > 9 {
			i = 9
		}
		buckets[i]++
	}
	for i, c := range buckets {
		fmt.Fprintf(&b, "  [%6.3f, %6.3f) %s (%d)\n",
			lo+float64(i)*(hi-lo)/10, lo+float64(i+1)*(hi-lo)/10, strings.Repeat("#", c), c)
	}
	return b.String()
}

// Spread returns max/min — Fig 2's headline: the same model and hardware
// vary widely across plans.
func (r Fig2Result) Spread() float64 {
	if len(r.Latencies) == 0 {
		return 0
	}
	return r.Latencies[len(r.Latencies)-1] / r.Latencies[0]
}

// RenderFig6 renders the Fig-6 pipeline: four stages and three microbatches
// with stage 2 the bottleneck, drawn from the 1F1B schedule simulator, plus
// the Eqn-4 closed form.
func RenderFig6() string {
	lat := []float64{1, 3, 1, 1}
	var b strings.Builder
	b.WriteString("Fig 6: pipeline with four stages and three microbatches (stage 2 bottleneck)\n")
	b.WriteString(pipeline.RenderTimeline(lat, 3, 66))
	return b.String()
}
