package experiments

import (
	"fmt"
	"io"
	"strings"

	"predtop/internal/cluster"
	"predtop/internal/models"
	"predtop/internal/parallel"
	"predtop/internal/pipeline"
	"predtop/internal/planner"
	"predtop/internal/predictor"
	"predtop/internal/sim"
)

// PlanRun is one bar of Fig 10: a planner version's optimization cost (10a)
// and the ground-truth iteration latency of the plan it produced (10b).
type PlanRun struct {
	Version          string
	OptimizeSeconds  float64 // simulated optimization cost
	Meter            planner.Meter
	IterationLatency float64 // ground-truth Eqn-4 latency of the plan
	Stages           int
	OK               bool
	// Plan is the winning plan itself (zero when !OK) — the input to
	// planner.WhatIf replays.
	Plan planner.Plan
	// Report is the plan's provenance report (nil when !OK), attached to the
	// plan_run JSONL record and written out by predtop-plan -report.
	Report *planner.Report
}

// Fig10Model builds the benchmark model exactly as RunFig10 plans it —
// applying the preset's Fig-10 layer overrides — and returns it with the
// planner's max stage length. Exported so what-if replays in cmd/predtop-plan
// evaluate cached plans against the same model the planner saw.
func Fig10Model(p Preset, bench Benchmark) (*models.Model, int) {
	cfg := bench.Config
	maxLen := p.PlanMaxLenGPT
	if bench.Name == "MoE" {
		maxLen = p.PlanMaxLenMoE
		if p.Fig10MoELayers > 0 {
			cfg.Layers = p.Fig10MoELayers
		}
	} else if p.Fig10GPTLayers > 0 {
		cfg.Layers = p.Fig10GPTLayers
	}
	return models.Build(cfg), maxLen
}

// RunFig10 reproduces the Fig-10 use case for one benchmark on Platform 2:
// vanilla Alpa with full and partial profiling versus PredTOP with DAG
// Transformer, GCN, and GAT predictors.
func RunFig10(p Preset, bench Benchmark, log io.Writer) []PlanRun {
	if log == nil {
		log = io.Discard
	}
	platform := cluster.Platform2()
	mdl, maxLen := Fig10Model(p, bench)
	mdl.Prof = p.Obs.Profiler()
	prof := sim.DefaultProfiler()
	prof.Metrics = p.Obs.Registry()
	opts := planner.Options{Microbatches: p.Microbatches, MaxStageLen: maxLen,
		Metrics: p.Obs.Registry(), Prof: p.Obs.Profiler()}

	// Each planner version owns its latency source, cost meter, and
	// provenance, so the five runs are independent and execute concurrently
	// (p.Workers bound); per-run log lines are buffered and emitted in
	// version order.
	type runSpec struct {
		version string
		latFn   planner.LatencyFn
		meter   *planner.Meter
		info    planner.ProviderInfo
	}
	var specs []runSpec
	{
		meter := &planner.Meter{}
		specs = append(specs, runSpec{"Alpa-Full", planner.FullProfiling(mdl, prof, meter), meter,
			planner.ProviderInfo{Source: "Alpa-Full"}})
	}
	{
		meter := &planner.Meter{}
		specs = append(specs, runSpec{"Alpa-Partial", planner.PartialProfiling(mdl, prof, meter, p.PartialAlpha), meter,
			planner.ProviderInfo{Source: "Alpa-Partial"}})
	}
	// Predictor training inside the planner reports to the same observer as
	// everything else (hooks only observe, so plans are unchanged).
	planTrain := trainConfig(p.PlanTrain, p.Workers)
	planTrain.Hooks = &predictor.TrainHooks{Metrics: p.Obs.Registry(), Profiler: p.Obs.Profiler(), Flight: p.Obs.Recorder()}
	for _, kind := range []planner.PredictorKind{planner.KindGCN, planner.KindGAT, planner.KindTransformer} {
		meter := &planner.Meter{}
		var info planner.ProviderInfo
		latFn := planner.TrainPredictorProvider(mdl, platform, planner.PredictorOptions{
			Kind:        kind,
			SampleFrac:  p.PredSampleFrac,
			MaxStageLen: maxLen,
			Train:       planTrain,
			Tran:        p.Tran,
			GCN:         p.GCN,
			GAT:         p.GAT,
			Seed:        p.Seed,
			Acc:         p.Obs.Accuracy(),
			Info:        &info,
		}, prof, meter)
		specs = append(specs, runSpec{kind.String(), latFn, meter, info})
	}

	// Trace-context children are minted serially here: the trace-wide span
	// counter would otherwise make ids depend on goroutine scheduling.
	ctxs := make([]*planner.Options, len(specs))
	for i, sp := range specs {
		o := opts
		o.Ctx = p.Obs.TraceContext().Child(fmt.Sprintf("fig10 %s %s", bench.Name, sp.version))
		ctxs[i] = &o
	}

	out := make([]PlanRun, len(specs))
	logs := make([]string, len(specs))
	stageLats := make([][]float64, len(specs))
	parallel.ForLimit(len(specs), p.Workers, func(i int) {
		sp := specs[i]
		track := fmt.Sprintf("fig10 %s %s", bench.Name, sp.version)
		latFn := planner.InstrumentLatencyFn(sp.latFn, p.Obs.Registry())
		runOpts := *ctxs[i]
		var stats planner.SearchStats
		runOpts.Stats = &stats
		optSpan := p.Obs.Tracer().Begin(track, "optimize")
		plan, ok := planner.Optimize(mdl.NumSegments(), platform, latFn, runOpts)
		optSpan.End()
		run := PlanRun{Version: sp.version, Meter: *sp.meter, OptimizeSeconds: sp.meter.Total(), OK: ok}
		if ok {
			run.Plan = plan
			run.Stages = plan.NumStages()
			evalSpan := p.Obs.Tracer().Begin(track, "evaluate")
			if lats, evalOK := planner.StageLatencies(mdl, plan); evalOK {
				run.IterationLatency = pipeline.Latency(lats, p.Microbatches)
				stageLats[i] = lats
				run.Report = planner.BuildReport(mdl, platform, plan, planner.ReportOptions{
					Version:      sp.version,
					TraceID:      runOpts.Ctx.TraceID(),
					Microbatches: p.Microbatches,
					Provenance:   sp.info,
					Search:       &stats,
					Meter:        sp.meter,
					StageLats:    lats,
				})
			} else {
				run.OK = false
			}
			evalSpan.End()
		}
		logs[i] = fmt.Sprintf("[fig10 %s] %-13s opt %.0fs (profile %.0fs train %.0fs infer %.0fs, %d profiles, cache %d/%d) iter %.3fs stages %d\n",
			bench.Name, sp.version, run.OptimizeSeconds, sp.meter.ProfileSeconds, sp.meter.TrainSeconds,
			sp.meter.InferSeconds, sp.meter.StagesProfiled, sp.meter.CacheHits, sp.meter.CacheHits+sp.meter.CacheMisses,
			run.IterationLatency, run.Stages)
		out[i] = run
	})
	for i, line := range logs {
		io.WriteString(log, line)
		r := out[i]
		specs[i].meter.PublishMetrics(p.Obs.Registry(), r.Version)
		p.Obs.Sink().Emit(planRunRecord{
			Event: "plan_run", Bench: bench.Name, Version: r.Version,
			OptimizeSeconds: r.OptimizeSeconds, ProfileSeconds: r.Meter.ProfileSeconds,
			TrainSeconds: r.Meter.TrainSeconds, InferSeconds: r.Meter.InferSeconds,
			StagesProfiled: r.Meter.StagesProfiled,
			CacheHits:      r.Meter.CacheHits, CacheMisses: r.Meter.CacheMisses,
			IterationLatency: r.IterationLatency, Stages: r.Stages, OK: r.OK,
			Report: r.Report,
		})
		// Render each feasible plan's simulated 1F1B schedule as its own set
		// of trace tracks so plan shapes are comparable side by side.
		if r.OK && stageLats[i] != nil {
			if err := pipeline.AddSchedule(p.Obs.Tracer(), fmt.Sprintf("%s %s ", bench.Name, r.Version), stageLats[i], p.Microbatches); err != nil {
				fmt.Fprintf(log, "[fig10 %s] %s schedule trace: %v\n", bench.Name, r.Version, err)
			}
		}
	}
	return out
}

// planRunRecord is the JSONL record emitted per Fig-10 planner run.
type planRunRecord struct {
	Event            string          `json:"event"`
	Bench            string          `json:"bench"`
	Version          string          `json:"version"`
	OptimizeSeconds  float64         `json:"optimize_s"`
	ProfileSeconds   float64         `json:"profile_s"`
	TrainSeconds     float64         `json:"train_s"`
	InferSeconds     float64         `json:"infer_s"`
	StagesProfiled   int             `json:"stages_profiled"`
	CacheHits        int             `json:"cache_hits"`
	CacheMisses      int             `json:"cache_misses"`
	IterationLatency float64         `json:"iteration_latency_s"`
	Stages           int             `json:"stages"`
	OK               bool            `json:"ok"`
	Report           *planner.Report `json:"report,omitempty"`
}

// RenderFig10 prints both panels: optimization cost (10a) and the iteration
// latency of the optimized plan (10b), with percentage deltas against the
// profiling baselines as the paper reports them.
func RenderFig10(bench string, runs []PlanRun) string {
	var b strings.Builder
	var partialOpt, baseIter float64
	for _, r := range runs {
		if r.Version == "Alpa-Partial" {
			partialOpt = r.OptimizeSeconds
		}
		if r.Version == "Alpa-Full" {
			baseIter = r.IterationLatency
		}
	}
	fmt.Fprintf(&b, "Fig 10 (%s benchmark, Platform 2)\n", bench)
	fmt.Fprintf(&b, "(a) optimization time (simulated seconds)\n")
	fmt.Fprintf(&b, "    %-14s %12s %12s %10s %10s %12s\n", "version", "total", "profile", "train", "infer", "vs partial")
	for _, r := range runs {
		delta := ""
		if partialOpt > 0 {
			delta = fmt.Sprintf("%+.1f%%", (r.OptimizeSeconds-partialOpt)/partialOpt*100)
		}
		fmt.Fprintf(&b, "    %-14s %12.0f %12.0f %10.0f %10.0f %12s\n",
			r.Version, r.OptimizeSeconds, r.Meter.ProfileSeconds, r.Meter.TrainSeconds, r.Meter.InferSeconds, delta)
	}
	fmt.Fprintf(&b, "(b) iteration latency of the optimized plan (seconds)\n")
	fmt.Fprintf(&b, "    %-14s %12s %8s %12s\n", "version", "latency", "stages", "vs full")
	for _, r := range runs {
		delta := ""
		if baseIter > 0 && r.OK {
			delta = fmt.Sprintf("%+.1f%%", (r.IterationLatency-baseIter)/baseIter*100)
		}
		fmt.Fprintf(&b, "    %-14s %12.4f %8d %12s\n", r.Version, r.IterationLatency, r.Stages, delta)
	}
	return b.String()
}
