package experiments

import (
	"fmt"
	"io"
	"strings"

	"predtop/internal/cluster"
	"predtop/internal/models"
	"predtop/internal/planner"
	"predtop/internal/sim"
)

// PlanRun is one bar of Fig 10: a planner version's optimization cost (10a)
// and the ground-truth iteration latency of the plan it produced (10b).
type PlanRun struct {
	Version          string
	OptimizeSeconds  float64 // simulated optimization cost
	Meter            planner.Meter
	IterationLatency float64 // ground-truth Eqn-4 latency of the plan
	Stages           int
	OK               bool
}

// RunFig10 reproduces the Fig-10 use case for one benchmark on Platform 2:
// vanilla Alpa with full and partial profiling versus PredTOP with DAG
// Transformer, GCN, and GAT predictors.
func RunFig10(p Preset, bench Benchmark, log io.Writer) []PlanRun {
	if log == nil {
		log = io.Discard
	}
	platform := cluster.Platform2()
	cfg := bench.Config
	maxLen := p.PlanMaxLenGPT
	if bench.Name == "MoE" {
		maxLen = p.PlanMaxLenMoE
		if p.Fig10MoELayers > 0 {
			cfg.Layers = p.Fig10MoELayers
		}
	} else if p.Fig10GPTLayers > 0 {
		cfg.Layers = p.Fig10GPTLayers
	}
	mdl := models.Build(cfg)
	prof := sim.DefaultProfiler()
	opts := planner.Options{Microbatches: p.Microbatches, MaxStageLen: maxLen}

	runWith := func(version string, latFn planner.LatencyFn, meter *planner.Meter) PlanRun {
		plan, ok := planner.Optimize(mdl.NumSegments(), platform, latFn, opts)
		run := PlanRun{Version: version, Meter: *meter, OptimizeSeconds: meter.Total(), OK: ok}
		if ok {
			run.Stages = plan.NumStages()
			if lat, evalOK := planner.EvaluatePlan(mdl, plan, p.Microbatches); evalOK {
				run.IterationLatency = lat
			} else {
				run.OK = false
			}
		}
		fmt.Fprintf(log, "[fig10 %s] %-13s opt %.0fs (profile %.0fs train %.0fs infer %.0fs, %d profiles) iter %.3fs stages %d\n",
			bench.Name, version, run.OptimizeSeconds, meter.ProfileSeconds, meter.TrainSeconds,
			meter.InferSeconds, meter.StagesProfiled, run.IterationLatency, run.Stages)
		return run
	}

	var out []PlanRun
	{
		meter := &planner.Meter{}
		out = append(out, runWith("Alpa-Full", planner.FullProfiling(mdl, prof, meter), meter))
	}
	{
		meter := &planner.Meter{}
		out = append(out, runWith("Alpa-Partial", planner.PartialProfiling(mdl, prof, meter, p.PartialAlpha), meter))
	}
	for _, kind := range []planner.PredictorKind{planner.KindGCN, planner.KindGAT, planner.KindTransformer} {
		meter := &planner.Meter{}
		latFn := planner.TrainPredictorProvider(mdl, platform, planner.PredictorOptions{
			Kind:        kind,
			SampleFrac:  p.PredSampleFrac,
			MaxStageLen: maxLen,
			Train:       p.PlanTrain,
			Tran:        p.Tran,
			GCN:         p.GCN,
			GAT:         p.GAT,
			Seed:        p.Seed,
		}, prof, meter)
		out = append(out, runWith(kind.String(), latFn, meter))
	}
	return out
}

// RenderFig10 prints both panels: optimization cost (10a) and the iteration
// latency of the optimized plan (10b), with percentage deltas against the
// profiling baselines as the paper reports them.
func RenderFig10(bench string, runs []PlanRun) string {
	var b strings.Builder
	var partialOpt, baseIter float64
	for _, r := range runs {
		if r.Version == "Alpa-Partial" {
			partialOpt = r.OptimizeSeconds
		}
		if r.Version == "Alpa-Full" {
			baseIter = r.IterationLatency
		}
	}
	fmt.Fprintf(&b, "Fig 10 (%s benchmark, Platform 2)\n", bench)
	fmt.Fprintf(&b, "(a) optimization time (simulated seconds)\n")
	fmt.Fprintf(&b, "    %-14s %12s %12s %10s %10s %12s\n", "version", "total", "profile", "train", "infer", "vs partial")
	for _, r := range runs {
		delta := ""
		if partialOpt > 0 {
			delta = fmt.Sprintf("%+.1f%%", (r.OptimizeSeconds-partialOpt)/partialOpt*100)
		}
		fmt.Fprintf(&b, "    %-14s %12.0f %12.0f %10.0f %10.0f %12s\n",
			r.Version, r.OptimizeSeconds, r.Meter.ProfileSeconds, r.Meter.TrainSeconds, r.Meter.InferSeconds, delta)
	}
	fmt.Fprintf(&b, "(b) iteration latency of the optimized plan (seconds)\n")
	fmt.Fprintf(&b, "    %-14s %12s %8s %12s\n", "version", "latency", "stages", "vs full")
	for _, r := range runs {
		delta := ""
		if baseIter > 0 && r.OK {
			delta = fmt.Sprintf("%+.1f%%", (r.IterationLatency-baseIter)/baseIter*100)
		}
		fmt.Fprintf(&b, "    %-14s %12.4f %8d %12s\n", r.Version, r.IterationLatency, r.Stages, delta)
	}
	return b.String()
}
