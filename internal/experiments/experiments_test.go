package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
	"testing"

	"predtop/internal/cluster"
	"predtop/internal/graphnn"
	"predtop/internal/obs"
	"predtop/internal/predictor"
)

// micro is a minimal preset for fast end-to-end harness tests.
func micro() Preset {
	return Preset{
		Name:      "micro",
		GPTStages: 14, MoEStages: 12, MaxLen: 2, MoEMaxLen: 2,
		GPTLayers: 6, MoELayers: 6,
		Fractions: []int{40, 70},
		ValFrac:   0.15,
		Train:     predictor.TrainConfig{Epochs: 4, Patience: 4, BatchSize: 4},
		Tran:      graphnn.TransformerConfig{Layers: 1, Dim: 16, Heads: 2, FFNDim: 32},
		GCN:       graphnn.GCNConfig{Layers: 2, Dim: 16},
		GAT:       graphnn.GATConfig{Layers: 1, Dim: 8, Heads: 2},

		Microbatches:  8,
		PlanMaxLenGPT: 4, PlanMaxLenMoE: 4,
		Fig10MoELayers: 6,
		PredSampleFrac: 0.3,
		PartialAlpha:   1.6,
		PlanTrain:      predictor.TrainConfig{Epochs: 4, Patience: 4, BatchSize: 4},

		RandomPlans: 6,
		Seed:        3,
	}
}

func TestPresetsSane(t *testing.T) {
	for _, p := range []Preset{Quick(), Paper()} {
		bs := p.Benchmarks()
		if len(bs) != 2 || bs[0].Name != "GPT-3" || bs[1].Name != "MoE" {
			t.Fatalf("%s benchmarks: %+v", p.Name, bs)
		}
		if len(p.Fractions) == 0 || p.Train.Epochs == 0 {
			t.Fatalf("%s preset incomplete", p.Name)
		}
		for _, b := range bs {
			if b.MaxLen < 1 {
				t.Fatalf("%s %s MaxLen %d", p.Name, b.Name, b.MaxLen)
			}
		}
	}
	// Quick shrinks models; Paper keeps Table IV depths.
	if Quick().Benchmarks()[0].Config.Layers >= 24 {
		t.Fatal("quick preset should shrink GPT-3")
	}
	if Paper().Benchmarks()[0].Config.Layers != 24 || Paper().Benchmarks()[1].Config.Layers != 32 {
		t.Fatal("paper preset must keep Table IV depths")
	}
}

func TestRunMRETableEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	p := micro()
	tab := RunMRETable(p, p.Benchmarks()[0], cluster.Platform1(), nil)
	if len(tab.MRE) != len(p.Fractions) {
		t.Fatalf("fractions: %d", len(tab.MRE))
	}
	if len(tab.Scenarios) != 3 {
		t.Fatalf("platform-1 scenarios: %d", len(tab.Scenarios))
	}
	for fi := range tab.MRE {
		for si := range tab.MRE[fi] {
			for mi, v := range tab.MRE[fi][si] {
				if v <= 0 || v != v {
					t.Fatalf("MRE[%d][%d][%d] = %v", fi, si, mi, v)
				}
			}
		}
	}
	out := tab.Render()
	for _, want := range []string{"GPT-3", "Mesh 1", "GCN", "Tran", "70%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if w := tab.WinRate(0) + tab.WinRate(1) + tab.WinRate(2); w < 0.999 || w > 1.001 {
		t.Fatalf("win rates don't partition: %v", w)
	}

	aggs := Aggregates([]*MRETable{tab})
	if len(aggs) != len(p.Fractions)*len(ModelNames) {
		t.Fatalf("aggregates: %d", len(aggs))
	}
	for _, std := range []bool{false, true} {
		if out := RenderAggregates(aggs, std); !strings.Contains(out, "GPT-3") {
			t.Fatal("aggregate render missing series")
		}
	}
	if out := RenderFig3([]*MRETable{tab}, 70); !strings.Contains(out, "Tran") {
		t.Fatal("Fig 3 render empty")
	}
}

// TestMRETableAccuracyMonitor: the online accuracy monitor fed from the grid
// cells must reproduce the offline table figures — each per-(family,mesh)
// streaming MRE is the sample-weighted mean of that group's cell MREs, so it
// lies within the group's cell range and, for single-cell groups, matches the
// cell to floating-point tolerance.
func TestMRETableAccuracyMonitor(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	p := micro()
	p.Fractions = []int{70} // one fraction → at most one cell per (family, mesh)
	p.Workers = 1
	reg := obs.NewRegistry()
	acc := obs.NewAccuracyMonitor(obs.AccuracyConfig{MinSamples: 1, Metrics: reg})
	p.Obs = &obs.Observer{Metrics: reg, Acc: acc}
	bench := p.Benchmarks()[0]
	tab := RunMRETable(p, bench, cluster.Platform1(), nil)

	keys := acc.Keys()
	if len(keys) == 0 {
		t.Fatal("monitor saw no residuals")
	}
	meshOf := func(sc cluster.Scenario) string {
		return fmt.Sprintf("%dx%d", sc.Mesh.Nodes, sc.Mesh.GPUsPerNode)
	}
	for mi, family := range ModelNames {
		// Group the table's cells by mesh shape, mirroring the monitor keys.
		groups := map[string][]float64{}
		for si, sc := range tab.Scenarios {
			m := meshOf(sc)
			groups[m] = append(groups[m], tab.MRE[0][si][mi])
		}
		for mesh, cellMREs := range groups {
			key := obs.AccuracyKey{Family: family, Mesh: mesh, Op: bench.Name}
			st, ok := acc.Stats(key)
			if !ok {
				t.Fatalf("no monitor stats for %+v", key)
			}
			lo, hi := cellMREs[0], cellMREs[0]
			for _, v := range cellMREs {
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
			tol := 1e-9 * (1 + hi)
			if st.MeanPct < lo-tol || st.MeanPct > hi+tol {
				t.Fatalf("%+v streaming MRE %.6f outside cell range [%.6f, %.6f]", key, st.MeanPct, lo, hi)
			}
			if len(cellMREs) == 1 && math.Abs(st.MeanPct-cellMREs[0]) > tol {
				t.Fatalf("%+v streaming MRE %.12f != cell MRE %.12f", key, st.MeanPct, cellMREs[0])
			}
			if st.P95Pct < st.P50Pct || st.MaxPct < st.P95Pct {
				t.Fatalf("%+v quantiles not ordered: %+v", key, st)
			}
			// The labeled gauge in the registry carries the same value.
			labels := []obs.Label{{Key: "family", Value: family}, {Key: "mesh", Value: mesh}, {Key: "op", Value: bench.Name}}
			if g := reg.GaugeWith(obs.AccuracyMREMetric, labels...); g.Value() != st.MeanPct {
				t.Fatalf("%+v gauge %.6f != stats %.6f", key, g.Value(), st.MeanPct)
			}
		}
	}
}

func TestRunFig2EndToEnd(t *testing.T) {
	p := micro()
	rs := RunFig2(p, nil)
	if len(rs) != 2 {
		t.Fatalf("fig2 results: %d", len(rs))
	}
	for _, r := range rs {
		if len(r.Latencies) == 0 {
			t.Fatalf("%s: no plans", r.Benchmark)
		}
		if r.Spread() < 1 {
			t.Fatalf("%s: spread %v", r.Benchmark, r.Spread())
		}
		if out := r.Render(); !strings.Contains(out, "median") {
			t.Fatal("fig2 render missing stats")
		}
	}
}

func TestRunFig10EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	p := micro()
	runs := RunFig10(p, p.Benchmarks()[0], nil)
	if len(runs) != 5 {
		t.Fatalf("fig10 versions: %d", len(runs))
	}
	var full, partial PlanRun
	for _, r := range runs {
		if !r.OK {
			t.Fatalf("%s failed", r.Version)
		}
		if r.OptimizeSeconds <= 0 || r.IterationLatency <= 0 {
			t.Fatalf("%s: zero cost or latency", r.Version)
		}
		if r.Plan.NumStages() != r.Stages || len(r.Plan.StageEst) != r.Stages {
			t.Fatalf("%s: run plan incomplete: %+v", r.Version, r.Plan)
		}
		// Every feasible run carries a provenance report consistent with the
		// run's own numbers.
		if r.Report == nil {
			t.Fatalf("%s: no report", r.Version)
		}
		if r.Report.Version != r.Version || len(r.Report.Stages) != r.Stages {
			t.Fatalf("%s: report mismatch: %+v", r.Version, r.Report)
		}
		if r.Report.Pipeline.Total != r.IterationLatency {
			t.Fatalf("%s: report total %v != run latency %v",
				r.Version, r.Report.Pipeline.Total, r.IterationLatency)
		}
		if r.Report.LatencySource != "simulator" {
			t.Fatalf("%s: latency source %q", r.Version, r.Report.LatencySource)
		}
		if s := r.Report.Search; s == nil || s.LatencyLookups == 0 || s.TmaxCandidates == 0 {
			t.Fatalf("%s: search stats missing: %+v", r.Version, s)
		}
		if c := r.Report.Cost; c == nil || c.TotalSeconds != r.OptimizeSeconds {
			t.Fatalf("%s: cost block missing or wrong: %+v", r.Version, c)
		}
		if r.Report.Provenance.Source != r.Version {
			t.Fatalf("%s: provenance source %q", r.Version, r.Report.Provenance.Source)
		}
		if strings.HasPrefix(r.Version, "PredTOP") {
			pv := r.Report.Provenance
			if len(pv.Fingerprint) != 16 || pv.Predictors == 0 || pv.Seed != p.Seed {
				t.Fatalf("%s: predictor provenance incomplete: %+v", r.Version, pv)
			}
		}
		switch r.Version {
		case "Alpa-Full":
			full = r
		case "Alpa-Partial":
			partial = r
		}
	}
	if partial.OptimizeSeconds >= full.OptimizeSeconds {
		t.Fatal("partial profiling must cost less than full")
	}
	// Every predictor version must beat partial profiling on cost — the
	// core Fig-10a claim.
	for _, r := range runs[2:] {
		if r.OptimizeSeconds >= partial.OptimizeSeconds {
			t.Fatalf("%s (%.0fs) not cheaper than partial (%.0fs)",
				r.Version, r.OptimizeSeconds, partial.OptimizeSeconds)
		}
	}
	out := RenderFig10("GPT-3", runs)
	for _, want := range []string{"(a) optimization time", "(b) iteration latency", "vs partial", "vs full"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig10 render missing %q", want)
		}
	}
}

func TestRenderFig6(t *testing.T) {
	out := RenderFig6()
	if !strings.Contains(out, "stage 4") || !strings.Contains(out, "Eqn 4") {
		t.Fatalf("fig6 render:\n%s", out)
	}
}

func TestRunAblationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	p := micro()
	rows := RunAblation(p, p.Benchmarks()[0], cluster.Platform1(), 0.5, nil)
	if len(rows) != 5 {
		t.Fatalf("ablation rows: %d", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		if r.MRE <= 0 {
			t.Fatalf("%s: MRE %v", r.Variant, r.MRE)
		}
		byName[r.Variant] = r
	}
	// Pruning must shrink the encoded graphs.
	if byName["no-pruning"].AvgN <= byName["full"].AvgN {
		t.Fatalf("pruning did not shrink graphs: %v vs %v",
			byName["no-pruning"].AvgN, byName["full"].AvgN)
	}
	if out := RenderAblation("GPT-3", rows); !strings.Contains(out, "no-DAGRA") {
		t.Fatal("ablation render incomplete")
	}
}

// TestMRETableWorkerInvariant checks the experiment harness inherits the
// engine's determinism: the full MRE grid is bitwise identical whether cells
// run serially or concurrently, because each cell derives its RNGs from its
// own (fraction, scenario, model) coordinates, never from schedule order.
func TestMRETableWorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("grid comparison is slow")
	}
	p := micro()
	p.Fractions = []int{60}
	p.Train.Epochs = 2
	p.Train.Patience = 2
	bench := p.Benchmarks()[0]

	run := func(workers int) *MRETable {
		q := p
		q.Workers = workers
		return RunMRETable(q, bench, cluster.Platform1(), io.Discard)
	}
	serial := run(1)
	concurrent := run(3)
	for fi := range serial.MRE {
		for si := range serial.MRE[fi] {
			for mi, want := range serial.MRE[fi][si] {
				got := concurrent.MRE[fi][si][mi]
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("cell f=%d s=%d m=%d: workers=3 %v != workers=1 %v",
						fi, si, mi, got, want)
				}
			}
		}
	}
}
