// Package experiments regenerates every table and figure of the paper's
// evaluation (§VIII) on the simulated platforms: the MRE grids of Tables V
// and VI, their aggregations in Figs 3, 8, and 9, the plan-latency variation
// of Fig 2, the pipeline timeline of Fig 6, and the optimization-cost /
// plan-quality comparison of Fig 10.
package experiments

import (
	"predtop/internal/graphnn"
	"predtop/internal/models"
	"predtop/internal/obs"
	"predtop/internal/predictor"
)

// Preset bundles the experiment scale knobs. The paper's full protocol
// (409/205 stages, 500 epochs, patience 200, full-size baselines) is far
// beyond a single-core CPU budget; presets keep the protocol identical and
// shrink only sample counts, epochs, and hidden sizes. EXPERIMENTS.md
// records which preset produced each reported number.
type Preset struct {
	Name string

	// Stage sampling for the MRE tables.
	GPTStages int // ≤0 = whole universe
	MoEStages int
	// GPTLayers/MoELayers override the benchmark depth (0 = Table IV full
	// size); the quick preset shrinks the models to keep smoke runs fast.
	GPTLayers int
	MoELayers int
	MaxLen    int // max stage length in segments for GPT-3 table samples
	MoEMaxLen int // max stage length for MoE (0 = same as MaxLen)

	// Training-set fractions evaluated (percent), Tables V/VI rows.
	Fractions []int
	ValFrac   float64

	Train predictor.TrainConfig
	Tran  graphnn.TransformerConfig
	GCN   graphnn.GCNConfig
	GAT   graphnn.GATConfig

	// Planner experiment (Fig 10) knobs.
	Microbatches  int
	PlanMaxLenGPT int
	PlanMaxLenMoE int
	// Fig10GPTLayers/Fig10MoELayers shrink the benchmarks for the planner
	// experiment (0 = table-preset depth); prediction over long stages is
	// quadratic in graph size and dominates CPU cost otherwise.
	Fig10GPTLayers int
	Fig10MoELayers int
	PredSampleFrac float64
	PartialAlpha   float64
	PlanTrain      predictor.TrainConfig

	// Fig 2 sample size.
	RandomPlans int

	Seed int64

	// Workers bounds the goroutines of the experiment harness — grid cells,
	// Fig-10 planner runs, and (unless the TrainConfigs override it) the
	// data-parallel training loops. 0 = GOMAXPROCS, 1 = serial. Results are
	// bitwise identical for any setting: every cell carries its own seeded
	// RNG and gradient reduction runs in a fixed order.
	Workers int

	// Obs, when non-nil, receives harness observability: per-cell grid
	// timings (grid_cell_seconds histogram, grid_cells_total counter, one
	// JSONL grid_cell record per cell), Fig-10 planner metrics and trace
	// spans. Purely observational — tables and plans are bitwise identical
	// with or without it.
	Obs *obs.Observer
}

// trainConfig returns the preset's TrainConfig with the harness worker
// bound applied when the config does not set its own.
func trainConfig(base predictor.TrainConfig, workers int) predictor.TrainConfig {
	if base.Workers == 0 {
		base.Workers = workers
	}
	return base
}

// Quick is the smoke-test preset used by the `go test -bench` harness: a
// thin slice of the grid at tiny model sizes, exercising every code path in
// seconds rather than hours.
func Quick() Preset {
	return Preset{
		Name:      "quick",
		GPTStages: 20, MoEStages: 18, MaxLen: 2,
		GPTLayers: 10, MoELayers: 10,
		Fractions: []int{30, 80},
		ValFrac:   0.1,
		Train:     predictor.TrainConfig{Epochs: 8, Patience: 6, BatchSize: 4},
		Tran:      graphnn.TransformerConfig{Layers: 2, Dim: 24, Heads: 2, FFNDim: 48},
		GCN:       graphnn.GCNConfig{Layers: 3, Dim: 48},
		GAT:       graphnn.GATConfig{Layers: 2, Dim: 16, Heads: 2},

		Microbatches:  16,
		PlanMaxLenGPT: 5, PlanMaxLenMoE: 5,
		PredSampleFrac: 0.2,
		PartialAlpha:   1.6,
		PlanTrain:      predictor.TrainConfig{Epochs: 8, Patience: 6, BatchSize: 4},

		RandomPlans: 25,
		Seed:        1,
	}
}

// PaperLite is the paper preset at a thinner fraction grid and epoch
// budget — used to complete the MoE tables within the single-core budget
// when the full grid would overrun (recorded as such in EXPERIMENTS.md).
func PaperLite() Preset {
	p := Paper()
	p.Name = "paperlite"
	p.Fractions = []int{10, 80}
	p.Train.Epochs = 24
	p.Train.Patience = 8
	p.Fig10GPTLayers = 16
	p.Fig10MoELayers = 16
	p.PlanMaxLenGPT = 7
	p.PlanMaxLenMoE = 7
	p.PredSampleFrac = 0.25
	p.PlanTrain = predictor.TrainConfig{Epochs: 30, Patience: 10, BatchSize: 4}
	return p
}

// Paper is the preset behind the recorded EXPERIMENTS.md run: the full
// scenario × fraction grid of Tables V/VI with reduced sample counts,
// epochs, and hidden dimensions (single-core CPU budget; see EXPERIMENTS.md
// for the deviations and their rationale).
func Paper() Preset {
	return Preset{
		Name:      "paper",
		GPTStages: 0, MoEStages: 0, MaxLen: 3,
		Fractions: []int{10, 20, 40, 60, 80},
		ValFrac:   0.1,
		Train:     predictor.TrainConfig{Epochs: 30, Patience: 10, BatchSize: 4},
		Tran:      graphnn.TransformerConfig{Layers: 2, Dim: 32, Heads: 2, FFNDim: 64},
		GCN:       graphnn.GCNConfig{Layers: 6, Dim: 64},
		GAT:       graphnn.GATConfig{Layers: 6, Dim: 24, Heads: 3},

		Microbatches:  16,
		PlanMaxLenGPT: 10, PlanMaxLenMoE: 8,
		Fig10MoELayers: 20,
		PredSampleFrac: 0.10,
		PartialAlpha:   1.6,
		PlanTrain:      predictor.TrainConfig{Epochs: 16, Patience: 8, BatchSize: 4},

		RandomPlans: 100,
		Seed:        7,
	}
}

// Benchmark identifies one of the two evaluation models.
type Benchmark struct {
	Name   string
	Config models.Config
	Stages int // preset sample count for this benchmark
	MaxLen int // max stage length in segments for table samples
}

// Benchmarks returns the two Table-IV benchmarks at this preset's sample
// counts. MoE decoder layers carry larger operator graphs (experts), so its
// table stages are capped one segment shorter when MoEMaxLen is unset.
func (p Preset) Benchmarks() []Benchmark {
	moeLen := p.MoEMaxLen
	if moeLen == 0 {
		moeLen = p.MaxLen - 1
		if moeLen < 1 {
			moeLen = 1
		}
	}
	gpt, moe := models.GPT3(), models.MoE()
	if p.GPTLayers > 0 {
		gpt.Layers = p.GPTLayers
	}
	if p.MoELayers > 0 {
		moe.Layers = p.MoELayers
	}
	return []Benchmark{
		{Name: "GPT-3", Config: gpt, Stages: p.GPTStages, MaxLen: p.MaxLen},
		{Name: "MoE", Config: moe, Stages: p.MoEStages, MaxLen: moeLen},
	}
}
