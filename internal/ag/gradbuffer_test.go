package ag

import (
	"math"
	"math/rand"
	"testing"

	"predtop/internal/tensor"
)

// buildLoss records pred = x·W + b, loss = MSE(pred, target) on ctx.
func buildLoss(ctx *Context, w, b *Param, x, target *tensor.Tensor) *Node {
	pred := ctx.AddBias(ctx.MatMul(ctx.Const(x), ctx.Param(w)), ctx.Param(b))
	return ctx.MSELoss(pred, target)
}

func randT(rng *rand.Rand, r, c int) *tensor.Tensor {
	out := tensor.New(r, c)
	for i := range out.Data {
		out.Data[i] = rng.NormFloat64()
	}
	return out
}

// TestContextIntoIsolatesParamGrad checks that a tape bound to a GradBuffer
// leaves the shared Param.Grad untouched — the property that makes
// concurrent per-shard backward passes race-free.
func TestContextIntoIsolatesParamGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := NewParam("w", randT(rng, 2, 3))
	b := NewParam("b", randT(rng, 1, 3))
	params := []*Param{w, b}
	buf := NewGradBuffer(params)

	ctx := NewContextInto(buf)
	ctx.Backward(buildLoss(ctx, w, b, randT(rng, 4, 2), randT(rng, 4, 3)))

	for _, p := range params {
		for _, g := range p.Grad.Data {
			if g != 0 {
				t.Fatalf("%s.Grad touched by buffered tape", p.Name)
			}
		}
		sum := 0.0
		for _, g := range buf.Grad(p).Data {
			sum += math.Abs(g)
		}
		if sum == 0 {
			t.Fatalf("no gradient accumulated into buffer for %s", p.Name)
		}
	}
}

// TestContextResetReproducesGradients checks that a Reset tape (the pooled
// reuse path of the training loop) reproduces bitwise-identical gradients
// into its re-zeroed buffer.
func TestContextResetReproducesGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := NewParam("w", randT(rng, 3, 2))
	b := NewParam("b", randT(rng, 1, 2))
	buf := NewGradBuffer([]*Param{w, b})
	x, target := randT(rng, 5, 3), randT(rng, 5, 2)

	ctx := NewContextInto(buf)
	ctx.Backward(buildLoss(ctx, w, b, x, target))
	first := append(buf.Grad(w).Clone().Data, buf.Grad(b).Clone().Data...)

	ctx.Reset()
	buf.Zero()
	ctx.Backward(buildLoss(ctx, w, b, x, target))
	second := append(buf.Grad(w).Clone().Data, buf.Grad(b).Clone().Data...)

	for i := range first {
		if math.Float64bits(first[i]) != math.Float64bits(second[i]) {
			t.Fatalf("grad %d drifted after Reset: %v vs %v", i, first[i], second[i])
		}
	}
}

func TestGradBufferUnknownParamPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := NewParam("w", randT(rng, 2, 2))
	stranger := NewParam("stranger", randT(rng, 2, 2))
	buf := NewGradBuffer([]*Param{w})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for uncovered parameter")
		}
	}()
	buf.Grad(stranger)
}
