package ag

import (
	"math"
	"math/rand"
	"testing"

	"predtop/internal/tensor"
)

const (
	gcEps = 1e-6
	gcTol = 1e-5
)

func newRandParam(rng *rand.Rand, name string, r, c int) *Param {
	return NewParam(name, tensor.Randn(rng, r, c, 0.7))
}

// checkOp grad-checks a scalar loss built from the given params.
func checkOp(t *testing.T, params []*Param, build func(ctx *Context) *Node) {
	t.Helper()
	lossVal := func() float64 {
		ctx := NewContext()
		return build(ctx).V.At(0, 0)
	}
	grads := func() map[*Param]*tensor.Tensor {
		return CollectGrads(params, build)
	}
	if err := GradCheck(params, lossVal, grads, gcEps, gcTol); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := newRandParam(rng, "a", 3, 4)
	b := newRandParam(rng, "b", 4, 2)
	checkOp(t, []*Param{a, b}, func(ctx *Context) *Node {
		return ctx.MeanAll(ctx.Square(ctx.MatMul(ctx.Param(a), ctx.Param(b))))
	})
}

func TestMatMulBTGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := newRandParam(rng, "a", 3, 5)
	b := newRandParam(rng, "b", 4, 5)
	checkOp(t, []*Param{a, b}, func(ctx *Context) *Node {
		return ctx.MeanAll(ctx.Square(ctx.MatMulBT(ctx.Param(a), ctx.Param(b))))
	})
}

func TestAddSubMulGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := newRandParam(rng, "a", 2, 3)
	b := newRandParam(rng, "b", 2, 3)
	checkOp(t, []*Param{a, b}, func(ctx *Context) *Node {
		na, nb := ctx.Param(a), ctx.Param(b)
		sum := ctx.Add(na, nb)
		dif := ctx.Sub(na, nb)
		prod := ctx.Mul(sum, dif)
		return ctx.MeanAll(ctx.Square(prod))
	})
}

func TestAddBiasGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := newRandParam(rng, "x", 4, 3)
	b := newRandParam(rng, "b", 1, 3)
	checkOp(t, []*Param{x, b}, func(ctx *Context) *Node {
		return ctx.MeanAll(ctx.Square(ctx.AddBias(ctx.Param(x), ctx.Param(b))))
	})
}

func TestAddOuterGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := newRandParam(rng, "a", 4, 1)
	b := newRandParam(rng, "b", 3, 1)
	checkOp(t, []*Param{a, b}, func(ctx *Context) *Node {
		return ctx.MeanAll(ctx.Square(ctx.AddOuter(ctx.Param(a), ctx.Param(b))))
	})
}

func TestActivationGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := newRandParam(rng, "x", 3, 4)
	// Nudge values away from the ReLU kink to keep finite differences exact.
	for i := range x.V.Data {
		if math.Abs(x.V.Data[i]) < 1e-3 {
			x.V.Data[i] = 0.1
		}
	}
	checkOp(t, []*Param{x}, func(ctx *Context) *Node {
		return ctx.MeanAll(ctx.Square(ctx.ReLU(ctx.Param(x))))
	})
	checkOp(t, []*Param{x}, func(ctx *Context) *Node {
		return ctx.MeanAll(ctx.Square(ctx.LeakyReLU(ctx.Param(x), 0.2)))
	})
	checkOp(t, []*Param{x}, func(ctx *Context) *Node {
		return ctx.MeanAll(ctx.Square(ctx.Tanh(ctx.Param(x))))
	})
	checkOp(t, []*Param{x}, func(ctx *Context) *Node {
		return ctx.MeanAll(ctx.Abs(ctx.Param(x)))
	})
}

func TestSoftmaxGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := newRandParam(rng, "x", 3, 5)
	w := newRandParam(rng, "w", 5, 1)
	checkOp(t, []*Param{x, w}, func(ctx *Context) *Node {
		s := ctx.SoftmaxRows(ctx.Param(x), nil)
		return ctx.MeanAll(ctx.Square(ctx.MatMul(s, ctx.Param(w))))
	})
}

func TestSoftmaxMaskedGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := newRandParam(rng, "x", 3, 3)
	inf := math.Inf(-1)
	mask := tensor.FromRows([][]float64{{0, inf, 0}, {0, 0, 0}, {inf, 0, 0}})
	w := newRandParam(rng, "w", 3, 1)
	checkOp(t, []*Param{x, w}, func(ctx *Context) *Node {
		s := ctx.SoftmaxRows(ctx.Param(x), mask)
		return ctx.MeanAll(ctx.Square(ctx.MatMul(s, ctx.Param(w))))
	})
}

func TestLayerNormGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := newRandParam(rng, "x", 4, 6)
	g := NewParam("gamma", tensor.RandUniform(rng, 1, 6, 0.5, 1.5))
	b := newRandParam(rng, "beta", 1, 6)
	checkOp(t, []*Param{x, g, b}, func(ctx *Context) *Node {
		y := ctx.LayerNorm(ctx.Param(x), ctx.Param(g), ctx.Param(b), 1e-5)
		return ctx.MeanAll(ctx.Square(y))
	})
}

func TestConcatSliceGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := newRandParam(rng, "a", 3, 2)
	b := newRandParam(rng, "b", 3, 4)
	checkOp(t, []*Param{a, b}, func(ctx *Context) *Node {
		cat := ctx.ConcatCols(ctx.Param(a), ctx.Param(b))
		left := ctx.SliceCols(cat, 0, 3)
		return ctx.MeanAll(ctx.Square(left))
	})
}

func TestSumMeanRowsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := newRandParam(rng, "x", 5, 3)
	checkOp(t, []*Param{x}, func(ctx *Context) *Node {
		return ctx.MeanAll(ctx.Square(ctx.SumRows(ctx.Param(x))))
	})
	checkOp(t, []*Param{x}, func(ctx *Context) *Node {
		return ctx.MeanAll(ctx.Square(ctx.MeanRows(ctx.Param(x))))
	})
}

func TestGatherRowsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	table := newRandParam(rng, "table", 6, 4)
	idx := []int{0, 2, 2, 5}
	checkOp(t, []*Param{table}, func(ctx *Context) *Node {
		return ctx.MeanAll(ctx.Square(ctx.GatherRows(ctx.Param(table), idx)))
	})
}

func TestLossGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	w := newRandParam(rng, "w", 4, 1)
	x := tensor.Randn(rng, 3, 4, 1)
	y := tensor.Randn(rng, 3, 1, 1)
	checkOp(t, []*Param{w}, func(ctx *Context) *Node {
		pred := ctx.MatMul(ctx.Const(x), ctx.Param(w))
		return ctx.MAELoss(pred, y)
	})
	checkOp(t, []*Param{w}, func(ctx *Context) *Node {
		pred := ctx.MatMul(ctx.Const(x), ctx.Param(w))
		return ctx.MSELoss(pred, y)
	})
}

func TestParamReuseAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	w := newRandParam(rng, "w", 2, 2)
	// Using the same parameter twice must accumulate both gradient paths.
	checkOp(t, []*Param{w}, func(ctx *Context) *Node {
		n := ctx.Param(w)
		return ctx.MeanAll(ctx.Square(ctx.MatMul(n, n)))
	})
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar loss")
		}
	}()
	ctx := NewContext()
	n := ctx.Const(tensor.New(2, 2))
	ctx.Backward(n)
}

func TestConstHasNoGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	ctx := NewContext()
	cst := ctx.Const(tensor.Randn(rng, 2, 2, 1))
	w := newRandParam(rng, "w", 2, 2)
	loss := ctx.MeanAll(ctx.Square(ctx.MatMul(cst, ctx.Param(w))))
	ctx.Backward(loss)
	if cst.Grad() != nil && cst.Grad().MaxAbs() != 0 {
		t.Fatal("constant should not receive gradient")
	}
	if w.Grad.MaxAbs() == 0 {
		t.Fatal("parameter gradient should be nonzero")
	}
}
