// Batched tape ops: one tape records B stage graphs stacked into padded
// panel tensors (tensor.BatchLayout), so a minibatch runs one forward and
// one backward instead of B. Every op here is the panel-blocked form of a
// serial op in ag.go, built on the same inner kernels over the same operand
// ranges, so each graph's values and gradients are bitwise identical to
// running it alone on its own tape.
//
// Parameter gradients do not flow through opParam leaves on a batched tape.
// Instead each segmented op accumulates its per-panel weight/bias gradients
// directly into the panel's GradBuffer shard (SetShards) — the same
// per-sample shards the serial minibatch loop fills — so optim.ReduceGrads
// and everything downstream see byte-identical inputs. This works because
// the serial path's param accumulation is a single AddInPlace of the
// freshly-computed gradient into a zeroed shard, which the per-panel
// AddInPlace here reproduces exactly.
package ag

import (
	"math"

	"predtop/internal/tensor"
)

// SetShards attaches one gradient shard per panel of the next batched pass:
// panel g's parameter gradients accumulate into shards[g]. Passing nil
// detaches (gradients then fall back to the context's GradBuffer or
// Param.Grad). Call before BackwardVec; the slice is retained, not copied.
func (c *Context) SetShards(shards []*GradBuffer) { c.shards = shards }

// shardGrad resolves the gradient accumulator for parameter p on panel g.
func (c *Context) shardGrad(g int, p *Param) *tensor.Tensor {
	if c.shards != nil {
		return c.shards[g].Grad(p)
	}
	if c.grads != nil {
		return c.grads.Grad(p)
	}
	return p.Grad
}

// BackwardVec seeds an N×1 loss vector with all-ones gradients and walks the
// tape in reverse, exactly like Backward. On a batched tape whose panels
// never mix (every op here is panel-block-diagonal), this equals seeding
// each panel's scalar loss with 1 on its own tape — the serial minibatch
// loop — so gradients land bitwise identical in the per-panel shards.
func (c *Context) BackwardVec(loss *Node) {
	seed := c.arena.GetUninit(loss.V.R, loss.V.C)
	for i := range seed.Data {
		seed.Data[i] = 1
	}
	loss.grad = seed
	if len(c.marks) > 0 && c.span.Enabled() {
		bspan := c.span.Start("backward")
		c.backwardProfiled(bspan)
		bspan.End()
		return
	}
	for i := len(c.nodes) - 1; i >= 0; i-- {
		n := c.nodes[i]
		if n.grad == nil || !n.requires {
			continue
		}
		c.runBack(n)
	}
}

// clearPadRows zeroes rows [lo, hi) of t — pad rows of a freshly computed
// gradient, kept zero so downstream elementwise accumulation stays finite
// and panel reductions never see garbage.
func clearPadRows(t *tensor.Tensor, lo, hi int) {
	clear(t.Data[lo*t.C : hi*t.C])
}

// SegLinear is the batched fused dense layer x·W + b over every panel's real
// rows (pad rows zero). W and b gradients accumulate per panel into the
// panel's shard.
func (c *Context) SegLinear(x *Node, w, b *Param, l tensor.BatchLayout) *Node {
	v := c.arena.GetUninit(x.V.R, w.V.C)
	tensor.SegLinearInto(v, x.V, w.V, b.V, l)
	n := c.node(opSegLinear, v, true)
	n.a, n.p1, n.p2, n.bl = x, w, b, l
	return n
}

func (c *Context) backSegLinear(n *Node) {
	g, x, w, b, l := n.grad, n.a, n.p1, n.p2, n.bl
	if x.requires {
		d := c.arena.GetUninit(g.R, w.V.R)
		tensor.SegMatMulBTInto(d, g, w.V, l) // dX = g·Wᵀ per panel
		c.accumOwn(x, d)
	}
	for gi := 0; gi < l.B; gi++ {
		lo := gi * l.Stride
		hi := lo + l.Counts[gi]
		dw := c.arena.GetUninit(x.V.C, g.C)
		tensor.MatMulATRangeInto(dw, x.V, g, lo, hi) // dW = X_gᵀ·g_g
		tensor.AddInPlace(c.shardGrad(gi, w), dw)
		db := c.arena.GetUninit(1, g.C)
		tensor.SumRowsRangeInto(db, g, lo, hi)
		tensor.AddInPlace(c.shardGrad(gi, b), db)
	}
}

// SegMatMul multiplies every panel's real rows by a shared parameter matrix
// (e.g. a GAT attention vector); the parameter gradient accumulates per
// panel into the panel's shard.
func (c *Context) SegMatMul(a *Node, p *Param, l tensor.BatchLayout) *Node {
	v := c.arena.GetUninit(a.V.R, p.V.C)
	tensor.SegMatMulInto(v, a.V, p.V, l)
	n := c.node(opSegMatMulP, v, true)
	n.a, n.p1, n.bl = a, p, l
	return n
}

func (c *Context) backSegMatMulP(n *Node) {
	g, a, p, l := n.grad, n.a, n.p1, n.bl
	if a.requires {
		d := c.arena.GetUninit(g.R, p.V.R)
		tensor.SegMatMulBTInto(d, g, p.V, l)
		c.accumOwn(a, d)
	}
	for gi := 0; gi < l.B; gi++ {
		lo := gi * l.Stride
		hi := lo + l.Counts[gi]
		dp := c.arena.GetUninit(a.V.C, g.C)
		tensor.MatMulATRangeInto(dp, a.V, g, lo, hi)
		tensor.AddInPlace(c.shardGrad(gi, p), dp)
	}
}

// SegLayerNorm normalizes every panel's real rows (pad rows zero) with the
// row math of Context.LayerNorm; γ/β gradients accumulate per panel.
func (c *Context) SegLayerNorm(x *Node, gamma, beta *Param, eps float64, l tensor.BatchLayout) *Node {
	rows, d := x.V.R, x.V.C
	xhat := c.arena.GetUninit(rows, d)
	invstd := c.arena.GetUninit(rows, 1)
	y := c.arena.GetUninit(rows, d)
	gd, bd := gamma.V.Data, beta.V.Data
	for gi := 0; gi < l.B; gi++ {
		lo := gi * l.Stride
		hi := lo + l.Counts[gi]
		for i := lo; i < hi; i++ {
			row := x.V.Row(i)
			mean := 0.0
			for _, v := range row {
				mean += v
			}
			mean /= float64(d)
			varr := 0.0
			for _, v := range row {
				dv := v - mean
				varr += dv * dv
			}
			varr /= float64(d)
			is := 1 / math.Sqrt(varr+eps)
			invstd.Data[i] = is
			xrow := xhat.Row(i)
			for j, v := range row {
				xrow[j] = (v - mean) * is
			}
			yrow := y.Row(i)
			for j := range yrow {
				yrow[j] = xrow[j]*gd[j] + bd[j]
			}
		}
		clearPadRows(y, hi, lo+l.Stride)
		clearPadRows(xhat, hi, lo+l.Stride)
	}
	n := c.node(opSegLayerNorm, y, true)
	n.a, n.p1, n.p2, n.s, n.bl = x, gamma, beta, eps, l
	n.aux, n.aux2 = xhat, invstd
	return n
}

func (c *Context) backSegLayerNorm(n *Node) {
	g, x, gamma, beta, l := n.grad, n.a, n.p1, n.p2, n.bl
	d := n.V.C
	xhat, invstd := n.aux, n.aux2.Data
	gd := gamma.V.Data
	var dx *tensor.Tensor
	if x.requires {
		dx = c.arena.GetUninit(n.V.R, d)
	}
	for gi := 0; gi < l.B; gi++ {
		lo := gi * l.Stride
		hi := lo + l.Counts[gi]
		dgam := c.arena.Get(1, d)
		for i := lo; i < hi; i++ {
			grow, xrow := g.Row(i), xhat.Row(i)
			for j := range grow {
				dgam.Data[j] += grow[j] * xrow[j]
			}
		}
		tensor.AddInPlace(c.shardGrad(gi, gamma), dgam)
		dbeta := c.arena.GetUninit(1, d)
		tensor.SumRowsRangeInto(dbeta, g, lo, hi)
		tensor.AddInPlace(c.shardGrad(gi, beta), dbeta)
		if dx == nil {
			continue
		}
		for i := lo; i < hi; i++ {
			grow, xrow, drow := g.Row(i), xhat.Row(i), dx.Row(i)
			sum1, sum2 := 0.0, 0.0
			for j := range grow {
				dxh := grow[j] * gd[j]
				drow[j] = dxh
				sum1 += dxh
				sum2 += dxh * xrow[j]
			}
			inv := invstd[i] / float64(d)
			for j := range drow {
				drow[j] = inv * (float64(d)*drow[j] - sum1 - xrow[j]*sum2)
			}
		}
		clearPadRows(dx, hi, lo+l.Stride)
	}
	if dx != nil {
		c.accumOwn(x, dx)
	}
}

// SegSumRows pools each panel's real rows into one row — the batched
// global-add-pool, producing B×C from the stacked node tensor.
func (c *Context) SegSumRows(x *Node, l tensor.BatchLayout) *Node {
	v := c.arena.GetUninit(l.B, x.V.C)
	tensor.SegSumRowsInto(v, x.V, l)
	n := c.node(opSegSumRows, v, x.requires)
	n.a, n.bl = x, l
	return n
}

func (c *Context) backSegSumRows(n *Node) {
	g, x, l := n.grad, n.a, n.bl
	d := c.arena.GetUninit(x.V.R, x.V.C)
	for gi := 0; gi < l.B; gi++ {
		lo := gi * l.Stride
		hi := lo + l.Counts[gi]
		grow := g.Row(gi)
		for i := lo; i < hi; i++ {
			copy(d.Row(i), grow)
		}
		clearPadRows(d, hi, lo+l.Stride)
	}
	c.accumOwn(x, d)
}

// SegAdjMatMul applies each graph's own (constant) normalized adjacency to
// its panel — the batched GCN aggregation Â_g·X_g.
func (c *Context) SegAdjMatMul(adjs []*tensor.Tensor, x *Node, l tensor.BatchLayout) *Node {
	v := c.arena.GetUninit(x.V.R, x.V.C)
	tensor.SegAdjMatMulInto(v, adjs, x.V, l)
	n := c.node(opSegAdjMatMul, v, x.requires)
	n.a, n.mts, n.bl = x, adjs, l
	return n
}

func (c *Context) backSegAdjMatMul(n *Node) {
	g, x, l := n.grad, n.a, n.bl
	d := c.arena.GetUninit(g.R, g.C)
	tensor.PanelAdjATInto(d, n.mts, g, l) // dX = Â_gᵀ·g_g per panel
	c.accumOwn(x, d)
}

// PanelMatMulBT computes each panel's score matrix a_g·b_gᵀ from stacked
// inputs into a panel-width (rows×Stride) tensor.
func (c *Context) PanelMatMulBT(a, b *Node, l tensor.BatchLayout) *Node {
	v := c.arena.GetUninit(a.V.R, l.Stride)
	tensor.PanelMatMulBTInto(v, a.V, b.V, l)
	n := c.node(opPanelMatMulBT, v, anyRequires(a, b))
	n.a, n.b, n.bl = a, b, l
	return n
}

func (c *Context) backPanelMatMulBT(n *Node) {
	g, a, b, l := n.grad, n.a, n.b, n.bl
	if a.requires {
		d := c.arena.GetUninit(a.V.R, a.V.C)
		tensor.PanelMatMulInto(d, g, b.V, l) // dA = g_g·B_g per panel
		c.accumOwn(a, d)
	}
	if b.requires {
		d := c.arena.GetUninit(b.V.R, b.V.C)
		tensor.PanelMatMulATInto(d, g, a.V, l) // dB = g_gᵀ·A_g per panel
		c.accumOwn(b, d)
	}
}

// PanelMatMul multiplies each panel's attention weights (panel-width a) by
// the panel's rows of stacked b — the attention·V product.
func (c *Context) PanelMatMul(a, b *Node, l tensor.BatchLayout) *Node {
	v := c.arena.GetUninit(a.V.R, b.V.C)
	tensor.PanelMatMulInto(v, a.V, b.V, l)
	n := c.node(opPanelMatMul, v, anyRequires(a, b))
	n.a, n.b, n.bl = a, b, l
	return n
}

func (c *Context) backPanelMatMul(n *Node) {
	g, a, b, l := n.grad, n.a, n.b, n.bl
	if a.requires {
		d := c.arena.GetUninit(a.V.R, a.V.C)
		tensor.PanelMatMulBTInto(d, g, b.V, l) // dA = g_g·B_gᵀ per panel
		c.accumOwn(a, d)
	}
	if b.requires {
		d := c.arena.GetUninit(b.V.R, b.V.C)
		tensor.PanelMatMulATInto(d, a.V, g, l) // dB = A_gᵀ·g_g per panel
		c.accumOwn(b, d)
	}
}

// PanelSoftmaxInPlace applies each panel's masked row softmax over its
// logical width, in x's own buffer (safe exactly when the serial
// SoftmaxRowsInPlace is: softmax's VJP needs only its output). masks[g] is
// graph g's additive c×c mask (nil disables masking for that graph).
func (c *Context) PanelSoftmaxInPlace(x *Node, masks []*tensor.Tensor, l tensor.BatchLayout) *Node {
	tensor.PanelSoftmaxInto(x.V, x.V, masks, l)
	n := c.node(opPanelSoftmax, x.V, x.requires)
	n.a, n.mts, n.bl = x, masks, l
	return n
}

func (c *Context) backPanelSoftmax(n *Node) {
	g, y, l := n.grad, n.V, n.bl
	d := c.arena.GetUninit(g.R, g.C)
	s := l.Stride
	for gi := 0; gi < l.B; gi++ {
		cnt := l.Counts[gi]
		base := gi * s
		for i := base; i < base+cnt; i++ {
			grow := g.Data[i*s : i*s+cnt]
			yrow := y.Data[i*s : i*s+cnt]
			drow := d.Data[i*s : i*s+cnt]
			dotgy := 0.0
			for j := range grow {
				dotgy += grow[j] * yrow[j]
			}
			tensor.SoftmaxBackRow(drow, grow, yrow, dotgy)
			clear(d.Data[i*s+cnt : (i+1)*s])
		}
		clearPadRows(d, base+cnt, base+s)
	}
	c.accumOwn(n.a, d)
}

// PanelAddOuter computes each panel's logit matrix out[i][j] = a[i] + b[j]
// from stacked column vectors — the batched GAT attention-logit sum — into a
// panel-width tensor.
func (c *Context) PanelAddOuter(a, b *Node, l tensor.BatchLayout) *Node {
	v := c.arena.GetUninit(a.V.R, l.Stride)
	tensor.PanelAddOuterInto(v, a.V, b.V, l)
	n := c.node(opPanelAddOuter, v, anyRequires(a, b))
	n.a, n.b, n.bl = a, b, l
	return n
}

func (c *Context) backPanelAddOuter(n *Node) {
	g, a, b, l := n.grad, n.a, n.b, n.bl
	if a.requires {
		d := c.arena.GetUninit(g.R, 1)
		tensor.PanelSumColsInto(d, g, l)
		c.accumOwn(a, d)
	}
	if b.requires {
		d := c.arena.GetUninit(g.R, 1)
		tensor.PanelColSumsInto(d, g, l)
		c.accumOwn(b, d)
	}
}
