// Package ag implements tape-based reverse-mode automatic differentiation
// over the 2-D tensors in internal/tensor.
//
// A Context records every operation of one forward pass. Backward walks the
// tape in reverse, accumulating gradients into each node and, for parameter
// leaves, into the owning Param's Grad tensor. Contexts are cheap; one is
// created per training example (or per mini-batch element) and discarded.
package ag

import (
	"fmt"
	"math"

	"predtop/internal/obs"
	"predtop/internal/tensor"
)

// Param is a trainable tensor shared across forward passes. Grad accumulates
// gradients until an optimizer consumes and zeroes it.
type Param struct {
	Name string
	V    *tensor.Tensor
	Grad *tensor.Tensor
}

// NewParam wraps t as a named trainable parameter with a zero gradient.
func NewParam(name string, t *tensor.Tensor) *Param {
	return &Param{Name: name, V: t, Grad: tensor.New(t.R, t.C)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// GradBuffer is a private gradient accumulator covering a fixed parameter
// set. Data-parallel training gives each minibatch shard its own buffer
// (via NewContextInto) so worker goroutines never write shared state;
// optim.ReduceGrads then folds the shard buffers into Param.Grad in a fixed
// order, keeping results bitwise identical across worker counts.
type GradBuffer struct {
	grads []*tensor.Tensor
	index map[*Param]int
}

// NewGradBuffer allocates a zeroed accumulator per parameter. Buffers that
// will be reduced together must be built from the same params slice so
// their accumulators align.
func NewGradBuffer(params []*Param) *GradBuffer {
	b := &GradBuffer{
		grads: make([]*tensor.Tensor, len(params)),
		index: make(map[*Param]int, len(params)),
	}
	for i, p := range params {
		b.grads[i] = tensor.New(p.V.R, p.V.C)
		b.index[p] = i
	}
	return b
}

// Grad returns the buffer's accumulator for p.
func (b *GradBuffer) Grad(p *Param) *tensor.Tensor {
	i, ok := b.index[p]
	if !ok {
		panic("ag: GradBuffer does not cover parameter " + p.Name)
	}
	return b.grads[i]
}

// Grads returns the accumulators in construction parameter order.
func (b *GradBuffer) Grads() []*tensor.Tensor { return b.grads }

// Zero clears every accumulator for reuse.
func (b *GradBuffer) Zero() {
	for _, g := range b.grads {
		g.Zero()
	}
}

// Node is one value on the autodiff tape.
type Node struct {
	V        *tensor.Tensor
	grad     *tensor.Tensor
	back     func(g *tensor.Tensor)
	requires bool
}

// Value returns the node's forward value.
func (n *Node) Value() *tensor.Tensor { return n.V }

// Grad returns the accumulated gradient (nil before Backward or for
// non-differentiable nodes).
func (n *Node) Grad() *tensor.Tensor { return n.grad }

// Context is one autodiff tape.
type Context struct {
	nodes  []*Node
	params map[*Param]*Node
	grads  *GradBuffer // nil: Backward accumulates into Param.Grad directly
	span   obs.Span    // profiling span layer marks nest under (see profile.go)
	marks  []layerMark // tape ranges recorded by StartLayer/End
}

// NewContext returns an empty tape accumulating into Param.Grad.
func NewContext() *Context {
	return &Context{params: make(map[*Param]*Node)}
}

// NewContextInto returns an empty tape whose Backward accumulates parameter
// gradients into b instead of the shared Param.Grad, so concurrent tapes
// over the same parameters never race.
func NewContextInto(b *GradBuffer) *Context {
	c := NewContext()
	c.grads = b
	return c
}

// Reset clears the tape for reuse, keeping its gradient destination and the
// node slice's backing array (so a pooled context stops allocating once it
// has seen its largest graph).
func (c *Context) Reset() {
	for i := range c.nodes {
		c.nodes[i] = nil
	}
	c.nodes = c.nodes[:0]
	clear(c.params)
	c.marks = c.marks[:0]
}

func (c *Context) add(n *Node) *Node {
	c.nodes = append(c.nodes, n)
	return n
}

// Const wraps a tensor that requires no gradient.
func (c *Context) Const(t *tensor.Tensor) *Node {
	return c.add(&Node{V: t})
}

// Param returns the (memoized) leaf node for p; gradients reaching it are
// accumulated into p.Grad during Backward.
func (c *Context) Param(p *Param) *Node {
	if n, ok := c.params[p]; ok {
		return n
	}
	n := c.add(&Node{V: p.V, requires: true})
	dst := p.Grad
	if c.grads != nil {
		dst = c.grads.Grad(p)
	}
	n.back = func(g *tensor.Tensor) { tensor.AddInPlace(dst, g) }
	c.params[p] = n
	return n
}

// accum adds g into n's gradient buffer.
func (n *Node) accum(g *tensor.Tensor) {
	if n.grad == nil {
		n.grad = g.Clone()
		return
	}
	tensor.AddInPlace(n.grad, g)
}

func anyRequires(ns ...*Node) bool {
	for _, n := range ns {
		if n.requires {
			return true
		}
	}
	return false
}

// Backward seeds the 1×1 loss node with gradient 1 and propagates gradients
// through the tape in reverse recording order. When a profiling span is
// attached and layer marks were recorded, the replay is additionally timed
// per layer (see profile.go); the gradient math is identical either way.
func (c *Context) Backward(loss *Node) {
	if loss.V.R != 1 || loss.V.C != 1 {
		panic(fmt.Sprintf("ag: Backward needs a scalar loss, got %dx%d", loss.V.R, loss.V.C))
	}
	loss.grad = tensor.Full(1, 1, 1)
	if len(c.marks) > 0 && c.span.Enabled() {
		bspan := c.span.Start("backward")
		c.backwardProfiled(bspan)
		bspan.End()
		return
	}
	for i := len(c.nodes) - 1; i >= 0; i-- {
		n := c.nodes[i]
		if n.grad == nil || n.back == nil {
			continue
		}
		n.back(n.grad)
	}
}

// MatMul returns a·b.
func (c *Context) MatMul(a, b *Node) *Node {
	out := &Node{V: tensor.MatMul(a.V, b.V), requires: anyRequires(a, b)}
	if out.requires {
		out.back = func(g *tensor.Tensor) {
			if a.requires {
				a.accum(tensor.MatMulBT(g, b.V)) // dA = g·Bᵀ
			}
			if b.requires {
				b.accum(tensor.MatMulAT(a.V, g)) // dB = Aᵀ·g
			}
		}
	}
	return c.add(out)
}

// MatMulBT returns a·bᵀ without materializing the transpose.
func (c *Context) MatMulBT(a, b *Node) *Node {
	out := &Node{V: tensor.MatMulBT(a.V, b.V), requires: anyRequires(a, b)}
	if out.requires {
		out.back = func(g *tensor.Tensor) {
			if a.requires {
				a.accum(tensor.MatMul(g, b.V)) // dA = g·B
			}
			if b.requires {
				b.accum(tensor.MatMulAT(g, a.V)) // dB = gᵀ·A
			}
		}
	}
	return c.add(out)
}

// Add returns a + b (same shape).
func (c *Context) Add(a, b *Node) *Node {
	out := &Node{V: tensor.Add(a.V, b.V), requires: anyRequires(a, b)}
	if out.requires {
		out.back = func(g *tensor.Tensor) {
			if a.requires {
				a.accum(g)
			}
			if b.requires {
				b.accum(g)
			}
		}
	}
	return c.add(out)
}

// Sub returns a − b (same shape).
func (c *Context) Sub(a, b *Node) *Node {
	out := &Node{V: tensor.Sub(a.V, b.V), requires: anyRequires(a, b)}
	if out.requires {
		out.back = func(g *tensor.Tensor) {
			if a.requires {
				a.accum(g)
			}
			if b.requires {
				b.accum(tensor.Scale(g, -1))
			}
		}
	}
	return c.add(out)
}

// Mul returns a ⊙ b (same shape).
func (c *Context) Mul(a, b *Node) *Node {
	out := &Node{V: tensor.Mul(a.V, b.V), requires: anyRequires(a, b)}
	if out.requires {
		out.back = func(g *tensor.Tensor) {
			if a.requires {
				a.accum(tensor.Mul(g, b.V))
			}
			if b.requires {
				b.accum(tensor.Mul(g, a.V))
			}
		}
	}
	return c.add(out)
}

// AddBias adds the 1×C bias row vector b to every row of x.
func (c *Context) AddBias(x, b *Node) *Node {
	out := &Node{V: tensor.AddRowVec(x.V, b.V), requires: anyRequires(x, b)}
	if out.requires {
		out.back = func(g *tensor.Tensor) {
			if x.requires {
				x.accum(g)
			}
			if b.requires {
				b.accum(tensor.SumRows(g))
			}
		}
	}
	return c.add(out)
}

// AddOuter returns out[i][j] = a[i] + b[j] for column vectors a, b.
func (c *Context) AddOuter(a, b *Node) *Node {
	out := &Node{V: tensor.AddOuter(a.V, b.V), requires: anyRequires(a, b)}
	if out.requires {
		out.back = func(g *tensor.Tensor) {
			if a.requires {
				a.accum(tensor.SumCols(g))
			}
			if b.requires {
				a2 := tensor.SumRows(g) // 1×M
				b.accum(a2.Transpose())
			}
		}
	}
	return c.add(out)
}

// Scale returns s·x.
func (c *Context) Scale(x *Node, s float64) *Node {
	out := &Node{V: tensor.Scale(x.V, s), requires: x.requires}
	if out.requires {
		out.back = func(g *tensor.Tensor) { x.accum(tensor.Scale(g, s)) }
	}
	return c.add(out)
}

// ReLU returns max(x, 0).
func (c *Context) ReLU(x *Node) *Node {
	v := tensor.Map(x.V, func(a float64) float64 { return math.Max(a, 0) })
	out := &Node{V: v, requires: x.requires}
	if out.requires {
		out.back = func(g *tensor.Tensor) {
			dx := tensor.New(g.R, g.C)
			for i, gv := range g.Data {
				if x.V.Data[i] > 0 {
					dx.Data[i] = gv
				}
			}
			x.accum(dx)
		}
	}
	return c.add(out)
}

// LeakyReLU returns x for x>0 and αx otherwise.
func (c *Context) LeakyReLU(x *Node, alpha float64) *Node {
	v := tensor.Map(x.V, func(a float64) float64 {
		if a > 0 {
			return a
		}
		return alpha * a
	})
	out := &Node{V: v, requires: x.requires}
	if out.requires {
		out.back = func(g *tensor.Tensor) {
			dx := tensor.New(g.R, g.C)
			for i, gv := range g.Data {
				if x.V.Data[i] > 0 {
					dx.Data[i] = gv
				} else {
					dx.Data[i] = alpha * gv
				}
			}
			x.accum(dx)
		}
	}
	return c.add(out)
}

// Tanh returns tanh(x) elementwise.
func (c *Context) Tanh(x *Node) *Node {
	v := tensor.Map(x.V, math.Tanh)
	out := &Node{V: v, requires: x.requires}
	if out.requires {
		out.back = func(g *tensor.Tensor) {
			dx := tensor.New(g.R, g.C)
			for i, gv := range g.Data {
				dx.Data[i] = gv * (1 - v.Data[i]*v.Data[i])
			}
			x.accum(dx)
		}
	}
	return c.add(out)
}

// SoftmaxRows applies row-wise softmax; mask (may be nil) is a constant
// additive logit mask with −Inf at disabled positions.
func (c *Context) SoftmaxRows(x *Node, mask *tensor.Tensor) *Node {
	y := tensor.SoftmaxRows(x.V, mask)
	out := &Node{V: y, requires: x.requires}
	if out.requires {
		out.back = func(g *tensor.Tensor) {
			// dx = y ⊙ (g − rowsum(g ⊙ y))
			dx := tensor.New(g.R, g.C)
			for i := 0; i < g.R; i++ {
				grow, yrow, drow := g.Row(i), y.Row(i), dx.Row(i)
				dotgy := 0.0
				for j := range grow {
					dotgy += grow[j] * yrow[j]
				}
				for j := range grow {
					drow[j] = yrow[j] * (grow[j] - dotgy)
				}
			}
			x.accum(dx)
		}
	}
	return c.add(out)
}

// LayerNorm normalizes each row of x to zero mean and unit variance, then
// scales by gamma and shifts by beta (both 1×C).
func (c *Context) LayerNorm(x, gamma, beta *Node, eps float64) *Node {
	n, d := x.V.R, x.V.C
	xhat := tensor.New(n, d)
	invstd := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.V.Row(i)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(d)
		varr := 0.0
		for _, v := range row {
			dv := v - mean
			varr += dv * dv
		}
		varr /= float64(d)
		is := 1 / math.Sqrt(varr+eps)
		invstd[i] = is
		xrow := xhat.Row(i)
		for j, v := range row {
			xrow[j] = (v - mean) * is
		}
	}
	y := tensor.New(n, d)
	for i := 0; i < n; i++ {
		yrow, xrow := y.Row(i), xhat.Row(i)
		for j := range yrow {
			yrow[j] = xrow[j]*gamma.V.Data[j] + beta.V.Data[j]
		}
	}
	out := &Node{V: y, requires: anyRequires(x, gamma, beta)}
	if out.requires {
		out.back = func(g *tensor.Tensor) {
			if gamma.requires {
				dg := tensor.New(1, d)
				for i := 0; i < n; i++ {
					grow, xrow := g.Row(i), xhat.Row(i)
					for j := range grow {
						dg.Data[j] += grow[j] * xrow[j]
					}
				}
				gamma.accum(dg)
			}
			if beta.requires {
				beta.accum(tensor.SumRows(g))
			}
			if x.requires {
				dx := tensor.New(n, d)
				for i := 0; i < n; i++ {
					grow, xrow, drow := g.Row(i), xhat.Row(i), dx.Row(i)
					// dxhat = g * gamma
					sum1, sum2 := 0.0, 0.0
					for j := range grow {
						dxh := grow[j] * gamma.V.Data[j]
						drow[j] = dxh
						sum1 += dxh
						sum2 += dxh * xrow[j]
					}
					inv := invstd[i] / float64(d)
					for j := range drow {
						drow[j] = inv * (float64(d)*drow[j] - sum1 - xrow[j]*sum2)
					}
				}
				x.accum(dx)
			}
		}
	}
	return c.add(out)
}

// ConcatCols concatenates nodes along columns.
func (c *Context) ConcatCols(xs ...*Node) *Node {
	vs := make([]*tensor.Tensor, len(xs))
	req := false
	for i, x := range xs {
		vs[i] = x.V
		req = req || x.requires
	}
	out := &Node{V: tensor.ConcatCols(vs...), requires: req}
	if req {
		out.back = func(g *tensor.Tensor) {
			off := 0
			for _, x := range xs {
				if x.requires {
					x.accum(tensor.SliceCols(g, off, off+x.V.C))
				}
				off += x.V.C
			}
		}
	}
	return c.add(out)
}

// SliceCols extracts columns [lo, hi).
func (c *Context) SliceCols(x *Node, lo, hi int) *Node {
	out := &Node{V: tensor.SliceCols(x.V, lo, hi), requires: x.requires}
	if out.requires {
		out.back = func(g *tensor.Tensor) {
			dx := tensor.New(x.V.R, x.V.C)
			for i := 0; i < g.R; i++ {
				copy(dx.Row(i)[lo:hi], g.Row(i))
			}
			x.accum(dx)
		}
	}
	return c.add(out)
}

// SumRows sums over rows, producing the 1×C graph-pooling vector.
func (c *Context) SumRows(x *Node) *Node {
	out := &Node{V: tensor.SumRows(x.V), requires: x.requires}
	if out.requires {
		out.back = func(g *tensor.Tensor) {
			dx := tensor.New(x.V.R, x.V.C)
			for i := 0; i < dx.R; i++ {
				copy(dx.Row(i), g.Row(0))
			}
			x.accum(dx)
		}
	}
	return c.add(out)
}

// MeanRows averages over rows, producing a 1×C vector.
func (c *Context) MeanRows(x *Node) *Node {
	return c.Scale(c.SumRows(x), 1/float64(x.V.R))
}

// GatherRows selects rows of x by index (e.g. a positional-encoding table
// addressed by node depth); gradients scatter-add back.
func (c *Context) GatherRows(x *Node, idx []int) *Node {
	out := &Node{V: tensor.GatherRows(x.V, idx), requires: x.requires}
	if out.requires {
		out.back = func(g *tensor.Tensor) {
			dx := tensor.New(x.V.R, x.V.C)
			tensor.ScatterAddRows(dx, g, idx)
			x.accum(dx)
		}
	}
	return c.add(out)
}

// Abs returns |x| elementwise (subgradient 0 at 0).
func (c *Context) Abs(x *Node) *Node {
	out := &Node{V: tensor.Map(x.V, math.Abs), requires: x.requires}
	if out.requires {
		out.back = func(g *tensor.Tensor) {
			dx := tensor.New(g.R, g.C)
			for i, gv := range g.Data {
				switch {
				case x.V.Data[i] > 0:
					dx.Data[i] = gv
				case x.V.Data[i] < 0:
					dx.Data[i] = -gv
				}
			}
			x.accum(dx)
		}
	}
	return c.add(out)
}

// Square returns x² elementwise.
func (c *Context) Square(x *Node) *Node { return c.Mul(x, x) }

// MeanAll reduces x to its 1×1 scalar mean.
func (c *Context) MeanAll(x *Node) *Node {
	out := &Node{V: tensor.Full(1, 1, x.V.Sum()/float64(x.V.Size())), requires: x.requires}
	if out.requires {
		out.back = func(g *tensor.Tensor) {
			x.accum(tensor.Full(x.V.R, x.V.C, g.Data[0]/float64(x.V.Size())))
		}
	}
	return c.add(out)
}

// MAELoss returns mean |pred − target| as a 1×1 scalar; target is constant.
func (c *Context) MAELoss(pred *Node, target *tensor.Tensor) *Node {
	return c.MeanAll(c.Abs(c.Sub(pred, c.Const(target))))
}

// MSELoss returns mean (pred − target)² as a 1×1 scalar; target is constant.
func (c *Context) MSELoss(pred *Node, target *tensor.Tensor) *Node {
	return c.MeanAll(c.Square(c.Sub(pred, c.Const(target))))
}
