// Package ag implements tape-based reverse-mode automatic differentiation
// over the 2-D tensors in internal/tensor.
//
// A Context records every operation of one forward pass. Backward walks the
// tape in reverse, accumulating gradients into each node and, for parameter
// leaves, into the owning Param's Grad tensor. Contexts are reusable: Reset
// recycles the tape, its pooled Node storage, and — via the context's
// tensor.Arena — every intermediate buffer of the pass, so a context that
// has seen its largest graph allocates nothing in steady state.
package ag

import (
	"fmt"
	"math"

	"predtop/internal/obs"
	"predtop/internal/tensor"
)

// Param is a trainable tensor shared across forward passes. Grad accumulates
// gradients until an optimizer consumes and zeroes it.
type Param struct {
	Name string
	V    *tensor.Tensor
	Grad *tensor.Tensor
}

// NewParam wraps t as a named trainable parameter with a zero gradient.
func NewParam(name string, t *tensor.Tensor) *Param {
	return &Param{Name: name, V: t, Grad: tensor.New(t.R, t.C)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// GradBuffer is a private gradient accumulator covering a fixed parameter
// set. Data-parallel training gives each minibatch shard its own buffer
// (via NewContextInto) so worker goroutines never write shared state;
// optim.ReduceGrads then folds the shard buffers into Param.Grad in a fixed
// order, keeping results bitwise identical across worker counts.
type GradBuffer struct {
	grads []*tensor.Tensor
	index map[*Param]int
}

// NewGradBuffer allocates a zeroed accumulator per parameter. Buffers that
// will be reduced together must be built from the same params slice so
// their accumulators align.
func NewGradBuffer(params []*Param) *GradBuffer {
	b := &GradBuffer{
		grads: make([]*tensor.Tensor, len(params)),
		index: make(map[*Param]int, len(params)),
	}
	for i, p := range params {
		b.grads[i] = tensor.New(p.V.R, p.V.C)
		b.index[p] = i
	}
	return b
}

// Grad returns the buffer's accumulator for p.
func (b *GradBuffer) Grad(p *Param) *tensor.Tensor {
	i, ok := b.index[p]
	if !ok {
		panic("ag: GradBuffer does not cover parameter " + p.Name)
	}
	return b.grads[i]
}

// Grads returns the accumulators in construction parameter order.
func (b *GradBuffer) Grads() []*tensor.Tensor { return b.grads }

// Zero clears every accumulator for reuse.
func (b *GradBuffer) Zero() {
	for _, g := range b.grads {
		g.Zero()
	}
}

// opKind identifies which vector–Jacobian product Backward runs for a node.
// Dispatching on an opcode instead of a captured closure keeps Node storage
// poolable and the tape allocation-free in steady state.
type opKind uint8

const (
	opConst opKind = iota // leaf: no gradient flows
	opParam               // leaf: gradient accumulates into gdst
	opMatMul
	opMatMulBT
	opLinear
	opAdd
	opSub
	opMul
	opAddBias
	opAddOuter
	opScale
	opReLU
	opLeakyReLU
	opTanh
	opSoftmax
	opLayerNorm
	opConcat
	opSlice
	opSumRows
	opGather
	opAbs
	opMeanAll
	// Batched (segmented) ops — see batch.go. Each is the panel-blocked form
	// of a serial op above, bitwise-identical per graph.
	opSegLinear
	opSegMatMulP
	opSegLayerNorm
	opSegSumRows
	opSegAdjMatMul
	opPanelMatMulBT
	opPanelMatMul
	opPanelSoftmax
	opPanelAddOuter
)

// Node is one value on the autodiff tape. Nodes are owned by their Context
// (allocated from pooled chunks) and become invalid at Reset.
type Node struct {
	V        *tensor.Tensor
	grad     *tensor.Tensor
	a, b, c3 *Node              // operands (c3: Linear bias / LayerNorm beta)
	xs       []*Node            // operands of ConcatCols
	aux      *tensor.Tensor     // saved forward state (LayerNorm x-hat)
	aux2     *tensor.Tensor     // saved forward state (LayerNorm 1/σ per row, R×1)
	gdst     *tensor.Tensor     // opParam: gradient accumulation destination
	idx      []int              // opGather row indices
	s        float64            // opScale factor / opLeakyReLU alpha / seg LayerNorm eps
	lo, hi   int                // opSlice column range
	bl       tensor.BatchLayout // batched ops: panel layout
	mts      []*tensor.Tensor   // batched ops: per-graph masks or adjacencies
	p1, p2   *Param             // batched ops: shared panel params (W/γ, b/β)
	op       opKind
	requires bool
}

// Value returns the node's forward value.
func (n *Node) Value() *tensor.Tensor { return n.V }

// Grad returns the accumulated gradient (nil before Backward or for
// non-differentiable nodes).
func (n *Node) Grad() *tensor.Tensor { return n.grad }

// nodeChunk is how many Nodes each pooled slab holds. Chunks are never
// reallocated, so node pointers stay stable as the tape grows.
const nodeChunk = 256

// Context is one autodiff tape.
type Context struct {
	arena  *tensor.Arena // buffer source for every intermediate; nil = heap
	chunks []*[nodeChunk]Node
	nused  int // nodes handed out from chunks this generation
	nodes  []*Node
	params map[*Param]*Node
	grads  *GradBuffer      // nil: Backward accumulates into Param.Grad directly
	shards []*GradBuffer    // batched tape: per-panel gradient shards (SetShards)
	ts     []*tensor.Tensor // scratch operand slice for ConcatCols
	span   obs.Span         // profiling span layer marks nest under (see profile.go)
	marks  []layerMark      // tape ranges recorded by StartLayer/End
}

// NewContext returns an empty tape accumulating into Param.Grad. The tape
// owns a private arena, so intermediates are recycled on Reset; SetArena(nil)
// opts out into plain heap allocation.
func NewContext() *Context {
	return &Context{params: make(map[*Param]*Node), arena: tensor.NewArena()}
}

// NewContextInto returns an empty tape whose Backward accumulates parameter
// gradients into b instead of the shared Param.Grad, so concurrent tapes
// over the same parameters never race.
func NewContextInto(b *GradBuffer) *Context {
	c := NewContext()
	c.grads = b
	return c
}

// SetArena replaces the context's buffer arena. Passing nil makes every
// intermediate a plain heap allocation (the pre-arena behavior); results are
// bitwise identical either way. Must not be called mid-pass.
func (c *Context) SetArena(a *tensor.Arena) { c.arena = a }

// Arena returns the context's buffer arena (nil when disabled). Model code
// may draw scratch buffers from it as long as they don't outlive Reset.
func (c *Context) Arena() *tensor.Arena { return c.arena }

// Reset clears the tape for reuse: node chunks, the params memo, layer marks,
// and every arena-held intermediate are recycled in place, so a pooled
// context stops allocating once it has seen its largest graph. All Nodes and
// intermediate tensors from the previous pass become invalid.
func (c *Context) Reset() {
	c.nodes = c.nodes[:0]
	c.nused = 0
	clear(c.params)
	c.marks = c.marks[:0]
	c.ts = c.ts[:0]
	c.arena.Reset()
}

// newNode hands out the next pooled Node, zeroed, and records it on the tape.
func (c *Context) newNode() *Node {
	ci, ni := c.nused/nodeChunk, c.nused%nodeChunk
	if ci == len(c.chunks) {
		c.chunks = append(c.chunks, new([nodeChunk]Node))
	}
	n := &c.chunks[ci][ni]
	c.nused++
	*n = Node{}
	c.nodes = append(c.nodes, n)
	return n
}

func (c *Context) node(op opKind, v *tensor.Tensor, requires bool) *Node {
	n := c.newNode()
	n.op, n.V, n.requires = op, v, requires
	return n
}

// Const wraps a tensor that requires no gradient.
func (c *Context) Const(t *tensor.Tensor) *Node {
	return c.node(opConst, t, false)
}

// Scalar returns a constant 1×1 node holding v.
func (c *Context) Scalar(v float64) *Node {
	t := c.arena.GetUninit(1, 1)
	t.Data[0] = v
	return c.Const(t)
}

// Param returns the (memoized) leaf node for p; gradients reaching it are
// accumulated into p.Grad (or the context's GradBuffer) during Backward.
func (c *Context) Param(p *Param) *Node {
	if n, ok := c.params[p]; ok {
		return n
	}
	n := c.node(opParam, p.V, true)
	n.gdst = p.Grad
	if c.grads != nil {
		n.gdst = c.grads.Grad(p)
	}
	c.params[p] = n
	return n
}

// accumShared adds g — a gradient buffer the caller keeps using — into n's
// gradient. The first contribution is copied (exactly the old Clone
// semantics, bitwise included), so later in-place accumulation into n.grad
// never corrupts the caller's buffer.
func (c *Context) accumShared(n *Node, g *tensor.Tensor) {
	if n.grad == nil {
		d := c.arena.GetUninit(g.R, g.C)
		copy(d.Data, g.Data)
		n.grad = d
		return
	}
	tensor.AddInPlace(n.grad, g)
}

// accumOwn adds g — a freshly computed temporary the caller relinquishes —
// into n's gradient, taking ownership of the buffer when it is the first
// contribution.
func (c *Context) accumOwn(n *Node, g *tensor.Tensor) {
	if n.grad == nil {
		n.grad = g
		return
	}
	tensor.AddInPlace(n.grad, g)
}

func anyRequires(ns ...*Node) bool {
	for _, n := range ns {
		if n.requires {
			return true
		}
	}
	return false
}

// Backward seeds the 1×1 loss node with gradient 1 and propagates gradients
// through the tape in reverse recording order. When a profiling span is
// attached and layer marks were recorded, the replay is additionally timed
// per layer (see profile.go); the gradient math is identical either way.
func (c *Context) Backward(loss *Node) {
	if loss.V.R != 1 || loss.V.C != 1 {
		panic(fmt.Sprintf("ag: Backward needs a scalar loss, got %dx%d", loss.V.R, loss.V.C))
	}
	seed := c.arena.GetUninit(1, 1)
	seed.Data[0] = 1
	loss.grad = seed
	if len(c.marks) > 0 && c.span.Enabled() {
		bspan := c.span.Start("backward")
		c.backwardProfiled(bspan)
		bspan.End()
		return
	}
	for i := len(c.nodes) - 1; i >= 0; i-- {
		n := c.nodes[i]
		if n.grad == nil || !n.requires {
			continue
		}
		c.runBack(n)
	}
}

// runBack runs one node's vector–Jacobian product, scattering n.grad into
// the gradients of its operands. Each case performs the identical floating-
// point operations, in the identical order, as the closure it replaced, so
// gradients are bitwise-stable across the rewrite.
func (c *Context) runBack(n *Node) {
	g := n.grad
	switch n.op {
	case opParam:
		tensor.AddInPlace(n.gdst, g)

	case opMatMul:
		a, b := n.a, n.b
		if a.requires {
			d := c.arena.GetUninit(g.R, b.V.R)
			tensor.MatMulBTInto(d, g, b.V) // dA = g·Bᵀ
			c.accumOwn(a, d)
		}
		if b.requires {
			d := c.arena.GetUninit(a.V.C, g.C)
			tensor.MatMulATInto(d, a.V, g) // dB = Aᵀ·g
			c.accumOwn(b, d)
		}

	case opMatMulBT:
		a, b := n.a, n.b
		if a.requires {
			d := c.arena.GetUninit(g.R, b.V.C)
			tensor.MatMulInto(d, g, b.V) // dA = g·B
			c.accumOwn(a, d)
		}
		if b.requires {
			d := c.arena.GetUninit(g.C, a.V.C)
			tensor.MatMulATInto(d, g, a.V) // dB = gᵀ·A
			c.accumOwn(b, d)
		}

	case opLinear:
		x, w, bias := n.a, n.b, n.c3
		if x.requires {
			d := c.arena.GetUninit(g.R, w.V.R)
			tensor.MatMulBTInto(d, g, w.V) // dX = g·Wᵀ
			c.accumOwn(x, d)
		}
		if w.requires {
			d := c.arena.GetUninit(x.V.C, g.C)
			tensor.MatMulATInto(d, x.V, g) // dW = Xᵀ·g
			c.accumOwn(w, d)
		}
		if bias.requires {
			d := c.arena.GetUninit(1, g.C)
			tensor.SumRowsInto(d, g)
			c.accumOwn(bias, d)
		}

	case opAdd:
		if n.a.requires {
			c.accumShared(n.a, g)
		}
		if n.b.requires {
			c.accumShared(n.b, g)
		}

	case opSub:
		if n.a.requires {
			c.accumShared(n.a, g)
		}
		if n.b.requires {
			d := c.arena.GetUninit(g.R, g.C)
			tensor.ScaleInto(d, g, -1)
			c.accumOwn(n.b, d)
		}

	case opMul:
		a, b := n.a, n.b
		if a.requires {
			d := c.arena.GetUninit(g.R, g.C)
			tensor.MulInto(d, g, b.V)
			c.accumOwn(a, d)
		}
		if b.requires {
			d := c.arena.GetUninit(g.R, g.C)
			tensor.MulInto(d, g, a.V)
			c.accumOwn(b, d)
		}

	case opAddBias:
		if n.a.requires {
			c.accumShared(n.a, g)
		}
		if n.b.requires {
			d := c.arena.GetUninit(1, g.C)
			tensor.SumRowsInto(d, g)
			c.accumOwn(n.b, d)
		}

	case opAddOuter:
		a, b := n.a, n.b
		if a.requires {
			d := c.arena.GetUninit(g.R, 1)
			tensor.SumColsInto(d, g)
			c.accumOwn(a, d)
		}
		if b.requires {
			rs := c.arena.GetUninit(1, g.C) // 1×M row sums …
			tensor.SumRowsInto(rs, g)
			d := c.arena.GetUninit(g.C, 1) // … transposed to M×1
			tensor.TransposeInto(d, rs)
			c.accumOwn(b, d)
		}

	case opScale:
		d := c.arena.GetUninit(g.R, g.C)
		tensor.ScaleInto(d, g, n.s)
		c.accumOwn(n.a, d)

	case opReLU:
		x := n.a
		d := c.arena.GetUninit(g.R, g.C)
		tensor.ReLUBackInto(d, g, x.V)
		c.accumOwn(x, d)

	case opLeakyReLU:
		x, alpha := n.a, n.s
		d := c.arena.GetUninit(g.R, g.C)
		tensor.LeakyReLUBackInto(d, g, x.V, alpha)
		c.accumOwn(x, d)

	case opTanh:
		v := n.V
		d := c.arena.GetUninit(g.R, g.C)
		for i, gv := range g.Data {
			d.Data[i] = gv * (1 - v.Data[i]*v.Data[i])
		}
		c.accumOwn(n.a, d)

	case opSoftmax:
		// dx = y ⊙ (g − rowsum(g ⊙ y))
		y := n.V
		d := c.arena.GetUninit(g.R, g.C)
		for i := 0; i < g.R; i++ {
			grow, yrow, drow := g.Row(i), y.Row(i), d.Row(i)
			dotgy := 0.0
			for j := range grow {
				dotgy += grow[j] * yrow[j]
			}
			tensor.SoftmaxBackRow(drow, grow, yrow, dotgy)
		}
		c.accumOwn(n.a, d)

	case opLayerNorm:
		x, gamma, beta := n.a, n.b, n.c3
		nr, d := n.V.R, n.V.C
		xhat, invstd := n.aux, n.aux2.Data
		if gamma.requires {
			dg := c.arena.Get(1, d)
			for i := 0; i < nr; i++ {
				grow, xrow := g.Row(i), xhat.Row(i)
				for j := range grow {
					dg.Data[j] += grow[j] * xrow[j]
				}
			}
			c.accumOwn(gamma, dg)
		}
		if beta.requires {
			db := c.arena.GetUninit(1, d)
			tensor.SumRowsInto(db, g)
			c.accumOwn(beta, db)
		}
		if x.requires {
			dx := c.arena.GetUninit(nr, d)
			for i := 0; i < nr; i++ {
				grow, xrow, drow := g.Row(i), xhat.Row(i), dx.Row(i)
				// dxhat = g * gamma
				sum1, sum2 := 0.0, 0.0
				for j := range grow {
					dxh := grow[j] * gamma.V.Data[j]
					drow[j] = dxh
					sum1 += dxh
					sum2 += dxh * xrow[j]
				}
				inv := invstd[i] / float64(d)
				for j := range drow {
					drow[j] = inv * (float64(d)*drow[j] - sum1 - xrow[j]*sum2)
				}
			}
			c.accumOwn(x, dx)
		}

	case opConcat:
		off := 0
		for _, x := range n.xs {
			if x.requires {
				d := c.arena.GetUninit(g.R, x.V.C)
				tensor.SliceColsInto(d, g, off, off+x.V.C)
				c.accumOwn(x, d)
			}
			off += x.V.C
		}

	case opSlice:
		x := n.a
		dx := c.arena.Get(x.V.R, x.V.C)
		for i := 0; i < g.R; i++ {
			copy(dx.Row(i)[n.lo:n.hi], g.Row(i))
		}
		c.accumOwn(x, dx)

	case opSumRows:
		x := n.a
		d := c.arena.GetUninit(x.V.R, x.V.C)
		for i := 0; i < d.R; i++ {
			copy(d.Row(i), g.Row(0))
		}
		c.accumOwn(x, d)

	case opGather:
		x := n.a
		dx := c.arena.Get(x.V.R, x.V.C)
		tensor.ScatterAddRows(dx, g, n.idx)
		c.accumOwn(x, dx)

	case opAbs:
		x := n.a
		d := c.arena.GetUninit(g.R, g.C)
		for i, gv := range g.Data {
			switch {
			case x.V.Data[i] > 0:
				d.Data[i] = gv
			case x.V.Data[i] < 0:
				d.Data[i] = -gv
			default:
				d.Data[i] = 0
			}
		}
		c.accumOwn(x, d)

	case opMeanAll:
		x := n.a
		d := c.arena.GetUninit(x.V.R, x.V.C)
		v := g.Data[0] / float64(x.V.Size())
		for i := range d.Data {
			d.Data[i] = v
		}
		c.accumOwn(x, d)

	case opSegLinear:
		c.backSegLinear(n)
	case opSegMatMulP:
		c.backSegMatMulP(n)
	case opSegLayerNorm:
		c.backSegLayerNorm(n)
	case opSegSumRows:
		c.backSegSumRows(n)
	case opSegAdjMatMul:
		c.backSegAdjMatMul(n)
	case opPanelMatMulBT:
		c.backPanelMatMulBT(n)
	case opPanelMatMul:
		c.backPanelMatMul(n)
	case opPanelSoftmax:
		c.backPanelSoftmax(n)
	case opPanelAddOuter:
		c.backPanelAddOuter(n)
	}
}

// MatMul returns a·b.
func (c *Context) MatMul(a, b *Node) *Node {
	v := c.arena.GetUninit(a.V.R, b.V.C)
	tensor.MatMulInto(v, a.V, b.V)
	n := c.node(opMatMul, v, anyRequires(a, b))
	n.a, n.b = a, b
	return n
}

// MatMulBT returns a·bᵀ without materializing the transpose.
func (c *Context) MatMulBT(a, b *Node) *Node {
	v := c.arena.GetUninit(a.V.R, b.V.R)
	tensor.MatMulBTInto(v, a.V, b.V)
	n := c.node(opMatMulBT, v, anyRequires(a, b))
	n.a, n.b = a, b
	return n
}

// Linear returns the fused dense layer x·w + bias (bias broadcast over
// rows) in one kernel pass — bitwise-identical to AddBias(MatMul(x, w), b)
// without materializing the intermediate product.
func (c *Context) Linear(x, w, b *Node) *Node {
	v := c.arena.GetUninit(x.V.R, w.V.C)
	tensor.LinearInto(v, x.V, w.V, b.V)
	n := c.node(opLinear, v, anyRequires(x, w, b))
	n.a, n.b, n.c3 = x, w, b
	return n
}

// Add returns a + b (same shape).
func (c *Context) Add(a, b *Node) *Node {
	v := c.arena.GetUninit(a.V.R, a.V.C)
	tensor.AddInto(v, a.V, b.V)
	n := c.node(opAdd, v, anyRequires(a, b))
	n.a, n.b = a, b
	return n
}

// Sub returns a − b (same shape).
func (c *Context) Sub(a, b *Node) *Node {
	v := c.arena.GetUninit(a.V.R, a.V.C)
	tensor.SubInto(v, a.V, b.V)
	n := c.node(opSub, v, anyRequires(a, b))
	n.a, n.b = a, b
	return n
}

// Mul returns a ⊙ b (same shape).
func (c *Context) Mul(a, b *Node) *Node {
	v := c.arena.GetUninit(a.V.R, a.V.C)
	tensor.MulInto(v, a.V, b.V)
	n := c.node(opMul, v, anyRequires(a, b))
	n.a, n.b = a, b
	return n
}

// AddBias adds the 1×C bias row vector b to every row of x.
func (c *Context) AddBias(x, b *Node) *Node {
	v := c.arena.GetUninit(x.V.R, x.V.C)
	tensor.AddRowVecInto(v, x.V, b.V)
	n := c.node(opAddBias, v, anyRequires(x, b))
	n.a, n.b = x, b
	return n
}

// AddOuter returns out[i][j] = a[i] + b[j] for column vectors a, b.
func (c *Context) AddOuter(a, b *Node) *Node {
	v := c.arena.GetUninit(a.V.R, b.V.R)
	tensor.AddOuterInto(v, a.V, b.V)
	n := c.node(opAddOuter, v, anyRequires(a, b))
	n.a, n.b = a, b
	return n
}

// Scale returns s·x.
func (c *Context) Scale(x *Node, s float64) *Node {
	v := c.arena.GetUninit(x.V.R, x.V.C)
	tensor.ScaleInto(v, x.V, s)
	n := c.node(opScale, v, x.requires)
	n.a, n.s = x, s
	return n
}

// ScaleInPlace returns s·x computed into x's own buffer, avoiding a copy.
// Safe only when no other node's backward pass reads x's value — e.g. the
// attention-score product feeding softmax, whose producing op (MatMulBT)
// differentiates through its inputs, not its output.
func (c *Context) ScaleInPlace(x *Node, s float64) *Node {
	tensor.ScaleInto(x.V, x.V, s)
	n := c.node(opScale, x.V, x.requires)
	n.a, n.s = x, s
	return n
}

// ReLU returns max(x, 0).
func (c *Context) ReLU(x *Node) *Node {
	v := c.arena.GetUninit(x.V.R, x.V.C)
	tensor.ReLUInto(v, x.V)
	n := c.node(opReLU, v, x.requires)
	n.a = x
	return n
}

// LeakyReLU returns x for x>0 and αx otherwise.
func (c *Context) LeakyReLU(x *Node, alpha float64) *Node {
	v := c.arena.GetUninit(x.V.R, x.V.C)
	tensor.LeakyReLUInto(v, x.V, alpha)
	n := c.node(opLeakyReLU, v, x.requires)
	n.a, n.s = x, alpha
	return n
}

// Tanh returns tanh(x) elementwise.
func (c *Context) Tanh(x *Node) *Node {
	v := c.arena.GetUninit(x.V.R, x.V.C)
	for i, a := range x.V.Data {
		v.Data[i] = math.Tanh(a)
	}
	n := c.node(opTanh, v, x.requires)
	n.a = x
	return n
}

// SoftmaxRows applies row-wise softmax; mask (may be nil) is a constant
// additive logit mask with −Inf at disabled positions.
func (c *Context) SoftmaxRows(x *Node, mask *tensor.Tensor) *Node {
	v := c.arena.GetUninit(x.V.R, x.V.C)
	tensor.SoftmaxRowsInto(v, x.V, mask)
	n := c.node(opSoftmax, v, x.requires)
	n.a = x
	return n
}

// SoftmaxRowsInPlace is SoftmaxRows computed into x's own buffer. Safe only
// when no other node's backward pass reads x's value (softmax's own VJP
// needs only its output, which this node now holds).
func (c *Context) SoftmaxRowsInPlace(x *Node, mask *tensor.Tensor) *Node {
	tensor.SoftmaxRowsInto(x.V, x.V, mask)
	n := c.node(opSoftmax, x.V, x.requires)
	n.a = x
	return n
}

// LayerNorm normalizes each row of x to zero mean and unit variance, then
// scales by gamma and shifts by beta (both 1×C).
func (c *Context) LayerNorm(x, gamma, beta *Node, eps float64) *Node {
	nr, d := x.V.R, x.V.C
	xhat := c.arena.GetUninit(nr, d)
	invstd := c.arena.GetUninit(nr, 1)
	for i := 0; i < nr; i++ {
		row := x.V.Row(i)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(d)
		varr := 0.0
		for _, v := range row {
			dv := v - mean
			varr += dv * dv
		}
		varr /= float64(d)
		is := 1 / math.Sqrt(varr+eps)
		invstd.Data[i] = is
		xrow := xhat.Row(i)
		for j, v := range row {
			xrow[j] = (v - mean) * is
		}
	}
	y := c.arena.GetUninit(nr, d)
	for i := 0; i < nr; i++ {
		yrow, xrow := y.Row(i), xhat.Row(i)
		for j := range yrow {
			yrow[j] = xrow[j]*gamma.V.Data[j] + beta.V.Data[j]
		}
	}
	n := c.node(opLayerNorm, y, anyRequires(x, gamma, beta))
	n.a, n.b, n.c3 = x, gamma, beta
	n.aux, n.aux2 = xhat, invstd
	return n
}

// ConcatCols concatenates nodes along columns.
func (c *Context) ConcatCols(xs ...*Node) *Node {
	c.ts = c.ts[:0]
	req := false
	rows, cols := 0, 0
	for _, x := range xs {
		c.ts = append(c.ts, x.V)
		req = req || x.requires
		cols += x.V.C
	}
	if len(xs) > 0 {
		rows = xs[0].V.R
	}
	v := c.arena.GetUninit(rows, cols)
	tensor.ConcatColsInto(v, c.ts...)
	n := c.node(opConcat, v, req)
	n.xs = xs
	return n
}

// SliceCols extracts columns [lo, hi).
func (c *Context) SliceCols(x *Node, lo, hi int) *Node {
	v := c.arena.GetUninit(x.V.R, hi-lo)
	tensor.SliceColsInto(v, x.V, lo, hi)
	n := c.node(opSlice, v, x.requires)
	n.a, n.lo, n.hi = x, lo, hi
	return n
}

// SumRows sums over rows, producing the 1×C graph-pooling vector.
func (c *Context) SumRows(x *Node) *Node {
	v := c.arena.GetUninit(1, x.V.C)
	tensor.SumRowsInto(v, x.V)
	n := c.node(opSumRows, v, x.requires)
	n.a = x
	return n
}

// MeanRows averages over rows, producing a 1×C vector.
func (c *Context) MeanRows(x *Node) *Node {
	return c.Scale(c.SumRows(x), 1/float64(x.V.R))
}

// GatherRows selects rows of x by index (e.g. a positional-encoding table
// addressed by node depth); gradients scatter-add back.
func (c *Context) GatherRows(x *Node, idx []int) *Node {
	v := c.arena.GetUninit(len(idx), x.V.C)
	tensor.GatherRowsInto(v, x.V, idx)
	n := c.node(opGather, v, x.requires)
	n.a, n.idx = x, idx
	return n
}

// Abs returns |x| elementwise (subgradient 0 at 0).
func (c *Context) Abs(x *Node) *Node {
	v := c.arena.GetUninit(x.V.R, x.V.C)
	for i, a := range x.V.Data {
		v.Data[i] = math.Abs(a)
	}
	n := c.node(opAbs, v, x.requires)
	n.a = x
	return n
}

// Square returns x² elementwise.
func (c *Context) Square(x *Node) *Node { return c.Mul(x, x) }

// MeanAll reduces x to its 1×1 scalar mean.
func (c *Context) MeanAll(x *Node) *Node {
	v := c.arena.GetUninit(1, 1)
	v.Data[0] = x.V.Sum() / float64(x.V.Size())
	n := c.node(opMeanAll, v, x.requires)
	n.a = x
	return n
}

// MAELoss returns mean |pred − target| as a 1×1 scalar; target is constant.
func (c *Context) MAELoss(pred *Node, target *tensor.Tensor) *Node {
	return c.MeanAll(c.Abs(c.Sub(pred, c.Const(target))))
}

// MSELoss returns mean (pred − target)² as a 1×1 scalar; target is constant.
func (c *Context) MSELoss(pred *Node, target *tensor.Tensor) *Node {
	return c.MeanAll(c.Square(c.Sub(pred, c.Const(target))))
}

// MAELossScalar is MAELoss against a scalar target without the caller
// materializing a target tensor (it lives on the tape's arena).
func (c *Context) MAELossScalar(pred *Node, target float64) *Node {
	t := c.arena.GetUninit(1, 1)
	t.Data[0] = target
	return c.MAELoss(pred, t)
}

// MSELossScalar is MSELoss against a scalar target without the caller
// materializing a target tensor (it lives on the tape's arena).
func (c *Context) MSELossScalar(pred *Node, target float64) *Node {
	t := c.arena.GetUninit(1, 1)
	t.Data[0] = target
	return c.MSELoss(pred, t)
}
