package ag

import (
	"fmt"

	"predtop/internal/tensor"
)

// GradCheck compares the analytic gradient of loss() with central finite
// differences for every element of every parameter. loss must rebuild the
// forward pass (on a fresh Context) at each call so parameter perturbations
// take effect. It returns an error naming the first element whose gradients
// disagree beyond tol.
func GradCheck(params []*Param, loss func() float64, grads func() map[*Param]*tensor.Tensor, eps, tol float64) error {
	analytic := grads()
	for _, p := range params {
		ga := analytic[p]
		if ga == nil {
			return fmt.Errorf("ag: no analytic gradient for %q", p.Name)
		}
		for i := range p.V.Data {
			orig := p.V.Data[i]
			p.V.Data[i] = orig + eps
			up := loss()
			p.V.Data[i] = orig - eps
			down := loss()
			p.V.Data[i] = orig
			num := (up - down) / (2 * eps)
			diff := num - ga.Data[i]
			if diff < 0 {
				diff = -diff
			}
			scale := 1.0
			if a := abs(num) + abs(ga.Data[i]); a > 1 {
				scale = a
			}
			if diff/scale > tol {
				return fmt.Errorf("ag: gradient mismatch %s[%d]: numeric %.8g analytic %.8g",
					p.Name, i, num, ga.Data[i])
			}
		}
	}
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// CollectGrads runs build (which must construct a forward pass and return its
// scalar loss node along with the context), backpropagates, and returns a
// snapshot of each parameter's gradient. Parameter gradients are zeroed
// before the pass so the snapshot reflects exactly one backward call.
func CollectGrads(params []*Param, build func(ctx *Context) *Node) map[*Param]*tensor.Tensor {
	for _, p := range params {
		p.ZeroGrad()
	}
	ctx := NewContext()
	loss := build(ctx)
	ctx.Backward(loss)
	out := make(map[*Param]*tensor.Tensor, len(params))
	for _, p := range params {
		out[p] = p.Grad.Clone()
	}
	return out
}
