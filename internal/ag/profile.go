package ag

import (
	"time"

	"predtop/internal/obs"
)

// Tape-mark profiling: models bracket the ops of each layer between
// StartLayer and LayerSpan.End, which (a) times the layer's forward pass as a
// child span of the context's attached obs.Span and (b) records the half-open
// tape index range the layer produced. Backward then attributes each node's
// VJP time to the innermost enclosing mark, yielding a per-layer backward
// profile from the same single instrumentation point — no second set of
// hooks, no change to Predict signatures.
//
// The whole mechanism honours the obs nil no-op contract: with no span
// attached (or an inert one), StartLayer returns the zero LayerSpan, records
// no marks, and Backward takes its original untimed path, so uninstrumented
// runs are bitwise identical and allocation-free.

// layerMark is the tape index range [lo, hi) recorded while the named layer
// span was open. hi is -1 until the span ends.
type layerMark struct {
	name   string
	lo, hi int
}

// SetSpan attaches the profiling span under which this tape's layer spans
// nest. Passing the zero Span detaches. Existing marks are cleared: a span
// belongs to exactly one forward pass.
func (c *Context) SetSpan(s obs.Span) {
	c.span = s
	c.marks = c.marks[:0]
}

// Span returns the attached profiling span (the zero, inert Span when
// profiling is off).
func (c *Context) Span() obs.Span { return c.span }

// LayerSpan is an in-flight per-layer measurement opened by StartLayer. The
// zero LayerSpan is inert.
type LayerSpan struct {
	c    *Context
	mark int
	span obs.Span
}

// StartLayer opens a forward span named name under the context's attached
// span and begins a tape mark covering every node recorded until End. Nested
// layers are attributed innermost-first during Backward. Inert (zero cost,
// zero allocations) when no span is attached.
func (c *Context) StartLayer(name string) LayerSpan {
	if !c.span.Enabled() {
		return LayerSpan{}
	}
	c.marks = append(c.marks, layerMark{name: name, lo: len(c.nodes), hi: -1})
	return LayerSpan{c: c, mark: len(c.marks) - 1, span: c.span.Start(name)}
}

// End closes the layer: the forward span folds into the profile tree and the
// tape mark's upper bound is pinned for backward attribution. No-op when
// inert.
func (l LayerSpan) End() {
	if l.c == nil {
		return
	}
	l.c.marks[l.mark].hi = len(l.c.nodes)
	l.span.End()
}

// backwardProfiled replays the tape exactly like the untimed Backward loop —
// same nodes, same reverse order, bitwise-identical gradients — while timing
// each VJP and attributing it to the innermost layer mark containing the
// node. Per-layer totals land as children of bspan via Record; VJP time for
// nodes outside every mark (loss ops, pooling glue) is reported under
// "(unattributed)".
func (c *Context) backwardProfiled(bspan obs.Span) {
	labels := make([]int, len(c.nodes)) // mark index + 1; 0 = outside all marks
	for mi, m := range c.marks {
		hi := m.hi
		if hi < 0 || hi > len(labels) {
			hi = len(labels)
		}
		// Marks are recorded in StartLayer order, so nested (inner) marks
		// come later and overwrite their enclosing layer's label here.
		for i := m.lo; i < hi; i++ {
			labels[i] = mi + 1
		}
	}
	totals := make([]time.Duration, len(c.marks)+1)
	counts := make([]int64, len(c.marks)+1)
	for i := len(c.nodes) - 1; i >= 0; i-- {
		n := c.nodes[i]
		if n.grad == nil || !n.requires {
			continue
		}
		t0 := time.Now()
		c.runBack(n)
		d := time.Since(t0)
		totals[labels[i]] += d
		counts[labels[i]]++
	}
	for mi, m := range c.marks {
		if counts[mi+1] > 0 {
			bspan.Record(m.name, totals[mi+1], counts[mi+1])
		}
	}
	if counts[0] > 0 {
		bspan.Record("(unattributed)", totals[0], counts[0])
	}
}
