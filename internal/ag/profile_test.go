package ag

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"predtop/internal/obs"
	"predtop/internal/tensor"
)

// buildMarkedLoss runs a small two-"layer" network on ctx, bracketing each layer
// with StartLayer marks, and returns the scalar loss node.
func buildMarkedLoss(ctx *Context, w1, w2 *Param, x, target *tensor.Tensor) *Node {
	l1 := ctx.StartLayer("l1")
	h := ctx.ReLU(ctx.MatMul(ctx.Const(x), ctx.Param(w1)))
	l1.End()
	l2 := ctx.StartLayer("l2")
	y := ctx.MatMul(h, ctx.Param(w2))
	l2.End()
	return ctx.MSELoss(ctx.MeanRows(y), target)
}

// TestProfiledBackwardBitwiseIdentical: the profiled tape replay must produce
// exactly the gradients of the untimed path — profiling only observes.
func TestProfiledBackwardBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := tensor.RandUniform(rng, 3, 4, -1, 1)
	target := tensor.Full(1, 2, 0.5)
	mk := func() (*Param, *Param) {
		r := rand.New(rand.NewSource(7))
		return NewParam("w1", tensor.RandUniform(r, 4, 5, -1, 1)),
			NewParam("w2", tensor.RandUniform(r, 5, 2, -1, 1))
	}

	w1a, w2a := mk()
	plain := NewContext()
	plain.Backward(buildMarkedLoss(plain, w1a, w2a, x, target))

	w1b, w2b := mk()
	prof := obs.NewProfiler()
	span := prof.Start("net")
	profiled := NewContext()
	profiled.SetSpan(span)
	profiled.Backward(buildMarkedLoss(profiled, w1b, w2b, x, target))
	span.End()

	for i, pair := range [][2]*Param{{w1a, w1b}, {w2a, w2b}} {
		for j := range pair[0].Grad.Data {
			a, b := pair[0].Grad.Data[j], pair[1].Grad.Data[j]
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("param %d grad[%d]: %x != %x", i, j, math.Float64bits(a), math.Float64bits(b))
			}
		}
	}

	var buf strings.Builder
	if err := prof.WriteProfileTree(&buf); err != nil {
		t.Fatal(err)
	}
	tree := buf.String()
	for _, want := range []string{"net", "  l1", "  l2", "  backward", "    l1", "    l2", "    (unattributed)"} {
		if !strings.Contains(tree, want+" ") {
			t.Fatalf("tape profile missing %q:\n%s", want, tree)
		}
	}
}

// TestStartLayerWithoutSpanInert: with no span attached, StartLayer records
// nothing and Backward stays on the untimed path — at zero allocations.
func TestStartLayerWithoutSpanInert(t *testing.T) {
	ctx := NewContext()
	allocs := testing.AllocsPerRun(1000, func() {
		ls := ctx.StartLayer("l0")
		ls.End()
	})
	if allocs != 0 {
		t.Fatalf("inert StartLayer allocated %.1f per op", allocs)
	}
	if len(ctx.marks) != 0 {
		t.Fatalf("inert StartLayer recorded %d marks", len(ctx.marks))
	}
}

// TestNestedLayerAttribution: a node recorded while an inner layer is open
// must be attributed to the inner layer, not the enclosing one.
func TestNestedLayerAttribution(t *testing.T) {
	prof := obs.NewProfiler()
	span := prof.Start("net")
	ctx := NewContext()
	ctx.SetSpan(span)

	w := NewParam("w", tensor.Full(2, 2, 0.5))
	outer := ctx.StartLayer("outer")
	a := ctx.MatMul(ctx.Const(tensor.Full(1, 2, 1)), ctx.Param(w))
	inner := ctx.StartLayer("inner")
	b := ctx.ReLU(a)
	inner.End()
	cNode := ctx.Scale(b, 2)
	outer.End()
	loss := ctx.MeanAll(cNode)
	ctx.Backward(loss)
	span.End()

	var buf strings.Builder
	if err := prof.WriteProfileTree(&buf); err != nil {
		t.Fatal(err)
	}
	tree := buf.String()
	// backward must credit both outer (MatMul, Scale) and inner (ReLU).
	for _, want := range []string{"  backward", "    inner", "    outer"} {
		if !strings.Contains(tree, want+" ") {
			t.Fatalf("nested attribution missing %q:\n%s", want, tree)
		}
	}
}

// TestResetClearsMarks: a pooled context must not leak layer marks (or their
// stale tape ranges) into the next forward pass.
func TestResetClearsMarks(t *testing.T) {
	prof := obs.NewProfiler()
	ctx := NewContext()
	ctx.SetSpan(prof.Start("net"))
	ls := ctx.StartLayer("l0")
	ctx.Const(tensor.Full(1, 1, 1))
	ls.End()
	if len(ctx.marks) != 1 {
		t.Fatalf("mark not recorded: %d", len(ctx.marks))
	}
	ctx.Reset()
	if len(ctx.marks) != 0 {
		t.Fatalf("Reset left %d marks", len(ctx.marks))
	}
}
