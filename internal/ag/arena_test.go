package ag

import (
	"math"
	"math/rand"
	"testing"

	"predtop/internal/tensor"
)

// buildLossGraph runs a forward pass exercising every tape op that the
// models use — fused linear, in-place scale/softmax, layer norm, attention
// glue, pooling — and returns the scalar loss node.
func buildLossGraph(ctx *Context, ps []*Param, x *tensor.Tensor, mask *tensor.Tensor) *Node {
	w1, b1, w2, b2, gamma, beta := ps[0], ps[1], ps[2], ps[3], ps[4], ps[5]
	in := ctx.Const(x)
	h := ctx.Linear(in, ctx.Param(w1), ctx.Param(b1))
	h = ctx.LayerNorm(h, ctx.Param(gamma), ctx.Param(beta), 1e-5)
	scores := ctx.ScaleInPlace(ctx.MatMulBT(h, h), 0.5)
	attn := ctx.SoftmaxRowsInPlace(scores, mask)
	h = ctx.MatMul(attn, h)
	h = ctx.Add(h, ctx.Tanh(h))
	h = ctx.ReLU(ctx.Linear(h, ctx.Param(w2), ctx.Param(b2)))
	pooled := ctx.MeanRows(h)
	pred := ctx.SumRows(pooled)
	return ctx.MAELossScalar(ctx.MeanAll(pred), 0.75)
}

func testParams(seed int64) []*Param {
	rng := rand.New(rand.NewSource(seed))
	return []*Param{
		NewParam("w1", tensor.Randn(rng, 6, 8, 0.3)),
		NewParam("b1", tensor.Randn(rng, 1, 8, 0.3)),
		NewParam("w2", tensor.Randn(rng, 8, 4, 0.3)),
		NewParam("b2", tensor.Randn(rng, 1, 4, 0.3)),
		NewParam("gamma", tensor.Full(1, 8, 1)),
		NewParam("beta", tensor.New(1, 8)),
	}
}

// TestArenaOnOffBitwiseIdentical: the arena is a pure allocation strategy —
// loss values and parameter gradients must be bitwise identical with it on
// (default), off (SetArena(nil)), and on across several Reset generations
// (recycled buffers must never leak stale state into results).
func TestArenaOnOffBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	x := tensor.Randn(rng, 5, 6, 1)
	mask := tensor.New(5, 5)
	ninf := math.Inf(-1)
	mask.Set(0, 3, ninf)
	mask.Set(2, 1, ninf)

	type result struct {
		loss  float64
		grads []*tensor.Tensor
	}
	runOnce := func(ctx *Context, ps []*Param) result {
		for _, p := range ps {
			p.ZeroGrad()
		}
		loss := buildLossGraph(ctx, ps, x, mask)
		ctx.Backward(loss)
		r := result{loss: loss.Value().At(0, 0)}
		for _, p := range ps {
			r.grads = append(r.grads, p.Grad.Clone())
		}
		return r
	}

	refCtx := NewContext()
	refCtx.SetArena(nil)
	ref := runOnce(refCtx, testParams(7))

	arenaCtx := NewContext()
	ps := testParams(7)
	for gen := 0; gen < 4; gen++ {
		got := runOnce(arenaCtx, ps)
		if math.Float64bits(got.loss) != math.Float64bits(ref.loss) {
			t.Fatalf("gen %d: arena loss %x != no-arena %x",
				gen, math.Float64bits(got.loss), math.Float64bits(ref.loss))
		}
		for i := range ref.grads {
			for j := range ref.grads[i].Data {
				a, b := got.grads[i].Data[j], ref.grads[i].Data[j]
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("gen %d: grad %d[%d] %x != %x", gen, i, j,
						math.Float64bits(a), math.Float64bits(b))
				}
			}
		}
		arenaCtx.Reset()
	}
}

// TestContextSteadyStateZeroAlloc pins the tentpole target at the tape
// level: once a pooled context has seen its graph, a full
// forward+backward+Reset step performs zero heap allocations.
func TestContextSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.Randn(rng, 5, 6, 1)
	ps := testParams(11)
	ctx := NewContext()
	step := func() {
		loss := buildLossGraph(ctx, ps, x, nil)
		ctx.Backward(loss)
		ctx.Reset()
	}
	step() // warm the arena, node chunks, and params map
	step()
	if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
		t.Fatalf("steady-state forward+backward allocated %.1f per step, want 0", allocs)
	}
}

// TestArenaIntermediatesRecycled: a value read off the tape before Reset is
// valid; after Reset the arena may hand its buffer to the next pass. This
// documents (and checks) the escape contract — anything kept across Reset
// must be Cloned or pinned.
func TestArenaIntermediatesRecycled(t *testing.T) {
	ctx := NewContext()
	a := ctx.Const(tensor.Full(2, 2, 1))
	sum := ctx.Add(a, a)
	kept := sum.Value()     // arena-owned
	escaped := kept.Clone() // heap copy survives Reset
	pinned := ctx.Arena().Pin(ctx.Add(a, a).Value())
	ctx.Reset()

	// Drive several passes; the recycled buffer will be overwritten.
	for i := 0; i < 4; i++ {
		b := ctx.Const(tensor.Full(2, 2, float64(i)))
		ctx.Mul(b, b)
		ctx.Reset()
	}
	for i, v := range escaped.Data {
		if v != 2 {
			t.Fatalf("cloned escape corrupted at %d: %v", i, v)
		}
	}
	for i, v := range pinned.Data {
		if v != 2 {
			t.Fatalf("pinned tensor corrupted at %d: %v", i, v)
		}
	}
}
