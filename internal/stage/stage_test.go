package stage

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"predtop/internal/ir"
	"predtop/internal/models"
)

// diamond builds a 4-node diamond graph a→{b,c}→d with a reshape inserted
// between a and b for pruning tests.
func diamondWithReshape() *ir.Graph {
	b := ir.NewBuilder()
	a := b.Input("a", []int{4, 4}, ir.F32)
	r := b.Reshape(a, []int{16})
	r2 := b.Reshape(r, []int{4, 4})
	left := b.Unary(ir.KindExp, r2)
	right := b.Unary(ir.KindTanh, a)
	d := b.Ewise(ir.KindAdd, left, right)
	b.Output(d)
	return b.Graph()
}

func TestFromGraphNoPrune(t *testing.T) {
	g := diamondWithReshape()
	d := FromGraph(g, false)
	if d.N() != g.NumNodes() {
		t.Fatalf("unpruned DAG has %d nodes, graph %d", d.N(), g.NumNodes())
	}
}

func TestPruningRemovesAndRewires(t *testing.T) {
	g := diamondWithReshape()
	d := FromGraph(g, true)
	for _, k := range d.Kinds {
		if prunedKind(k) {
			t.Fatalf("pruned kind %v survived", k)
		}
	}
	if d.N() != g.NumNodes()-2 {
		t.Fatalf("expected 2 nodes pruned: %d of %d", d.N(), g.NumNodes())
	}
	// exp's predecessor chain must now reach the input directly.
	expID := -1
	for i, k := range d.Kinds {
		if k == ir.KindExp {
			expID = i
		}
	}
	if expID < 0 {
		t.Fatal("exp node missing")
	}
	if len(d.Preds[expID]) != 1 || d.Classes[d.Preds[expID][0]] != ir.ClassInput {
		t.Fatalf("exp not rewired to input: preds %v", d.Preds[expID])
	}
}

func TestPruningPreservesReachability(t *testing.T) {
	// Property: for retained nodes, u reaches v in the pruned DAG iff it did
	// in the unpruned DAG.
	m := models.Build(models.GPT3())
	g := m.StageGraph(1, 2, false)
	full := FromGraph(g, false)
	pruned := FromGraph(g, true)

	// Map retained nodes: rebuild the retention order.
	var retained []int
	for i, node := range g.Nodes {
		if !(node.Class == ir.ClassOperator && prunedKind(node.Kind)) {
			retained = append(retained, i)
		}
	}
	if len(retained) != pruned.N() {
		t.Fatalf("retained %d != pruned %d", len(retained), pruned.N())
	}
	ancFull := full.Ancestors()
	ancPruned := pruned.Ancestors()
	for vi, v := range retained {
		for ui, u := range retained {
			if ui >= vi {
				break
			}
			if ancFull[v].get(u) != ancPruned[vi].get(ui) {
				t.Fatalf("reachability changed for (%d,%d)", u, v)
			}
		}
	}
}

func TestAncestorsAndDepths(t *testing.T) {
	b := ir.NewBuilder()
	a := b.Input("a", []int{2}, ir.F32)
	x := b.Unary(ir.KindExp, a)
	y := b.Unary(ir.KindTanh, x)
	z := b.Ewise(ir.KindAdd, y, a)
	b.Output(z)
	d := FromGraph(b.Graph(), false)
	anc := d.Ancestors()
	// z (index 3) has ancestors {a, x, y}.
	for _, u := range []int{0, 1, 2} {
		if !anc[3].get(u) {
			t.Fatalf("node 3 missing ancestor %d", u)
		}
	}
	if anc[1].get(2) {
		t.Fatal("x should not have y as ancestor")
	}
	depths := d.Depths()
	want := []int{0, 1, 2, 3, 4}
	for i, w := range want {
		if depths[i] != w {
			t.Fatalf("depth[%d]=%d want %d", i, depths[i], w)
		}
	}
}

func TestEncodeFeatures(t *testing.T) {
	m := models.Build(models.GPT3())
	g := m.StageGraph(1, 2, false)
	e := Encode(FromGraph(g, true))
	if e.X.C != FeatureDim {
		t.Fatalf("feature dim %d != %d", e.X.C, FeatureDim)
	}
	if e.N() != e.ReachMask.R || e.N() != e.AdjNorm.R || e.N() != len(e.Depths) {
		t.Fatal("inconsistent encoded sizes")
	}
	// One-hot blocks must each sum to exactly 1 per node.
	for v := 0; v < e.N(); v++ {
		row := e.X.Row(v)
		kindSum, dtypeSum, classSum := 0.0, 0.0, 0.0
		for i := 0; i < ir.NumKinds; i++ {
			kindSum += row[i]
		}
		off := ir.NumKinds + MaxDimFeatures + 1
		for i := 0; i < ir.NumDTypes; i++ {
			dtypeSum += row[off+i]
		}
		off += ir.NumDTypes
		for i := 0; i < ir.NumClasses; i++ {
			classSum += row[off+i]
		}
		if kindSum != 1 || dtypeSum != 1 || classSum != 1 {
			t.Fatalf("node %d one-hots: %v %v %v", v, kindSum, dtypeSum, classSum)
		}
	}
	// Dimension features are log-scaled: log1p(2048) ≈ 7.6, far below raw.
	maxDim := 0.0
	for v := 0; v < e.N(); v++ {
		for i := ir.NumKinds; i < ir.NumKinds+MaxDimFeatures+1; i++ {
			if f := e.X.At(v, i); f > maxDim {
				maxDim = f
			}
		}
	}
	if maxDim > 30 || maxDim < 5 {
		t.Fatalf("dim features not log-scaled: max %v", maxDim)
	}
}

func TestReachMaskSymmetricAndSelf(t *testing.T) {
	m := models.Build(models.GPT3())
	g := m.StageGraph(1, 2, false)
	e := Encode(FromGraph(g, true))
	n := e.N()
	for v := 0; v < n; v++ {
		if e.ReachMask.At(v, v) != 0 {
			t.Fatalf("self not attendable at %d", v)
		}
		for u := 0; u < n; u++ {
			if e.ReachMask.At(u, v) != e.ReachMask.At(v, u) {
				t.Fatalf("mask asymmetric at (%d,%d)", u, v)
			}
			mv := e.ReachMask.At(u, v)
			if mv != 0 && !math.IsInf(mv, -1) {
				t.Fatalf("mask value %v not in {0,−Inf}", mv)
			}
		}
	}
}

func TestNeighborMaskSubsetOfReachMask(t *testing.T) {
	m := models.Build(models.MoE())
	g := m.StageGraph(2, 3, false)
	e := Encode(FromGraph(g, true))
	for v := 0; v < e.N(); v++ {
		for u := 0; u < e.N(); u++ {
			if e.NeighborMask.At(v, u) == 0 && e.ReachMask.At(v, u) != 0 {
				t.Fatalf("neighbor (%d,%d) not reachable", v, u)
			}
		}
	}
}

func TestAdjNormRowsStochasticLike(t *testing.T) {
	m := models.Build(models.GPT3())
	g := m.StageGraph(1, 2, false)
	e := Encode(FromGraph(g, true))
	// Symmetric normalization keeps entries in (0,1] and the matrix
	// symmetric.
	for v := 0; v < e.N(); v++ {
		if e.AdjNorm.At(v, v) <= 0 {
			t.Fatalf("no self loop at %d", v)
		}
		for u := 0; u < e.N(); u++ {
			a := e.AdjNorm.At(v, u)
			if a < 0 || a > 1 {
				t.Fatalf("adj value %v out of range", a)
			}
			if math.Abs(a-e.AdjNorm.At(u, v)) > 1e-12 {
				t.Fatalf("adj asymmetric at (%d,%d)", v, u)
			}
		}
	}
}

func TestAllSpecs(t *testing.T) {
	specs := AllSpecs(5, 0)
	if len(specs) != 15 { // 5+4+3+2+1
		t.Fatalf("AllSpecs(5): %d", len(specs))
	}
	specs = AllSpecs(5, 2)
	if len(specs) != 9 { // 5 singles + 4 pairs
		t.Fatalf("AllSpecs(5, maxLen 2): %d", len(specs))
	}
	for _, s := range specs {
		if s.Len() < 1 || s.Len() > 2 {
			t.Fatalf("spec %v out of bounds", s)
		}
	}
}

func TestSampleSpecsDiverseAndDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	specs := SampleSpecs(rng, 26, 40, 4)
	if len(specs) != 40 {
		t.Fatalf("sampled %d", len(specs))
	}
	seen := map[Spec]bool{}
	lens := map[int]int{}
	for _, s := range specs {
		if seen[s] {
			t.Fatalf("duplicate spec %v", s)
		}
		seen[s] = true
		lens[s.Len()]++
	}
	for l := 1; l <= 4; l++ {
		if lens[l] == 0 {
			t.Fatalf("no stages of length %d sampled", l)
		}
	}
}

func TestSampleSpecsExhaustsUniverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	specs := SampleSpecs(rng, 4, 100, 0)
	if len(specs) != 10 {
		t.Fatalf("universe size %d", len(specs))
	}
}

func TestSplitProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%100 + 10
		rng := rand.New(rand.NewSource(seed))
		train, val, test := Split(rng, n, 0.5, 0.1)
		if len(train)+len(val)+len(test) != n {
			return false
		}
		seen := make(map[int]bool, n)
		for _, idx := range append(append(append([]int{}, train...), val...), test...) {
			if idx < 0 || idx >= n || seen[idx] {
				return false
			}
			seen[idx] = true
		}
		return len(train) >= 1
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetOps(t *testing.T) {
	b := newBitset(130)
	for _, i := range []int{0, 63, 64, 129} {
		b.set(i)
		if !b.get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.get(1) || b.get(128) {
		t.Fatal("unexpected bits set")
	}
	o := newBitset(130)
	o.set(5)
	b.or(o)
	if !b.get(5) || !b.get(129) {
		t.Fatal("or failed")
	}
}

func TestAncestorsTransitive(t *testing.T) {
	// Property: ancestor sets are transitively closed.
	m := models.Build(models.GPT3())
	d := FromGraph(m.StageGraph(1, 3, false), true)
	anc := d.Ancestors()
	for v := 0; v < d.N(); v++ {
		for u := 0; u < v; u++ {
			if !anc[v].get(u) {
				continue
			}
			for w := 0; w < u; w++ {
				if anc[u].get(w) && !anc[v].get(w) {
					t.Fatalf("transitivity broken: %d→%d→%d", w, u, v)
				}
			}
		}
	}
}

func TestDepthsMonotoneAlongEdges(t *testing.T) {
	m := models.Build(models.MoE())
	d := FromGraph(m.StageGraph(2, 3, false), true)
	depths := d.Depths()
	for v := 0; v < d.N(); v++ {
		for _, p := range d.Preds[v] {
			if depths[v] <= depths[p] {
				t.Fatalf("depth not increasing along edge %d→%d", p, v)
			}
		}
	}
}

func TestFeatureDimConstant(t *testing.T) {
	// The predictors' input width is a compile-time constant; catch
	// accidental drift when op kinds or dtypes are added.
	if FeatureDim != ir.NumKinds+MaxDimFeatures+1+ir.NumDTypes+ir.NumClasses {
		t.Fatal("FeatureDim formula drifted")
	}
}

// TestSampleSpecsSeedReproducible pins the sampler to its seed: the shuffle
// loop used to range over a map, consuming RNG draws in a run-dependent
// order, so the "same" seed yielded different stage sets across runs (and
// broke worker-count invariance of whole experiment grids downstream).
func TestSampleSpecsSeedReproducible(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		a := SampleSpecs(rand.New(rand.NewSource(42)), 26, 40, 4)
		b := SampleSpecs(rand.New(rand.NewSource(42)), 26, 40, 4)
		if len(a) != len(b) {
			t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: spec %d differs: %v vs %v", trial, i, a[i], b[i])
			}
		}
	}
}
