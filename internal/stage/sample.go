package stage

import (
	"math/rand"
	"sort"
)

// Spec identifies a pipeline stage as a contiguous segment range [Lo, Hi) of
// a model.
type Spec struct {
	Lo, Hi int
}

// Len returns the number of segments in the stage.
func (s Spec) Len() int { return s.Hi - s.Lo }

// AllSpecs enumerates every contiguous stage of up to maxLen segments of a
// model with numSegments segments — the stage universe Alpa's inter-operator
// pass iterates over (maxLen ≤ 0 means unbounded).
func AllSpecs(numSegments, maxLen int) []Spec {
	if maxLen <= 0 || maxLen > numSegments {
		maxLen = numSegments
	}
	var out []Spec
	for lo := 0; lo < numSegments; lo++ {
		for hi := lo + 1; hi <= numSegments && hi-lo <= maxLen; hi++ {
			out = append(out, Spec{Lo: lo, Hi: hi})
		}
	}
	return out
}

// SampleSpecs draws count distinct stages of varied sizes (paper §IV-B1:
// "We include the stages of different sizes to make our model more
// general"). Short stages are favored — they dominate the stage universe —
// but every length up to maxLen is represented when count allows.
func SampleSpecs(rng *rand.Rand, numSegments, count, maxLen int) []Spec {
	universe := AllSpecs(numSegments, maxLen)
	if count >= len(universe) {
		return universe
	}
	// Group by length, then round-robin lengths drawing randomly within
	// each, guaranteeing size diversity.
	byLen := make(map[int][]Spec)
	maxL := 0
	for _, s := range universe {
		byLen[s.Len()] = append(byLen[s.Len()], s)
		if s.Len() > maxL {
			maxL = s.Len()
		}
	}
	// Shuffle groups in ascending-length order: ranging over the map here
	// would consume RNG draws in a run-dependent order, making the sampled
	// set irreproducible for a fixed seed.
	for l := 1; l <= maxL; l++ {
		specs := byLen[l]
		rng.Shuffle(len(specs), func(i, j int) { specs[i], specs[j] = specs[j], specs[i] })
	}
	var out []Spec
	for len(out) < count {
		added := false
		for l := 1; l <= maxL && len(out) < count; l++ {
			if specs := byLen[l]; len(specs) > 0 {
				out = append(out, specs[len(specs)-1])
				byLen[l] = specs[:len(specs)-1]
				added = true
			}
		}
		if !added {
			break
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lo != out[j].Lo {
			return out[i].Lo < out[j].Lo
		}
		return out[i].Hi < out[j].Hi
	})
	return out
}

// Split partitions indices [0, n) into train, validation, and test index
// sets: trainFrac for training, valFrac for validation, the rest for testing
// (the paper uses a separate 10% validation split, §VIII).
func Split(rng *rand.Rand, n int, trainFrac, valFrac float64) (train, val, test []int) {
	perm := rng.Perm(n)
	nTrain := int(float64(n)*trainFrac + 0.5)
	nVal := int(float64(n)*valFrac + 0.5)
	if nTrain < 1 {
		nTrain = 1
	}
	if nTrain+nVal > n {
		nVal = n - nTrain
	}
	train = perm[:nTrain]
	val = perm[nTrain : nTrain+nVal]
	test = perm[nTrain+nVal:]
	return train, val, test
}
