// Package stage turns pipeline-stage operator graphs (internal/ir) into the
// inputs the latency predictors consume: a pruned DAG, Table-I node feature
// vectors with log-scaled tensor dimensions, the reachability attention mask
// of the DAG Transformer (DAGRA, Eqn 1), node depths for the positional
// encoding (DAGPE), and the normalized adjacency used by the GCN baseline.
package stage

import (
	"math"

	"predtop/internal/ir"
	"predtop/internal/tensor"
)

// DAG is the predictor-facing view of a stage graph: node metadata plus
// predecessor lists, in topological order.
type DAG struct {
	Kinds   []ir.Kind
	Classes []ir.Class
	Shapes  [][]int
	DTypes  []ir.DType
	Preds   [][]int
}

// N returns the node count.
func (d *DAG) N() int { return len(d.Kinds) }

// prunedKinds are metadata-only operators removed by graph pruning
// (§IV-B4). The paper names reshape and convert_element_type; broadcast
// carries the same property — its effect (shape and dtype changes between
// connected nodes) remains encoded in the surviving nodes' features.
func prunedKind(k ir.Kind) bool {
	return k == ir.KindReshape || k == ir.KindConvert || k == ir.KindBroadcast
}

// FromGraph converts g to a DAG. With prune set, metadata-only operators are
// removed and their consumers rewired to their producers.
func FromGraph(g *ir.Graph, prune bool) *DAG {
	n := len(g.Nodes)
	keep := make([]bool, n)
	newID := make([]int, n)
	for i, node := range g.Nodes {
		keep[i] = !(prune && node.Class == ir.ClassOperator && prunedKind(node.Kind))
	}
	// resolved maps a (possibly pruned) node to its retained ancestors.
	resolved := make([][]int, n)
	d := &DAG{}
	for i, node := range g.Nodes {
		var preds []int
		seen := make(map[int]bool)
		for _, in := range node.Ins {
			if keep[in.ID] {
				if !seen[newID[in.ID]] {
					seen[newID[in.ID]] = true
					preds = append(preds, newID[in.ID])
				}
				continue
			}
			for _, p := range resolved[in.ID] {
				if !seen[p] {
					seen[p] = true
					preds = append(preds, p)
				}
			}
		}
		if !keep[i] {
			resolved[i] = preds
			continue
		}
		newID[i] = len(d.Kinds)
		d.Kinds = append(d.Kinds, node.Kind)
		d.Classes = append(d.Classes, node.Class)
		d.Shapes = append(d.Shapes, node.Shape)
		d.DTypes = append(d.DTypes, node.DType)
		d.Preds = append(d.Preds, preds)
	}
	return d
}

// bitset is a fixed-size bit vector used for transitive-closure computation.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }
func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// Ancestors returns, for each node, the bitset of its (transitive)
// predecessors.
func (d *DAG) Ancestors() []bitset {
	n := d.N()
	anc := make([]bitset, n)
	for v := 0; v < n; v++ {
		anc[v] = newBitset(n)
		for _, p := range d.Preds[v] {
			anc[v].set(p)
			anc[v].or(anc[p])
		}
	}
	return anc
}

// Depths returns each node's longest-path distance from a source node, the
// positional index of DAGPE.
func (d *DAG) Depths() []int {
	depths := make([]int, d.N())
	for v := 0; v < d.N(); v++ {
		for _, p := range d.Preds[v] {
			if depths[p]+1 > depths[v] {
				depths[v] = depths[p] + 1
			}
		}
	}
	return depths
}

// MaxDimFeatures is how many trailing tensor dimensions the feature vector
// records (log-scaled, Table I "Output Tensor Dimensions").
const MaxDimFeatures = 4

// FeatureDim is the width of a Table-I node feature vector: operator-type
// one-hot, log-scaled output dims + log element count, dtype one-hot, and
// node-class one-hot.
const FeatureDim = ir.NumKinds + MaxDimFeatures + 1 + ir.NumDTypes + ir.NumClasses

// Encoded is a stage graph in the exact form the predictors consume.
type Encoded struct {
	// X is the N×FeatureDim node feature matrix (Table I).
	X *tensor.Tensor
	// ReachMask is the additive DAGRA attention mask (Eqn 1): 0 where two
	// nodes are connected by a directed path (or equal), −Inf elsewhere.
	ReachMask *tensor.Tensor
	// NeighborMask is the additive 1-hop mask (plus self-loops) used by the
	// GAT baseline.
	NeighborMask *tensor.Tensor
	// AdjNorm is the symmetric-normalized adjacency with self-loops,
	// D^{-1/2}(A+I)D^{-1/2}, used by the GCN baseline.
	AdjNorm *tensor.Tensor
	// Depths are the DAGPE positional indices.
	Depths []int
}

// N returns the node count.
func (e *Encoded) N() int { return e.X.R }

// Encode computes features, masks, adjacency, and depths for d.
func Encode(d *DAG) *Encoded {
	n := d.N()
	x := tensor.New(n, FeatureDim)
	for v := 0; v < n; v++ {
		row := x.Row(v)
		row[int(d.Kinds[v])] = 1
		off := ir.NumKinds
		shape := d.Shapes[v]
		for i := 0; i < MaxDimFeatures; i++ {
			// Right-align dims so the innermost axes land in fixed slots.
			j := len(shape) - MaxDimFeatures + i
			if j >= 0 {
				row[off+i] = math.Log1p(float64(shape[j]))
			}
		}
		numel := 1.0
		for _, dim := range shape {
			numel *= float64(dim)
		}
		row[off+MaxDimFeatures] = math.Log1p(numel)
		off += MaxDimFeatures + 1
		row[off+int(d.DTypes[v])] = 1
		off += ir.NumDTypes
		row[off+int(d.Classes[v])] = 1
	}

	negInf := math.Inf(-1)
	reach := tensor.Full(n, n, negInf)
	anc := d.Ancestors()
	for v := 0; v < n; v++ {
		reach.Set(v, v, 0)
		for u := 0; u < v; u++ {
			if anc[v].get(u) {
				reach.Set(v, u, 0)
				reach.Set(u, v, 0)
			}
		}
	}

	nbr := tensor.Full(n, n, negInf)
	adj := tensor.New(n, n)
	for v := 0; v < n; v++ {
		nbr.Set(v, v, 0)
		adj.Set(v, v, 1)
		for _, p := range d.Preds[v] {
			nbr.Set(v, p, 0)
			nbr.Set(p, v, 0)
			adj.Set(v, p, 1)
			adj.Set(p, v, 1)
		}
	}
	// Symmetric normalization D^{-1/2}(A+I)D^{-1/2}.
	deg := make([]float64, n)
	for v := 0; v < n; v++ {
		s := 0.0
		for _, a := range adj.Row(v) {
			s += a
		}
		deg[v] = 1 / math.Sqrt(s)
	}
	for v := 0; v < n; v++ {
		row := adj.Row(v)
		for u := range row {
			row[u] *= deg[v] * deg[u]
		}
	}

	return &Encoded{X: x, ReachMask: reach, NeighborMask: nbr, AdjNorm: adj, Depths: d.Depths()}
}
