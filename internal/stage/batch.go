package stage

import (
	"errors"

	"predtop/internal/tensor"
)

// Batch is B encoded stage graphs stacked into one padded feature tensor for
// the fused batched forward (tensor.BatchLayout describes the panels). The
// per-graph masks and adjacencies are referenced, not copied — panel kernels
// consume them at each graph's own node count, so padding never needs mask
// entries.
type Batch struct {
	Layout tensor.BatchLayout
	// X is the (B·Stride)×FeatureDim stacked feature matrix; pad rows are
	// zero.
	X *tensor.Tensor
	// Reach, Neighbor, and Adj hold each graph's ReachMask, NeighborMask,
	// and AdjNorm (all Nᵍ×Nᵍ).
	Reach    []*tensor.Tensor
	Neighbor []*tensor.Tensor
	Adj      []*tensor.Tensor
	// Depths holds each graph's DAGPE positional indices.
	Depths [][]int
	// HeadLayout is the stride-1 layout of the pooled B×C head input, so the
	// prediction head's parameter gradients still shard per graph.
	HeadLayout tensor.BatchLayout
}

// ErrEmptyGraph rejects batching a graph with zero nodes: an empty panel has
// no rows to pool, so its "prediction" would be an artifact of padding.
var ErrEmptyGraph = errors.New("stage: cannot batch an empty graph")

// headCounts is the all-ones Counts table shared by every stride-1 head
// layout (batches are bounded well below its length; larger batches fall
// back to an allocation).
var headCounts = func() []int {
	ones := make([]int, 256)
	for i := range ones {
		ones[i] = 1
	}
	return ones
}()

// NewBatch stacks encoded graphs into a padded Batch. The feature tensor is
// drawn from a (zeroed, so pads need no extra clearing) — pass nil to
// allocate from the heap. Graphs with zero nodes are rejected with
// ErrEmptyGraph.
func NewBatch(es []*Encoded, a *tensor.Arena) (*Batch, error) {
	b := len(es)
	stride := 0
	counts := make([]int, b)
	for i, e := range es {
		n := e.X.R
		if n == 0 {
			return nil, ErrEmptyGraph
		}
		counts[i] = n
		if n > stride {
			stride = n
		}
	}
	l := tensor.BatchLayout{B: b, Stride: stride, Counts: counts}
	// Real rows are fully overwritten by the copies below, so only pad rows
	// need explicit zeroing — cheaper than clearing the whole block when the
	// batch is nearly rectangular.
	var x *tensor.Tensor
	if a != nil {
		x = a.GetUninit(l.Rows(), FeatureDim)
		for i, c := range counts {
			clear(x.Data[(i*stride+c)*FeatureDim : (i+1)*stride*FeatureDim])
		}
	} else {
		x = tensor.New(l.Rows(), FeatureDim)
	}
	nb := &Batch{
		Layout:   l,
		X:        x,
		Reach:    make([]*tensor.Tensor, b),
		Neighbor: make([]*tensor.Tensor, b),
		Adj:      make([]*tensor.Tensor, b),
		Depths:   make([][]int, b),
	}
	for i, e := range es {
		copy(x.Data[i*stride*FeatureDim:], e.X.Data)
		nb.Reach[i] = e.ReachMask
		nb.Neighbor[i] = e.NeighborMask
		nb.Adj[i] = e.AdjNorm
		nb.Depths[i] = e.Depths
	}
	hc := headCounts
	if b > len(hc) {
		hc = make([]int, b)
		for i := range hc {
			hc[i] = 1
		}
	}
	nb.HeadLayout = tensor.BatchLayout{B: b, Stride: 1, Counts: hc[:b]}
	return nb, nil
}
