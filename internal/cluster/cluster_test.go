package cluster

import (
	"testing"

	"predtop/internal/ir"
)

func TestPlatformShapes(t *testing.T) {
	p1, p2 := Platform1(), Platform2()
	if p1.Nodes != 1 || p1.GPUsPerNode != 2 || p1.GPU.Name != "A40" {
		t.Fatalf("platform 1: %+v", p1)
	}
	if p2.Nodes != 2 || p2.GPUsPerNode != 2 || p2.GPU.Name != "A5500" {
		t.Fatalf("platform 2: %+v", p2)
	}
	if p2.InterNode.BandwidthGBs >= p2.IntraNode.BandwidthGBs {
		t.Fatal("10GbE must be slower than NVLink")
	}
	for _, g := range []GPUSpec{A40(), A5500()} {
		if g.PeakTFLOPS[ir.BF16] <= g.PeakTFLOPS[ir.F32] {
			t.Fatalf("%s: bf16 peak should exceed f32", g.Name)
		}
		if g.MemBandwidthGBs <= 0 || g.MemoryGB <= 0 {
			t.Fatalf("%s: missing memory spec", g.Name)
		}
	}
}

func TestMeshEnumerationMatchesTableII(t *testing.T) {
	m1 := Meshes(Platform1())
	if len(m1) != 2 {
		t.Fatalf("platform 1 meshes: %d", len(m1))
	}
	m2 := Meshes(Platform2())
	if len(m2) != 3 {
		t.Fatalf("platform 2 meshes: %d", len(m2))
	}
	wantDevices := []int{1, 2, 4}
	for i, m := range m2 {
		if m.NumDevices() != wantDevices[i] || m.Index != i+1 {
			t.Fatalf("mesh %d: %v", i, m)
		}
	}
	if m2[2].CrossNode() != true || m2[1].CrossNode() != false {
		t.Fatal("cross-node detection wrong")
	}
	if m2[2].Fabric() != Platform2().InterNode {
		t.Fatal("cross-node mesh must use the inter-node fabric")
	}
}

func TestConfigsMatchTableIII(t *testing.T) {
	p2 := Platform2()
	meshes := Meshes(p2)
	if n := len(ConfigsFor(meshes[0])); n != 1 {
		t.Fatalf("mesh 1 configs: %d", n)
	}
	if n := len(ConfigsFor(meshes[1])); n != 2 {
		t.Fatalf("mesh 2 configs: %d", n)
	}
	confs3 := ConfigsFor(meshes[2])
	if len(confs3) != 3 {
		t.Fatalf("mesh 3 configs: %d", len(confs3))
	}
	for _, c := range confs3 {
		if c.Degree() != 4 {
			t.Fatalf("mesh 3 config %v uses %d devices", c, c.Degree())
		}
	}
	if confs3[2].ModelParallel != 4 || confs3[0].DataParallel != 4 {
		t.Fatalf("mesh 3 config order wrong: %+v", confs3)
	}
}

func TestScenarioCountsMatchPaperTables(t *testing.T) {
	// Table V has 3 scenario columns (Platform 1), Table VI has 6
	// (Platform 2) — per benchmark.
	if n := len(Scenarios(Platform1())); n != 3 {
		t.Fatalf("platform 1 scenarios: %d", n)
	}
	if n := len(Scenarios(Platform2())); n != 6 {
		t.Fatalf("platform 2 scenarios: %d", n)
	}
}
