// Package cluster models the two experimental platforms of the paper
// (§VII-A): their GPUs, intra-node NVLink and inter-node Ethernet links, and
// the mesh / parallelism configurations of Tables II and III.
package cluster

import (
	"fmt"

	"predtop/internal/ir"
)

// GPUSpec describes one accelerator.
type GPUSpec struct {
	Name string
	// PeakTFLOPS is the theoretical peak throughput per element type.
	PeakTFLOPS map[ir.DType]float64
	// MemBandwidthGBs is HBM/GDDR bandwidth in GB/s.
	MemBandwidthGBs float64
	// MemoryGB is device memory capacity.
	MemoryGB float64
	// KernelLaunchUS is the fixed per-kernel launch overhead in µs.
	KernelLaunchUS float64
}

// A40 returns the NVIDIA A40 spec (Platform 1: 48 GB GDDR6, 696 GB/s).
func A40() GPUSpec {
	return GPUSpec{
		Name: "A40",
		PeakTFLOPS: map[ir.DType]float64{
			ir.F32: 37.4, ir.F16: 149.7, ir.BF16: 149.7,
			ir.I32: 18.7, ir.U32: 18.7, ir.Bool: 18.7,
		},
		MemBandwidthGBs: 696,
		MemoryGB:        48,
		KernelLaunchUS:  5,
	}
}

// A5500 returns the NVIDIA RTX A5500 spec (Platform 2: 24 GB GDDR6, 768 GB/s).
func A5500() GPUSpec {
	return GPUSpec{
		Name: "A5500",
		PeakTFLOPS: map[ir.DType]float64{
			ir.F32: 34.1, ir.F16: 136.4, ir.BF16: 136.4,
			ir.I32: 17.1, ir.U32: 17.1, ir.Bool: 17.1,
		},
		MemBandwidthGBs: 768,
		MemoryGB:        24,
		KernelLaunchUS:  5,
	}
}

// Interconnect is a point-to-point or collective fabric.
type Interconnect struct {
	BandwidthGBs float64 // per-direction bandwidth
	LatencyUS    float64 // per-message latency
}

// Platform is one of the paper's two experimental environments.
type Platform struct {
	Name        string
	Index       int
	Nodes       int
	GPUsPerNode int
	GPU         GPUSpec
	IntraNode   Interconnect // NVLink bridge
	InterNode   Interconnect // node-to-node network
}

// Platform1 returns the Dell R750XA server: 1 node × 2 A40, NVLink
// (112.5 GB/s bidirectional).
func Platform1() Platform {
	return Platform{
		Name: "Platform1-A40", Index: 1,
		Nodes: 1, GPUsPerNode: 2, GPU: A40(),
		IntraNode: Interconnect{BandwidthGBs: 56.25, LatencyUS: 3},
		InterNode: Interconnect{BandwidthGBs: 56.25, LatencyUS: 3},
	}
}

// Platform2 returns the 2-node Precision 5820 cluster: 2 × 2 A5500, NVLink
// within a node, 10 GbE across nodes.
func Platform2() Platform {
	return Platform{
		Name: "Platform2-A5500", Index: 2,
		Nodes: 2, GPUsPerNode: 2, GPU: A5500(),
		IntraNode: Interconnect{BandwidthGBs: 56.25, LatencyUS: 3},
		InterNode: Interconnect{BandwidthGBs: 1.25, LatencyUS: 30},
	}
}

// Mesh is a rectangular device slice of a platform (Table II).
type Mesh struct {
	Index       int
	Platform    Platform
	Nodes       int
	GPUsPerNode int
}

// NumDevices returns the device count of the mesh.
func (m Mesh) NumDevices() int { return m.Nodes * m.GPUsPerNode }

// CrossNode reports whether the mesh spans multiple nodes (collectives then
// ride the slower inter-node fabric).
func (m Mesh) CrossNode() bool { return m.Nodes > 1 }

// Fabric returns the interconnect collectives use on this mesh.
func (m Mesh) Fabric() Interconnect {
	if m.CrossNode() {
		return m.Platform.InterNode
	}
	return m.Platform.IntraNode
}

// String implements fmt.Stringer.
func (m Mesh) String() string {
	return fmt.Sprintf("mesh%d(%dx%d %s)", m.Index, m.Nodes, m.GPUsPerNode, m.Platform.GPU.Name)
}

// Meshes enumerates the mesh configurations of Table II available on p.
func Meshes(p Platform) []Mesh {
	ms := []Mesh{{Index: 1, Platform: p, Nodes: 1, GPUsPerNode: 1}}
	if p.GPUsPerNode >= 2 {
		ms = append(ms, Mesh{Index: 2, Platform: p, Nodes: 1, GPUsPerNode: 2})
	}
	if p.Nodes >= 2 && p.GPUsPerNode >= 2 {
		ms = append(ms, Mesh{Index: 3, Platform: p, Nodes: 2, GPUsPerNode: 2})
	}
	return ms
}

// ParallelConfig is an intra-operator parallelism configuration (Table III):
// how many ways the batch axis (data parallel) and the operator/weight axes
// (model parallel) are split across the mesh.
type ParallelConfig struct {
	Index         int
	DataParallel  int
	ModelParallel int
	Remark        string
}

// Degree returns the total number of devices the configuration uses.
func (c ParallelConfig) Degree() int { return c.DataParallel * c.ModelParallel }

// String implements fmt.Stringer.
func (c ParallelConfig) String() string {
	return fmt.Sprintf("conf%d(dp=%d,mp=%d)", c.Index, c.DataParallel, c.ModelParallel)
}

// ConfigsFor enumerates the benchmark configurations of Table III for a mesh.
func ConfigsFor(m Mesh) []ParallelConfig {
	switch m.NumDevices() {
	case 1:
		return []ParallelConfig{{Index: 1, DataParallel: 1, ModelParallel: 1, Remark: "Single GPU (No parallelism)"}}
	case 2:
		return []ParallelConfig{
			{Index: 1, DataParallel: 2, ModelParallel: 1, Remark: "2 way Data parallel"},
			{Index: 2, DataParallel: 1, ModelParallel: 2, Remark: "2 way Model parallel"},
		}
	case 4:
		return []ParallelConfig{
			{Index: 1, DataParallel: 4, ModelParallel: 1, Remark: "4 way Data parallel"},
			{Index: 2, DataParallel: 2, ModelParallel: 2, Remark: "2 way Data and 2 way Model parallel"},
			{Index: 3, DataParallel: 1, ModelParallel: 4, Remark: "4 way Model parallel only"},
		}
	}
	return nil
}

// Scenario is one (mesh, configuration) runtime pair — the unit the paper's
// MRE tables are indexed by.
type Scenario struct {
	Mesh   Mesh
	Config ParallelConfig
}

// String implements fmt.Stringer.
func (s Scenario) String() string {
	return fmt.Sprintf("%s/%s", s.Mesh, s.Config)
}

// Scenarios enumerates every (mesh, configuration) pair of a platform, in
// the order the paper's tables list them.
func Scenarios(p Platform) []Scenario {
	var out []Scenario
	for _, m := range Meshes(p) {
		for _, c := range ConfigsFor(m) {
			out = append(out, Scenario{Mesh: m, Config: c})
		}
	}
	return out
}
