package planner

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"predtop/internal/cluster"
	"predtop/internal/graphnn"
	"predtop/internal/ir"
	"predtop/internal/models"
	"predtop/internal/obs"
	"predtop/internal/pipeline"
	"predtop/internal/predictor"
	"predtop/internal/sim"
	"predtop/internal/stage"
)

// tinyModel is a scaled-down GPT-like config that keeps planner tests fast.
func tinyModel() *models.Model {
	return models.Build(models.Config{
		Name: "tiny", SeqLen: 256, Hidden: 512, Layers: 6, Heads: 8,
		Vocab: 8000, Act: ir.BF16,
	})
}

// syntheticLatency is a deterministic fake latency source for DP testing.
func syntheticLatency(sp stage.Spec, mesh cluster.Mesh) (float64, bool) {
	base := float64(sp.Len()) * 10 / math.Sqrt(float64(mesh.NumDevices()))
	base += float64(sp.Lo) * 0.37 // break symmetry
	return base, true
}

// bruteForce enumerates every partition/assignment and returns the best
// Eqn-4 latency.
func bruteForce(numSegments int, p cluster.Platform, lat LatencyFn, B int) float64 {
	meshes := cluster.Meshes(p)
	total := p.Nodes * p.GPUsPerNode
	best := math.Inf(1)
	var rec func(lo, devLeft int, lats []float64)
	rec = func(lo, devLeft int, lats []float64) {
		if lo == numSegments {
			if devLeft == 0 {
				if t := pipeline.Latency(lats, B); t < best {
					best = t
				}
			}
			return
		}
		for hi := lo + 1; hi <= numSegments; hi++ {
			for _, m := range meshes {
				if m.NumDevices() > devLeft {
					continue
				}
				if t, ok := lat(stage.Spec{Lo: lo, Hi: hi}, m); ok {
					rec(hi, devLeft-m.NumDevices(), append(lats, t))
				}
			}
		}
	}
	rec(0, total, nil)
	return best
}

func TestOptimizeMatchesBruteForce(t *testing.T) {
	for _, p := range []cluster.Platform{cluster.Platform1(), cluster.Platform2()} {
		for _, L := range []int{3, 5, 6} {
			plan, ok := Optimize(L, p, syntheticLatency, Options{Microbatches: 8})
			if !ok {
				t.Fatalf("%s L=%d: no plan", p.Name, L)
			}
			want := bruteForce(L, p, syntheticLatency, 8)
			if math.Abs(plan.Est-want)/want > 1e-9 {
				t.Fatalf("%s L=%d: DP %v, brute force %v", p.Name, L, plan.Est, want)
			}
		}
	}
}

func TestPlanStructureValid(t *testing.T) {
	p := cluster.Platform2()
	plan, ok := Optimize(8, p, syntheticLatency, Options{Microbatches: 4})
	if !ok {
		t.Fatal("no plan")
	}
	// Stages must partition [0, 8) contiguously.
	at := 0
	dev := 0
	for i, sp := range plan.Stages {
		if sp.Lo != at || sp.Hi <= sp.Lo {
			t.Fatalf("stage %d not contiguous: %+v", i, plan.Stages)
		}
		at = sp.Hi
		dev += plan.Meshes[i].NumDevices()
	}
	if at != 8 {
		t.Fatalf("stages do not cover the model: %+v", plan.Stages)
	}
	if dev != p.Nodes*p.GPUsPerNode {
		t.Fatalf("meshes use %d devices, cluster has %d", dev, p.Nodes*p.GPUsPerNode)
	}
}

func TestOptimizeRespectsMaxStageLen(t *testing.T) {
	plan, ok := Optimize(8, cluster.Platform2(), syntheticLatency, Options{Microbatches: 4, MaxStageLen: 3})
	if !ok {
		t.Fatal("no plan")
	}
	for _, sp := range plan.Stages {
		if sp.Len() > 3 {
			t.Fatalf("stage %v exceeds max length", sp)
		}
	}
}

func TestOptimizeInfeasibleWhenNoLatencies(t *testing.T) {
	none := func(stage.Spec, cluster.Mesh) (float64, bool) { return 0, false }
	if _, ok := Optimize(4, cluster.Platform1(), none, Options{}); ok {
		t.Fatal("plan found with no usable latencies")
	}
}

func TestEndToEndPlanWithTrueLatency(t *testing.T) {
	mdl := tinyModel()
	p := cluster.Platform1()
	plan, ok := Optimize(mdl.NumSegments(), p, TrueLatency(mdl), Options{Microbatches: 8})
	if !ok {
		t.Fatal("no plan for tiny model on platform 1")
	}
	lat, ok := EvaluatePlan(mdl, plan, 8)
	if !ok || lat <= 0 {
		t.Fatalf("plan evaluation failed: %v %v", lat, ok)
	}
	// The DP plan must beat (or match) the trivial whole-model-on-mesh-2 plan.
	meshes := cluster.Meshes(p)
	trivial := Plan{
		Stages: []stage.Spec{{Lo: 0, Hi: mdl.NumSegments()}},
		Meshes: []cluster.Mesh{meshes[1]},
	}
	trivLat, trivOK := EvaluatePlan(mdl, trivial, 8)
	if trivOK && lat > trivLat*1.0001 {
		t.Fatalf("optimized plan (%v) worse than trivial plan (%v)", lat, trivLat)
	}
}

func TestFullProfilingMetersCost(t *testing.T) {
	mdl := tinyModel()
	meter := &Meter{}
	latFn := FullProfiling(mdl, sim.DefaultProfiler(), meter)
	mesh := cluster.Meshes(cluster.Platform1())[0]
	t1, ok := latFn(stage.Spec{Lo: 1, Hi: 3}, mesh)
	if !ok || t1 <= 0 {
		t.Fatalf("profiling failed: %v %v", t1, ok)
	}
	if meter.ProfileSeconds <= 0 || meter.StagesProfiled == 0 {
		t.Fatalf("cost not metered: %+v", meter)
	}
	// Memoized: a second query charges nothing more.
	before := meter.ProfileSeconds
	latFn(stage.Spec{Lo: 1, Hi: 3}, mesh)
	if meter.ProfileSeconds != before {
		t.Fatal("memoized query re-charged profiling cost")
	}
}

func TestPartialProfilingSkipsImbalanced(t *testing.T) {
	mdl := tinyModel() // 8 segments
	meterFull, meterPart := &Meter{}, &Meter{}
	full := FullProfiling(mdl, sim.DefaultProfiler(), meterFull)
	part := PartialProfiling(mdl, sim.DefaultProfiler(), meterPart, 2.5)
	p2 := cluster.Platform2()
	count := func(f LatencyFn) int {
		n := 0
		for _, sp := range stage.AllSpecs(mdl.NumSegments(), 0) {
			for _, mesh := range cluster.Meshes(p2) {
				if _, ok := f(sp, mesh); ok {
					n++
				}
			}
		}
		return n
	}
	nf, np := count(full), count(part)
	if np >= nf {
		t.Fatalf("partial profiling kept %d of %d pairs", np, nf)
	}
	if np == 0 {
		t.Fatal("partial profiling kept nothing")
	}
	if meterPart.ProfileSeconds >= meterFull.ProfileSeconds {
		t.Fatal("partial profiling should cost less")
	}
}

func TestPredictorProviderEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	mdl := tinyModel()
	p := cluster.Platform1()
	meter := &Meter{}
	latFn := TrainPredictorProvider(mdl, p, PredictorOptions{
		Kind:       KindTransformer,
		SampleFrac: 0.5,
		Train:      predictor.TrainConfig{Epochs: 25, Patience: 25, BatchSize: 8},
		Tran:       graphnn.TransformerConfig{Layers: 1, Dim: 16, Heads: 2},
		Seed:       1,
	}, sim.DefaultProfiler(), meter)
	if meter.TrainSeconds <= 0 || meter.ProfileSeconds <= 0 {
		t.Fatalf("training costs not metered: %+v", meter)
	}
	mesh := cluster.Meshes(p)[1]
	pred, ok := latFn(stage.Spec{Lo: 1, Hi: 3}, mesh)
	if !ok || pred <= 0 {
		t.Fatalf("prediction failed: %v %v", pred, ok)
	}
	if meter.InferSeconds <= 0 {
		t.Fatal("inference cost not metered")
	}
	// Sanity: prediction within an order of magnitude of truth even with
	// this deliberately under-trained test configuration.
	truth, _ := TrueStageLatency(mdl, stage.Spec{Lo: 1, Hi: 3}, mesh)
	if pred > truth*10 || pred < truth/10 {
		t.Fatalf("prediction %v wildly off truth %v", pred, truth)
	}
	// A full planner run on predictions must yield a valid plan.
	plan, ok := Optimize(mdl.NumSegments(), p, latFn, Options{Microbatches: 4})
	if !ok {
		t.Fatal("no plan from predictions")
	}
	if _, ok := EvaluatePlan(mdl, plan, 4); !ok {
		t.Fatal("predicted plan infeasible under ground truth")
	}
}

func TestRandomPlansValidAndVaried(t *testing.T) {
	mdl := tinyModel()
	p := cluster.Platform2()
	rng := rand.New(rand.NewSource(2))
	lats := map[int]bool{}
	lo, hi := math.Inf(1), 0.0
	for i := 0; i < 30; i++ {
		plan := RandomPlan(mdl, p, rng)
		at, dev := 0, 0
		for j, sp := range plan.Stages {
			if sp.Lo != at {
				t.Fatalf("random plan not contiguous: %+v", plan.Stages)
			}
			at = sp.Hi
			dev += plan.Meshes[j].NumDevices()
		}
		if at != mdl.NumSegments() || dev != 4 {
			t.Fatalf("random plan invalid: %+v", plan)
		}
		lats[len(plan.Stages)] = true

		if t2, ok := RandomPlanLatency(mdl, p, rng, 8); ok {
			if t2 < lo {
				lo = t2
			}
			if t2 > hi {
				hi = t2
			}
		}
	}
	if len(lats) < 2 {
		t.Fatal("random plans never varied stage count")
	}
	if hi/lo < 1.5 {
		t.Fatalf("Fig-2 precondition failed: latencies in [%v, %v]", lo, hi)
	}
}

func TestCompositions(t *testing.T) {
	got := compositions(4, []int{1, 2, 4})
	// [4] [2,2] [2,1,1] [1,2,1] [1,1,2] [1,1,1,1]
	if len(got) != 6 {
		t.Fatalf("compositions of 4: %v", got)
	}
	for _, c := range got {
		s := 0
		for _, v := range c {
			s += v
		}
		if s != 4 {
			t.Fatalf("composition %v does not sum to 4", c)
		}
	}
}

func TestTrueLatencyMemoizes(t *testing.T) {
	mdl := tinyModel()
	latFn := TrueLatency(mdl)
	mesh := cluster.Meshes(cluster.Platform1())[0]
	a, ok1 := latFn(stage.Spec{Lo: 1, Hi: 3}, mesh)
	b, ok2 := latFn(stage.Spec{Lo: 1, Hi: 3}, mesh)
	if !ok1 || !ok2 || a != b {
		t.Fatalf("memoized oracle inconsistent: %v %v", a, b)
	}
}

func TestDedup(t *testing.T) {
	got := dedup([]float64{1, 1, 2, 3, 3, 3})
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("dedup: %v", got)
	}
	if len(dedup(nil)) != 0 {
		t.Fatal("dedup nil")
	}
}

// TestRandomPlanBoundsSorted is the regression guard for replacing the
// hand-rolled insertion sort with sort.Ints: random plans must still emit
// strictly increasing contiguous stage bounds.
func TestRandomPlanBoundsSorted(t *testing.T) {
	mdl := tinyModel()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		plan := RandomPlan(mdl, cluster.Platform2(), rng)
		at := 0
		for _, sp := range plan.Stages {
			if sp.Lo != at || sp.Hi <= sp.Lo {
				t.Fatalf("bounds not sorted/contiguous: %+v", plan.Stages)
			}
			at = sp.Hi
		}
		if at != mdl.NumSegments() {
			t.Fatalf("plan does not cover the model: %+v", plan.Stages)
		}
	}
}

// TestOptimizeValidatesInput: degenerate input must come back infeasible,
// never panic.
func TestOptimizeValidatesInput(t *testing.T) {
	valid := cluster.Platform1()
	cases := []struct {
		name     string
		segments int
		platform cluster.Platform
		lat      LatencyFn
	}{
		{"zero segments", 0, valid, syntheticLatency},
		{"negative segments", -3, valid, syntheticLatency},
		{"nil latency fn", 4, valid, nil},
		{"empty platform", 4, cluster.Platform{}, syntheticLatency},
		{"zero gpus per node", 4, cluster.Platform{Nodes: 2}, syntheticLatency},
		{"negative devices", 4, cluster.Platform{Nodes: -1, GPUsPerNode: 2}, syntheticLatency},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stats SearchStats
			plan, ok := Optimize(tc.segments, tc.platform, tc.lat, Options{Stats: &stats})
			if ok {
				t.Fatalf("got a plan from degenerate input: %+v", plan)
			}
			if len(plan.Stages) != 0 {
				t.Fatalf("infeasible result carries stages: %+v", plan)
			}
		})
	}
}

func TestPredictorKindStrings(t *testing.T) {
	for _, k := range []PredictorKind{KindTransformer, KindGCN, KindGAT} {
		if k.String() == "PredTOP-?" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
}

// TestOptimizeProfiledIdenticalPlan: attaching a span profiler must not
// change the plan, and must build the planner.optimize → estimate/dp tree
// with one span per (stage, mesh) pair.
func TestOptimizeProfiledIdenticalPlan(t *testing.T) {
	p := cluster.Platform1()
	ref, ok := Optimize(4, p, syntheticLatency, Options{Microbatches: 8})
	if !ok {
		t.Fatal("no reference plan")
	}
	prof := obs.NewProfiler()
	got, ok := Optimize(4, p, syntheticLatency, Options{Microbatches: 8, Prof: prof})
	if !ok {
		t.Fatal("no profiled plan")
	}
	if got.Est != ref.Est || len(got.Stages) != len(ref.Stages) {
		t.Fatalf("profiling changed the plan: %+v vs %+v", got, ref)
	}
	for i := range ref.Stages {
		if got.Stages[i] != ref.Stages[i] || got.Meshes[i].NumDevices() != ref.Meshes[i].NumDevices() {
			t.Fatalf("profiling changed stage %d", i)
		}
	}
	var buf strings.Builder
	if err := prof.WriteProfileTree(&buf); err != nil {
		t.Fatal(err)
	}
	tree := buf.String()
	for _, want := range []string{"planner.optimize", "  estimate", "    s0:1/m0", "  dp", "    tmax"} {
		if !strings.Contains(tree, want+" ") {
			t.Fatalf("planner profile missing %q:\n%s", want, tree)
		}
	}
}

// TestOptimizeReportedIdenticalPlan is the reported-plan row of the
// determinism table: running the search with the full observation stack
// (metrics registry, span profiler, search stats, trace context) must yield
// a plan bitwise identical — stages, meshes, Est, and every StageEst — to a
// bare run, and the search stats must tally with the exploration the bare
// run implies.
func TestOptimizeReportedIdenticalPlan(t *testing.T) {
	p := cluster.Platform2()
	ref, ok := Optimize(6, p, syntheticLatency, Options{Microbatches: 8})
	if !ok {
		t.Fatal("no reference plan")
	}

	reg := obs.NewRegistry()
	var stats SearchStats
	ctx := obs.NewTraceContext(42, "planner-test")
	got, ok := Optimize(6, p, syntheticLatency, Options{
		Microbatches: 8,
		Metrics:      reg,
		Prof:         obs.NewProfiler(),
		Stats:        &stats,
		Ctx:          ctx,
	})
	if !ok {
		t.Fatal("no observed plan")
	}
	if math.Float64bits(got.Est) != math.Float64bits(ref.Est) {
		t.Fatalf("telemetry changed Est: %v vs %v", got.Est, ref.Est)
	}
	if len(got.Stages) != len(ref.Stages) || len(got.StageEst) != len(ref.StageEst) {
		t.Fatalf("telemetry changed plan shape: %+v vs %+v", got, ref)
	}
	for i := range ref.Stages {
		if got.Stages[i] != ref.Stages[i] ||
			got.Meshes[i].Index != ref.Meshes[i].Index ||
			got.Meshes[i].Nodes != ref.Meshes[i].Nodes ||
			got.Meshes[i].GPUsPerNode != ref.Meshes[i].GPUsPerNode {
			t.Fatalf("telemetry changed stage %d", i)
		}
		if math.Float64bits(got.StageEst[i]) != math.Float64bits(ref.StageEst[i]) {
			t.Fatalf("telemetry changed StageEst[%d]: %v vs %v", i, got.StageEst[i], ref.StageEst[i])
		}
	}
	// StageEst must decompose the reported Est: Σ StageEst + (B−1)·max.
	sum, max := 0.0, 0.0
	for _, e := range got.StageEst {
		sum += e
		if e > max {
			max = e
		}
	}
	if diff := math.Abs(sum + 7*max - got.Est); diff > 1e-9*got.Est {
		t.Fatalf("StageEst does not decompose Est: Σ=%v max=%v Est=%v", sum, max, got.Est)
	}

	// Search stats must be internally consistent and mirrored to metrics.
	if stats.Segments != 6 || stats.Meshes != 3 || stats.Devices != 4 {
		t.Fatalf("wrong search dimensions: %+v", stats)
	}
	if stats.LatencyLookups != stats.Feasible+stats.Infeasible || stats.LatencyLookups == 0 {
		t.Fatalf("lookup tallies inconsistent: %+v", stats)
	}
	if stats.TmaxCandidates == 0 || stats.DPStates == 0 || stats.DPTransitions == 0 || stats.Improvements == 0 {
		t.Fatalf("search stats empty: %+v", stats)
	}
	snap := map[string]float64{}
	for _, m := range reg.Snapshot() {
		snap[m.Name] = m.Value
	}
	if got := snap["predtop_planner_latency_lookups_total"]; got != float64(stats.LatencyLookups) {
		t.Fatalf("metric lookup count %v != stats %d", got, stats.LatencyLookups)
	}
	if got := snap["predtop_planner_dp_states_total"]; got != float64(stats.DPStates) {
		t.Fatalf("metric dp states %v != stats %d", got, stats.DPStates)
	}
	if snap["predtop_planner_best_latency"] != ref.Est {
		t.Fatalf("best latency gauge %v != %v", snap["predtop_planner_best_latency"], ref.Est)
	}
}
