// Package planner implements the inter-operator (pipeline) parallelization
// planner the paper integrates PredTOP into (§VI, §VIII-B): an Alpa-style
// dynamic program that slices the model into contiguous stages, assigns each
// stage a submesh, and minimizes the Eqn-4 iteration latency — driven either
// by profiled stage latencies (vanilla Alpa, full or partial profiling) or
// by a trained latency predictor (PredTOP).
//
// Beyond the search itself, the package makes every planner run auditable:
// Optimize exposes deterministic search statistics (SearchStats) and
// predtop_planner_* metrics, BuildReport turns a plan into a provenance
// Report (JSON + text), and WhatIf replays a cached plan against a perturbed
// cluster without re-searching (DESIGN.md §11). All of it observes only —
// plans are bitwise identical with telemetry on or off.
package planner

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"predtop/internal/cluster"
	"predtop/internal/intraop"
	"predtop/internal/models"
	"predtop/internal/obs"
	"predtop/internal/pipeline"
	"predtop/internal/stage"
)

// choicem records one DP decision: the stage end boundary and mesh index.
type choicem struct{ hi, mesh int }

// LatencyFn estimates the optimal intra-stage latency of a stage on a mesh.
// ok reports whether the pair is usable (fits memory / was profiled).
type LatencyFn func(sp stage.Spec, mesh cluster.Mesh) (lat float64, ok bool)

// Options configures the inter-stage search.
type Options struct {
	// Microbatches is B in Eqn 4 (default 16; non-positive selects the
	// default).
	Microbatches int
	// MaxStageLen caps stage length in segments (0 = unbounded).
	MaxStageLen int
	// Metrics, when non-nil, receives search instrumentation: the
	// predtop_planner_latency_lookups_total / _pairs_feasible_total /
	// _pairs_infeasible_total / _tmax_candidates_total / _dp_states_total /
	// _dp_transitions_total / _improvements_total counters, the
	// predtop_planner_best_latency gauge, the predtop_planner_optimize_seconds
	// histogram, and the per-depth predtop_planner_dp_depth_seconds{depth="k"}
	// histograms. Observation only — a nil registry changes nothing.
	Metrics *obs.Registry
	// Prof, when non-nil, receives hierarchical spans for the search:
	// planner.optimize → estimate (one child per (stage, mesh) pair) and
	// dp (one folded "tmax" child across the t_max sweep). Like Metrics,
	// a nil profiler is a zero-cost no-op and never alters the plan.
	Prof *obs.Profiler
	// Stats, when non-nil, is filled with the search's exploration
	// statistics. Every field is a deterministic count derived from the
	// inputs — never a wall-clock reading — so stats can appear in
	// byte-identical provenance reports. Observation only.
	Stats *SearchStats
	// Ctx, when non-nil, stamps the predtop_planner_optimize_seconds
	// observation with an exemplar carrying the run's trace/span ids, so a
	// slow search in a histogram bucket links back to its trace. Observation
	// only.
	Ctx *obs.TraceContext
}

func (o Options) withDefaults() Options {
	if o.Microbatches <= 0 {
		o.Microbatches = 16
	}
	return o
}

// SearchStats describes what one Optimize call explored. All fields are
// deterministic functions of the search inputs (never wall-clock or
// scheduling order), which is what lets them ride inside byte-identical plan
// reports; wall-time telemetry lives only in the metrics registry.
type SearchStats struct {
	// Segments, Meshes, and Devices echo the search space dimensions.
	Segments int `json:"segments"`
	Meshes   int `json:"meshes"`
	Devices  int `json:"devices"`
	// MaxStageLen is the effective stage-length cap the search ran with.
	MaxStageLen int `json:"max_stage_len"`
	// LatencyLookups counts latency-source queries; Feasible/Infeasible
	// split them by outcome (infeasible = out of memory / unprofiled /
	// non-positive or +Inf estimates).
	LatencyLookups int64 `json:"latency_lookups"`
	Feasible       int64 `json:"feasible_pairs"`
	Infeasible     int64 `json:"infeasible_pairs"`
	// TmaxCandidates is the number of distinct bottleneck-latency values the
	// outer enumeration sweeps after dedup.
	TmaxCandidates int `json:"tmax_candidates"`
	// DPStates counts (segment, devices-remaining) cells evaluated across
	// the whole sweep; DPTransitions counts candidate (boundary, mesh)
	// decisions examined inside those cells.
	DPStates      int64 `json:"dp_states"`
	DPTransitions int64 `json:"dp_transitions"`
	// Improvements counts how many t_max candidates improved the incumbent
	// plan — the last improvement is the returned plan.
	Improvements int `json:"improvements"`
}

// Plan is a complete parallelization plan: a stage partition and the submesh
// executing each stage.
type Plan struct {
	Stages []stage.Spec
	Meshes []cluster.Mesh
	// StageEst holds each stage's latency estimate from the source that
	// drove the search, parallel to Stages.
	StageEst []float64
	// Est is the Eqn-4 iteration latency under the estimates that drove the
	// search.
	Est float64
}

// NumStages returns the pipeline depth.
func (p Plan) NumStages() int { return len(p.Stages) }

// Optimize searches for the plan minimizing Eqn 4 over all contiguous stage
// partitions and submesh assignments that exactly tile the cluster's
// devices. It enumerates the bottleneck latency t_max over all candidate
// stage latencies and, for each, runs a (segment, devices-remaining) DP
// minimizing Σtᵢ subject to tᵢ ≤ t_max — Alpa's inter-op formulation.
//
// Degenerate input — non-positive numSegments, a platform with no devices,
// or a nil latency source — is reported as infeasible (ok=false), never a
// panic.
func Optimize(numSegments int, p cluster.Platform, lat LatencyFn, opt Options) (Plan, bool) {
	opt = opt.withDefaults()
	meshes := cluster.Meshes(p)
	totalDev := p.Nodes * p.GPUsPerNode
	if numSegments <= 0 || lat == nil || len(meshes) == 0 || totalDev <= 0 {
		return Plan{}, false
	}
	reg := opt.Metrics
	searchTimer := reg.Histogram("predtop_planner_optimize_seconds", nil).Start()
	stopSearchTimer := func() {
		if opt.Ctx != nil {
			trace, span := opt.Ctx.RawIDs()
			searchTimer.StopEx(trace, span)
		} else {
			searchTimer.Stop()
		}
	}

	maxLen := opt.MaxStageLen
	if maxLen <= 0 || maxLen > numSegments {
		maxLen = numSegments
	}
	stats := SearchStats{
		Segments: numSegments, Meshes: len(meshes), Devices: totalDev,
		MaxStageLen: maxLen,
	}
	// publish flushes the deterministic stats into the caller's Stats slot
	// and the metrics registry, at every return path.
	publish := func() {
		if opt.Stats != nil {
			*opt.Stats = stats
		}
		if reg == nil {
			return
		}
		reg.Counter("predtop_planner_latency_lookups_total").Add(stats.LatencyLookups)
		reg.Counter("predtop_planner_pairs_feasible_total").Add(stats.Feasible)
		reg.Counter("predtop_planner_pairs_infeasible_total").Add(stats.Infeasible)
		reg.Counter("predtop_planner_tmax_candidates_total").Add(int64(stats.TmaxCandidates))
		reg.Counter("predtop_planner_dp_states_total").Add(stats.DPStates)
		reg.Counter("predtop_planner_dp_transitions_total").Add(stats.DPTransitions)
		reg.Counter("predtop_planner_improvements_total").Add(int64(stats.Improvements))
	}

	root := opt.Prof.Start("planner.optimize")
	defer root.End()
	if root.Enabled() { // skip string formatting when profiling is off
		root.Attr("segments", strconv.Itoa(numSegments))
		root.Attr("meshes", strconv.Itoa(len(meshes)))
		root.Attr("devices", strconv.Itoa(totalDev))
	}

	// Memoize estimates for every feasible (stage, mesh) pair.
	type pairKey struct {
		lo, hi, mesh int
	}
	est := make(map[pairKey]float64)
	var candidates []float64
	estSpan := root.Start("estimate")
	for _, sp := range stage.AllSpecs(numSegments, maxLen) {
		for mi, mesh := range meshes {
			stats.LatencyLookups++
			var ps obs.Span
			if estSpan.Enabled() {
				ps = estSpan.Start(fmt.Sprintf("s%d:%d/m%d", sp.Lo, sp.Hi, mi))
			}
			t, ok := lat(sp, mesh)
			ps.End()
			if ok && t > 0 && !math.IsInf(t, 1) {
				stats.Feasible++
				est[pairKey{sp.Lo, sp.Hi, mi}] = t
				candidates = append(candidates, t)
			} else {
				stats.Infeasible++
			}
		}
	}
	estSpan.End()
	if len(candidates) == 0 {
		publish()
		stopSearchTimer()
		return Plan{}, false
	}
	sort.Float64s(candidates)

	bestT := math.Inf(1)
	var bestPlan Plan
	B := float64(opt.Microbatches - 1)

	// DP state: f[k][d] = min Σt to place segments [k, numSegments) using
	// exactly d devices; choice[k][d] records (hi, meshIdx).
	f := make([][]float64, numSegments+1)
	choice := make([][]choicem, numSegments+1)
	for k := range f {
		f[k] = make([]float64, totalDev+1)
		choice[k] = make([]choicem, totalDev+1)
	}

	tmaxes := dedup(candidates)
	stats.TmaxCandidates = len(tmaxes)
	// Per-depth wall time is metrics-only (wall-clock must never reach
	// SearchStats); skip the time.Now calls entirely when metrics are off.
	var depthSecs []float64
	if reg != nil {
		depthSecs = make([]float64, numSegments+1)
	}
	dpSpan := root.Start("dp")
	for _, tmax := range tmaxes {
		it := dpSpan.Start("tmax")
		for k := numSegments; k >= 0; k-- {
			var t0 time.Time
			if depthSecs != nil {
				t0 = time.Now()
			}
			for d := 0; d <= totalDev; d++ {
				stats.DPStates++
				if k == numSegments {
					if d == 0 {
						f[k][d] = 0
					} else {
						f[k][d] = math.Inf(1)
					}
					continue
				}
				f[k][d] = math.Inf(1)
				for hi := k + 1; hi <= numSegments && hi-k <= maxLen; hi++ {
					for mi, mesh := range meshes {
						stats.DPTransitions++
						c := mesh.NumDevices()
						if c > d {
							continue
						}
						t, ok := est[pairKey{k, hi, mi}]
						if !ok || t > tmax {
							continue
						}
						if rest := f[hi][d-c]; t+rest < f[k][d] {
							f[k][d] = t + rest
							choice[k][d] = choicem{hi: hi, mesh: mi}
						}
					}
				}
			}
			if depthSecs != nil {
				depthSecs[k] += time.Since(t0).Seconds()
			}
		}
		if sum := f[0][totalDev]; !math.IsInf(sum, 1) {
			total := sum + B*tmax
			if total < bestT {
				bestT = total
				bestPlan = reconstruct(choice, meshes, numSegments, totalDev, func(lo, hi, mesh int) float64 {
					return est[pairKey{lo, hi, mesh}]
				})
				bestPlan.Est = total
				stats.Improvements++
			}
		}
		it.End()
	}
	dpSpan.End()
	for k, s := range depthSecs {
		reg.HistogramWith("predtop_planner_dp_depth_seconds", nil,
			obs.Label{Key: "depth", Value: strconv.Itoa(k)}).Observe(s)
	}
	publish()
	stopSearchTimer()
	if math.IsInf(bestT, 1) {
		return Plan{}, false
	}
	reg.Gauge("predtop_planner_best_latency").Set(bestT)
	return bestPlan, true
}

// InstrumentLatencyFn wraps a latency source so every planner query is
// counted and timed: the predtop_planner_predict_seconds histogram records
// per-stage estimation latency, predtop_planner_predict_total and
// predtop_planner_predict_infeasible_total count outcomes. A nil registry
// returns lat unchanged; the wrapper observes only and never alters results.
func InstrumentLatencyFn(lat LatencyFn, reg *obs.Registry) LatencyFn {
	if reg == nil || lat == nil {
		return lat
	}
	hist := reg.Histogram("predtop_planner_predict_seconds", nil)
	total := reg.Counter("predtop_planner_predict_total")
	infeasible := reg.Counter("predtop_planner_predict_infeasible_total")
	return func(sp stage.Spec, mesh cluster.Mesh) (float64, bool) {
		tm := hist.Start()
		t, ok := lat(sp, mesh)
		tm.Stop()
		total.Inc()
		if !ok {
			infeasible.Inc()
		}
		return t, ok
	}
}

func dedup(sorted []float64) []float64 {
	out := sorted[:0:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func reconstruct(choice [][]choicem, meshes []cluster.Mesh, numSegments, totalDev int, est func(lo, hi, mesh int) float64) Plan {
	var plan Plan
	k, d := 0, totalDev
	for k < numSegments {
		c := choice[k][d]
		plan.Stages = append(plan.Stages, stage.Spec{Lo: k, Hi: c.hi})
		plan.Meshes = append(plan.Meshes, meshes[c.mesh])
		plan.StageEst = append(plan.StageEst, est(k, c.hi, c.mesh))
		d -= meshes[c.mesh].NumDevices()
		k = c.hi
	}
	return plan
}

// TrueStageLatency returns the simulator-exact optimal latency of a training
// stage on a mesh: the best over the mesh's Table-III configurations. ok is
// false when no configuration fits memory.
func TrueStageLatency(m *models.Model, sp stage.Spec, mesh cluster.Mesh) (float64, bool) {
	g := m.StageGraph(sp.Lo, sp.Hi, true)
	best := math.Inf(1)
	for _, conf := range cluster.ConfigsFor(mesh) {
		res := intraop.Optimize(g, cluster.Scenario{Mesh: mesh, Config: conf})
		if res.Feasible && res.Latency < best {
			best = res.Latency
		}
	}
	return best, !math.IsInf(best, 1)
}

// StageLatencies returns each plan stage's true optimal intra-op latency on
// its assigned mesh — the input to both Eqn-4 evaluation and schedule-trace
// rendering. ok is false when any stage is infeasible.
func StageLatencies(m *models.Model, plan Plan) ([]float64, bool) {
	lats := make([]float64, len(plan.Stages))
	for i, sp := range plan.Stages {
		t, ok := TrueStageLatency(m, sp, plan.Meshes[i])
		if !ok {
			return nil, false
		}
		lats[i] = t
	}
	return lats, true
}

// EvaluatePlan returns the ground-truth Eqn-4 iteration latency of a plan
// (each stage at its true optimal intra-op latency). ok is false when any
// stage is infeasible on its assigned mesh.
func EvaluatePlan(m *models.Model, plan Plan, microbatches int) (float64, bool) {
	lats, ok := StageLatencies(m, plan)
	if !ok {
		return 0, false
	}
	return pipeline.Latency(lats, microbatches), true
}
