package planner

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"

	"predtop/internal/cluster"
	"predtop/internal/graphnn"
	"predtop/internal/lru"
	"predtop/internal/models"
	"predtop/internal/obs"
	"predtop/internal/predictor"
	"predtop/internal/sim"
	"predtop/internal/stage"
)

// encCacheSize bounds the planner's stage-encoding LRU. Stage universes are
// O(segments × maxLen), far below this bound for the paper's models, so in
// practice nothing is evicted — the bound exists so a pathological workload
// (thousands of layers) degrades to recomputation instead of unbounded
// memory. Encoding is deterministic, so eviction never changes results.
const encCacheSize = 4096

// Meter accumulates the optimization-cost components of Fig 10a, all on the
// simulated platform clock: profiling (compile + transfer + timed runs),
// predictor training (per-graph-step GPU cost × steps), and prediction
// inference. RealSeconds additionally records the wall time this process
// spent training/inferring, which is not comparable to simulated seconds
// and is reported separately.
type Meter struct {
	ProfileSeconds float64
	TrainSeconds   float64
	InferSeconds   float64
	StagesProfiled int
	RealSeconds    float64
	// CacheHits/CacheMisses count memoized latency-source lookups: a miss
	// pays the full profile/predict cost, a hit is free. The ratio shows how
	// much the planner's repeated (stage, mesh) queries amortize.
	CacheHits   int
	CacheMisses int
	// EncHits/EncMisses count stage-encoding LRU lookups inside
	// TrainPredictorProvider (a miss re-runs the graph encoder), and
	// EncEntries is the cache's final population. All zero for
	// profiling-based providers, which never encode.
	EncHits    int
	EncMisses  int
	EncEntries int
}

// Total returns the end-to-end optimization cost in simulated seconds.
func (m *Meter) Total() float64 { return m.ProfileSeconds + m.TrainSeconds + m.InferSeconds }

// PublishMetrics exports the meter's counters as labeled predtop_planner_*
// series on reg, tagged with the latency-source version they belong to
// (e.g. "Alpa-Full", "PredTOP-Tran"). Cache traffic lands on
// predtop_planner_cache_hits_total / _misses_total with a cache label
// ("latency" for the memoized lookup table, "encoding" for the
// stage-encoding LRU), the encoding cache's population on
// predtop_planner_cache_entries, and the simulated cost components on
// predtop_planner_cost_seconds{component=...}. Counters add (a meter is
// published once per run); no-op on a nil registry or meter.
func (m *Meter) PublishMetrics(reg *obs.Registry, version string) {
	if m == nil || reg == nil {
		return
	}
	ver := obs.Label{Key: "version", Value: version}
	latency := obs.Label{Key: "cache", Value: "latency"}
	encoding := obs.Label{Key: "cache", Value: "encoding"}
	reg.CounterWith("predtop_planner_cache_hits_total", latency, ver).Add(int64(m.CacheHits))
	reg.CounterWith("predtop_planner_cache_misses_total", latency, ver).Add(int64(m.CacheMisses))
	reg.CounterWith("predtop_planner_cache_hits_total", encoding, ver).Add(int64(m.EncHits))
	reg.CounterWith("predtop_planner_cache_misses_total", encoding, ver).Add(int64(m.EncMisses))
	reg.GaugeWith("predtop_planner_cache_entries", encoding, ver).Set(float64(m.EncEntries))
	for _, c := range []struct {
		component string
		seconds   float64
	}{
		{"profile", m.ProfileSeconds},
		{"train", m.TrainSeconds},
		{"infer", m.InferSeconds},
	} {
		reg.GaugeWith("predtop_planner_cost_seconds",
			obs.Label{Key: "component", Value: c.component}, ver).Set(c.seconds)
	}
	reg.CounterWith("predtop_planner_stages_profiled_total", ver).Add(int64(m.StagesProfiled))
}

// Simulated per-graph costs of running the predictor on the platform's own
// hardware (the paper trains PredTOP on the same machines it profiles on):
// one training step and one inference pass over a stage DAG.
const (
	simTrainStepSeconds = 0.004
	simInferSeconds     = 0.002
)

// FullProfiling returns vanilla Alpa's latency source: every queried
// (stage, mesh) pair is intra-op-optimized, compiled, and profiled under
// every Table-III configuration, charging the full cost to meter.
func FullProfiling(mdl *models.Model, prof sim.Profiler, meter *Meter) LatencyFn {
	type key struct {
		lo, hi, mesh int
	}
	memo := map[key]float64{}
	return func(sp stage.Spec, mesh cluster.Mesh) (float64, bool) {
		k := key{sp.Lo, sp.Hi, mesh.Index}
		if t, ok := memo[k]; ok {
			meter.CacheHits++
			return t, !math.IsInf(t, 1)
		}
		meter.CacheMisses++
		g := mdl.StageGraph(sp.Lo, sp.Hi, true)
		best := math.Inf(1)
		for _, conf := range cluster.ConfigsFor(mesh) {
			sc := cluster.Scenario{Mesh: mesh, Config: conf}
			trueLat, measured, ok := predictor.ProfileStage(mdl, sp, sc, prof)
			if !ok {
				continue
			}
			meter.ProfileSeconds += prof.ProfileCostSeconds(g, sim.NewExec(sc), trueLat)
			meter.StagesProfiled++
			if measured < best {
				best = measured
			}
		}
		memo[k] = best
		return best, !math.IsInf(best, 1)
	}
}

// PartialProfiling wraps full profiling with vanilla Alpa's pruning
// heuristic (§VII-D): skip stage–mesh pairs whose model-fraction to
// device-fraction ratio is imbalanced beyond alpha, profiling only the
// plausible ones.
func PartialProfiling(mdl *models.Model, prof sim.Profiler, meter *Meter, alpha float64) LatencyFn {
	if alpha <= 1 {
		alpha = 2.5
	}
	full := FullProfiling(mdl, prof, meter)
	numSegments := float64(mdl.NumSegments())
	return func(sp stage.Spec, mesh cluster.Mesh) (float64, bool) {
		totalDev := float64(mesh.Platform.Nodes * mesh.Platform.GPUsPerNode)
		stageFrac := float64(sp.Len()) / numSegments
		devFrac := float64(mesh.NumDevices()) / totalDev
		ratio := stageFrac / devFrac
		if ratio > alpha || ratio < 1/(2*alpha*alpha) {
			return 0, false
		}
		return full(sp, mesh)
	}
}

// PredictorKind selects which black-box architecture PredTOP uses.
type PredictorKind uint8

// Predictor architectures (Fig 10's five versions include these three).
const (
	KindTransformer PredictorKind = iota
	KindGCN
	KindGAT
)

// String implements fmt.Stringer.
func (k PredictorKind) String() string {
	switch k {
	case KindTransformer:
		return "PredTOP-Tran"
	case KindGCN:
		return "PredTOP-GCN"
	case KindGAT:
		return "PredTOP-GAT"
	}
	return "PredTOP-?"
}

// NewModel instantiates the architecture at the given sizes (zero-value
// configs use the paper's hyper-parameters).
func (k PredictorKind) NewModel(rng *rand.Rand, tran graphnn.TransformerConfig, gcn graphnn.GCNConfig, gat graphnn.GATConfig) graphnn.Model {
	switch k {
	case KindGCN:
		return graphnn.NewGCN(rng, gcn)
	case KindGAT:
		return graphnn.NewGAT(rng, gat)
	default:
		return graphnn.NewDAGTransformer(rng, tran)
	}
}

// ProviderInfo identifies the latency source a plan came from — the
// provenance block of a plan report. For predictor-backed sources the
// Fingerprint pins the exact trained weights (FNV-1a over every parameter
// tensor plus the scale, in cluster.Scenarios order), so two reports with
// equal fingerprints were produced by bitwise-identical predictors.
type ProviderInfo struct {
	// Source names the latency source ("Alpa-Full", "Alpa-Partial", or a
	// PredictorKind string for PredTOP versions).
	Source string `json:"source"`
	// Kind is the predictor architecture ("PredTOP-Tran", ...); empty for
	// profiling-based sources.
	Kind string `json:"kind,omitempty"`
	// Seed is the predictor training seed (omitted for profiling sources).
	Seed int64 `json:"seed,omitempty"`
	// Fingerprint is the 16-hex-digit weight hash described above.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Predictors counts the per-(mesh, configuration) models trained.
	Predictors int `json:"predictors,omitempty"`
	// SampleFrac is the fraction of the stage universe profiled for
	// training data.
	SampleFrac float64 `json:"sample_frac,omitempty"`
}

// WeightFingerprint hashes trained predictors into the 16-hex-digit FNV-1a
// weight fingerprint that ProviderInfo carries: per predictor, the output
// scale followed by every parameter tensor's name and raw float64 bits, in
// the model's canonical Params order. Callers pass predictors in a fixed
// order (e.g. cluster.Scenarios order) so equal weights hash equally. The
// run ledger stamps this same fingerprint into manifests, making "did these
// two runs train the same weights" a string comparison.
func WeightFingerprint(trs ...predictor.Trained) string {
	h := fnv.New64a()
	for _, tr := range trs {
		fingerprintTrained(h, tr)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// fingerprintTrained folds one trained predictor's identity into an FNV-1a
// hash: its output scale followed by every parameter tensor's raw float64
// bits, in the model's canonical Params order.
func fingerprintTrained(h interface{ Write([]byte) (int, error) }, tr predictor.Trained) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(tr.Scale))
	h.Write(buf[:])
	for _, p := range tr.Model.Params() {
		h.Write([]byte(p.Name))
		for _, v := range p.V.Data {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
}

// PredictorOptions configures PredTOP's profiling-sample/training trade-off.
type PredictorOptions struct {
	Kind PredictorKind
	// SampleFrac is the fraction of the stage universe profiled for
	// training data (§VI: "only selects a subset of stages").
	SampleFrac float64
	// MaxStageLen bounds the stage universe (must match planner Options).
	MaxStageLen int
	Train       predictor.TrainConfig
	Tran        graphnn.TransformerConfig
	GCN         graphnn.GCNConfig
	GAT         graphnn.GATConfig
	Seed        int64
	// Acc, when non-nil, receives every per-scenario validation residual
	// (predicted vs. noisy-profiled latency) keyed by predictor family and
	// mesh shape, so planner-side prediction quality is monitored online.
	// Observation only: estimates and plans are unchanged by it.
	Acc *obs.AccuracyMonitor
	// Info, when non-nil, is filled by TrainPredictorProvider with the
	// provenance of the trained predictors (kind, seed, weight fingerprint)
	// for inclusion in plan reports. Observation only.
	Info *ProviderInfo
	// PrefetchSweep, when set, pre-fills the provider's latency memo at
	// construction: one fused batched forward per (mesh, configuration)
	// sweeps every candidate stage up to MaxStageLen, instead of predicting
	// graph by graph as the planner's search asks. Amortization only — the
	// batched forward is bitwise identical to per-item PredictEncoded and
	// the per-stage best folds configurations in the same order as the lazy
	// path, so a prefetched provider answers every query with exactly the
	// bits the lazy one would (stages longer than MaxStageLen still fall
	// through to the lazy path). Off by default; the meter then charges the
	// whole sweep's inference up front rather than per query.
	PrefetchSweep bool
}

// TrainPredictorProvider implements PredTOP's workflow (§VI): profile a
// sampled subset of stages on every (mesh, configuration), train one
// predictor per (mesh, configuration), and answer planner queries with
// predictions (taking the best configuration per mesh, with an analytic
// memory-feasibility screen). Profiling, training, and inference costs are
// charged to meter.
func TrainPredictorProvider(mdl *models.Model, p cluster.Platform, opt PredictorOptions, prof sim.Profiler, meter *Meter) LatencyFn {
	if opt.SampleFrac == 0 {
		opt.SampleFrac = 0.15
	}
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	universe := stage.AllSpecs(mdl.NumSegments(), opt.MaxStageLen)
	count := int(float64(len(universe))*opt.SampleFrac + 0.5)
	if count < 8 {
		count = 8
	}
	specs := stage.SampleSpecs(rng, mdl.NumSegments(), count, opt.MaxStageLen)
	enc := predictor.NewEncoder(mdl, true)

	type scKey struct{ mesh, conf int }
	trained := map[scKey]predictor.Trained{}
	for _, sc := range cluster.Scenarios(p) {
		ds := predictor.BuildDataset(enc, specs, sc, prof)
		// Charge the profiling cost of the training sample.
		for _, s := range ds.Samples {
			g := mdl.StageGraph(s.Spec.Lo, s.Spec.Hi, true)
			meter.ProfileSeconds += prof.ProfileCostSeconds(g, sim.NewExec(sc), s.True)
			meter.StagesProfiled++
		}
		if len(ds.Samples) < 4 {
			continue
		}
		trainIdx, valIdx, _ := stage.Split(rng, len(ds.Samples), 0.85, 0.15)
		cfg := opt.Train
		cfg.Seed = opt.Seed + int64(sc.Mesh.Index*10+sc.Config.Index)
		model := opt.Kind.NewModel(rand.New(rand.NewSource(cfg.Seed)), opt.Tran, opt.GCN, opt.GAT)
		tr, res := predictor.Train(model, ds, trainIdx, valIdx, cfg)
		meter.TrainSeconds += float64(res.EpochsRun*len(trainIdx)) * simTrainStepSeconds
		meter.RealSeconds += res.WallSeconds
		trained[scKey{sc.Mesh.Index, sc.Config.Index}] = tr
		if opt.Acc != nil {
			key := obs.AccuracyKey{
				Family: opt.Kind.String(),
				Mesh:   fmt.Sprintf("%dx%d", sc.Mesh.Nodes, sc.Mesh.GPUsPerNode),
			}
			for _, i := range valIdx {
				s := &ds.Samples[i]
				opt.Acc.Observe(key, tr.PredictGraph(s), s.Measured)
			}
		}
	}

	if opt.Info != nil {
		// Fingerprint the trained weights in cluster.Scenarios order (the
		// map's own iteration order is randomized) so equal training runs
		// yield equal fingerprints.
		h := fnv.New64a()
		for _, sc := range cluster.Scenarios(p) {
			if tr, ok := trained[scKey{sc.Mesh.Index, sc.Config.Index}]; ok {
				fingerprintTrained(h, tr)
			}
		}
		*opt.Info = ProviderInfo{
			Source:      opt.Kind.String(),
			Kind:        opt.Kind.String(),
			Seed:        opt.Seed,
			Fingerprint: fmt.Sprintf("%016x", h.Sum64()),
			Predictors:  len(trained),
			SampleFrac:  opt.SampleFrac,
		}
	}

	type pairKey struct{ lo, hi, mesh int }
	memo := map[pairKey]float64{}
	// Stage encodings depend only on the spec, not the mesh or config, so
	// they are computed once per spec instead of once per (mesh, config)
	// query inside the configuration loop. The bounded LRU is the same
	// implementation the serving daemon memoizes latencies with.
	encCache := lru.New[stage.Spec, *stage.Encoded](encCacheSize)
	if opt.PrefetchSweep {
		start := time.Now()
		sweep := stage.AllSpecs(mdl.NumSegments(), opt.MaxStageLen)
		encs := make([]*stage.Encoded, len(sweep))
		for i, sp := range sweep {
			e, cached := encCache.GetOrCompute(sp, func() *stage.Encoded { return enc.Encode(sp) })
			if cached {
				meter.EncHits++
			} else {
				meter.EncMisses++
			}
			encs[i] = e
		}
		meter.EncEntries = encCache.Len()
		for _, mesh := range cluster.Meshes(p) {
			best := make([]float64, len(sweep))
			for i := range best {
				best[i] = math.Inf(1)
			}
			for _, conf := range cluster.ConfigsFor(mesh) {
				tr, ok := trained[scKey{mesh.Index, conf.Index}]
				if !ok {
					continue
				}
				ex := sim.NewExec(cluster.Scenario{Mesh: mesh, Config: conf})
				var idx []int
				var group []*stage.Encoded
				for i, sp := range sweep {
					if ex.FitsMemory(mdl.StageGraph(sp.Lo, sp.Hi, true)) {
						idx = append(idx, i)
						group = append(group, encs[i])
					}
				}
				// One fused batched forward per (mesh, configuration); the
				// per-stage fold visits configurations in ConfigsFor order,
				// exactly like the lazy query below.
				preds := tr.PredictEncodedBatch(group, 0)
				for k, i := range idx {
					if preds[k] < best[i] {
						best[i] = preds[k]
					}
					meter.InferSeconds += simInferSeconds
				}
			}
			for i, sp := range sweep {
				memo[pairKey{sp.Lo, sp.Hi, mesh.Index}] = best[i]
			}
		}
		meter.RealSeconds += time.Since(start).Seconds()
	}
	return func(sp stage.Spec, mesh cluster.Mesh) (float64, bool) {
		k := pairKey{sp.Lo, sp.Hi, mesh.Index}
		if t, ok := memo[k]; ok {
			meter.CacheHits++
			return t, !math.IsInf(t, 1)
		}
		meter.CacheMisses++
		start := time.Now()
		g := mdl.StageGraph(sp.Lo, sp.Hi, true)
		encoded, cached := encCache.GetOrCompute(sp, func() *stage.Encoded { return enc.Encode(sp) })
		if cached {
			meter.EncHits++
		} else {
			meter.EncMisses++
		}
		meter.EncEntries = encCache.Len()
		best := math.Inf(1)
		for _, conf := range cluster.ConfigsFor(mesh) {
			tr, ok := trained[scKey{mesh.Index, conf.Index}]
			if !ok {
				continue
			}
			sc := cluster.Scenario{Mesh: mesh, Config: conf}
			if !sim.NewExec(sc).FitsMemory(g) {
				continue
			}
			if pred := tr.PredictEncoded(encoded); pred < best {
				best = pred
			}
			meter.InferSeconds += simInferSeconds
		}
		meter.RealSeconds += time.Since(start).Seconds()
		memo[k] = best
		return best, !math.IsInf(best, 1)
	}
}

// TrueLatency returns the oracle latency source (simulator-exact optimal
// stage latencies, no noise, no cost) — useful for tests and upper-bound
// comparisons.
func TrueLatency(mdl *models.Model) LatencyFn {
	type key struct{ lo, hi, mesh int }
	memo := map[key]float64{}
	return func(sp stage.Spec, mesh cluster.Mesh) (float64, bool) {
		k := key{sp.Lo, sp.Hi, mesh.Index}
		if t, ok := memo[k]; ok {
			return t, !math.IsInf(t, 1)
		}
		t, ok := TrueStageLatency(mdl, sp, mesh)
		if !ok {
			t = math.Inf(1)
		}
		memo[k] = t
		return t, ok
	}
}
