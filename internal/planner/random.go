package planner

import (
	"math/rand"
	"sort"

	"predtop/internal/cluster"
	"predtop/internal/intraop"
	"predtop/internal/models"
	"predtop/internal/pipeline"
	"predtop/internal/stage"
)

// compositions enumerates the ways the cluster's devices can be tiled by the
// available submesh sizes (order matters: stage i gets part i).
func compositions(total int, sizes []int) [][]int {
	var out [][]int
	var rec func(rem int, cur []int)
	rec = func(rem int, cur []int) {
		if rem == 0 {
			out = append(out, append([]int{}, cur...))
			return
		}
		for _, s := range sizes {
			if s <= rem {
				rec(rem-s, append(cur, s))
			}
		}
	}
	rec(total, nil)
	return out
}

// RandomPlan draws a uniformly random parallelization plan: a random device
// tiling, a random contiguous segment partition with one stage per submesh,
// and (implicitly) random intra-operator strategies chosen by the caller.
func RandomPlan(mdl *models.Model, p cluster.Platform, rng *rand.Rand) Plan {
	meshBySize := map[int]cluster.Mesh{}
	var sizes []int
	for _, m := range cluster.Meshes(p) {
		meshBySize[m.NumDevices()] = m
		sizes = append(sizes, m.NumDevices())
	}
	comps := compositions(p.Nodes*p.GPUsPerNode, sizes)
	L := mdl.NumSegments()

	for {
		comp := comps[rng.Intn(len(comps))]
		s := len(comp)
		if s > L {
			continue
		}
		// Random composition of L segments into s non-empty parts.
		cuts := rng.Perm(L - 1)[:s-1]
		bounds := append([]int{0}, cuts...)
		bounds = append(bounds, L)
		sort.Ints(bounds)
		ok := true
		var plan Plan
		for i := 0; i < s; i++ {
			if bounds[i] == bounds[i+1] {
				ok = false
				break
			}
			plan.Stages = append(plan.Stages, stage.Spec{Lo: bounds[i], Hi: bounds[i+1]})
			plan.Meshes = append(plan.Meshes, meshBySize[comp[i]])
		}
		if ok {
			return plan
		}
	}
}

// RandomPlanLatency evaluates a random plan with random per-stage
// configurations and random intra-op sharding strategies — the Fig-2
// experiment showing how widely plan latencies vary on fixed hardware. ok is
// false when the drawn plan is infeasible (stage exceeds device memory).
func RandomPlanLatency(mdl *models.Model, p cluster.Platform, rng *rand.Rand, microbatches int) (float64, bool) {
	plan := RandomPlan(mdl, p, rng)
	lats := make([]float64, len(plan.Stages))
	for i, sp := range plan.Stages {
		g := mdl.StageGraph(sp.Lo, sp.Hi, true)
		confs := cluster.ConfigsFor(plan.Meshes[i])
		conf := confs[rng.Intn(len(confs))]
		sc := cluster.Scenario{Mesh: plan.Meshes[i], Config: conf}
		res := intraop.Evaluate(g, sc, intraop.RandomStrategies(g, rng))
		if !res.Feasible {
			return 0, false
		}
		lats[i] = res.Latency
	}
	return pipeline.Latency(lats, microbatches), true
}
