package planner

import (
	"math"
	"strings"
	"testing"

	"predtop/internal/cluster"
	"predtop/internal/pipeline"
)

// TestWhatIfUnperturbedBitwise is the what-if determinism property: replaying
// a plan against the unperturbed platform must reproduce the plan's
// simulator-exact evaluation bitwise — per stage and in the Eqn-4 total —
// for the zero perturbation, all-identity scale factors, and an explicit
// same-microbatch override alike.
func TestWhatIfUnperturbedBitwise(t *testing.T) {
	mdl := tinyModel()
	p := cluster.Platform1()
	const B = 8
	plan, ok := Optimize(mdl.NumSegments(), p, TrueLatency(mdl), Options{Microbatches: B})
	if !ok {
		t.Fatal("no plan")
	}
	wantLats, ok := StageLatencies(mdl, plan)
	if !ok {
		t.Fatal("baseline evaluation infeasible")
	}
	wantTotal := pipeline.Latency(wantLats, B)

	cases := []struct {
		name string
		pt   Perturbation
	}{
		{"zero perturbation", Perturbation{}},
		{"identity scales", Perturbation{IntraNodeBW: 1, InterNodeBW: 1, InterNodeLatency: 1}},
		{"same microbatches", Perturbation{Microbatches: B}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, ok := WhatIf(mdl, p, plan, B, tc.pt, ReportOptions{})
			if !ok {
				t.Fatal("what-if infeasible on unperturbed platform")
			}
			for i, s := range r.Stages {
				if math.Float64bits(s.Latency) != math.Float64bits(wantLats[i]) {
					t.Fatalf("stage %d latency %v != baseline %v", i, s.Latency, wantLats[i])
				}
			}
			if math.Float64bits(r.Pipeline.Total) != math.Float64bits(wantTotal) {
				t.Fatalf("what-if total %v != baseline %v", r.Pipeline.Total, wantTotal)
			}
		})
	}
}

func TestWhatIfMicrobatchOverride(t *testing.T) {
	mdl := tinyModel()
	p := cluster.Platform1()
	plan, ok := Optimize(mdl.NumSegments(), p, TrueLatency(mdl), Options{Microbatches: 8})
	if !ok {
		t.Fatal("no plan")
	}
	lats, _ := StageLatencies(mdl, plan)
	r, ok := WhatIf(mdl, p, plan, 8, Perturbation{Microbatches: 16}, ReportOptions{})
	if !ok {
		t.Fatal("what-if failed")
	}
	want := pipeline.Latency(lats, 16)
	if math.Float64bits(r.Pipeline.Total) != math.Float64bits(want) {
		t.Fatalf("doubled-B total %v != %v", r.Pipeline.Total, want)
	}
	if r.Microbatches != 16 || r.Scenario != "microbatches=16" {
		t.Fatalf("scenario header wrong: %+v", r)
	}
}

// TestWhatIfBandwidthMonotone: scaling the interconnects up can only help
// (or leave unchanged) every stage.
func TestWhatIfBandwidthMonotone(t *testing.T) {
	mdl := tinyModel()
	p := cluster.Platform2()
	plan, ok := Optimize(mdl.NumSegments(), p, TrueLatency(mdl), Options{Microbatches: 8})
	if !ok {
		t.Fatal("no plan")
	}
	base, ok := WhatIf(mdl, p, plan, 8, Perturbation{}, ReportOptions{})
	if !ok {
		t.Fatal("baseline what-if failed")
	}
	fast, ok := WhatIf(mdl, p, plan, 8, Perturbation{IntraNodeBW: 8, InterNodeBW: 8}, ReportOptions{})
	if !ok {
		t.Fatal("scaled what-if failed")
	}
	for i := range base.Stages {
		if fast.Stages[i].Latency > base.Stages[i].Latency {
			t.Fatalf("stage %d slower with 8x bandwidth: %v > %v",
				i, fast.Stages[i].Latency, base.Stages[i].Latency)
		}
	}
	if fast.Pipeline.Total > base.Pipeline.Total {
		t.Fatalf("total slower with 8x bandwidth: %v > %v", fast.Pipeline.Total, base.Pipeline.Total)
	}

	d := Diff(base, fast)
	if d.Delta > 0 {
		t.Fatalf("diff delta positive: %+v", d)
	}
	if !strings.Contains(d.Render(), "unperturbed") {
		t.Fatalf("baseline label missing:\n%s", d.Render())
	}
}

// TestWhatIfPlatformSwap replays a platform-1 plan (submeshes up to 1×2) on
// platform 2, whose slower inter-node fabric is irrelevant for intra-node
// meshes but whose different GPU changes compute latency.
func TestWhatIfPlatformSwap(t *testing.T) {
	mdl := tinyModel()
	p1 := cluster.Platform1()
	plan, ok := Optimize(mdl.NumSegments(), p1, TrueLatency(mdl), Options{Microbatches: 8})
	if !ok {
		t.Fatal("no plan")
	}
	p2 := cluster.Platform2()
	r, ok := WhatIf(mdl, p1, plan, 8, Perturbation{Platform: &p2}, ReportOptions{})
	if !ok {
		t.Fatal("platform swap infeasible")
	}
	if r.Platform != p2.Name {
		t.Fatalf("report platform %q, want %q", r.Platform, p2.Name)
	}
	if r.Pipeline.Total <= 0 {
		t.Fatalf("swapped plan has no latency: %+v", r.Pipeline)
	}

	// The reverse direction must fail: platform-2 plans may use 2×2 meshes
	// that platform 1 (1 node) cannot host.
	plan2, ok := Optimize(mdl.NumSegments(), p2, TrueLatency(mdl), Options{Microbatches: 8})
	if !ok {
		t.Fatal("no platform-2 plan")
	}
	uses2x2 := false
	for _, m := range plan2.Meshes {
		if m.Nodes > 1 {
			uses2x2 = true
		}
	}
	if uses2x2 {
		if _, ok := WhatIf(mdl, p2, plan2, 8, Perturbation{Platform: &p1}, ReportOptions{}); ok {
			t.Fatal("2-node submesh replayed onto a 1-node platform")
		}
	}
}

func TestParsePerturbation(t *testing.T) {
	cases := []struct {
		in      string
		want    string // canonical String() of the parsed perturbation
		wantErr bool
	}{
		{"", "unperturbed", false},
		{"   ", "unperturbed", false},
		{"microbatches=32", "microbatches=32", false},
		{"b=4", "microbatches=4", false},
		{"internode-bw=x4", "internode-bw=x4", false},
		{"internode-bw=4", "internode-bw=x4", false},
		{"platform=2,intranode-bw=2,internode-lat=x0.5", "platform=Platform2-A5500,intranode-bw=x2,internode-lat=x0.5", false},
		{"Microbatches=8", "microbatches=8", false},
		{"microbatches=0", "", true},
		{"microbatches=abc", "", true},
		{"platform=3", "", true},
		{"internode-bw=-1", "", true},
		{"bogus=1", "", true},
		{"microbatches", "", true},
	}
	for _, tc := range cases {
		pt, err := ParsePerturbation(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Fatalf("%q: want error, got %+v", tc.in, pt)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%q: %v", tc.in, err)
		}
		if got := pt.String(); got != tc.want {
			t.Fatalf("%q parsed to %q, want %q", tc.in, got, tc.want)
		}
	}
	if _, err := ParsePerturbation("bogus=1"); err == nil || !strings.Contains(err.Error(), "microbatches") {
		t.Fatalf("unknown-key error should list valid keys: %v", err)
	}
}
