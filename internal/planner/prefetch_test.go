package planner

import (
	"math"
	"reflect"
	"testing"

	"predtop/internal/cluster"
	"predtop/internal/graphnn"
	"predtop/internal/predictor"
	"predtop/internal/sim"
	"predtop/internal/stage"
)

// TestPrefetchSweepBitwiseEqualsLazy: a provider built with PrefetchSweep
// pre-fills its memo through fused batched forwards, and must answer every
// stage query — inside the prefetch universe and beyond MaxStageLen, where
// it falls back to the lazy path — with exactly the bits the lazy provider
// produces. The planner must then emit an identical plan from either.
func TestPrefetchSweepBitwiseEqualsLazy(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	mdl := tinyModel()
	p := cluster.Platform1()
	build := func(prefetch bool) LatencyFn {
		return TrainPredictorProvider(mdl, p, PredictorOptions{
			Kind:          KindTransformer,
			SampleFrac:    0.5,
			MaxStageLen:   2,
			Train:         predictor.TrainConfig{Epochs: 5, Patience: 5, BatchSize: 8},
			Tran:          graphnn.TransformerConfig{Layers: 1, Dim: 16, Heads: 2},
			Seed:          1,
			PrefetchSweep: prefetch,
		}, sim.DefaultProfiler(), &Meter{})
	}
	lazy := build(false)
	swept := build(true)

	for _, mesh := range cluster.Meshes(p) {
		for _, sp := range stage.AllSpecs(mdl.NumSegments(), 0) {
			a, aok := lazy(sp, mesh)
			b, bok := swept(sp, mesh)
			if aok != bok || math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("stage [%d,%d) on %v: lazy (%v, %v) != prefetched (%v, %v)",
					sp.Lo, sp.Hi, mesh, a, aok, b, bok)
			}
		}
	}

	planA, okA := Optimize(mdl.NumSegments(), p, lazy, Options{Microbatches: 4})
	planB, okB := Optimize(mdl.NumSegments(), p, swept, Options{Microbatches: 4})
	if okA != okB {
		t.Fatalf("plan feasibility diverged: lazy %v, prefetched %v", okA, okB)
	}
	if !reflect.DeepEqual(planA, planB) {
		t.Fatalf("plans diverged:\nlazy:      %+v\nprefetched: %+v", planA, planB)
	}
}

// TestPrefetchSweepChargesMeter: the sweep's inference shows up on the meter
// at construction, and subsequent in-universe queries are memo hits.
func TestPrefetchSweepChargesMeter(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	mdl := tinyModel()
	p := cluster.Platform1()
	meter := &Meter{}
	latFn := TrainPredictorProvider(mdl, p, PredictorOptions{
		Kind:          KindTransformer,
		SampleFrac:    0.5,
		MaxStageLen:   2,
		Train:         predictor.TrainConfig{Epochs: 3, Patience: 3, BatchSize: 8},
		Tran:          graphnn.TransformerConfig{Layers: 1, Dim: 16, Heads: 2},
		Seed:          1,
		PrefetchSweep: true,
	}, sim.DefaultProfiler(), meter)
	if meter.InferSeconds <= 0 {
		t.Fatal("prefetch sweep charged no inference cost")
	}
	if _, ok := latFn(stage.Spec{Lo: 1, Hi: 3}, cluster.Meshes(p)[1]); !ok {
		t.Fatal("in-universe query failed")
	}
	if meter.CacheHits != 1 || meter.CacheMisses != 0 {
		t.Fatalf("in-universe query missed the prefetched memo: hits=%d misses=%d",
			meter.CacheHits, meter.CacheMisses)
	}
}
