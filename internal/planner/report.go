package planner

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"predtop/internal/cluster"
	"predtop/internal/models"
	"predtop/internal/pipeline"
)

// StageReport explains one pipeline stage of a plan: which segments it
// covers, the submesh executing it, and its latency under both the estimate
// that drove the search and the latency source the report was built with.
type StageReport struct {
	Index    int `json:"index"`
	Lo       int `json:"lo"`
	Hi       int `json:"hi"`
	Segments int `json:"segments"`
	// MeshNodes × MeshGPUsPerNode is the submesh shape; Devices its size.
	MeshNodes       int  `json:"mesh_nodes"`
	MeshGPUsPerNode int  `json:"mesh_gpus_per_node"`
	Devices         int  `json:"devices"`
	CrossNode       bool `json:"cross_node,omitempty"`
	// EstLatency is the search-time estimate (profiled or predicted);
	// Latency is the stage latency under the report's LatencySource.
	EstLatency float64 `json:"est_latency"`
	Latency    float64 `json:"latency"`
}

// PipelineReport decomposes the Eqn-4 iteration latency: Total =
// SumStages + (B−1)·MaxStage, with the bubble share quantifying how much of
// the iteration the non-bottleneck stages spend idle.
type PipelineReport struct {
	SumStages float64 `json:"sum_stages"`
	MaxStage  float64 `json:"max_stage"`
	// Bottleneck is the index of the slowest stage (−1 for an empty plan).
	Bottleneck    int     `json:"bottleneck"`
	BubbleSeconds float64 `json:"bubble_seconds"`
	Total         float64 `json:"total"`
	BubbleShare   float64 `json:"bubble_share"`
}

// CostReport is the Meter snapshot attached to a report. RealSeconds is
// deliberately excluded: it is wall-clock, and reports must be byte-identical
// across runs of the same seed.
type CostReport struct {
	ProfileSeconds float64 `json:"profile_seconds"`
	TrainSeconds   float64 `json:"train_seconds"`
	InferSeconds   float64 `json:"infer_seconds"`
	TotalSeconds   float64 `json:"total_seconds"`
	StagesProfiled int     `json:"stages_profiled"`
	LatencyHits    int     `json:"latency_cache_hits"`
	LatencyMisses  int     `json:"latency_cache_misses"`
	EncodingHits   int     `json:"encoding_cache_hits"`
	EncodingMisses int     `json:"encoding_cache_misses"`
}

// Report is the full provenance record of one planner run: what was planned
// (model, platform, microbatches), who answered the latency queries
// (Provenance), what the search explored (Search), what it cost (Cost), and
// the resulting plan stage by stage with its pipeline decomposition. Every
// field is deterministic for a fixed seed, so the JSON rendering is
// byte-identical across runs — the property the plan-smoke CI gate pins.
type Report struct {
	// Version names the planner version ("Alpa-Full", "PredTOP-Tran", ...).
	Version string `json:"version,omitempty"`
	// TraceID correlates the report with the run's metrics exemplars, JSONL
	// events, and Chrome trace (seed-derived, never wall-clock).
	TraceID  string `json:"trace_id,omitempty"`
	Model    string `json:"model,omitempty"`
	Platform string `json:"platform,omitempty"`
	// Scenario describes a what-if perturbation ("" for a baseline report).
	Scenario     string `json:"scenario,omitempty"`
	NumSegments  int    `json:"segments"`
	Microbatches int    `json:"microbatches"`
	// LatencySource says where Stages[i].Latency came from: "simulator"
	// (exact re-evaluation) or "estimate" (the search-time numbers, used
	// when the model is unavailable).
	LatencySource string         `json:"latency_source"`
	EstLatency    float64        `json:"est_latency"`
	Provenance    ProviderInfo   `json:"provenance"`
	Search        *SearchStats   `json:"search,omitempty"`
	Cost          *CostReport    `json:"cost,omitempty"`
	Stages        []StageReport  `json:"stages"`
	Pipeline      PipelineReport `json:"pipeline"`
}

// ReportOptions supplies the context BuildReport cannot derive from the plan
// itself. Every field is optional.
type ReportOptions struct {
	// Version and TraceID label the report (see Report fields).
	Version string
	TraceID string
	// Microbatches is B in Eqn 4 (non-positive selects the Options default
	// of 16, matching Optimize).
	Microbatches int
	// Provenance identifies the latency source that drove the search.
	Provenance ProviderInfo
	// Search, when non-nil, attaches the Optimize exploration stats.
	Search *SearchStats
	// Meter, when non-nil, attaches the optimization-cost snapshot.
	Meter *Meter
	// StageLats, when non-empty, supplies pre-computed simulator-exact
	// per-stage latencies (len must equal plan.NumStages()), avoiding the
	// re-evaluation BuildReport would otherwise run.
	StageLats []float64
}

// BuildReport assembles the provenance report for a plan. Stage latencies
// come from opt.StageLats if given, else from re-evaluating the plan on the
// simulator via mdl, else (mdl nil) from the plan's own search-time
// estimates, with LatencySource recording which. Building a report never
// mutates the plan.
func BuildReport(mdl *models.Model, p cluster.Platform, plan Plan, opt ReportOptions) *Report {
	if opt.Microbatches <= 0 {
		opt.Microbatches = 16
	}
	lats := opt.StageLats
	source := "simulator"
	if len(lats) != len(plan.Stages) {
		lats = nil
	}
	if lats == nil && mdl != nil {
		if l, ok := StageLatencies(mdl, plan); ok {
			lats = l
		}
	}
	if lats == nil {
		lats = plan.StageEst
		source = "estimate"
	}

	r := &Report{
		Version:       opt.Version,
		TraceID:       opt.TraceID,
		Platform:      p.Name,
		NumSegments:   0,
		Microbatches:  opt.Microbatches,
		LatencySource: source,
		EstLatency:    plan.Est,
		Provenance:    opt.Provenance,
		Search:        opt.Search,
	}
	if mdl != nil {
		r.Model = mdl.Config.Name
	}
	for i, sp := range plan.Stages {
		m := plan.Meshes[i]
		sr := StageReport{
			Index: i, Lo: sp.Lo, Hi: sp.Hi, Segments: sp.Hi - sp.Lo,
			MeshNodes: m.Nodes, MeshGPUsPerNode: m.GPUsPerNode,
			Devices: m.NumDevices(), CrossNode: m.CrossNode(),
		}
		if i < len(plan.StageEst) {
			sr.EstLatency = plan.StageEst[i]
		}
		if i < len(lats) {
			sr.Latency = lats[i]
		}
		r.NumSegments += sr.Segments
		r.Stages = append(r.Stages, sr)
	}
	r.Pipeline = pipelineReport(lats, opt.Microbatches)
	if opt.Meter != nil {
		m := opt.Meter
		r.Cost = &CostReport{
			ProfileSeconds: m.ProfileSeconds, TrainSeconds: m.TrainSeconds,
			InferSeconds: m.InferSeconds, TotalSeconds: m.Total(),
			StagesProfiled: m.StagesProfiled,
			LatencyHits:    m.CacheHits, LatencyMisses: m.CacheMisses,
			EncodingHits: m.EncHits, EncodingMisses: m.EncMisses,
		}
	}
	return r
}

func pipelineReport(lats []float64, microbatches int) PipelineReport {
	var pr PipelineReport
	for _, t := range lats {
		pr.SumStages += t
	}
	pr.Bottleneck, pr.MaxStage = pipeline.Bottleneck(lats)
	pr.Total = pipeline.Latency(lats, microbatches)
	pr.BubbleSeconds = pr.Total - pr.SumStages
	pr.BubbleShare = pipeline.BubbleFraction(lats, microbatches)
	return pr
}

// WriteJSON renders the report as indented JSON with a trailing newline —
// the canonical byte-identical-per-seed serialization.
func (r *Report) WriteJSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// SaveFile writes the canonical JSON rendering to path.
func (r *Report) SaveFile(path string) error {
	b, err := r.WriteJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// LoadReport reads a report previously written by SaveFile.
func LoadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("planner: parse report %s: %w", path, err)
	}
	return &r, nil
}

// Render returns the /statusz-style human rendering of the report. Pure
// function of the report contents — deterministic, golden-testable.
func (r *Report) Render() string {
	var b strings.Builder
	title := "plan report"
	if r.Version != "" {
		title += " · " + r.Version
	}
	fmt.Fprintf(&b, "=== %s ===\n", title)
	if r.Model != "" || r.Platform != "" {
		fmt.Fprintf(&b, "model: %-22s platform: %s\n", r.Model, r.Platform)
	}
	if r.Scenario != "" {
		fmt.Fprintf(&b, "scenario: %s\n", r.Scenario)
	}
	fmt.Fprintf(&b, "segments: %-4d microbatches: %-4d stages: %-4d latency source: %s\n",
		r.NumSegments, r.Microbatches, len(r.Stages), r.LatencySource)
	if r.TraceID != "" {
		fmt.Fprintf(&b, "trace: %s\n", r.TraceID)
	}
	if p := r.Provenance; p.Source != "" {
		fmt.Fprintf(&b, "provenance: %s", p.Source)
		if p.Fingerprint != "" {
			fmt.Fprintf(&b, " seed=%d fingerprint=%s predictors=%d sample_frac=%g",
				p.Seed, p.Fingerprint, p.Predictors, p.SampleFrac)
		}
		b.WriteString("\n")
	}
	b.WriteString("\nstages:\n")
	fmt.Fprintf(&b, "  %-3s %-9s %-6s %-7s %-5s %12s %12s\n",
		"#", "segments", "mesh", "devices", "fab", "est(s)", "lat(s)")
	for _, s := range r.Stages {
		fab := "intra"
		if s.CrossNode {
			fab = "inter"
		}
		fmt.Fprintf(&b, "  %-3d [%d,%d)%*s %dx%-4d %-7d %-5s %12.6f %12.6f\n",
			s.Index, s.Lo, s.Hi, maxInt(0, 6-digits(s.Lo)-digits(s.Hi)), "",
			s.MeshNodes, s.MeshGPUsPerNode, s.Devices, fab, s.EstLatency, s.Latency)
	}
	p := r.Pipeline
	b.WriteString("\npipeline (Eqn 4):\n")
	fmt.Fprintf(&b, "  sum stages:  %12.6f s\n", p.SumStages)
	fmt.Fprintf(&b, "  max stage:   %12.6f s (stage %d)\n", p.MaxStage, p.Bottleneck)
	fmt.Fprintf(&b, "  bubble:      %12.6f s (share %.4f)\n", p.BubbleSeconds, p.BubbleShare)
	fmt.Fprintf(&b, "  total:       %12.6f s   (search estimate: %.6f s)\n", p.Total, r.EstLatency)
	if s := r.Search; s != nil {
		b.WriteString("\nsearch:\n")
		fmt.Fprintf(&b, "  space: %d segments × %d meshes, %d devices, max stage len %d\n",
			s.Segments, s.Meshes, s.Devices, s.MaxStageLen)
		fmt.Fprintf(&b, "  lookups: %d (%d feasible, %d infeasible)\n",
			s.LatencyLookups, s.Feasible, s.Infeasible)
		fmt.Fprintf(&b, "  tmax candidates: %d   dp states: %d   dp transitions: %d   improvements: %d\n",
			s.TmaxCandidates, s.DPStates, s.DPTransitions, s.Improvements)
	}
	if c := r.Cost; c != nil {
		b.WriteString("\ncost (simulated):\n")
		fmt.Fprintf(&b, "  profile %.3f s + train %.3f s + infer %.3f s = %.3f s (%d stages profiled)\n",
			c.ProfileSeconds, c.TrainSeconds, c.InferSeconds, c.TotalSeconds, c.StagesProfiled)
		fmt.Fprintf(&b, "  latency cache: %d hits / %d misses   encoding cache: %d hits / %d misses\n",
			c.LatencyHits, c.LatencyMisses, c.EncodingHits, c.EncodingMisses)
	}
	return b.String()
}

func digits(v int) int { return len(fmt.Sprint(v)) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// StageDiff is one row of a report diff: the same stage index under the
// baseline and scenario reports.
type StageDiff struct {
	Index int `json:"index"`
	// InBase/InScenario report presence: a what-if never changes the stage
	// set, but diffs over arbitrary report files may compare plans of
	// different depth.
	InBase     bool    `json:"in_base"`
	InScenario bool    `json:"in_scenario"`
	Base       float64 `json:"base"`
	Scenario   float64 `json:"scenario"`
	Delta      float64 `json:"delta"`
}

// ReportDiff is the side-by-side latency comparison of two reports —
// typically a baseline plan and its what-if replay.
type ReportDiff struct {
	BaseLabel     string      `json:"base_label,omitempty"`
	ScenarioLabel string      `json:"scenario_label,omitempty"`
	Stages        []StageDiff `json:"stages"`
	BaseTotal     float64     `json:"base_total"`
	ScenarioTotal float64     `json:"scenario_total"`
	Delta         float64     `json:"delta"`
	// DeltaPct is the relative change in percent (0 when the base is 0).
	DeltaPct float64 `json:"delta_pct"`
}

// Diff compares two reports stage by stage (aligned by index) and on the
// Eqn-4 total.
func Diff(base, scen *Report) *ReportDiff {
	d := &ReportDiff{
		BaseLabel:     labelOf(base),
		ScenarioLabel: labelOf(scen),
		BaseTotal:     base.Pipeline.Total,
		ScenarioTotal: scen.Pipeline.Total,
	}
	d.Delta = d.ScenarioTotal - d.BaseTotal
	if d.BaseTotal != 0 {
		d.DeltaPct = 100 * d.Delta / d.BaseTotal
	}
	n := maxInt(len(base.Stages), len(scen.Stages))
	for i := 0; i < n; i++ {
		sd := StageDiff{Index: i}
		if i < len(base.Stages) {
			sd.InBase = true
			sd.Base = base.Stages[i].Latency
		}
		if i < len(scen.Stages) {
			sd.InScenario = true
			sd.Scenario = scen.Stages[i].Latency
		}
		sd.Delta = sd.Scenario - sd.Base
		d.Stages = append(d.Stages, sd)
	}
	return d
}

func labelOf(r *Report) string {
	if r.Scenario != "" {
		return r.Scenario
	}
	if r.Version != "" {
		return r.Version
	}
	return "baseline"
}

// Render returns the human rendering of the diff: one row per stage plus the
// Eqn-4 totals, deltas signed and percentages against the baseline.
func (d *ReportDiff) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== what-if diff: %s → %s ===\n", d.BaseLabel, d.ScenarioLabel)
	fmt.Fprintf(&b, "  %-5s %14s %14s %14s\n", "stage", "base(s)", "scenario(s)", "delta(s)")
	for _, s := range d.Stages {
		base, scen := fmt.Sprintf("%.6f", s.Base), fmt.Sprintf("%.6f", s.Scenario)
		if !s.InBase {
			base = "-"
		}
		if !s.InScenario {
			scen = "-"
		}
		fmt.Fprintf(&b, "  %-5d %14s %14s %+14.6f\n", s.Index, base, scen, s.Delta)
	}
	fmt.Fprintf(&b, "  %-5s %14.6f %14.6f %+14.6f (%+.2f%%)\n",
		"total", d.BaseTotal, d.ScenarioTotal, d.Delta, d.DeltaPct)
	if math.Abs(d.Delta) < 1e-15 {
		b.WriteString("  no latency change under this scenario\n")
	}
	return b.String()
}
