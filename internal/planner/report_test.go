package planner

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"predtop/internal/cluster"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenReport builds the fixed report the golden tests pin: a deterministic
// search over the synthetic latency source with every provenance block
// populated from constants.
func goldenReport(t *testing.T) *Report {
	t.Helper()
	p := cluster.Platform2()
	var stats SearchStats
	plan, ok := Optimize(6, p, syntheticLatency, Options{Microbatches: 8, Stats: &stats})
	if !ok {
		t.Fatal("no plan")
	}
	lats := make([]float64, len(plan.Stages))
	for i, sp := range plan.Stages {
		lats[i], _ = syntheticLatency(sp, plan.Meshes[i])
	}
	return BuildReport(nil, p, plan, ReportOptions{
		Version:      "PredTOP-Tran",
		TraceID:      "0123456789abcdef",
		Microbatches: 8,
		StageLats:    lats,
		Provenance: ProviderInfo{
			Source: "PredTOP-Tran", Kind: "PredTOP-Tran", Seed: 1,
			Fingerprint: "00000000deadbeef", Predictors: 9, SampleFrac: 0.15,
		},
		Search: &stats,
		Meter: &Meter{
			ProfileSeconds: 1.5, TrainSeconds: 2.25, InferSeconds: 0.125,
			StagesProfiled: 27, CacheHits: 40, CacheMisses: 33,
			EncHits: 12, EncMisses: 21, EncEntries: 21,
			RealSeconds: 99.9, // must NOT appear anywhere in the report
		},
	})
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestReportGoldenJSON(t *testing.T) {
	r := goldenReport(t)
	b, err := r.WriteJSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "plan_report.json", b)

	// Same seed, same inputs → byte-identical JSON (the plan-smoke contract).
	b2, err := goldenReport(t).WriteJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("repeated report build not byte-identical")
	}
	if strings.Contains(string(b), "99.9") {
		t.Fatal("wall-clock RealSeconds leaked into the report")
	}
}

func TestReportGoldenText(t *testing.T) {
	checkGolden(t, "plan_report.txt", []byte(goldenReport(t).Render()))
}

func TestReportRoundTrip(t *testing.T) {
	r := goldenReport(t)
	path := filepath.Join(t.TempDir(), "r.json")
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := r.WriteJSON()
	b2, _ := back.WriteJSON()
	if !bytes.Equal(b1, b2) {
		t.Fatal("report did not round-trip through SaveFile/LoadReport")
	}
}

func TestReportEstimateFallback(t *testing.T) {
	plan, ok := Optimize(4, cluster.Platform1(), syntheticLatency, Options{Microbatches: 8})
	if !ok {
		t.Fatal("no plan")
	}
	r := BuildReport(nil, cluster.Platform1(), plan, ReportOptions{Microbatches: 8})
	if r.LatencySource != "estimate" {
		t.Fatalf("no model and no StageLats should fall back to estimates, got %q", r.LatencySource)
	}
	for i, s := range r.Stages {
		if s.Latency != plan.StageEst[i] {
			t.Fatalf("stage %d latency %v != estimate %v", i, s.Latency, plan.StageEst[i])
		}
	}
	if r.NumSegments != 4 || r.Microbatches != 8 {
		t.Fatalf("report header wrong: %+v", r)
	}
}

func TestDiffRender(t *testing.T) {
	base := goldenReport(t)
	scen := goldenReport(t)
	scen.Scenario = "internode-bw=x4"
	for i := range scen.Stages {
		scen.Stages[i].Latency *= 0.5
	}
	scen.Pipeline = pipelineReport(stageLatsOf(scen), scen.Microbatches)

	d := Diff(base, scen)
	if d.ScenarioTotal >= d.BaseTotal || d.Delta >= 0 {
		t.Fatalf("halved stages should reduce total: %+v", d)
	}
	if len(d.Stages) != len(base.Stages) {
		t.Fatalf("diff rows %d != stages %d", len(d.Stages), len(base.Stages))
	}
	out := d.Render()
	for _, want := range []string{"what-if diff", "internode-bw=x4", "total", "%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff rendering missing %q:\n%s", want, out)
		}
	}

	// Identity diff: zero delta, rendered as "no latency change".
	same := Diff(base, goldenReport(t))
	if same.Delta != 0 || same.DeltaPct != 0 {
		t.Fatalf("identity diff not zero: %+v", same)
	}
	if !strings.Contains(same.Render(), "no latency change") {
		t.Fatal("identity diff not flagged")
	}
}

func TestDiffUnequalStageCounts(t *testing.T) {
	base := goldenReport(t)
	scen := goldenReport(t)
	scen.Stages = scen.Stages[:1]
	d := Diff(base, scen)
	if len(d.Stages) != len(base.Stages) {
		t.Fatalf("diff must cover the longer plan: %d", len(d.Stages))
	}
	last := d.Stages[len(d.Stages)-1]
	if !last.InBase || last.InScenario {
		t.Fatalf("presence flags wrong: %+v", last)
	}
	if !strings.Contains(d.Render(), "-") {
		t.Fatal("missing-stage marker absent from rendering")
	}
}

func stageLatsOf(r *Report) []float64 {
	lats := make([]float64, len(r.Stages))
	for i, s := range r.Stages {
		lats[i] = s.Latency
	}
	return lats
}
