package planner

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"predtop/internal/cluster"
	"predtop/internal/models"
)

// Perturbation describes a counterfactual scenario for WhatIf: an absolute
// microbatch override plus multiplicative scalings of the cluster's
// interconnects, or a wholesale platform swap. The zero value perturbs
// nothing.
type Perturbation struct {
	// Microbatches overrides B in Eqn 4 when positive.
	Microbatches int
	// Platform, when non-nil, replaces the baseline platform entirely
	// (interconnect scalings below then apply to it).
	Platform *cluster.Platform
	// IntraNodeBW / InterNodeBW / InterNodeLatency are multiplicative scale
	// factors applied when positive: 2.0 doubles the bandwidth (or latency),
	// 1.0 is identity. Non-positive means "leave unchanged".
	IntraNodeBW      float64
	InterNodeBW      float64
	InterNodeLatency float64
}

// IsZero reports whether the perturbation changes nothing.
func (pt Perturbation) IsZero() bool {
	return pt.Microbatches <= 0 && pt.Platform == nil &&
		pt.IntraNodeBW <= 0 && pt.InterNodeBW <= 0 && pt.InterNodeLatency <= 0
}

// Apply returns the perturbed platform.
func (pt Perturbation) Apply(p cluster.Platform) cluster.Platform {
	if pt.Platform != nil {
		p = *pt.Platform
	}
	if pt.IntraNodeBW > 0 {
		p.IntraNode.BandwidthGBs *= pt.IntraNodeBW
	}
	if pt.InterNodeBW > 0 {
		p.InterNode.BandwidthGBs *= pt.InterNodeBW
	}
	if pt.InterNodeLatency > 0 {
		p.InterNode.LatencyUS *= pt.InterNodeLatency
	}
	return p
}

// String renders the canonical perturbation description used as the
// Report.Scenario label (keys in fixed order, "unperturbed" for the zero
// value).
func (pt Perturbation) String() string {
	var parts []string
	if pt.Platform != nil {
		parts = append(parts, "platform="+pt.Platform.Name)
	}
	if pt.Microbatches > 0 {
		parts = append(parts, "microbatches="+strconv.Itoa(pt.Microbatches))
	}
	if pt.IntraNodeBW > 0 {
		parts = append(parts, fmt.Sprintf("intranode-bw=x%g", pt.IntraNodeBW))
	}
	if pt.InterNodeBW > 0 {
		parts = append(parts, fmt.Sprintf("internode-bw=x%g", pt.InterNodeBW))
	}
	if pt.InterNodeLatency > 0 {
		parts = append(parts, fmt.Sprintf("internode-lat=x%g", pt.InterNodeLatency))
	}
	if len(parts) == 0 {
		return "unperturbed"
	}
	return strings.Join(parts, ",")
}

// whatIfKeys maps the -whatif flag's key names to setters, so the parser and
// its error message stay in sync.
var whatIfKeys = map[string]func(*Perturbation, string) error{
	"microbatches": parseMicrobatches,
	"b":            parseMicrobatches,
	"platform": func(pt *Perturbation, v string) error {
		var p cluster.Platform
		switch v {
		case "1":
			p = cluster.Platform1()
		case "2":
			p = cluster.Platform2()
		default:
			return fmt.Errorf("want 1 or 2, got %q", v)
		}
		pt.Platform = &p
		return nil
	},
	"intranode-bw":  func(pt *Perturbation, v string) error { return parseScale(&pt.IntraNodeBW, v) },
	"internode-bw":  func(pt *Perturbation, v string) error { return parseScale(&pt.InterNodeBW, v) },
	"internode-lat": func(pt *Perturbation, v string) error { return parseScale(&pt.InterNodeLatency, v) },
}

func parseMicrobatches(pt *Perturbation, v string) error {
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return fmt.Errorf("want a positive integer, got %q", v)
	}
	pt.Microbatches = n
	return nil
}

func parseScale(dst *float64, v string) error {
	f, err := strconv.ParseFloat(strings.TrimPrefix(v, "x"), 64)
	if err != nil || f <= 0 {
		return fmt.Errorf("want a positive scale factor, got %q", v)
	}
	*dst = f
	return nil
}

// ParsePerturbation parses the -whatif flag syntax: comma-separated
// key=value pairs, e.g. "microbatches=32,internode-bw=x4". Valid keys:
// microbatches (alias b, positive int), platform (1 or 2), intranode-bw /
// internode-bw / internode-lat (positive scale factors, optional "x"
// prefix). An empty string is the zero perturbation.
func ParsePerturbation(s string) (Perturbation, error) {
	var pt Perturbation
	if strings.TrimSpace(s) == "" {
		return pt, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return Perturbation{}, fmt.Errorf("planner: perturbation %q: want key=value", part)
		}
		set, ok := whatIfKeys[strings.ToLower(kv[0])]
		if !ok {
			return Perturbation{}, fmt.Errorf("planner: unknown perturbation key %q (valid: %s)",
				kv[0], strings.Join(sortedWhatIfKeys(), ", "))
		}
		if err := set(&pt, kv[1]); err != nil {
			return Perturbation{}, fmt.Errorf("planner: perturbation %s: %w", kv[0], err)
		}
	}
	return pt, nil
}

func sortedWhatIfKeys() []string {
	keys := make([]string, 0, len(whatIfKeys))
	for k := range whatIfKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WhatIf replays a cached plan against a perturbed cluster — Daydream's
// question, answered without re-search: keep the plan's stage partition and
// submesh shapes fixed, rebind each submesh to the perturbed platform,
// re-evaluate every stage's optimal intra-op latency on the simulator, and
// recompose Eqn 4 at the (possibly overridden) microbatch count. The
// returned report carries the perturbation as its Scenario label, ready for
// Diff against the baseline report. ok is false when a stage no longer fits
// (e.g. the swapped platform has less memory) or the perturbed platform
// cannot host a stage's submesh shape.
func WhatIf(mdl *models.Model, base cluster.Platform, plan Plan, microbatches int, pt Perturbation, opt ReportOptions) (*Report, bool) {
	perturbed := pt.Apply(base)
	if microbatches <= 0 {
		microbatches = 16
	}
	if pt.Microbatches > 0 {
		microbatches = pt.Microbatches
	}

	replayed := Plan{Est: plan.Est, StageEst: plan.StageEst, Stages: plan.Stages}
	lats := make([]float64, len(plan.Stages))
	for i, sp := range plan.Stages {
		m := plan.Meshes[i]
		if m.Nodes > perturbed.Nodes || m.GPUsPerNode > perturbed.GPUsPerNode {
			return nil, false
		}
		mesh := cluster.Mesh{Index: m.Index, Platform: perturbed, Nodes: m.Nodes, GPUsPerNode: m.GPUsPerNode}
		replayed.Meshes = append(replayed.Meshes, mesh)
		t, ok := TrueStageLatency(mdl, sp, mesh)
		if !ok {
			return nil, false
		}
		lats[i] = t
	}

	opt.Microbatches = microbatches
	opt.StageLats = lats
	r := BuildReport(mdl, perturbed, replayed, opt)
	r.Scenario = pt.String()
	return r, true
}
