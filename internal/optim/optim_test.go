package optim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"predtop/internal/ag"
	"predtop/internal/tensor"
)

// TestAdamConvergesOnQuadratic checks Adam minimizes ‖w − target‖².
func TestAdamConvergesOnQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := ag.NewParam("w", tensor.Randn(rng, 3, 3, 1))
	target := tensor.Randn(rng, 3, 3, 1)
	opt := NewAdam([]*ag.Param{w})
	for step := 0; step < 800; step++ {
		ctx := ag.NewContext()
		loss := ctx.MSELoss(ctx.Param(w), target)
		ctx.Backward(loss)
		opt.Step(0.05)
	}
	if !tensor.AllClose(w.V, target, 1e-2) {
		t.Fatalf("Adam did not converge: w=%v target=%v", w.V, target)
	}
	if opt.StepCount() != 800 {
		t.Fatalf("step count %d", opt.StepCount())
	}
}

// TestAdamLearnsLinearRegression fits y = X·w* from noisy-free samples.
func TestAdamLearnsLinearRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	wTrue := tensor.Randn(rng, 4, 1, 1)
	x := tensor.Randn(rng, 32, 4, 1)
	y := tensor.MatMul(x, wTrue)
	w := ag.NewParam("w", tensor.New(4, 1))
	opt := NewAdam([]*ag.Param{w})
	for epoch := 0; epoch < 400; epoch++ {
		ctx := ag.NewContext()
		pred := ctx.MatMul(ctx.Const(x), ctx.Param(w))
		ctx.Backward(ctx.MSELoss(pred, y))
		opt.Step(CosineDecay(0.05, epoch, 400))
	}
	if !tensor.AllClose(w.V, wTrue, 5e-2) {
		t.Fatalf("regression failed: w=%v wTrue=%v", w.V, wTrue)
	}
}

func TestCosineDecaySchedule(t *testing.T) {
	base := 0.001
	if got := CosineDecay(base, 0, 500); math.Abs(got-base) > 1e-15 {
		t.Fatalf("epoch 0: %g", got)
	}
	if got := CosineDecay(base, 499, 500); math.Abs(got) > 1e-12 {
		t.Fatalf("last epoch should be ~0: %g", got)
	}
	if got := CosineDecay(base, 600, 500); got != 0 {
		t.Fatalf("past-end should be 0: %g", got)
	}
	// Monotone non-increasing.
	prev := math.Inf(1)
	for e := 0; e < 500; e++ {
		v := CosineDecay(base, e, 500)
		if v > prev+1e-15 {
			t.Fatalf("decay not monotone at epoch %d", e)
		}
		prev = v
	}
}

func TestCosineDecayProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}
	f := func(e uint8, n uint8) bool {
		total := int(n)%100 + 2
		epoch := int(e) % total
		v := CosineDecay(0.001, epoch, total)
		return v >= 0 && v <= 0.001
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestClipGradNorm(t *testing.T) {
	w := ag.NewParam("w", tensor.New(1, 4))
	copy(w.Grad.Data, []float64{3, 4, 0, 0}) // norm 5
	norm := ClipGradNorm([]*ag.Param{w}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm %g", norm)
	}
	post := 0.0
	for _, g := range w.Grad.Data {
		post += g * g
	}
	if math.Abs(math.Sqrt(post)-1) > 1e-12 {
		t.Fatalf("post-clip norm %g", math.Sqrt(post))
	}
	// Under the limit: unchanged.
	copy(w.Grad.Data, []float64{0.1, 0, 0, 0})
	ClipGradNorm([]*ag.Param{w}, 1)
	if w.Grad.Data[0] != 0.1 {
		t.Fatal("clip changed an in-bounds gradient")
	}
}

func TestScaleGrads(t *testing.T) {
	w := ag.NewParam("w", tensor.New(1, 2))
	copy(w.Grad.Data, []float64{2, 4})
	ScaleGrads([]*ag.Param{w}, 0.5)
	if w.Grad.Data[0] != 1 || w.Grad.Data[1] != 2 {
		t.Fatalf("scaled grads %v", w.Grad.Data)
	}
}
