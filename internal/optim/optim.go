// Package optim implements the Adam optimizer and the cosine learning-rate
// decay schedule used to train the latency predictors (paper §IV-B6).
package optim

import (
	"math"

	"predtop/internal/ag"
	"predtop/internal/parallel"
	"predtop/internal/tensor"
)

// Adam implements the Adam optimizer with the paper's defaults
// (β1 = 0.9, β2 = 0.999, ε = 1e-8).
type Adam struct {
	Params []*ag.Param
	Beta1  float64
	Beta2  float64
	Eps    float64

	step int
	m, v []*tensor.Tensor
}

// NewAdam builds an Adam optimizer over params.
func NewAdam(params []*ag.Param) *Adam {
	a := &Adam{Params: params, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	a.m = make([]*tensor.Tensor, len(params))
	a.v = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		a.m[i] = tensor.New(p.V.R, p.V.C)
		a.v[i] = tensor.New(p.V.R, p.V.C)
	}
	return a
}

// Step applies one Adam update with learning rate lr using the gradients
// accumulated in each parameter, then zeroes them.
func (a *Adam) Step(lr float64) {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.Params {
		m, v, g := a.m[i], a.v[i], p.Grad
		for j := range p.V.Data {
			gj := g.Data[j]
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*gj
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*gj*gj
			mhat := m.Data[j] / bc1
			vhat := v.Data[j] / bc2
			p.V.Data[j] -= lr * mhat / (math.Sqrt(vhat) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// StepCount returns the number of updates applied so far.
func (a *Adam) StepCount() int { return a.step }

// ReduceGrads folds per-shard gradient buffers into each Param.Grad with a
// fixed-shape pairwise reduction tree over the buffer order. The summation
// order is a pure function of len(bufs) — which data-parallel training
// derives from the minibatch alone — so the reduced gradients are bitwise
// identical no matter how many workers filled the buffers or how they were
// scheduled. The buffers are used as reduction scratch; zero them before
// the next accumulation pass.
func ReduceGrads(params []*ag.Param, bufs []*ag.GradBuffer) {
	if len(bufs) == 0 {
		return
	}
	shards := make([]*tensor.Tensor, len(bufs))
	for pi, p := range params {
		for bi, b := range bufs {
			shards[bi] = b.Grads()[pi]
		}
		total := parallel.TreeReduce(shards, func(a, b *tensor.Tensor) *tensor.Tensor {
			tensor.AddInPlace(a, b)
			return a
		})
		tensor.AddInPlace(p.Grad, total)
	}
}

// ClipGradNorm scales all gradients so their global L2 norm is at most max.
// It returns the pre-clip norm.
func ClipGradNorm(params []*ag.Param, max float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > max && norm > 0 {
		s := max / norm
		for _, p := range params {
			for j := range p.Grad.Data {
				p.Grad.Data[j] *= s
			}
		}
	}
	return norm
}

// ScaleGrads multiplies every gradient by s (e.g. 1/batchSize after
// accumulating per-example gradients).
func ScaleGrads(params []*ag.Param, s float64) {
	for _, p := range params {
		for j := range p.Grad.Data {
			p.Grad.Data[j] *= s
		}
	}
}

// CosineDecay returns the learning rate for the given epoch under cosine
// annealing from base at epoch 0 to 0 at totalEpochs (paper §IV-B6: base
// 0.001 decaying to 0 over 500 epochs).
func CosineDecay(base float64, epoch, totalEpochs int) float64 {
	if totalEpochs <= 1 {
		return base
	}
	if epoch >= totalEpochs {
		return 0
	}
	frac := float64(epoch) / float64(totalEpochs-1)
	return base * 0.5 * (1 + math.Cos(math.Pi*frac))
}
