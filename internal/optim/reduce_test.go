package optim

import (
	"math"
	"math/rand"
	"testing"

	"predtop/internal/ag"
	"predtop/internal/parallel"
	"predtop/internal/tensor"
)

// linearProblem is a tiny two-parameter regression used to exercise the
// sharded-gradient path: loss_k = MSE(x_k·W + b, y_k) per sample.
type linearProblem struct {
	w, b   *ag.Param
	xs, ys []*tensor.Tensor
}

func newLinearProblem(seed int64, samples int) *linearProblem {
	rng := rand.New(rand.NewSource(seed))
	randT := func(r, c int) *tensor.Tensor {
		out := tensor.New(r, c)
		for i := range out.Data {
			out.Data[i] = rng.NormFloat64()
		}
		return out
	}
	p := &linearProblem{
		w: ag.NewParam("w", randT(2, 3)),
		b: ag.NewParam("b", randT(1, 3)),
	}
	for k := 0; k < samples; k++ {
		p.xs = append(p.xs, randT(4, 2))
		p.ys = append(p.ys, randT(4, 3))
	}
	return p
}

func (p *linearProblem) params() []*ag.Param { return []*ag.Param{p.w, p.b} }

func (p *linearProblem) sampleLoss(ctx *ag.Context, k int) *ag.Node {
	pred := ctx.AddBias(ctx.MatMul(ctx.Const(p.xs[k]), ctx.Param(p.w)), ctx.Param(p.b))
	return ctx.MSELoss(pred, p.ys[k])
}

func (p *linearProblem) totalLoss(ctx *ag.Context) *ag.Node {
	var sum *ag.Node
	for k := range p.xs {
		l := p.sampleLoss(ctx, k)
		if sum == nil {
			sum = l
		} else {
			sum = ctx.Add(sum, l)
		}
	}
	return sum
}

// shardedGrads runs one backward pass per sample on its own buffered tape
// (concurrently, like the training loop) and reduces into Param.Grad.
func (p *linearProblem) shardedGrads(workers int) {
	params := p.params()
	zeroGrads(params)
	bufs := make([]*ag.GradBuffer, len(p.xs))
	for k := range bufs {
		bufs[k] = ag.NewGradBuffer(params)
	}
	parallel.ForLimit(len(p.xs), workers, func(k int) {
		ctx := ag.NewContextInto(bufs[k])
		ctx.Backward(p.sampleLoss(ctx, k))
	})
	ReduceGrads(params, bufs)
}

// TestReduceGradsMatchesSingleTape compares the sharded accumulation path
// (per-sample buffered tapes + ReduceGrads) against one monolithic tape
// summing all sample losses. The per-sample loss graphs are identical in
// both schemes, so the only float-ordering freedom is the reduction tree;
// the comparison tolerance is a few ULP.
func TestReduceGradsMatchesSingleTape(t *testing.T) {
	for _, samples := range []int{1, 2, 5, 8} {
		p := newLinearProblem(11, samples)
		params := p.params()

		zeroGrads(params)
		ctx := ag.NewContext()
		ctx.Backward(p.totalLoss(ctx))
		want := make([][]float64, len(params))
		for i, pr := range params {
			want[i] = pr.Grad.Clone().Data
		}

		for _, workers := range []int{1, 4} {
			p.shardedGrads(workers)
			for i, pr := range params {
				for j, g := range pr.Grad.Data {
					if diff := math.Abs(g - want[i][j]); diff > 1e-12*(1+math.Abs(want[i][j])) {
						t.Fatalf("samples=%d workers=%d %s[%d]: sharded %v single %v",
							samples, workers, pr.Name, j, g, want[i][j])
					}
				}
			}
		}
	}
}

// TestShardedGradsDeterministicAcrossWorkers demands bitwise identity, not
// tolerance: the same shard set reduced under different worker counts must
// produce the exact same bits in Param.Grad.
func TestShardedGradsDeterministicAcrossWorkers(t *testing.T) {
	p := newLinearProblem(7, 6)
	params := p.params()

	p.shardedGrads(1)
	want := make([][]float64, len(params))
	for i, pr := range params {
		want[i] = pr.Grad.Clone().Data
	}
	for _, workers := range []int{2, 3, 8} {
		p.shardedGrads(workers)
		for i, pr := range params {
			for j, g := range pr.Grad.Data {
				if math.Float64bits(g) != math.Float64bits(want[i][j]) {
					t.Fatalf("workers=%d %s[%d]: %x != %x", workers, pr.Name, j,
						math.Float64bits(g), math.Float64bits(want[i][j]))
				}
			}
		}
	}
}

// TestShardedGradsAgainstFiniteDifferences validates the sharded path end to
// end against numeric gradients of the summed loss.
func TestShardedGradsAgainstFiniteDifferences(t *testing.T) {
	p := newLinearProblem(3, 4)
	params := p.params()

	lossValue := func() float64 {
		ctx := ag.NewContext()
		return p.totalLoss(ctx).Value().At(0, 0)
	}
	shardedSnapshot := func() map[*ag.Param]*tensor.Tensor {
		p.shardedGrads(4)
		out := make(map[*ag.Param]*tensor.Tensor, len(params))
		for _, pr := range params {
			out[pr] = pr.Grad.Clone()
		}
		return out
	}
	if err := ag.GradCheck(params, lossValue, shardedSnapshot, 1e-6, 1e-6); err != nil {
		t.Fatal(err)
	}
}

// TestReduceGradsAccumulates checks ReduceGrads adds on top of existing
// Param.Grad contents instead of overwriting them (gradient accumulation
// across micro-batches).
func TestReduceGradsAccumulates(t *testing.T) {
	p := newLinearProblem(5, 2)
	params := p.params()
	zeroGrads(params)
	for _, pr := range params {
		for j := range pr.Grad.Data {
			pr.Grad.Data[j] = 1
		}
	}
	bufs := []*ag.GradBuffer{ag.NewGradBuffer(params)}
	ctx := ag.NewContextInto(bufs[0])
	ctx.Backward(p.sampleLoss(ctx, 0))
	ReduceGrads(params, bufs)

	p2 := newLinearProblem(5, 2) // identical seed → identical problem
	params2 := p2.params()
	zeroGrads(params2)
	ctx2 := ag.NewContext()
	ctx2.Backward(p2.sampleLoss(ctx2, 0))

	for i, pr := range params {
		for j, g := range pr.Grad.Data {
			want := params2[i].Grad.Data[j] + 1
			if math.Abs(g-want) > 1e-15*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: got %v want %v", pr.Name, j, g, want)
			}
		}
	}
}

func zeroGrads(params []*ag.Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}
