package tensor

// Arena is a generation-based free-list allocator for Tensor buffers. The
// training and prediction hot paths allocate thousands of short-lived
// intermediates per forward+backward pass; drawing them from an arena and
// recycling the whole generation with one Reset per step removes that load
// from the garbage collector entirely — steady state is zero allocations.
//
// Contract:
//
//   - Get/GetUninit hand out tensors owned by the arena. They remain valid
//     until the next Reset, at which point their buffers are recycled and
//     MUST NOT be referenced again.
//   - Anything that escapes the generation — trained weights, gradients
//     accumulated across steps, results returned to callers — must be
//     copied out with Clone (which always heap-allocates) or exempted with
//     Pin, which permanently removes the tensor from recycling.
//   - A nil *Arena is valid and simply falls back to plain allocation, so
//     code paths can be written once and run with or without reuse.
//   - An Arena is not safe for concurrent use; give each worker goroutine
//     its own.
//
// Buffers are bucketed by power-of-two size class, so a recycled buffer
// serves any request up to its capacity and steady-state reuse is exact
// once the arena has seen its largest graph.
type Arena struct {
	free map[int][]*Tensor // size class (cap of Data) → recycled tensors
	used []*Tensor         // tensors handed out this generation
}

// arenaMinClass is the smallest bucket in float64s; tiny tensors (scalars,
// bias rows) round up to it so they all share one free list.
const arenaMinClass = 64

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{free: make(map[int][]*Tensor)}
}

// sizeClass rounds n up to the next power-of-two bucket.
func sizeClass(n int) int {
	c := arenaMinClass
	for c < n {
		c <<= 1
	}
	return c
}

// Get returns a zero-filled r×c tensor drawn from the arena (or freshly
// allocated on a nil arena / empty free list).
func (a *Arena) Get(r, c int) *Tensor {
	t := a.GetUninit(r, c)
	if a != nil {
		clear(t.Data)
	}
	return t
}

// GetUninit is Get without the zero fill, for callers that overwrite every
// element. The contents of a recycled buffer are unspecified.
func (a *Arena) GetUninit(r, c int) *Tensor {
	if a == nil {
		return New(r, c)
	}
	if r < 0 || c < 0 {
		panic("tensor: negative arena shape")
	}
	n := r * c
	cls := sizeClass(n)
	if l := a.free[cls]; len(l) > 0 {
		t := l[len(l)-1]
		l[len(l)-1] = nil
		a.free[cls] = l[:len(l)-1]
		t.R, t.C = r, c
		t.Data = t.Data[:n]
		a.used = append(a.used, t)
		return t
	}
	t := &Tensor{R: r, C: c, Data: make([]float64, n, cls)}
	a.used = append(a.used, t)
	return t
}

// Pin exempts t — which must have come from this arena's current
// generation — from recycling: Reset releases it to the garbage collector
// instead of the free list, so no later Get can alias its buffer. Returns t
// for chaining. No-op on a nil arena or a tensor the arena does not own.
func (a *Arena) Pin(t *Tensor) *Tensor {
	if a != nil {
		t.pinned = true
	}
	return t
}

// Reset recycles every unpinned tensor handed out since the previous Reset.
// All of them become invalid; pinned tensors stay live and untouched.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	for i, t := range a.used {
		a.used[i] = nil
		if t.pinned {
			continue
		}
		cls := cap(t.Data)
		a.free[cls] = append(a.free[cls], t)
	}
	a.used = a.used[:0]
}
