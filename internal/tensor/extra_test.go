package tensor

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestConstructors(t *testing.T) {
	if f := Full(2, 3, 7); f.At(1, 2) != 7 || f.Size() != 6 {
		t.Fatalf("Full: %v", f)
	}
	e := Eye(3)
	if e.At(0, 0) != 1 || e.At(0, 1) != 0 || e.Sum() != 3 {
		t.Fatalf("Eye: %v", e)
	}
	rows := FromRows([][]float64{{1, 2}, {3, 4}})
	if rows.At(1, 0) != 3 {
		t.Fatalf("FromRows: %v", rows)
	}
	rng := rand.New(rand.NewSource(1))
	u := RandUniform(rng, 10, 10, -0.5, 0.5)
	for _, v := range u.Data {
		if v < -0.5 || v > 0.5 {
			t.Fatalf("RandUniform out of range: %v", v)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := Full(2, 2, 1)
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestZeroFillMaxAbs(t *testing.T) {
	a := Full(2, 2, -3)
	if a.MaxAbs() != 3 {
		t.Fatalf("MaxAbs %v", a.MaxAbs())
	}
	a.Fill(2)
	if a.Sum() != 8 {
		t.Fatal("Fill")
	}
	a.Zero()
	if a.MaxAbs() != 0 {
		t.Fatal("Zero")
	}
}

func TestStringRendering(t *testing.T) {
	small := Full(2, 2, 1)
	if !strings.Contains(small.String(), "2x2") {
		t.Fatalf("String: %q", small.String())
	}
	big := New(100, 100)
	if strings.Count(big.String(), "\n") > 0 {
		t.Fatal("large tensors should not dump contents")
	}
}

func TestScaleMapLinearity(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(2))}
	f := func(seed int64, s float64) bool {
		if s != s || s > 1e6 || s < -1e6 {
			s = 2
		}
		rng := rand.New(rand.NewSource(seed))
		a := Randn(rng, 3, 4, 1)
		left := Scale(Add(a, a), s)
		right := Add(Scale(a, s), Scale(a, s))
		return AllClose(left, right, 1e-9)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestMatMulDistributesOverAdd: A·(B+C) == A·B + A·C.
func TestMatMulDistributesOverAdd(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(3))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := Randn(rng, m, k, 1)
		b := Randn(rng, k, n, 1)
		c := Randn(rng, k, n, 1)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		return AllClose(left, right, 1e-9)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTransposeMatMul: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestTransposeMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Randn(rng, 5, 7, 1)
	b := Randn(rng, 7, 4, 1)
	left := MatMul(a, b).Transpose()
	right := MatMul(b.Transpose(), a.Transpose())
	if !AllClose(left, right, 1e-9) {
		t.Fatal("(AB)ᵀ != BᵀAᵀ")
	}
}

func TestSumRowsColsConsistent(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(5))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Randn(rng, 1+rng.Intn(8), 1+rng.Intn(8), 1)
		return abs(SumRows(a).Sum()-a.Sum()) < 1e-9 && abs(SumCols(a).Sum()-a.Sum()) < 1e-9
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
