package tensor

import "os"

// simdKernels gates the AVX2 row kernels. It defaults to hardware support
// (overridable with PREDTOP_SIMD=off) and exists as a mutable flag so the
// determinism tests can run the identical workload with and without SIMD and
// assert bitwise equality — the kernels are constructed to make that hold
// (see simd_amd64.go).
var simdKernels = initSIMD()

func initSIMD() bool {
	if os.Getenv("PREDTOP_SIMD") == "off" {
		return false
	}
	return simdSupported()
}

// SIMDAvailable reports whether this CPU supports the AVX2 kernels,
// regardless of whether they are currently enabled.
func SIMDAvailable() bool { return simdSupported() }

// SIMDEnabled reports whether the AVX2 kernels are in use.
func SIMDEnabled() bool { return simdKernels }

// SetSIMD enables or disables the AVX2 kernels and returns the previous
// setting. Enabling is a no-op on hardware without AVX2. Results are bitwise
// identical either way; this exists for verification (the determinism tests
// cross-check the two paths) and benchmarking, not tuning. Not safe to call
// concurrently with running kernels.
func SetSIMD(on bool) bool {
	prev := simdKernels
	simdKernels = on && simdSupported()
	return prev
}
