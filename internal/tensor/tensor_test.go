package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randTensor(rng *rand.Rand, r, c int) *Tensor {
	return Randn(rng, r, c, 1)
}

// naiveMatMul is the reference triple loop used to validate the blocked path.
func naiveMatMul(a, b *Tensor) *Tensor {
	out := New(a.R, b.C)
	for i := 0; i < a.R; i++ {
		for j := 0; j < b.C; j++ {
			s := 0.0
			for k := 0; k < a.C; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 7, 3}, {17, 33, 9}, {64, 16, 64}} {
		a := randTensor(rng, dims[0], dims[1])
		b := randTensor(rng, dims[1], dims[2])
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if !AllClose(got, want, 1e-9) {
			t.Fatalf("MatMul %v mismatch", dims)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randTensor(rng, 6, 6)
	if !AllClose(MatMul(a, Eye(6)), a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if !AllClose(MatMul(Eye(6), a), a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulBT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randTensor(rng, 5, 8)
	b := randTensor(rng, 7, 8)
	got := MatMulBT(a, b)
	want := MatMul(a, b.Transpose())
	if !AllClose(got, want, 1e-9) {
		t.Fatal("MatMulBT != A·Bᵀ")
	}
}

func TestMatMulAT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randTensor(rng, 9, 4)
	b := randTensor(rng, 9, 6)
	got := MatMulAT(a, b)
	want := MatMul(a.Transpose(), b)
	if !AllClose(got, want, 1e-9) {
		t.Fatal("MatMulAT != Aᵀ·B")
	}
}

func TestTransposeInvolution(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(5))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randTensor(rng, 1+rng.Intn(10), 1+rng.Intn(10))
		return AllClose(a.Transpose().Transpose(), a, 0)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulAssociativityWithVectors(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(6))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		x := randTensor(rng, n, 1)
		left := MatMul(MatMul(a, b), x)
		right := MatMul(a, MatMul(b, x))
		return AllClose(left, right, 1e-8)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestElementwiseOpsAndBroadcast(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	if got := Add(a, b); !AllClose(got, FromRows([][]float64{{6, 8}, {10, 12}}), 0) {
		t.Fatalf("Add: %v", got)
	}
	if got := Mul(a, b); !AllClose(got, FromRows([][]float64{{5, 12}, {21, 32}}), 0) {
		t.Fatalf("Mul: %v", got)
	}
	if got := Sub(b, a); !AllClose(got, Full(2, 2, 4), 0) {
		t.Fatalf("Sub: %v", got)
	}
	v := FromSlice(1, 2, []float64{10, 20})
	if got := AddRowVec(a, v); !AllClose(got, FromRows([][]float64{{11, 22}, {13, 24}}), 0) {
		t.Fatalf("AddRowVec: %v", got)
	}
}

func TestAddOuter(t *testing.T) {
	a := FromSlice(3, 1, []float64{1, 2, 3})
	b := FromSlice(2, 1, []float64{10, 20})
	got := AddOuter(a, b)
	want := FromRows([][]float64{{11, 21}, {12, 22}, {13, 23}})
	if !AllClose(got, want, 0) {
		t.Fatalf("AddOuter: %v", got)
	}
}

func TestSumRowsCols(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if got := SumRows(a); !AllClose(got, FromSlice(1, 3, []float64{5, 7, 9}), 0) {
		t.Fatalf("SumRows: %v", got)
	}
	if got := SumCols(a); !AllClose(got, FromSlice(2, 1, []float64{6, 15}), 0) {
		t.Fatalf("SumCols: %v", got)
	}
	if a.Sum() != 21 {
		t.Fatalf("Sum: %v", a.Sum())
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromRows([][]float64{{0, 0, 0}, {1, 2, 3}})
	s := SoftmaxRows(a, nil)
	for i := 0; i < s.R; i++ {
		sum := 0.0
		for _, v := range s.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d does not sum to 1: %v", i, sum)
		}
	}
	if math.Abs(s.At(0, 0)-1.0/3) > 1e-12 {
		t.Fatal("uniform logits should give uniform softmax")
	}
	if !(s.At(1, 2) > s.At(1, 1) && s.At(1, 1) > s.At(1, 0)) {
		t.Fatal("softmax not monotone in logits")
	}
}

func TestSoftmaxRowsMask(t *testing.T) {
	inf := math.Inf(-1)
	a := FromRows([][]float64{{1, 5, 1}, {1, 1, 1}})
	mask := FromRows([][]float64{{0, inf, 0}, {inf, inf, inf}})
	s := SoftmaxRows(a, mask)
	if s.At(0, 1) != 0 {
		t.Fatal("masked position must be zero")
	}
	if math.Abs(s.At(0, 0)-0.5) > 1e-12 || math.Abs(s.At(0, 2)-0.5) > 1e-12 {
		t.Fatalf("unmasked positions should split evenly: %v", s.Row(0))
	}
	for _, v := range s.Row(1) {
		if v != 0 {
			t.Fatal("fully masked row must be all zero, not NaN")
		}
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(7))}
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 100 {
			shift = 1.5
		}
		rng := rand.New(rand.NewSource(seed))
		a := randTensor(rng, 3, 5)
		b := Map(a, func(v float64) float64 { return v + shift })
		return AllClose(SoftmaxRows(a, nil), SoftmaxRows(b, nil), 1e-9)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConcatSliceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randTensor(rng, 4, 3)
	b := randTensor(rng, 4, 5)
	c := ConcatCols(a, b)
	if c.R != 4 || c.C != 8 {
		t.Fatalf("ConcatCols shape %dx%d", c.R, c.C)
	}
	if !AllClose(SliceCols(c, 0, 3), a, 0) || !AllClose(SliceCols(c, 3, 8), b, 0) {
		t.Fatal("SliceCols does not invert ConcatCols")
	}
}

func TestGatherScatterRows(t *testing.T) {
	table := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	idx := []int{2, 0, 2}
	g := GatherRows(table, idx)
	want := FromRows([][]float64{{3, 3}, {1, 1}, {3, 3}})
	if !AllClose(g, want, 0) {
		t.Fatalf("GatherRows: %v", g)
	}
	dst := New(3, 2)
	ScatterAddRows(dst, g, idx)
	// Row 2 receives two contributions of (3,3); row 0 one of (1,1).
	wantDst := FromRows([][]float64{{1, 1}, {0, 0}, {6, 6}})
	if !AllClose(dst, wantDst, 0) {
		t.Fatalf("ScatterAddRows: %v", dst)
	}
}

func TestInPlaceAccumulators(t *testing.T) {
	a := Full(2, 2, 1)
	AddInPlace(a, Full(2, 2, 2))
	if !AllClose(a, Full(2, 2, 3), 0) {
		t.Fatal("AddInPlace")
	}
	AddScaledInPlace(a, -0.5, Full(2, 2, 2))
	if !AllClose(a, Full(2, 2, 2), 0) {
		t.Fatal("AddScaledInPlace")
	}
}

func TestShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randTensor(rng, 128, 128)
	y := randTensor(rng, 128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}
