// Package tensor implements dense row-major float64 matrices with the
// operations needed to train the neural predictors in this repository.
//
// Tensors are two-dimensional; vectors are represented as 1×C (row) or R×1
// (column) matrices. The hot path — MatMul and its transposed variants —
// uses a cache-blocked ikj loop parallelized over row blocks.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Tensor is a dense row-major matrix of float64 values.
type Tensor struct {
	R, C int
	Data []float64
	// pinned marks an arena-owned tensor as escaped (see Arena.Pin): Reset
	// releases it to the garbage collector instead of the free list. Always
	// false for tensors allocated outside an arena.
	pinned bool
}

// New returns a zero-filled r×c tensor.
func New(r, c int) *Tensor {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", r, c))
	}
	return &Tensor{R: r, C: c, Data: make([]float64, r*c)}
}

// FromSlice builds an r×c tensor from row-major data. The slice is copied.
func FromSlice(r, c int, data []float64) *Tensor {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d needs %d values, got %d", r, c, r*c, len(data)))
	}
	t := New(r, c)
	copy(t.Data, data)
	return t
}

// FromRows builds a tensor from a slice of equal-length rows.
func FromRows(rows [][]float64) *Tensor {
	if len(rows) == 0 {
		return New(0, 0)
	}
	t := New(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != t.C {
			panic("tensor: FromRows ragged input")
		}
		copy(t.Row(i), row)
	}
	return t
}

// Full returns an r×c tensor with every element set to v.
func Full(r, c int, v float64) *Tensor {
	t := New(r, c)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Tensor {
	t := New(n, n)
	for i := 0; i < n; i++ {
		t.Data[i*n+i] = 1
	}
	return t
}

// Randn fills a new r×c tensor with N(0, std²) samples from rng.
func Randn(rng *rand.Rand, r, c int, std float64) *Tensor {
	t := New(r, c)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
	return t
}

// RandUniform fills a new r×c tensor with U(lo, hi) samples from rng.
func RandUniform(rng *rand.Rand, r, c int, lo, hi float64) *Tensor {
	t := New(r, c)
	for i := range t.Data {
		t.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.R, t.C)
	copy(c.Data, t.Data)
	return c
}

// At returns element (i, j).
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.C+j] }

// Set assigns element (i, j).
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.C+j] = v }

// Row returns a mutable view of row i.
func (t *Tensor) Row(i int) []float64 { return t.Data[i*t.C : (i+1)*t.C] }

// Size returns the number of elements.
func (t *Tensor) Size() int { return t.R * t.C }

// SameShape reports whether t and o have identical dimensions.
func (t *Tensor) SameShape(o *Tensor) bool { return t.R == o.R && t.C == o.C }

// Zero resets every element to 0 in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// String renders a small tensor for debugging.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor %dx%d", t.R, t.C)
	if t.Size() <= 64 {
		for i := 0; i < t.R; i++ {
			b.WriteString("\n  ")
			for j := 0; j < t.C; j++ {
				fmt.Fprintf(&b, "% .4g ", t.At(i, j))
			}
		}
	}
	return b.String()
}

func assertShape(cond bool, format string, args ...any) {
	if !cond {
		panic("tensor: " + fmt.Sprintf(format, args...))
	}
}

// MatMul returns a·b for a (m×k) and b (k×n).
func MatMul(a, b *Tensor) *Tensor {
	out := New(a.R, b.C)
	MatMulInto(out, a, b)
	return out
}

// axpy computes y += a*x over equal-length slices, unrolled by eight.
func axpy(a float64, x, y []float64) {
	if simdKernels {
		axpyAVX2(a, x, y[:len(x)])
		return
	}
	n := len(x)
	y = y[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		x8 := x[i : i+8 : i+8]
		y8 := y[i : i+8 : i+8]
		y8[0] += a * x8[0]
		y8[1] += a * x8[1]
		y8[2] += a * x8[2]
		y8[3] += a * x8[3]
		y8[4] += a * x8[4]
		y8[5] += a * x8[5]
		y8[6] += a * x8[6]
		y8[7] += a * x8[7]
	}
	for ; i < n; i++ {
		y[i] += a * x[i]
	}
}

// axpy2 computes y += a0*x0 + a1*x1 in one pass over y. For every element the
// two contributions are added in the same order as two sequential axpy calls
// (a0's product first), so the result is bitwise identical to
// axpy(a0, x0, y); axpy(a1, x1, y) while touching y half as often.
func axpy2(a0, a1 float64, x0, x1, y []float64) {
	if simdKernels {
		axpy2AVX2(a0, a1, x0[:len(y)], x1[:len(y)], y)
		return
	}
	n := len(y)
	x0 = x0[:n]
	x1 = x1[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		p0 := x0[i : i+4 : i+4]
		p1 := x1[i : i+4 : i+4]
		y4 := y[i : i+4 : i+4]
		y4[0] = y4[0] + a0*p0[0] + a1*p1[0]
		y4[1] = y4[1] + a0*p0[1] + a1*p1[1]
		y4[2] = y4[2] + a0*p0[2] + a1*p1[2]
		y4[3] = y4[3] + a0*p0[3] + a1*p1[3]
	}
	for ; i < n; i++ {
		y[i] = y[i] + a0*x0[i] + a1*x1[i]
	}
}

// axpy4 computes y += a0*x0 + a1*x1 + a2*x2 + a3*x3 in one pass over y.
// Per element the four products are added in ascending operand order —
// exactly the order four sequential axpy calls would use — so results are
// bitwise identical while y is loaded and stored once per four updates
// instead of four times.
func axpy4(a0, a1, a2, a3 float64, x0, x1, x2, x3, y []float64) {
	n := len(y)
	x0 = x0[:n]
	x1 = x1[:n]
	x2 = x2[:n]
	x3 = x3[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		p0 := x0[i : i+4 : i+4]
		p1 := x1[i : i+4 : i+4]
		p2 := x2[i : i+4 : i+4]
		p3 := x3[i : i+4 : i+4]
		y4 := y[i : i+4 : i+4]
		y4[0] = y4[0] + a0*p0[0] + a1*p1[0] + a2*p2[0] + a3*p3[0]
		y4[1] = y4[1] + a0*p0[1] + a1*p1[1] + a2*p2[1] + a3*p3[1]
		y4[2] = y4[2] + a0*p0[2] + a1*p1[2] + a2*p2[2] + a3*p3[2]
		y4[3] = y4[3] + a0*p0[3] + a1*p1[3] + a2*p2[3] + a3*p3[3]
	}
	for ; i < n; i++ {
		y[i] = y[i] + a0*x0[i] + a1*x1[i] + a2*x2[i] + a3*x3[i]
	}
}

// dot computes the inner product of two equal-length slices, unrolled by four.
func dot(x, y []float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	y = y[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		x4 := x[i : i+4 : i+4]
		y4 := y[i : i+4 : i+4]
		s0 += x4[0] * y4[0]
		s1 += x4[1] * y4[1]
		s2 += x4[2] * y4[2]
		s3 += x4[3] * y4[3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

// dot2 computes dot(x, y0) and dot(x, y1) in one pass, loading x once for
// both products. Each output keeps dot's exact four-accumulator pattern, so
// both results are bitwise identical to separate dot calls.
func dot2(x, y0, y1 []float64) (float64, float64) {
	n := len(x)
	if n == 0 {
		return 0, 0
	}
	y0 = y0[:n]
	y1 = y1[:n]
	var a0, a1, a2, a3 float64
	var b0, b1, b2, b3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		x4 := x[i : i+4 : i+4]
		p4 := y0[i : i+4 : i+4]
		q4 := y1[i : i+4 : i+4]
		a0 += x4[0] * p4[0]
		b0 += x4[0] * q4[0]
		a1 += x4[1] * p4[1]
		b1 += x4[1] * q4[1]
		a2 += x4[2] * p4[2]
		b2 += x4[2] * q4[2]
		a3 += x4[3] * p4[3]
		b3 += x4[3] * q4[3]
	}
	s, t := a0+a1+a2+a3, b0+b1+b2+b3
	for ; i < n; i++ {
		s += x[i] * y0[i]
		t += x[i] * y1[i]
	}
	return s, t
}

// MatMulBT returns a·bᵀ for a (m×k) and b (n×k). This is the layout used by
// attention scores (Q·Kᵀ) and avoids materializing a transpose.
func MatMulBT(a, b *Tensor) *Tensor {
	out := New(a.R, b.R)
	MatMulBTInto(out, a, b)
	return out
}

// MatMulAT returns aᵀ·b for a (k×m) and b (k×n). This is the layout used by
// weight gradients (Xᵀ·dY).
func MatMulAT(a, b *Tensor) *Tensor {
	out := New(a.C, b.C)
	MatMulATInto(out, a, b)
	return out
}

// Transpose returns tᵀ.
func (t *Tensor) Transpose() *Tensor {
	out := New(t.C, t.R)
	TransposeInto(out, t)
	return out
}

// The elementwise binaries below are deliberately written as direct loops
// rather than through zipWith: a per-element closure call blocks inlining
// and bounds-check elimination on the hottest loops in autodiff backward
// passes. zipWith survives (unexported) as the reference implementation the
// property tests compare against.

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	out := New(a.R, a.C)
	AddInto(out, a, b)
	return out
}

// Sub returns a − b elementwise.
func Sub(a, b *Tensor) *Tensor {
	out := New(a.R, a.C)
	SubInto(out, a, b)
	return out
}

// Mul returns a ⊙ b elementwise.
func Mul(a, b *Tensor) *Tensor {
	out := New(a.R, a.C)
	MulInto(out, a, b)
	return out
}

// Div returns a / b elementwise.
func Div(a, b *Tensor) *Tensor {
	out := New(a.R, a.C)
	DivInto(out, a, b)
	return out
}

// zipWith is the closure-based elementwise reference kept for the property
// tests in into_test.go; production code uses the specialized loops above.
func zipWith(a, b *Tensor, f func(x, y float64) float64) *Tensor {
	assertShape(a.SameShape(b), "elementwise shape mismatch %dx%d vs %dx%d", a.R, a.C, b.R, b.C)
	out := New(a.R, a.C)
	for i := range a.Data {
		out.Data[i] = f(a.Data[i], b.Data[i])
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Tensor) {
	if !a.SameShape(b) {
		shapePanic("AddInPlace shape mismatch %dx%d vs %dx%d", a.R, a.C, b.R, b.C)
	}
	if simdKernels {
		addInPlaceAVX2(a.Data, b.Data)
		return
	}
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// AddScaledInPlace accumulates s·b into a.
func AddScaledInPlace(a *Tensor, s float64, b *Tensor) {
	if !a.SameShape(b) {
		shapePanic("AddScaledInPlace shape mismatch %dx%d vs %dx%d", a.R, a.C, b.R, b.C)
	}
	for i := range a.Data {
		a.Data[i] += s * b.Data[i]
	}
}

// Scale returns s·t.
func Scale(t *Tensor, s float64) *Tensor {
	out := New(t.R, t.C)
	ScaleInto(out, t, s)
	return out
}

// Map returns f applied elementwise.
func Map(t *Tensor, f func(float64) float64) *Tensor {
	out := New(t.R, t.C)
	MapInto(out, t, f)
	return out
}

// AddRowVec returns t with the 1×C row vector v added to every row.
func AddRowVec(t, v *Tensor) *Tensor {
	out := New(t.R, t.C)
	AddRowVecInto(out, t, v)
	return out
}

// AddOuter returns the N×M matrix a·1ᵀ + 1·bᵀ from column vectors a (N×1)
// and b (M×1): out[i][j] = a[i] + b[j]. Used by GAT attention logits.
func AddOuter(a, b *Tensor) *Tensor {
	out := New(a.R, b.R)
	AddOuterInto(out, a, b)
	return out
}

// SumRows returns the 1×C vector of column sums (summing over rows).
func SumRows(t *Tensor) *Tensor {
	out := New(1, t.C)
	SumRowsInto(out, t)
	return out
}

// SumCols returns the R×1 vector of row sums (summing over columns).
func SumCols(t *Tensor) *Tensor {
	out := New(t.R, 1)
	SumColsInto(out, t)
	return out
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// MaxAbs returns the largest absolute element, or 0 for an empty tensor.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// SoftmaxRows returns row-wise softmax of t. If mask is non-nil it is added
// to the logits first (entries of −Inf disable positions). Rows whose every
// position is masked yield all-zero output rather than NaN.
func SoftmaxRows(t, mask *Tensor) *Tensor {
	out := New(t.R, t.C)
	SoftmaxRowsInto(out, t, mask)
	return out
}

// ConcatCols concatenates tensors with equal row counts along columns.
func ConcatCols(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		return New(0, 0)
	}
	c := 0
	for _, t := range ts {
		c += t.C
	}
	out := New(ts[0].R, c)
	ConcatColsInto(out, ts...)
	return out
}

// SliceCols returns columns [lo, hi) of t as a new tensor.
func SliceCols(t *Tensor, lo, hi int) *Tensor {
	if lo < 0 || hi < lo || hi > t.C {
		shapePanic("SliceCols bad range [%d,%d) of %d", lo, hi, t.C)
	}
	out := New(t.R, hi-lo)
	SliceColsInto(out, t, lo, hi)
	return out
}

// GatherRows returns the tensor whose i-th row is t.Row(idx[i]).
func GatherRows(t *Tensor, idx []int) *Tensor {
	out := New(len(idx), t.C)
	GatherRowsInto(out, t, idx)
	return out
}

// ScatterAddRows adds each row of src into dst.Row(idx[i]).
func ScatterAddRows(dst, src *Tensor, idx []int) {
	assertShape(src.R == len(idx) && src.C == dst.C, "ScatterAddRows shape mismatch")
	for i, id := range idx {
		drow, srow := dst.Row(id), src.Row(i)
		for j := range srow {
			drow[j] += srow[j]
		}
	}
}

// AllClose reports whether a and b agree elementwise within tol.
func AllClose(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}
