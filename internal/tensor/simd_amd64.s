// AVX2 forms of the hot matmul row kernels. Every function reproduces the
// exact floating-point operations, element order, and accumulator grouping
// of its Go counterpart in into.go / tensor.go — vectorization only runs
// independent per-element chains in SIMD lanes and never refuses, regroups,
// or fuses (no FMA) an operation — so results are bitwise identical to the
// scalar path. See simd_amd64.go for the correspondence argument per kernel.

#include "textflag.h"

// func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpyAVX2(a float64, x, y []float64)
// y[i] += a*x[i] for i in [0, len(x)); per-element chains are independent,
// so 4-lane execution is bitwise identical to the scalar loop.
TEXT ·axpyAVX2(SB), NOSPLIT, $0-56
	VBROADCASTSD a+0(FP), Y0
	MOVQ x_base+8(FP), SI
	MOVQ x_len+16(FP), R8
	MOVQ y_base+32(FP), DI
	XORQ R12, R12

axpyVec:
	LEAQ 4(R12), AX
	CMPQ AX, R8
	JGT  axpyVecDone
	VMOVUPD (DI)(R12*8), Y4
	VMOVUPD (SI)(R12*8), Y5
	VMULPD  Y0, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD Y4, (DI)(R12*8)
	ADDQ $4, R12
	JMP  axpyVec

axpyVecDone:
	CMPQ R12, R8
	JGE  axpyDone

axpyTail:
	VMOVSD (DI)(R12*8), X4
	VMOVSD (SI)(R12*8), X5
	VMULSD X0, X5, X5
	VADDSD X5, X4, X4
	VMOVSD X4, (DI)(R12*8)
	INCQ R12
	CMPQ R12, R8
	JLT  axpyTail

axpyDone:
	VZEROUPPER
	RET

// func axpy2AVX2(a0, a1 float64, x0, x1, y []float64)
// y[i] = y[i] + a0*x0[i] + a1*x1[i] over len(y); the two products are added
// in ascending operand order per element, matching the scalar axpy2 chain.
TEXT ·axpy2AVX2(SB), NOSPLIT, $0-88
	VBROADCASTSD a0+0(FP), Y0
	VBROADCASTSD a1+8(FP), Y1
	MOVQ x0_base+16(FP), SI
	MOVQ x1_base+40(FP), BX
	MOVQ y_base+64(FP), DI
	MOVQ y_len+72(FP), R8
	XORQ R12, R12

axpy2Vec:
	LEAQ 4(R12), AX
	CMPQ AX, R8
	JGT  axpy2VecDone
	VMOVUPD (DI)(R12*8), Y4
	VMOVUPD (SI)(R12*8), Y5
	VMULPD  Y0, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD (BX)(R12*8), Y5
	VMULPD  Y1, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD Y4, (DI)(R12*8)
	ADDQ $4, R12
	JMP  axpy2Vec

axpy2VecDone:
	CMPQ R12, R8
	JGE  axpy2Done

axpy2Tail:
	VMOVSD (DI)(R12*8), X4
	VMOVSD (SI)(R12*8), X5
	VMULSD X0, X5, X5
	VADDSD X5, X4, X4
	VMOVSD (BX)(R12*8), X5
	VMULSD X1, X5, X5
	VADDSD X5, X4, X4
	VMOVSD X4, (DI)(R12*8)
	INCQ R12
	CMPQ R12, R8
	JLT  axpy2Tail

axpy2Done:
	VZEROUPPER
	RET

// func matmulRowKernelAVX2(crow, arow, bd []float64, b0, n int)
// crow[j] += Σ_p arow[p]·bd[(b0+p)*n+j], operands grouped four at a time
// with per-element adds in ascending p order — the scalar matmulRowKernel's
// axpy4/axpy structure exactly.
TEXT ·matmulRowKernelAVX2(SB), NOSPLIT, $0-88
	MOVQ crow_base+0(FP), DI
	MOVQ arow_base+24(FP), SI
	MOVQ arow_len+32(FP), R8  // k
	MOVQ bd_base+48(FP), BX
	MOVQ b0+72(FP), AX
	MOVQ n+80(FP), R10
	IMULQ R10, AX
	LEAQ (BX)(AX*8), R9       // &bd[b0*n]
	MOVQ R10, R13
	SHLQ $3, R13              // row stride in bytes
	VXORPD Y9, Y9, Y9         // zero, for the all-zero coefficient skip
	XORQ R11, R11             // p

rkQuad:
	LEAQ 4(R11), AX
	CMPQ AX, R8
	JGT  rkQuadDone
	// Skip quads whose four coefficients are all ±0 — c += ±0 never
	// changes c — mirroring the scalar kernel's test (NaN compares
	// not-equal, so NaN coefficients take the full path there too).
	VMOVUPD (SI)(R11*8), Y5
	VCMPPD $0, Y9, Y5, Y5
	VMOVMSKPD Y5, AX
	CMPL AX, $15
	JNE  rkQuadGo
	ADDQ $4, R11
	JMP  rkQuad

rkQuadGo:
	VBROADCASTSD (SI)(R11*8), Y0
	VBROADCASTSD 8(SI)(R11*8), Y1
	VBROADCASTSD 16(SI)(R11*8), Y2
	VBROADCASTSD 24(SI)(R11*8), Y3
	MOVQ R11, AX
	IMULQ R13, AX
	LEAQ (R9)(AX*1), R14      // row p
	LEAQ (R14)(R13*1), R15    // row p+1
	LEAQ (R15)(R13*1), CX     // row p+2
	LEAQ (CX)(R13*1), DX      // row p+3
	XORQ R12, R12             // j

rkQuadVec8:
	// Two independent 4-lane output groups per iteration; output elements
	// never interact, so the wider step is bitwise-transparent.
	LEAQ 8(R12), AX
	CMPQ AX, R10
	JGT  rkQuadVec
	VMOVUPD (DI)(R12*8), Y4
	VMOVUPD 32(DI)(R12*8), Y6
	VMOVUPD (R14)(R12*8), Y5
	VMULPD  Y0, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD 32(R14)(R12*8), Y7
	VMULPD  Y0, Y7, Y7
	VADDPD  Y7, Y6, Y6
	VMOVUPD (R15)(R12*8), Y5
	VMULPD  Y1, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD 32(R15)(R12*8), Y7
	VMULPD  Y1, Y7, Y7
	VADDPD  Y7, Y6, Y6
	VMOVUPD (CX)(R12*8), Y5
	VMULPD  Y2, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD 32(CX)(R12*8), Y7
	VMULPD  Y2, Y7, Y7
	VADDPD  Y7, Y6, Y6
	VMOVUPD (DX)(R12*8), Y5
	VMULPD  Y3, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD 32(DX)(R12*8), Y7
	VMULPD  Y3, Y7, Y7
	VADDPD  Y7, Y6, Y6
	VMOVUPD Y4, (DI)(R12*8)
	VMOVUPD Y6, 32(DI)(R12*8)
	ADDQ $8, R12
	JMP  rkQuadVec8

rkQuadVec:
	LEAQ 4(R12), AX
	CMPQ AX, R10
	JGT  rkQuadVecDone
	VMOVUPD (DI)(R12*8), Y4
	VMOVUPD (R14)(R12*8), Y5
	VMULPD  Y0, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD (R15)(R12*8), Y5
	VMULPD  Y1, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD (CX)(R12*8), Y5
	VMULPD  Y2, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD (DX)(R12*8), Y5
	VMULPD  Y3, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD Y4, (DI)(R12*8)
	ADDQ $4, R12
	JMP  rkQuadVec

rkQuadVecDone:
	CMPQ R12, R10
	JGE  rkQuadTailDone

rkQuadTail:
	VMOVSD (DI)(R12*8), X4
	VMOVSD (R14)(R12*8), X5
	VMULSD X0, X5, X5
	VADDSD X5, X4, X4
	VMOVSD (R15)(R12*8), X5
	VMULSD X1, X5, X5
	VADDSD X5, X4, X4
	VMOVSD (CX)(R12*8), X5
	VMULSD X2, X5, X5
	VADDSD X5, X4, X4
	VMOVSD (DX)(R12*8), X5
	VMULSD X3, X5, X5
	VADDSD X5, X4, X4
	VMOVSD X4, (DI)(R12*8)
	INCQ R12
	CMPQ R12, R10
	JLT  rkQuadTail

rkQuadTailDone:
	ADDQ $4, R11
	JMP  rkQuad

rkQuadDone:
	CMPQ R11, R8
	JGE  rkDone
	VMOVSD (SI)(R11*8), X0
	VUCOMISD X9, X0
	JP   rkSingleGo           // NaN: not equal to zero, full path
	JNE  rkSingleGo
	INCQ R11
	JMP  rkQuadDone

rkSingleGo:
	VBROADCASTSD (SI)(R11*8), Y0
	MOVQ R11, AX
	IMULQ R13, AX
	LEAQ (R9)(AX*1), R14
	XORQ R12, R12

rkSingleVec:
	LEAQ 4(R12), AX
	CMPQ AX, R10
	JGT  rkSingleVecDone
	VMOVUPD (DI)(R12*8), Y4
	VMOVUPD (R14)(R12*8), Y5
	VMULPD  Y0, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD Y4, (DI)(R12*8)
	ADDQ $4, R12
	JMP  rkSingleVec

rkSingleVecDone:
	CMPQ R12, R10
	JGE  rkSingleDone

rkSingleTail:
	VMOVSD (DI)(R12*8), X4
	VMOVSD (R14)(R12*8), X5
	VMULSD X0, X5, X5
	VADDSD X5, X4, X4
	VMOVSD X4, (DI)(R12*8)
	INCQ R12
	CMPQ R12, R10
	JLT  rkSingleTail

rkSingleDone:
	INCQ R11
	JMP  rkQuadDone

rkDone:
	VZEROUPPER
	RET

// func matmulBTRowKernelAVX2(crow, arow, bd []float64, b0, m, k int)
// crow[j] = arow · bd[(b0+j)*k : +k] for j in [0, m). Outputs are computed
// four at a time to interleave the accumulator dependency chains; each
// output keeps dot's exact four-accumulator pattern (one ymm register),
// left-associative lane combine s = ((s0+s1)+s2)+s3, then the scalar tail —
// bitwise identical to the scalar dot2/dot pairing.
TEXT ·matmulBTRowKernelAVX2(SB), NOSPLIT, $0-96
	MOVQ crow_base+0(FP), DI
	MOVQ arow_base+24(FP), SI
	MOVQ bd_base+48(FP), BX
	MOVQ b0+72(FP), AX
	MOVQ m+80(FP), R10
	MOVQ k+88(FP), R8
	IMULQ R8, AX
	LEAQ (BX)(AX*8), R9       // &bd[b0*k]
	MOVQ R8, R13
	SHLQ $3, R13              // row stride in bytes
	XORQ R11, R11             // j

btQuad:
	LEAQ 4(R11), AX
	CMPQ AX, R10
	JGT  btQuadDone
	MOVQ R11, AX
	IMULQ R13, AX
	LEAQ (R9)(AX*1), R14      // row j
	LEAQ (R14)(R13*1), R15    // row j+1
	LEAQ (R15)(R13*1), CX     // row j+2
	LEAQ (CX)(R13*1), DX      // row j+3
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	XORQ R12, R12             // i

btQuadVec8:
	// Two 4-wide steps per iteration: the second group accumulates into the
	// same registers after the first, so the per-lane add sequence is the
	// exact chain of two single steps — only loop control is amortized.
	LEAQ 8(R12), AX
	CMPQ AX, R8
	JGT  btQuadVec
	VMOVUPD (SI)(R12*8), Y4
	VMOVUPD (R14)(R12*8), Y5
	VMULPD  Y4, Y5, Y5
	VADDPD  Y5, Y0, Y0
	VMOVUPD (R15)(R12*8), Y6
	VMULPD  Y4, Y6, Y6
	VADDPD  Y6, Y1, Y1
	VMOVUPD (CX)(R12*8), Y7
	VMULPD  Y4, Y7, Y7
	VADDPD  Y7, Y2, Y2
	VMOVUPD (DX)(R12*8), Y8
	VMULPD  Y4, Y8, Y8
	VADDPD  Y8, Y3, Y3
	VMOVUPD 32(SI)(R12*8), Y4
	VMOVUPD 32(R14)(R12*8), Y5
	VMULPD  Y4, Y5, Y5
	VADDPD  Y5, Y0, Y0
	VMOVUPD 32(R15)(R12*8), Y6
	VMULPD  Y4, Y6, Y6
	VADDPD  Y6, Y1, Y1
	VMOVUPD 32(CX)(R12*8), Y7
	VMULPD  Y4, Y7, Y7
	VADDPD  Y7, Y2, Y2
	VMOVUPD 32(DX)(R12*8), Y8
	VMULPD  Y4, Y8, Y8
	VADDPD  Y8, Y3, Y3
	ADDQ $8, R12
	JMP  btQuadVec8

btQuadVec:
	LEAQ 4(R12), AX
	CMPQ AX, R8
	JGT  btQuadVecDone
	VMOVUPD (SI)(R12*8), Y4
	VMOVUPD (R14)(R12*8), Y5
	VMULPD  Y4, Y5, Y5
	VADDPD  Y5, Y0, Y0
	VMOVUPD (R15)(R12*8), Y6
	VMULPD  Y4, Y6, Y6
	VADDPD  Y6, Y1, Y1
	VMOVUPD (CX)(R12*8), Y7
	VMULPD  Y4, Y7, Y7
	VADDPD  Y7, Y2, Y2
	VMOVUPD (DX)(R12*8), Y8
	VMULPD  Y4, Y8, Y8
	VADDPD  Y8, Y3, Y3
	ADDQ $4, R12
	JMP  btQuadVec

btQuadVecDone:
	// Combine lanes of each accumulator left-associatively:
	// s = ((s0+s1)+s2)+s3, matching the scalar dot epilogue. The four
	// outputs' combines interleave through distinct scratch registers to
	// overlap the VADDSD latency chains; each output's own math is the
	// sequential scalar epilogue unchanged.
	VEXTRACTF128 $1, Y0, X5
	VEXTRACTF128 $1, Y1, X6
	VEXTRACTF128 $1, Y2, X7
	VEXTRACTF128 $1, Y3, X8
	VPERMILPD $1, X0, X9
	VPERMILPD $1, X1, X10
	VPERMILPD $1, X2, X11
	VPERMILPD $1, X3, X12
	VADDSD X9, X0, X0
	VADDSD X10, X1, X1
	VADDSD X11, X2, X2
	VADDSD X12, X3, X3
	VADDSD X5, X0, X0
	VADDSD X6, X1, X1
	VADDSD X7, X2, X2
	VADDSD X8, X3, X3
	VPERMILPD $1, X5, X9
	VPERMILPD $1, X6, X10
	VPERMILPD $1, X7, X11
	VPERMILPD $1, X8, X12
	VADDSD X9, X0, X0
	VADDSD X10, X1, X1
	VADDSD X11, X2, X2
	VADDSD X12, X3, X3
	CMPQ R12, R8
	JGE  btQuadStore

btQuadTail:
	VMOVSD (SI)(R12*8), X4
	VMOVSD (R14)(R12*8), X5
	VMULSD X4, X5, X5
	VADDSD X5, X0, X0
	VMOVSD (R15)(R12*8), X5
	VMULSD X4, X5, X5
	VADDSD X5, X1, X1
	VMOVSD (CX)(R12*8), X5
	VMULSD X4, X5, X5
	VADDSD X5, X2, X2
	VMOVSD (DX)(R12*8), X5
	VMULSD X4, X5, X5
	VADDSD X5, X3, X3
	INCQ R12
	CMPQ R12, R8
	JLT  btQuadTail

btQuadStore:
	VMOVSD X0, (DI)(R11*8)
	VMOVSD X1, 8(DI)(R11*8)
	VMOVSD X2, 16(DI)(R11*8)
	VMOVSD X3, 24(DI)(R11*8)
	ADDQ $4, R11
	JMP  btQuad

btQuadDone:
	CMPQ R11, R10
	JGE  btDone
	MOVQ R11, AX
	IMULQ R13, AX
	LEAQ (R9)(AX*1), R14
	VXORPD Y0, Y0, Y0
	XORQ R12, R12

btSingleVec:
	LEAQ 4(R12), AX
	CMPQ AX, R8
	JGT  btSingleVecDone
	VMOVUPD (SI)(R12*8), Y4
	VMOVUPD (R14)(R12*8), Y5
	VMULPD  Y4, Y5, Y5
	VADDPD  Y5, Y0, Y0
	ADDQ $4, R12
	JMP  btSingleVec

btSingleVecDone:
	VEXTRACTF128 $1, Y0, X5
	VPERMILPD $1, X0, X6
	VADDSD X6, X0, X0
	VADDSD X5, X0, X0
	VPERMILPD $1, X5, X6
	VADDSD X6, X0, X0
	CMPQ R12, R8
	JGE  btSingleStore

btSingleTail:
	VMOVSD (SI)(R12*8), X4
	VMOVSD (R14)(R12*8), X5
	VMULSD X4, X5, X5
	VADDSD X5, X0, X0
	INCQ R12
	CMPQ R12, R8
	JLT  btSingleTail

btSingleStore:
	VMOVSD X0, (DI)(R11*8)
	INCQ R11
	JMP  btQuadDone

btDone:
	VZEROUPPER
	RET

DATA canonNaN<>+0(SB)/8, $0x7FF8000000000001
GLOBL canonNaN<>(SB), RODATA, $8

DATA negInf<>+0(SB)/8, $0xFFF0000000000000
GLOBL negInf<>(SB), RODATA, $8

// func addInPlaceAVX2(a, b []float64)
// a[i] += b[i]; element-independent, trivially bitwise-transparent.
TEXT ·addInPlaceAVX2(SB), NOSPLIT, $0-48
	MOVQ a_base+0(FP), DI
	MOVQ a_len+8(FP), R8
	MOVQ b_base+24(FP), SI
	XORQ R12, R12

aipVec:
	LEAQ 4(R12), AX
	CMPQ AX, R8
	JGT  aipVecDone
	VMOVUPD (DI)(R12*8), Y4
	VADDPD  (SI)(R12*8), Y4, Y4
	VMOVUPD Y4, (DI)(R12*8)
	ADDQ $4, R12
	JMP  aipVec

aipVecDone:
	CMPQ R12, R8
	JGE  aipDone

aipTail:
	VMOVSD (DI)(R12*8), X4
	VADDSD (SI)(R12*8), X4, X4
	VMOVSD X4, (DI)(R12*8)
	INCQ R12
	CMPQ R12, R8
	JLT  aipTail

aipDone:
	VZEROUPPER
	RET

// func addIntoAVX2(dst, a, b []float64)
// dst[i] = a[i] + b[i]; dst may alias a and/or b (same-index access only).
TEXT ·addIntoAVX2(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), R8
	MOVQ b_base+48(FP), BX
	XORQ R12, R12

aiVec:
	LEAQ 4(R12), AX
	CMPQ AX, R8
	JGT  aiVecDone
	VMOVUPD (SI)(R12*8), Y4
	VADDPD  (BX)(R12*8), Y4, Y4
	VMOVUPD Y4, (DI)(R12*8)
	ADDQ $4, R12
	JMP  aiVec

aiVecDone:
	CMPQ R12, R8
	JGE  aiDone

aiTail:
	VMOVSD (SI)(R12*8), X4
	VADDSD (BX)(R12*8), X4, X4
	VMOVSD X4, (DI)(R12*8)
	INCQ R12
	CMPQ R12, R8
	JLT  aiTail

aiDone:
	VZEROUPPER
	RET

// func scaleIntoAVX2(dst, t []float64, s float64)
// dst[i] = s·t[i]; dst may alias t.
TEXT ·scaleIntoAVX2(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ t_base+24(FP), SI
	MOVQ t_len+32(FP), R8
	VBROADCASTSD s+48(FP), Y0
	XORQ R12, R12

siVec:
	LEAQ 4(R12), AX
	CMPQ AX, R8
	JGT  siVecDone
	VMOVUPD (SI)(R12*8), Y4
	VMULPD  Y0, Y4, Y4
	VMOVUPD Y4, (DI)(R12*8)
	ADDQ $4, R12
	JMP  siVec

siVecDone:
	CMPQ R12, R8
	JGE  siDone

siTail:
	VMOVSD (SI)(R12*8), X4
	VMULSD X0, X4, X4
	VMOVSD X4, (DI)(R12*8)
	INCQ R12
	CMPQ R12, R8
	JLT  siTail

siDone:
	VZEROUPPER
	RET

// func reluFwdAVX2(v, x []float64)
// v[i] = math.Max(x[i], 0): VMAXPD with +0 as the on-equal operand maps −0
// to +0 exactly as math.Max does, and NaN lanes are rewritten to the
// canonical NaN math.Max returns.
TEXT ·reluFwdAVX2(SB), NOSPLIT, $0-48
	MOVQ v_base+0(FP), DI
	MOVQ x_base+24(FP), SI
	MOVQ x_len+32(FP), R8
	VXORPD Y1, Y1, Y1
	VBROADCASTSD canonNaN<>(SB), Y2
	XORQ R12, R12

rfVec:
	LEAQ 4(R12), AX
	CMPQ AX, R8
	JGT  rfVecDone
	VMOVUPD (SI)(R12*8), Y4
	VMAXPD  Y1, Y4, Y5        // max(x, 0), +0 on equal or NaN
	VCMPPD  $3, Y4, Y4, Y6    // UNORD: NaN lanes of x
	VBLENDVPD Y6, Y2, Y5, Y5  // NaN lanes take canonical NaN
	VMOVUPD Y5, (DI)(R12*8)
	ADDQ $4, R12
	JMP  rfVec

rfVecDone:
	CMPQ R12, R8
	JGE  rfDone

rfTail:
	VMOVSD (SI)(R12*8), X4
	VUCOMISD X4, X4
	JP   rfTailNaN
	VMAXSD X1, X4, X5
	VMOVSD X5, (DI)(R12*8)
	INCQ R12
	CMPQ R12, R8
	JLT  rfTail
	JMP  rfDone

rfTailNaN:
	VMOVSD X2, (DI)(R12*8)
	INCQ R12
	CMPQ R12, R8
	JLT  rfTail

rfDone:
	VZEROUPPER
	RET

// func reluBackAVX2(d, g, x []float64)
// d[i] = g[i] where x[i] > 0 (ordered: NaN gates to 0) and +0 elsewhere.
// The compare mask is all-ones or all-zero per lane, so AND passes g
// through unchanged or produces +0 — exactly the scalar branch.
TEXT ·reluBackAVX2(SB), NOSPLIT, $0-72
	MOVQ d_base+0(FP), DI
	MOVQ g_base+24(FP), SI
	MOVQ g_len+32(FP), R8
	MOVQ x_base+48(FP), BX
	VXORPD Y1, Y1, Y1
	XORQ R12, R12

rbVec:
	LEAQ 4(R12), AX
	CMPQ AX, R8
	JGT  rbVecDone
	VMOVUPD (BX)(R12*8), Y4
	VCMPPD  $0x1e, Y1, Y4, Y5 // x > 0, ordered quiet
	VANDPD  (SI)(R12*8), Y5, Y6
	VMOVUPD Y6, (DI)(R12*8)
	ADDQ $4, R12
	JMP  rbVec

rbVecDone:
	CMPQ R12, R8
	JGE  rbDone

rbTail:
	VMOVSD (BX)(R12*8), X4
	VUCOMISD X1, X4
	JA   rbTailG
	VMOVSD X1, (DI)(R12*8)
	INCQ R12
	CMPQ R12, R8
	JLT  rbTail
	JMP  rbDone

rbTailG:
	VMOVSD (SI)(R12*8), X5
	VMOVSD X5, (DI)(R12*8)
	INCQ R12
	CMPQ R12, R8
	JLT  rbTail

rbDone:
	VZEROUPPER
	RET

// func leakyFwdAVX2(v, x []float64, alpha float64)
// v[i] = x[i] for x[i] > 0 (ordered) and α·x[i] otherwise, the α product
// computed exactly as the scalar else-branch.
TEXT ·leakyFwdAVX2(SB), NOSPLIT, $0-56
	MOVQ v_base+0(FP), DI
	MOVQ x_base+24(FP), SI
	MOVQ x_len+32(FP), R8
	VBROADCASTSD alpha+48(FP), Y2
	VXORPD Y1, Y1, Y1
	XORQ R12, R12

lfVec:
	LEAQ 4(R12), AX
	CMPQ AX, R8
	JGT  lfVecDone
	VMOVUPD (SI)(R12*8), Y4
	VMULPD  Y2, Y4, Y5        // α·x
	VCMPPD  $0x1e, Y1, Y4, Y6 // x > 0
	VBLENDVPD Y6, Y4, Y5, Y7  // mask ? x : α·x
	VMOVUPD Y7, (DI)(R12*8)
	ADDQ $4, R12
	JMP  lfVec

lfVecDone:
	CMPQ R12, R8
	JGE  lfDone

lfTail:
	VMOVSD (SI)(R12*8), X4
	VUCOMISD X1, X4
	JA   lfTailX
	VMULSD X2, X4, X5
	VMOVSD X5, (DI)(R12*8)
	INCQ R12
	CMPQ R12, R8
	JLT  lfTail
	JMP  lfDone

lfTailX:
	VMOVSD X4, (DI)(R12*8)
	INCQ R12
	CMPQ R12, R8
	JLT  lfTail

lfDone:
	VZEROUPPER
	RET

// func leakyBackAVX2(d, g, x []float64, alpha float64)
// d[i] = g[i] where x[i] > 0 and α·g[i] elsewhere.
TEXT ·leakyBackAVX2(SB), NOSPLIT, $0-80
	MOVQ d_base+0(FP), DI
	MOVQ g_base+24(FP), SI
	MOVQ g_len+32(FP), R8
	MOVQ x_base+48(FP), BX
	VBROADCASTSD alpha+72(FP), Y2
	VXORPD Y1, Y1, Y1
	XORQ R12, R12

lbVec:
	LEAQ 4(R12), AX
	CMPQ AX, R8
	JGT  lbVecDone
	VMOVUPD (SI)(R12*8), Y3   // g
	VMOVUPD (BX)(R12*8), Y4   // x
	VMULPD  Y2, Y3, Y5        // α·g
	VCMPPD  $0x1e, Y1, Y4, Y6 // x > 0
	VBLENDVPD Y6, Y3, Y5, Y7  // mask ? g : α·g
	VMOVUPD Y7, (DI)(R12*8)
	ADDQ $4, R12
	JMP  lbVec

lbVecDone:
	CMPQ R12, R8
	JGE  lbDone

lbTail:
	VMOVSD (BX)(R12*8), X4
	VMOVSD (SI)(R12*8), X3
	VUCOMISD X1, X4
	JA   lbTailG
	VMULSD X2, X3, X5
	VMOVSD X5, (DI)(R12*8)
	INCQ R12
	CMPQ R12, R8
	JLT  lbTail
	JMP  lbDone

lbTailG:
	VMOVSD X3, (DI)(R12*8)
	INCQ R12
	CMPQ R12, R8
	JLT  lbTail

lbDone:
	VZEROUPPER
	RET

// func softmaxFwdAVX2(orow, row, mrow []float64) float64
// Pass 1 of softmaxRow with a mask: orow[j] = row[j] + mrow[j] stored
// elementwise; returns the strict-> running max. Lane maxima are combined
// with the acc as the on-equal/on-NaN operand so NaN candidates never win
// and ties keep the earlier value, matching the scalar scan (the one ±0
// ambiguity is erased by the caller's exp pass).
TEXT ·softmaxFwdAVX2(SB), NOSPLIT, $0-80
	MOVQ orow_base+0(FP), DI
	MOVQ row_base+24(FP), SI
	MOVQ row_len+32(FP), R8
	MOVQ mrow_base+48(FP), BX
	VBROADCASTSD negInf<>(SB), Y0
	XORQ R12, R12

sfVec:
	LEAQ 4(R12), AX
	CMPQ AX, R8
	JGT  sfVecDone
	VMOVUPD (SI)(R12*8), Y4
	VADDPD  (BX)(R12*8), Y4, Y4
	VMOVUPD Y4, (DI)(R12*8)
	VMAXPD  Y0, Y4, Y0        // v > acc ? v : acc (NaN v keeps acc)
	ADDQ $4, R12
	JMP  sfVec

sfVecDone:
	VEXTRACTF128 $1, Y0, X5
	VPERMILPD $1, X0, X6
	VMAXSD X0, X6, X0
	VMAXSD X0, X5, X0
	VPERMILPD $1, X5, X6
	VMAXSD X0, X6, X0
	CMPQ R12, R8
	JGE  sfDone

sfTail:
	VMOVSD (SI)(R12*8), X4
	VADDSD (BX)(R12*8), X4, X4
	VMOVSD X4, (DI)(R12*8)
	VUCOMISD X0, X4
	JBE  sfTailNext           // not (v > max); NaN v lands here too
	VMOVAPD X4, X0

sfTailNext:
	INCQ R12
	CMPQ R12, R8
	JLT  sfTail

sfDone:
	VMOVSD X0, ret+72(FP)
	VZEROUPPER
	RET

// func softmaxFwdNMAVX2(orow, row []float64) float64
// Maskless pass 1: orow[j] = row[j] copied; returns the running max.
// orow may alias row.
TEXT ·softmaxFwdNMAVX2(SB), NOSPLIT, $0-56
	MOVQ orow_base+0(FP), DI
	MOVQ row_base+24(FP), SI
	MOVQ row_len+32(FP), R8
	VBROADCASTSD negInf<>(SB), Y0
	XORQ R12, R12

snVec:
	LEAQ 4(R12), AX
	CMPQ AX, R8
	JGT  snVecDone
	VMOVUPD (SI)(R12*8), Y4
	VMOVUPD Y4, (DI)(R12*8)
	VMAXPD  Y0, Y4, Y0
	ADDQ $4, R12
	JMP  snVec

snVecDone:
	VEXTRACTF128 $1, Y0, X5
	VPERMILPD $1, X0, X6
	VMAXSD X0, X6, X0
	VMAXSD X0, X5, X0
	VPERMILPD $1, X5, X6
	VMAXSD X0, X6, X0
	CMPQ R12, R8
	JGE  snDone

snTail:
	VMOVSD (SI)(R12*8), X4
	VMOVSD X4, (DI)(R12*8)
	VUCOMISD X0, X4
	JBE  snTailNext
	VMOVAPD X4, X0

snTailNext:
	INCQ R12
	CMPQ R12, R8
	JLT  snTail

snDone:
	VMOVSD X0, ret+48(FP)
	VZEROUPPER
	RET

// func softmaxBackRowAVX2(drow, grow, yrow []float64, dotgy float64)
// drow[j] = yrow[j] · (grow[j] − dotgy), elementwise.
TEXT ·softmaxBackRowAVX2(SB), NOSPLIT, $0-80
	MOVQ drow_base+0(FP), DI
	MOVQ grow_base+24(FP), SI
	MOVQ grow_len+32(FP), R8
	MOVQ yrow_base+48(FP), BX
	VBROADCASTSD dotgy+72(FP), Y0
	XORQ R12, R12

sbVec:
	LEAQ 4(R12), AX
	CMPQ AX, R8
	JGT  sbVecDone
	VMOVUPD (SI)(R12*8), Y4
	VSUBPD  Y0, Y4, Y4        // g − dotgy
	VMULPD  (BX)(R12*8), Y4, Y4
	VMOVUPD Y4, (DI)(R12*8)
	ADDQ $4, R12
	JMP  sbVec

sbVecDone:
	CMPQ R12, R8
	JGE  sbDone

sbTail:
	VMOVSD (SI)(R12*8), X4
	VSUBSD X0, X4, X4
	VMULSD (BX)(R12*8), X4, X4
	VMOVSD X4, (DI)(R12*8)
	INCQ R12
	CMPQ R12, R8
	JLT  sbTail

sbDone:
	VZEROUPPER
	RET

// func matmulATPairAVX2(dd []float64, base, n int, a0, a1, b0, b1 []float64)
// For each p < len(a0): dd[(base+p)·n : +n] += a0[p]·b0 + a1[p]·b1 with the
// scalar axpy2/axpy grouping — per-element adds in ascending operand order —
// and the same `av != 0` skip (NaN coefficients take the nonzero path, like
// Go's !=).
TEXT ·matmulATPairAVX2(SB), NOSPLIT, $0-136
	MOVQ dd_base+0(FP), DI
	MOVQ base+24(FP), AX
	MOVQ n+32(FP), R9
	IMULQ R9, AX
	LEAQ (DI)(AX*8), DI       // first output row
	MOVQ a0_base+40(FP), SI
	MOVQ a0_len+48(FP), R8    // np
	MOVQ a1_base+64(FP), R10
	MOVQ b0_base+88(FP), R11
	MOVQ b1_base+112(FP), R13
	MOVQ R9, DX
	ANDQ $-4, DX              // n rounded down to a vector multiple
	VXORPD X15, X15, X15
	XORQ BX, BX               // p

atpLoop:
	CMPQ BX, R8
	JGE  atpDone
	VMOVSD (SI)(BX*8), X0     // av0
	VMOVSD (R10)(BX*8), X1    // av1
	VUCOMISD X15, X0
	JP   atpA0NZ
	JNE  atpA0NZ
	VUCOMISD X15, X1
	JP   atpOnlyA1
	JNE  atpOnlyA1
	JMP  atpNext              // both zero: row contributes nothing

atpA0NZ:
	VUCOMISD X15, X1
	JP   atpBoth
	JNE  atpBoth

	// only av0: y += av0·b0
	VBROADCASTSD (SI)(BX*8), Y0
	XORQ CX, CX

atpA0Vec:
	CMPQ CX, DX
	JGE  atpA0Sc
	VMOVUPD (R11)(CX*8), Y5
	VMULPD  Y0, Y5, Y5
	VADDPD  (DI)(CX*8), Y5, Y5
	VMOVUPD Y5, (DI)(CX*8)
	ADDQ $4, CX
	JMP  atpA0Vec

atpA0Sc:
	CMPQ CX, R9
	JGE  atpNext
	VMOVSD (R11)(CX*8), X5
	VMULSD X0, X5, X5
	VADDSD (DI)(CX*8), X5, X5
	VMOVSD X5, (DI)(CX*8)
	INCQ CX
	JMP  atpA0Sc

atpOnlyA1:
	VBROADCASTSD (R10)(BX*8), Y1
	XORQ CX, CX

atpA1Vec:
	CMPQ CX, DX
	JGE  atpA1Sc
	VMOVUPD (R13)(CX*8), Y5
	VMULPD  Y1, Y5, Y5
	VADDPD  (DI)(CX*8), Y5, Y5
	VMOVUPD Y5, (DI)(CX*8)
	ADDQ $4, CX
	JMP  atpA1Vec

atpA1Sc:
	CMPQ CX, R9
	JGE  atpNext
	VMOVSD (R13)(CX*8), X5
	VMULSD X1, X5, X5
	VADDSD (DI)(CX*8), X5, X5
	VMOVSD X5, (DI)(CX*8)
	INCQ CX
	JMP  atpA1Sc

atpBoth:
	VBROADCASTSD (SI)(BX*8), Y0
	VBROADCASTSD (R10)(BX*8), Y1
	XORQ CX, CX

atpBVec:
	CMPQ CX, DX
	JGE  atpBSc
	VMOVUPD (DI)(CX*8), Y4
	VMOVUPD (R11)(CX*8), Y5
	VMULPD  Y0, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD (R13)(CX*8), Y5
	VMULPD  Y1, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD Y4, (DI)(CX*8)
	ADDQ $4, CX
	JMP  atpBVec

atpBSc:
	CMPQ CX, R9
	JGE  atpNext
	VMOVSD (DI)(CX*8), X4
	VMOVSD (R11)(CX*8), X5
	VMULSD X0, X5, X5
	VADDSD X5, X4, X4
	VMOVSD (R13)(CX*8), X5
	VMULSD X1, X5, X5
	VADDSD X5, X4, X4
	VMOVSD X4, (DI)(CX*8)
	INCQ CX
	JMP  atpBSc

atpNext:
	LEAQ (DI)(R9*8), DI
	INCQ BX
	JMP  atpLoop

atpDone:
	VZEROUPPER
	RET

// func matmulATRowAVX2(dd []float64, base, n int, a0, b0 []float64)
// The odd-row single-coefficient form: dd[(base+p)·n : +n] += a0[p]·b0
// with the scalar `av != 0` skip.
TEXT ·matmulATRowAVX2(SB), NOSPLIT, $0-88
	MOVQ dd_base+0(FP), DI
	MOVQ base+24(FP), AX
	MOVQ n+32(FP), R9
	IMULQ R9, AX
	LEAQ (DI)(AX*8), DI
	MOVQ a0_base+40(FP), SI
	MOVQ a0_len+48(FP), R8
	MOVQ b0_base+64(FP), R11
	MOVQ R9, DX
	ANDQ $-4, DX
	VXORPD X15, X15, X15
	XORQ BX, BX

atrLoop:
	CMPQ BX, R8
	JGE  atrDone
	VMOVSD (SI)(BX*8), X0
	VUCOMISD X15, X0
	JP   atrNZ
	JNE  atrNZ
	JMP  atrNext

atrNZ:
	VBROADCASTSD (SI)(BX*8), Y0
	XORQ CX, CX

atrVec:
	CMPQ CX, DX
	JGE  atrSc
	VMOVUPD (R11)(CX*8), Y5
	VMULPD  Y0, Y5, Y5
	VADDPD  (DI)(CX*8), Y5, Y5
	VMOVUPD Y5, (DI)(CX*8)
	ADDQ $4, CX
	JMP  atrVec

atrSc:
	CMPQ CX, R9
	JGE  atrNext
	VMOVSD (R11)(CX*8), X5
	VMULSD X0, X5, X5
	VADDSD (DI)(CX*8), X5, X5
	VMOVSD X5, (DI)(CX*8)
	INCQ CX
	JMP  atrSc

atrNext:
	LEAQ (DI)(R9*8), DI
	INCQ BX
	JMP  atrLoop

atrDone:
	VZEROUPPER
	RET

// func matmulATQuadAVX2(dd []float64, base, n int, a0, a1, a2, a3, b0, b1, b2, b3 []float64)
// Four input rows per destination pass: dd[(base+p)·n : +n] gains the
// nonzero coefficients' products in ascending row order — the exact element
// chain of two consecutive pair passes, with half the destination traffic.
// The all-nonzero case (dense activations) takes a fused four-product loop;
// mixed zero patterns fall back to the pairwise bodies; all-zero rows skip.
TEXT ·matmulATQuadAVX2(SB), NOSPLIT, $0-232
	MOVQ dd_base+0(FP), DI
	MOVQ base+24(FP), AX
	MOVQ n+32(FP), R9
	IMULQ R9, AX
	LEAQ (DI)(AX*8), DI       // first output row
	MOVQ a0_base+40(FP), SI
	MOVQ a0_len+48(FP), R8    // np
	MOVQ a1_base+64(FP), R12
	MOVQ b0_base+136(FP), R10
	MOVQ b1_base+160(FP), R11
	MOVQ b2_base+184(FP), R14
	MOVQ b3_base+208(FP), R15
	MOVQ R9, DX
	ANDQ $-4, DX
	VXORPD X15, X15, X15
	XORQ BX, BX               // p

aqLoop:
	CMPQ BX, R8
	JGE  aqDone
	VBROADCASTSD (SI)(BX*8), Y0   // av0 (X0 low holds the scalar)
	VBROADCASTSD (R12)(BX*8), Y1  // av1
	MOVQ a2_base+88(FP), AX
	VBROADCASTSD (AX)(BX*8), Y2   // av2
	MOVQ a3_base+112(FP), AX
	VBROADCASTSD (AX)(BX*8), Y3   // av3
	XORL R13, R13
	VUCOMISD X15, X0
	JP   aqB0
	JNE  aqB0
	JMP  aqT0

aqB0:
	ORL $1, R13

aqT0:
	VUCOMISD X15, X1
	JP   aqB1
	JNE  aqB1
	JMP  aqT1

aqB1:
	ORL $2, R13

aqT1:
	VUCOMISD X15, X2
	JP   aqB2
	JNE  aqB2
	JMP  aqT2

aqB2:
	ORL $4, R13

aqT2:
	VUCOMISD X15, X3
	JP   aqB3
	JNE  aqB3
	JMP  aqT3

aqB3:
	ORL $8, R13

aqT3:
	CMPL R13, $15
	JE   aqAll4
	TESTL R13, R13
	JZ   aqNext

	// Mixed pattern: run the (av0, av1) pair then the (av2, av3) pair,
	// exactly the scalar pairwise grouping.
	MOVL R13, AX
	ANDL $3, AX
	CMPL AX, $3
	JE   aqP01Both
	CMPL AX, $1
	JE   aqP01A0
	CMPL AX, $2
	JE   aqP01A1
	JMP  aqPair23

aqP01Both:
	XORQ CX, CX

aqP01BVec:
	CMPQ CX, DX
	JGE  aqP01BSc
	VMOVUPD (DI)(CX*8), Y4
	VMOVUPD (R10)(CX*8), Y5
	VMULPD  Y0, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD (R11)(CX*8), Y5
	VMULPD  Y1, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD Y4, (DI)(CX*8)
	ADDQ $4, CX
	JMP  aqP01BVec

aqP01BSc:
	CMPQ CX, R9
	JGE  aqPair23
	VMOVSD (DI)(CX*8), X4
	VMOVSD (R10)(CX*8), X5
	VMULSD X0, X5, X5
	VADDSD X5, X4, X4
	VMOVSD (R11)(CX*8), X5
	VMULSD X1, X5, X5
	VADDSD X5, X4, X4
	VMOVSD X4, (DI)(CX*8)
	INCQ CX
	JMP  aqP01BSc

aqP01A0:
	XORQ CX, CX

aqP01A0Vec:
	CMPQ CX, DX
	JGE  aqP01A0Sc
	VMOVUPD (R10)(CX*8), Y5
	VMULPD  Y0, Y5, Y5
	VADDPD  (DI)(CX*8), Y5, Y5
	VMOVUPD Y5, (DI)(CX*8)
	ADDQ $4, CX
	JMP  aqP01A0Vec

aqP01A0Sc:
	CMPQ CX, R9
	JGE  aqPair23
	VMOVSD (R10)(CX*8), X5
	VMULSD X0, X5, X5
	VADDSD (DI)(CX*8), X5, X5
	VMOVSD X5, (DI)(CX*8)
	INCQ CX
	JMP  aqP01A0Sc

aqP01A1:
	XORQ CX, CX

aqP01A1Vec:
	CMPQ CX, DX
	JGE  aqP01A1Sc
	VMOVUPD (R11)(CX*8), Y5
	VMULPD  Y1, Y5, Y5
	VADDPD  (DI)(CX*8), Y5, Y5
	VMOVUPD Y5, (DI)(CX*8)
	ADDQ $4, CX
	JMP  aqP01A1Vec

aqP01A1Sc:
	CMPQ CX, R9
	JGE  aqPair23
	VMOVSD (R11)(CX*8), X5
	VMULSD X1, X5, X5
	VADDSD (DI)(CX*8), X5, X5
	VMOVSD X5, (DI)(CX*8)
	INCQ CX
	JMP  aqP01A1Sc

aqPair23:
	MOVL R13, AX
	SHRL $2, AX
	ANDL $3, AX
	CMPL AX, $3
	JE   aqP23Both
	CMPL AX, $1
	JE   aqP23A2
	CMPL AX, $2
	JE   aqP23A3
	JMP  aqNext

aqP23Both:
	XORQ CX, CX

aqP23BVec:
	CMPQ CX, DX
	JGE  aqP23BSc
	VMOVUPD (DI)(CX*8), Y4
	VMOVUPD (R14)(CX*8), Y5
	VMULPD  Y2, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD (R15)(CX*8), Y5
	VMULPD  Y3, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD Y4, (DI)(CX*8)
	ADDQ $4, CX
	JMP  aqP23BVec

aqP23BSc:
	CMPQ CX, R9
	JGE  aqNext
	VMOVSD (DI)(CX*8), X4
	VMOVSD (R14)(CX*8), X5
	VMULSD X2, X5, X5
	VADDSD X5, X4, X4
	VMOVSD (R15)(CX*8), X5
	VMULSD X3, X5, X5
	VADDSD X5, X4, X4
	VMOVSD X4, (DI)(CX*8)
	INCQ CX
	JMP  aqP23BSc

aqP23A2:
	XORQ CX, CX

aqP23A2Vec:
	CMPQ CX, DX
	JGE  aqP23A2Sc
	VMOVUPD (R14)(CX*8), Y5
	VMULPD  Y2, Y5, Y5
	VADDPD  (DI)(CX*8), Y5, Y5
	VMOVUPD Y5, (DI)(CX*8)
	ADDQ $4, CX
	JMP  aqP23A2Vec

aqP23A2Sc:
	CMPQ CX, R9
	JGE  aqNext
	VMOVSD (R14)(CX*8), X5
	VMULSD X2, X5, X5
	VADDSD (DI)(CX*8), X5, X5
	VMOVSD X5, (DI)(CX*8)
	INCQ CX
	JMP  aqP23A2Sc

aqP23A3:
	XORQ CX, CX

aqP23A3Vec:
	CMPQ CX, DX
	JGE  aqP23A3Sc
	VMOVUPD (R15)(CX*8), Y5
	VMULPD  Y3, Y5, Y5
	VADDPD  (DI)(CX*8), Y5, Y5
	VMOVUPD Y5, (DI)(CX*8)
	ADDQ $4, CX
	JMP  aqP23A3Vec

aqP23A3Sc:
	CMPQ CX, R9
	JGE  aqNext
	VMOVSD (R15)(CX*8), X5
	VMULSD X3, X5, X5
	VADDSD (DI)(CX*8), X5, X5
	VMOVSD X5, (DI)(CX*8)
	INCQ CX
	JMP  aqP23A3Sc

aqAll4:
	XORQ CX, CX

aqA4Vec8:
	// Two independent 4-lane output groups per iteration: each element's
	// y + p0 + p1 + p2 + p3 chain is untouched, the second group only fills
	// the adder's latency bubbles.
	LEAQ 8(CX), AX
	CMPQ AX, DX
	JGT  aqA4Vec
	VMOVUPD (DI)(CX*8), Y4
	VMOVUPD 32(DI)(CX*8), Y6
	VMOVUPD (R10)(CX*8), Y5
	VMULPD  Y0, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD 32(R10)(CX*8), Y7
	VMULPD  Y0, Y7, Y7
	VADDPD  Y7, Y6, Y6
	VMOVUPD (R11)(CX*8), Y5
	VMULPD  Y1, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD 32(R11)(CX*8), Y7
	VMULPD  Y1, Y7, Y7
	VADDPD  Y7, Y6, Y6
	VMOVUPD (R14)(CX*8), Y5
	VMULPD  Y2, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD 32(R14)(CX*8), Y7
	VMULPD  Y2, Y7, Y7
	VADDPD  Y7, Y6, Y6
	VMOVUPD (R15)(CX*8), Y5
	VMULPD  Y3, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD 32(R15)(CX*8), Y7
	VMULPD  Y3, Y7, Y7
	VADDPD  Y7, Y6, Y6
	VMOVUPD Y4, (DI)(CX*8)
	VMOVUPD Y6, 32(DI)(CX*8)
	ADDQ $8, CX
	JMP  aqA4Vec8

aqA4Vec:
	CMPQ CX, DX
	JGE  aqA4Sc
	VMOVUPD (DI)(CX*8), Y4
	VMOVUPD (R10)(CX*8), Y5
	VMULPD  Y0, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD (R11)(CX*8), Y5
	VMULPD  Y1, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD (R14)(CX*8), Y5
	VMULPD  Y2, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD (R15)(CX*8), Y5
	VMULPD  Y3, Y5, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD Y4, (DI)(CX*8)
	ADDQ $4, CX
	JMP  aqA4Vec

aqA4Sc:
	CMPQ CX, R9
	JGE  aqNext
	VMOVSD (DI)(CX*8), X4
	VMOVSD (R10)(CX*8), X5
	VMULSD X0, X5, X5
	VADDSD X5, X4, X4
	VMOVSD (R11)(CX*8), X5
	VMULSD X1, X5, X5
	VADDSD X5, X4, X4
	VMOVSD (R14)(CX*8), X5
	VMULSD X2, X5, X5
	VADDSD X5, X4, X4
	VMOVSD (R15)(CX*8), X5
	VMULSD X3, X5, X5
	VADDSD X5, X4, X4
	VMOVSD X4, (DI)(CX*8)
	INCQ CX
	JMP  aqA4Sc

aqNext:
	LEAQ (DI)(R9*8), DI
	INCQ BX
	JMP  aqLoop

aqDone:
	VZEROUPPER
	RET
