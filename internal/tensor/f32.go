package tensor

import "math"

// Tensor32 is a row-major float32 matrix for the opt-in reduced-precision
// inference path. It deliberately has no autodiff or SIMD surface: float32
// halves memory traffic and lets the compiler vectorize twice as many lanes,
// and inference is the only place the looser precision is acceptable. The
// float64 path remains the bitwise-pinned reference; Tensor32 results are
// compared against it under an explicit tolerance (see the graphnn float32
// tolerance table), never bit for bit.
type Tensor32 struct {
	R, C int
	Data []float32
}

// New32 returns a zero r×c float32 tensor.
func New32(r, c int) *Tensor32 {
	return &Tensor32{R: r, C: c, Data: make([]float32, r*c)}
}

// ToFloat32 converts t by rounding every element to float32.
func (t *Tensor) ToFloat32() *Tensor32 {
	o := &Tensor32{R: t.R, C: t.C, Data: make([]float32, len(t.Data))}
	for i, v := range t.Data {
		o.Data[i] = float32(v)
	}
	return o
}

// At returns the element at row i, column j.
func (t *Tensor32) At(i, j int) float32 { return t.Data[i*t.C+j] }

// Row returns row i as a slice view.
func (t *Tensor32) Row(i int) []float32 { return t.Data[i*t.C : (i+1)*t.C] }

// MatMulInto32 computes dst = a·b. dst must not alias a or b.
func MatMulInto32(dst, a, b *Tensor32) {
	n := b.C
	for i := 0; i < a.R; i++ {
		crow := dst.Data[i*n : (i+1)*n]
		clear(crow)
		arow := a.Data[i*a.C : (i+1)*a.C]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulBTInto32 computes dst = a·bᵀ.
func MatMulBTInto32(dst, a, b *Tensor32) {
	k := a.C
	for i := 0; i < a.R; i++ {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*b.R : (i+1)*b.R]
		for j := 0; j < b.R; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			drow[j] = s
		}
	}
}

// LinearInto32 computes dst = x·w + b with the 1×out bias broadcast per row.
func LinearInto32(dst, x, w, b *Tensor32) {
	MatMulInto32(dst, x, w)
	n := w.C
	for i := 0; i < dst.R; i++ {
		drow := dst.Data[i*n : (i+1)*n]
		for j, bv := range b.Data {
			drow[j] += bv
		}
	}
}

// AddInPlace32 adds b into a elementwise.
func AddInPlace32(a, b *Tensor32) {
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// Scale32 multiplies t by s in place.
func Scale32(t *Tensor32, s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// ReLU32 applies max(x, 0) in place.
func ReLU32(t *Tensor32) {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
}

// LeakyReLU32 applies x>0 ? x : alpha·x in place.
func LeakyReLU32(t *Tensor32, alpha float32) {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = alpha * v
		}
	}
}

// SoftmaxRows32 applies a row-wise masked softmax in place: mask (same shape,
// may be nil) is added to the logits; −Inf disables a position. A row that is
// entirely masked becomes all zeros, matching the float64 softmaxRow.
func SoftmaxRows32(t, mask *Tensor32) {
	for i := 0; i < t.R; i++ {
		row := t.Row(i)
		if mask != nil {
			for j, mv := range mask.Row(i) {
				row[j] += mv
			}
		}
		max := float32(math.Inf(-1))
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		if max == float32(math.Inf(-1)) {
			clear(row)
			continue
		}
		var sum float32
		for j, v := range row {
			e := float32(math.Exp(float64(v - max)))
			row[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
}

// LayerNormRows32 normalizes each row to zero mean and unit variance, then
// applies the 1×dim affine gamma/beta.
func LayerNormRows32(t, gamma, beta *Tensor32, eps float32) {
	n := t.C
	for i := 0; i < t.R; i++ {
		row := t.Row(i)
		var mean float32
		for _, v := range row {
			mean += v
		}
		mean /= float32(n)
		var vr float32
		for _, v := range row {
			d := v - mean
			vr += d * d
		}
		vr /= float32(n)
		inv := 1 / float32(math.Sqrt(float64(vr+eps)))
		for j, v := range row {
			row[j] = (v-mean)*inv*gamma.Data[j] + beta.Data[j]
		}
	}
}

// SumRowsInto32 computes the 1×C column sums of t into dst.
func SumRowsInto32(dst, t *Tensor32) {
	clear(dst.Data)
	for i := 0; i < t.R; i++ {
		for j, v := range t.Row(i) {
			dst.Data[j] += v
		}
	}
}

// AddOuterInto32 computes dst[i][j] = a[i] + b[j] for column vectors a (N×1)
// and b (M×1).
func AddOuterInto32(dst, a, b *Tensor32) {
	for i := 0; i < a.R; i++ {
		av := a.Data[i]
		drow := dst.Data[i*b.R : (i+1)*b.R]
		for j := 0; j < b.R; j++ {
			drow[j] = av + b.Data[j]
		}
	}
}

// CopyCols32 copies src into dst columns [lo, lo+src.C).
func CopyCols32(dst, src *Tensor32, lo int) {
	for i := 0; i < src.R; i++ {
		copy(dst.Data[i*dst.C+lo:i*dst.C+lo+src.C], src.Row(i))
	}
}

// SliceColsInto32 copies src columns [lo, hi) into dst.
func SliceColsInto32(dst, src *Tensor32, lo, hi int) {
	for i := 0; i < src.R; i++ {
		copy(dst.Row(i), src.Data[i*src.C+lo:i*src.C+hi])
	}
}
