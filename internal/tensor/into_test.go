package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// Property tests: every destination-passing / in-place / fused kernel must
// be bitwise-equal to a naive allocating reference on random shapes,
// including degenerate ones (R or C = 0, 1×C rows, R×1 columns).

func randT(rng *rand.Rand, r, c int) *Tensor {
	t := New(r, c)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

func wantBitwise(t *testing.T, op string, got, want *Tensor) {
	t.Helper()
	if got.R != want.R || got.C != want.C {
		t.Fatalf("%s shape %dx%d want %dx%d", op, got.R, got.C, want.R, want.C)
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s differs at %d: %x != %x",
				op, i, math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
		}
	}
}

// naive references reproducing the seed implementations operation-for-
// operation (the kernels must be bitwise-identical, not just close).

func refMatMul(a, b *Tensor) *Tensor {
	out := New(a.R, b.C)
	for i := 0; i < a.R; i++ {
		for p := 0; p < a.C; p++ {
			av := a.At(i, p)
			for j := 0; j < b.C; j++ {
				out.Data[i*b.C+j] += av * b.At(p, j)
			}
		}
	}
	return out
}

func refMatMulBT(a, b *Tensor) *Tensor {
	out := New(a.R, b.R)
	for i := 0; i < a.R; i++ {
		for j := 0; j < b.R; j++ {
			s := 0.0
			for p := 0; p < a.C; p++ {
				s += a.At(i, p) * b.At(j, p)
			}
			out.Data[i*b.R+j] = s
		}
	}
	return out
}

func refTranspose(t *Tensor) *Tensor {
	out := New(t.C, t.R)
	for i := 0; i < t.R; i++ {
		for j := 0; j < t.C; j++ {
			out.Data[j*t.R+i] = t.At(i, j)
		}
	}
	return out
}

// refSoftmaxRows is the seed implementation, including its per-element
// mask.At(i, j) access pattern and all-masked-row zeroing.
func refSoftmaxRows(t, mask *Tensor) *Tensor {
	out := New(t.R, t.C)
	for i := 0; i < t.R; i++ {
		row := t.Row(i)
		orow := out.Row(i)
		maxv := math.Inf(-1)
		for j, v := range row {
			if mask != nil {
				v += mask.At(i, j)
			}
			orow[j] = v
			if v > maxv {
				maxv = v
			}
		}
		if math.IsInf(maxv, -1) {
			clear(orow)
			continue
		}
		sum := 0.0
		for j, v := range orow {
			e := math.Exp(v - maxv)
			orow[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out
}

var propShapes = [][2]int{
	{0, 0}, {0, 3}, {3, 0}, {1, 1}, {1, 7}, {7, 1}, {2, 3}, {5, 5},
	{1, 64}, {64, 1}, {16, 16}, {3, 33}, {33, 3}, {17, 40},
}

func TestMatMulKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, mk := range propShapes {
		for _, n := range []int{0, 1, 2, 5, 33} {
			m, k := mk[0], mk[1]
			a, b := randT(rng, m, k), randT(rng, k, n)
			wantBitwise(t, "MatMul", MatMul(a, b), refMatMul(a, b))

			// MatMulBT's dot kernel accumulates four unrolled partial sums,
			// so it matches a sequential reference only to rounding, not
			// bitwise (bitwise stability vs the allocating API is covered by
			// the wrapper delegating to the same kernel).
			bt := randT(rng, n, k)
			if got, want := MatMulBT(a, bt), refMatMulBT(a, bt); !AllClose(got, want, 1e-9) {
				t.Fatalf("MatMulBT %dx%d·(%dx%d)ᵀ diverges from reference", m, k, n, k)
			}

			at := randT(rng, k, m) // MatMulAT(at, b) with at k×m, b … needs equal rows
			bb := randT(rng, k, n)
			wantBitwise(t, "MatMulAT", MatMulAT(at, bb), refMatMul(refTranspose(at), bb))
		}
	}
}

func TestLinearIntoMatchesMatMulAddRowVec(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, mk := range propShapes {
		for _, n := range []int{1, 3, 64} {
			m, k := mk[0], mk[1]
			x, w, bias := randT(rng, m, k), randT(rng, k, n), randT(rng, 1, n)
			got := New(m, n)
			LinearInto(got, x, w, bias)
			wantBitwise(t, "LinearInto", got, AddRowVec(MatMul(x, w), bias))
		}
	}
}

func TestElementwiseKernelsMatchZipWith(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, sh := range propShapes {
		a, b := randT(rng, sh[0], sh[1]), randT(rng, sh[0], sh[1])
		wantBitwise(t, "Add", Add(a, b), zipWith(a, b, func(x, y float64) float64 { return x + y }))
		wantBitwise(t, "Sub", Sub(a, b), zipWith(a, b, func(x, y float64) float64 { return x - y }))
		wantBitwise(t, "Mul", Mul(a, b), zipWith(a, b, func(x, y float64) float64 { return x * y }))
		wantBitwise(t, "Div", Div(a, b), zipWith(a, b, func(x, y float64) float64 { return x / y }))
	}
}

// TestIntoKernelsAliasedDst: kernels documented as alias-safe must produce
// identical results when dst is one of their operands.
func TestIntoKernelsAliasedDst(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, sh := range propShapes {
		a, b := randT(rng, sh[0], sh[1]), randT(rng, sh[0], sh[1])

		check := func(op string, want *Tensor, run func(dst *Tensor)) {
			t.Helper()
			dst := a.Clone()
			run(dst)
			wantBitwise(t, op+" aliased", dst, want)
		}
		check("AddInto", Add(a, b), func(dst *Tensor) { AddInto(dst, dst, b) })
		check("SubInto", Sub(a, b), func(dst *Tensor) { SubInto(dst, dst, b) })
		check("MulInto", Mul(a, b), func(dst *Tensor) { MulInto(dst, dst, b) })
		check("DivInto", Div(a, b), func(dst *Tensor) { DivInto(dst, dst, b) })
		check("ScaleInto", Scale(a, -1.5), func(dst *Tensor) { ScaleInto(dst, dst, -1.5) })
		check("MapInto", Map(a, math.Exp), func(dst *Tensor) { MapInto(dst, dst, math.Exp) })
		check("SoftmaxRowsInto", SoftmaxRows(a, nil), func(dst *Tensor) { SoftmaxRowsInto(dst, dst, nil) })
		if sh[0] > 0 {
			v := randT(rng, 1, sh[1])
			check("AddRowVecInto", AddRowVec(a, v), func(dst *Tensor) { AddRowVecInto(dst, dst, v) })
		}
	}
}

func TestSoftmaxRowsMaskedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	ninf := math.Inf(-1)
	for _, sh := range propShapes {
		x := randT(rng, sh[0], sh[1])
		mask := New(sh[0], sh[1])
		for i := range mask.Data {
			if rng.Intn(3) == 0 {
				mask.Data[i] = ninf
			}
		}
		// Force one fully-masked row when there is room: it must yield
		// zeros, not NaN.
		if sh[0] > 0 && sh[1] > 0 {
			for j := range mask.Row(0) {
				mask.Row(0)[j] = ninf
			}
		}
		got := SoftmaxRows(x, mask)
		wantBitwise(t, "SoftmaxRows masked", got, refSoftmaxRows(x, mask))
		// In-place form over the same inputs.
		inplace := x.Clone()
		SoftmaxRowsInto(inplace, inplace, mask)
		wantBitwise(t, "SoftmaxRowsInto aliased masked", inplace, got)
	}
}

// TestTransposeBlockedMatchesNaive is the bench guard for the cache-blocked
// transpose: identical to the naive column walk on every shape, including
// ones that don't divide the block size.
func TestTransposeBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	shapes := append([][2]int{}, propShapes...)
	shapes = append(shapes, [2]int{transposeBlock, transposeBlock},
		[2]int{transposeBlock - 1, transposeBlock + 1},
		[2]int{2*transposeBlock + 3, transposeBlock / 2},
		[2]int{100, 65})
	for _, sh := range shapes {
		x := randT(rng, sh[0], sh[1])
		wantBitwise(t, "Transpose", x.Transpose(), refTranspose(x))
	}
}

func TestReductionAndLayoutKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, sh := range propShapes {
		r, c := sh[0], sh[1]
		x := randT(rng, r, c)

		sumRows := New(1, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				sumRows.Data[j] += x.At(i, j)
			}
		}
		wantBitwise(t, "SumRows", SumRows(x), sumRows)

		sumCols := New(r, 1)
		for i := 0; i < r; i++ {
			s := 0.0
			for j := 0; j < c; j++ {
				s += x.At(i, j)
			}
			sumCols.Data[i] = s
		}
		wantBitwise(t, "SumCols", SumCols(x), sumCols)

		if c >= 2 {
			lo, hi := 1, c
			sl := SliceCols(x, lo, hi)
			for i := 0; i < r; i++ {
				for j := lo; j < hi; j++ {
					if sl.At(i, j-lo) != x.At(i, j) {
						t.Fatal("SliceCols mismatch")
					}
				}
			}
			y := randT(rng, r, 3)
			cc := ConcatCols(x, y)
			if cc.R != r || cc.C != c+3 {
				t.Fatalf("ConcatCols shape %dx%d", cc.R, cc.C)
			}
			for i := 0; i < r; i++ {
				for j := 0; j < c; j++ {
					if cc.At(i, j) != x.At(i, j) {
						t.Fatal("ConcatCols left half mismatch")
					}
				}
				for j := 0; j < 3; j++ {
					if cc.At(i, c+j) != y.At(i, j) {
						t.Fatal("ConcatCols right half mismatch")
					}
				}
			}
		}

		if r > 0 {
			idx := make([]int, 5)
			for i := range idx {
				idx[i] = rng.Intn(r)
			}
			g := GatherRows(x, idx)
			for i, id := range idx {
				for j := 0; j < c; j++ {
					if g.At(i, j) != x.At(id, j) {
						t.Fatal("GatherRows mismatch")
					}
				}
			}
		}

		if r > 0 && c > 0 {
			av, bv := randT(rng, r, 1), randT(rng, c, 1)
			ao := AddOuter(av, bv)
			for i := 0; i < r; i++ {
				for j := 0; j < c; j++ {
					want := av.Data[i] + bv.Data[j]
					if math.Float64bits(ao.At(i, j)) != math.Float64bits(want) {
						t.Fatal("AddOuter mismatch")
					}
				}
			}
		}
	}
}

// TestIntoRejectsBadDst: destination shape mismatches must panic, not
// silently corrupt.
func TestIntoRejectsBadDst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMulInto accepted a wrong-shaped destination")
		}
	}()
	MatMulInto(New(2, 2), New(2, 3), New(3, 4))
}
