// Batched (segmented) kernels: B stage graphs of like shape execute as one
// blocked operation over a padded, stacked tensor instead of B small ones.
//
// Layout. A batch of B graphs with node counts Counts[g] ≤ Stride is stacked
// into one row-major (B·Stride)×C tensor: graph g owns the row panel
// [g·Stride, g·Stride+Counts[g]) and the remaining Stride−Counts[g] rows are
// padding. Every kernel below computes only the real rows of each panel and
// fully defines (clears) the pad rows of its destination, so padding never
// feeds a reduction and uninitialized arena buffers never leak.
//
// Score-space ("panel-width") tensors hold each graph's node×node attention
// scores: panel g's row i uses only the first Counts[g] columns of its
// Stride-wide row; columns [Counts[g], Stride) are kept zero.
//
// Bitwise contract. Each segmented kernel calls the same inner row kernels
// (matmulRowKernel, matmulBTRowKernel, matmulATRows, the softmax row loop)
// as the serial per-graph path, over the same operand ranges in the same
// order, so every real row is bitwise identical to running the graphs one at
// a time. The batched forward is pure amortization, never a numerical
// change.
package tensor

import "math"

// BatchLayout describes how B ragged graphs are stacked into one padded
// tensor: graph g's rows occupy [g·Stride, g·Stride+Counts[g]).
type BatchLayout struct {
	B      int   // number of graphs
	Stride int   // rows reserved per graph (max node count in the batch)
	Counts []int // real rows per graph; len == B, each in [1, Stride]
}

// Rows returns the stacked row count B·Stride.
func (l BatchLayout) Rows() int { return l.B * l.Stride }

// Padded reports whether any panel has pad rows.
func (l BatchLayout) Padded() bool {
	for _, c := range l.Counts {
		if c != l.Stride {
			return true
		}
	}
	return false
}

// PadWasteFraction is the fraction of stacked rows that are padding —
// 1 − ΣCounts/(B·Stride) — the price of ragged node counts.
func (l BatchLayout) PadWasteFraction() float64 {
	if l.B == 0 || l.Stride == 0 {
		return 0
	}
	n := 0
	for _, c := range l.Counts {
		n += c
	}
	return 1 - float64(n)/float64(l.Rows())
}

func checkSeg(t *Tensor, l BatchLayout, op string) {
	if t.R != l.Rows() {
		shapePanic("%s stacked tensor has %d rows, layout wants %d", op, t.R, l.Rows())
	}
}

// clearRows zeroes rows [lo, hi) of t.
func clearRows(t *Tensor, lo, hi int) {
	clear(t.Data[lo*t.C : hi*t.C])
}

// SegLinearInto computes dst = x·w + bias on the real rows of every panel
// (bitwise-identical to per-graph LinearInto) and clears pad rows. w and
// bias are shared across panels. dst must not alias x, w, or bias.
func SegLinearInto(dst, x, w, bias *Tensor, l BatchLayout) {
	if x.C != w.R {
		shapePanic("SegLinear shape mismatch %dx%d · %dx%d", x.R, x.C, w.R, w.C)
	}
	checkInto(dst, x.R, w.C, "SegLinearInto")
	checkSeg(x, l, "SegLinearInto")
	if !l.Padded() {
		linearRowRange(dst, x, w, bias, 0, x.R)
		return
	}
	for g := 0; g < l.B; g++ {
		lo := g * l.Stride
		hi := lo + l.Counts[g]
		linearRowRange(dst, x, w, bias, lo, hi)
		clearRows(dst, hi, lo+l.Stride)
	}
}

// SegMatMulInto computes dst = x·b on the real rows of every panel with b
// shared across panels, clearing pad rows. dst must not alias x or b.
func SegMatMulInto(dst, x, b *Tensor, l BatchLayout) {
	if x.C != b.R {
		shapePanic("SegMatMul shape mismatch %dx%d · %dx%d", x.R, x.C, b.R, b.C)
	}
	checkInto(dst, x.R, b.C, "SegMatMulInto")
	checkSeg(x, l, "SegMatMulInto")
	if !l.Padded() {
		matmulRowRange(dst, x, b, 0, x.R)
		return
	}
	for g := 0; g < l.B; g++ {
		lo := g * l.Stride
		hi := lo + l.Counts[g]
		matmulRowRange(dst, x, b, lo, hi)
		clearRows(dst, hi, lo+l.Stride)
	}
}

// SegMatMulBTInto computes dst = g·bᵀ on the real rows of every panel with b
// shared across panels (the dX kernel of the segmented linear backward),
// clearing pad rows. dst must not alias g or b.
func SegMatMulBTInto(dst, g, b *Tensor, l BatchLayout) {
	if g.C != b.C {
		shapePanic("SegMatMulBT shape mismatch %dx%d · (%dx%d)ᵀ", g.R, g.C, b.R, b.C)
	}
	checkInto(dst, g.R, b.R, "SegMatMulBTInto")
	checkSeg(g, l, "SegMatMulBTInto")
	if !l.Padded() {
		matmulBTRowRange(dst, g, b, 0, g.R)
		return
	}
	for p := 0; p < l.B; p++ {
		lo := p * l.Stride
		hi := lo + l.Counts[p]
		matmulBTRowRange(dst, g, b, lo, hi)
		clearRows(dst, hi, lo+l.Stride)
	}
}

// MatMulATRangeInto computes dst = a[i0:i1]ᵀ · b[i0:i1] — the weight
// gradient of one panel's rows — bitwise-identical to MatMulATInto over the
// panel copied out as its own tensor. dst must not alias a or b.
func MatMulATRangeInto(dst, a, b *Tensor, i0, i1 int) {
	if a.R != b.R {
		shapePanic("MatMulATRange shape mismatch (%dx%d)ᵀ · %dx%d", a.R, a.C, b.R, b.C)
	}
	checkInto(dst, a.C, b.C, "MatMulATRangeInto")
	clear(dst.Data)
	matmulATRows(dst, a, b, i0, i1, 0, a.C)
}

// SumRowsRangeInto computes the 1×C column sums of rows [i0, i1) — the bias
// gradient of one panel — bitwise-identical to SumRowsInto over the panel.
func SumRowsRangeInto(dst, t *Tensor, i0, i1 int) {
	checkInto(dst, 1, t.C, "SumRowsRangeInto")
	clear(dst.Data)
	for i := i0; i < i1; i++ {
		row := t.Row(i)
		for j, v := range row {
			dst.Data[j] += v
		}
	}
}

// SegSumRowsInto pools each panel's real rows into one row of dst (B×C) —
// the batched global-add-pool, bitwise-identical to per-graph SumRowsInto.
func SegSumRowsInto(dst, x *Tensor, l BatchLayout) {
	checkInto(dst, l.B, x.C, "SegSumRowsInto")
	checkSeg(x, l, "SegSumRowsInto")
	clear(dst.Data)
	for g := 0; g < l.B; g++ {
		lo := g * l.Stride
		hi := lo + l.Counts[g]
		drow := dst.Row(g)
		for i := lo; i < hi; i++ {
			row := x.Row(i)
			for j, v := range row {
				drow[j] += v
			}
		}
	}
}

// SegAdjMatMulInto computes dst's panel g = adjs[g]·x_g — the batched GCN
// aggregation, each graph's c×c normalized adjacency applied to its own
// panel — and clears pad rows. dst must not alias x.
func SegAdjMatMulInto(dst *Tensor, adjs []*Tensor, x *Tensor, l BatchLayout) {
	checkInto(dst, x.R, x.C, "SegAdjMatMulInto")
	checkSeg(x, l, "SegAdjMatMulInto")
	n := x.C
	for g := 0; g < l.B; g++ {
		c := l.Counts[g]
		adj := adjs[g]
		if adj.R != c || adj.C != c {
			shapePanic("SegAdjMatMul adj %dx%d, panel wants %dx%d", adj.R, adj.C, c, c)
		}
		base := g * l.Stride
		for i := 0; i < c; i++ {
			crow := dst.Data[(base+i)*n : (base+i+1)*n]
			clear(crow)
			matmulRowKernel(crow, adj.Row(i), x.Data, base, n)
		}
		clearRows(dst, base+c, base+l.Stride)
	}
}

// PanelAdjATInto computes dst's panel g = adjs[g]ᵀ·gt_g — the GCN
// aggregation backward dX — and clears pad rows. dst must not alias gt.
func PanelAdjATInto(dst *Tensor, adjs []*Tensor, gt *Tensor, l BatchLayout) {
	checkInto(dst, gt.R, gt.C, "PanelAdjATInto")
	checkSeg(gt, l, "PanelAdjATInto")
	n := gt.C
	for g := 0; g < l.B; g++ {
		c := l.Counts[g]
		adj := adjs[g]
		base := g * l.Stride
		clearRows(dst, base, base+l.Stride)
		atPanelAccum(dst.Data, base, n,
			func(i int) []float64 { return adj.Row(i) },
			func(i int) []float64 { return gt.Data[(base+i)*n : (base+i+1)*n] },
			c, c)
	}
}

// atPanelAccum is the panel form of matmulATRows: dst rows base+p (p < np)
// accumulate Σ_i arow(i)[p] · brow(i) for i < ni, pairing input rows exactly
// as matmulATRows does — same axpy2/axpy grouping, same ascending-i
// element-wise add order, same `av != 0` skip — so a panel is bitwise equal
// to MatMulATInto over the graph's own tensors.
func atPanelAccum(dd []float64, base, n int, arow, brow func(i int) []float64, ni, np int) {
	i := 0
	if simdKernels {
		for ; i+4 <= ni; i += 4 {
			matmulATQuadAVX2(dd, base, n,
				arow(i)[:np], arow(i + 1)[:np], arow(i + 2)[:np], arow(i + 3)[:np],
				brow(i), brow(i+1), brow(i+2), brow(i+3))
		}
		if i+2 <= ni {
			matmulATPairAVX2(dd, base, n, arow(i)[:np], arow(i + 1)[:np], brow(i), brow(i+1))
			i += 2
		}
		if i < ni {
			matmulATRowAVX2(dd, base, n, arow(i)[:np], brow(i))
		}
		return
	}
	for ; i+2 <= ni; i += 2 {
		a0, a1 := arow(i), arow(i+1)
		b0, b1 := brow(i), brow(i+1)
		for p := 0; p < np; p++ {
			av0, av1 := a0[p], a1[p]
			o := (base + p) * n
			if av0 != 0 {
				if av1 != 0 {
					axpy2(av0, av1, b0, b1, dd[o:o+n])
				} else {
					axpy(av0, b0, dd[o:o+n])
				}
			} else if av1 != 0 {
				axpy(av1, b1, dd[o:o+n])
			}
		}
	}
	for ; i < ni; i++ {
		a0, b0 := arow(i), brow(i)
		for p := 0; p < np; p++ {
			if av := a0[p]; av != 0 {
				o := (base + p) * n
				axpy(av, b0, dd[o:o+n])
			}
		}
	}
}

// PanelMatMulBTInto computes the score-space product dst_g = a_g·b_gᵀ per
// panel: a and b are stacked (rows×k) tensors, dst is panel-width
// (rows×Stride) with row i of panel g holding the c = Counts[g] products
// against b's panel rows in columns [0, c). Pad columns and pad rows are
// cleared. dst must not alias a or b.
func PanelMatMulBTInto(dst, a, b *Tensor, l BatchLayout) {
	if a.C != b.C {
		shapePanic("PanelMatMulBT shape mismatch %dx%d · (%dx%d)ᵀ", a.R, a.C, b.R, b.C)
	}
	checkInto(dst, a.R, l.Stride, "PanelMatMulBTInto")
	checkSeg(a, l, "PanelMatMulBTInto")
	k := a.C
	s := l.Stride
	for g := 0; g < l.B; g++ {
		c := l.Counts[g]
		base := g * s
		for i := base; i < base+c; i++ {
			crow := dst.Data[i*s : (i+1)*s]
			matmulBTRowKernel(crow, a.Data[i*k:(i+1)*k], b.Data, base, c, k)
			clear(crow[c:])
		}
		clearRows(dst, base+c, base+s)
	}
}

// PanelMatMulInto computes dst_g = a_g·b_g per panel, where a is panel-width
// (each real row uses columns [0, c)) and b is a stacked (rows×k) tensor —
// the attention·V product and the dQ backward. Pad rows are cleared. dst
// must not alias a or b.
func PanelMatMulInto(dst, a, b *Tensor, l BatchLayout) {
	if a.C != l.Stride {
		shapePanic("PanelMatMul wants panel-width %d input, got %d", l.Stride, a.C)
	}
	checkInto(dst, a.R, b.C, "PanelMatMulInto")
	checkSeg(b, l, "PanelMatMulInto")
	k := b.C
	s := l.Stride
	for g := 0; g < l.B; g++ {
		c := l.Counts[g]
		base := g * s
		for i := base; i < base+c; i++ {
			crow := dst.Data[i*k : (i+1)*k]
			clear(crow)
			matmulRowKernel(crow, a.Data[i*s:i*s+c], b.Data, base, k)
		}
		clearRows(dst, base+c, base+s)
	}
}

// PanelMatMulATInto computes dst_g = a_gᵀ·b_g per panel, where a is
// panel-width and b is stacked (rows×k) — the dK/dV backward of the score
// products. Pad rows are cleared. dst must not alias a or b.
func PanelMatMulATInto(dst, a, b *Tensor, l BatchLayout) {
	if a.C != l.Stride {
		shapePanic("PanelMatMulAT wants panel-width %d input, got %d", l.Stride, a.C)
	}
	checkInto(dst, b.R, b.C, "PanelMatMulATInto")
	checkSeg(b, l, "PanelMatMulATInto")
	n := b.C
	s := l.Stride
	for g := 0; g < l.B; g++ {
		c := l.Counts[g]
		base := g * s
		clearRows(dst, base, base+s)
		atPanelAccum(dst.Data, base, n,
			func(i int) []float64 { return a.Data[(base+i)*s : (base+i)*s+c] },
			func(i int) []float64 { return b.Data[(base+i)*n : (base+i+1)*n] },
			c, c)
	}
}

// PanelSoftmaxInto computes row-wise softmax over each panel's logical width
// c with the graph's own additive mask (masks[g] is c×c; −Inf disables, nil
// masks none), replicating the SoftmaxRowsInto row loop exactly. Pad columns
// and rows are cleared. dst may alias t (the in-place attention form).
func PanelSoftmaxInto(dst, t *Tensor, masks []*Tensor, l BatchLayout) {
	if t.C != l.Stride {
		shapePanic("PanelSoftmax wants panel-width %d input, got %d", l.Stride, t.C)
	}
	checkInto(dst, t.R, t.C, "PanelSoftmaxInto")
	checkSeg(t, l, "PanelSoftmaxInto")
	s := l.Stride
	for g := 0; g < l.B; g++ {
		c := l.Counts[g]
		base := g * s
		var mask *Tensor
		if masks != nil {
			mask = masks[g]
			if mask != nil && (mask.R != c || mask.C != c) {
				shapePanic("PanelSoftmax mask %dx%d, panel wants %dx%d", mask.R, mask.C, c, c)
			}
		}
		for i := 0; i < c; i++ {
			row := t.Data[(base+i)*s : (base+i)*s+c]
			orow := dst.Data[(base+i)*s : (base+i)*s+c]
			softmaxRow(orow, row, mask, i)
			clear(dst.Data[(base+i)*s+c : (base+i+1)*s])
		}
		clearRows(dst, base+c, base+s)
	}
}

// softmaxRow is one row of SoftmaxRowsInto, shared between the full-tensor
// and panel kernels so both produce bitwise-identical rows. mask may be nil;
// mi indexes the mask row.
func softmaxRow(orow, row []float64, mask *Tensor, mi int) {
	// The max pass vectorizes bitwise-safely: the running max under strict >
	// is order-independent in value, NaN candidates never win under either
	// order, and the one ambiguity — a row whose max appears as both −0 and
	// +0 — is erased by the exp pass (v∓0 differs only at v=±0, and
	// exp(±0) is exactly 1 either way). The exp-and-sum pass stays scalar:
	// its sequential sum order is pinned.
	var maxv float64
	switch {
	case simdKernels && mask != nil:
		maxv = softmaxFwdAVX2(orow, row, mask.Row(mi))
	case simdKernels:
		maxv = softmaxFwdNMAVX2(orow, row)
	case mask != nil:
		maxv = math.Inf(-1)
		mrow := mask.Row(mi)
		for j, v := range row {
			v += mrow[j]
			orow[j] = v
			if v > maxv {
				maxv = v
			}
		}
	default:
		maxv = math.Inf(-1)
		for j, v := range row {
			orow[j] = v
			if v > maxv {
				maxv = v
			}
		}
	}
	if math.IsInf(maxv, -1) {
		clear(orow)
		return
	}
	sum := 0.0
	for j, v := range orow {
		e := math.Exp(v - maxv)
		orow[j] = e
		sum += e
	}
	inv := 1 / sum
	if simdKernels {
		scaleIntoAVX2(orow, orow, inv)
		return
	}
	for j := range orow {
		orow[j] *= inv
	}
}

// PanelAddOuterInto computes panel g's logits dst[i][j] = a[i] + b[base+j]
// for j < c from stacked column vectors a, b (rows×1) — the batched GAT
// attention-logit outer sum. Pad columns and rows are cleared. dst must not
// alias a or b.
func PanelAddOuterInto(dst, a, b *Tensor, l BatchLayout) {
	if a.C != 1 || b.C != 1 {
		shapePanic("PanelAddOuter wants column vectors, got %dx%d and %dx%d", a.R, a.C, b.R, b.C)
	}
	checkInto(dst, a.R, l.Stride, "PanelAddOuterInto")
	checkSeg(a, l, "PanelAddOuterInto")
	s := l.Stride
	for g := 0; g < l.B; g++ {
		c := l.Counts[g]
		base := g * s
		for i := base; i < base+c; i++ {
			av := a.Data[i]
			row := dst.Data[i*s : (i+1)*s]
			for j := 0; j < c; j++ {
				row[j] = av + b.Data[base+j]
			}
			clear(row[c:])
		}
		clearRows(dst, base+c, base+s)
	}
}

// PanelSumColsInto computes dst[i] = Σ_{j<c} t[i][j] over each panel's
// logical width — the da backward of PanelAddOuter — clearing pad rows.
func PanelSumColsInto(dst, t *Tensor, l BatchLayout) {
	if t.C != l.Stride {
		shapePanic("PanelSumCols wants panel-width %d input, got %d", l.Stride, t.C)
	}
	checkInto(dst, t.R, 1, "PanelSumColsInto")
	checkSeg(t, l, "PanelSumColsInto")
	s := l.Stride
	for g := 0; g < l.B; g++ {
		c := l.Counts[g]
		base := g * s
		for i := base; i < base+c; i++ {
			sum := 0.0
			for _, v := range t.Data[i*s : i*s+c] {
				sum += v
			}
			dst.Data[i] = sum
		}
		clear(dst.Data[base+c : base+s])
	}
}

// PanelColSumsInto computes dst[base+j] = Σ_i t_g[i][j] per panel — the db
// backward of PanelAddOuter, accumulating in the same ascending-i order as
// SumRowsInto followed by the transpose — clearing pad rows.
func PanelColSumsInto(dst, t *Tensor, l BatchLayout) {
	if t.C != l.Stride {
		shapePanic("PanelColSums wants panel-width %d input, got %d", l.Stride, t.C)
	}
	checkInto(dst, t.R, 1, "PanelColSumsInto")
	checkSeg(t, l, "PanelColSumsInto")
	s := l.Stride
	for g := 0; g < l.B; g++ {
		c := l.Counts[g]
		base := g * s
		clear(dst.Data[base : base+s])
		for i := base; i < base+c; i++ {
			row := t.Data[i*s : i*s+c]
			for j, v := range row {
				dst.Data[base+j] += v
			}
		}
	}
}
