//go:build !amd64

package tensor

// Non-amd64 builds have no SIMD kernels; simdKernels stays false and the
// stubs below are unreachable (every call site checks the flag first).

func simdSupported() bool { return false }

func axpyAVX2(a float64, x, y []float64) { panic("tensor: SIMD kernel on non-amd64") }

func axpy2AVX2(a0, a1 float64, x0, x1, y []float64) { panic("tensor: SIMD kernel on non-amd64") }

func matmulRowKernelAVX2(crow, arow, bd []float64, b0, n int) {
	panic("tensor: SIMD kernel on non-amd64")
}

func matmulBTRowKernelAVX2(crow, arow, bd []float64, b0, m, k int) {
	panic("tensor: SIMD kernel on non-amd64")
}

func addInPlaceAVX2(a, b []float64) { panic("tensor: SIMD kernel on non-amd64") }

func addIntoAVX2(dst, a, b []float64) { panic("tensor: SIMD kernel on non-amd64") }

func scaleIntoAVX2(dst, t []float64, s float64) { panic("tensor: SIMD kernel on non-amd64") }

func reluFwdAVX2(v, x []float64) { panic("tensor: SIMD kernel on non-amd64") }

func reluBackAVX2(d, g, x []float64) { panic("tensor: SIMD kernel on non-amd64") }

func leakyFwdAVX2(v, x []float64, alpha float64) { panic("tensor: SIMD kernel on non-amd64") }

func leakyBackAVX2(d, g, x []float64, alpha float64) { panic("tensor: SIMD kernel on non-amd64") }

func softmaxFwdAVX2(orow, row, mrow []float64) float64 { panic("tensor: SIMD kernel on non-amd64") }

func softmaxFwdNMAVX2(orow, row []float64) float64 { panic("tensor: SIMD kernel on non-amd64") }

func softmaxBackRowAVX2(drow, grow, yrow []float64, dotgy float64) {
	panic("tensor: SIMD kernel on non-amd64")
}

func matmulATPairAVX2(dd []float64, base, n int, a0, a1, b0, b1 []float64) {
	panic("tensor: SIMD kernel on non-amd64")
}

func matmulATQuadAVX2(dd []float64, base, n int, a0, a1, a2, a3, b0, b1, b2, b3 []float64) {
	panic("tensor: SIMD kernel on non-amd64")
}

func matmulATRowAVX2(dd []float64, base, n int, a0, b0 []float64) {
	panic("tensor: SIMD kernel on non-amd64")
}
