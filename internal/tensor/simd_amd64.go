//go:build amd64

package tensor

// AVX2 kernel bindings. Each assembly routine in simd_amd64.s reproduces the
// exact per-element operation order and accumulator grouping of its scalar
// counterpart — SIMD lanes only carry the already-independent chains — so
// switching the simdKernels flag never changes a single result bit:
//
//   - axpyAVX2 / axpy2AVX2 / matmulRowKernelAVX2: every output element's
//     additions form an independent chain (c + a0·b0 + a1·b1 + …); running
//     four chains per vector instruction is associativity-free.
//   - matmulBTRowKernelAVX2: each output keeps dot's four-accumulator
//     stride-4 pattern in one ymm register (lane m holds scalar accumulator
//     s_m), combines lanes left-associatively like the scalar epilogue, and
//     runs the same scalar tail. Four outputs interleave only to overlap
//     dependency chains.
//
// No FMA instructions are used anywhere: fused multiply-adds round once
// where the scalar code rounds twice, which would break bitwise identity.

//go:noescape
func axpyAVX2(a float64, x, y []float64)

//go:noescape
func axpy2AVX2(a0, a1 float64, x0, x1, y []float64)

//go:noescape
func matmulRowKernelAVX2(crow, arow, bd []float64, b0, n int)

//go:noescape
func matmulBTRowKernelAVX2(crow, arow, bd []float64, b0, m, k int)

// Elementwise kernels: each lane computes exactly the scalar expression for
// its own index, so vectorization is trivially bitwise-transparent.

//go:noescape
func addInPlaceAVX2(a, b []float64)

//go:noescape
func addIntoAVX2(dst, a, b []float64)

//go:noescape
func scaleIntoAVX2(dst, t []float64, s float64)

// reluFwdAVX2 implements math.Max(x, 0): VMAXPD with +0 as the
// on-equal/on-NaN operand maps −0 to +0 like math.Max, and a compare+blend
// rewrites NaN lanes to the canonical NaN math.Max returns.
//
//go:noescape
func reluFwdAVX2(v, x []float64)

// reluBackAVX2 computes d = g where x > 0 (ordered, so NaN gates to 0 like
// the scalar comparison) and +0 elsewhere, via compare + bitwise AND.
//
//go:noescape
func reluBackAVX2(d, g, x []float64)

//go:noescape
func leakyFwdAVX2(v, x []float64, alpha float64)

//go:noescape
func leakyBackAVX2(d, g, x []float64, alpha float64)

// softmaxFwdAVX2 runs softmax's first pass — orow = row + mrow stored
// elementwise, returning the running max under strict > — with four lane
// maxima combined in lane order. The max's value is order-independent; NaN
// never wins under either order; and a ±0-sign ambiguity in the returned
// max is erased by the caller's exp pass (see softmaxRow). softmaxFwdNMAVX2
// is the maskless variant (orow = row copied).

//go:noescape
func softmaxFwdAVX2(orow, row, mrow []float64) float64

//go:noescape
func softmaxFwdNMAVX2(orow, row []float64) float64

//go:noescape
func softmaxBackRowAVX2(drow, grow, yrow []float64, dotgy float64)

// matmulATPairAVX2 runs matmulATRows' per-row-pair inner loop: for each
// p < len(a0), dd rows (base+p)·n accumulate a0[p]·b0 + a1[p]·b1 with the
// scalar axpy2/axpy grouping and the same `av != 0` skip (NaN coefficients
// take the nonzero path, as Go's != does). matmulATRowAVX2 is the odd-row
// single-coefficient form.

//go:noescape
func matmulATPairAVX2(dd []float64, base, n int, a0, a1, b0, b1 []float64)

// matmulATQuadAVX2 fuses two consecutive pair passes over the same dd rows:
// each output element's additions still land in ascending input-row order
// (y + a0·b0 + a1·b1 + a2·b2 + a3·b3), and mixed zero patterns replay the
// pairwise grouping exactly, so results match two pair calls bit for bit
// while touching each dd row once instead of twice.
//
//go:noescape
func matmulATQuadAVX2(dd []float64, base, n int, a0, a1, a2, a3, b0, b1, b2, b3 []float64)

//go:noescape
func matmulATRowAVX2(dd []float64, base, n int, a0, b0 []float64)

func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbvAsm() (eax, edx uint32)

// simdSupported reports whether the CPU and OS can run the AVX2 kernels:
// CPUID.1:ECX must advertise OSXSAVE and AVX, XCR0 must enable XMM and YMM
// state saving, and CPUID.7:EBX must advertise AVX2.
func simdSupported() bool {
	_, _, ecx, _ := cpuidAsm(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	if lo, _ := xgetbvAsm(); lo&0x6 != 0x6 {
		return false
	}
	_, ebx, _, _ := cpuidAsm(7, 0)
	return ebx&(1<<5) != 0
}
