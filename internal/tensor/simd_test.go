package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// fillRandom populates a slice with a mix of magnitudes, signs, exact zeros,
// and negative zeros — the values whose handling distinguishes a correct
// SIMD port from an approximate one.
func fillRandom(rng *rand.Rand, s []float64) {
	for i := range s {
		switch rng.Intn(10) {
		case 0:
			s[i] = 0
		case 1:
			s[i] = math.Copysign(0, -1)
		case 2:
			s[i] = rng.NormFloat64() * 1e-154 // tiny, squares to subnormal range
		case 3:
			s[i] = rng.NormFloat64() * 1e8
		default:
			s[i] = rng.NormFloat64()
		}
	}
}

func requireBitwise(t *testing.T, label string, want, got []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s[%d]: scalar %x != simd %x (%v vs %v)",
				label, i, math.Float64bits(want[i]), math.Float64bits(got[i]), want[i], got[i])
		}
	}
}

// TestSIMDKernelsBitwiseEqualScalar runs every SIMD-dispatched kernel against
// its scalar form across ragged shapes (vector bodies plus every tail length,
// including empty operands) and asserts bitwise equality.
func TestSIMDKernelsBitwiseEqualScalar(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no AVX2 on this CPU; scalar path is the only path")
	}
	defer SetSIMD(SetSIMD(false))
	rng := rand.New(rand.NewSource(42))
	for _, k := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 64} {
		for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 13, 16, 33} {
			b0 := rng.Intn(3)
			bd := make([]float64, (b0+k+1)*max(n, 1))
			arow := make([]float64, k)
			fillRandom(rng, bd)
			fillRandom(rng, arow)

			scalar := make([]float64, n)
			simd := make([]float64, n)
			fillRandom(rng, scalar)
			copy(simd, scalar)
			SetSIMD(false)
			matmulRowKernel(scalar, arow, bd, b0, n)
			SetSIMD(true)
			matmulRowKernel(simd, arow, bd, b0, n)
			requireBitwise(t, "matmulRowKernel", scalar, simd)

			// BT: m outputs of length-k dots (reuse n as m).
			m := n
			bt := make([]float64, (b0+m+1)*max(k, 1))
			fillRandom(rng, bt)
			scalarBT := make([]float64, m)
			simdBT := make([]float64, m)
			SetSIMD(false)
			matmulBTRowKernel(scalarBT, arow, bt, b0, m, k)
			SetSIMD(true)
			matmulBTRowKernel(simdBT, arow, bt, b0, m, k)
			requireBitwise(t, "matmulBTRowKernel", scalarBT, simdBT)

			x0 := make([]float64, n)
			x1 := make([]float64, n)
			fillRandom(rng, x0)
			fillRandom(rng, x1)
			ys := make([]float64, n)
			yv := make([]float64, n)
			fillRandom(rng, ys)
			copy(yv, ys)
			a := rng.NormFloat64()
			SetSIMD(false)
			axpy(a, x0, ys)
			SetSIMD(true)
			axpy(a, x0, yv)
			requireBitwise(t, "axpy", ys, yv)

			a1 := rng.NormFloat64()
			SetSIMD(false)
			axpy2(a, a1, x0, x1, ys)
			SetSIMD(true)
			axpy2(a, a1, x0, x1, yv)
			requireBitwise(t, "axpy2", ys, yv)
		}
	}
}

// TestSIMDMatMulBitwise cross-checks the full matmul entry points — the
// level the autodiff tape calls — between the scalar and SIMD kernels.
func TestSIMDMatMulBitwise(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no AVX2 on this CPU; scalar path is the only path")
	}
	defer SetSIMD(SetSIMD(false))
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 2}, {8, 8, 8}, {13, 17, 9}, {32, 16, 64}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := New(m, k), New(k, n)
		fillRandom(rng, a.Data)
		fillRandom(rng, b.Data)
		SetSIMD(false)
		wantMM := MatMul(a, b)
		SetSIMD(true)
		gotMM := MatMul(a, b)
		requireBitwise(t, "MatMul", wantMM.Data, gotMM.Data)

		bt := New(n, k)
		fillRandom(rng, bt.Data)
		SetSIMD(false)
		wantBT := MatMulBT(a, bt)
		SetSIMD(true)
		gotBT := MatMulBT(a, bt)
		requireBitwise(t, "MatMulBT", wantBT.Data, gotBT.Data)
	}
}

// injectSpecials sprinkles the values whose handling the SIMD ports must
// reproduce exactly: signed zeros, infinities, and (when allowed) NaN.
func injectSpecials(rng *rand.Rand, s []float64, withNaN bool) {
	specials := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1)}
	if withNaN {
		specials = append(specials, math.NaN())
	}
	for range len(s)/4 + 1 {
		if len(s) == 0 {
			return
		}
		s[rng.Intn(len(s))] = specials[rng.Intn(len(specials))]
	}
}

func wrap(data []float64) *Tensor { return &Tensor{R: 1, C: len(data), Data: data} }

// TestSIMDElementwiseBitwise checks the elementwise AVX2 kernels —
// AddInPlace, AddInto, ScaleInto, the ReLU family, and SoftmaxBackRow —
// bitwise against their scalar paths, including NaN, ±Inf, and ±0 inputs.
func TestSIMDElementwiseBitwise(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no AVX2 on this CPU; scalar path is the only path")
	}
	defer SetSIMD(SetSIMD(false))
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 13, 16, 33, 64} {
		x := make([]float64, n)
		g := make([]float64, n)
		fillRandom(rng, x)
		fillRandom(rng, g)
		injectSpecials(rng, x, true)

		check := func(label string, f func(dst *Tensor)) {
			t.Helper()
			want := make([]float64, n)
			got := make([]float64, n)
			SetSIMD(false)
			f(wrap(want))
			SetSIMD(true)
			f(wrap(got))
			requireBitwise(t, label, want, got)
		}

		check("ReLUInto", func(dst *Tensor) { ReLUInto(dst, wrap(x)) })
		check("ReLUBackInto", func(dst *Tensor) { ReLUBackInto(dst, wrap(g), wrap(x)) })
		alpha := rng.NormFloat64()
		check("LeakyReLUInto", func(dst *Tensor) { LeakyReLUInto(dst, wrap(x), alpha) })
		check("LeakyReLUBackInto", func(dst *Tensor) { LeakyReLUBackInto(dst, wrap(g), wrap(x), alpha) })
		s := rng.NormFloat64()
		check("ScaleInto", func(dst *Tensor) { ScaleInto(dst, wrap(x), s) })
		check("AddInto", func(dst *Tensor) { AddInto(dst, wrap(x), wrap(g)) })
		dot := rng.NormFloat64()
		check("SoftmaxBackRow", func(dst *Tensor) { SoftmaxBackRow(dst.Data, g, x, dot) })

		// AddInPlace mutates its first argument; seed both runs identically.
		acc := make([]float64, n)
		fillRandom(rng, acc)
		want := append([]float64(nil), acc...)
		got := append([]float64(nil), acc...)
		SetSIMD(false)
		AddInPlace(wrap(want), wrap(x))
		SetSIMD(true)
		AddInPlace(wrap(got), wrap(x))
		requireBitwise(t, "AddInPlace", want, got)

		// ScaleInto aliasing dst == t (softmax's normalize pass).
		want = append([]float64(nil), x...)
		got = append([]float64(nil), x...)
		SetSIMD(false)
		ScaleInto(wrap(want), wrap(want), s)
		SetSIMD(true)
		ScaleInto(wrap(got), wrap(got), s)
		requireBitwise(t, "ScaleInto-alias", want, got)
	}
}

// TestSIMDSoftmaxRowBitwise checks the fused softmax first pass (masked and
// maskless, in-place and out-of-place) bitwise against the scalar row loop,
// including −Inf mask entries, all-masked rows, and NaN logits.
func TestSIMDSoftmaxRowBitwise(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no AVX2 on this CPU; scalar path is the only path")
	}
	defer SetSIMD(SetSIMD(false))
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 33} {
		for _, mode := range []string{"nomask", "mask", "allmasked", "nan"} {
			row := make([]float64, n)
			fillRandom(rng, row)
			var mask *Tensor
			switch mode {
			case "mask":
				mask = New(1, n)
				for j := range mask.Data {
					if rng.Intn(3) == 0 {
						mask.Data[j] = math.Inf(-1)
					}
				}
			case "allmasked":
				mask = New(1, n)
				for j := range mask.Data {
					mask.Data[j] = math.Inf(-1)
				}
			case "nan":
				row[rng.Intn(n)] = math.NaN()
			}
			want := make([]float64, n)
			got := make([]float64, n)
			SetSIMD(false)
			softmaxRow(want, row, mask, 0)
			SetSIMD(true)
			softmaxRow(got, row, mask, 0)
			requireBitwise(t, "softmaxRow-"+mode, want, got)

			// In-place form (PanelSoftmaxInPlace aliases orow and row).
			wantIP := append([]float64(nil), row...)
			gotIP := append([]float64(nil), row...)
			SetSIMD(false)
			softmaxRow(wantIP, wantIP, mask, 0)
			SetSIMD(true)
			softmaxRow(gotIP, gotIP, mask, 0)
			requireBitwise(t, "softmaxRow-inplace-"+mode, wantIP, gotIP)
		}
	}
}

// TestSIMDMatMulATBitwise checks the transposed-gradient pair kernels — the
// matmulATRows inner loops and the panel closure form — bitwise against the
// scalar path, with one-hot-heavy coefficient matrices so the `av != 0`
// skip paths and the NaN-coefficient nonzero path are all exercised.
func TestSIMDMatMulATBitwise(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no AVX2 on this CPU; scalar path is the only path")
	}
	defer SetSIMD(SetSIMD(false))
	rng := rand.New(rand.NewSource(17))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 8, 7}, {9, 16, 13}, {13, 5, 32}} {
		r, m, n := dims[0], dims[1], dims[2]
		a, b := New(r, m), New(r, n)
		fillRandom(rng, b.Data)
		for i := range a.Data { // one-hot-heavy: mostly zeros
			switch rng.Intn(4) {
			case 0:
				a.Data[i] = rng.NormFloat64()
			case 1:
				a.Data[i] = math.Copysign(0, -1)
			}
		}
		a.Data[rng.Intn(len(a.Data))] = math.NaN()
		for _, rg := range [][2]int{{0, r}, {0, r - r/2}, {r / 2, r}} {
			i0, i1 := rg[0], rg[1]
			want, got := New(m, n), New(m, n)
			SetSIMD(false)
			MatMulATRangeInto(want, a, b, i0, i1)
			SetSIMD(true)
			MatMulATRangeInto(got, a, b, i0, i1)
			requireBitwise(t, "MatMulATRange", want.Data, got.Data)
		}

		// atPanelAccum with a nonzero base offset, as the panel backward uses.
		const base = 2
		want := make([]float64, (base+m)*n)
		got := make([]float64, (base+m)*n)
		arow := func(i int) []float64 { return a.Row(i) }
		SetSIMD(false)
		atPanelAccum(want, base, n, arow, func(i int) []float64 { return b.Row(i) }, r, m)
		SetSIMD(true)
		atPanelAccum(got, base, n, arow, func(i int) []float64 { return b.Row(i) }, r, m)
		requireBitwise(t, "atPanelAccum", want, got)
	}
}
