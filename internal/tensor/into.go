// Destination-passing kernels: every allocating operation in tensor.go has
// an *Into twin that writes a caller-provided destination, so hot paths
// (above all the autodiff tape in internal/ag) can draw buffers from an
// Arena instead of the heap. Each kernel fully defines dst — callers never
// need to pre-zero — and performs the exact floating-point operations, in
// the exact order, of its allocating counterpart, so results are bitwise
// identical whichever entry point is used.
package tensor

import (
	"fmt"
	"math"

	"predtop/internal/parallel"
)

// checkInto validates a destination shape. The comparison is inlined and
// the failure path split out so the passing case never boxes its arguments
// (an assert helper taking ...any costs one allocation per call even when
// the condition holds).
func checkInto(dst *Tensor, r, c int, op string) {
	if dst.R != r || dst.C != c {
		shapePanic("%s dst %dx%d, want %dx%d", op, dst.R, dst.C, r, c)
	}
}

// shapePanic reports a shape mismatch; only ever called on a cold path.
func shapePanic(format string, args ...any) {
	panic("tensor: " + fmt.Sprintf(format, args...))
}

// MatMulInto computes dst = a·b for a (m×k) and b (k×n). dst must not alias
// a or b.
func MatMulInto(dst, a, b *Tensor) {
	if a.C != b.R {
		shapePanic("MatMul shape mismatch %dx%d · %dx%d", a.R, a.C, b.R, b.C)
	}
	checkInto(dst, a.R, b.C, "MatMulInto")
	m, k, n := a.R, a.C, b.C
	// The serial path calls the row worker directly: a closure shared with
	// the parallel branch would escape to the heap on every call, costing
	// one allocation per matmul even for tiny kernels.
	if m*k*n < matmulParallelMinFlops {
		matmulRowRange(dst, a, b, 0, m)
		return
	}
	parallel.ForBlocked(m, matmulRowBlock, func(lo, hi int) {
		matmulRowRange(dst, a, b, lo, hi)
	})
}

func matmulRowRange(dst, a, b *Tensor, lo, hi int) {
	k, n := a.C, b.C
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := dst.Data[i*n : (i+1)*n]
		clear(crow)
		for p := 0; p < k; p++ {
			axpy(arow[p], b.Data[p*n:(p+1)*n], crow)
		}
	}
}

// MatMulBTInto computes dst = a·bᵀ for a (m×k) and b (n×k). dst must not
// alias a or b.
func MatMulBTInto(dst, a, b *Tensor) {
	if a.C != b.C {
		shapePanic("MatMulBT shape mismatch %dx%d · (%dx%d)ᵀ", a.R, a.C, b.R, b.C)
	}
	checkInto(dst, a.R, b.R, "MatMulBTInto")
	if a.R*a.C*b.R < matmulParallelMinFlops {
		matmulBTRowRange(dst, a, b, 0, a.R)
		return
	}
	parallel.ForBlocked(a.R, matmulRowBlock, func(lo, hi int) {
		matmulBTRowRange(dst, a, b, lo, hi)
	})
}

func matmulBTRowRange(dst, a, b *Tensor, lo, hi int) {
	k := a.C
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := dst.Data[i*b.R : (i+1)*b.R]
		for j := 0; j < b.R; j++ {
			crow[j] = dot(arow, b.Data[j*k:(j+1)*k])
		}
	}
}

// MatMulATInto computes dst = aᵀ·b for a (k×m) and b (k×n). dst must not
// alias a or b.
func MatMulATInto(dst, a, b *Tensor) {
	if a.R != b.R {
		shapePanic("MatMulAT shape mismatch (%dx%d)ᵀ · %dx%d", a.R, a.C, b.R, b.C)
	}
	checkInto(dst, a.C, b.C, "MatMulATInto")
	m, n := a.C, b.C
	// dst[p][j] = sum_i a[i][p] * b[i][j]; accumulate row blocks serially to
	// keep writes race-free, parallelizing over output rows.
	clear(dst.Data)
	if a.R*m*n < matmulParallelMinFlops {
		matmulATRowRange(dst, a, b, 0, m)
		return
	}
	parallel.ForBlocked(m, matmulRowBlock, func(lo, hi int) {
		matmulATRowRange(dst, a, b, lo, hi)
	})
}

func matmulATRowRange(dst, a, b *Tensor, lo, hi int) {
	m, n := a.C, b.C
	for i := 0; i < a.R; i++ {
		arow := a.Data[i*m : (i+1)*m]
		brow := b.Data[i*n : (i+1)*n]
		for p := lo; p < hi; p++ {
			if av := arow[p]; av != 0 {
				axpy(av, brow, dst.Data[p*n:(p+1)*n])
			}
		}
	}
}

// LinearInto computes the fused dense layer dst = x·w + bias (bias a 1×n
// row broadcast over rows), the matmul and bias add in one pass over dst.
// Bitwise-equal to MatMulInto followed by AddRowVecInto. dst must not alias
// x, w, or bias.
func LinearInto(dst, x, w, bias *Tensor) {
	if x.C != w.R {
		shapePanic("Linear shape mismatch %dx%d · %dx%d", x.R, x.C, w.R, w.C)
	}
	if bias.R != 1 || bias.C != w.C {
		shapePanic("Linear bias wants 1x%d, got %dx%d", w.C, bias.R, bias.C)
	}
	checkInto(dst, x.R, w.C, "LinearInto")
	m, k, n := x.R, x.C, w.C
	if m*k*n < matmulParallelMinFlops {
		linearRowRange(dst, x, w, bias, 0, m)
		return
	}
	parallel.ForBlocked(m, matmulRowBlock, func(lo, hi int) {
		linearRowRange(dst, x, w, bias, lo, hi)
	})
}

func linearRowRange(dst, x, w, bias *Tensor, lo, hi int) {
	k, n := x.C, w.C
	brow := bias.Data
	for i := lo; i < hi; i++ {
		arow := x.Data[i*k : (i+1)*k]
		crow := dst.Data[i*n : (i+1)*n]
		clear(crow)
		for p := 0; p < k; p++ {
			axpy(arow[p], w.Data[p*n:(p+1)*n], crow)
		}
		for j := range crow {
			crow[j] += brow[j]
		}
	}
}

// transposeBlock is the tile edge of the cache-blocked transpose: 32×32
// float64 tiles (8 KiB read + 8 KiB written) keep both the row-major reads
// and the column-strided writes resident in L1 instead of thrashing one
// cache line per element as the naive column walk does for large C.
const transposeBlock = 32

// TransposeInto computes dst = tᵀ. dst must not alias t.
func TransposeInto(dst, t *Tensor) {
	checkInto(dst, t.C, t.R, "TransposeInto")
	r, c := t.R, t.C
	for ii := 0; ii < r; ii += transposeBlock {
		imax := ii + transposeBlock
		if imax > r {
			imax = r
		}
		for jj := 0; jj < c; jj += transposeBlock {
			jmax := jj + transposeBlock
			if jmax > c {
				jmax = c
			}
			for i := ii; i < imax; i++ {
				row := t.Data[i*c : (i+1)*c]
				for j := jj; j < jmax; j++ {
					dst.Data[j*r+i] = row[j]
				}
			}
		}
	}
}

// AddInto computes dst = a + b elementwise. dst may alias a and/or b.
func AddInto(dst, a, b *Tensor) {
	if !a.SameShape(b) {
		shapePanic("elementwise shape mismatch %dx%d vs %dx%d", a.R, a.C, b.R, b.C)
	}
	checkInto(dst, a.R, a.C, "AddInto")
	bd := b.Data
	for i, v := range a.Data {
		dst.Data[i] = v + bd[i]
	}
}

// SubInto computes dst = a − b elementwise. dst may alias a and/or b.
func SubInto(dst, a, b *Tensor) {
	if !a.SameShape(b) {
		shapePanic("elementwise shape mismatch %dx%d vs %dx%d", a.R, a.C, b.R, b.C)
	}
	checkInto(dst, a.R, a.C, "SubInto")
	bd := b.Data
	for i, v := range a.Data {
		dst.Data[i] = v - bd[i]
	}
}

// MulInto computes dst = a ⊙ b elementwise. dst may alias a and/or b.
func MulInto(dst, a, b *Tensor) {
	if !a.SameShape(b) {
		shapePanic("elementwise shape mismatch %dx%d vs %dx%d", a.R, a.C, b.R, b.C)
	}
	checkInto(dst, a.R, a.C, "MulInto")
	bd := b.Data
	for i, v := range a.Data {
		dst.Data[i] = v * bd[i]
	}
}

// DivInto computes dst = a / b elementwise. dst may alias a and/or b.
func DivInto(dst, a, b *Tensor) {
	if !a.SameShape(b) {
		shapePanic("elementwise shape mismatch %dx%d vs %dx%d", a.R, a.C, b.R, b.C)
	}
	checkInto(dst, a.R, a.C, "DivInto")
	bd := b.Data
	for i, v := range a.Data {
		dst.Data[i] = v / bd[i]
	}
}

// ScaleInto computes dst = s·t. dst may alias t.
func ScaleInto(dst, t *Tensor, s float64) {
	checkInto(dst, t.R, t.C, "ScaleInto")
	for i, v := range t.Data {
		dst.Data[i] = s * v
	}
}

// MapInto computes dst = f applied elementwise to t. dst may alias t.
func MapInto(dst, t *Tensor, f func(float64) float64) {
	checkInto(dst, t.R, t.C, "MapInto")
	for i, v := range t.Data {
		dst.Data[i] = f(v)
	}
}

// AddRowVecInto computes dst = t with the 1×C row vector v added to every
// row. dst may alias t.
func AddRowVecInto(dst, t, v *Tensor) {
	if v.R != 1 || v.C != t.C {
		shapePanic("AddRowVec wants 1x%d, got %dx%d", t.C, v.R, v.C)
	}
	checkInto(dst, t.R, t.C, "AddRowVecInto")
	for i := 0; i < t.R; i++ {
		row, orow := t.Row(i), dst.Row(i)
		for j := range row {
			orow[j] = row[j] + v.Data[j]
		}
	}
}

// AddOuterInto computes dst[i][j] = a[i] + b[j] from column vectors a (N×1)
// and b (M×1). dst must not alias a or b.
func AddOuterInto(dst, a, b *Tensor) {
	if a.C != 1 || b.C != 1 {
		shapePanic("AddOuter wants column vectors, got %dx%d and %dx%d", a.R, a.C, b.R, b.C)
	}
	checkInto(dst, a.R, b.R, "AddOuterInto")
	for i := 0; i < a.R; i++ {
		av := a.Data[i]
		row := dst.Row(i)
		for j := 0; j < b.R; j++ {
			row[j] = av + b.Data[j]
		}
	}
}

// SumRowsInto computes the 1×C vector of column sums into dst.
func SumRowsInto(dst, t *Tensor) {
	checkInto(dst, 1, t.C, "SumRowsInto")
	clear(dst.Data)
	for i := 0; i < t.R; i++ {
		row := t.Row(i)
		for j, v := range row {
			dst.Data[j] += v
		}
	}
}

// SumColsInto computes the R×1 vector of row sums into dst.
func SumColsInto(dst, t *Tensor) {
	checkInto(dst, t.R, 1, "SumColsInto")
	for i := 0; i < t.R; i++ {
		s := 0.0
		for _, v := range t.Row(i) {
			s += v
		}
		dst.Data[i] = s
	}
}

// SoftmaxRowsInto computes row-wise softmax of t into dst; mask (may be
// nil) is an additive logit mask with −Inf disabling positions, and rows
// whose every position is masked yield all-zero output rather than NaN.
// dst may alias t (the in-place form used by attention). Mask rows are
// sliced once per row, keeping the inner loop free of index arithmetic.
func SoftmaxRowsInto(dst, t, mask *Tensor) {
	if mask != nil {
		if !t.SameShape(mask) {
			shapePanic("SoftmaxRows mask shape mismatch")
		}
	}
	checkInto(dst, t.R, t.C, "SoftmaxRowsInto")
	for i := 0; i < t.R; i++ {
		row := t.Row(i)
		orow := dst.Row(i)
		maxv := math.Inf(-1)
		if mask != nil {
			mrow := mask.Row(i)
			for j, v := range row {
				v += mrow[j]
				orow[j] = v
				if v > maxv {
					maxv = v
				}
			}
		} else {
			for j, v := range row {
				orow[j] = v
				if v > maxv {
					maxv = v
				}
			}
		}
		if math.IsInf(maxv, -1) {
			clear(orow)
			continue
		}
		sum := 0.0
		for j, v := range orow {
			e := math.Exp(v - maxv)
			orow[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range orow {
			orow[j] *= inv
		}
	}
}

// ConcatColsInto concatenates tensors with equal row counts along columns
// into dst. dst must not alias any input.
func ConcatColsInto(dst *Tensor, ts ...*Tensor) {
	if len(ts) == 0 {
		checkInto(dst, 0, 0, "ConcatColsInto")
		return
	}
	r := ts[0].R
	c := 0
	for _, t := range ts {
		if t.R != r {
			shapePanic("ConcatCols row mismatch %d vs %d", t.R, r)
		}
		c += t.C
	}
	checkInto(dst, r, c, "ConcatColsInto")
	for i := 0; i < r; i++ {
		orow := dst.Row(i)
		off := 0
		for _, t := range ts {
			copy(orow[off:off+t.C], t.Row(i))
			off += t.C
		}
	}
}

// SliceColsInto copies columns [lo, hi) of t into dst.
func SliceColsInto(dst, t *Tensor, lo, hi int) {
	if lo < 0 || hi < lo || hi > t.C {
		shapePanic("SliceCols bad range [%d,%d) of %d", lo, hi, t.C)
	}
	checkInto(dst, t.R, hi-lo, "SliceColsInto")
	for i := 0; i < t.R; i++ {
		copy(dst.Row(i), t.Row(i)[lo:hi])
	}
}

// GatherRowsInto writes t.Row(idx[i]) into dst.Row(i).
func GatherRowsInto(dst, t *Tensor, idx []int) {
	checkInto(dst, len(idx), t.C, "GatherRowsInto")
	for i, id := range idx {
		if id < 0 || id >= t.R {
			shapePanic("GatherRows index %d out of %d rows", id, t.R)
		}
		copy(dst.Row(i), t.Row(id))
	}
}
