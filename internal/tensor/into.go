// Destination-passing kernels: every allocating operation in tensor.go has
// an *Into twin that writes a caller-provided destination, so hot paths
// (above all the autodiff tape in internal/ag) can draw buffers from an
// Arena instead of the heap. Each kernel fully defines dst — callers never
// need to pre-zero — and performs the exact floating-point operations, in
// the exact order, of its allocating counterpart, so results are bitwise
// identical whichever entry point is used.
package tensor

import (
	"fmt"
	"math"

	"predtop/internal/parallel"
)

// checkInto validates a destination shape. The comparison is inlined and
// the failure path split out so the passing case never boxes its arguments
// (an assert helper taking ...any costs one allocation per call even when
// the condition holds).
func checkInto(dst *Tensor, r, c int, op string) {
	if dst.R != r || dst.C != c {
		shapePanic("%s dst %dx%d, want %dx%d", op, dst.R, dst.C, r, c)
	}
}

// shapePanic reports a shape mismatch; only ever called on a cold path.
func shapePanic(format string, args ...any) {
	panic("tensor: " + fmt.Sprintf(format, args...))
}

// MatMulInto computes dst = a·b for a (m×k) and b (k×n). dst must not alias
// a or b.
func MatMulInto(dst, a, b *Tensor) {
	if a.C != b.R {
		shapePanic("MatMul shape mismatch %dx%d · %dx%d", a.R, a.C, b.R, b.C)
	}
	checkInto(dst, a.R, b.C, "MatMulInto")
	m, k, n := a.R, a.C, b.C
	// The serial path calls the row worker directly: a closure shared with
	// the parallel branch would escape to the heap on every call, costing
	// one allocation per matmul even for tiny kernels.
	if m*k*n < parallelMinFlops() {
		matmulRowRange(dst, a, b, 0, m)
		return
	}
	parallel.ForBlocked(m, parallelRowBlock(), func(lo, hi int) {
		matmulRowRange(dst, a, b, lo, hi)
	})
}

func matmulRowRange(dst, a, b *Tensor, lo, hi int) {
	k, n := a.C, b.C
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := dst.Data[i*n : (i+1)*n]
		clear(crow)
		matmulRowKernel(crow, arow, b.Data, 0, n)
	}
}

// matmulRowKernel accumulates one output row: crow += Σ_p arow[p] · brow_p,
// where brow_p is bd[(b0+p)*n : (b0+p+1)*n]. Operands are grouped four at a
// time through axpy4, which adds the four products per element in ascending
// p order — the same element-wise addition order as sequential axpy calls —
// so the fusion is bitwise-invisible. Shared by the plain matmul, the fused
// linear layer, and the batched panel kernels, which therefore agree
// bit-for-bit with the serial per-graph path.
func matmulRowKernel(crow, arow []float64, bd []float64, b0, n int) {
	if simdKernels {
		matmulRowKernelAVX2(crow, arow, bd, b0, n)
		return
	}
	k := len(arow)
	p := 0
	for ; p+4 <= k; p += 4 {
		// Skip quads whose four coefficients are all (±)0: every product is
		// a signed zero and c += ±0 leaves c bitwise unchanged for any c
		// (+0 + −0 is +0, −0 + −0 is −0 — the accumulator keeps its own
		// sign either way), so with finite operands the skip is invisible.
		// One-hot-heavy embedding features make this the common case. The
		// AVX2 kernel applies the identical test.
		if arow[p] == 0 && arow[p+1] == 0 && arow[p+2] == 0 && arow[p+3] == 0 {
			continue
		}
		o := (b0 + p) * n
		axpy4(arow[p], arow[p+1], arow[p+2], arow[p+3],
			bd[o:o+n], bd[o+n:o+2*n], bd[o+2*n:o+3*n], bd[o+3*n:o+4*n], crow)
	}
	for ; p < k; p++ {
		if arow[p] == 0 {
			continue
		}
		o := (b0 + p) * n
		axpy(arow[p], bd[o:o+n], crow)
	}
}

// MatMulBTInto computes dst = a·bᵀ for a (m×k) and b (n×k). dst must not
// alias a or b.
func MatMulBTInto(dst, a, b *Tensor) {
	if a.C != b.C {
		shapePanic("MatMulBT shape mismatch %dx%d · (%dx%d)ᵀ", a.R, a.C, b.R, b.C)
	}
	checkInto(dst, a.R, b.R, "MatMulBTInto")
	if a.R*a.C*b.R < parallelMinFlops() {
		matmulBTRowRange(dst, a, b, 0, a.R)
		return
	}
	parallel.ForBlocked(a.R, parallelRowBlock(), func(lo, hi int) {
		matmulBTRowRange(dst, a, b, lo, hi)
	})
}

func matmulBTRowRange(dst, a, b *Tensor, lo, hi int) {
	k := a.C
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := dst.Data[i*b.R : (i+1)*b.R]
		matmulBTRowKernel(crow, arow, b.Data, 0, b.R, k)
	}
}

// matmulBTRowKernel fills one output row of a·bᵀ: crow[j] = arow · brow_j
// for j in [0, m), where brow_j = bd[(b0+j)*k : (b0+j+1)*k]. Output columns
// are paired through dot2 so arow is streamed once per two products; each
// dot keeps dot's exact accumulator pattern, so results are bitwise equal to
// per-column dot calls. Shared with the batched score-panel kernels.
func matmulBTRowKernel(crow, arow []float64, bd []float64, b0, m, k int) {
	if simdKernels {
		matmulBTRowKernelAVX2(crow, arow, bd, b0, m, k)
		return
	}
	j := 0
	for ; j+2 <= m; j += 2 {
		o := (b0 + j) * k
		crow[j], crow[j+1] = dot2(arow, bd[o:o+k], bd[o+k:o+2*k])
	}
	if j < m {
		o := (b0 + j) * k
		crow[j] = dot(arow, bd[o:o+k])
	}
}

// MatMulATInto computes dst = aᵀ·b for a (k×m) and b (k×n). dst must not
// alias a or b.
func MatMulATInto(dst, a, b *Tensor) {
	if a.R != b.R {
		shapePanic("MatMulAT shape mismatch (%dx%d)ᵀ · %dx%d", a.R, a.C, b.R, b.C)
	}
	checkInto(dst, a.C, b.C, "MatMulATInto")
	m, n := a.C, b.C
	// dst[p][j] = sum_i a[i][p] * b[i][j]; accumulate row blocks serially to
	// keep writes race-free, parallelizing over output rows.
	clear(dst.Data)
	if a.R*m*n < parallelMinFlops() {
		matmulATRowRange(dst, a, b, 0, m)
		return
	}
	parallel.ForBlocked(m, parallelRowBlock(), func(lo, hi int) {
		matmulATRowRange(dst, a, b, lo, hi)
	})
}

func matmulATRowRange(dst, a, b *Tensor, lo, hi int) {
	matmulATRows(dst, a, b, 0, a.R, lo, hi)
}

// matmulATRows accumulates dst[p] += Σ_i a[i][p] · b[i] over input rows
// [i0, i1) for output rows p in [lo, hi). Input rows are paired: two rows'
// contributions to each dst element are added in ascending i order via
// axpy2, which is the exact element-wise order of the one-row-at-a-time
// loop, so the pairing is bitwise-invisible. The `av != 0` skip is preserved
// per row (adding 0·b would be a near-no-op but costs the full row pass; a
// one-hot heavy feature matrix makes the skip the common case). Shared by
// the per-panel weight-gradient kernels of the batched backward, which pass
// an explicit [i0, i1) panel row range.
func matmulATRows(dst, a, b *Tensor, i0, i1, lo, hi int) {
	m, n := a.C, b.C
	i := i0
	if simdKernels {
		for ; i+4 <= i1; i += 4 {
			matmulATQuadAVX2(dst.Data, lo, n,
				a.Data[i*m+lo:i*m+hi], a.Data[(i+1)*m+lo:(i+1)*m+hi],
				a.Data[(i+2)*m+lo:(i+2)*m+hi], a.Data[(i+3)*m+lo:(i+3)*m+hi],
				b.Data[i*n:(i+1)*n], b.Data[(i+1)*n:(i+2)*n],
				b.Data[(i+2)*n:(i+3)*n], b.Data[(i+3)*n:(i+4)*n])
		}
		if i+2 <= i1 {
			matmulATPairAVX2(dst.Data, lo, n,
				a.Data[i*m+lo:i*m+hi], a.Data[(i+1)*m+lo:(i+1)*m+hi],
				b.Data[i*n:(i+1)*n], b.Data[(i+1)*n:(i+2)*n])
			i += 2
		}
		if i < i1 {
			matmulATRowAVX2(dst.Data, lo, n,
				a.Data[i*m+lo:i*m+hi], b.Data[i*n:(i+1)*n])
		}
		return
	}
	for ; i+2 <= i1; i += 2 {
		arow0 := a.Data[i*m : (i+1)*m]
		arow1 := a.Data[(i+1)*m : (i+2)*m]
		brow0 := b.Data[i*n : (i+1)*n]
		brow1 := b.Data[(i+1)*n : (i+2)*n]
		for p := lo; p < hi; p++ {
			av0, av1 := arow0[p], arow1[p]
			if av0 != 0 {
				if av1 != 0 {
					axpy2(av0, av1, brow0, brow1, dst.Data[p*n:(p+1)*n])
				} else {
					axpy(av0, brow0, dst.Data[p*n:(p+1)*n])
				}
			} else if av1 != 0 {
				axpy(av1, brow1, dst.Data[p*n:(p+1)*n])
			}
		}
	}
	for ; i < i1; i++ {
		arow := a.Data[i*m : (i+1)*m]
		brow := b.Data[i*n : (i+1)*n]
		for p := lo; p < hi; p++ {
			if av := arow[p]; av != 0 {
				axpy(av, brow, dst.Data[p*n:(p+1)*n])
			}
		}
	}
}

// LinearInto computes the fused dense layer dst = x·w + bias (bias a 1×n
// row broadcast over rows), the matmul and bias add in one pass over dst.
// Bitwise-equal to MatMulInto followed by AddRowVecInto. dst must not alias
// x, w, or bias.
func LinearInto(dst, x, w, bias *Tensor) {
	if x.C != w.R {
		shapePanic("Linear shape mismatch %dx%d · %dx%d", x.R, x.C, w.R, w.C)
	}
	if bias.R != 1 || bias.C != w.C {
		shapePanic("Linear bias wants 1x%d, got %dx%d", w.C, bias.R, bias.C)
	}
	checkInto(dst, x.R, w.C, "LinearInto")
	m, k, n := x.R, x.C, w.C
	if m*k*n < parallelMinFlops() {
		linearRowRange(dst, x, w, bias, 0, m)
		return
	}
	parallel.ForBlocked(m, parallelRowBlock(), func(lo, hi int) {
		linearRowRange(dst, x, w, bias, lo, hi)
	})
}

func linearRowRange(dst, x, w, bias *Tensor, lo, hi int) {
	n := w.C
	k := x.C
	brow := bias.Data
	for i := lo; i < hi; i++ {
		arow := x.Data[i*k : (i+1)*k]
		crow := dst.Data[i*n : (i+1)*n]
		clear(crow)
		matmulRowKernel(crow, arow, w.Data, 0, n)
		for j := range crow {
			crow[j] += brow[j]
		}
	}
}

// transposeBlock is the tile edge of the cache-blocked transpose: 32×32
// float64 tiles (8 KiB read + 8 KiB written) keep both the row-major reads
// and the column-strided writes resident in L1 instead of thrashing one
// cache line per element as the naive column walk does for large C.
const transposeBlock = 32

// TransposeInto computes dst = tᵀ. dst must not alias t.
func TransposeInto(dst, t *Tensor) {
	checkInto(dst, t.C, t.R, "TransposeInto")
	r, c := t.R, t.C
	for ii := 0; ii < r; ii += transposeBlock {
		imax := ii + transposeBlock
		if imax > r {
			imax = r
		}
		for jj := 0; jj < c; jj += transposeBlock {
			jmax := jj + transposeBlock
			if jmax > c {
				jmax = c
			}
			for i := ii; i < imax; i++ {
				row := t.Data[i*c : (i+1)*c]
				for j := jj; j < jmax; j++ {
					dst.Data[j*r+i] = row[j]
				}
			}
		}
	}
}

// AddInto computes dst = a + b elementwise. dst may alias a and/or b.
func AddInto(dst, a, b *Tensor) {
	if !a.SameShape(b) {
		shapePanic("elementwise shape mismatch %dx%d vs %dx%d", a.R, a.C, b.R, b.C)
	}
	checkInto(dst, a.R, a.C, "AddInto")
	if simdKernels {
		addIntoAVX2(dst.Data, a.Data, b.Data)
		return
	}
	bd := b.Data
	for i, v := range a.Data {
		dst.Data[i] = v + bd[i]
	}
}

// SubInto computes dst = a − b elementwise. dst may alias a and/or b.
func SubInto(dst, a, b *Tensor) {
	if !a.SameShape(b) {
		shapePanic("elementwise shape mismatch %dx%d vs %dx%d", a.R, a.C, b.R, b.C)
	}
	checkInto(dst, a.R, a.C, "SubInto")
	bd := b.Data
	for i, v := range a.Data {
		dst.Data[i] = v - bd[i]
	}
}

// MulInto computes dst = a ⊙ b elementwise. dst may alias a and/or b.
func MulInto(dst, a, b *Tensor) {
	if !a.SameShape(b) {
		shapePanic("elementwise shape mismatch %dx%d vs %dx%d", a.R, a.C, b.R, b.C)
	}
	checkInto(dst, a.R, a.C, "MulInto")
	bd := b.Data
	for i, v := range a.Data {
		dst.Data[i] = v * bd[i]
	}
}

// DivInto computes dst = a / b elementwise. dst may alias a and/or b.
func DivInto(dst, a, b *Tensor) {
	if !a.SameShape(b) {
		shapePanic("elementwise shape mismatch %dx%d vs %dx%d", a.R, a.C, b.R, b.C)
	}
	checkInto(dst, a.R, a.C, "DivInto")
	bd := b.Data
	for i, v := range a.Data {
		dst.Data[i] = v / bd[i]
	}
}

// ScaleInto computes dst = s·t. dst may alias t.
func ScaleInto(dst, t *Tensor, s float64) {
	checkInto(dst, t.R, t.C, "ScaleInto")
	if simdKernels {
		scaleIntoAVX2(dst.Data, t.Data, s)
		return
	}
	for i, v := range t.Data {
		dst.Data[i] = s * v
	}
}

// ReLUInto computes dst = max(t, 0) elementwise with math.Max semantics:
// −0 maps to +0 and NaN stays NaN (canonicalized, as math.Max does). dst may
// alias t.
func ReLUInto(dst, t *Tensor) {
	checkInto(dst, t.R, t.C, "ReLUInto")
	if simdKernels {
		reluFwdAVX2(dst.Data, t.Data)
		return
	}
	for i, a := range t.Data {
		dst.Data[i] = math.Max(a, 0)
	}
}

// ReLUBackInto computes d[i] = g[i] where x[i] > 0 and 0 elsewhere — the
// ReLU gradient gate. d must not alias g or x.
func ReLUBackInto(d, g, x *Tensor) {
	checkInto(d, g.R, g.C, "ReLUBackInto")
	if simdKernels {
		reluBackAVX2(d.Data, g.Data, x.Data)
		return
	}
	for i, gv := range g.Data {
		if x.Data[i] > 0 {
			d.Data[i] = gv
		} else {
			d.Data[i] = 0
		}
	}
}

// LeakyReLUInto computes dst[i] = t[i] for t[i] > 0 and α·t[i] otherwise.
// dst may alias t.
func LeakyReLUInto(dst, t *Tensor, alpha float64) {
	checkInto(dst, t.R, t.C, "LeakyReLUInto")
	if simdKernels {
		leakyFwdAVX2(dst.Data, t.Data, alpha)
		return
	}
	for i, a := range t.Data {
		if a > 0 {
			dst.Data[i] = a
		} else {
			dst.Data[i] = alpha * a
		}
	}
}

// LeakyReLUBackInto computes d[i] = g[i] where x[i] > 0 and α·g[i]
// elsewhere. d must not alias g or x.
func LeakyReLUBackInto(d, g, x *Tensor, alpha float64) {
	checkInto(d, g.R, g.C, "LeakyReLUBackInto")
	if simdKernels {
		leakyBackAVX2(d.Data, g.Data, x.Data, alpha)
		return
	}
	for i, gv := range g.Data {
		if x.Data[i] > 0 {
			d.Data[i] = gv
		} else {
			d.Data[i] = alpha * gv
		}
	}
}

// SoftmaxBackRow computes drow[j] = yrow[j] · (grow[j] − dotgy), the
// elementwise half of the softmax VJP; the caller computes dotgy with the
// pinned sequential sum.
func SoftmaxBackRow(drow, grow, yrow []float64, dotgy float64) {
	if simdKernels {
		softmaxBackRowAVX2(drow, grow, yrow, dotgy)
		return
	}
	for j := range grow {
		drow[j] = yrow[j] * (grow[j] - dotgy)
	}
}

// MapInto computes dst = f applied elementwise to t. dst may alias t.
func MapInto(dst, t *Tensor, f func(float64) float64) {
	checkInto(dst, t.R, t.C, "MapInto")
	for i, v := range t.Data {
		dst.Data[i] = f(v)
	}
}

// AddRowVecInto computes dst = t with the 1×C row vector v added to every
// row. dst may alias t.
func AddRowVecInto(dst, t, v *Tensor) {
	if v.R != 1 || v.C != t.C {
		shapePanic("AddRowVec wants 1x%d, got %dx%d", t.C, v.R, v.C)
	}
	checkInto(dst, t.R, t.C, "AddRowVecInto")
	for i := 0; i < t.R; i++ {
		row, orow := t.Row(i), dst.Row(i)
		for j := range row {
			orow[j] = row[j] + v.Data[j]
		}
	}
}

// AddOuterInto computes dst[i][j] = a[i] + b[j] from column vectors a (N×1)
// and b (M×1). dst must not alias a or b.
func AddOuterInto(dst, a, b *Tensor) {
	if a.C != 1 || b.C != 1 {
		shapePanic("AddOuter wants column vectors, got %dx%d and %dx%d", a.R, a.C, b.R, b.C)
	}
	checkInto(dst, a.R, b.R, "AddOuterInto")
	for i := 0; i < a.R; i++ {
		av := a.Data[i]
		row := dst.Row(i)
		for j := 0; j < b.R; j++ {
			row[j] = av + b.Data[j]
		}
	}
}

// SumRowsInto computes the 1×C vector of column sums into dst.
func SumRowsInto(dst, t *Tensor) {
	checkInto(dst, 1, t.C, "SumRowsInto")
	clear(dst.Data)
	for i := 0; i < t.R; i++ {
		row := t.Row(i)
		for j, v := range row {
			dst.Data[j] += v
		}
	}
}

// SumColsInto computes the R×1 vector of row sums into dst.
func SumColsInto(dst, t *Tensor) {
	checkInto(dst, t.R, 1, "SumColsInto")
	for i := 0; i < t.R; i++ {
		s := 0.0
		for _, v := range t.Row(i) {
			s += v
		}
		dst.Data[i] = s
	}
}

// SoftmaxRowsInto computes row-wise softmax of t into dst; mask (may be
// nil) is an additive logit mask with −Inf disabling positions, and rows
// whose every position is masked yield all-zero output rather than NaN.
// dst may alias t (the in-place form used by attention). Mask rows are
// sliced once per row, keeping the inner loop free of index arithmetic.
func SoftmaxRowsInto(dst, t, mask *Tensor) {
	if mask != nil {
		if !t.SameShape(mask) {
			shapePanic("SoftmaxRows mask shape mismatch")
		}
	}
	checkInto(dst, t.R, t.C, "SoftmaxRowsInto")
	// The row body lives in softmaxRow (batch.go), shared with the batched
	// panel kernel so both paths produce bitwise-identical rows.
	for i := 0; i < t.R; i++ {
		softmaxRow(dst.Row(i), t.Row(i), mask, i)
	}
}

// ConcatColsInto concatenates tensors with equal row counts along columns
// into dst. dst must not alias any input.
func ConcatColsInto(dst *Tensor, ts ...*Tensor) {
	if len(ts) == 0 {
		checkInto(dst, 0, 0, "ConcatColsInto")
		return
	}
	r := ts[0].R
	c := 0
	for _, t := range ts {
		if t.R != r {
			shapePanic("ConcatCols row mismatch %d vs %d", t.R, r)
		}
		c += t.C
	}
	checkInto(dst, r, c, "ConcatColsInto")
	for i := 0; i < r; i++ {
		orow := dst.Row(i)
		off := 0
		for _, t := range ts {
			copy(orow[off:off+t.C], t.Row(i))
			off += t.C
		}
	}
}

// SliceColsInto copies columns [lo, hi) of t into dst.
func SliceColsInto(dst, t *Tensor, lo, hi int) {
	if lo < 0 || hi < lo || hi > t.C {
		shapePanic("SliceCols bad range [%d,%d) of %d", lo, hi, t.C)
	}
	checkInto(dst, t.R, hi-lo, "SliceColsInto")
	for i := 0; i < t.R; i++ {
		copy(dst.Row(i), t.Row(i)[lo:hi])
	}
}

// GatherRowsInto writes t.Row(idx[i]) into dst.Row(i).
func GatherRowsInto(dst, t *Tensor, idx []int) {
	checkInto(dst, len(idx), t.C, "GatherRowsInto")
	for i, id := range idx {
		if id < 0 || id >= t.R {
			shapePanic("GatherRows index %d out of %d rows", id, t.R)
		}
		copy(dst.Row(i), t.Row(id))
	}
}
