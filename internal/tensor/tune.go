// Kernel autotuning: the serial/parallel matmul crossover and the parallel
// row-block size used to be hardcoded constants picked on one machine. They
// are now package state with a measured "auto" mode, so the split adapts to
// the host (a single-core box never pays goroutine fan-out; a 32-core box
// cuts over earlier) while results stay bitwise identical at every setting —
// every output row is computed independently with the same per-row operation
// order whether it runs serially or inside a parallel block.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"predtop/internal/parallel"
)

// Defaults: the values the former constants pinned. They remain the
// behavior of every process that never calls ApplyKernelTune.
const (
	defaultRowBlock = 16
	defaultMinFlops = 1 << 17
)

// kernelMinFlops gates the goroutine fan-out of the matmul kernels: below
// this many multiply-adds the fork/join overhead dominates the work, so the
// loop runs serially on the calling goroutine. kernelRowBlock is the number
// of output rows handled per parallel task. Both are atomics so a startup
// tune can adjust them while tests or servers are already running kernels;
// a plain load on the hot path costs one MOV on amd64.
var (
	kernelMinFlops atomic.Int64
	kernelRowBlock atomic.Int64
	kernelTuneMode atomic.Pointer[string]
)

func init() {
	kernelMinFlops.Store(defaultMinFlops)
	kernelRowBlock.Store(defaultRowBlock)
	off := "off"
	kernelTuneMode.Store(&off)
}

// parallelMinFlops returns the current serial/parallel crossover in
// multiply-adds.
func parallelMinFlops() int { return int(kernelMinFlops.Load()) }

// parallelRowBlock returns the current parallel row-block size.
func parallelRowBlock() int { return int(kernelRowBlock.Load()) }

// KernelTuneResult reports the kernel split parameters in effect and how
// they were chosen, for logging and the predtop_kernel_* gauges.
type KernelTuneResult struct {
	// Mode is "off" (defaults), "auto" (measured), or "fixed" (explicit
	// crossover from a flag).
	Mode string
	// MinFlops is the serial/parallel crossover in multiply-adds;
	// math.MaxInt64 means the parallel path is never taken.
	MinFlops int64
	// RowBlock is the parallel row-block size.
	RowBlock int
	// Procs is the GOMAXPROCS the tune ran under (0 when Mode is not auto).
	Procs int
	// TuneSeconds is the wall time the measurement took (0 unless auto).
	TuneSeconds float64
}

// KernelTune returns the parameters currently in effect.
func KernelTune() KernelTuneResult {
	return KernelTuneResult{
		Mode:     *kernelTuneMode.Load(),
		MinFlops: kernelMinFlops.Load(),
		RowBlock: int(kernelRowBlock.Load()),
	}
}

// ApplyKernelTune configures the kernel split from a -kernel-tune flag or
// the PREDTOP_KERNEL_TUNE environment value:
//
//	"off" (or "")  – restore the built-in defaults
//	"auto"         – measure the serial/parallel crossover and row block on
//	                 this host and install them
//	"<n>"          – pin the crossover to n multiply-adds (row block stays
//	                 at its default); n <= 0 disables the parallel path
//
// Tuning only moves the work split; it never changes numerical results, so
// it is safe to apply under any determinism requirement.
func ApplyKernelTune(mode string) (KernelTuneResult, error) {
	switch mode {
	case "", "off":
		kernelMinFlops.Store(defaultMinFlops)
		kernelRowBlock.Store(defaultRowBlock)
		m := "off"
		kernelTuneMode.Store(&m)
		return KernelTune(), nil
	case "auto":
		res := autotuneKernels()
		kernelMinFlops.Store(res.MinFlops)
		kernelRowBlock.Store(int64(res.RowBlock))
		m := "auto"
		kernelTuneMode.Store(&m)
		res.Mode = m
		return res, nil
	default:
		n, err := strconv.ParseInt(mode, 10, 64)
		if err != nil {
			return KernelTuneResult{}, fmt.Errorf("tensor: bad kernel-tune value %q (want off, auto, or an integer)", mode)
		}
		if n <= 0 {
			n = math.MaxInt64
		}
		kernelMinFlops.Store(n)
		kernelRowBlock.Store(defaultRowBlock)
		m := "fixed"
		kernelTuneMode.Store(&m)
		return KernelTune(), nil
	}
}

// tuneReps bounds the repetitions per measured shape; the probe sizes are
// small enough that the whole auto tune stays well under 100 ms.
const tuneReps = 6

// autotuneKernels measures the serial/parallel crossover per shape class
// (square m=k=n probes) and the best row block at the crossover size. On a
// single-proc host the parallel path can never win, so the crossover is
// pinned to "never" without measuring.
func autotuneKernels() KernelTuneResult {
	start := time.Now()
	procs := runtime.GOMAXPROCS(0)
	res := KernelTuneResult{
		Mode:     "auto",
		MinFlops: math.MaxInt64,
		RowBlock: defaultRowBlock,
		Procs:    procs,
	}
	if procs <= 1 {
		res.TuneSeconds = time.Since(start).Seconds()
		return res
	}
	sizes := []int{32, 48, 64, 96, 128, 192, 256}
	for _, n := range sizes {
		a, b, dst := Full(n, n, 1.25), Full(n, n, 0.75), New(n, n)
		serial := timeMatMul(dst, a, b, false, defaultRowBlock)
		par := timeMatMul(dst, a, b, true, defaultRowBlock)
		if par < serial {
			res.MinFlops = int64(n) * int64(n) * int64(n)
			// Row block: probe a few splits at the first winning size.
			best := par
			for _, rb := range []int{8, 16, 32, 64} {
				if rb == defaultRowBlock {
					continue
				}
				if d := timeMatMul(dst, a, b, true, rb); d < best {
					best = d
					res.RowBlock = rb
				}
			}
			break
		}
	}
	res.TuneSeconds = time.Since(start).Seconds()
	return res
}

// timeMatMul measures the best-of-reps wall time of one m×k×n matmul on the
// forced serial or parallel path.
func timeMatMul(dst, a, b *Tensor, par bool, rowBlock int) time.Duration {
	best := time.Duration(math.MaxInt64)
	for r := 0; r < tuneReps; r++ {
		t0 := time.Now()
		if par {
			parallel.ForBlocked(a.R, rowBlock, func(lo, hi int) {
				matmulRowRange(dst, a, b, lo, hi)
			})
		} else {
			matmulRowRange(dst, a, b, 0, a.R)
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}
