package tensor

import "testing"

func TestArenaGetZeroFills(t *testing.T) {
	a := NewArena()
	x := a.Get(3, 4)
	for i := range x.Data {
		x.Data[i] = float64(i) + 1
	}
	a.Reset()
	y := a.Get(3, 4)
	if &y.Data[0] != &x.Data[0] {
		t.Fatal("expected the recycled buffer back for the same size class")
	}
	for i, v := range y.Data {
		if v != 0 {
			t.Fatalf("recycled Get not zeroed at %d: %v", i, v)
		}
	}
}

func TestArenaReusesBuffers(t *testing.T) {
	a := NewArena()
	// Different shapes in the same power-of-two class share buffers.
	x := a.GetUninit(4, 8) // 32 → class 64
	p0 := &x.Data[0]
	a.Reset()
	y := a.GetUninit(7, 9) // 63 → class 64
	if y.R != 7 || y.C != 9 || len(y.Data) != 63 {
		t.Fatalf("bad reshape on reuse: %dx%d len %d", y.R, y.C, len(y.Data))
	}
	if &y.Data[0] != p0 {
		t.Fatal("same-class request did not reuse the recycled buffer")
	}
	// A second request in the same generation must NOT alias the first.
	z := a.GetUninit(4, 8)
	if &z.Data[0] == &y.Data[0] {
		t.Fatal("two live tensors share a buffer")
	}
}

func TestArenaPinnedNeverAliased(t *testing.T) {
	a := NewArena()
	pinned := a.Pin(a.Get(4, 8))
	for i := range pinned.Data {
		pinned.Data[i] = 7
	}
	for gen := 0; gen < 3; gen++ {
		a.Reset()
		for k := 0; k < 8; k++ {
			buf := a.GetUninit(4, 8)
			if &buf.Data[0] == &pinned.Data[0] {
				t.Fatal("arena handed out a pinned tensor's buffer")
			}
			for i := range buf.Data {
				buf.Data[i] = -1
			}
		}
	}
	for i, v := range pinned.Data {
		if v != 7 {
			t.Fatalf("pinned tensor clobbered at %d: %v", i, v)
		}
	}
}

func TestArenaNilFallsBackToHeap(t *testing.T) {
	var a *Arena
	x := a.Get(2, 3)
	if x.R != 2 || x.C != 3 {
		t.Fatalf("nil-arena Get shape %dx%d", x.R, x.C)
	}
	y := a.GetUninit(2, 3)
	if &x.Data[0] == &y.Data[0] {
		t.Fatal("nil arena must never share buffers")
	}
	a.Pin(x) // no-op, must not panic
	a.Reset()
}

func TestArenaZeroSizedShapes(t *testing.T) {
	a := NewArena()
	for _, d := range [][2]int{{0, 5}, {5, 0}, {0, 0}} {
		x := a.Get(d[0], d[1])
		if x.R != d[0] || x.C != d[1] || len(x.Data) != 0 {
			t.Fatalf("bad empty tensor %dx%d len %d", x.R, x.C, len(x.Data))
		}
	}
	a.Reset()
}

// TestArenaSteadyStateZeroAlloc pins the tentpole property: once an arena
// has seen its working set, a get/use/reset cycle allocates nothing.
func TestArenaSteadyStateZeroAlloc(t *testing.T) {
	a := NewArena()
	step := func() {
		x := a.GetUninit(16, 16)
		y := a.Get(4, 4)
		x.Data[0] = 1
		y.Data[0] = 1
		a.Reset()
	}
	step() // warm the free lists
	if allocs := testing.AllocsPerRun(200, step); allocs != 0 {
		t.Fatalf("steady-state arena cycle allocated %.1f per run", allocs)
	}
}
