package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestApplyKernelTuneModes: the three flag forms parse and install what they
// say, and bad input is rejected without touching the live parameters.
func TestApplyKernelTuneModes(t *testing.T) {
	defer func() { _, _ = ApplyKernelTune("off") }()

	res, err := ApplyKernelTune("off")
	if err != nil || res.Mode != "off" || res.MinFlops != defaultMinFlops || res.RowBlock != defaultRowBlock {
		t.Fatalf("off: %+v err=%v", res, err)
	}

	res, err = ApplyKernelTune("12345")
	if err != nil || res.Mode != "fixed" || res.MinFlops != 12345 {
		t.Fatalf("fixed: %+v err=%v", res, err)
	}

	// n <= 0 pins the crossover to "never parallel".
	res, err = ApplyKernelTune("0")
	if err != nil || res.MinFlops != math.MaxInt64 {
		t.Fatalf("zero: %+v err=%v", res, err)
	}

	if _, err := ApplyKernelTune("fast"); err == nil {
		t.Fatal("bad mode accepted")
	}
	if got := KernelTune(); got.MinFlops != math.MaxInt64 {
		t.Fatalf("bad mode changed live params: %+v", got)
	}

	res, err = ApplyKernelTune("auto")
	if err != nil || res.Mode != "auto" || res.MinFlops <= 0 {
		t.Fatalf("auto: %+v err=%v", res, err)
	}
}

// TestKernelTuneBitwiseInvariant: the tune only moves the serial/parallel
// split — a matmul large enough to cross every crossover setting must produce
// bitwise-identical results at the defaults, with the parallel path forced
// everywhere, and with it disabled entirely.
func TestKernelTuneBitwiseInvariant(t *testing.T) {
	defer func() { _, _ = ApplyKernelTune("off") }()
	rng := rand.New(rand.NewSource(11))
	const n = 96
	a, b := New(n, n), New(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	run := func(mode string) []float64 {
		if _, err := ApplyKernelTune(mode); err != nil {
			t.Fatalf("ApplyKernelTune(%q): %v", mode, err)
		}
		dst := New(n, n)
		MatMulInto(dst, a, b)
		return dst.Data
	}
	ref := run("off")
	for _, mode := range []string{"1", "0", "auto"} {
		got := run(mode)
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("mode %q: element %d diverged: %v != %v", mode, i, got[i], ref[i])
			}
		}
	}
}
