package graphnn

import (
	"math"
	"math/rand"
	"testing"

	"predtop/internal/ag"
	"predtop/internal/models"
	"predtop/internal/stage"
	"predtop/internal/tensor"
)

// raggedPool builds encoded stage graphs with distinct node counts, so padded
// batches exercise real raggedness (every graph shorter than the stride pads).
func raggedPool(t testing.TB) []*stage.Encoded {
	t.Helper()
	m := models.Build(models.GPT3())
	var es []*stage.Encoded
	for _, r := range [][3]int{{0, 1, 0}, {1, 3, 0}, {2, 5, 0}, {0, 4, 0}, {2, 3, 1}} {
		g := m.StageGraph(r[0], r[1], r[2] == 1)
		es = append(es, stage.Encode(stage.FromGraph(g, true)))
	}
	counts := map[int]bool{}
	for _, e := range es {
		counts[e.N()] = true
	}
	if len(counts) < 3 {
		t.Fatalf("pool not ragged enough: node counts %v", counts)
	}
	return es
}

func raggedModels(seed int64) []Model {
	rng := rand.New(rand.NewSource(seed))
	return []Model{
		NewDAGTransformer(rng, TransformerConfig{Layers: 2, Dim: 16, Heads: 2, FFNDim: 32}),
		NewGCN(rng, GCNConfig{Layers: 2, Dim: 16}),
		NewGAT(rng, GATConfig{Layers: 2, Dim: 8, Heads: 2}),
	}
}

// checkBatchBitwise runs the batched forward+backward over the given graphs
// and requires every per-graph prediction and every per-graph gradient shard
// to be bitwise identical to a serial per-graph tape.
func checkBatchBitwise(t *testing.T, m Model, es []*stage.Encoded) {
	t.Helper()
	bm, ok := m.(BatchPredictor)
	if !ok {
		t.Fatalf("%s does not implement BatchPredictor", m.Name())
	}
	params := m.Params()

	// Serial reference: one tape and one gradient buffer per graph.
	wantPred := make([]float64, len(es))
	wantGrads := make([]*ag.GradBuffer, len(es))
	for i, e := range es {
		buf := ag.NewGradBuffer(params)
		ctx := ag.NewContextInto(buf)
		out := m.Predict(ctx, e)
		wantPred[i] = out.Value().At(0, 0)
		ctx.Backward(out)
		wantGrads[i] = buf
	}

	// Fused batch: one tape, per-graph shards.
	shards := make([]*ag.GradBuffer, len(es))
	for i := range shards {
		shards[i] = ag.NewGradBuffer(params)
	}
	ctx := ag.NewContext()
	nb, err := stage.NewBatch(es, ctx.Arena())
	if err != nil {
		t.Fatalf("NewBatch: %v", err)
	}
	ctx.SetShards(shards)
	out := bm.PredictBatch(ctx, nb)
	preds := out.Value()
	if preds.R != len(es) || preds.C != 1 {
		t.Fatalf("%s batch output %dx%d for %d graphs", m.Name(), preds.R, preds.C, len(es))
	}
	ctx.BackwardVec(out)

	for i := range es {
		if math.Float64bits(preds.Data[i]) != math.Float64bits(wantPred[i]) {
			t.Fatalf("%s graph %d (n=%d): batched %v != serial %v",
				m.Name(), i, es[i].N(), preds.Data[i], wantPred[i])
		}
		got, want := shards[i].Grads(), wantGrads[i].Grads()
		for pi := range want {
			for j := range want[pi].Data {
				a, b := want[pi].Data[j], got[pi].Data[j]
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("%s graph %d shard %s[%d]: batched %x != serial %x",
						m.Name(), i, params[pi].Name, j,
						math.Float64bits(b), math.Float64bits(a))
				}
			}
		}
	}
}

// TestPredictBatchRaggedBitwise drives the fused batched forward+backward
// through the padding edge cases — single-graph batches, rectangular batches
// (no padding at all), maximal pad skew (smallest graph next to largest), and
// duplicates sharing mask tensors — asserting per-graph values and gradient
// shards stay bitwise equal to the serial loop for all three architectures.
func TestPredictBatchRaggedBitwise(t *testing.T) {
	pool := raggedPool(t)
	small, large := 0, 0
	for i, e := range pool {
		if e.N() < pool[small].N() {
			small = i
		}
		if e.N() > pool[large].N() {
			large = i
		}
	}
	cases := map[string][]int{
		"B1":        {0},
		"B1-large":  {large},
		"all-equal": {1, 1, 1, 1},
		"pad-skew":  {small, large, small},
		"dups":      {2, 2, 0, 3},
		"ragged":    {0, 1, 2, 3, 4},
	}
	for _, m := range raggedModels(11) {
		t.Run(m.Name(), func(t *testing.T) {
			for name, idx := range cases {
				es := make([]*stage.Encoded, len(idx))
				for k, i := range idx {
					es[k] = pool[i]
				}
				t.Run(name, func(t *testing.T) { checkBatchBitwise(t, m, es) })
			}
		})
	}
}

// TestPredictBatchRandomizedBitwise is the property form: random batch
// compositions and sizes drawn from the ragged pool, each checked bitwise
// against the serial loop, with SIMD kernels both on and off (when the
// hardware has them) to pin the scalar and vector paths to each other.
func TestPredictBatchRandomizedBitwise(t *testing.T) {
	pool := raggedPool(t)
	rng := rand.New(rand.NewSource(99))
	ms := raggedModels(17)
	simdModes := []bool{tensor.SIMDEnabled()}
	if tensor.SIMDAvailable() {
		simdModes = []bool{true, false}
	}
	defer tensor.SetSIMD(tensor.SIMDEnabled())
	for trial := 0; trial < 8; trial++ {
		b := 1 + rng.Intn(6)
		es := make([]*stage.Encoded, b)
		for k := range es {
			es[k] = pool[rng.Intn(len(pool))]
		}
		m := ms[trial%len(ms)]
		for _, simd := range simdModes {
			tensor.SetSIMD(simd)
			checkBatchBitwise(t, m, es)
		}
	}
}

// TestNewBatchRejectsEmptyGraph: a zero-node graph has nothing to pool, so
// batching must fail loudly rather than emit a padding artifact — alone and
// in the middle of an otherwise valid batch.
func TestNewBatchRejectsEmptyGraph(t *testing.T) {
	pool := raggedPool(t)
	empty := &stage.Encoded{X: tensor.New(0, stage.FeatureDim)}
	for _, es := range [][]*stage.Encoded{
		{empty},
		{pool[0], empty, pool[1]},
	} {
		if _, err := stage.NewBatch(es, nil); err != stage.ErrEmptyGraph {
			t.Fatalf("NewBatch with empty graph: err=%v, want ErrEmptyGraph", err)
		}
	}
}
