// Batched prediction: all three architectures implement BatchPredictor,
// running B stacked stage graphs through one tape. Per graph, predictions
// (and, through ag's segmented backward, gradients) are bitwise identical to
// Predict on the graph alone, independent of which other graphs share the
// batch — batching is pure amortization.
package graphnn

import (
	"predtop/internal/ag"
	"predtop/internal/stage"
)

// BatchPredictor is implemented by models whose forward can fuse a whole
// padded batch of stage graphs into one tape, returning B×1 predictions in
// batch order.
type BatchPredictor interface {
	PredictBatch(ctx *ag.Context, b *stage.Batch) *ag.Node
}

// Compile-time checks: every built-in architecture batches.
var (
	_ BatchPredictor = (*DAGTransformer)(nil)
	_ BatchPredictor = (*GCN)(nil)
	_ BatchPredictor = (*GAT)(nil)
)

// PredictBatch implements BatchPredictor.
func (m *DAGTransformer) PredictBatch(ctx *ag.Context, b *stage.Batch) *ag.Node {
	bl := b.Layout
	ls := ctx.StartLayer("embed")
	x := m.input.ForwardBatch(ctx, ctx.Const(b.X), bl)
	// DAGPE: the sinusoidal table is constant, so the per-graph depth gather
	// needs no tape op — build the stacked positional tensor directly (pad
	// rows zero) and add it as a constant.
	pos := ctx.Arena().Get(bl.Rows(), m.cfg.Dim)
	for g := 0; g < bl.B; g++ {
		base := g * bl.Stride
		for i, d := range b.Depths[g] {
			if d >= m.cfg.MaxPos {
				d = m.cfg.MaxPos - 1
			}
			copy(pos.Row(base+i), m.pe.Row(d))
		}
	}
	x = ctx.Add(x, ctx.Const(pos))
	ls.End()
	for i, l := range m.layers {
		ls = ctx.StartLayer(m.spanAttn[i])
		x = ctx.Add(x, l.attn.ForwardBatch(ctx, l.ln1.ForwardBatch(ctx, x, bl), b.Reach, bl))
		ls.End()
		ls = ctx.StartLayer(m.spanFFN[i])
		x = ctx.Add(x, l.ffn.ForwardBatch(ctx, l.ln2.ForwardBatch(ctx, x, bl), bl))
		ls.End()
	}
	ls = ctx.StartLayer("head")
	pooled := ctx.Scale(ctx.SegSumRows(x, bl), poolScale)
	out := m.head.ForwardBatch(ctx, pooled, b.HeadLayout)
	ls.End()
	return out
}

// PredictBatch implements BatchPredictor.
func (m *GCN) PredictBatch(ctx *ag.Context, b *stage.Batch) *ag.Node {
	bl := b.Layout
	x := ctx.Const(b.X)
	for i, l := range m.layers {
		ls := ctx.StartLayer(m.spanNames[i])
		x = ctx.ReLU(l.ForwardBatch(ctx, ctx.SegAdjMatMul(b.Adj, x, bl), bl))
		ls.End()
	}
	ls := ctx.StartLayer("head")
	out := m.head.ForwardBatch(ctx, ctx.Scale(ctx.SegSumRows(x, bl), poolScale), b.HeadLayout)
	ls.End()
	return out
}

// PredictBatch implements BatchPredictor.
func (m *GAT) PredictBatch(ctx *ag.Context, b *stage.Batch) *ag.Node {
	bl := b.Layout
	x := ctx.Const(b.X)
	for i, l := range m.layers {
		ls := ctx.StartLayer(m.spanNames[i])
		heads := make([]*ag.Node, l.numHeads)
		for h := 0; h < l.numHeads; h++ {
			wh := l.w[h].ForwardBatch(ctx, x, bl)
			s1 := ctx.SegMatMul(wh, l.aSrc[h], bl)
			s2 := ctx.SegMatMul(wh, l.aDst[h], bl)
			logits := ctx.LeakyReLU(ctx.PanelAddOuter(s1, s2, bl), l.alpha)
			// In-place is safe exactly as in Predict: LeakyReLU's backward
			// reads its input, never its own output buffer.
			attn := ctx.PanelSoftmaxInPlace(logits, b.Neighbor, bl)
			heads[h] = ctx.PanelMatMul(attn, wh, bl)
		}
		x = ctx.ReLU(ctx.ConcatCols(heads...))
		ls.End()
	}
	ls := ctx.StartLayer("head")
	out := m.head.ForwardBatch(ctx, ctx.Scale(ctx.SegSumRows(x, bl), poolScale), b.HeadLayout)
	ls.End()
	return out
}
