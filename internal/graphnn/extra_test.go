package graphnn

import (
	"math"
	"math/rand"
	"testing"

	"predtop/internal/ag"
	"predtop/internal/models"
	"predtop/internal/stage"
	"predtop/internal/tensor"
)

func TestPredictionsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := encodedStage(t)
	for _, m := range []Model{
		NewDAGTransformer(rng, TransformerConfig{Layers: 2, Dim: 16, Heads: 2}),
		NewGCN(rng, GCNConfig{Layers: 2, Dim: 16}),
		NewGAT(rng, GATConfig{Layers: 2, Dim: 16, Heads: 2}),
	} {
		a := m.Predict(ag.NewContext(), e).Value().At(0, 0)
		b := m.Predict(ag.NewContext(), e).Value().At(0, 0)
		if a != b {
			t.Fatalf("%s not deterministic: %v vs %v", m.Name(), a, b)
		}
	}
}

func TestPredictionsVaryAcrossGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := models.Build(models.GPT3())
	e1 := stage.Encode(stage.FromGraph(m.StageGraph(2, 3, false), true))
	e2 := stage.Encode(stage.FromGraph(m.StageGraph(2, 5, false), true))
	for _, net := range []Model{
		NewDAGTransformer(rng, TransformerConfig{Layers: 1, Dim: 16, Heads: 2}),
		NewGCN(rng, GCNConfig{Layers: 2, Dim: 16}),
		NewGAT(rng, GATConfig{Layers: 1, Dim: 8, Heads: 2}),
	} {
		p1 := net.Predict(ag.NewContext(), e1).Value().At(0, 0)
		p2 := net.Predict(ag.NewContext(), e2).Value().At(0, 0)
		if p1 == p2 {
			t.Fatalf("%s blind to graph size", net.Name())
		}
	}
}

func TestGATRespectsNeighborhood(t *testing.T) {
	// With an empty-neighborhood mask (self-loops only), a GAT layer reduces
	// to per-node transforms: two isolated identical-feature nodes must get
	// identical embeddings regardless of the rest of the graph.
	rng := rand.New(rand.NewSource(9))
	gat := NewGAT(rng, GATConfig{Layers: 1, Dim: 8, Heads: 2})
	n := 4
	x := tensor.Randn(rng, n, stage.FeatureDim, 1)
	copy(x.Row(1), x.Row(3)) // identical features
	inf := math.Inf(-1)
	mask := tensor.Full(n, n, inf)
	for i := 0; i < n; i++ {
		mask.Set(i, i, 0)
	}
	e := &stage.Encoded{
		X: x, ReachMask: tensor.New(n, n), NeighborMask: mask,
		AdjNorm: tensor.Eye(n), Depths: make([]int, n),
	}
	ctx := ag.NewContext()
	// Run just the layers by predicting and checking output is finite; the
	// per-node equality is validated through a full-graph perturbation: with
	// self-only attention, changing node 0's features must not change the
	// contribution difference between nodes 1 and 3.
	p1 := gat.Predict(ctx, e).Value().At(0, 0)
	if math.IsNaN(p1) || math.IsInf(p1, 0) {
		t.Fatalf("GAT output not finite: %v", p1)
	}
}

func TestTransformerHandlesSingleNodeGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tran := NewDAGTransformer(rng, TransformerConfig{Layers: 1, Dim: 16, Heads: 2})
	e := &stage.Encoded{
		X:            tensor.Randn(rng, 1, stage.FeatureDim, 1),
		ReachMask:    tensor.New(1, 1),
		NeighborMask: tensor.New(1, 1),
		AdjNorm:      tensor.Eye(1),
		Depths:       []int{0},
	}
	out := tran.Predict(ag.NewContext(), e).Value().At(0, 0)
	if math.IsNaN(out) || math.IsInf(out, 0) {
		t.Fatalf("single-node prediction: %v", out)
	}
}

func TestMoEGraphsLargerThanGPT(t *testing.T) {
	// The paper attributes GCN's MoE failures to larger graphs; verify the
	// premise holds in our encodings.
	gpt := models.Build(models.GPT3())
	moe := models.Build(models.MoE())
	gptN := stage.Encode(stage.FromGraph(gpt.StageGraph(2, 3, false), true)).N()
	moeN := stage.Encode(stage.FromGraph(moe.StageGraph(2, 3, false), true)).N()
	if moeN <= gptN {
		t.Fatalf("MoE layer graph (%d) not larger than GPT (%d)", moeN, gptN)
	}
}
