package graphnn

import (
	"math/rand"
	"strconv"
	"testing"

	"predtop/internal/ag"
	"predtop/internal/models"
	"predtop/internal/nn"
	"predtop/internal/stage"
)

func encodedStage(t testing.TB) *stage.Encoded {
	t.Helper()
	m := models.Build(models.GPT3())
	g := m.StageGraph(2, 3, false)
	return stage.Encode(stage.FromGraph(g, true))
}

func TestAllModelsPredictScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := encodedStage(t)
	ms := []Model{
		NewDAGTransformer(rng, TransformerConfig{Layers: 2, Dim: 16, Heads: 2}),
		NewGCN(rng, GCNConfig{Layers: 3, Dim: 16}),
		NewGAT(rng, GATConfig{Layers: 2, Dim: 16, Heads: 2}),
	}
	names := map[string]bool{}
	for _, m := range ms {
		ctx := ag.NewContext()
		out := m.Predict(ctx, e)
		if out.Value().R != 1 || out.Value().C != 1 {
			t.Fatalf("%s output %dx%d", m.Name(), out.Value().R, out.Value().C)
		}
		if len(m.Params()) == 0 {
			t.Fatalf("%s has no parameters", m.Name())
		}
		names[m.Name()] = true
	}
	if !names["Tran"] || !names["GCN"] || !names["GAT"] {
		t.Fatalf("model names wrong: %v", names)
	}
}

func TestModelsAreTrainable(t *testing.T) {
	// One gradient step must change the prediction (all parameters are wired
	// into the graph and receive gradients).
	rng := rand.New(rand.NewSource(2))
	e := encodedStage(t)
	for _, m := range []Model{
		NewDAGTransformer(rng, TransformerConfig{Layers: 2, Dim: 16, Heads: 2}),
		NewGCN(rng, GCNConfig{Layers: 2, Dim: 16}),
		NewGAT(rng, GATConfig{Layers: 2, Dim: 16, Heads: 2}),
	} {
		ctx := ag.NewContext()
		before := m.Predict(ctx, e).Value().At(0, 0)
		ctx.Backward(ctx.MeanAll(ctx.Square(m.Predict(ctx, e))))
		gradSum := 0.0
		for _, p := range m.Params() {
			gradSum += p.Grad.MaxAbs()
			for j := range p.V.Data {
				p.V.Data[j] -= 0.01 * p.Grad.Data[j]
			}
		}
		if gradSum == 0 {
			t.Fatalf("%s received no gradients", m.Name())
		}
		ctx2 := ag.NewContext()
		after := m.Predict(ctx2, e).Value().At(0, 0)
		if before == after {
			t.Fatalf("%s prediction unchanged after step", m.Name())
		}
	}
}

func TestDAGTransformerDefaultsMatchPaper(t *testing.T) {
	cfg := TransformerConfig{}.withDefaults()
	if cfg.Layers != 4 || cfg.Dim != 64 {
		t.Fatalf("transformer defaults %+v (paper: 4 layers, dim 64)", cfg)
	}
	g := GCNConfig{}.withDefaults()
	if g.Layers != 6 || g.Dim != 256 {
		t.Fatalf("GCN defaults %+v (paper: 6 layers, 256)", g)
	}
	a := GATConfig{}.withDefaults()
	if a.Layers != 6 || a.Dim != 32 {
		t.Fatalf("GAT defaults %+v (paper: 6 layers, 32)", a)
	}
}

func TestTransformerUsesReachabilityMask(t *testing.T) {
	// Predictions must differ between the true reachability mask and a
	// fully-open mask (DAGRA matters).
	rng := rand.New(rand.NewSource(3))
	m := NewDAGTransformer(rng, TransformerConfig{Layers: 2, Dim: 16, Heads: 2})
	e := encodedStage(t)
	ctx := ag.NewContext()
	masked := m.Predict(ctx, e).Value().At(0, 0)

	open := *e
	openMask := e.ReachMask.Clone()
	openMask.Zero()
	open.ReachMask = openMask
	ctx2 := ag.NewContext()
	unmasked := m.Predict(ctx2, &open).Value().At(0, 0)
	if masked == unmasked {
		t.Fatal("reachability mask has no effect")
	}
}

func TestTransformerUsesDepthPE(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewDAGTransformer(rng, TransformerConfig{Layers: 2, Dim: 16, Heads: 2})
	e := encodedStage(t)
	ctx := ag.NewContext()
	base := m.Predict(ctx, e).Value().At(0, 0)

	flat := *e
	flat.Depths = make([]int, len(e.Depths)) // all depth 0
	ctx2 := ag.NewContext()
	noPE := m.Predict(ctx2, &flat).Value().At(0, 0)
	if base == noPE {
		t.Fatal("depth positional encoding has no effect")
	}
}

func TestDepthsClampedToPETable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewDAGTransformer(rng, TransformerConfig{Layers: 1, Dim: 16, Heads: 2, MaxPos: 4})
	e := encodedStage(t) // depths well beyond 4
	ctx := ag.NewContext()
	out := m.Predict(ctx, e).Value().At(0, 0)
	if out != out { // NaN check
		t.Fatal("clamped prediction is NaN")
	}
}

func TestParamCountsReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tran := NewDAGTransformer(rng, TransformerConfig{})
	n := nn.ParamCount(tran)
	// 4 layers × (4·64² attention + 2·64·128 FFN + norms) + head ≈ 10^5.
	if n < 50_000 || n > 500_000 {
		t.Fatalf("transformer param count %d", n)
	}
}

// TestLayerNamesAllWidths guards the strconv-based layer naming: the old
// hand-rolled itoa emitted garbage runes for indices ≥ 100 (e.g. ":0" for
// layer 100), corrupting serialized parameter names of deep models.
func TestLayerNamesAllWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewGCN(rng, GCNConfig{Layers: 124, Dim: 4})
	names := map[string]bool{}
	for _, p := range m.Params() {
		names[p.Name] = true
	}
	if len(names) != 2*124+4 { // W+b per layer, 4 head params
		t.Fatalf("duplicate or missing parameter names: %d distinct", len(names))
	}
	for _, idx := range []int{0, 9, 10, 99, 100, 123} {
		want := "gcn.l" + strconv.Itoa(idx) + ".W"
		if !names[want] {
			t.Fatalf("missing parameter %q", want)
		}
	}
	for name := range names {
		for _, r := range name {
			if r != '.' && r != '-' && !(r >= '0' && r <= '9') && !(r >= 'a' && r <= 'z') && !(r >= 'A' && r <= 'Z') {
				t.Fatalf("garbage rune %q in parameter name %q", r, name)
			}
		}
	}
}
