package graphnn

import (
	"fmt"
	"math"

	"predtop/internal/nn"
	"predtop/internal/stage"
	"predtop/internal/tensor"
)

// Forward32 is the opt-in float32 inference engine: a forward-only evaluator
// over a float32 snapshot of a trained model's weights. It mirrors the
// float64 forward operation for operation but carries no tape, no gradients,
// and no bitwise guarantee — results track the float64 path within the
// tolerance pinned by the float32 determinism table (TestFloat32Tolerance*),
// and the engine itself is deterministic (same input, same bits) because
// every loop is serial over fixed-order data. Weights are snapshotted at
// construction; training the model afterwards does not update the engine.
type Forward32 struct {
	predict func(e *stage.Encoded) float64
}

// NewForward32 snapshots m's weights into a float32 evaluator. All three
// built-in architectures are supported; an unknown model returns an error.
func NewForward32(m Model) (*Forward32, error) {
	switch t := m.(type) {
	case *DAGTransformer:
		return newTran32(t), nil
	case *GCN:
		return newGCN32(t), nil
	case *GAT:
		return newGAT32(t), nil
	}
	return nil, fmt.Errorf("graphnn: no float32 path for %T", m)
}

// Predict returns the model's latency prediction (pre-scale, like
// Model.Predict's scalar output) computed in float32.
func (f *Forward32) Predict(e *stage.Encoded) float64 { return f.predict(e) }

// lin32 is a float32 Linear snapshot.
type lin32 struct {
	w, b *tensor.Tensor32
}

func snapLin(w, b *tensor.Tensor) lin32 {
	return lin32{w: w.ToFloat32(), b: b.ToFloat32()}
}

func (l lin32) forward(x *tensor.Tensor32) *tensor.Tensor32 {
	out := tensor.New32(x.R, l.w.C)
	tensor.LinearInto32(out, x, l.w, l.b)
	return out
}

// mlpHead32 is a float32 MLPHead snapshot.
type mlpHead32 struct {
	hidden []lin32
	out    lin32
}

func snapHead(hidden []lin32, out lin32) mlpHead32 { return mlpHead32{hidden: hidden, out: out} }

func (h mlpHead32) forward(x *tensor.Tensor32) float32 {
	for _, l := range h.hidden {
		x = l.forward(x)
		tensor.ReLU32(x)
	}
	return h.out.forward(x).Data[0]
}

func pool32(x *tensor.Tensor32) *tensor.Tensor32 {
	pooled := tensor.New32(1, x.C)
	tensor.SumRowsInto32(pooled, x)
	tensor.Scale32(pooled, float32(poolScale))
	return pooled
}

func snap32Head(h *nn.MLPHead) mlpHead32 {
	hidden := make([]lin32, len(h.Hidden))
	for i, l := range h.Hidden {
		hidden[i] = snapLin(l.W.V, l.B.V)
	}
	return snapHead(hidden, snapLin(h.Out.W.V, h.Out.B.V))
}

func newTran32(m *DAGTransformer) *Forward32 {
	type layer32 struct {
		wq, wk, wv, wo lin32
		g1, b1, g2, b2 *tensor.Tensor32
		ffnIn, ffnOut  lin32
		eps1, eps2     float32
	}
	input := snapLin(m.input.W.V, m.input.B.V)
	pe := m.pe.ToFloat32()
	layers := make([]layer32, len(m.layers))
	for i, l := range m.layers {
		layers[i] = layer32{
			wq: snapLin(l.attn.Wq.W.V, l.attn.Wq.B.V),
			wk: snapLin(l.attn.Wk.W.V, l.attn.Wk.B.V),
			wv: snapLin(l.attn.Wv.W.V, l.attn.Wv.B.V),
			wo: snapLin(l.attn.Wo.W.V, l.attn.Wo.B.V),
			g1: l.ln1.G.V.ToFloat32(), b1: l.ln1.B.V.ToFloat32(), eps1: float32(l.ln1.Eps),
			g2: l.ln2.G.V.ToFloat32(), b2: l.ln2.B.V.ToFloat32(), eps2: float32(l.ln2.Eps),
			ffnIn:  snapLin(l.ffn.In.W.V, l.ffn.In.B.V),
			ffnOut: snapLin(l.ffn.Out.W.V, l.ffn.Out.B.V),
		}
	}
	head := snap32Head(m.head)
	heads, dim := m.cfg.Heads, m.cfg.Dim
	dk := dim / heads
	scale := float32(1 / math.Sqrt(float64(dk)))
	maxPos := m.cfg.MaxPos

	return &Forward32{predict: func(e *stage.Encoded) float64 {
		n := e.N()
		x := input.forward(e.X.ToFloat32())
		for i, d := range e.Depths {
			if d >= maxPos {
				d = maxPos - 1
			}
			perow := pe.Row(d)
			xrow := x.Row(i)
			for j, v := range perow {
				xrow[j] += v
			}
		}
		mask := e.ReachMask.ToFloat32()
		qh := tensor.New32(n, dk)
		kh := tensor.New32(n, dk)
		vh := tensor.New32(n, dk)
		scores := tensor.New32(n, n)
		concat := tensor.New32(n, dim)
		for _, l := range layers {
			// x += attn(ln1(x))
			ln := &tensor.Tensor32{R: x.R, C: x.C, Data: append([]float32(nil), x.Data...)}
			tensor.LayerNormRows32(ln, l.g1, l.b1, l.eps1)
			q := l.wq.forward(ln)
			k := l.wk.forward(ln)
			v := l.wv.forward(ln)
			for h := 0; h < heads; h++ {
				lo, hi := h*dk, (h+1)*dk
				tensor.SliceColsInto32(qh, q, lo, hi)
				tensor.SliceColsInto32(kh, k, lo, hi)
				tensor.SliceColsInto32(vh, v, lo, hi)
				tensor.MatMulBTInto32(scores, qh, kh)
				tensor.Scale32(scores, scale)
				tensor.SoftmaxRows32(scores, mask)
				hd := tensor.New32(n, dk)
				tensor.MatMulInto32(hd, scores, vh)
				tensor.CopyCols32(concat, hd, lo)
			}
			tensor.AddInPlace32(x, l.wo.forward(concat))
			// x += ffn(ln2(x))
			ln2 := &tensor.Tensor32{R: x.R, C: x.C, Data: append([]float32(nil), x.Data...)}
			tensor.LayerNormRows32(ln2, l.g2, l.b2, l.eps2)
			hmid := l.ffnIn.forward(ln2)
			tensor.ReLU32(hmid)
			tensor.AddInPlace32(x, l.ffnOut.forward(hmid))
		}
		return float64(head.forward(pool32(x)))
	}}
}

func newGCN32(m *GCN) *Forward32 {
	layers := make([]lin32, len(m.layers))
	for i, l := range m.layers {
		layers[i] = snapLin(l.W.V, l.B.V)
	}
	head := snap32Head(m.head)
	return &Forward32{predict: func(e *stage.Encoded) float64 {
		x := e.X.ToFloat32()
		adj := e.AdjNorm.ToFloat32()
		for _, l := range layers {
			agg := tensor.New32(x.R, x.C)
			tensor.MatMulInto32(agg, adj, x)
			x = l.forward(agg)
			tensor.ReLU32(x)
		}
		return float64(head.forward(pool32(x)))
	}}
}

func newGAT32(m *GAT) *Forward32 {
	type head32 struct {
		w          lin32
		aSrc, aDst *tensor.Tensor32
	}
	type layer32 struct {
		heads []head32
	}
	layers := make([]layer32, len(m.layers))
	for i, l := range m.layers {
		hs := make([]head32, l.numHeads)
		for h := 0; h < l.numHeads; h++ {
			hs[h] = head32{
				w:    snapLin(l.w[h].W.V, l.w[h].B.V),
				aSrc: l.aSrc[h].V.ToFloat32(),
				aDst: l.aDst[h].V.ToFloat32(),
			}
		}
		layers[i] = layer32{heads: hs}
	}
	head := snap32Head(m.head)
	alpha := float32(m.cfg.Alpha)
	hd := m.cfg.Dim / m.cfg.Heads
	return &Forward32{predict: func(e *stage.Encoded) float64 {
		n := e.N()
		x := e.X.ToFloat32()
		mask := e.NeighborMask.ToFloat32()
		for _, l := range layers {
			concat := tensor.New32(n, hd*len(l.heads))
			for h, hh := range l.heads {
				wh := hh.w.forward(x) // n×hd
				s1 := tensor.New32(n, 1)
				s2 := tensor.New32(n, 1)
				tensor.MatMulInto32(s1, wh, hh.aSrc)
				tensor.MatMulInto32(s2, wh, hh.aDst)
				logits := tensor.New32(n, n)
				tensor.AddOuterInto32(logits, s1, s2)
				tensor.LeakyReLU32(logits, alpha)
				tensor.SoftmaxRows32(logits, mask)
				out := tensor.New32(n, hd)
				tensor.MatMulInto32(out, logits, wh)
				tensor.CopyCols32(concat, out, h*hd)
			}
			tensor.ReLU32(concat)
			x = concat
		}
		return float64(head.forward(pool32(x)))
	}}
}
