// Package graphnn implements the three stage-latency prediction models the
// paper compares (§IV, §VII-D): the DAG Transformer (reachability-masked
// attention with depth positional encodings, Luo et al.), and the GCN and
// GAT message-passing baselines. All three consume an encoded stage graph
// (internal/stage) and produce one scalar — the predicted optimal
// intra-stage latency — via global add pooling (Eqn 2) and an MLP head.
package graphnn

import (
	"fmt"
	"math/rand"
	"strconv"

	"predtop/internal/ag"
	"predtop/internal/nn"
	"predtop/internal/stage"
	"predtop/internal/tensor"
)

// poolScale conditions the global-add-pool output: stage DAGs carry tens to
// hundreds of nodes, so the raw pooled vector is O(N) and would start the
// prediction head hundreds of units from the normalized targets. A fixed
// 1/64 factor keeps pooling additive in the node count while letting every
// architecture converge within the CPU-scale epoch budget.
const poolScale = 1.0 / 64

// Model is a stage-latency predictor.
type Model interface {
	nn.Module
	// Predict maps an encoded stage graph to a 1×1 latency prediction.
	Predict(ctx *ag.Context, e *stage.Encoded) *ag.Node
	// Name identifies the architecture ("Tran", "GCN", "GAT").
	Name() string
	// Spec returns the serializable architecture description.
	Spec() ModelSpec
}

// ModelSpec is a serializable architecture description from which an
// identically-shaped model can be rebuilt (see Build).
type ModelSpec struct {
	Arch string // "Tran", "GCN", or "GAT"
	Tran TransformerConfig
	GCN  GCNConfig
	GAT  GATConfig
}

// Build reconstructs a freshly-initialized model of this spec.
func (s ModelSpec) Build(rng *rand.Rand) (Model, error) {
	switch s.Arch {
	case "Tran":
		return NewDAGTransformer(rng, s.Tran), nil
	case "GCN":
		return NewGCN(rng, s.GCN), nil
	case "GAT":
		return NewGAT(rng, s.GAT), nil
	}
	return nil, fmt.Errorf("graphnn: unknown architecture %q", s.Arch)
}

// TransformerConfig configures a DAG Transformer predictor. The zero value
// is replaced by the paper's hyper-parameters (§IV-B6: 4 layers, dim 64).
type TransformerConfig struct {
	Layers  int
	Dim     int
	Heads   int
	FFNDim  int
	MaxPos  int // positional-encoding table size (clamped depths)
	HeadDim int // MLP head hidden width
}

func (c TransformerConfig) withDefaults() TransformerConfig {
	if c.Layers == 0 {
		c.Layers = 4
	}
	if c.Dim == 0 {
		c.Dim = 64
	}
	if c.Heads == 0 {
		c.Heads = 4
	}
	if c.FFNDim == 0 {
		c.FFNDim = 2 * c.Dim
	}
	if c.MaxPos == 0 {
		c.MaxPos = 512
	}
	if c.HeadDim == 0 {
		c.HeadDim = c.Dim
	}
	return c
}

// tranLayer is one DAG Transformer layer (Fig 4): masked multi-head
// attention and a feed-forward block, each with residual + layer norm.
type tranLayer struct {
	attn *nn.MultiHeadAttention
	ln1  *nn.LayerNorm
	ffn  *nn.FeedForward
	ln2  *nn.LayerNorm
}

// DAGTransformer is the paper's predictor: reachability-based attention
// (DAGRA, Eqn 1 with k = ∞) plus depth positional encodings (DAGPE).
type DAGTransformer struct {
	cfg    TransformerConfig
	input  *nn.Linear
	pe     *tensor.Tensor
	layers []*tranLayer
	head   *nn.MLPHead
	// Per-layer profiling span names ("l0.attn", "l0.ffn", …), precomputed
	// so the instrumented Predict never formats strings on the hot path.
	spanAttn, spanFFN []string
}

// NewDAGTransformer builds a DAG Transformer predictor.
func NewDAGTransformer(rng *rand.Rand, cfg TransformerConfig) *DAGTransformer {
	cfg = cfg.withDefaults()
	m := &DAGTransformer{
		cfg:   cfg,
		input: nn.NewLinear(rng, "tran.in", stage.FeatureDim, cfg.Dim),
		pe:    nn.SinusoidalPE(cfg.MaxPos, cfg.Dim),
		head:  nn.NewMLPHead(rng, "tran.head", cfg.Dim, cfg.HeadDim),
	}
	for i := 0; i < cfg.Layers; i++ {
		name := "tran.l" + strconv.Itoa(i)
		m.layers = append(m.layers, &tranLayer{
			attn: nn.NewMultiHeadAttention(rng, name+".attn", cfg.Dim, cfg.Heads),
			ln1:  nn.NewLayerNorm(name+".ln1", cfg.Dim),
			ffn:  nn.NewFeedForward(rng, name+".ffn", cfg.Dim, cfg.FFNDim),
			ln2:  nn.NewLayerNorm(name+".ln2", cfg.Dim),
		})
		li := "l" + strconv.Itoa(i)
		m.spanAttn = append(m.spanAttn, li+".attn")
		m.spanFFN = append(m.spanFFN, li+".ffn")
	}
	return m
}

// Name implements Model.
func (m *DAGTransformer) Name() string { return "Tran" }

// Spec implements Model.
func (m *DAGTransformer) Spec() ModelSpec { return ModelSpec{Arch: "Tran", Tran: m.cfg} }

// Predict implements Model.
func (m *DAGTransformer) Predict(ctx *ag.Context, e *stage.Encoded) *ag.Node {
	ls := ctx.StartLayer("embed")
	x := m.input.Forward(ctx, ctx.Const(e.X))
	// DAGPE: add the sinusoidal encoding of each node's depth.
	idx := make([]int, len(e.Depths))
	for i, d := range e.Depths {
		if d >= m.cfg.MaxPos {
			d = m.cfg.MaxPos - 1
		}
		idx[i] = d
	}
	x = ctx.Add(x, ctx.GatherRows(ctx.Const(m.pe), idx))
	ls.End()
	// Pre-LN layers: the residual stream stays unnormalized, so per-node
	// cost magnitudes survive to the additive pooling (Eqn 2).
	for i, l := range m.layers {
		ls = ctx.StartLayer(m.spanAttn[i])
		x = ctx.Add(x, l.attn.Forward(ctx, l.ln1.Forward(ctx, x), e.ReachMask))
		ls.End()
		ls = ctx.StartLayer(m.spanFFN[i])
		x = ctx.Add(x, l.ffn.Forward(ctx, l.ln2.Forward(ctx, x)))
		ls.End()
	}
	ls = ctx.StartLayer("head")
	pooled := ctx.Scale(ctx.SumRows(x), poolScale) // global add pool (Eqn 2)
	out := m.head.Forward(ctx, pooled)
	ls.End()
	return out
}

// Params implements nn.Module.
func (m *DAGTransformer) Params() []*ag.Param {
	ps := m.input.Params()
	for _, l := range m.layers {
		ps = append(ps, l.attn.Params()...)
		ps = append(ps, l.ln1.Params()...)
		ps = append(ps, l.ffn.Params()...)
		ps = append(ps, l.ln2.Params()...)
	}
	return append(ps, m.head.Params()...)
}

// GCNConfig configures the GCN baseline (paper: 6 layers of size 256).
type GCNConfig struct {
	Layers int
	Dim    int
}

func (c GCNConfig) withDefaults() GCNConfig {
	if c.Layers == 0 {
		c.Layers = 6
	}
	if c.Dim == 0 {
		c.Dim = 256
	}
	return c
}

// GCN is the graph-convolution baseline: X ← ReLU(Â X W + b) with
// Â = D^{-1/2}(A+I)D^{-1/2}.
type GCN struct {
	cfg       GCNConfig
	layers    []*nn.Linear
	head      *nn.MLPHead
	spanNames []string // precomputed per-layer profiling span names
}

// NewGCN builds a GCN predictor.
func NewGCN(rng *rand.Rand, cfg GCNConfig) *GCN {
	cfg = cfg.withDefaults()
	m := &GCN{cfg: cfg}
	in := stage.FeatureDim
	for i := 0; i < cfg.Layers; i++ {
		m.layers = append(m.layers, nn.NewLinear(rng, "gcn.l"+strconv.Itoa(i), in, cfg.Dim))
		m.spanNames = append(m.spanNames, "l"+strconv.Itoa(i))
		in = cfg.Dim
	}
	m.head = nn.NewMLPHead(rng, "gcn.head", cfg.Dim, cfg.Dim/2)
	return m
}

// Name implements Model.
func (m *GCN) Name() string { return "GCN" }

// Spec implements Model.
func (m *GCN) Spec() ModelSpec { return ModelSpec{Arch: "GCN", GCN: m.cfg} }

// Predict implements Model.
func (m *GCN) Predict(ctx *ag.Context, e *stage.Encoded) *ag.Node {
	x := ctx.Const(e.X)
	adj := ctx.Const(e.AdjNorm)
	for i, l := range m.layers {
		ls := ctx.StartLayer(m.spanNames[i])
		x = ctx.ReLU(l.Forward(ctx, ctx.MatMul(adj, x)))
		ls.End()
	}
	ls := ctx.StartLayer("head")
	out := m.head.Forward(ctx, ctx.Scale(ctx.SumRows(x), poolScale))
	ls.End()
	return out
}

// Params implements nn.Module.
func (m *GCN) Params() []*ag.Param {
	var ps []*ag.Param
	for _, l := range m.layers {
		ps = append(ps, l.Params()...)
	}
	return append(ps, m.head.Params()...)
}

// GATConfig configures the GAT baseline (paper: hidden dimension 32,
// 6 layers).
type GATConfig struct {
	Layers int
	Dim    int
	Heads  int
	Alpha  float64 // LeakyReLU slope
}

func (c GATConfig) withDefaults() GATConfig {
	if c.Layers == 0 {
		c.Layers = 6
	}
	if c.Dim == 0 {
		c.Dim = 32
	}
	if c.Heads == 0 {
		c.Heads = 4
	}
	if c.Alpha == 0 {
		c.Alpha = 0.2
	}
	return c
}

// gatLayer is one multi-head graph-attention layer.
type gatLayer struct {
	w        []*nn.Linear // per-head projection
	aSrc     []*ag.Param  // per-head source attention vector
	aDst     []*ag.Param  // per-head destination attention vector
	alpha    float64
	headDim  int
	numHeads int
}

// GAT is the graph-attention baseline: masked attention restricted to 1-hop
// neighbours.
type GAT struct {
	cfg       GATConfig
	layers    []*gatLayer
	head      *nn.MLPHead
	spanNames []string // precomputed per-layer profiling span names
}

// NewGAT builds a GAT predictor.
func NewGAT(rng *rand.Rand, cfg GATConfig) *GAT {
	cfg = cfg.withDefaults()
	if cfg.Dim%cfg.Heads != 0 {
		panic("graphnn: GAT dim must divide by heads")
	}
	m := &GAT{cfg: cfg}
	in := stage.FeatureDim
	hd := cfg.Dim / cfg.Heads
	for i := 0; i < cfg.Layers; i++ {
		l := &gatLayer{alpha: cfg.Alpha, headDim: hd, numHeads: cfg.Heads}
		for h := 0; h < cfg.Heads; h++ {
			name := "gat.l" + strconv.Itoa(i) + ".h" + strconv.Itoa(h)
			l.w = append(l.w, nn.NewLinear(rng, name+".w", in, hd))
			l.aSrc = append(l.aSrc, ag.NewParam(name+".as", tensor.RandUniform(rng, hd, 1, -0.3, 0.3)))
			l.aDst = append(l.aDst, ag.NewParam(name+".ad", tensor.RandUniform(rng, hd, 1, -0.3, 0.3)))
		}
		m.layers = append(m.layers, l)
		m.spanNames = append(m.spanNames, "l"+strconv.Itoa(i))
		in = cfg.Dim
	}
	m.head = nn.NewMLPHead(rng, "gat.head", cfg.Dim, cfg.Dim)
	return m
}

// Name implements Model.
func (m *GAT) Name() string { return "GAT" }

// Spec implements Model.
func (m *GAT) Spec() ModelSpec { return ModelSpec{Arch: "GAT", GAT: m.cfg} }

// Predict implements Model.
func (m *GAT) Predict(ctx *ag.Context, e *stage.Encoded) *ag.Node {
	x := ctx.Const(e.X)
	for i, l := range m.layers {
		ls := ctx.StartLayer(m.spanNames[i])
		heads := make([]*ag.Node, l.numHeads)
		for h := 0; h < l.numHeads; h++ {
			wh := l.w[h].Forward(ctx, x) // N×hd
			s1 := ctx.MatMul(wh, ctx.Param(l.aSrc[h]))
			s2 := ctx.MatMul(wh, ctx.Param(l.aDst[h]))
			logits := ctx.LeakyReLU(ctx.AddOuter(s1, s2), l.alpha)
			// In-place is safe: LeakyReLU's backward reads its input
			// (the AddOuter value), never its own output buffer.
			attn := ctx.SoftmaxRowsInPlace(logits, e.NeighborMask)
			heads[h] = ctx.MatMul(attn, wh)
		}
		x = ctx.ReLU(ctx.ConcatCols(heads...))
		ls.End()
	}
	ls := ctx.StartLayer("head")
	out := m.head.Forward(ctx, ctx.Scale(ctx.SumRows(x), poolScale))
	ls.End()
	return out
}

// Params implements nn.Module.
func (m *GAT) Params() []*ag.Param {
	var ps []*ag.Param
	for _, l := range m.layers {
		for h := 0; h < l.numHeads; h++ {
			ps = append(ps, l.w[h].Params()...)
			ps = append(ps, l.aSrc[h], l.aDst[h])
		}
	}
	return append(ps, m.head.Params()...)
}
