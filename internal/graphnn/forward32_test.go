package graphnn

import (
	"math"
	"testing"

	"predtop/internal/ag"
)

// f32RelTol is the pinned tolerance of the float32 inference path: every
// prediction must land within this relative distance of the float64
// reference. float32 carries ~7 significant digits and the deepest built-in
// model stacks ~6 matmul/softmax layers, so 1e-3 leaves two orders of margin
// over observed drift while still catching any structural divergence (a
// wrong mask, a skipped bias) outright.
const f32RelTol = 1e-3

// TestFloat32ToleranceTable is the float32 determinism table: for every
// architecture and every pool graph, the float32 forward must (a) match the
// float64 reference within the pinned relative tolerance and (b) be exactly
// reproducible run to run — reduced precision is allowed, nondeterminism is
// not.
func TestFloat32ToleranceTable(t *testing.T) {
	pool := raggedPool(t)
	for _, m := range raggedModels(23) {
		t.Run(m.Name(), func(t *testing.T) {
			f, err := NewForward32(m)
			if err != nil {
				t.Fatalf("NewForward32: %v", err)
			}
			for gi, e := range pool {
				want := m.Predict(ag.NewContext(), e).Value().At(0, 0)
				got := f.Predict(e)
				denom := math.Abs(want)
				if denom < 1e-9 {
					denom = 1e-9
				}
				if rel := math.Abs(got-want) / denom; rel > f32RelTol {
					t.Errorf("graph %d (n=%d): float32 %v vs float64 %v, rel err %.2e > %v",
						gi, e.N(), got, want, rel, f32RelTol)
				}
				if again := f.Predict(e); math.Float64bits(again) != math.Float64bits(got) {
					t.Errorf("graph %d: float32 path nondeterministic: %x != %x",
						gi, math.Float64bits(again), math.Float64bits(got))
				}
			}
		})
	}
}

// TestFloat32SnapshotsWeights: the engine is a snapshot — mutating the model
// after construction must not change its predictions.
func TestFloat32SnapshotsWeights(t *testing.T) {
	pool := raggedPool(t)
	m := raggedModels(29)[0]
	f, err := NewForward32(m)
	if err != nil {
		t.Fatal(err)
	}
	before := f.Predict(pool[0])
	for _, p := range m.Params() {
		for i := range p.V.Data {
			p.V.Data[i] += 1
		}
	}
	if after := f.Predict(pool[0]); after != before {
		t.Fatalf("snapshot leaked: %v != %v after mutating model weights", after, before)
	}
}
