package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestSinkEmitsJSONL(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	type rec struct {
		Event string  `json:"event"`
		Epoch int     `json:"epoch"`
		Loss  float64 `json:"loss"`
	}
	s.Emit(rec{"epoch", 1, 0.5})
	s.Emit(rec{"epoch", 2, 0.25})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
	for i, line := range lines {
		var got rec
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d invalid: %v", i, err)
		}
		if got.Event != "epoch" || got.Epoch != i+1 {
			t.Fatalf("line %d: %+v", i, got)
		}
	}
}

func TestSinkEmitMetrics(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	r := NewRegistry()
	r.Counter("x").Add(7)
	s.EmitMetrics(r)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Event   string   `json:"event"`
		Metrics []Metric `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	// Snapshot carries the explicit counter plus the built-in
	// obs_dropped_samples_total.
	if got.Event != "metrics" || len(got.Metrics) != 2 {
		t.Fatalf("metrics record: %+v", got)
	}
	if got.Metrics[1].Name != "x" || got.Metrics[1].Value != 7 {
		t.Fatalf("metrics record: %+v", got)
	}
}

func TestSinkTracePrefix(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	tc := NewTraceContext(42, "test")
	s.SetTraceContext(tc)
	s.Emit(struct {
		Event string `json:"event"`
	}{"x"})
	s.Emit(struct{}{}) // empty object must stay valid JSON
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
	for i, line := range lines {
		var got map[string]any
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d invalid after splice: %v (%q)", i, err, line)
		}
		if got["trace_id"] != tc.TraceID() || got["span_id"] != tc.SpanID() {
			t.Fatalf("line %d missing trace identity: %q", i, line)
		}
	}
	if !strings.HasPrefix(lines[0], `{"trace_id":"`) {
		t.Fatalf("trace_id must lead the record: %q", lines[0])
	}

	// Detaching stops the splice.
	buf.Reset()
	s2 := NewSink(&buf)
	s2.SetTraceContext(tc)
	s2.SetTraceContext(nil)
	s2.Emit(struct {
		Event string `json:"event"`
	}{"y"})
	s2.Close()
	if strings.Contains(buf.String(), "trace_id") {
		t.Fatalf("detached sink still stamps trace_id: %q", buf.String())
	}
}

func TestNilSinkAndLogger(t *testing.T) {
	var s *Sink
	s.Emit(map[string]int{"a": 1})
	s.EmitMetrics(NewRegistry())
	s.SetTraceContext(NewTraceContext(1, "x"))
	s.AttachFlight(NewFlightRecorder(8))
	if s.Err() != nil || s.Flush() != nil || s.Close() != nil {
		t.Fatal("nil sink must not error")
	}
	if NewSink(nil) != nil {
		t.Fatal("NewSink(nil) must be nil")
	}

	var l *Logger
	l.Printf("dropped %d", 1)
	if l.WithTrace(NewTraceContext(1, "x")) != nil {
		t.Fatal("nil logger WithTrace must stay nil")
	}
	if l.Writer() == nil {
		t.Fatal("nil logger Writer must be io.Discard, not nil")
	}
	if NewLogger(nil, false) != nil || NewLogger(&bytes.Buffer{}, true) != nil {
		t.Fatal("quiet/nil logger must be nil")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errors.New("disk full")
}

func TestSinkStickyError(t *testing.T) {
	fw := &failWriter{}
	s := NewSink(fw)
	s.Emit(map[string]int{"a": 1})
	// With buffering the write error surfaces at Flush, not Emit.
	if err := s.Flush(); err == nil {
		t.Fatal("expected flush error")
	}
	if s.Err() == nil {
		t.Fatal("expected sticky error")
	}
	// Later emits and flushes are dropped without touching the writer again.
	s.Emit(map[string]int{"b": 2})
	if err := s.Close(); err == nil {
		t.Fatal("Close must report the sticky error")
	}
	if fw.n != 1 {
		t.Fatalf("writes after error: %d", fw.n)
	}
}

func TestSinkConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Emit(map[string]int{"w": w, "i": i})
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("%d lines", len(lines))
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("interleaved line: %q", line)
		}
	}
}

func TestLoggerPrintf(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, false)
	l.Printf("x %d", 1)
	l.Printf("y\n")
	if got := buf.String(); got != "x 1\ny\n" {
		t.Fatalf("log output %q", got)
	}
	if l.Writer() != &buf {
		t.Fatal("Writer must expose the sink writer")
	}
}

func TestLoggerWithTrace(t *testing.T) {
	var buf bytes.Buffer
	tc := NewTraceContext(7, "test")
	l := NewLogger(&buf, false).WithTrace(tc)
	l.Printf("hello %d", 2)
	want := "[" + tc.TraceID() + "] hello 2\n"
	if got := buf.String(); got != want {
		t.Fatalf("traced log line %q, want %q", got, want)
	}
}

// The buffered/unbuffered pair quantifies the per-event overhead the
// bufio.Writer removes: the unbuffered sink pays one file write (a syscall)
// per Emit, the buffered one amortizes it over ~4KB of records.
func BenchmarkSinkEmit(b *testing.B) {
	rec := struct {
		Event string  `json:"event"`
		Epoch int     `json:"epoch"`
		Loss  float64 `json:"loss"`
	}{"epoch", 3, 0.125}
	open := func(b *testing.B) *os.File {
		f, err := os.Create(filepath.Join(b.TempDir(), "sink.jsonl"))
		if err != nil {
			b.Fatal(err)
		}
		return f
	}
	b.Run("unbuffered", func(b *testing.B) {
		f := open(b)
		defer f.Close()
		s := &Sink{w: f} // direct construction bypasses the bufio wrapper
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Emit(rec)
		}
		b.StopTimer()
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("buffered", func(b *testing.B) {
		f := open(b)
		defer f.Close()
		s := NewSink(f)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Emit(rec)
		}
		b.StopTimer()
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	})
}
