package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestSinkEmitsJSONL(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	type rec struct {
		Event string  `json:"event"`
		Epoch int     `json:"epoch"`
		Loss  float64 `json:"loss"`
	}
	s.Emit(rec{"epoch", 1, 0.5})
	s.Emit(rec{"epoch", 2, 0.25})
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
	for i, line := range lines {
		var got rec
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d invalid: %v", i, err)
		}
		if got.Event != "epoch" || got.Epoch != i+1 {
			t.Fatalf("line %d: %+v", i, got)
		}
	}
}

func TestSinkEmitMetrics(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	r := NewRegistry()
	r.Counter("x").Add(7)
	s.EmitMetrics(r)
	var got struct {
		Event   string   `json:"event"`
		Metrics []Metric `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	// Snapshot carries the explicit counter plus the built-in
	// obs_dropped_samples_total.
	if got.Event != "metrics" || len(got.Metrics) != 2 {
		t.Fatalf("metrics record: %+v", got)
	}
	if got.Metrics[1].Name != "x" || got.Metrics[1].Value != 7 {
		t.Fatalf("metrics record: %+v", got)
	}
}

func TestNilSinkAndLogger(t *testing.T) {
	var s *Sink
	s.Emit(map[string]int{"a": 1})
	s.EmitMetrics(NewRegistry())
	if s.Err() != nil {
		t.Fatal("nil sink must not error")
	}
	if NewSink(nil) != nil {
		t.Fatal("NewSink(nil) must be nil")
	}

	var l *Logger
	l.Printf("dropped %d", 1)
	if l.Writer() == nil {
		t.Fatal("nil logger Writer must be io.Discard, not nil")
	}
	if NewLogger(nil, false) != nil || NewLogger(&bytes.Buffer{}, true) != nil {
		t.Fatal("quiet/nil logger must be nil")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errors.New("disk full")
}

func TestSinkStickyError(t *testing.T) {
	fw := &failWriter{}
	s := NewSink(fw)
	s.Emit(map[string]int{"a": 1})
	s.Emit(map[string]int{"b": 2})
	if s.Err() == nil {
		t.Fatal("expected error")
	}
	if fw.n != 1 {
		t.Fatalf("writes after error: %d", fw.n)
	}
}

func TestSinkConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Emit(map[string]int{"w": w, "i": i})
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("%d lines", len(lines))
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("interleaved line: %q", line)
		}
	}
}

func TestLoggerPrintf(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, false)
	l.Printf("x %d", 1)
	l.Printf("y\n")
	if got := buf.String(); got != "x 1\ny\n" {
		t.Fatalf("log output %q", got)
	}
	if l.Writer() != &buf {
		t.Fatal("Writer must expose the sink writer")
	}
}
