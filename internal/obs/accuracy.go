package obs

import (
	"math"
	"sort"
	"sync"
)

// AccuracyMonitor streams predicted-vs-actual latency residuals so prediction
// quality is watched online, not only in offline tables: per key it keeps a
// Welford mean/variance of the absolute relative error, the max, and a fixed
// log-bucket quantile sketch for P50/P95. Groups are keyed by model family,
// mesh shape, and op/benchmark name, mirroring the paper's Table V axes.
//
// Every Observe refreshes labeled gauges (predtop_accuracy_mre{family=…} and
// friends) in the attached registry, and a configurable drift threshold
// increments predtop_accuracy_drift_total and logs a warning the moment a
// group's running MRE crosses it (edge-triggered; re-arms when it recovers).
//
// The monitor only observes — it never feeds back into training or planning,
// so determinism is untouched. A nil *AccuracyMonitor is fully inert and its
// disabled path allocation-free.
type AccuracyMonitor struct {
	cfg    AccuracyConfig
	bounds []float64 // quantile-sketch bucket upper bounds, in percent

	mu     sync.Mutex
	groups map[AccuracyKey]*accGroup
}

// AccuracyKey identifies one residual population. Empty fields are legal and
// simply render as empty labels.
type AccuracyKey struct {
	Family string // predictor family, e.g. "PredTOP-Tran"
	Mesh   string // mesh shape, e.g. "2x8"
	Op     string // op type / benchmark, e.g. "GPT3"
}

// AccuracyConfig configures a monitor (zero value is usable).
type AccuracyConfig struct {
	// DriftThresholdPct arms drift detection: when a group's running mean
	// absolute relative error (in percent) exceeds it, the monitor increments
	// predtop_accuracy_drift_total once per excursion and logs a warning.
	// <= 0 disables drift detection.
	DriftThresholdPct float64
	// MinSamples gates drift detection so a group's first noisy residuals
	// cannot trip it (default 16).
	MinSamples int
	// Metrics receives the labeled accuracy gauges and the drift counter.
	// Nil disables metric export (observations still accumulate).
	Metrics *Registry
	// Log receives drift warnings; nil silences them.
	Log *Logger
}

// Metric names exported by the accuracy monitor.
const (
	AccuracyMREMetric     = "predtop_accuracy_mre"
	AccuracyP50Metric     = "predtop_accuracy_p50"
	AccuracyP95Metric     = "predtop_accuracy_p95"
	AccuracyMaxMetric     = "predtop_accuracy_max"
	AccuracySamplesMetric = "predtop_accuracy_samples_total"
	AccuracyDriftMetric   = "predtop_accuracy_drift_total"
)

// accGroup is one key's streaming state. Gauges are resolved once at group
// creation so the per-observation path does no map lookups or allocation.
type accGroup struct {
	n       int64
	mean    float64 // Welford running mean of |rel err| in percent
	m2      float64 // Welford sum of squared deviations
	maxErr  float64
	buckets []int64 // quantile sketch counts, parallel to monitor bounds
	drifted bool

	mre, p50, p95, max *Gauge
	samples, drift     *Counter
}

// accBounds is the quantile-sketch ladder: 0.01% to ~1.3e4% relative error in
// ~21% steps, giving sub-bucket-width quantile resolution over the whole
// range a latency predictor can plausibly produce.
var accBounds = MustExpBuckets(0.01, 1.21, 74)

// NewAccuracyMonitor returns an enabled monitor.
func NewAccuracyMonitor(cfg AccuracyConfig) *AccuracyMonitor {
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 16
	}
	return &AccuracyMonitor{cfg: cfg, bounds: accBounds, groups: map[AccuracyKey]*accGroup{}}
}

// group returns key's state, creating it (and resolving its instruments) on
// first use. Caller holds m.mu.
func (m *AccuracyMonitor) group(key AccuracyKey) *accGroup {
	g, ok := m.groups[key]
	if !ok {
		labels := []Label{{"family", key.Family}, {"mesh", key.Mesh}, {"op", key.Op}}
		g = &accGroup{
			buckets: make([]int64, len(m.bounds)+1),
			mre:     m.cfg.Metrics.GaugeWith(AccuracyMREMetric, labels...),
			p50:     m.cfg.Metrics.GaugeWith(AccuracyP50Metric, labels...),
			p95:     m.cfg.Metrics.GaugeWith(AccuracyP95Metric, labels...),
			max:     m.cfg.Metrics.GaugeWith(AccuracyMaxMetric, labels...),
			samples: m.cfg.Metrics.CounterWith(AccuracySamplesMetric, labels...),
			drift:   m.cfg.Metrics.CounterWith(AccuracyDriftMetric, labels...),
		}
		m.groups[key] = g
	}
	return g
}

// Observe records one predicted-vs-actual pair. Non-finite inputs and
// non-positive actuals are dropped (a relative error against them is
// meaningless). No-op on a nil monitor.
func (m *AccuracyMonitor) Observe(key AccuracyKey, predicted, actual float64) {
	if m == nil {
		return
	}
	if !(actual > 0) || math.IsInf(actual, 0) || math.IsNaN(predicted) || math.IsInf(predicted, 0) {
		return
	}
	errPct := math.Abs(predicted-actual) / actual * 100

	m.mu.Lock()
	g := m.group(key)
	g.n++
	delta := errPct - g.mean
	g.mean += delta / float64(g.n)
	g.m2 += delta * (errPct - g.mean)
	if errPct > g.maxErr {
		g.maxErr = errPct
	}
	g.buckets[sort.SearchFloat64s(m.bounds, errPct)]++
	p50 := m.quantileLocked(g, 0.50)
	p95 := m.quantileLocked(g, 0.95)
	mean, maxErr, n := g.mean, g.maxErr, g.n

	driftCrossed := false
	if m.cfg.DriftThresholdPct > 0 && n >= int64(m.cfg.MinSamples) {
		if mean > m.cfg.DriftThresholdPct && !g.drifted {
			g.drifted = true
			driftCrossed = true
		} else if mean <= m.cfg.DriftThresholdPct {
			g.drifted = false // re-arm after recovery
		}
	}
	mreG, p50G, p95G, maxG, samplesC, driftC := g.mre, g.p50, g.p95, g.max, g.samples, g.drift
	m.mu.Unlock()

	mreG.Set(mean)
	p50G.Set(p50)
	p95G.Set(p95)
	maxG.Set(maxErr)
	samplesC.Inc()
	if driftCrossed {
		driftC.Inc()
		m.cfg.Log.Printf("obs: accuracy drift: family=%q mesh=%q op=%q MRE %.2f%% > threshold %.2f%% after %d samples",
			key.Family, key.Mesh, key.Op, mean, m.cfg.DriftThresholdPct, n)
	}
}

// quantileLocked reads quantile q from g's sketch: the upper bound of the
// bucket where the cumulative count crosses q·n (the exact max for the
// overflow bucket). Caller holds m.mu.
func (m *AccuracyMonitor) quantileLocked(g *accGroup, q float64) float64 {
	if g.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(g.n)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, c := range g.buckets {
		cum += c
		if cum >= rank {
			// The observed max is always a valid (and sometimes tighter) upper
			// bound than the bucket boundary, and it bounds the overflow bucket.
			if i < len(m.bounds) && m.bounds[i] < g.maxErr {
				return m.bounds[i]
			}
			return g.maxErr
		}
	}
	return g.maxErr
}

// AccuracyStats is a point-in-time read of one group. All error figures are
// absolute relative errors in percent; P50/P95 carry quantile-sketch
// granularity (the bucket upper bound, ~21% relative spacing).
type AccuracyStats struct {
	N       int64   `json:"n"`
	MeanPct float64 `json:"mre_pct"`
	StdPct  float64 `json:"std_pct"`
	P50Pct  float64 `json:"p50_pct"`
	P95Pct  float64 `json:"p95_pct"`
	MaxPct  float64 `json:"max_pct"`
	Drifted bool    `json:"drifted,omitempty"`
}

// Stats returns key's current statistics (ok=false when the key has no
// observations or the monitor is nil).
func (m *AccuracyMonitor) Stats(key AccuracyKey) (AccuracyStats, bool) {
	if m == nil {
		return AccuracyStats{}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[key]
	if !ok || g.n == 0 {
		return AccuracyStats{}, false
	}
	return m.statsLocked(g), true
}

func (m *AccuracyMonitor) statsLocked(g *accGroup) AccuracyStats {
	std := 0.0
	if g.n > 1 {
		std = math.Sqrt(g.m2 / float64(g.n-1))
	}
	return AccuracyStats{
		N: g.n, MeanPct: g.mean, StdPct: std,
		P50Pct: m.quantileLocked(g, 0.50), P95Pct: m.quantileLocked(g, 0.95),
		MaxPct: g.maxErr, Drifted: g.drifted,
	}
}

// Keys returns every observed key, sorted (nil monitor → nil).
func (m *AccuracyMonitor) Keys() []AccuracyKey {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]AccuracyKey, 0, len(m.groups))
	for k := range m.groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Family != b.Family {
			return a.Family < b.Family
		}
		if a.Mesh != b.Mesh {
			return a.Mesh < b.Mesh
		}
		return a.Op < b.Op
	})
	return keys
}

// accuracyRecord is the JSONL shape EmitTo writes per group.
type accuracyRecord struct {
	Event  string `json:"event"`
	Family string `json:"family,omitempty"`
	Mesh   string `json:"mesh,omitempty"`
	Op     string `json:"op,omitempty"`
	AccuracyStats
}

// EmitTo writes one {"event":"accuracy"} JSONL record per observed key to
// the sink, in sorted key order. No-op when either side is nil.
func (m *AccuracyMonitor) EmitTo(s *Sink) {
	if m == nil || s == nil {
		return
	}
	for _, key := range m.Keys() {
		m.mu.Lock()
		g := m.groups[key]
		var stats AccuracyStats
		if g != nil {
			stats = m.statsLocked(g)
		}
		m.mu.Unlock()
		if stats.N == 0 {
			continue
		}
		s.Emit(accuracyRecord{
			Event: "accuracy", Family: key.Family, Mesh: key.Mesh, Op: key.Op,
			AccuracyStats: stats,
		})
	}
}
