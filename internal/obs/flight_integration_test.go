package obs

import (
	"bytes"
	"strings"
	"testing"

	"predtop/internal/parallel"
)

// TestWorkerPanicDumpsFlightRecorder is the end-to-end post-mortem path the
// cmd tools wire up: a panic inside a parallel worker triggers the installed
// PanicHook, which dumps the flight recorder's correlated event window plus
// goroutine stacks as JSONL before the panic surfaces on the caller. Runs in
// -short mode so `make ci`'s race pass always covers it.
func TestWorkerPanicDumpsFlightRecorder(t *testing.T) {
	fr := NewFlightRecorder(128)
	tc := NewTraceContext(3, "panic-test")
	fr.SetTraceContext(tc)
	var dump bytes.Buffer
	parallel.SetPanicHook(fr.PanicHook(&dump))
	defer parallel.SetPanicHook(nil)

	// Seed the ring with a realistic pre-crash history.
	for i := 0; i < 80; i++ {
		fr.Note("train", "batch")
	}

	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("injected panic did not surface")
			}
			wp, ok := r.(*parallel.WorkerPanic)
			if !ok {
				t.Fatalf("panic value %T, want *parallel.WorkerPanic", r)
			}
			if wp.Value != "injected worker crash" {
				t.Fatalf("original panic value lost: %v", wp.Value)
			}
		}()
		parallel.ForLimit(32, 4, func(i int) {
			if i == 5 {
				panic("injected worker crash")
			}
		})
	}()

	header, events, stacks := decodeFlightDump(t, dump.Bytes())
	if header["trace_id"] != tc.TraceID() {
		t.Fatalf("dump not correlated to the run: %v", header["trace_id"])
	}
	if len(events) < 64 {
		t.Fatalf("post-mortem window %d events, want >= 64", len(events))
	}
	// The panic itself is the newest breadcrumb in the ring.
	last := events[len(events)-1]
	if last["kind"] != "panic" || !strings.Contains(last["msg"].(string), "injected worker crash") {
		t.Fatalf("panic breadcrumb missing: %v", last)
	}
	if !strings.Contains(stacks["stacks"].(string), "goroutine") {
		t.Fatal("dump missing goroutine stacks")
	}
}
