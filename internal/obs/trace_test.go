package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

type testEvent struct {
	Name  string  `json:"name"`
	Phase string  `json:"ph"`
	TS    float64 `json:"ts"`
	Dur   float64 `json:"dur"`
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
	Args  struct {
		Name string `json:"name"`
	} `json:"args"`
}

func decodeTrace(t *testing.T, b []byte) []testEvent {
	t.Helper()
	var evs []testEvent
	if err := json.Unmarshal(b, &evs); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	return evs
}

func TestTraceNamedTracks(t *testing.T) {
	tb := NewTrace()
	tb.Slice("epochs", "epoch 1", 0, 1.5)
	tb.Slice("stage 1", "mb0", 0, 1)
	tb.Slice("epochs", "epoch 2", 1.5, 1.25)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, buf.Bytes())
	// process_name + 2 thread_name + 3 slices.
	if len(evs) != 6 {
		t.Fatalf("%d events", len(evs))
	}
	if evs[0].Phase != "M" || evs[0].Name != "process_name" || evs[0].Args.Name != "predtop" {
		t.Fatalf("missing process metadata: %+v", evs[0])
	}
	tracks := map[string]int{}
	for _, ev := range evs[1:3] {
		if ev.Phase != "M" || ev.Name != "thread_name" {
			t.Fatalf("expected thread_name metadata: %+v", ev)
		}
		tracks[ev.Args.Name] = ev.TID
	}
	if tracks["epochs"] != 1 || tracks["stage 1"] != 2 {
		t.Fatalf("track tids: %v", tracks)
	}
	for _, ev := range evs[3:] {
		if ev.Phase != "X" {
			t.Fatalf("expected complete event: %+v", ev)
		}
	}
	// Same track name → same tid; timestamps in microseconds.
	if evs[3].TID != evs[5].TID || evs[5].TS != 1.5e6 || evs[5].Dur != 1.25e6 {
		t.Fatalf("slice events: %+v %+v", evs[3], evs[5])
	}
}

func TestTraceSpanAndInstant(t *testing.T) {
	tb := NewTrace()
	sp := tb.Begin("phases", "train")
	tb.Instant("phases", "early-stop")
	sp.End()
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, buf.Bytes())
	var phases []string
	for _, ev := range evs {
		phases = append(phases, ev.Phase)
	}
	if strings.Join(phases, "") != "MMiX" {
		t.Fatalf("phases %v", phases)
	}
	if tb.Since() < 0 {
		t.Fatal("Since must be non-negative")
	}
}

func TestNilTraceBuilderInert(t *testing.T) {
	var tb *TraceBuilder
	tb.Slice("a", "b", 0, 1)
	tb.Instant("a", "b")
	sp := tb.Begin("a", "b")
	sp.End()
	if tb.Since() != 0 {
		t.Fatal("nil Since must be 0")
	}
	if err := tb.Render(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := tb.WriteFile("/nonexistent/should-not-be-created"); err != nil {
		t.Fatal("nil WriteFile must be a no-op")
	}
}

func TestNilObserverAccessors(t *testing.T) {
	var o *Observer
	if o.Registry() != nil || o.Sink() != nil || o.Tracer() != nil {
		t.Fatal("nil observer must return nil components")
	}
	o2 := &Observer{Metrics: NewRegistry()}
	if o2.Registry() == nil || o2.Sink() != nil || o2.Tracer() != nil {
		t.Fatal("partial observer accessors wrong")
	}
}

// TestTraceOneEventPerLine pins the diffable rendering golden tests rely on.
func TestTraceOneEventPerLine(t *testing.T) {
	tb := NewTrace()
	tb.Slice("a", "x", 0, 1)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// "[", process_name, thread_name, slice, "]".
	if len(lines) != 5 || lines[0] != "[" || lines[len(lines)-1] != "]" {
		t.Fatalf("layout:\n%s", buf.String())
	}
}
