package obs

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("train_batches_total").Add(3)
	r.Histogram("batch_seconds", []float64{1}).Observe(0.5)
	s, err := StartServer(context.Background(), ServerConfig{Addr: "127.0.0.1:0", Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	code, body := get(t, s.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"train_batches_total 3",
		`batch_seconds_bucket{le="+Inf"} 1`,
		"batch_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, s.URL()+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	code, body = get(t, s.URL()+"/debug/pprof/cmdline")
	if code != http.StatusOK || len(body) == 0 {
		t.Fatalf("/debug/pprof/cmdline: %d (%d bytes)", code, len(body))
	}
}

// TestServerFlightRecorderEndpoint: GET /debug/flightrecorder returns the
// correlated post-mortem window as JSONL; without a recorder the route 404s.
func TestServerFlightRecorderEndpoint(t *testing.T) {
	f := NewFlightRecorder(32)
	tc := NewTraceContext(5, "srv")
	f.SetTraceContext(tc)
	for i := 0; i < 10; i++ {
		f.Note("step", "work")
	}
	s, err := StartServer(context.Background(), ServerConfig{
		Addr: "127.0.0.1:0", Registry: NewRegistry(), Flight: f,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	code, body := get(t, s.URL()+"/debug/flightrecorder")
	if code != http.StatusOK {
		t.Fatalf("/debug/flightrecorder status %d", code)
	}
	for _, want := range []string{
		`"event":"flight_dump"`,
		`"trace_id":"` + tc.TraceID() + `"`,
		`"event":"flight_event"`,
		`"event":"flight_stacks"`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/debug/flightrecorder missing %s:\n%s", want, body)
		}
	}

	noFlight, err := StartServer(context.Background(), ServerConfig{Addr: "127.0.0.1:0", Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer noFlight.Close()
	if code, _ := get(t, noFlight.URL()+"/debug/flightrecorder"); code != http.StatusNotFound {
		t.Fatalf("recorder-less /debug/flightrecorder status %d, want 404", code)
	}
}

// TestServerScrapeDuringUpdates: /metrics must serve consistently while the
// registry is being hammered (run under -race).
func TestServerScrapeDuringUpdates(t *testing.T) {
	r := NewRegistry()
	s, err := StartServer(context.Background(), ServerConfig{Addr: "127.0.0.1:0", Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				r.Counter("c").Inc()
				r.Histogram("h", nil).Observe(0.01)
				SampleRuntime(r)
			}
		}
	}()
	for i := 0; i < 5; i++ {
		if code, body := get(t, s.URL()+"/metrics"); code != http.StatusOK || !strings.Contains(body, "# TYPE c counter") {
			t.Fatalf("scrape %d failed: %d", i, code)
		}
	}
	close(stop)
}

// TestServerContextCancelStops: cancelling the start context must shut the
// server down without an explicit Close.
func TestServerContextCancelStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s, err := StartServer(ctx, ServerConfig{Addr: "127.0.0.1:0", Registry: NewRegistry(), ShutdownTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, s.URL()+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz before cancel: %d", code)
	}
	cancel()
	if err := s.Wait(); err != nil {
		t.Fatalf("server exited with error: %v", err)
	}
	if _, err := http.Get(s.URL() + "/healthz"); err == nil {
		t.Fatal("server still serving after context cancellation")
	}
}

func TestServerDoubleCloseAndNil(t *testing.T) {
	s, err := StartServer(context.Background(), ServerConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	// nil registry still serves a valid (empty) exposition.
	if code, body := get(t, s.URL()+"/metrics"); code != http.StatusOK || body != "" {
		t.Fatalf("nil-registry /metrics: %d %q", code, body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}
	var nilServer *Server
	if nilServer.Addr() != "" || nilServer.URL() != "" || nilServer.Close() != nil || nilServer.Wait() != nil {
		t.Fatal("nil server methods must be inert")
	}
}

func TestServerBadAddr(t *testing.T) {
	if _, err := StartServer(context.Background(), ServerConfig{Addr: "definitely:not:an:addr"}); err == nil {
		t.Fatal("expected listen error")
	}
	if _, err := StartServer(context.Background(), ServerConfig{}); err == nil {
		t.Fatal("expected empty-addr error")
	}
}

// TestServerExtraHandlers: ServerConfig.Handlers mounts service endpoints on
// the telemetry listener, and reserved telemetry patterns cannot be shadowed.
func TestServerExtraHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	s, err := StartServer(context.Background(), ServerConfig{
		Addr:     "127.0.0.1:0",
		Registry: r,
		Handlers: map[string]http.Handler{
			"/predict": http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
				io.WriteString(w, "predicted")
			}),
			"/healthz": http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
				io.WriteString(w, "shadowed") // must be ignored: reserved
			}),
			"": http.NotFoundHandler(), // empty pattern must be skipped, not panic
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if code, body := get(t, s.URL()+"/predict"); code != http.StatusOK || body != "predicted" {
		t.Fatalf("/predict: %d %q", code, body)
	}
	if _, body := get(t, s.URL()+"/healthz"); strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz was shadowed by an extra handler: %q", body)
	}
	if _, body := get(t, s.URL()+"/metrics"); !strings.Contains(body, "c 1") {
		t.Fatalf("/metrics lost its registry:\n%s", body)
	}
}
