// Package obs is the repository's observability layer: a metrics registry
// (counters, gauges, fixed-bucket histograms), a structured JSONL event sink,
// and a Chrome-tracing (Perfetto) trace builder. Every long-running path —
// predictor training, planner search, experiment grids, pipeline simulation —
// reports through this package instead of ad-hoc prints.
//
// The central contract is that observation is free when disabled and passive
// when enabled:
//
//   - Every method is nil-safe. A nil *Registry hands out nil instruments,
//     and a nil *Counter/*Gauge/*Histogram/*Sink/*TraceBuilder/*Logger is a
//     no-op — zero allocations, zero time.Now calls — so hot loops are
//     instrumented unconditionally and pay nothing unless a caller opted in.
//   - Instruments only observe. They never feed back into computation, so
//     the bitwise-determinism guarantee of the training engine (DESIGN.md §6)
//     is preserved with observability on or off.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a process-local metrics namespace. Instruments are created on
// first use and shared by name afterwards; all instruments are safe for
// concurrent use. The zero *Registry (nil) disables everything.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	// dropped counts non-finite samples rejected by Gauge.Set and
	// Histogram.Observe (exported as obs_dropped_samples_total), so a run
	// that computed a NaN is visible instead of corrupting the exposition.
	dropped *Counter
}

// DroppedSamplesMetric is the counter every registry carries from birth: the
// number of NaN/±Inf samples rejected by Gauge.Set and Histogram.Observe.
const DroppedSamplesMetric = "obs_dropped_samples_total"

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		dropped:    &Counter{},
	}
	r.counters[DroppedSamplesMetric] = r.dropped
	return r
}

// Counter returns the named counter, creating it if needed. A nil registry
// returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Label is one metric dimension (e.g. {family="PredTOP-Tran"}). Labeled
// instruments share the base name in the Prometheus exposition; the label
// block distinguishes the series.
type Label struct {
	Key   string
	Value string
}

// labelSep joins a base name and its rendered label block in the internal
// instrument key; '\x00' cannot appear in either half.
const labelSep = "\x00"

// renderLabels produces the canonical inner label block `k="v",k2="v2"`:
// labels sorted by key, keys sanitized to the Prometheus charset, values
// escaped per the text exposition format. Empty input renders "".
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(SanitizeMetricName(l.Key))
		b.WriteString(`="`)
		for j := 0; j < len(l.Value); j++ {
			switch c := l.Value[j]; c {
			case '\\':
				b.WriteString(`\\`)
			case '"':
				b.WriteString(`\"`)
			case '\n':
				b.WriteString(`\n`)
			default:
				b.WriteByte(c)
			}
		}
		b.WriteByte('"')
	}
	return b.String()
}

// instrKey builds the internal map key for a (name, labels) pair.
func instrKey(name string, labels []Label) string {
	inner := renderLabels(labels)
	if inner == "" {
		return name
	}
	return name + labelSep + inner
}

// splitInstrKey recovers (name, labels) from an internal key.
func splitInstrKey(key string) (name, labels string) {
	if i := strings.IndexByte(key, labelSep[0]); i >= 0 {
		return key[:i], key[i+1:]
	}
	return key, ""
}

// CounterWith returns the counter for (name, labels), creating it if needed.
// Labels are canonicalized (sorted by key, values escaped), so call order
// does not create duplicate series. A nil registry returns a nil counter.
func (r *Registry) CounterWith(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.Counter(instrKey(name, labels))
}

// GaugeWith returns the gauge for (name, labels), creating it if needed (see
// CounterWith for label canonicalization). A nil registry returns nil.
func (r *Registry) GaugeWith(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.Gauge(instrKey(name, labels))
}

// HistogramWith returns the histogram for (name, labels), creating it with
// the given bucket bounds if needed (see CounterWith for label
// canonicalization and Histogram for bound semantics). Labeled series of one
// name share a TYPE header in the Prometheus exposition, with the label block
// merged into each _bucket/_sum/_count line. A nil registry returns nil.
func (r *Registry) HistogramWith(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.Histogram(instrKey(name, labels), bounds)
}

// RunInfoMetric is the info-style gauge carrying a run's trace id as a label
// (value constant 1), the hook that makes a trace id greppable in the
// Prometheus exposition.
const RunInfoMetric = "predtop_run_info"

// SetRunInfo publishes the run's trace identity as predtop_run_info
// {trace_id="…",name="…"} = 1. No-op when the registry or tc is nil.
func (r *Registry) SetRunInfo(tc *TraceContext) {
	if r == nil || tc == nil {
		return
	}
	r.GaugeWith(RunInfoMetric, Label{"trace_id", tc.TraceID()}, Label{"name", tc.Name()}).Set(1)
}

// Gauge returns the named gauge, creating it if needed. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{dropped: r.dropped}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (ascending; nil or empty selects DefBuckets). Bounds are fixed
// at creation — later calls with different bounds return the existing
// instrument. A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DefBuckets
		}
		h = &Histogram{bounds: append([]float64(nil), bounds...), dropped: r.dropped}
		h.counts = make([]atomic.Int64, len(h.bounds)+1)
		h.ex = make([]atomic.Pointer[Exemplar], len(h.bounds)+1)
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one. No-op on nil.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float metric.
type Gauge struct {
	bits    atomic.Uint64
	dropped *Counter
}

// Set records v. No-op on nil. A NaN or ±Inf value is dropped (and counted
// in obs_dropped_samples_total) so exposition output stays finite.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		g.dropped.Inc()
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (useful for level gauges like queue depth
// that are maintained by paired increments and decrements from concurrent
// goroutines). No-op on nil; a non-finite delta is dropped and counted like a
// non-finite Set.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	if math.IsNaN(delta) || math.IsInf(delta, 0) {
		g.dropped.Inc()
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the last set value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets: counts[i] holds
// observations v ≤ bounds[i] (first matching bucket), and the final slot
// holds the overflow beyond the last bound.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64
	count   atomic.Int64
	sum     atomicFloat
	dropped *Counter
	// ex holds the last exemplar per bucket (parallel to counts), recorded by
	// ObserveEx and rendered as OpenMetrics-style exemplar suffixes — the hook
	// that lets a dashboard jump from a latency bucket to the exact trace id
	// of a request that landed in it.
	ex []atomic.Pointer[Exemplar]
}

// Exemplar joins one histogram bucket to a concrete observation: the trace
// and span ids of a request whose value landed in the bucket.
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	SpanID  string  `json:"span_id"`
	Value   float64 `json:"value"`
}

// Observe records v. No-op on nil; allocation-free otherwise. A NaN or ±Inf
// observation is dropped (and counted in obs_dropped_samples_total) so the
// histogram sum stays finite.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.dropped.Inc()
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveEx is Observe plus an exemplar: the observation's trace/span ids are
// remembered (last-writer-wins) for the bucket v lands in and surface in the
// Prometheus exposition as an OpenMetrics exemplar suffix. Zero ids record no
// exemplar, so untraced call sites degrade to plain Observe. No-op on nil.
func (h *Histogram) ObserveEx(v float64, trace, span uint64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.dropped.Inc()
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if trace != 0 && h.ex != nil {
		h.ex[i].Store(&Exemplar{TraceID: hex16(trace), SpanID: hex16(span), Value: v})
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Start begins a wall-clock timer whose Stop observes elapsed seconds into
// the histogram. On a nil histogram the timer is inert and Start/Stop cost
// nothing (not even a time.Now call).
func (h *Histogram) Start() Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// Timer is an in-flight histogram timing (see Histogram.Start).
type Timer struct {
	h     *Histogram
	start time.Time
}

// Stop observes the elapsed seconds and returns them (0 on an inert timer).
func (t Timer) Stop() float64 {
	if t.h == nil {
		return 0
	}
	s := time.Since(t.start).Seconds()
	t.h.Observe(s)
	return s
}

// StopEx is Stop plus an exemplar: the elapsed-seconds observation carries
// the given trace/span ids (see Histogram.ObserveEx). Zero ids degrade to
// plain Stop; an inert timer returns 0.
func (t Timer) StopEx(trace, span uint64) float64 {
	if t.h == nil {
		return 0
	}
	s := time.Since(t.start).Seconds()
	t.h.ObserveEx(s, trace, span)
	return s
}

// atomicFloat is a lock-free accumulating float64.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// DefBuckets is the default latency bucket ladder: 1 µs to ~67 s in powers
// of four, wide enough for both per-batch timings and whole-grid runs.
var DefBuckets = MustExpBuckets(1e-6, 4, 14)

// ExpBuckets returns n exponential bucket bounds lo, lo·factor, lo·factor², …
// It rejects degenerate layouts: lo must be positive and finite, factor > 1,
// and n >= 1 (anything else would produce non-ascending or non-finite
// bounds, which Histogram's binary search silently misclassifies).
func ExpBuckets(lo, factor float64, n int) ([]float64, error) {
	if !(lo > 0) || math.IsInf(lo, 1) {
		return nil, fmt.Errorf("obs: ExpBuckets lo must be a positive finite number, got %v", lo)
	}
	if !(factor > 1) || math.IsInf(factor, 1) {
		return nil, fmt.Errorf("obs: ExpBuckets factor must be a finite number > 1, got %v", factor)
	}
	if n < 1 {
		return nil, fmt.Errorf("obs: ExpBuckets needs n >= 1 buckets, got %d", n)
	}
	out := make([]float64, n)
	v := lo
	for i := range out {
		if math.IsInf(v, 1) {
			return nil, fmt.Errorf("obs: ExpBuckets overflows to +Inf at bucket %d (lo=%v factor=%v)", i, lo, factor)
		}
		out[i] = v
		v *= factor
	}
	return out, nil
}

// MustExpBuckets is ExpBuckets for static layouts; it panics on invalid
// arguments.
func MustExpBuckets(lo, factor float64, n int) []float64 {
	b, err := ExpBuckets(lo, factor, n)
	if err != nil {
		panic(err)
	}
	return b
}

// BucketCount is one histogram bucket in a snapshot: the count of
// observations at or below the upper bound LE (cumulative counts are left to
// consumers).
type BucketCount struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
	// Exemplar is the bucket's last recorded exemplar, when any observation
	// carried trace ids (see Histogram.ObserveEx).
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// Metric is a point-in-time export of one instrument, JSONL-friendly (no
// ±Inf anywhere: overflow beyond the last histogram bound is a separate
// field).
type Metric struct {
	Name string `json:"name"`
	// Labels is the canonical rendered label block (`k="v",k2="v2"`), empty
	// for unlabeled instruments.
	Labels   string        `json:"labels,omitempty"`
	Kind     string        `json:"kind"` // "counter", "gauge", or "histogram"
	Value    float64       `json:"value,omitempty"`
	Count    int64         `json:"count,omitempty"`
	Sum      float64       `json:"sum,omitempty"`
	Buckets  []BucketCount `json:"buckets,omitempty"`
	Overflow int64         `json:"overflow,omitempty"`
	// OverflowEx is the overflow slot's exemplar — often the most interesting
	// one, since it names a trace slower than every configured bucket.
	OverflowEx *Exemplar `json:"overflow_exemplar,omitempty"`
}

// Snapshot exports every instrument, sorted by name (nil registry → nil).
// Concurrent observations during a snapshot may land in either side; each
// individual instrument read is atomic.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for key, c := range r.counters {
		name, labels := splitInstrKey(key)
		out = append(out, Metric{Name: name, Labels: labels, Kind: "counter", Value: float64(c.Value())})
	}
	for key, g := range r.gauges {
		name, labels := splitInstrKey(key)
		out = append(out, Metric{Name: name, Labels: labels, Kind: "gauge", Value: g.Value()})
	}
	for key, h := range r.histograms {
		name, labels := splitInstrKey(key)
		m := Metric{Name: name, Labels: labels, Kind: "histogram", Count: h.Count(), Sum: h.Sum()}
		for i, b := range h.bounds {
			if n := h.counts[i].Load(); n > 0 {
				bc := BucketCount{LE: b, Count: n}
				if h.ex != nil {
					bc.Exemplar = h.ex[i].Load()
				}
				m.Buckets = append(m.Buckets, bc)
			}
		}
		m.Overflow = h.counts[len(h.bounds)].Load()
		if h.ex != nil {
			m.OverflowEx = h.ex[len(h.bounds)].Load()
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}
