package obs

import (
	"strings"
	"testing"
	"time"
)

// sloClock is a manually-advanced clock for deterministic window rotation.
type sloClock struct{ t time.Time }

func newSLOClock() *sloClock { return &sloClock{t: time.Unix(1000, 0)} }

func (c *sloClock) now() time.Time          { return c.t }
func (c *sloClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func (c *sloClock) tracker(cfg SLOConfig) *SLOTracker {
	cfg.Now = c.now
	return NewSLOTracker(cfg)
}

// TestSLOTrackerQuantiles: the bucket sketch reports upper-bound quantiles
// and the window max for overflow ranks.
func TestSLOTrackerQuantiles(t *testing.T) {
	c := newSLOClock()
	tr := c.tracker(SLOConfig{Windows: []time.Duration{time.Minute}})
	// 90 fast (1ms) + 10 slow (10ms) observations → p50 ≈ 1ms bucket,
	// p95/p99 in the 10ms bucket. Bucket bounds are powers of two from 100µs,
	// so 1ms lands under le=0.0016 and 10ms under le=0.0128.
	for i := 0; i < 90; i++ {
		tr.Observe(0.001, false, 1, 2)
	}
	for i := 0; i < 10; i++ {
		tr.Observe(0.010, false, 3, 4)
	}
	snap := tr.Snapshot()
	w := snap.Windows[0]
	if w.Total != 100 {
		t.Fatalf("total = %d, want 100", w.Total)
	}
	if w.P50 != 0.0016 {
		t.Errorf("p50 = %v, want 0.0016", w.P50)
	}
	if w.P95 != 0.0128 || w.P99 != 0.0128 {
		t.Errorf("p95/p99 = %v/%v, want 0.0128", w.P95, w.P99)
	}
	// Overflow rank: one observation far beyond the last bound reports the
	// window max, not a bucket bound.
	tr2 := c.tracker(SLOConfig{Windows: []time.Duration{time.Minute}})
	tr2.Observe(7.5, false, 1, 2)
	if got := tr2.Snapshot().Windows[0].P99; got != 7.5 {
		t.Errorf("overflow p99 = %v, want the window max 7.5", got)
	}
}

// TestSLOTrackerWindowRotation: observations expire once the clock moves a
// full window past them, slot by slot, and a fully idle window reads zero.
func TestSLOTrackerWindowRotation(t *testing.T) {
	c := newSLOClock()
	tr := c.tracker(SLOConfig{Windows: []time.Duration{time.Minute}})
	for i := 0; i < 30; i++ {
		tr.Observe(0.002, true, 1, 2)
	}
	if got := tr.Snapshot().Windows[0].Total; got != 30 {
		t.Fatalf("total = %d, want 30", got)
	}
	// Half a window later the traffic is still visible…
	c.advance(30 * time.Second)
	tr.Observe(0.002, false, 1, 2)
	if got := tr.Snapshot().Windows[0].Total; got != 31 {
		t.Fatalf("total after 30s = %d, want 31", got)
	}
	// …one slot past the full window, the original burst is gone.
	c.advance(31 * time.Second)
	snap := tr.Snapshot()
	w := snap.Windows[0]
	if w.Total != 1 || w.Errors != 0 {
		t.Fatalf("after expiry: total=%d errors=%d, want 1/0", w.Total, w.Errors)
	}
	// Far beyond the window: everything expires, zero-traffic semantics.
	c.advance(time.Hour)
	w = tr.Snapshot().Windows[0]
	if w.Total != 0 || w.P99 != 0 || w.ErrRate != 0 || w.BurnRate != 0 {
		t.Fatalf("idle window not zeroed: %+v", w)
	}
}

// TestSLOTrackerBurnRate: burn = (errors + slow) / total / budget; a
// zero-traffic window burns nothing, and a disabled budget reads 0.
func TestSLOTrackerBurnRate(t *testing.T) {
	c := newSLOClock()
	tr := c.tracker(SLOConfig{
		Windows: []time.Duration{time.Minute}, P99Objective: 0.005, ErrObjective: 0.10,
		MinSamples: 1000, // keep breach out of this test's way
	})
	for i := 0; i < 8; i++ {
		tr.Observe(0.001, false, 1, 2) // fast, ok
	}
	tr.Observe(0.050, false, 1, 2) // slow
	tr.Observe(0.001, true, 1, 2)  // error
	w := tr.Snapshot().Windows[0]
	if w.ErrRate != 0.1 {
		t.Errorf("err rate = %v, want 0.1", w.ErrRate)
	}
	// bad = 1 slow + 1 err of 10 → 0.2; budget 0.10 → burn 2.
	if w.BurnRate != 2 {
		t.Errorf("burn rate = %v, want 2", w.BurnRate)
	}

	noBudget := c.tracker(SLOConfig{Windows: []time.Duration{time.Minute}})
	noBudget.Observe(1, true, 1, 2)
	if got := noBudget.Snapshot().Windows[0].BurnRate; got != 0 {
		t.Errorf("burn with no budget = %v, want 0", got)
	}
}

// TestSLOTrackerEdgeTriggeredBreach: the breach counter counts ok→breach
// transitions, not breached requests, and re-arms only after recovery.
func TestSLOTrackerEdgeTriggeredBreach(t *testing.T) {
	c := newSLOClock()
	var fired int
	reg := NewRegistry()
	tr := c.tracker(SLOConfig{
		Windows: []time.Duration{time.Minute}, P99Objective: 0.001, MinSamples: 5,
		Metrics: reg, OnBreach: func(s SLOSnapshot) {
			fired++
			if !s.Breached || len(s.Worst) == 0 {
				t.Errorf("breach snapshot not breached or missing worst list: %+v", s)
			}
		},
	})
	// Below MinSamples nothing can breach, however slow.
	for i := 0; i < 4; i++ {
		tr.Observe(0.5, false, 1, 2)
	}
	if tr.Breached() || tr.Breaches() != 0 {
		t.Fatalf("breached below MinSamples (breaches=%d)", tr.Breaches())
	}
	// The 5th slow request arms and trips the breach — exactly once, no
	// matter how much more bad traffic follows.
	for i := 0; i < 20; i++ {
		tr.Observe(0.5, false, 1, 2)
	}
	if !tr.Breached() || tr.Breaches() != 1 || fired != 1 {
		t.Fatalf("breaches=%d fired=%d, want 1/1", tr.Breaches(), fired)
	}
	if got := reg.Counter(SLOBreachesMetric).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", SLOBreachesMetric, got)
	}
	if got := reg.Gauge(SLOBreachGauge).Value(); got != 1 {
		t.Errorf("%s = %v, want 1", SLOBreachGauge, got)
	}
	// Recovery: the window rotates the bad traffic out, state returns to ok…
	c.advance(2 * time.Minute)
	if tr.Snapshot().Breached {
		t.Fatal("still breached after the window rotated clean")
	}
	if got := reg.Gauge(SLOBreachGauge).Value(); got != 0 {
		t.Errorf("%s after recovery = %v, want 0", SLOBreachGauge, got)
	}
	// …and a fresh excursion fires a second edge.
	for i := 0; i < 5; i++ {
		tr.Observe(0.5, false, 1, 2)
	}
	if tr.Breaches() != 2 || fired != 2 {
		t.Fatalf("breaches=%d fired=%d after second excursion, want 2/2", tr.Breaches(), fired)
	}
}

// TestSLOTrackerWorst: the worst list is bounded, sorted slowest-first, and
// ages out entries older than the longest window.
func TestSLOTrackerWorst(t *testing.T) {
	c := newSLOClock()
	tr := c.tracker(SLOConfig{Windows: []time.Duration{time.Minute}, WorstK: 3})
	for i, lat := range []float64{0.001, 0.009, 0.003, 0.007, 0.005} {
		tr.Observe(lat, false, uint64(100+i), uint64(200+i))
	}
	snap := tr.Snapshot()
	if len(snap.Worst) != 3 {
		t.Fatalf("worst len = %d, want 3", len(snap.Worst))
	}
	want := []float64{0.009, 0.007, 0.005}
	for i, w := range snap.Worst {
		if w.LatencySeconds != want[i] {
			t.Errorf("worst[%d] = %v, want %v", i, w.LatencySeconds, want[i])
		}
		if len(w.TraceID) != 16 || len(w.SpanID) != 16 {
			t.Errorf("worst[%d] ids not 16-hex: %q %q", i, w.TraceID, w.SpanID)
		}
	}
	// Past the window horizon the stale offenders disappear from the view.
	c.advance(2 * time.Minute)
	if got := len(tr.Snapshot().Worst); got != 0 {
		t.Fatalf("worst after horizon = %d entries, want 0", got)
	}
}

// TestSLOTrackerMetrics: the labeled gauge series land in the exposition
// under the documented names.
func TestSLOTrackerMetrics(t *testing.T) {
	c := newSLOClock()
	reg := NewRegistry()
	tr := c.tracker(SLOConfig{
		Windows:      []time.Duration{time.Minute, 5 * time.Minute},
		P99Objective: 1, ErrObjective: 0.5, Metrics: reg,
	})
	tr.Observe(0.001, false, 1, 2)
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	exp := b.String()
	for _, want := range []string{
		`predtop_slo_latency_seconds{quantile="0.99",window="1m0s"}`,
		`predtop_slo_latency_seconds{quantile="0.5",window="5m0s"}`,
		`predtop_slo_error_rate{window="1m0s"} 0`,
		`predtop_slo_burn_rate{window="1m0s"} 0`,
		"predtop_slo_breach 0",
		"predtop_slo_breach_total 0",
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestSLOTrackerNil: every method on a nil tracker is inert.
func TestSLOTrackerNil(t *testing.T) {
	var tr *SLOTracker
	tr.Observe(1, true, 1, 2)
	if tr.Breached() || tr.Breaches() != 0 {
		t.Fatal("nil tracker not inert")
	}
	if snap := tr.Snapshot(); snap.Breached || len(snap.Windows) != 0 {
		t.Fatalf("nil snapshot not zero: %+v", snap)
	}
}
