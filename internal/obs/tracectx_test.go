package obs

import (
	"context"
	"testing"
)

// TestTraceContextDeterministic pins the determinism rule of DESIGN.md §7:
// trace ids derive from the seed and name alone — same inputs, same id,
// across runs and machines, with no wall-clock or RNG in the derivation.
func TestTraceContextDeterministic(t *testing.T) {
	a := NewTraceContext(42, "predtop-train")
	b := NewTraceContext(42, "predtop-train")
	if a.TraceID() != b.TraceID() || a.SpanID() != b.SpanID() {
		t.Fatalf("same seed+name diverged: %s/%s vs %s/%s",
			a.TraceID(), a.SpanID(), b.TraceID(), b.SpanID())
	}
	if NewTraceContext(43, "predtop-train").TraceID() == a.TraceID() {
		t.Fatal("different seeds must yield different trace ids")
	}
	if NewTraceContext(42, "predtop-eval").TraceID() == a.TraceID() {
		t.Fatal("different names must yield different trace ids")
	}
	if len(a.TraceID()) != 16 || len(a.SpanID()) != 16 {
		t.Fatalf("ids must be 16 hex chars: %q %q", a.TraceID(), a.SpanID())
	}
}

// TestTraceContextChildren: children share the parent's trace id, carry
// fresh deterministic span ids, and the sequence is reproducible.
func TestTraceContextChildren(t *testing.T) {
	parent := NewTraceContext(7, "run")
	c1 := parent.Child("train")
	c2 := parent.Child("eval")
	if c1.TraceID() != parent.TraceID() || c2.TraceID() != parent.TraceID() {
		t.Fatal("children must inherit the trace id")
	}
	if c1.SpanID() == parent.SpanID() || c1.SpanID() == c2.SpanID() {
		t.Fatalf("span ids must be distinct: parent %s c1 %s c2 %s",
			parent.SpanID(), c1.SpanID(), c2.SpanID())
	}
	// Replaying the same derivation sequence reproduces the same span ids.
	replay := NewTraceContext(7, "run")
	if replay.Child("train").SpanID() != c1.SpanID() || replay.Child("eval").SpanID() != c2.SpanID() {
		t.Fatal("child span ids must be reproducible")
	}
	if c1.Name() != "train" {
		t.Fatalf("child name %q", c1.Name())
	}
}

func TestTraceContextNil(t *testing.T) {
	var tc *TraceContext
	if tc.TraceID() != "" || tc.SpanID() != "" || tc.Name() != "" {
		t.Fatal("nil trace context must render empty ids")
	}
	if tc.Child("x") != nil {
		t.Fatal("nil Child must be nil")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		_ = tc.TraceID()
		_ = tc.SpanID()
		_ = tc.Child("x")
	})
	if allocs != 0 {
		t.Fatalf("nil trace context allocated %.1f per op", allocs)
	}
}

func TestTraceContextRoundtrip(t *testing.T) {
	tc := NewTraceContext(1, "x")
	ctx := WithTraceContext(context.Background(), tc)
	if got := TraceContextFrom(ctx); got != tc {
		t.Fatalf("roundtrip lost the trace context: %v", got)
	}
	if TraceContextFrom(context.Background()) != nil {
		t.Fatal("bare context must yield nil")
	}
	if WithTraceContext(context.Background(), nil) == nil {
		t.Fatal("WithTraceContext(nil tc) must still return a context")
	}
}
