package obs

import (
	"runtime"
	"sync"
	"time"
)

// Runtime gauge names published by SampleRuntime / RuntimeSampler.
const (
	MetricGoroutines      = "runtime_goroutines"
	MetricHeapAllocBytes  = "runtime_heap_alloc_bytes"
	MetricHeapSysBytes    = "runtime_heap_sys_bytes"
	MetricHeapObjects     = "runtime_heap_objects"
	MetricGCPauseSeconds  = "runtime_gc_pause_seconds_total"
	MetricGCCycles        = "runtime_gc_cycles_total"
	MetricNumCPU          = "runtime_num_cpu"
	MetricGomaxprocs      = "runtime_gomaxprocs"
	MetricRuntimeSamples  = "runtime_samples_total"
	MetricSampleIntervalS = "runtime_sample_interval_seconds"
)

// SampleRuntime takes one snapshot of the Go runtime — goroutine count, heap
// bytes and objects, cumulative GC pauses and cycles, CPU counts — into
// gauges on reg. It is what the RuntimeSampler ticker calls; one-shot callers
// (e.g. just before a final metrics dump) can use it directly. No-op on a
// nil registry.
//
// Note runtime.ReadMemStats stops the world briefly; the default sampler
// interval keeps that cost far below the sampled workloads.
func SampleRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge(MetricGoroutines).Set(float64(runtime.NumGoroutine()))
	reg.Gauge(MetricHeapAllocBytes).Set(float64(ms.HeapAlloc))
	reg.Gauge(MetricHeapSysBytes).Set(float64(ms.HeapSys))
	reg.Gauge(MetricHeapObjects).Set(float64(ms.HeapObjects))
	reg.Gauge(MetricGCPauseSeconds).Set(float64(ms.PauseTotalNs) / 1e9)
	reg.Gauge(MetricGCCycles).Set(float64(ms.NumGC))
	reg.Gauge(MetricNumCPU).Set(float64(runtime.NumCPU()))
	reg.Gauge(MetricGomaxprocs).Set(float64(runtime.GOMAXPROCS(0)))
	reg.Counter(MetricRuntimeSamples).Inc()
}

// RuntimeSampler periodically feeds SampleRuntime into a registry so a live
// /metrics scrape shows current process health, not just workload counters.
// All instruments it touches are the registry's ordinary atomic gauges, so
// sampling races cleanly with concurrent Snapshot/WriteProm calls.
type RuntimeSampler struct {
	reg      *Registry
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	once     sync.Once
}

// DefaultSampleInterval is the RuntimeSampler cadence when none is given.
const DefaultSampleInterval = time.Second

// StartRuntimeSampler samples reg every interval (<= 0 selects
// DefaultSampleInterval) until Stop is called. One synchronous sample is
// taken before returning, so gauges are populated even if the caller stops
// the sampler within the first tick. A nil registry returns a nil (inert)
// sampler.
func StartRuntimeSampler(reg *Registry, interval time.Duration) *RuntimeSampler {
	if reg == nil {
		return nil
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	s := &RuntimeSampler{
		reg:      reg,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	reg.Gauge(MetricSampleIntervalS).Set(interval.Seconds())
	SampleRuntime(reg)
	go s.loop()
	return s
}

func (s *RuntimeSampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			SampleRuntime(s.reg)
		}
	}
}

// Stop halts the sampler and waits for its goroutine to exit. Idempotent and
// nil-safe.
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	s.once.Do(func() { close(s.stop) })
	<-s.done
}
