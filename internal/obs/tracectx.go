package obs

import (
	"context"
	"sync/atomic"
)

// TraceContext is the correlation identity of one run: a 64-bit trace id
// shared by everything the run emits (metric exposition, JSONL events, Chrome
// trace, log lines, flight-recorder entries) plus a per-span id. Both ids are
// derived deterministically from the run seed and a monotonic counter — never
// from wall-clock time or math/rand — so the same seed always produces the
// same ids and re-runs stay bitwise comparable (DESIGN.md §7).
//
// A nil *TraceContext is fully inert: every method returns a zero value and
// costs nothing, matching the package-wide nil no-op contract.
type TraceContext struct {
	traceID uint64
	spanID  uint64
	name    string
	ctr     *atomic.Uint64 // shared by the whole trace tree
}

// NewTraceContext returns the root context for a run identified by seed. The
// name (typically the tool name, e.g. "predtop-train") is mixed into the
// trace id so two tools sharing a seed still get distinct traces.
func NewTraceContext(seed int64, name string) *TraceContext {
	h := uint64(seed)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 0x100000001b3 // FNV-1a fold
	}
	id := splitmix64(h)
	if id == 0 {
		id = 1 // 0 is the "no trace" sentinel in hex rendering
	}
	return &TraceContext{traceID: id, spanID: id, name: name, ctr: &atomic.Uint64{}}
}

// Child derives a new span under the same trace id. Span ids come from the
// trace-wide counter hashed with the trace id, so they are unique within the
// trace and deterministic given the same creation order.
func (tc *TraceContext) Child(name string) *TraceContext {
	if tc == nil {
		return nil
	}
	n := tc.ctr.Add(1)
	return &TraceContext{
		traceID: tc.traceID,
		spanID:  splitmix64(tc.traceID ^ n),
		name:    name,
		ctr:     tc.ctr,
	}
}

// TraceID returns the 16-hex-digit trace id ("" on nil).
func (tc *TraceContext) TraceID() string {
	if tc == nil {
		return ""
	}
	return hex16(tc.traceID)
}

// SpanID returns the 16-hex-digit span id ("" on nil).
func (tc *TraceContext) SpanID() string {
	if tc == nil {
		return ""
	}
	return hex16(tc.spanID)
}

// RawIDs returns the raw 64-bit (trace, span) ids — the allocation-free form
// instruments like the SLO tracker and histogram exemplars store, rendering
// to hex only at exposition time. (0, 0) on nil.
func (tc *TraceContext) RawIDs() (trace, span uint64) {
	if tc == nil {
		return 0, 0
	}
	return tc.traceID, tc.spanID
}

// Name returns the span name ("" on nil).
func (tc *TraceContext) Name() string {
	if tc == nil {
		return ""
	}
	return tc.name
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// well-mixed 64-bit hash used to turn (seed, counter) pairs into ids.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hex16 renders v as exactly 16 lowercase hex digits without fmt overhead.
func hex16(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// traceCtxKey is the context.Context key for a *TraceContext.
type traceCtxKey struct{}

// WithTraceContext returns a context carrying tc. A nil tc returns ctx
// unchanged.
func WithTraceContext(ctx context.Context, tc *TraceContext) context.Context {
	if tc == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom extracts the TraceContext from ctx (nil when absent or
// when ctx itself is nil).
func TraceContextFrom(ctx context.Context) *TraceContext {
	if ctx == nil {
		return nil
	}
	tc, _ := ctx.Value(traceCtxKey{}).(*TraceContext)
	return tc
}
