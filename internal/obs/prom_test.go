package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestWritePromGolden pins the text exposition byte-for-byte: deterministic
// name ordering, cumulative histogram buckets, the +Inf bucket equal to
// _count, and the built-in dropped-samples counter.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("train_batches_total").Add(12)
	r.Gauge("runtime_goroutines").Set(9)
	h := r.Histogram("batch_seconds", []float64{0.5, 1, 2})
	for _, v := range []float64{0.1, 0.7, 0.7, 1.5, 100} {
		h.Observe(v) // 1 in ≤0.5, 2 in ≤1, 1 in ≤2, 1 overflow
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE batch_seconds histogram",
		`batch_seconds_bucket{le="0.5"} 1`,
		`batch_seconds_bucket{le="1"} 3`,
		`batch_seconds_bucket{le="2"} 4`,
		`batch_seconds_bucket{le="+Inf"} 5`,
		"batch_seconds_sum 103",
		"batch_seconds_count 5",
		"# TYPE obs_dropped_samples_total counter",
		"obs_dropped_samples_total 0",
		"# TYPE runtime_goroutines gauge",
		"runtime_goroutines 9",
		"# TYPE train_batches_total counter",
		"train_batches_total 12",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWritePromSparseBuckets: Snapshot omits empty buckets; the cumulative
// exposition must still end with a +Inf bucket equal to _count.
func TestWritePromSparseBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	h.Observe(50) // only the ≤100 bucket is hit
	h.Observe(1e6)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		`h_bucket{le="100"} 1`,
		`h_bucket{le="+Inf"} 2`,
		"h_count 2",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
	if strings.Contains(out, `le="1"`) || strings.Contains(out, `le="10"`) {
		t.Fatalf("empty buckets leaked into exposition:\n%s", out)
	}
}

// TestWritePromDeterministic: two renders of the same registry are
// byte-identical (map iteration must never leak into the output).
func TestWritePromDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Counter(name).Inc()
	}
	r.Histogram("hist_b", nil).Observe(1)
	r.Histogram("hist_a", nil).Observe(2)
	var a, b bytes.Buffer
	if err := r.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("non-deterministic exposition:\n%s\nvs\n%s", a.String(), b.String())
	}
	idx := func(s string) int { return strings.Index(a.String(), s) }
	if !(idx("alpha") < idx("hist_a") && idx("hist_a") < idx("hist_b") && idx("hist_b") < idx("mid") && idx("mid") < idx("zeta")) {
		t.Fatalf("exposition not name-sorted:\n%s", a.String())
	}
}

// TestWritePromNilRegistry: a nil registry writes an empty (valid)
// exposition.
func TestWritePromNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"train_batches_total": "train_batches_total",
		"ns:counter":          "ns:counter",
		"batch.seconds":       "batch_seconds",
		"grid cell/MRE%":      "grid_cell_MRE_",
		"9lives":              "_9lives",
		"":                    "_",
		"a-b-c":               "a_b_c",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}
