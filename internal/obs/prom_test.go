package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestWritePromGolden pins the text exposition byte-for-byte: deterministic
// name ordering, cumulative histogram buckets, the +Inf bucket equal to
// _count, and the built-in dropped-samples counter.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("train_batches_total").Add(12)
	r.Gauge("runtime_goroutines").Set(9)
	h := r.Histogram("batch_seconds", []float64{0.5, 1, 2})
	for _, v := range []float64{0.1, 0.7, 0.7, 1.5, 100} {
		h.Observe(v) // 1 in ≤0.5, 2 in ≤1, 1 in ≤2, 1 overflow
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE batch_seconds histogram",
		`batch_seconds_bucket{le="0.5"} 1`,
		`batch_seconds_bucket{le="1"} 3`,
		`batch_seconds_bucket{le="2"} 4`,
		`batch_seconds_bucket{le="+Inf"} 5`,
		"batch_seconds_sum 103",
		"batch_seconds_count 5",
		"# TYPE obs_dropped_samples_total counter",
		"obs_dropped_samples_total 0",
		"# TYPE runtime_goroutines gauge",
		"runtime_goroutines 9",
		"# TYPE train_batches_total counter",
		"train_batches_total 12",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWritePromSparseBuckets: Snapshot omits empty buckets; the cumulative
// exposition must still end with a +Inf bucket equal to _count.
func TestWritePromSparseBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	h.Observe(50) // only the ≤100 bucket is hit
	h.Observe(1e6)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		`h_bucket{le="100"} 1`,
		`h_bucket{le="+Inf"} 2`,
		"h_count 2",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
	if strings.Contains(out, `le="1"`) || strings.Contains(out, `le="10"`) {
		t.Fatalf("empty buckets leaked into exposition:\n%s", out)
	}
}

// TestWritePromDeterministic: two renders of the same registry are
// byte-identical (map iteration must never leak into the output).
func TestWritePromDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Counter(name).Inc()
	}
	r.Histogram("hist_b", nil).Observe(1)
	r.Histogram("hist_a", nil).Observe(2)
	var a, b bytes.Buffer
	if err := r.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("non-deterministic exposition:\n%s\nvs\n%s", a.String(), b.String())
	}
	idx := func(s string) int { return strings.Index(a.String(), s) }
	if !(idx("alpha") < idx("hist_a") && idx("hist_a") < idx("hist_b") && idx("hist_b") < idx("mid") && idx("mid") < idx("zeta")) {
		t.Fatalf("exposition not name-sorted:\n%s", a.String())
	}
}

// TestWritePromNilRegistry: a nil registry writes an empty (valid)
// exposition.
func TestWritePromNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}

// TestWritePromHistogramEdgeCases pins the exposition invariants scrapers
// rely on: every histogram ends in a le="+Inf" bucket equal to _count, and
// cumulative bucket counts never decrease — including empty histograms and
// all-overflow populations.
func TestWritePromHistogramEdgeCases(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty", []float64{1, 2}) // registered, never observed
	over := r.Histogram("overflow", []float64{1, 2})
	over.Observe(100) // all samples beyond the last bound
	over.Observe(200)
	mid := r.Histogram("mid", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 3, 3, 7, 50} {
		mid.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`empty_bucket{le="+Inf"} 0`, "empty_count 0", "empty_sum 0",
		`overflow_bucket{le="+Inf"} 2`, "overflow_count 2",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Every histogram's bucket series must be monotone non-decreasing and end
	// with +Inf == _count.
	checkMonotone := func(name string, count int64) {
		prev := int64(-1)
		sawInf := false
		for _, line := range strings.Split(out, "\n") {
			if !strings.HasPrefix(line, name+"_bucket{le=") {
				continue
			}
			var c int64
			if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &c); err != nil {
				t.Fatalf("unparsable bucket line %q: %v", line, err)
			}
			if c < prev {
				t.Fatalf("%s cumulative counts not monotone at %q (prev %d)", name, line, prev)
			}
			prev = c
			if strings.Contains(line, `le="+Inf"`) {
				sawInf = true
				if c != count {
					t.Fatalf("%s +Inf bucket %d != count %d", name, c, count)
				}
			}
		}
		if !sawInf {
			t.Fatalf("%s has no +Inf bucket:\n%s", name, out)
		}
	}
	checkMonotone("empty", 0)
	checkMonotone("overflow", 2)
	checkMonotone("mid", 5)
}

// TestWritePromLabeledSeries: labeled counters/gauges render name{labels}
// sample lines grouped under one TYPE header, with label values escaped.
func TestWritePromLabeledSeries(t *testing.T) {
	r := NewRegistry()
	r.CounterWith("req_total", Label{"family", "tran"}).Add(2)
	r.CounterWith("req_total", Label{"family", "gcn"}).Add(5)
	r.CounterWith("req_total").Inc() // unlabeled series of the same name
	r.GaugeWith("weird", Label{"v", "a\"b\\c\nd"}).Set(1)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"req_total 1",
		`req_total{family="gcn"} 5`,
		`req_total{family="tran"} 2`,
		`weird{v="a\"b\\c\nd"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "# TYPE req_total counter"); got != 1 {
		t.Fatalf("%d TYPE headers for req_total:\n%s", got, out)
	}
}

// TestWritePromLabeledHistogram: labeled histograms render the label block
// inside every _bucket line (before le) and as a suffix on _sum/_count, with
// all series of one name sharing a single TYPE header.
func TestWritePromLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	a := r.HistogramWith("req_seconds", []float64{1, 2}, Label{"endpoint", "/predict"})
	a.Observe(0.5)
	a.Observe(1.5)
	a.Observe(9) // overflow
	r.HistogramWith("req_seconds", []float64{1, 2}, Label{"endpoint", "/reload"}).Observe(0.5)
	r.Histogram("req_seconds", []float64{1, 2}).Observe(0.5) // unlabeled sibling
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`req_seconds_bucket{le="1"} 1`, // unlabeled series unchanged
		`req_seconds_bucket{le="+Inf"} 1`,
		"req_seconds_count 1",
		`req_seconds_bucket{endpoint="/predict",le="1"} 1`,
		`req_seconds_bucket{endpoint="/predict",le="2"} 2`,
		`req_seconds_bucket{endpoint="/predict",le="+Inf"} 3`,
		`req_seconds_sum{endpoint="/predict"} 11`,
		`req_seconds_count{endpoint="/predict"} 3`,
		`req_seconds_bucket{endpoint="/reload",le="+Inf"} 1`,
		`req_seconds_count{endpoint="/reload"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "# TYPE req_seconds histogram"); got != 1 {
		t.Fatalf("%d TYPE headers for req_seconds:\n%s", got, out)
	}
	// Same (name, labels) → same instrument, regardless of call order.
	if r.HistogramWith("req_seconds", nil, Label{"endpoint", "/predict"}) != a {
		t.Fatal("HistogramWith did not dedupe the labeled series")
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"train_batches_total": "train_batches_total",
		"ns:counter":          "ns:counter",
		"batch.seconds":       "batch_seconds",
		"grid cell/MRE%":      "grid_cell_MRE_",
		"9lives":              "_9lives",
		"":                    "_",
		"a-b-c":               "a_b_c",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// validPromName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// FuzzSanitizeMetricName: for any input the output is a valid Prometheus
// metric name, already-valid names pass through unchanged, and the function
// is idempotent.
func FuzzSanitizeMetricName(f *testing.F) {
	for _, seed := range []string{
		"", "train_batches_total", "ns:counter", "9lives", "grid cell/MRE%",
		"a-b-c", "\x00\xff", "üñïçødé", "0", "_", ":", "a b", strings.Repeat("x", 300),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		got := SanitizeMetricName(name)
		if !validPromName(got) {
			t.Fatalf("SanitizeMetricName(%q) = %q is not a valid metric name", name, got)
		}
		if validPromName(name) && got != name {
			t.Fatalf("valid name %q rewritten to %q", name, got)
		}
		if again := SanitizeMetricName(got); again != got {
			t.Fatalf("not idempotent: %q -> %q -> %q", name, got, again)
		}
	})
}

// TestWritePromExemplars: buckets that carry exemplars render an
// OpenMetrics-style suffix joining them to a trace id; plain buckets and the
// rest of the exposition are unchanged.
func TestWritePromExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_seconds", []float64{0.01, 0.1})
	h.Observe(0.005)              // untraced: no exemplar on this bucket yet
	h.ObserveEx(0.05, 0xa1, 0xb2) // second bucket, traced
	h.ObserveEx(0.5, 0xc3, 0xd4)  // overflow, traced
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	exp := b.String()
	if !strings.Contains(exp, `req_seconds_bucket{le="0.01"} 1`+"\n") {
		t.Errorf("untraced bucket line altered:\n%s", exp)
	}
	want := `req_seconds_bucket{le="0.1"} 2 # {trace_id="` + hex16(0xa1) + `",span_id="` + hex16(0xb2) + `"} 0.05`
	if !strings.Contains(exp, want+"\n") {
		t.Errorf("missing traced bucket exemplar %q in:\n%s", want, exp)
	}
	wantInf := `req_seconds_bucket{le="+Inf"} 3 # {trace_id="` + hex16(0xc3) + `"`
	if !strings.Contains(exp, wantInf) {
		t.Errorf("missing overflow exemplar %q in:\n%s", wantInf, exp)
	}
}
