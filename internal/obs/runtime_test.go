package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSampleRuntimePopulatesGauges(t *testing.T) {
	r := NewRegistry()
	SampleRuntime(r)
	for _, name := range []string{
		MetricGoroutines, MetricHeapAllocBytes, MetricHeapSysBytes,
		MetricGCCycles, MetricNumCPU, MetricGomaxprocs,
	} {
		if v := r.Gauge(name).Value(); v < 0 || (name != MetricGCCycles && v == 0) {
			t.Errorf("%s = %v after sampling", name, v)
		}
	}
	if got := r.Counter(MetricRuntimeSamples).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricRuntimeSamples, got)
	}
	SampleRuntime(nil) // nil registry must be a no-op
}

// TestRuntimeSamplerTicks: the sampler must take its synchronous first
// sample immediately and keep sampling on the ticker until stopped.
func TestRuntimeSamplerTicks(t *testing.T) {
	r := NewRegistry()
	s := StartRuntimeSampler(r, time.Millisecond)
	if got := r.Counter(MetricRuntimeSamples).Value(); got < 1 {
		t.Fatalf("no synchronous first sample (count %d)", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for r.Counter(MetricRuntimeSamples).Value() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	if got := r.Counter(MetricRuntimeSamples).Value(); got < 3 {
		t.Fatalf("sampler ticked %d times in 2s", got)
	}
	after := r.Counter(MetricRuntimeSamples).Value()
	time.Sleep(5 * time.Millisecond)
	if got := r.Counter(MetricRuntimeSamples).Value(); got != after {
		t.Fatalf("sampler still running after Stop: %d -> %d", after, got)
	}
	s.Stop() // idempotent
	var nilSampler *RuntimeSampler
	nilSampler.Stop() // nil-safe
	if StartRuntimeSampler(nil, time.Millisecond) != nil {
		t.Fatal("nil registry must yield a nil sampler")
	}
}

// TestRuntimeSamplerRacesWithSnapshot: the sampler's gauge writes must race
// cleanly with concurrent Snapshot and exposition renders (run under -race).
func TestRuntimeSamplerRacesWithSnapshot(t *testing.T) {
	r := NewRegistry()
	s := StartRuntimeSampler(r, 100*time.Microsecond)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if snap := r.Snapshot(); len(snap) == 0 {
					t.Error("empty snapshot during sampling")
					return
				}
				r.Counter("work").Inc()
			}
		}()
	}
	wg.Wait()
	s.Stop()
	if r.Counter("work").Value() != 800 {
		t.Fatalf("lost counter increments: %d", r.Counter("work").Value())
	}
}
