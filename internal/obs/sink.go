package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Sink streams structured JSONL records — one JSON object per line — to an
// io.Writer. Records are arbitrary json-marshalable values; by convention
// every record carries an "event" field naming its kind (see README
// "Observability" for the schema the cmd tools emit). A nil *Sink discards
// everything, so call sites never need to guard.
//
// Writes are buffered (NewSink wraps the writer in a bufio.Writer), so
// callers must Flush or Close before reading the output; the cmd tools Close
// on exit and the flight recorder flushes before a post-mortem dump. When a
// TraceContext is attached, every emitted object gains leading
// "trace_id"/"span_id" fields, joining the JSONL log to the metric exposition
// and the Chrome trace of the same run.
type Sink struct {
	mu  sync.Mutex
	w   io.Writer
	bw  *bufio.Writer // nil → unbuffered (direct construction, benchmarks)
	err error
	// tracePrefix is the precomputed `"trace_id":"…","span_id":"…",` byte
	// splice inserted after the opening '{' of every record.
	tracePrefix []byte
	flight      *FlightRecorder
}

// NewSink returns a buffered sink writing to w (nil w → nil sink).
func NewSink(w io.Writer) *Sink {
	if w == nil {
		return nil
	}
	return &Sink{w: w, bw: bufio.NewWriter(w)}
}

// SetTraceContext attaches the run's trace identity: every subsequent record
// is emitted with leading "trace_id" and "span_id" fields. Passing nil
// detaches. No-op on a nil sink.
func (s *Sink) SetTraceContext(tc *TraceContext) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if tc == nil {
		s.tracePrefix = nil
		return
	}
	s.tracePrefix = []byte(`"trace_id":"` + tc.TraceID() + `","span_id":"` + tc.SpanID() + `",`)
}

// AttachFlight couples the sink to a flight recorder: each Emit leaves a
// breadcrumb in the ring, and the recorder flushes the sink's buffer before
// any post-mortem dump so the JSONL log on disk is complete. No-op when
// either side is nil.
func (s *Sink) AttachFlight(f *FlightRecorder) {
	if s == nil || f == nil {
		return
	}
	s.mu.Lock()
	s.flight = f
	s.mu.Unlock()
	f.OnDump(func() { s.Flush() })
}

// Emit marshals rec and writes it as one line. The first marshal or write
// error is sticky (later Emits are dropped) and reported by Err. No-op on a
// nil sink.
func (s *Sink) Emit(rec any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		s.err = err
		return
	}
	if len(s.tracePrefix) > 0 && len(b) > 1 && b[0] == '{' {
		spliced := make([]byte, 0, len(b)+len(s.tracePrefix)+1)
		spliced = append(spliced, '{')
		spliced = append(spliced, s.tracePrefix...)
		if b[1] == '}' { // empty object: drop the trailing comma
			spliced = spliced[:len(spliced)-1]
		}
		spliced = append(spliced, b[1:]...)
		b = spliced
	}
	b = append(b, '\n')
	if _, err := s.write(b); err != nil {
		s.err = err
	}
	s.flight.Note("sink", "emit")
}

// write sends b through the buffer when present, directly otherwise. Caller
// holds s.mu.
func (s *Sink) write(b []byte) (int, error) {
	if s.bw != nil {
		return s.bw.Write(b)
	}
	return s.w.Write(b)
}

// EmitMetrics emits a {"event":"metrics"} record carrying a registry
// snapshot. No-op when the sink or registry is nil.
func (s *Sink) EmitMetrics(r *Registry) {
	if s == nil || r == nil {
		return
	}
	s.Emit(struct {
		Event   string   `json:"event"`
		Metrics []Metric `json:"metrics"`
	}{"metrics", r.Snapshot()})
}

// Flush forces buffered records to the underlying writer. The first flush
// error is sticky, like Emit errors. Nil-safe.
func (s *Sink) Flush() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Sink) flushLocked() error {
	if s.err != nil {
		return s.err
	}
	if s.bw != nil {
		if err := s.bw.Flush(); err != nil {
			s.err = err
		}
	}
	return s.err
}

// Close flushes and returns the sink's terminal error status. It does not
// close the underlying writer (the caller owns it). Nil-safe.
func (s *Sink) Close() error {
	return s.Flush()
}

// Err returns the first error encountered by Emit or Flush (nil on a nil
// sink). Note that with buffering a write error may only surface at Flush.
func (s *Sink) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Logger is the minimal leveled replacement for the cmd tools' ad-hoc
// fmt/log prints: Printf-style progress lines that a -quiet flag (or a nil
// logger) silences wholesale. WithTrace derives a logger whose every line is
// prefixed with the run's trace id, joining log output to the other channels.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
}

// NewLogger returns a logger writing to w, or nil (silent) when quiet is set
// or w is nil.
func NewLogger(w io.Writer, quiet bool) *Logger {
	if quiet || w == nil {
		return nil
	}
	return &Logger{w: w}
}

// WithTrace returns a logger whose lines carry a "[<trace_id>] " prefix.
// With a nil logger or nil tc it returns the receiver unchanged.
func (l *Logger) WithTrace(tc *TraceContext) *Logger {
	if l == nil || tc == nil {
		return l
	}
	return &Logger{w: l.w, prefix: "[" + tc.TraceID() + "] "}
}

// Printf writes one formatted line (a trailing newline is added if missing).
// No-op on a nil logger.
func (l *Logger) Printf(format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fprintf(l.w, l.prefix+format, args...)
}

// Writer returns the underlying writer, or io.Discard on a nil logger —
// handy for APIs that take a progress io.Writer.
func (l *Logger) Writer() io.Writer {
	if l == nil {
		return io.Discard
	}
	return l.w
}

func fprintf(w io.Writer, format string, args ...any) {
	s := fmt.Sprintf(format, args...)
	if !strings.HasSuffix(s, "\n") {
		s += "\n"
	}
	io.WriteString(w, s)
}
