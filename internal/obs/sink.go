package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Sink streams structured JSONL records — one JSON object per line — to an
// io.Writer. Records are arbitrary json-marshalable values; by convention
// every record carries an "event" field naming its kind (see README
// "Observability" for the schema the cmd tools emit). A nil *Sink discards
// everything, so call sites never need to guard.
type Sink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewSink returns a sink writing to w (nil w → nil sink).
func NewSink(w io.Writer) *Sink {
	if w == nil {
		return nil
	}
	return &Sink{w: w}
}

// Emit marshals rec and writes it as one line. The first marshal or write
// error is sticky (later Emits are dropped) and reported by Err. No-op on a
// nil sink.
func (s *Sink) Emit(rec any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		s.err = err
		return
	}
	b = append(b, '\n')
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
}

// EmitMetrics emits a {"event":"metrics"} record carrying a registry
// snapshot. No-op when the sink or registry is nil.
func (s *Sink) EmitMetrics(r *Registry) {
	if s == nil || r == nil {
		return
	}
	s.Emit(struct {
		Event   string   `json:"event"`
		Metrics []Metric `json:"metrics"`
	}{"metrics", r.Snapshot()})
}

// Err returns the first error encountered by Emit (nil on a nil sink).
func (s *Sink) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Logger is the minimal leveled replacement for the cmd tools' ad-hoc
// fmt/log prints: Printf-style progress lines that a -quiet flag (or a nil
// logger) silences wholesale.
type Logger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogger returns a logger writing to w, or nil (silent) when quiet is set
// or w is nil.
func NewLogger(w io.Writer, quiet bool) *Logger {
	if quiet || w == nil {
		return nil
	}
	return &Logger{w: w}
}

// Printf writes one formatted line (a trailing newline is added if missing).
// No-op on a nil logger.
func (l *Logger) Printf(format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fprintf(l.w, format, args...)
}

// Writer returns the underlying writer, or io.Discard on a nil logger —
// handy for APIs that take a progress io.Writer.
func (l *Logger) Writer() io.Writer {
	if l == nil {
		return io.Discard
	}
	return l.w
}

func fprintf(w io.Writer, format string, args ...any) {
	s := fmt.Sprintf(format, args...)
	if !strings.HasSuffix(s, "\n") {
		s += "\n"
	}
	io.WriteString(w, s)
}
