package obs

import (
	"sort"
	"sync"
	"time"
)

// SLOTracker turns a stream of request (latency, error) observations into a
// rolling service-level verdict: per window (1m/5m/1h by default) it keeps
// p50/p95/p99 latency and the error rate over ring-buffered bucket sketches,
// compares them against configured objectives, computes the error-budget burn
// rate, and edge-triggers a breach transition the moment any window goes out
// of objective — firing predtop_slo_breach_total, the OnBreach callback, and
// (through the serving layer) the incident-capture pipeline.
//
// Time never comes from the wall clock directly: every read goes through the
// injectable SLOConfig.Now, so tests drive window rotation deterministically.
// Like every obs instrument, a nil *SLOTracker is fully inert and the
// per-observation path is allocation-free.
type SLOTracker struct {
	cfg     SLOConfig
	bounds  []float64 // latency bucket upper bounds, seconds
	slotNS  []int64   // per-window slot duration in nanoseconds
	breachC *Counter
	breachG *Gauge

	longest time.Duration // widest window; the worst-list horizon

	mu       sync.Mutex
	windows  []*sloWindow
	worst    []worstEntry // kept sorted by latency, descending
	breached bool
	breaches int64
}

// SLOConfig configures a tracker. The zero value plus objectives is usable:
// default windows 1m/5m/1h, 10-sample arming, wall-clock time.
type SLOConfig struct {
	// P99Objective is the latency objective in seconds: a window whose p99
	// exceeds it is in breach, and every request slower than it consumes
	// error budget. <= 0 disables the latency objective.
	P99Objective float64
	// ErrObjective is the tolerated bad-request fraction (errors + requests
	// over the latency objective), i.e. the error budget. A window whose bad
	// fraction exceeds it is in breach; burn rate is bad-fraction divided by
	// this budget. <= 0 disables the error objective (burn rate reads 0).
	ErrObjective float64
	// Windows are the rolling horizons (default 1m, 5m, 1h). Each is carved
	// into sloSlots ring slots, so resolution is Window/60.
	Windows []time.Duration
	// MinSamples arms breach detection per window: a window with fewer
	// observations never breaches, so an idle daemon's first slow request
	// cannot page anyone (default 10).
	MinSamples int
	// WorstK bounds the worst-recent-requests list surfaced by Snapshot and
	// the breach records (default 8).
	WorstK int
	// Now is the clock (default time.Now); tests inject a manual one.
	Now func() time.Time
	// Metrics receives the predtop_slo_* gauges and the breach counter. Nil
	// disables export (verdicts still accumulate).
	Metrics *Registry
	// OnBreach fires once per ok→breach transition (edge-triggered, outside
	// the tracker lock) with the snapshot that crossed the line.
	OnBreach func(SLOSnapshot)
}

// Metric names exported by the SLO tracker.
const (
	SLOLatencyMetric   = "predtop_slo_latency_seconds"
	SLOErrorRateMetric = "predtop_slo_error_rate"
	SLOBurnRateMetric  = "predtop_slo_burn_rate"
	SLOBreachGauge     = "predtop_slo_breach"
	SLOBreachesMetric  = "predtop_slo_breach_total"
)

// sloSlots is the ring length of every window: resolution is Window/60 (1s
// slots for the 1m window), and rotation retires exactly one slot at a time.
const sloSlots = 60

// sloBuckets is the latency sketch ladder: 100µs to ~3.3s in powers of two,
// the same base ladder as the serving request histogram plus headroom; the
// overflow slot catches anything slower and reports the window max.
var sloBuckets = MustExpBuckets(1e-4, 2, 15)

// sloWindow is one rolling horizon. Aggregate counts are maintained
// incrementally — observations add, retired slots subtract — so evaluating
// the window after each request is an O(buckets) scan, not an O(slots) merge.
type sloWindow struct {
	dur      time.Duration
	lastSlot int64 // absolute slot number of the ring head
	slots    []sloSlot
	agg      sloSlot
	breached bool

	p50, p95, p99, errRate, burn *Gauge
}

// sloSlot is one slot's (or the aggregate's) counts.
type sloSlot struct {
	counts []int64 // parallel to sloBuckets, +1 overflow
	total  int64
	errs   int64
	slow   int64   // over the latency objective
	max    float64 // slot-local; the aggregate's max is computed on demand
}

func (s *sloSlot) reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.total, s.errs, s.slow, s.max = 0, 0, 0, 0
}

// worstEntry is one candidate for the worst-recent-requests list.
type worstEntry struct {
	lat         float64
	trace, span uint64
	at          int64 // unix nanoseconds, from the injected clock
}

// NewSLOTracker returns an enabled tracker.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	if len(cfg.Windows) == 0 {
		cfg.Windows = []time.Duration{time.Minute, 5 * time.Minute, time.Hour}
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 10
	}
	if cfg.WorstK <= 0 {
		cfg.WorstK = 8
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	t := &SLOTracker{
		cfg:     cfg,
		bounds:  sloBuckets,
		breachC: cfg.Metrics.Counter(SLOBreachesMetric),
		breachG: cfg.Metrics.Gauge(SLOBreachGauge),
	}
	for _, d := range cfg.Windows {
		if d > t.longest {
			t.longest = d
		}
	}
	t.breachG.Set(0)
	for _, d := range cfg.Windows {
		if d <= 0 {
			continue
		}
		w := &sloWindow{dur: d, slots: make([]sloSlot, sloSlots)}
		w.agg.counts = make([]int64, len(t.bounds)+1)
		for i := range w.slots {
			w.slots[i].counts = make([]int64, len(t.bounds)+1)
		}
		lbl := Label{Key: "window", Value: d.String()}
		w.p50 = cfg.Metrics.GaugeWith(SLOLatencyMetric, lbl, Label{Key: "quantile", Value: "0.5"})
		w.p95 = cfg.Metrics.GaugeWith(SLOLatencyMetric, lbl, Label{Key: "quantile", Value: "0.95"})
		w.p99 = cfg.Metrics.GaugeWith(SLOLatencyMetric, lbl, Label{Key: "quantile", Value: "0.99"})
		w.errRate = cfg.Metrics.GaugeWith(SLOErrorRateMetric, lbl)
		w.burn = cfg.Metrics.GaugeWith(SLOBurnRateMetric, lbl)
		t.windows = append(t.windows, w)
		t.slotNS = append(t.slotNS, int64(d)/sloSlots)
	}
	t.worst = make([]worstEntry, 0, cfg.WorstK)
	return t
}

// Observe records one finished request: its latency in seconds, whether it
// failed (server-side errors only — a client's 4xx is not an SLO violation),
// and its raw trace/span ids for the worst-offender list. No-op on nil;
// allocation-free otherwise.
func (t *SLOTracker) Observe(latency float64, isErr bool, trace, span uint64) {
	if t == nil {
		return
	}
	now := t.cfg.Now()
	slow := t.cfg.P99Objective > 0 && latency > t.cfg.P99Objective
	bi := sort.SearchFloat64s(t.bounds, latency)

	t.mu.Lock()
	for i, w := range t.windows {
		t.rotate(w, t.slotNS[i], now)
		slot := &w.slots[w.lastSlot%sloSlots]
		slot.counts[bi]++
		slot.total++
		w.agg.counts[bi]++
		w.agg.total++
		if latency > slot.max {
			slot.max = latency
		}
		if isErr {
			slot.errs++
			w.agg.errs++
		}
		if slow {
			slot.slow++
			w.agg.slow++
		}
	}
	t.noteWorst(latency, trace, span, now.UnixNano())
	fired, snap := t.evaluateLocked(now)
	t.mu.Unlock()
	if fired && t.cfg.OnBreach != nil {
		t.cfg.OnBreach(snap)
	}
}

// rotate advances w's ring head to now, zeroing (and subtracting from the
// aggregate) every slot the clock skipped. Caller holds t.mu.
func (t *SLOTracker) rotate(w *sloWindow, slotNS int64, now time.Time) {
	cur := now.UnixNano() / slotNS
	if w.lastSlot == 0 && w.agg.total == 0 {
		w.lastSlot = cur // first observation: adopt the clock without sweeping
		return
	}
	if cur <= w.lastSlot {
		return
	}
	steps := cur - w.lastSlot
	if steps > sloSlots {
		steps = sloSlots // everything expired; one full sweep is enough
	}
	for s := int64(1); s <= steps; s++ {
		slot := &w.slots[(w.lastSlot+s)%sloSlots]
		for i, c := range slot.counts {
			w.agg.counts[i] -= c
		}
		w.agg.total -= slot.total
		w.agg.errs -= slot.errs
		w.agg.slow -= slot.slow
		slot.reset()
	}
	w.lastSlot = cur
}

// quantileLocked reads quantile q from w's aggregate sketch: the upper bound
// of the first bucket covering rank q·total, or the window max when the rank
// lands in the overflow slot. Caller holds t.mu.
func (t *SLOTracker) quantileLocked(w *sloWindow, q float64) float64 {
	if w.agg.total == 0 {
		return 0
	}
	rank := int64(q * float64(w.agg.total))
	if rank >= w.agg.total {
		rank = w.agg.total - 1
	}
	cum := int64(0)
	for i, c := range w.agg.counts[:len(t.bounds)] {
		cum += c
		if cum > rank {
			return t.bounds[i]
		}
	}
	return t.maxLocked(w)
}

// maxLocked computes w's window max from the live slots. Caller holds t.mu.
func (t *SLOTracker) maxLocked(w *sloWindow) float64 {
	max := 0.0
	for i := range w.slots {
		if w.slots[i].max > max {
			max = w.slots[i].max
		}
	}
	return max
}

// evaluateLocked refreshes every window's gauges and breach verdict and
// returns whether the tracker just transitioned into breach (plus the
// snapshot to hand OnBreach). Caller holds t.mu.
func (t *SLOTracker) evaluateLocked(now time.Time) (fired bool, snap SLOSnapshot) {
	any := false
	for _, w := range t.windows {
		p50 := t.quantileLocked(w, 0.50)
		p95 := t.quantileLocked(w, 0.95)
		p99 := t.quantileLocked(w, 0.99)
		errRate, burn := t.ratesLocked(w)
		w.p50.Set(p50)
		w.p95.Set(p95)
		w.p99.Set(p99)
		w.errRate.Set(errRate)
		w.burn.Set(burn)
		w.breached = w.agg.total >= int64(t.cfg.MinSamples) &&
			((t.cfg.P99Objective > 0 && p99 > t.cfg.P99Objective) ||
				(t.cfg.ErrObjective > 0 && errRate > t.cfg.ErrObjective))
		any = any || w.breached
	}
	fired = any && !t.breached
	if fired {
		t.breaches++
		t.breachC.Inc()
	}
	t.breached = any
	if any {
		t.breachG.Set(1)
	} else {
		t.breachG.Set(0)
	}
	if fired {
		snap = t.snapshotLocked(now)
	}
	return fired, snap
}

// ratesLocked computes w's error rate (errors/total, server errors only) and
// burn rate (bad fraction over the error budget, where bad = errors + slow).
// A zero-traffic window reads 0 for both. Caller holds t.mu.
func (t *SLOTracker) ratesLocked(w *sloWindow) (errRate, burn float64) {
	if w.agg.total == 0 {
		return 0, 0
	}
	total := float64(w.agg.total)
	errRate = float64(w.agg.errs) / total
	if t.cfg.ErrObjective > 0 {
		burn = (float64(w.agg.errs+w.agg.slow) / total) / t.cfg.ErrObjective
	}
	return errRate, burn
}

// noteWorst offers one request to the bounded worst list. Entries past the
// horizon are purged first so a stale excursion cannot crowd out the live
// offenders a fresh breach needs to name. Caller holds t.mu.
func (t *SLOTracker) noteWorst(lat float64, trace, span uint64, at int64) {
	live := t.worst[:0]
	for _, e := range t.worst {
		if e.at >= at-int64(t.longest) {
			live = append(live, e)
		}
	}
	t.worst = live
	k := t.cfg.WorstK
	if len(t.worst) == k && lat <= t.worst[k-1].lat {
		return
	}
	e := worstEntry{lat: lat, trace: trace, span: span, at: at}
	if len(t.worst) < k {
		t.worst = append(t.worst, e)
	} else {
		t.worst[k-1] = e
	}
	for i := len(t.worst) - 1; i > 0 && t.worst[i].lat > t.worst[i-1].lat; i-- {
		t.worst[i], t.worst[i-1] = t.worst[i-1], t.worst[i]
	}
}

// SLOWindowStats is one window's contribution to a snapshot.
type SLOWindowStats struct {
	Window   time.Duration `json:"window_ns"`
	Total    int64         `json:"total"`
	Errors   int64         `json:"errors"`
	Slow     int64         `json:"slow"`
	P50      float64       `json:"p50_s"`
	P95      float64       `json:"p95_s"`
	P99      float64       `json:"p99_s"`
	ErrRate  float64       `json:"err_rate"`
	BurnRate float64       `json:"burn_rate"`
	Breached bool          `json:"breached"`
}

// WorstRequest is one entry of the worst-recent-requests list: the request's
// latency, its rendered trace/span ids (joining it to the access log and the
// flight recorder), and when it finished.
type WorstRequest struct {
	LatencySeconds float64 `json:"latency_s"`
	TraceID        string  `json:"trace_id"`
	SpanID         string  `json:"span_id"`
	AtUnixNano     int64   `json:"t_unix_ns"`
}

// SLOSnapshot is a point-in-time read of the tracker: every window's stats,
// the overall breach state, and the worst recent requests (newest horizons
// first, slowest requests first).
type SLOSnapshot struct {
	P99Objective float64          `json:"p99_objective_s"`
	ErrObjective float64          `json:"err_objective"`
	Windows      []SLOWindowStats `json:"windows"`
	Breached     bool             `json:"breached"`
	Breaches     int64            `json:"breaches"`
	Worst        []WorstRequest   `json:"worst,omitempty"`
}

// Snapshot returns the tracker's current verdicts (rotating windows to the
// injected clock first). Zero value on a nil tracker.
func (t *SLOTracker) Snapshot() SLOSnapshot {
	if t == nil {
		return SLOSnapshot{}
	}
	now := t.cfg.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, w := range t.windows {
		t.rotate(w, t.slotNS[i], now)
	}
	// Rotation may have retired the traffic that caused a breach; refresh the
	// verdict so an idle tracker recovers without needing new requests.
	t.evaluateLocked(now)
	return t.snapshotLocked(now)
}

// snapshotLocked builds a snapshot from current state. Caller holds t.mu.
func (t *SLOTracker) snapshotLocked(now time.Time) SLOSnapshot {
	snap := SLOSnapshot{
		P99Objective: t.cfg.P99Objective,
		ErrObjective: t.cfg.ErrObjective,
		Breached:     t.breached,
		Breaches:     t.breaches,
	}
	for _, w := range t.windows {
		errRate, burn := t.ratesLocked(w)
		snap.Windows = append(snap.Windows, SLOWindowStats{
			Window: w.dur, Total: w.agg.total, Errors: w.agg.errs, Slow: w.agg.slow,
			P50: t.quantileLocked(w, 0.50), P95: t.quantileLocked(w, 0.95),
			P99:     t.quantileLocked(w, 0.99),
			ErrRate: errRate, BurnRate: burn, Breached: w.breached,
		})
	}
	// Entries older than the longest window no longer explain the current
	// verdict; drop them from the view (the ring itself keeps them until
	// displaced, which is fine — they can only come back into view on a
	// clock that moved backwards, which the injected clocks never do).
	horizon := now.Add(-t.longest).UnixNano()
	for _, e := range t.worst {
		if e.at < horizon {
			continue
		}
		snap.Worst = append(snap.Worst, WorstRequest{
			LatencySeconds: e.lat, TraceID: hex16(e.trace), SpanID: hex16(e.span),
			AtUnixNano: e.at,
		})
	}
	return snap
}

// Breached reports the current overall breach state (false on nil).
func (t *SLOTracker) Breached() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.breached
}

// Breaches returns the number of ok→breach transitions so far (0 on nil).
func (t *SLOTracker) Breaches() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.breaches
}
