package obs

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// Profiler aggregates nestable Spans into a deterministic self-time profile
// tree: each distinct span path (e.g. train → forward → l0.attn) becomes one
// node accumulating total monotonic duration and invocation count across
// every goroutine that opened it. One instrumentation call therefore yields
// two artifacts — WriteProfileTree's flame-style text report and, when a
// TraceBuilder is attached (AttachTrace), a slice on a Chrome-trace track.
//
// The profiler follows the package's nil no-op contract: a nil *Profiler
// hands out inert Spans whose every method (including nested Start) costs
// zero allocations and zero time.Now calls, so hot loops are instrumented
// unconditionally. All methods are safe for concurrent use; sibling spans
// opened by parallel workers fold into the same tree node.
type Profiler struct {
	mu    sync.Mutex
	root  profNode
	trace *TraceBuilder
	track string
}

// profNode is one aggregated node of the profile tree. Children are keyed by
// span name; rendering sorts names, so the report layout depends only on the
// set of instrumentation points reached, never on goroutine interleaving.
type profNode struct {
	name     string
	total    time.Duration
	count    int64
	attrs    map[string]string
	children map[string]*profNode
}

func (n *profNode) child(name string) *profNode {
	c, ok := n.children[name]
	if !ok {
		if n.children == nil {
			n.children = map[string]*profNode{}
		}
		c = &profNode{name: name}
		n.children[name] = c
	}
	return c
}

// NewProfiler returns an empty enabled profiler.
func NewProfiler() *Profiler { return &Profiler{} }

// Enabled reports whether the profiler records anything (false on nil).
func (p *Profiler) Enabled() bool { return p != nil }

// AttachTrace mirrors every completed span as a Chrome-trace slice on the
// named track of tb, timed against tb's wall-clock origin, so the aggregate
// profile tree and the raw timeline come from the same instrumentation. A
// nil profiler or nil builder leaves the profiler unchanged.
func (p *Profiler) AttachTrace(tb *TraceBuilder, track string) {
	if p == nil || tb == nil {
		return
	}
	p.mu.Lock()
	p.trace, p.track = tb, track
	p.mu.Unlock()
}

// Start opens a top-level span. See Span.Start for nesting.
func (p *Profiler) Start(name string) Span {
	if p == nil {
		return Span{}
	}
	return Span{p: p, node: &p.root}.Start(name)
}

// Span is an in-flight node of the profile tree. The zero Span is inert:
// every method no-ops at zero cost, so handles can be threaded
// unconditionally. A Span is a value — copy it freely, but End it once.
type Span struct {
	p     *Profiler
	node  *profNode
	start time.Time
}

// Enabled reports whether the span records anything (false on the zero
// Span, i.e. when profiling is off). Call sites use it to skip
// span-name construction (fmt.Sprintf) on the disabled path.
func (s Span) Enabled() bool { return s.p != nil }

// Start opens a child span named name under s, beginning its monotonic
// timer. Inert on an inert parent.
func (s Span) Start(name string) Span {
	if s.p == nil {
		return Span{}
	}
	s.p.mu.Lock()
	node := s.node.child(name)
	s.p.mu.Unlock()
	return Span{p: s.p, node: node, start: time.Now()}
}

// End closes the span, folding its monotonic elapsed time into the tree and
// (with an attached TraceBuilder) emitting the corresponding trace slice.
// No-op on an inert span.
func (s Span) End() {
	if s.p == nil {
		return
	}
	d := time.Since(s.start)
	s.p.mu.Lock()
	s.node.total += d
	s.node.count++
	tb, track := s.p.trace, s.p.track
	s.p.mu.Unlock()
	if tb != nil {
		end := tb.Since()
		tb.Slice(track, s.node.name, end-d.Seconds(), d.Seconds())
	}
}

// Record folds an externally-measured sample — duration d over count
// invocations — into the child node named name, without opening a timer.
// Backward-pass attribution uses this: per-layer durations are measured
// inside the tape replay and deposited here afterwards. No-op when inert.
func (s Span) Record(name string, d time.Duration, count int64) {
	if s.p == nil {
		return
	}
	s.p.mu.Lock()
	c := s.node.child(name)
	c.total += d
	c.count += count
	s.p.mu.Unlock()
}

// Attr attaches a key=value annotation to the span's tree node (last write
// wins; shown in the profile report). No-op when inert.
func (s Span) Attr(key, value string) {
	if s.p == nil {
		return
	}
	s.p.mu.Lock()
	if s.node.attrs == nil {
		s.node.attrs = map[string]string{}
	}
	s.node.attrs[key] = value
	s.p.mu.Unlock()
}

// WriteProfileTree renders the aggregated spans as an indented self-time
// report: one line per node with total time, self time (total minus
// children, clamped at zero — parallel children can sum past their parent's
// wall time), invocation count, and attributes. Nodes print in depth-first
// name order, so the layout is deterministic for a given set of
// instrumentation points. No-op on a nil profiler.
func (p *Profiler) WriteProfileTree(w io.Writer) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var b strings.Builder
	var total time.Duration
	for _, c := range p.root.children {
		total += c.total
	}
	fmt.Fprintf(&b, "# span profile: %d root span(s), total %s\n", len(p.root.children), total)
	fmt.Fprintf(&b, "# %-42s %12s %12s %10s\n", "span", "total", "self", "count")
	writeProfNode(&b, &p.root, 0)
	_, err := io.WriteString(w, b.String())
	return err
}

func writeProfNode(b *strings.Builder, n *profNode, depth int) {
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := n.children[name]
		self := c.total
		for _, g := range c.children {
			self -= g.total
		}
		if self < 0 {
			self = 0
		}
		label := strings.Repeat("  ", depth) + c.name
		fmt.Fprintf(b, "%-44s %12s %12s %10d%s\n",
			label, c.total.Round(time.Microsecond), self.Round(time.Microsecond), c.count, attrString(c.attrs))
		writeProfNode(b, c, depth+1)
	}
}

func attrString(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + attrs[k]
	}
	return "  {" + strings.Join(parts, ",") + "}"
}

// WriteFile renders the profile tree to path (see WriteProfileTree). No-op
// on a nil profiler.
func (p *Profiler) WriteFile(path string) error {
	if p == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteProfileTree(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
