package obs

import (
	"io"
	"strconv"
	"strings"
)

// WriteProm renders the registry's current state in the Prometheus text
// exposition format (version 0.0.4): one `# TYPE` header per metric followed
// by its sample lines, metrics ordered by name, histograms expanded into
// cumulative `_bucket{le="…"}` lines plus `_sum` and `_count`. Names are
// sanitized to the Prometheus charset. A nil registry writes nothing.
//
// The non-finite guards on Gauge.Set and Histogram.Observe mean no sample
// value here is ever NaN or ±Inf; the only +Inf in the output is the
// conventional terminal bucket label, whose count always equals `_count`.
func (r *Registry) WriteProm(w io.Writer) error {
	return WritePromSnapshot(w, r.Snapshot())
}

// WritePromSnapshot renders an already-taken snapshot (see Registry.Snapshot)
// in the Prometheus text exposition format. The snapshot's name ordering is
// preserved, so two renders of the same snapshot are byte-identical.
func WritePromSnapshot(w io.Writer, snap []Metric) error {
	var b strings.Builder
	lastTyped := "" // base name whose TYPE header was last written
	for _, m := range snap {
		name := SanitizeMetricName(m.Name)
		switch m.Kind {
		case "counter", "gauge":
			// Labeled series of one metric share a single TYPE header; the
			// snapshot is sorted by name so they are adjacent.
			if name != lastTyped {
				b.WriteString("# TYPE ")
				b.WriteString(name)
				b.WriteByte(' ')
				b.WriteString(m.Kind)
				b.WriteByte('\n')
				lastTyped = name
			}
			b.WriteString(name)
			if m.Labels != "" {
				b.WriteByte('{')
				b.WriteString(m.Labels)
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatPromValue(m.Value))
			b.WriteByte('\n')
		case "histogram":
			// Labeled series of one histogram share a single TYPE header,
			// exactly like counters and gauges; the snapshot sort keeps them
			// adjacent.
			if name != lastTyped {
				b.WriteString("# TYPE ")
				b.WriteString(name)
				b.WriteString(" histogram\n")
				lastTyped = name
			}
			// bucketLabels is the inner label block each _bucket line carries
			// before its `le`; _sum and _count carry m.Labels alone.
			bucketLabels := ""
			suffix := ""
			if m.Labels != "" {
				bucketLabels = m.Labels + ","
				suffix = "{" + m.Labels + "}"
			}
			cum := int64(0)
			for _, bk := range m.Buckets {
				cum += bk.Count
				b.WriteString(name)
				b.WriteString("_bucket{")
				b.WriteString(bucketLabels)
				b.WriteString(`le="`)
				b.WriteString(formatPromValue(bk.LE))
				b.WriteString(`"} `)
				b.WriteString(strconv.FormatInt(cum, 10))
				writeExemplar(&b, bk.Exemplar)
				b.WriteByte('\n')
			}
			b.WriteString(name)
			b.WriteString("_bucket{")
			b.WriteString(bucketLabels)
			b.WriteString(`le="+Inf"} `)
			b.WriteString(strconv.FormatInt(m.Count, 10))
			writeExemplar(&b, m.OverflowEx)
			b.WriteByte('\n')
			b.WriteString(name)
			b.WriteString("_sum")
			b.WriteString(suffix)
			b.WriteByte(' ')
			b.WriteString(formatPromValue(m.Sum))
			b.WriteByte('\n')
			b.WriteString(name)
			b.WriteString("_count")
			b.WriteString(suffix)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(m.Count, 10))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeExemplar appends an OpenMetrics-style exemplar suffix
// (` # {trace_id="…",span_id="…"} value`) to a bucket line, joining the
// bucket to a concrete request trace. Nil exemplars write nothing, keeping
// the plain text exposition unchanged for untraced histograms.
func writeExemplar(b *strings.Builder, ex *Exemplar) {
	if ex == nil {
		return
	}
	b.WriteString(` # {trace_id="`)
	b.WriteString(ex.TraceID)
	b.WriteString(`",span_id="`)
	b.WriteString(ex.SpanID)
	b.WriteString(`"} `)
	b.WriteString(formatPromValue(ex.Value))
}

// SanitizeMetricName maps an arbitrary instrument name onto the Prometheus
// metric-name charset [a-zA-Z_:][a-zA-Z0-9_:]*: every invalid rune becomes
// '_', and a leading digit gains a '_' prefix. An empty name becomes "_".
func SanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			if b != nil {
				b = append(b, c)
			}
			continue
		}
		if b == nil { // first invalid byte: copy the clean prefix
			b = make([]byte, 0, len(name)+1)
			if c >= '0' && c <= '9' { // leading digit: keep it, prefixed
				b = append(b, '_', c)
				continue
			}
			b = append(b, name[:i]...)
		}
		b = append(b, '_')
	}
	if b == nil {
		return name
	}
	return string(b)
}

// formatPromValue renders a float the way Prometheus expects: shortest
// round-trip representation, integers without a decimal point.
func formatPromValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
