package obs

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// Metric names always start with predtop_ and never end with an underscore,
// so the source pattern skips the bare prefix strings the tools use to
// classify scraped series, and the doc pattern skips the prose mention of
// the `predtop_` prefix itself.
var (
	srcMetric = regexp.MustCompile(`"(predtop_[a-z0-9_]*[a-z0-9])"`)
	docMetric = regexp.MustCompile("`(predtop_[a-z0-9_]*[a-z0-9])`")
)

// TestMetricsDocSync pins docs/METRICS.md to the source of truth: every
// predtop_* metric name declared as a string literal in non-test Go files
// must appear (backticked) in the doc, and every name the doc lists must
// still exist in source. A metric added, renamed, or removed without
// touching the reference page fails here with the offending names.
func TestMetricsDocSync(t *testing.T) {
	root := filepath.Join("..", "..")
	inSource := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "runs", "results":
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range srcMetric.FindAllSubmatch(b, -1) {
			inSource[string(m[1])] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(inSource) == 0 {
		t.Fatal("no predtop_* metric literals found in source; is the walk rooted correctly?")
	}

	doc, err := os.ReadFile(filepath.Join(root, "docs", "METRICS.md"))
	if err != nil {
		t.Fatal(err)
	}
	inDoc := map[string]bool{}
	for _, m := range docMetric.FindAllSubmatch(doc, -1) {
		inDoc[string(m[1])] = true
	}

	var undocumented, stale []string
	for name := range inSource {
		if !inDoc[name] {
			undocumented = append(undocumented, name)
		}
	}
	for name := range inDoc {
		if !inSource[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(undocumented)
	sort.Strings(stale)
	if len(undocumented) > 0 {
		t.Errorf("metrics missing from docs/METRICS.md:\n  %s", strings.Join(undocumented, "\n  "))
	}
	if len(stale) > 0 {
		t.Errorf("docs/METRICS.md lists metrics no longer in source:\n  %s", strings.Join(stale, "\n  "))
	}
}
