package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter %d", c.Value())
	}
	if r.Counter("c") != c {
		t.Fatal("counter not shared by name")
	}

	g := r.Gauge("g")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge %v", g.Value())
	}

	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count %d", h.Count())
	}
	if math.Abs(h.Sum()-5060.5) > 1e-9 {
		t.Fatalf("hist sum %v", h.Sum())
	}
	var m Metric
	for _, s := range r.Snapshot() {
		if s.Name == "h" {
			m = s
		}
	}
	want := map[float64]int64{1: 1, 10: 2, 100: 1}
	for _, b := range m.Buckets {
		if want[b.LE] != b.Count {
			t.Fatalf("bucket le=%v count=%d", b.LE, b.Count)
		}
		delete(want, b.LE)
	}
	if len(want) != 0 || m.Overflow != 1 {
		t.Fatalf("buckets %+v overflow %d", m.Buckets, m.Overflow)
	}
}

func TestSnapshotSortedAndKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_count").Inc()
	r.Gauge("a_gauge").Set(1)
	r.Histogram("m_hist", nil).Observe(0.01)
	snap := r.Snapshot()
	// Every registry carries obs_dropped_samples_total from birth.
	if len(snap) != 4 {
		t.Fatalf("snapshot size %d", len(snap))
	}
	names := []string{snap[0].Name, snap[1].Name, snap[2].Name, snap[3].Name}
	want := []string{"a_gauge", "m_hist", DroppedSamplesMetric, "z_count"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("snapshot not sorted: %v", names)
		}
	}
	if snap[0].Kind != "gauge" || snap[1].Kind != "histogram" || snap[2].Kind != "counter" || snap[3].Kind != "counter" {
		t.Fatalf("kinds: %+v", snap)
	}
}

// TestNonFiniteSamplesDropped pins the exposition-safety guard: NaN and ±Inf
// never enter a gauge or histogram; each rejected sample bumps
// obs_dropped_samples_total instead.
func TestNonFiniteSamplesDropped(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(1.5)
	g.Set(math.NaN())
	g.Set(math.Inf(1))
	g.Set(math.Inf(-1))
	if g.Value() != 1.5 {
		t.Fatalf("gauge corrupted by non-finite Set: %v", g.Value())
	}
	h := r.Histogram("h", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	if h.Count() != 1 || h.Sum() != 0.5 {
		t.Fatalf("histogram corrupted: count %d sum %v", h.Count(), h.Sum())
	}
	if got := r.Counter(DroppedSamplesMetric).Value(); got != 5 {
		t.Fatalf("dropped-samples counter %d, want 5", got)
	}
}

// TestNilRegistryIsInert pins the no-op contract: a nil registry hands out
// nil instruments whose every method is safe and free.
func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c, g, h := r.Counter("c"), r.Gauge("g"), r.Histogram("h", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil instruments")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(1)
	h.Start().Stop()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

// TestNilInstrumentsZeroAlloc is the hot-path guarantee: observing through a
// disabled (nil) registry allocates nothing, so the minibatch loop can be
// instrumented unconditionally.
func TestNilInstrumentsZeroAlloc(t *testing.T) {
	var r *Registry
	c := r.Counter("train_batches_total")
	h := r.Histogram("train_batch_seconds", nil)
	g := r.Gauge("lr")
	allocs := testing.AllocsPerRun(1000, func() {
		tm := h.Start()
		c.Inc()
		c.Add(32)
		g.Set(1e-3)
		h.Observe(0.5)
		tm.Stop()
	})
	if allocs != 0 {
		t.Fatalf("nil instruments allocated %.1f per op", allocs)
	}
}

// TestEnabledHistogramZeroAllocObserve: even enabled, Observe stays
// allocation-free — only instrument creation allocates.
func TestEnabledHistogramZeroAllocObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", nil)
	c := r.Counter("c")
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(0.01)
		c.Inc()
	})
	if allocs != 0 {
		t.Fatalf("enabled Observe allocated %.1f per op", allocs)
	}
}

func TestHistogramTimer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t", nil)
	tm := h.Start()
	if d := tm.Stop(); d < 0 {
		t.Fatalf("negative duration %v", d)
	}
	if h.Count() != 1 {
		t.Fatalf("timer did not observe: count %d", h.Count())
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c").Inc()
				r.Histogram("h", nil).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 4000 {
		t.Fatalf("concurrent counter %d", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 4000 {
		t.Fatalf("concurrent histogram %d", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b, err := ExpBuckets(1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d: %v want %v", i, b[i], want[i])
		}
	}
}

// TestExpBucketsRejectsDegenerate: every argument that would yield a
// non-ascending or non-finite ladder must be an explicit error, and
// MustExpBuckets must panic on the same inputs.
func TestExpBucketsRejectsDegenerate(t *testing.T) {
	bad := []struct {
		lo, factor float64
		n          int
	}{
		{0, 2, 4},           // lo not positive
		{-1, 2, 4},          // negative lo
		{math.NaN(), 2, 4},  // NaN lo
		{math.Inf(1), 2, 4}, // infinite lo
		{1, 1, 4},           // factor not > 1
		{1, 0.5, 4},         // shrinking factor
		{1, math.NaN(), 4},  // NaN factor
		{1, 2, 0},           // no buckets
		{1, 2, -3},          // negative count
		{1e300, 1e300, 4},   // overflows to +Inf mid-ladder
	}
	for _, c := range bad {
		if _, err := ExpBuckets(c.lo, c.factor, c.n); err == nil {
			t.Errorf("ExpBuckets(%v, %v, %d): want error, got none", c.lo, c.factor, c.n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustExpBuckets did not panic on invalid input")
		}
	}()
	MustExpBuckets(0, 2, 4)
}

func TestGaugeAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("after +3/-1: %v, want 2", got)
	}
	g.Add(math.NaN())
	g.Add(math.Inf(1))
	if got := g.Value(); got != 2 {
		t.Fatalf("non-finite delta changed value: %v", got)
	}
	if got := r.Counter(DroppedSamplesMetric).Value(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	var nilG *Gauge
	nilG.Add(1) // must not panic
}

func TestGaugeAddConcurrent(t *testing.T) {
	g := NewRegistry().Gauge("depth")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("paired adds did not cancel: %v", got)
	}
}

func TestHistogramObserveEx(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.01, 0.1})
	h.ObserveEx(0.005, 0xabc, 0xdef) // first bucket
	h.ObserveEx(0.5, 0x123, 0x456)   // overflow
	h.ObserveEx(0.006, 0, 0)         // zero ids: counted, no exemplar
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	var m Metric
	for _, s := range r.Snapshot() {
		if s.Name == "lat" {
			m = s
		}
	}
	if len(m.Buckets) != 1 || m.Buckets[0].Exemplar == nil {
		t.Fatalf("bucket exemplar missing: %+v", m.Buckets)
	}
	ex := m.Buckets[0].Exemplar
	if ex.TraceID != hex16(0xabc) || ex.SpanID != hex16(0xdef) || ex.Value != 0.005 {
		t.Fatalf("bucket exemplar = %+v", ex)
	}
	if m.OverflowEx == nil || m.OverflowEx.TraceID != hex16(0x123) {
		t.Fatalf("overflow exemplar = %+v", m.OverflowEx)
	}
	// Last-writer-wins within a bucket.
	h.ObserveEx(0.004, 0x999, 0x888)
	for _, s := range NewRegistrySnapshotOf(r, "lat").Buckets {
		if s.Exemplar.TraceID != hex16(0x999) {
			t.Fatalf("exemplar not last-writer-wins: %+v", s.Exemplar)
		}
	}
	var nilH *Histogram
	nilH.ObserveEx(1, 1, 1) // must not panic
}

func TestTimerStopEx(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dur", []float64{10}) // everything lands in the first bucket
	if s := h.Start().StopEx(0x1111, 0x2222); s < 0 {
		t.Fatalf("StopEx returned %v", s)
	}
	m := NewRegistrySnapshotOf(r, "dur")
	if m.Count != 1 {
		t.Fatalf("count = %d, want 1", m.Count)
	}
	if len(m.Buckets) != 1 || m.Buckets[0].Exemplar == nil {
		t.Fatalf("StopEx recorded no exemplar: %+v", m.Buckets)
	}
	if ex := m.Buckets[0].Exemplar; ex.TraceID != hex16(0x1111) || ex.SpanID != hex16(0x2222) {
		t.Fatalf("StopEx exemplar = %+v", ex)
	}
	// Inert timer: no histogram, no panic, zero return.
	var nilH *Histogram
	if s := nilH.Start().StopEx(1, 1); s != 0 {
		t.Fatalf("inert StopEx returned %v", s)
	}
}

// NewRegistrySnapshotOf returns the named metric from r's snapshot (test helper).
func NewRegistrySnapshotOf(r *Registry, name string) Metric {
	for _, m := range r.Snapshot() {
		if m.Name == name {
			return m
		}
	}
	return Metric{}
}
