package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// FlightRecorder keeps the last N telemetry events of a run in a fixed-size
// ring buffer so that a crash — worker panic, SIGQUIT, wedged run — can be
// turned into an attributable post-mortem instead of a bare stack. Writers
// append with Note (lock-free slot reservation via an atomic sequence, then a
// per-slot mutex; no heap allocation), and Dump serializes the surviving
// window as JSONL together with all goroutine stacks.
//
// Every event carries the run's TraceContext ids, so a flight dump joins the
// same grep as the metrics exposition, the JSONL event log, and the Chrome
// trace. A nil *FlightRecorder is fully inert.
type FlightRecorder struct {
	slots []flightSlot
	seq   atomic.Uint64
	tc    atomic.Pointer[TraceContext]

	mu       sync.Mutex
	flushers []func()
}

type flightSlot struct {
	mu sync.Mutex
	ev FlightEvent
}

// FlightEvent is one ring-buffer entry. Trace/Span hold the raw 64-bit ids
// (rendered as hex only at dump time, keeping Note allocation-free).
type FlightEvent struct {
	Seq   uint64
	T     int64 // unix nanoseconds
	Trace uint64
	Span  uint64
	Kind  string
	Msg   string
}

// DefaultFlightCapacity is the ring size NewFlightRecorder uses for
// capacity <= 0: comfortably above the ≥64-event post-mortem window the
// acceptance bar asks for, small enough to be cache-resident.
const DefaultFlightCapacity = 256

// NewFlightRecorder returns a recorder keeping the last capacity events
// (capacity <= 0 selects DefaultFlightCapacity).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{slots: make([]flightSlot, capacity)}
}

// SetTraceContext attaches the run's trace identity; subsequent Notes carry
// its trace/span ids. Safe to call concurrently with Note. No-op on nil.
func (f *FlightRecorder) SetTraceContext(tc *TraceContext) {
	if f == nil {
		return
	}
	f.tc.Store(tc)
}

// Enabled reports whether the recorder is live — the guard call sites use
// before building a formatted message for Note.
func (f *FlightRecorder) Enabled() bool { return f != nil }

// Note appends one event to the ring, overwriting the oldest when full.
// Allocation-free (kind and msg should be static or pre-built strings); no-op
// on a nil recorder.
func (f *FlightRecorder) Note(kind, msg string) {
	if f == nil {
		return
	}
	seq := f.seq.Add(1) - 1
	slot := &f.slots[seq%uint64(len(f.slots))]
	var trace, span uint64
	if tc := f.tc.Load(); tc != nil {
		trace, span = tc.traceID, tc.spanID
	}
	slot.mu.Lock()
	slot.ev = FlightEvent{Seq: seq, T: time.Now().UnixNano(), Trace: trace, Span: span, Kind: kind, Msg: msg}
	slot.mu.Unlock()
}

// Len returns the number of events currently held (0 on nil).
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	n := f.seq.Load()
	if n > uint64(len(f.slots)) {
		return len(f.slots)
	}
	return int(n)
}

// OnDump registers fn to run at the start of every Dump — the hook the event
// sink uses to flush its buffer so the JSONL log is complete before the
// post-mortem is read. No-op on nil.
func (f *FlightRecorder) OnDump(fn func()) {
	if f == nil || fn == nil {
		return
	}
	f.mu.Lock()
	f.flushers = append(f.flushers, fn)
	f.mu.Unlock()
}

// flightRecord is the JSONL shape of one dumped event.
type flightRecord struct {
	Event   string `json:"event"`
	Seq     uint64 `json:"seq"`
	TUnixNs int64  `json:"t_unix_ns"`
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
	Kind    string `json:"kind"`
	Msg     string `json:"msg,omitempty"`
}

// Dump writes the recorder's current window as JSONL: a flight_dump header
// (trace id, event count, overwritten-event count), each surviving event in
// sequence order, and a final flight_stacks record carrying every goroutine
// stack. Registered OnDump flushers run first. No-op on nil.
func (f *FlightRecorder) Dump(w io.Writer) error {
	if f == nil || w == nil {
		return nil
	}
	f.mu.Lock()
	flushers := append([]func(){}, f.flushers...)
	f.mu.Unlock()
	for _, fn := range flushers {
		fn()
	}

	// Snapshot the window. Events written concurrently with the snapshot may
	// or may not appear — a post-mortem needs recency, not atomicity.
	total := f.seq.Load()
	n := uint64(len(f.slots))
	start := uint64(0)
	dropped := uint64(0)
	if total > n {
		start = total - n
		dropped = total - n
	}
	events := make([]FlightEvent, 0, total-start)
	for s := start; s < total; s++ {
		slot := &f.slots[s%n]
		slot.mu.Lock()
		ev := slot.ev
		slot.mu.Unlock()
		// A slot whose Seq disagrees holds an event from a lapped-and-not-yet
		// -rewritten generation (the writer reserved s but has not finished);
		// skip it rather than report a stale sequence.
		if ev.Seq == s {
			events = append(events, ev)
		}
	}

	enc := json.NewEncoder(w)
	var traceID string
	if tc := f.tc.Load(); tc != nil {
		traceID = tc.TraceID()
	}
	header := struct {
		Event   string `json:"event"`
		TraceID string `json:"trace_id,omitempty"`
		Events  int    `json:"events"`
		Dropped uint64 `json:"dropped"`
	}{"flight_dump", traceID, len(events), dropped}
	if err := enc.Encode(header); err != nil {
		return err
	}
	for _, ev := range events {
		rec := flightRecord{
			Event: "flight_event", Seq: ev.Seq, TUnixNs: ev.T,
			Kind: ev.Kind, Msg: ev.Msg,
		}
		if ev.Trace != 0 {
			rec.TraceID = hex16(ev.Trace)
			rec.SpanID = hex16(ev.Span)
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	stacks := struct {
		Event   string `json:"event"`
		TraceID string `json:"trace_id,omitempty"`
		Stacks  string `json:"stacks"`
	}{"flight_stacks", traceID, string(allStacks())}
	return enc.Encode(stacks)
}

// allStacks returns every goroutine's stack, growing the buffer until
// runtime.Stack fits.
func allStacks() []byte {
	buf := make([]byte, 64<<10)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return buf[:n]
		}
		buf = make([]byte, 2*len(buf))
	}
}

// PanicHook returns a hook suitable for parallel.SetPanicHook: it notes the
// panic into the ring and dumps the flight window (plus goroutine stacks) to
// w before the panic is re-raised on the caller's goroutine. Nil-safe — a nil
// recorder yields a nil hook, which parallel treats as "no hook".
func (f *FlightRecorder) PanicHook(w io.Writer) func(recovered any, stack []byte) {
	if f == nil {
		return nil
	}
	return func(recovered any, stack []byte) {
		f.Note("panic", fmt.Sprint(recovered))
		f.Dump(w)
	}
}

// HandleSignals arranges for a SIGQUIT to dump the flight window to w (after
// which the default Go behaviour — process exit with stacks — is restored and
// re-raised). It returns a stop function that uninstalls the handler. No-op
// (returning a no-op stop) on a nil recorder.
func (f *FlightRecorder) HandleSignals(w io.Writer) func() {
	if f == nil || w == nil {
		return func() {}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				f.Note("signal", "SIGQUIT")
				f.Dump(w)
				// Restore default handling and re-raise so the run still
				// exits with the standard Go SIGQUIT stack dump.
				signal.Reset(syscall.SIGQUIT)
				syscall.Kill(syscall.Getpid(), syscall.SIGQUIT)
				return
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
