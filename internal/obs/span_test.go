package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNestingBuildsTree(t *testing.T) {
	p := NewProfiler()
	train := p.Start("train")
	fwd := train.Start("forward")
	fwd.Start("l0.attn").End()
	fwd.Start("l0.ffn").End()
	fwd.Start("l0.attn").End() // second visit folds into the same node
	fwd.End()
	train.End()

	p.mu.Lock()
	defer p.mu.Unlock()
	tr := p.root.children["train"]
	if tr == nil || tr.count != 1 {
		t.Fatalf("train node: %+v", tr)
	}
	f := tr.children["forward"]
	if f == nil || len(f.children) != 2 {
		t.Fatalf("forward node: %+v", f)
	}
	attn := f.children["l0.attn"]
	if attn == nil || attn.count != 2 {
		t.Fatalf("l0.attn count: %+v", attn)
	}
	if f.total < attn.total+f.children["l0.ffn"].total {
		t.Fatalf("parent total %v < sum of children", f.total)
	}
}

// TestWriteProfileTreeDeterministic: Record-fed durations render to an exact
// report — children name-sorted, self = total − Σ(children) clamped at zero,
// attributes sorted.
func TestWriteProfileTreeDeterministic(t *testing.T) {
	p := NewProfiler()
	root := p.Start("train")
	root.Attr("workers", "4")
	root.Attr("epochs", "2")
	root.Record("forward", 30*time.Millisecond, 6)
	root.Record("backward", 50*time.Millisecond, 6)
	root.End()
	// Overwrite the timed root total so the report is fully deterministic.
	p.mu.Lock()
	p.root.children["train"].total = 100 * time.Millisecond
	p.mu.Unlock()

	var buf bytes.Buffer
	if err := p.WriteProfileTree(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := strings.Join([]string{
		"# span profile: 1 root span(s), total 100ms",
		"# span                                              total         self      count",
		"train                                               100ms         20ms          1  {epochs=2,workers=4}",
		"  backward                                           50ms         50ms          6",
		"  forward                                            30ms         30ms          6",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("profile tree mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	var again bytes.Buffer
	if err := p.WriteProfileTree(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != got {
		t.Fatal("profile tree render is not deterministic")
	}
}

// TestSpanSelfTimeClampsAtZero: parallel children can sum past the parent's
// wall time; self time must clamp at zero rather than go negative.
func TestSpanSelfTimeClampsAtZero(t *testing.T) {
	p := NewProfiler()
	s := p.Start("par")
	s.Record("w0", 80*time.Millisecond, 1)
	s.Record("w1", 80*time.Millisecond, 1)
	s.End()
	p.mu.Lock()
	p.root.children["par"].total = 90 * time.Millisecond
	p.mu.Unlock()
	var buf bytes.Buffer
	if err := p.WriteProfileTree(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "par                                                  90ms           0s          1") {
		t.Fatalf("self time not clamped:\n%s", buf.String())
	}
}

// TestInertSpanZeroAlloc pins the no-op contract for profiling: a nil
// profiler hands out zero Spans whose whole API costs nothing, so models and
// training loops instrument unconditionally.
func TestInertSpanZeroAlloc(t *testing.T) {
	var p *Profiler
	if p.Enabled() {
		t.Fatal("nil profiler must report disabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s := p.Start("train")
		c := s.Start("forward")
		c.Record("l0", time.Millisecond, 1)
		c.Attr("k", "v")
		c.End()
		if s.Enabled() {
			panic("inert span claims enabled")
		}
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("inert spans allocated %.1f per op", allocs)
	}
	if err := p.WriteProfileTree(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteFile("/nonexistent/dir/profile.txt"); err != nil {
		t.Fatal("nil profiler WriteFile must be a no-op")
	}
	p.AttachTrace(NewTrace(), "spans")
}

// TestSpanConcurrentSiblingsFold: sibling spans opened by parallel workers
// fold into a single tree node (run under -race).
func TestSpanConcurrentSiblingsFold(t *testing.T) {
	p := NewProfiler()
	root := p.Start("batch")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := root.Start("sample")
				s.Record("vjp", time.Microsecond, 1)
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	p.mu.Lock()
	defer p.mu.Unlock()
	sample := p.root.children["batch"].children["sample"]
	if sample == nil || sample.count != 800 {
		t.Fatalf("sample node: %+v", sample)
	}
	if vjp := sample.children["vjp"]; vjp == nil || vjp.count != 800 || vjp.total != 800*time.Microsecond {
		t.Fatalf("vjp node: %+v", vjp)
	}
}

// TestAttachTraceMirrorsSpans: with a TraceBuilder attached, every End also
// lands a slice on the chosen track.
func TestAttachTraceMirrorsSpans(t *testing.T) {
	p := NewProfiler()
	tb := NewTrace()
	p.AttachTrace(tb, "spans")
	s := p.Start("opt")
	s.Start("step").End()
	s.End()
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"name":"spans"`, `"name":"opt"`, `"name":"step"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %s:\n%s", want, out)
		}
	}
}
