package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// TraceBuilder accumulates Chrome-tracing events (the JSON array format
// loadable in Perfetto or chrome://tracing) across named tracks. Tracks are
// created on first use and rendered with `"M"` thread_name metadata events,
// so a trace reads "epochs", "stage 1", "PredTOP-Tran" instead of bare
// numeric thread ids. Slices carry explicit timestamps (simulated schedules,
// cumulative training wall time); Begin/End spans use wall-clock time since
// the builder was created, so both kinds land on one coherent timeline.
//
// All methods are safe for concurrent use and no-ops on a nil builder.
type TraceBuilder struct {
	mu      sync.Mutex
	epoch   time.Time
	traceID string
	tracks  map[string]int
	order   []string
	events  []traceEvent
}

// traceEvent is one Chrome-tracing event; struct (not map) encoding keeps the
// field order stable for golden-file tests.
type traceEvent struct {
	Name  string     `json:"name"`
	Phase string     `json:"ph"`
	TS    float64    `json:"ts"`
	Dur   float64    `json:"dur,omitempty"`
	PID   int        `json:"pid"`
	TID   int        `json:"tid"`
	Args  *traceArgs `json:"args,omitempty"`
}

type traceArgs struct {
	Name    string `json:"name"`
	TraceID string `json:"trace_id,omitempty"`
}

const tracePID = 1

// NewTrace returns an empty builder; its wall-clock origin (for Begin/End
// spans) is the moment of creation.
func NewTrace() *TraceBuilder {
	return &TraceBuilder{epoch: time.Now(), tracks: map[string]int{}}
}

// SetTraceID stamps the run's trace id onto the trace: Render carries it in
// the process_name metadata event's args, so grepping a trace file for the id
// finds the run. No-op on nil.
func (t *TraceBuilder) SetTraceID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.traceID = id
	t.mu.Unlock()
}

// tid returns the track's thread id, registering it on first use. Caller
// holds t.mu.
func (t *TraceBuilder) tid(track string) int {
	id, ok := t.tracks[track]
	if !ok {
		id = len(t.tracks) + 1
		t.tracks[track] = id
		t.order = append(t.order, track)
	}
	return id
}

// Slice appends a complete ("X") event on the named track with explicit
// timing: startSec seconds from the trace origin, durSec seconds long.
func (t *TraceBuilder) Slice(track, name string, startSec, durSec float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, traceEvent{
		Name: name, Phase: "X",
		TS: startSec * 1e6, Dur: durSec * 1e6,
		PID: tracePID, TID: t.tid(track),
	})
}

// Instant appends an instant ("i") event at now on the named track (e.g. an
// early-stop marker).
func (t *TraceBuilder) Instant(track, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, traceEvent{
		Name: name, Phase: "i",
		TS:  time.Since(t.epoch).Seconds() * 1e6,
		PID: tracePID, TID: t.tid(track),
	})
}

// Since returns seconds elapsed since the trace origin (0 on nil) — the time
// base explicit Slices should offset from when mixing with Begin/End spans.
func (t *TraceBuilder) Since() float64 {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch).Seconds()
}

// Begin opens a wall-clock span on the named track; the returned TraceSpan's
// End appends the completed slice. An inert TraceSpan (nil builder) costs
// nothing.
func (t *TraceBuilder) Begin(track, name string) TraceSpan {
	if t == nil {
		return TraceSpan{}
	}
	return TraceSpan{t: t, track: track, name: name, start: time.Since(t.epoch)}
}

// TraceSpan is an in-flight wall-clock trace slice (see TraceBuilder.Begin).
// Unlike the hierarchical Span (span.go), it records a single timeline slice
// and performs no aggregation.
type TraceSpan struct {
	t           *TraceBuilder
	track, name string
	start       time.Duration
}

// End completes the span. No-op on an inert span.
func (s TraceSpan) End() {
	if s.t == nil {
		return
	}
	end := time.Since(s.t.epoch)
	s.t.Slice(s.track, s.name, s.start.Seconds(), (end - s.start).Seconds())
}

// Render writes the trace as a Chrome-tracing JSON array: thread_name
// metadata events first (in track registration order), then every recorded
// event in insertion order, one event per line for diffability.
func (t *TraceBuilder) Render(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	events := make([]traceEvent, 0, len(t.order)+len(t.events)+1)
	events = append(events, traceEvent{
		Name: "process_name", Phase: "M", PID: tracePID,
		Args: &traceArgs{Name: "predtop", TraceID: t.traceID},
	})
	for _, track := range t.order {
		events = append(events, traceEvent{
			Name: "thread_name", Phase: "M",
			PID: tracePID, TID: t.tracks[track],
			Args: &traceArgs{Name: track},
		})
	}
	events = append(events, t.events...)
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ","
		if i == len(events)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "  %s%s\n", b, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// WriteFile renders the trace to path (see Render). No-op on nil.
func (t *TraceBuilder) WriteFile(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Observer bundles the observability outputs a long-running path can report
// to. Any field — or the Observer itself — may be nil; the accessor methods
// make a nil Observer fully inert, so APIs thread a single *Observer instead
// of four optional parameters.
type Observer struct {
	Metrics *Registry
	Events  *Sink
	Trace   *TraceBuilder
	Prof    *Profiler
	Acc     *AccuracyMonitor
	Flight  *FlightRecorder
	Ctx     *TraceContext
}

// Registry returns the metrics registry (nil when absent).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Sink returns the event sink (nil when absent).
func (o *Observer) Sink() *Sink {
	if o == nil {
		return nil
	}
	return o.Events
}

// Tracer returns the trace builder (nil when absent).
func (o *Observer) Tracer() *TraceBuilder {
	if o == nil {
		return nil
	}
	return o.Trace
}

// Profiler returns the span profiler (nil when absent).
func (o *Observer) Profiler() *Profiler {
	if o == nil {
		return nil
	}
	return o.Prof
}

// Accuracy returns the accuracy monitor (nil when absent).
func (o *Observer) Accuracy() *AccuracyMonitor {
	if o == nil {
		return nil
	}
	return o.Acc
}

// Recorder returns the flight recorder (nil when absent).
func (o *Observer) Recorder() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.Flight
}

// TraceContext returns the run's trace context (nil when absent).
func (o *Observer) TraceContext() *TraceContext {
	if o == nil {
		return nil
	}
	return o.Ctx
}
