package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServerConfig configures a telemetry HTTP server (see StartServer).
type ServerConfig struct {
	// Addr is the TCP listen address, e.g. ":9090" or "127.0.0.1:0" (port 0
	// picks a free port — read it back from Server.Addr).
	Addr string
	// Registry backs GET /metrics. A nil registry serves an empty (but
	// valid) exposition.
	Registry *Registry
	// Flight backs GET /debug/flightrecorder: the recorder's current window
	// (plus goroutine stacks) streamed as JSONL. Nil serves 404.
	Flight *FlightRecorder
	// Handlers mounts additional patterns onto the telemetry mux, so a
	// service (e.g. the predtop-serve daemon) can expose its own endpoints
	// next to /metrics and /debug/pprof/ on one listener. Patterns that
	// collide with the built-in telemetry endpoints are ignored — the
	// telemetry contract always wins.
	Handlers map[string]http.Handler
	// ShutdownTimeout bounds the graceful-shutdown drain once the context is
	// cancelled or Close is called (default 5s); connections still open after
	// the deadline are dropped.
	ShutdownTimeout time.Duration
}

// Server is a live telemetry endpoint: GET /metrics serves the registry in
// Prometheus text exposition format, GET /healthz answers "ok", and the
// stdlib profiling handlers are mounted under /debug/pprof/. It exists so a
// long predtop-train or predtop-plan run can be inspected while it runs
// instead of only after it exits.
type Server struct {
	ln      net.Listener
	srv     *http.Server
	timeout time.Duration
	done    chan struct{}
	err     error // Serve's terminal error, readable after done closes
}

// StartServer binds cfg.Addr and serves telemetry until ctx is cancelled or
// Close is called, whichever comes first; either path drains connections for
// at most cfg.ShutdownTimeout. The returned Server is already serving.
func StartServer(ctx context.Context, cfg ServerConfig) (*Server, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("obs: StartServer needs a listen address")
	}
	if cfg.ShutdownTimeout <= 0 {
		cfg.ShutdownTimeout = 5 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", cfg.Addr, err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		cfg.Registry.WriteProm(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Flight == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		cfg.Flight.Dump(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	reserved := map[string]bool{
		"/metrics": true, "/healthz": true, "/debug/flightrecorder": true,
		"/debug/pprof/": true, "/debug/pprof/cmdline": true,
		"/debug/pprof/profile": true, "/debug/pprof/symbol": true,
		"/debug/pprof/trace": true,
	}
	for pattern, h := range cfg.Handlers {
		if pattern == "" || h == nil || reserved[pattern] {
			continue
		}
		mux.Handle(pattern, h)
	}

	s := &Server{
		ln:      ln,
		srv:     &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second},
		timeout: cfg.ShutdownTimeout,
		done:    make(chan struct{}),
	}
	serveCtx, cancel := context.WithCancel(ctx)
	go func() {
		defer close(s.done)
		err := s.srv.Serve(ln)
		if err != nil && err != http.ErrServerClosed {
			s.err = err
		}
		cancel() // Serve failed on its own: stop the watcher too
	}()
	go func() {
		<-serveCtx.Done()
		s.shutdown()
	}()
	return s, nil
}

// shutdown drains within the configured timeout, then force-closes.
func (s *Server) shutdown() {
	ctx, cancel := context.WithTimeout(context.Background(), s.timeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		s.srv.Close()
	}
}

// Addr returns the bound listen address (with the real port when the config
// asked for :0). Empty on a nil server.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns "http://<addr>" for the bound address, convenient for logs.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close stops the server (graceful within the shutdown timeout) and waits
// for the serve loop to exit, returning its terminal error if any. Safe to
// call more than once and on a nil server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.shutdown()
	<-s.done
	return s.err
}

// Wait blocks until the server has stopped (context cancellation, Close, or
// a serve error) and returns the terminal error if any. Nil-safe.
func (s *Server) Wait() error {
	if s == nil {
		return nil
	}
	<-s.done
	return s.err
}
