package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestAccuracyWelfordMeanMatchesOffline: the streaming mean must equal the
// offline MRE (mean absolute relative error) of the same residuals, exactly —
// it is the figure the paper's tables report.
func TestAccuracyWelfordMeanMatchesOffline(t *testing.T) {
	m := NewAccuracyMonitor(AccuracyConfig{})
	key := AccuracyKey{Family: "tran", Mesh: "2x8", Op: "GPT3"}
	preds := []float64{1.0, 2.2, 0.9, 4.0, 10.0, 0.33}
	acts := []float64{1.1, 2.0, 1.0, 4.4, 8.0, 0.30}
	sum := 0.0
	for i := range preds {
		m.Observe(key, preds[i], acts[i])
		sum += math.Abs(preds[i]-acts[i]) / acts[i] * 100
	}
	want := sum / float64(len(preds))
	st, ok := m.Stats(key)
	if !ok {
		t.Fatal("no stats")
	}
	if st.N != int64(len(preds)) {
		t.Fatalf("N %d", st.N)
	}
	if math.Abs(st.MeanPct-want) > 1e-9 {
		t.Fatalf("streaming mean %.12f, offline MRE %.12f", st.MeanPct, want)
	}
	if st.MaxPct < st.P95Pct || st.P95Pct < st.P50Pct {
		t.Fatalf("quantiles not ordered: p50 %.3f p95 %.3f max %.3f", st.P50Pct, st.P95Pct, st.MaxPct)
	}
}

// TestAccuracyQuantileSketchTolerance: sketch quantiles land within one
// bucket width (~21% relative) of the exact quantile.
func TestAccuracyQuantileSketchTolerance(t *testing.T) {
	m := NewAccuracyMonitor(AccuracyConfig{})
	key := AccuracyKey{Family: "f"}
	// 100 residuals of exactly i percent (actual 100, predicted 100+i).
	for i := 1; i <= 100; i++ {
		m.Observe(key, 100+float64(i), 100)
	}
	st, _ := m.Stats(key)
	// Exact P50 = 50%, P95 = 95%; the sketch reports the containing bucket's
	// upper bound, so at most one ladder step (×1.21) above.
	if st.P50Pct < 50 || st.P50Pct > 50*1.21 {
		t.Fatalf("P50 %.3f outside [50, %.3f]", st.P50Pct, 50*1.21)
	}
	if st.P95Pct < 95 || st.P95Pct > 95*1.21 {
		t.Fatalf("P95 %.3f outside [95, %.3f]", st.P95Pct, 95*1.21)
	}
	if st.MaxPct != 100 {
		t.Fatalf("max %.3f, want 100", st.MaxPct)
	}
}

// TestAccuracyDriftEdgeTriggered: the drift counter fires once per excursion
// above the threshold, re-arming only after the running mean recovers.
func TestAccuracyDriftEdgeTriggered(t *testing.T) {
	r := NewRegistry()
	var logBuf bytes.Buffer
	m := NewAccuracyMonitor(AccuracyConfig{
		DriftThresholdPct: 10, MinSamples: 1,
		Metrics: r, Log: NewLogger(&logBuf, false),
	})
	key := AccuracyKey{Family: "f", Mesh: "1x2", Op: "o"}
	labels := []Label{{"family", "f"}, {"mesh", "1x2"}, {"op", "o"}}
	drift := r.CounterWith(AccuracyDriftMetric, labels...)

	m.Observe(key, 150, 100) // mean 50% > 10 → drift fires
	if drift.Value() != 1 {
		t.Fatalf("drift after excursion: %d", drift.Value())
	}
	m.Observe(key, 160, 100) // still above: edge-triggered, no second fire
	if drift.Value() != 1 {
		t.Fatalf("drift re-fired while high: %d", drift.Value())
	}
	// Drown the mean below the threshold to re-arm…
	for i := 0; i < 40; i++ {
		m.Observe(key, 100, 100)
	}
	if st, _ := m.Stats(key); st.MeanPct > 10 || st.Drifted {
		t.Fatalf("mean %.2f drifted=%v after recovery", st.MeanPct, st.Drifted)
	}
	// …then cross again with a huge residual: second excursion, second count.
	m.Observe(key, 100000, 100)
	if drift.Value() != 2 {
		t.Fatalf("drift after second excursion: %d", drift.Value())
	}
	if !strings.Contains(logBuf.String(), "accuracy drift") {
		t.Fatalf("drift warning not logged: %q", logBuf.String())
	}
}

// TestAccuracyLabeledExport: gauges land in the registry under the group's
// family/mesh/op labels and survive into the Prometheus exposition.
func TestAccuracyLabeledExport(t *testing.T) {
	r := NewRegistry()
	m := NewAccuracyMonitor(AccuracyConfig{Metrics: r})
	m.Observe(AccuracyKey{Family: "tran", Mesh: "2x8", Op: "GPT3"}, 110, 100)
	m.Observe(AccuracyKey{Family: "gcn", Mesh: "2x8", Op: "GPT3"}, 130, 100)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		`predtop_accuracy_mre{family="tran",mesh="2x8",op="GPT3"} 10`,
		`predtop_accuracy_mre{family="gcn",mesh="2x8",op="GPT3"} 30`,
		`predtop_accuracy_samples_total{family="tran",mesh="2x8",op="GPT3"} 1`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing %q in exposition:\n%s", line, out)
		}
	}
	// One TYPE header per base name, even with two labeled series.
	if got := strings.Count(out, "# TYPE predtop_accuracy_mre gauge"); got != 1 {
		t.Fatalf("%d TYPE headers for predtop_accuracy_mre:\n%s", got, out)
	}
}

// TestAccuracyRejectsDegenerate: non-positive actuals and non-finite inputs
// never enter a group.
func TestAccuracyRejectsDegenerate(t *testing.T) {
	m := NewAccuracyMonitor(AccuracyConfig{})
	key := AccuracyKey{}
	m.Observe(key, 1, 0)
	m.Observe(key, 1, -5)
	m.Observe(key, math.NaN(), 1)
	m.Observe(key, math.Inf(1), 1)
	m.Observe(key, 1, math.Inf(1))
	if _, ok := m.Stats(key); ok {
		t.Fatal("degenerate observations created a group")
	}
}

// TestAccuracyEmitTo: one sorted JSONL record per group.
func TestAccuracyEmitTo(t *testing.T) {
	m := NewAccuracyMonitor(AccuracyConfig{})
	m.Observe(AccuracyKey{Family: "z"}, 110, 100)
	m.Observe(AccuracyKey{Family: "a"}, 120, 100)
	var buf bytes.Buffer
	s := NewSink(&buf)
	m.EmitTo(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d accuracy records", len(lines))
	}
	if !strings.Contains(lines[0], `"family":"a"`) || !strings.Contains(lines[1], `"family":"z"`) {
		t.Fatalf("records not key-sorted:\n%s", buf.String())
	}
	if !strings.Contains(lines[0], `"event":"accuracy"`) {
		t.Fatalf("bad record shape: %q", lines[0])
	}
}

// TestNilAccuracyMonitorZeroAlloc extends the disabled-path guard: a nil
// monitor's Observe is free, so eval paths can call it unconditionally.
func TestNilAccuracyMonitorZeroAlloc(t *testing.T) {
	var m *AccuracyMonitor
	key := AccuracyKey{Family: "f", Mesh: "2x8", Op: "GPT3"}
	allocs := testing.AllocsPerRun(1000, func() {
		m.Observe(key, 1.1, 1.0)
	})
	if allocs != 0 {
		t.Fatalf("nil monitor allocated %.1f per op", allocs)
	}
	if _, ok := m.Stats(key); ok {
		t.Fatal("nil monitor must have no stats")
	}
	if m.Keys() != nil {
		t.Fatal("nil monitor Keys must be nil")
	}
	m.EmitTo(NewSink(&bytes.Buffer{}))
}
