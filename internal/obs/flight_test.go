package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// decodeFlightDump parses a Dump's JSONL output into its header, events, and
// stacks records.
func decodeFlightDump(t *testing.T, out []byte) (header map[string]any, events []map[string]any, stacks map[string]any) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) < 2 {
		t.Fatalf("dump too short: %d lines", len(lines))
	}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("dump line %d invalid: %v (%q)", i, err, line)
		}
		switch rec["event"] {
		case "flight_dump":
			header = rec
		case "flight_event":
			events = append(events, rec)
		case "flight_stacks":
			stacks = rec
		default:
			t.Fatalf("unknown dump record %v", rec["event"])
		}
	}
	if header == nil || stacks == nil {
		t.Fatal("dump missing header or stacks record")
	}
	return header, events, stacks
}

func TestFlightRecorderDump(t *testing.T) {
	f := NewFlightRecorder(128)
	tc := NewTraceContext(9, "test")
	f.SetTraceContext(tc)
	for i := 0; i < 100; i++ {
		f.Note("step", "work")
	}
	if f.Len() != 100 {
		t.Fatalf("Len %d", f.Len())
	}
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	header, events, stacks := decodeFlightDump(t, buf.Bytes())
	// The acceptance bar asks for a window of at least 64 correlated events.
	if len(events) < 64 {
		t.Fatalf("dump window %d events, want >= 64", len(events))
	}
	if header["trace_id"] != tc.TraceID() {
		t.Fatalf("header trace_id %v", header["trace_id"])
	}
	for i, ev := range events {
		if ev["trace_id"] != tc.TraceID() {
			t.Fatalf("event %d not correlated: %v", i, ev["trace_id"])
		}
	}
	if !strings.Contains(stacks["stacks"].(string), "goroutine") {
		t.Fatal("stacks record missing goroutine stacks")
	}
}

// TestFlightRecorderWraparound: a full ring keeps only the newest events and
// reports how many were overwritten.
func TestFlightRecorderWraparound(t *testing.T) {
	f := NewFlightRecorder(16)
	for i := 0; i < 40; i++ {
		f.Note("n", "x")
	}
	if f.Len() != 16 {
		t.Fatalf("Len after wrap %d", f.Len())
	}
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	header, events, _ := decodeFlightDump(t, buf.Bytes())
	if got := header["dropped"].(float64); got != 24 {
		t.Fatalf("dropped %v, want 24", got)
	}
	if len(events) != 16 {
		t.Fatalf("window %d events, want 16", len(events))
	}
	// Sequence numbers must be the last 16 (24..39) in order.
	for i, ev := range events {
		if got := uint64(ev["seq"].(float64)); got != uint64(24+i) {
			t.Fatalf("event %d seq %d, want %d", i, got, 24+i)
		}
	}
}

// TestFlightRecorderOnDump: registered flushers (how the buffered sink joins
// a post-mortem) run before the dump is written.
func TestFlightRecorderOnDump(t *testing.T) {
	f := NewFlightRecorder(8)
	flushed := false
	f.OnDump(func() { flushed = true })
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if !flushed {
		t.Fatal("OnDump flusher did not run")
	}
}

// TestSinkFlushesOnFlightDump is the integration: an AttachFlight'd sink has
// its buffered records on disk by the time the dump is readable.
func TestSinkFlushesOnFlightDump(t *testing.T) {
	var out bytes.Buffer
	s := NewSink(&out)
	f := NewFlightRecorder(8)
	s.AttachFlight(f)
	s.Emit(map[string]string{"event": "x"}) // sits in the bufio buffer
	if out.Len() != 0 {
		t.Fatal("record should still be buffered")
	}
	var dump bytes.Buffer
	if err := f.Dump(&dump); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"event":"x"`) {
		t.Fatalf("sink not flushed before dump: %q", out.String())
	}
	// The Emit itself left a breadcrumb in the ring.
	if !strings.Contains(dump.String(), `"kind":"sink"`) {
		t.Fatalf("dump missing sink breadcrumb:\n%s", dump.String())
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Note("k", "m")
	f.SetTraceContext(NewTraceContext(1, "x"))
	f.OnDump(func() {})
	if f.Enabled() || f.Len() != 0 {
		t.Fatal("nil recorder must be inert")
	}
	if err := f.Dump(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if f.PanicHook(&bytes.Buffer{}) != nil {
		t.Fatal("nil recorder must yield a nil panic hook")
	}
	stop := f.HandleSignals(&bytes.Buffer{})
	stop()
}

// TestNilFlightRecorderZeroAlloc extends the hot-path guard: disabled flight
// recording costs nothing in the minibatch loop.
func TestNilFlightRecorderZeroAlloc(t *testing.T) {
	var f *FlightRecorder
	allocs := testing.AllocsPerRun(1000, func() {
		f.Note("train", "batch")
		_ = f.Enabled()
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %.1f per op", allocs)
	}
}

// TestEnabledFlightNoteZeroAlloc: even live, Note never heap-allocates — it
// is safe on the train-step hot path.
func TestEnabledFlightNoteZeroAlloc(t *testing.T) {
	f := NewFlightRecorder(64)
	f.SetTraceContext(NewTraceContext(1, "x"))
	allocs := testing.AllocsPerRun(1000, func() {
		f.Note("train", "batch")
	})
	if allocs != 0 {
		t.Fatalf("enabled Note allocated %.1f per op", allocs)
	}
}

// TestFlightRecorderConcurrent hammers the ring from many goroutines (the
// race detector validates the slot locking) and checks a concurrent Dump
// stays well-formed.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Note("w", fmt.Sprintf("worker %d", w))
			}
		}(w)
	}
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil { // concurrent with the writers
		t.Fatal(err)
	}
	wg.Wait()
	var final bytes.Buffer
	if err := f.Dump(&final); err != nil {
		t.Fatal(err)
	}
	_, events, _ := decodeFlightDump(t, final.Bytes())
	if len(events) != 32 {
		t.Fatalf("final window %d events, want 32", len(events))
	}
}
