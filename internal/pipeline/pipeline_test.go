package pipeline

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"
	"testing"
	"testing/quick"

	"predtop/internal/obs"
)

func TestLatencyFigure6Example(t *testing.T) {
	// Fig 6: four stages, three microbatches, stage 2 the bottleneck.
	lat := []float64{1, 3, 1, 1}
	got := Latency(lat, 3)
	want := 6.0 + 2*3 // Σ + (B−1)·max
	if got != want {
		t.Fatalf("Eqn 4: %v want %v", got, want)
	}
}

func TestLatencyEdgeCases(t *testing.T) {
	if Latency(nil, 3) != 0 || Latency([]float64{1}, 0) != 0 {
		t.Fatal("empty inputs should be zero")
	}
	// One stage: B sequential executions.
	if Latency([]float64{2}, 5) != 10 {
		t.Fatal("single-stage pipeline is serial")
	}
	// One microbatch: plain sum.
	if Latency([]float64{1, 2, 3}, 1) != 6 {
		t.Fatal("B=1 is the stage sum")
	}
}

func TestBottleneck(t *testing.T) {
	idx, max := Bottleneck([]float64{1, 3, 2})
	if idx != 1 || max != 3 {
		t.Fatalf("bottleneck (%d, %v)", idx, max)
	}
}

// TestSimulatorMatchesEqn4 is the paper's white-box model invariant: the
// closed form equals the event-driven schedule exactly.
func TestSimulatorMatchesEqn4(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := 1 + rng.Intn(8)
		b := 1 + rng.Intn(12)
		lat := make([]float64, s)
		for i := range lat {
			lat[i] = 0.1 + rng.Float64()*5
		}
		makespan, _ := Simulate(lat, b)
		return math.Abs(makespan-Latency(lat, b)) < 1e-9
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateRespectsDependencies(t *testing.T) {
	lat := []float64{1, 3, 1, 1}
	_, tasks := Simulate(lat, 3)
	byKey := map[[2]int]Task{}
	for _, task := range tasks {
		byKey[[2]int{task.Stage, task.Microbatch}] = task
	}
	for _, task := range tasks {
		if task.Stage > 0 {
			prev := byKey[[2]int{task.Stage - 1, task.Microbatch}]
			if task.Start < prev.End-1e-12 {
				t.Fatalf("stage %d mb %d started before upstream finished", task.Stage, task.Microbatch)
			}
		}
		if task.Microbatch > 0 {
			prev := byKey[[2]int{task.Stage, task.Microbatch - 1}]
			if task.Start < prev.End-1e-12 {
				t.Fatalf("stage %d overlapped its own microbatches", task.Stage)
			}
		}
		if math.Abs(task.End-task.Start-lat[task.Stage]) > 1e-12 {
			t.Fatalf("task duration wrong: %+v", task)
		}
	}
	if len(tasks) != 12 {
		t.Fatalf("expected 4×3 tasks, got %d", len(tasks))
	}
}

func TestRenderTimeline(t *testing.T) {
	out := RenderTimeline([]float64{1, 3, 1, 1}, 3, 60)
	if !strings.Contains(out, "stage 1") || !strings.Contains(out, "stage 4") {
		t.Fatalf("timeline missing stages:\n%s", out)
	}
	if !strings.Contains(out, "makespan") {
		t.Fatal("timeline missing makespan")
	}
	// The bottleneck stage (2) should have no idle gaps after warmup —
	// its row must contain all three microbatch digits.
	for _, d := range []string{"0", "1", "2"} {
		if !strings.Contains(out, d) {
			t.Fatalf("timeline missing microbatch %s:\n%s", d, out)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []float64{1, 3, 1}, 2); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	var slices, meta int
	names := map[string]bool{}
	for _, e := range events {
		switch e["ph"] {
		case "X":
			slices++
			if e["dur"].(float64) <= 0 {
				t.Fatalf("bad event %v", e)
			}
		case "M":
			meta++
			if args, ok := e["args"].(map[string]any); ok {
				names[args["name"].(string)] = true
			}
		default:
			t.Fatalf("unexpected phase %v", e["ph"])
		}
	}
	if slices != 6 { // 3 stages × 2 microbatches
		t.Fatalf("trace slices: %d", slices)
	}
	if meta != 4 { // process_name + 3 thread_name
		t.Fatalf("metadata events: %d", meta)
	}
	for _, want := range []string{"stage 1", "stage 2", "stage 3"} {
		if !names[want] {
			t.Fatalf("missing named track %q (have %v)", want, names)
		}
	}
}

// TestWriteChromeTraceRejectsInvalidInput: bad input must be an error, not a
// garbage trace.
func TestWriteChromeTraceRejectsInvalidInput(t *testing.T) {
	cases := []struct {
		name string
		lat  []float64
		mb   int
	}{
		{"zero microbatches", []float64{1, 2}, 0},
		{"negative microbatches", []float64{1, 2}, -3},
		{"negative latency", []float64{1, -2}, 4},
		{"NaN latency", []float64{math.NaN()}, 4},
		{"Inf latency", []float64{math.Inf(1)}, 4},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, tc.lat, tc.mb); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if buf.Len() != 0 {
			t.Fatalf("%s: wrote %d bytes alongside the error", tc.name, buf.Len())
		}
	}
}

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden mismatch for %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestWriteChromeTraceGolden pins the exact trace bytes for a pipeline
// schedule: struct encoding keeps the field order stable, track registration
// order fixes the tids, and the simulator's task order fixes the slices.
func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []float64{1, 3, 1}, 2); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "testdata/pipeline_trace.golden.json", buf.Bytes())
}

// TestCombinedTraceGolden renders training epochs and a pipeline schedule as
// named tracks of one Perfetto file — the trace shape the instrumented cmd
// tools emit — and pins its bytes.
func TestCombinedTraceGolden(t *testing.T) {
	tb := obs.NewTrace()
	// Three training epochs at cumulative wall offsets, as the training
	// hooks record them.
	wall := []float64{0, 1.5, 2.75, 3.5}
	for e := 1; e < len(wall); e++ {
		tb.Slice("epochs", fmt.Sprintf("epoch %d", e), wall[e-1], wall[e]-wall[e-1])
	}
	if err := AddSchedule(tb, "", []float64{1, 3, 1}, 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "testdata/combined_trace.golden.json", buf.Bytes())
}
