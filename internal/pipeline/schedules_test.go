package pipeline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScheduleStrings(t *testing.T) {
	for _, s := range []Schedule{ScheduleSync, ScheduleGPipe, ScheduleInterleaved} {
		if s.String() == "" || s.String()[0] == 's' && s.String() != "1f1b" && s.String() != "gpipe" {
			t.Fatalf("schedule %d name %q", s, s)
		}
	}
}

func TestGPipeSlowerThanSync(t *testing.T) {
	// The explicit flush makes GPipe at least as slow as the synchronous
	// 1F1B closed form for any pipeline.
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := 1 + rng.Intn(6)
		b := 1 + rng.Intn(10)
		lat := make([]float64, s)
		for i := range lat {
			lat[i] = 0.1 + rng.Float64()*3
		}
		return GPipeLatency(lat, b, 1.0/3)+1e-12 >= Latency(lat, b)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGPipeSplitsAddUp(t *testing.T) {
	// With one microbatch there is no bubble, so GPipe equals the plain sum.
	lat := []float64{1, 2, 3}
	if got := GPipeLatency(lat, 1, 1.0/3); math.Abs(got-6) > 1e-12 {
		t.Fatalf("GPipe B=1: %v", got)
	}
}

func TestInterleavedShrinksBubble(t *testing.T) {
	lat := []float64{1, 3, 1, 1}
	base := Latency(lat, 8)
	for v := 2; v <= 8; v *= 2 {
		inter := InterleavedLatency(lat, 8, v)
		if inter >= base {
			t.Fatalf("V=%d did not shrink latency: %v vs %v", v, inter, base)
		}
	}
	// V → ∞ approaches the no-bubble lower bound Σt.
	if got := InterleavedLatency(lat, 8, 1<<20); math.Abs(got-6) > 1e-3 {
		t.Fatalf("V→∞: %v", got)
	}
	// V = 1 degenerates to Eqn 4.
	if InterleavedLatency(lat, 8, 1) != base {
		t.Fatal("V=1 should equal Eqn 4")
	}
}

func TestLatencyWithScheduleDispatch(t *testing.T) {
	lat := []float64{1, 2}
	if LatencyWithSchedule(ScheduleSync, lat, 4, 0) != Latency(lat, 4) {
		t.Fatal("sync dispatch")
	}
	if LatencyWithSchedule(ScheduleGPipe, lat, 4, 0) != GPipeLatency(lat, 4, 0) {
		t.Fatal("gpipe dispatch")
	}
	if LatencyWithSchedule(ScheduleInterleaved, lat, 4, 2) != InterleavedLatency(lat, 4, 2) {
		t.Fatal("interleaved dispatch")
	}
}

func TestCommAwareLatency(t *testing.T) {
	lat := []float64{1, 3, 1}
	// Zero communication reduces exactly to Eqn 4 (inserting zero-latency
	// stages changes neither the sum nor the bottleneck).
	if got := CommAwareLatency(lat, []float64{0, 0}, 5); got != Latency(lat, 5) {
		t.Fatalf("zero comm: %v vs %v", got, Latency(lat, 5))
	}
	// Non-zero communication strictly increases latency.
	withComm := CommAwareLatency(lat, []float64{0.5, 0.5}, 5)
	if withComm <= Latency(lat, 5) {
		t.Fatal("communication should add latency")
	}
	// A transfer slower than every stage becomes the bottleneck.
	slow := CommAwareLatency(lat, []float64{10, 0}, 5)
	if slow < 10*5 {
		t.Fatalf("slow link should dominate: %v", slow)
	}
}

func TestCommAwareLatencyPanicsOnBadLengths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CommAwareLatency([]float64{1, 2}, []float64{0.1, 0.2}, 3)
}

func TestBubbleFraction(t *testing.T) {
	// Perfectly balanced, many microbatches → bubble → 0.
	lat := []float64{1, 1, 1, 1}
	small := BubbleFraction(lat, 1000)
	if small > 0.01 {
		t.Fatalf("balanced deep pipeline bubble: %v", small)
	}
	// Few microbatches → large bubble.
	big := BubbleFraction(lat, 1)
	if big < 0.5 {
		t.Fatalf("B=1 bubble: %v", big)
	}
	if BubbleFraction(nil, 4) != 0 {
		t.Fatal("empty pipeline")
	}
}
