// Package pipeline implements the paper's white-box model of inter-stage
// (pipeline) parallelism (§V): the closed-form iteration latency of Eqn 4
// and an explicit event-driven schedule simulator used to validate it and to
// render Fig-6-style timelines. Inter-stage communication is ignored, as the
// paper argues it is negligible next to stage execution on high-bandwidth
// links.
package pipeline

import (
	"fmt"
	"strings"
)

// Latency returns Eqn 4: T = Σ tᵢ + (B−1)·max tⱼ, the end-to-end pipeline
// execution time of S stages over B microbatches.
func Latency(stageLat []float64, microbatches int) float64 {
	if len(stageLat) == 0 || microbatches <= 0 {
		return 0
	}
	sum, max := 0.0, 0.0
	for _, t := range stageLat {
		sum += t
		if t > max {
			max = t
		}
	}
	return sum + float64(microbatches-1)*max
}

// Bottleneck returns the index and latency of the slowest stage.
func Bottleneck(stageLat []float64) (int, float64) {
	idx, max := -1, 0.0
	for i, t := range stageLat {
		if t > max {
			idx, max = i, t
		}
	}
	return idx, max
}

// Task is one (stage, microbatch) execution in a simulated schedule.
type Task struct {
	Stage, Microbatch int
	Start, End        float64
}

// Simulate runs the synchronous pipeline schedule: stage i starts microbatch
// j as soon as it finished microbatch j−1 and stage i−1 delivered microbatch
// j. It returns the makespan and the full task timeline.
func Simulate(stageLat []float64, microbatches int) (float64, []Task) {
	s := len(stageLat)
	if s == 0 || microbatches <= 0 {
		return 0, nil
	}
	stageFree := make([]float64, s)
	prevDone := make([]float64, microbatches) // completion of (i−1, j)
	var tasks []Task
	makespan := 0.0
	for i := 0; i < s; i++ {
		for j := 0; j < microbatches; j++ {
			start := stageFree[i]
			if prevDone[j] > start {
				start = prevDone[j]
			}
			end := start + stageLat[i]
			stageFree[i] = end
			prevDone[j] = end
			tasks = append(tasks, Task{Stage: i, Microbatch: j, Start: start, End: end})
			if end > makespan {
				makespan = end
			}
		}
	}
	return makespan, tasks
}

// RenderTimeline draws an ASCII Gantt chart of a simulated schedule
// (Fig 6), one row per stage, at the given number of columns.
func RenderTimeline(stageLat []float64, microbatches, cols int) string {
	makespan, tasks := Simulate(stageLat, microbatches)
	if makespan == 0 {
		return ""
	}
	rows := make([][]byte, len(stageLat))
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", cols))
	}
	for _, t := range tasks {
		lo := int(t.Start / makespan * float64(cols))
		hi := int(t.End / makespan * float64(cols))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > cols {
			hi = cols
		}
		ch := byte('0' + t.Microbatch%10)
		for c := lo; c < hi; c++ {
			rows[t.Stage][c] = ch
		}
	}
	var b strings.Builder
	for i, row := range rows {
		fmt.Fprintf(&b, "stage %d |%s|\n", i+1, row)
	}
	fmt.Fprintf(&b, "makespan %.4g (Eqn 4: %.4g)\n", makespan, Latency(stageLat, microbatches))
	return b.String()
}
