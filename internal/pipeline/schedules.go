package pipeline

import (
	"fmt"
	"math"
)

// Schedule identifies a pipeline execution schedule. The paper's white-box
// model (Eqn 4) is the steady-state latency of the synchronous GPipe/1F1B
// family; the variants below extend the white-box model to the other
// schedules the paper cites (§II-A: GPipe, PipeDream-1F1B, interleaved).
type Schedule uint8

// Supported schedules.
const (
	// ScheduleSync is the paper's model: synchronous pipeline, Eqn 4.
	ScheduleSync Schedule = iota
	// ScheduleGPipe adds an explicit flush between forward and backward
	// phases (forward and backward modeled as separate passes).
	ScheduleGPipe
	// ScheduleInterleaved is the interleaved-1F1B virtual-stage schedule:
	// each device holds V model chunks, shrinking the pipeline bubble by V.
	ScheduleInterleaved
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case ScheduleSync:
		return "1f1b"
	case ScheduleGPipe:
		return "gpipe"
	case ScheduleInterleaved:
		return "interleaved-1f1b"
	}
	return fmt.Sprintf("schedule(%d)", uint8(s))
}

// GPipeLatency models GPipe with an explicit flush: the forward pass
// pipeline (Eqn 4 over forward latencies) followed by the backward pass
// pipeline. fwdFrac is the forward share of each stage's fwd+bwd latency
// (≈1/3 for standard training).
func GPipeLatency(stageLat []float64, microbatches int, fwdFrac float64) float64 {
	if fwdFrac <= 0 || fwdFrac >= 1 {
		fwdFrac = 1.0 / 3
	}
	fwd := make([]float64, len(stageLat))
	bwd := make([]float64, len(stageLat))
	for i, t := range stageLat {
		fwd[i] = t * fwdFrac
		bwd[i] = t * (1 - fwdFrac)
	}
	return Latency(fwd, microbatches) + Latency(bwd, microbatches)
}

// InterleavedLatency models interleaved 1F1B with V virtual stages per
// device: the per-chunk latency is tᵢ/V and the bubble term shrinks to
// (B−1)·max tⱼ/V while the fill cost covers all S·V chunks.
func InterleavedLatency(stageLat []float64, microbatches, virtualStages int) float64 {
	if virtualStages <= 1 {
		return Latency(stageLat, microbatches)
	}
	v := float64(virtualStages)
	sum, max := 0.0, 0.0
	for _, t := range stageLat {
		sum += t
		if t > max {
			max = t
		}
	}
	return sum + float64(microbatches-1)*max/v
}

// LatencyWithSchedule dispatches to the closed form of the given schedule.
func LatencyWithSchedule(s Schedule, stageLat []float64, microbatches, virtualStages int) float64 {
	switch s {
	case ScheduleGPipe:
		return GPipeLatency(stageLat, microbatches, 0)
	case ScheduleInterleaved:
		return InterleavedLatency(stageLat, microbatches, virtualStages)
	default:
		return Latency(stageLat, microbatches)
	}
}

// CommAwareLatency extends Eqn 4 with inter-stage activation transfers —
// the term the paper deliberately drops ("in high bandwidth systems, the
// inter-stage communication time is negligible", §V). commLat[i] is the
// transfer time from stage i to stage i+1 (len = S−1). Each transfer rides
// the critical path once per microbatch on the bottleneck side, so the
// closed form becomes
//
//	T = Σ tᵢ + Σ cᵢ + (B−1)·max(tⱼ, cⱼ-adjacent chain contribution)
//
// which for the no-overlap model used here reduces to treating each
// transfer as a zero-compute pipeline stage.
func CommAwareLatency(stageLat, commLat []float64, microbatches int) float64 {
	if len(commLat) != len(stageLat)-1 {
		panic(fmt.Sprintf("pipeline: need %d comm latencies, got %d", len(stageLat)-1, len(commLat)))
	}
	merged := make([]float64, 0, 2*len(stageLat)-1)
	for i, t := range stageLat {
		merged = append(merged, t)
		if i < len(commLat) {
			merged = append(merged, commLat[i])
		}
	}
	return Latency(merged, microbatches)
}

// BubbleFraction returns the share of device time lost to the pipeline
// bubble under Eqn 4 — a standard diagnostic for pipeline plans.
func BubbleFraction(stageLat []float64, microbatches int) float64 {
	if len(stageLat) == 0 || microbatches <= 0 {
		return 0
	}
	_, max := Bottleneck(stageLat)
	total := Latency(stageLat, microbatches)
	if total == 0 {
		return 0
	}
	busy := 0.0
	for _, t := range stageLat {
		busy += t * float64(microbatches)
	}
	ideal := busy / float64(len(stageLat))
	_ = max
	frac := 1 - ideal/total
	return math.Max(frac, 0)
}
