package pipeline

import (
	"encoding/json"
	"fmt"
	"io"
)

// traceEvent is one Chrome-tracing "complete" event (the chrome://tracing /
// Perfetto JSON array format).
type traceEvent struct {
	Name     string  `json:"name"`
	Phase    string  `json:"ph"`
	TimestUS float64 `json:"ts"`
	DurUS    float64 `json:"dur"`
	PID      int     `json:"pid"`
	TID      int     `json:"tid"`
}

// WriteChromeTrace renders a simulated pipeline schedule as a Chrome-tracing
// JSON file (loadable in chrome://tracing or Perfetto): one track per stage,
// one slice per (stage, microbatch) task. Latencies are interpreted as
// seconds and emitted in microseconds.
func WriteChromeTrace(w io.Writer, stageLat []float64, microbatches int) error {
	_, tasks := Simulate(stageLat, microbatches)
	events := make([]traceEvent, 0, len(tasks))
	for _, t := range tasks {
		events = append(events, traceEvent{
			Name:     fmt.Sprintf("mb%d", t.Microbatch),
			Phase:    "X",
			TimestUS: t.Start * 1e6,
			DurUS:    (t.End - t.Start) * 1e6,
			PID:      1,
			TID:      t.Stage + 1,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
