package pipeline

import (
	"fmt"
	"io"
	"math"

	"predtop/internal/obs"
)

// AddSchedule appends the simulated 1F1B schedule to a trace builder: one
// named track per stage ("<prefix>stage N"), one slice per
// (stage, microbatch) task. Latencies are interpreted as seconds of
// simulated time starting at the trace origin. It validates its input —
// microbatches < 1, negative, NaN, or infinite latencies are an error
// rather than a garbage trace — and is a no-op on a nil builder (after
// validation, so callers catch bad inputs regardless of tracing).
func AddSchedule(tb *obs.TraceBuilder, prefix string, stageLat []float64, microbatches int) error {
	if microbatches < 1 {
		return fmt.Errorf("pipeline: microbatches must be >= 1, got %d", microbatches)
	}
	for i, t := range stageLat {
		if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return fmt.Errorf("pipeline: invalid latency %v for stage %d", t, i+1)
		}
	}
	_, tasks := Simulate(stageLat, microbatches)
	for _, t := range tasks {
		tb.Slice(fmt.Sprintf("%sstage %d", prefix, t.Stage+1),
			fmt.Sprintf("mb%d", t.Microbatch), t.Start, t.End-t.Start)
	}
	return nil
}

// WriteChromeTrace renders a simulated pipeline schedule as a Chrome-tracing
// JSON file (loadable in chrome://tracing or Perfetto): one named track per
// stage, one slice per (stage, microbatch) task, with "M" metadata events
// naming each track. Latencies are interpreted as seconds and emitted in
// microseconds. Invalid input (negative latencies, microbatches < 1) is an
// error.
func WriteChromeTrace(w io.Writer, stageLat []float64, microbatches int) error {
	tb := obs.NewTrace()
	if err := AddSchedule(tb, "", stageLat, microbatches); err != nil {
		return err
	}
	return tb.Render(w)
}
