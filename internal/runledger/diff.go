package runledger

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"predtop/internal/predictor"
)

// FieldDiff is one identity-field comparison row.
type FieldDiff struct {
	Field   string `json:"field"`
	Base    string `json:"base"`
	Other   string `json:"other"`
	Changed bool   `json:"changed,omitempty"`
}

// AccuracyDiff compares one (family, mesh, op) residual population across
// two runs. Deltas are in MRE percentage points (other − base).
type AccuracyDiff struct {
	Key      string  `json:"key"`
	InBase   bool    `json:"in_base"`
	InOther  bool    `json:"in_other"`
	BaseMRE  float64 `json:"base_mre"`
	OtherMRE float64 `json:"other_mre"`
	Delta    float64 `json:"delta"`
}

// PlanDiff compares the Eqn-4 totals of the plans at one index.
type PlanDiff struct {
	Index     int     `json:"index"`
	Label     string  `json:"label,omitempty"`
	InBase    bool    `json:"in_base"`
	InOther   bool    `json:"in_other"`
	BaseTotal float64 `json:"base_total"`
	NewTotal  float64 `json:"other_total"`
	Delta     float64 `json:"delta"`
	// DeltaPct is the relative change in percent (0 when the base is 0).
	DeltaPct float64 `json:"delta_pct"`
}

// BucketDiff compares one attribution bucket's MRE across two runs.
type BucketDiff struct {
	Label   string  `json:"label"` // attribution label, e.g. model family
	Axis    string  `json:"axis"`  // "op" | "nodes" | "depth"
	Key     string  `json:"key"`
	BaseMRE float64 `json:"base_mre"`
	NewMRE  float64 `json:"other_mre"`
	Delta   float64 `json:"delta"`
}

// Diff is the full comparison of two manifests — the run-ledger counterpart
// of planner.ReportDiff.
type Diff struct {
	BaseLabel  string `json:"base_label"`
	OtherLabel string `json:"other_label"`
	// CanonicalIdentical reports byte-identity of the two canonical JSON
	// sections: true means the runs are bitwise interchangeable and every
	// listed delta is zero.
	CanonicalIdentical bool           `json:"canonical_identical"`
	Fields             []FieldDiff    `json:"fields,omitempty"`
	Accuracy           []AccuracyDiff `json:"accuracy,omitempty"`
	Plans              []PlanDiff     `json:"plans,omitempty"`
	Attribution        []BucketDiff   `json:"attribution,omitempty"`
}

// Compare diffs two manifests: identity fields, per-key accuracy, per-index
// plans, and attribution buckets (only buckets present in both runs, since
// an absent bucket has no meaningful delta).
func Compare(base, other *Manifest, baseLabel, otherLabel string) *Diff {
	d := &Diff{BaseLabel: baseLabel, OtherLabel: otherLabel}
	cb, errB := base.CanonicalJSON()
	co, errO := other.CanonicalJSON()
	d.CanonicalIdentical = errB == nil && errO == nil && bytes.Equal(cb, co)

	field := func(name, a, b string) {
		d.Fields = append(d.Fields, FieldDiff{Field: name, Base: a, Other: b, Changed: a != b})
	}
	field("schema", fmt.Sprint(base.Canonical.Schema), fmt.Sprint(other.Canonical.Schema))
	field("tool", base.Canonical.Tool, other.Canonical.Tool)
	field("seed", fmt.Sprint(base.Canonical.Seed), fmt.Sprint(other.Canonical.Seed))
	field("config_fingerprint", base.Canonical.configFingerprint(), other.Canonical.configFingerprint())
	field("weights_fingerprint", base.Canonical.WeightsFingerprint, other.Canonical.WeightsFingerprint)
	for _, k := range unionKeys(base.Canonical.Config, other.Canonical.Config) {
		field("config."+k, base.Canonical.Config[k], other.Canonical.Config[k])
	}

	// Accuracy: align by (family, mesh, op) key.
	type accKey struct{ f, m, o string }
	baseAcc := map[accKey]AccuracyEntry{}
	for _, e := range base.Canonical.Accuracy {
		baseAcc[accKey{e.Family, e.Mesh, e.Op}] = e
	}
	otherAcc := map[accKey]AccuracyEntry{}
	for _, e := range other.Canonical.Accuracy {
		otherAcc[accKey{e.Family, e.Mesh, e.Op}] = e
	}
	keys := map[accKey]bool{}
	for k := range baseAcc {
		keys[k] = true
	}
	for k := range otherAcc {
		keys[k] = true
	}
	ordered := make([]accKey, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.f != b.f {
			return a.f < b.f
		}
		if a.m != b.m {
			return a.m < b.m
		}
		return a.o < b.o
	})
	for _, k := range ordered {
		be, inB := baseAcc[k]
		oe, inO := otherAcc[k]
		ad := AccuracyDiff{
			Key:    strings.TrimSpace(fmt.Sprintf("%s %s %s", k.f, k.m, k.o)),
			InBase: inB, InOther: inO,
			BaseMRE: be.MeanPct, OtherMRE: oe.MeanPct,
		}
		if inB && inO {
			ad.Delta = ad.OtherMRE - ad.BaseMRE
		}
		d.Accuracy = append(d.Accuracy, ad)
	}

	// Plans: align by index (run-level plan order is deterministic).
	n := len(base.Canonical.Plans)
	if len(other.Canonical.Plans) > n {
		n = len(other.Canonical.Plans)
	}
	for i := 0; i < n; i++ {
		pd := PlanDiff{Index: i}
		if i < len(base.Canonical.Plans) {
			p := base.Canonical.Plans[i]
			pd.InBase, pd.BaseTotal = true, p.Total
			pd.Label = planLabel(p)
		}
		if i < len(other.Canonical.Plans) {
			p := other.Canonical.Plans[i]
			pd.InOther, pd.NewTotal = true, p.Total
			if pd.Label == "" {
				pd.Label = planLabel(p)
			}
		}
		if pd.InBase && pd.InOther {
			pd.Delta = pd.NewTotal - pd.BaseTotal
			if pd.BaseTotal != 0 {
				pd.DeltaPct = 100 * pd.Delta / pd.BaseTotal
			}
		}
		d.Plans = append(d.Plans, pd)
	}

	// Attribution: per shared label, per axis, buckets present in both.
	for _, label := range unionAttrLabels(base.Canonical.Attribution, other.Canonical.Attribution) {
		ba, oa := base.Canonical.Attribution[label], other.Canonical.Attribution[label]
		if ba == nil || oa == nil {
			continue
		}
		for _, axis := range []struct {
			name   string
			bb, ob []predictor.AttributionBucket
		}{{"op", ba.ByOp, oa.ByOp}, {"nodes", ba.ByNodes, oa.ByNodes}, {"depth", ba.ByDepth, oa.ByDepth}} {
			om := map[string]predictor.AttributionBucket{}
			for _, b := range axis.ob {
				om[b.Key] = b
			}
			for _, b := range axis.bb {
				o, ok := om[b.Key]
				if !ok {
					continue
				}
				d.Attribution = append(d.Attribution, BucketDiff{
					Label: label, Axis: axis.name, Key: b.Key,
					BaseMRE: b.MREPct, NewMRE: o.MREPct, Delta: o.MREPct - b.MREPct,
				})
			}
		}
	}
	return d
}

func planLabel(p PlanSummary) string {
	parts := []string{}
	for _, s := range []string{p.Version, p.Model, p.Platform} {
		if s != "" {
			parts = append(parts, s)
		}
	}
	return strings.Join(parts, " ")
}

func unionKeys(a, b map[string]string) []string {
	seen := map[string]bool{}
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func unionAttrLabels(a, b map[string]*predictor.Attribution) []string {
	seen := map[string]bool{}
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Render returns the human rendering of the diff in the planner ReportDiff
// style: identity fields first (changes flagged), then per-key accuracy,
// plan totals, and attribution deltas. Pure function of the contents.
func (d *Diff) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== run diff: %s → %s ===\n", d.BaseLabel, d.OtherLabel)
	if d.CanonicalIdentical {
		b.WriteString("canonical sections: identical\n")
	} else {
		b.WriteString("canonical sections: DIFFER\n")
	}
	for _, f := range d.Fields {
		if !f.Changed {
			continue
		}
		base, other := f.Base, f.Other
		if base == "" {
			base = "-"
		}
		if other == "" {
			other = "-"
		}
		fmt.Fprintf(&b, "  %-28s %s → %s\n", f.Field+":", base, other)
	}
	if len(d.Accuracy) > 0 {
		b.WriteString("\naccuracy (MRE %):\n")
		fmt.Fprintf(&b, "  %-36s %10s %10s %10s\n", "family mesh op", "base", "new", "delta")
		for _, a := range d.Accuracy {
			base, other := fmt.Sprintf("%.2f", a.BaseMRE), fmt.Sprintf("%.2f", a.OtherMRE)
			if !a.InBase {
				base = "-"
			}
			if !a.InOther {
				other = "-"
			}
			fmt.Fprintf(&b, "  %-36s %10s %10s %+10.2f\n", a.Key, base, other, a.Delta)
		}
	}
	if len(d.Plans) > 0 {
		b.WriteString("\nplans (Eqn-4 total, s):\n")
		fmt.Fprintf(&b, "  %-3s %-30s %12s %12s %12s\n", "#", "plan", "base", "new", "delta")
		for _, p := range d.Plans {
			base, other := fmt.Sprintf("%.6f", p.BaseTotal), fmt.Sprintf("%.6f", p.NewTotal)
			if !p.InBase {
				base = "-"
			}
			if !p.InOther {
				other = "-"
			}
			fmt.Fprintf(&b, "  %-3d %-30s %12s %12s %+9.6f (%+.2f%%)\n",
				p.Index, p.Label, base, other, p.Delta, p.DeltaPct)
		}
	}
	if len(d.Attribution) > 0 {
		b.WriteString("\nerror attribution (MRE %):\n")
		fmt.Fprintf(&b, "  %-10s %-7s %-24s %10s %10s %10s\n", "label", "axis", "bucket", "base", "new", "delta")
		for _, a := range d.Attribution {
			fmt.Fprintf(&b, "  %-10s %-7s %-24s %10.2f %10.2f %+10.2f\n",
				a.Label, a.Axis, a.Key, a.BaseMRE, a.NewMRE, a.Delta)
		}
	}
	return b.String()
}

// GateThresholds arms the regression sentinel. Zero values disable the
// corresponding gate.
type GateThresholds struct {
	// MREPct fails keys whose accuracy MRE worsened by more than this many
	// percentage points (absolute, since MRE is already a percentage).
	MREPct float64
	// LatencyPct fails plans whose Eqn-4 total grew by more than this
	// percentage over the baseline.
	LatencyPct float64
}

// Gate returns one message per regression beyond the thresholds; an empty
// slice means the diff passes. Comparisons only fire for populations
// present in both runs — a new key or plan is a change, not a regression.
func (d *Diff) Gate(th GateThresholds) []string {
	var out []string
	if th.MREPct > 0 {
		for _, a := range d.Accuracy {
			if a.InBase && a.InOther && a.Delta > th.MREPct {
				out = append(out, fmt.Sprintf("accuracy %s: MRE %.2f%% → %.2f%% (+%.2f points > %.2f)",
					a.Key, a.BaseMRE, a.OtherMRE, a.Delta, th.MREPct))
			}
		}
	}
	if th.LatencyPct > 0 {
		for _, p := range d.Plans {
			if p.InBase && p.InOther && p.BaseTotal > 0 && p.DeltaPct > th.LatencyPct {
				out = append(out, fmt.Sprintf("plan %d %s: total %.6fs → %.6fs (%+.2f%% > %.2f%%)",
					p.Index, p.Label, p.BaseTotal, p.NewTotal, p.DeltaPct, th.LatencyPct))
			}
		}
	}
	return out
}
