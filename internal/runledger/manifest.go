// Package runledger gives every tool invocation a persistent, comparable
// record. Each predtop-train/eval/plan/serve/replay run writes one manifest
// into a content-addressed store under runs/ (see Store), so the questions
// the per-process telemetry cannot answer — did this encoder variant cut the
// transformer MRE, did that change regress plan latency, which weights did
// last week's numbers come from — become diffs over files instead of
// archaeology over scrollback.
//
// A manifest has two sections. The Canonical section holds everything that
// is a pure function of (tool, seed, result-determining configuration):
// config knobs, the FNV-1a config and weight fingerprints, per-(family,
// mesh, op) accuracy stats, error-attribution snapshots, Eqn-4 plan
// decompositions, and deterministic result metrics. Two runs of the same
// seed render byte-identical Canonical JSON — the property `make runs-smoke`
// pins. The Session section isolates everything wall-clock or host-bound
// (timestamps, durations, paths, addresses, bench ns/op), so reruns differ
// only there. The ledger only observes: recording a run never feeds back
// into training, evaluation, or planning.
package runledger

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sort"

	"predtop/internal/obs"
	"predtop/internal/planner"
	"predtop/internal/predictor"
)

// SchemaVersion is bumped whenever the canonical manifest layout changes
// incompatibly; diffs across schema versions compare only identity fields.
const SchemaVersion = 1

// AccuracyEntry is one (family, mesh, op) residual population snapshotted
// from an obs.AccuracyMonitor at the end of a run.
type AccuracyEntry struct {
	Family string `json:"family,omitempty"`
	Mesh   string `json:"mesh,omitempty"`
	Op     string `json:"op,omitempty"`
	obs.AccuracyStats
}

// PlanSummary is the Eqn-4 decomposition of one planned pipeline, lifted
// from a planner.Report.
type PlanSummary struct {
	Version      string  `json:"version,omitempty"`
	Model        string  `json:"model,omitempty"`
	Platform     string  `json:"platform,omitempty"`
	Stages       int     `json:"stages"`
	Microbatches int     `json:"microbatches"`
	SumStages    float64 `json:"sum_stages"`
	MaxStage     float64 `json:"max_stage"`
	Bubble       float64 `json:"bubble_seconds"`
	Total        float64 `json:"total"`
	BubbleShare  float64 `json:"bubble_share"`
	// Fingerprint pins the predictor weights that drove the search (empty
	// for profiling-based sources).
	Fingerprint string `json:"fingerprint,omitempty"`
}

// Canonical is the deterministic section of a manifest: byte-identical
// across runs of the same tool, seed, and result-determining config.
type Canonical struct {
	Schema int    `json:"schema"`
	Tool   string `json:"tool"`
	Seed   int64  `json:"seed"`
	// TraceID is the run's seed-derived correlation id — the same id the
	// metrics exemplars, JSONL events, and Chrome trace carry.
	TraceID string `json:"trace_id,omitempty"`
	// Config holds the result-determining flags (never paths, addresses, or
	// worker counts — those live in Session). encoding/json sorts map keys,
	// so the rendering is order-independent.
	Config map[string]string `json:"config,omitempty"`
	// ConfigFingerprint is the 16-hex FNV-1a hash of (schema, tool, seed,
	// sorted config) — equal fingerprints mean comparable runs. Filled by
	// CanonicalJSON.
	ConfigFingerprint string `json:"config_fingerprint,omitempty"`
	// WeightsFingerprint pins the trained predictor weights the run produced
	// or served, in planner.ProviderInfo's FNV-1a scheme.
	WeightsFingerprint string `json:"weights_fingerprint,omitempty"`
	// Metrics holds deterministic scalar results (MRE percentages, win
	// rates, plan totals) — never wall-clock readings.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Accuracy snapshots the run's accuracy monitor, one entry per observed
	// (family, mesh, op) key in sorted key order.
	Accuracy []AccuracyEntry `json:"accuracy,omitempty"`
	// Attribution maps a label (model family or dataset name) to the run's
	// error-attribution snapshot: where the residuals live, by op type, node
	// count, and stage depth.
	Attribution map[string]*predictor.Attribution `json:"attribution,omitempty"`
	// Plans summarizes every plan the run produced, in emission order.
	Plans []PlanSummary `json:"plans,omitempty"`
}

// Session is the non-canonical section: wall-clock, host, and path facts
// that legitimately differ between reruns of the same seed.
type Session struct {
	StartedUnix int64   `json:"started_unix,omitempty"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	Host        string  `json:"host,omitempty"`
	GoVersion   string  `json:"go_version,omitempty"`
	// Outputs maps output flags to the paths/addresses the run wrote
	// (model files, metrics JSONL, listen addresses).
	Outputs map[string]string `json:"outputs,omitempty"`
	// Metrics holds wall-clock scalar readings (durations, qps, latency
	// quantiles in seconds).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Bench holds benchmark-style measurements keyed by name.
	Bench map[string]BenchStat `json:"bench,omitempty"`
}

// BenchStat is one benchmark-style measurement attached to a session.
type BenchStat struct {
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Manifest is one recorded run. Methods are nil-safe no-ops, matching the
// repo-wide observation-only contract: a tool without -runledger passes a
// nil manifest around and pays nothing.
type Manifest struct {
	Canonical Canonical `json:"canonical"`
	Session   Session   `json:"session"`
}

// New returns a manifest for one invocation of tool with the given seed,
// stamping the schema version and the host/Go-version session facts.
func New(tool string, seed int64) *Manifest {
	host, _ := os.Hostname()
	return &Manifest{
		Canonical: Canonical{Schema: SchemaVersion, Tool: tool, Seed: seed},
		Session:   Session{Host: host, GoVersion: runtime.Version()},
	}
}

// SetTraceID stamps the run's deterministic trace id.
func (m *Manifest) SetTraceID(id string) {
	if m == nil {
		return
	}
	m.Canonical.TraceID = id
}

// SetConfig records one result-determining flag in the canonical section.
func (m *Manifest) SetConfig(key, value string) {
	if m == nil {
		return
	}
	if m.Canonical.Config == nil {
		m.Canonical.Config = map[string]string{}
	}
	m.Canonical.Config[key] = value
}

// SetOutput records an output path or address in the session section.
func (m *Manifest) SetOutput(key, value string) {
	if m == nil || value == "" {
		return
	}
	if m.Session.Outputs == nil {
		m.Session.Outputs = map[string]string{}
	}
	m.Session.Outputs[key] = value
}

// SetWeightsFingerprint pins the run's trained weights.
func (m *Manifest) SetWeightsFingerprint(fp string) {
	if m == nil {
		return
	}
	m.Canonical.WeightsFingerprint = fp
}

// RecordMetric stores one deterministic scalar result in the canonical
// section.
func (m *Manifest) RecordMetric(key string, v float64) {
	if m == nil {
		return
	}
	if m.Canonical.Metrics == nil {
		m.Canonical.Metrics = map[string]float64{}
	}
	m.Canonical.Metrics[key] = v
}

// RecordSessionMetric stores one wall-clock scalar in the session section.
func (m *Manifest) RecordSessionMetric(key string, v float64) {
	if m == nil {
		return
	}
	if m.Session.Metrics == nil {
		m.Session.Metrics = map[string]float64{}
	}
	m.Session.Metrics[key] = v
}

// RecordBench stores one benchmark-style measurement in the session section.
func (m *Manifest) RecordBench(name string, nsPerOp, allocsPerOp float64) {
	if m == nil {
		return
	}
	if m.Session.Bench == nil {
		m.Session.Bench = map[string]BenchStat{}
	}
	m.Session.Bench[name] = BenchStat{NsPerOp: nsPerOp, AllocsPerOp: allocsPerOp}
}

// RecordAccuracy snapshots every observed key of the monitor into the
// canonical section, in the monitor's sorted key order. No-op when either
// side is nil or nothing was observed.
func (m *Manifest) RecordAccuracy(mon *obs.AccuracyMonitor) {
	if m == nil || mon == nil {
		return
	}
	for _, key := range mon.Keys() {
		stats, ok := mon.Stats(key)
		if !ok {
			continue
		}
		m.Canonical.Accuracy = append(m.Canonical.Accuracy, AccuracyEntry{
			Family: key.Family, Mesh: key.Mesh, Op: key.Op, AccuracyStats: stats,
		})
	}
}

// RecordAttribution attaches one error-attribution snapshot under label.
func (m *Manifest) RecordAttribution(label string, a *predictor.Attribution) {
	if m == nil || a == nil {
		return
	}
	if m.Canonical.Attribution == nil {
		m.Canonical.Attribution = map[string]*predictor.Attribution{}
	}
	m.Canonical.Attribution[label] = a
}

// RecordPlan appends the Eqn-4 summary of one plan report.
func (m *Manifest) RecordPlan(r *planner.Report) {
	if m == nil || r == nil {
		return
	}
	m.Canonical.Plans = append(m.Canonical.Plans, PlanSummary{
		Version: r.Version, Model: r.Model, Platform: r.Platform,
		Stages: len(r.Stages), Microbatches: r.Microbatches,
		SumStages: r.Pipeline.SumStages, MaxStage: r.Pipeline.MaxStage,
		Bubble: r.Pipeline.BubbleSeconds, Total: r.Pipeline.Total,
		BubbleShare: r.Pipeline.BubbleShare,
		Fingerprint: r.Provenance.Fingerprint,
	})
}

// configFingerprint hashes (schema, tool, seed, sorted config pairs) with
// FNV-1a into 16 hex digits — the "are these runs comparable" key.
func (c *Canonical) configFingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s\x00%d\x00", c.Schema, c.Tool, c.Seed)
	keys := make([]string, 0, len(c.Config))
	for k := range c.Config {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\x00", k, c.Config[k])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// CanonicalJSON renders the canonical section as indented JSON with a
// trailing newline — the byte-identical-per-seed serialization the run id
// is derived from. The config fingerprint is (re)computed on every call, so
// it can never go stale against the config map.
func (m *Manifest) CanonicalJSON() ([]byte, error) {
	if m == nil {
		return nil, fmt.Errorf("runledger: nil manifest")
	}
	c := m.Canonical
	c.ConfigFingerprint = m.Canonical.configFingerprint()
	b, err := json.MarshalIndent(&c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// RunID returns the 16-hex FNV-1a hash of the canonical JSON bytes: the
// content address of the run. Two runs of the same seed and config share an
// id; any result-determining divergence changes it.
func (m *Manifest) RunID() (string, error) {
	b, err := m.CanonicalJSON()
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// MarshalJSON renders the full manifest with the config fingerprint filled,
// so stored files always carry it.
func (m *Manifest) MarshalJSON() ([]byte, error) {
	type alias Manifest // shed the method set to avoid recursion
	a := alias(*m)
	a.Canonical.ConfigFingerprint = m.Canonical.configFingerprint()
	return json.Marshal(&a)
}
