package runledger

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"predtop/internal/obs"
	"predtop/internal/planner"
	"predtop/internal/predictor"
)

// fakeManifest builds a fully-populated manifest without training anything.
func fakeManifest(seed int64, mre float64) *Manifest {
	m := New("predtop-train", seed)
	m.SetTraceID("00000000deadbeef")
	m.SetConfig("bench", "GPT3")
	m.SetConfig("epochs", "12")
	m.SetWeightsFingerprint("1122334455667788")
	m.RecordMetric("mre_pct", mre)
	mon := obs.NewAccuracyMonitor(obs.AccuracyConfig{})
	key := obs.AccuracyKey{Family: "Tran", Mesh: "1x1", Op: "GPT3"}
	mon.Observe(key, 1.0+mre/100, 1.0)
	mon.Observe(key, 1.0, 1.0)
	m.RecordAccuracy(mon)
	m.RecordAttribution("Tran", &predictor.Attribution{
		Samples: 2, MREPct: mre,
		ByOp: []predictor.AttributionBucket{{Key: "add", N: 2, Weight: 1, MREPct: mre, MaxPct: mre}},
	})
	m.RecordPlan(&planner.Report{
		Version: "PredTOP-Tran", Model: "GPT3", Platform: "p1", Microbatches: 16,
		Pipeline: planner.PipelineReport{SumStages: 1, MaxStage: 0.5, Total: 8.5},
		Stages:   []planner.StageReport{{}, {}},
	})
	m.Session.StartedUnix = 1700000000 + seed
	m.Session.WallSeconds = 1.5
	m.SetOutput("o", "/tmp/model.json")
	return m
}

func TestCanonicalJSONDeterministicAndSessionFree(t *testing.T) {
	a := fakeManifest(7, 30)
	b := fakeManifest(7, 30)
	// Different session facts must not disturb the canonical bytes.
	b.Session.StartedUnix += 999
	b.Session.WallSeconds = 77
	b.SetOutput("o", "/elsewhere/model.json")
	b.RecordSessionMetric("wall", 3)
	b.RecordBench("replay", 123456, 42)
	ja, err := a.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("canonical sections differ:\n%s\nvs\n%s", ja, jb)
	}
	ida, _ := a.RunID()
	idb, _ := b.RunID()
	if ida != idb || len(ida) != 16 {
		t.Fatalf("run ids %q vs %q", ida, idb)
	}
	// Any result-determining change must move the id.
	c := fakeManifest(7, 31)
	idc, _ := c.RunID()
	if idc == ida {
		t.Fatal("different results share a run id")
	}
	if !strings.Contains(string(ja), `"config_fingerprint"`) {
		t.Fatal("canonical JSON missing config fingerprint")
	}
}

func TestNilManifestAndStoreAreInert(t *testing.T) {
	var m *Manifest
	m.SetConfig("k", "v")
	m.SetOutput("o", "p")
	m.SetTraceID("x")
	m.SetWeightsFingerprint("f")
	m.RecordMetric("a", 1)
	m.RecordSessionMetric("b", 2)
	m.RecordBench("c", 1, 2)
	m.RecordAccuracy(nil)
	m.RecordAttribution("l", &predictor.Attribution{})
	m.RecordPlan(nil)
	var s *Store
	if e, err := s.Put(fakeManifest(1, 10)); err != nil || e.ID != "" {
		t.Fatalf("nil store Put: %+v, %v", e, err)
	}
	if entries, err := s.List(); err != nil || entries != nil {
		t.Fatalf("nil store List: %v, %v", entries, err)
	}
	if Open("") != nil {
		t.Fatal(`Open("") should disable the ledger`)
	}
}

func TestStorePutListResolve(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "runs")
	s := Open(dir)
	m1 := fakeManifest(7, 30)
	e1, err := s.Put(m1)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(e1.Path) != e1.ID+".json" {
		t.Fatalf("first store name %s for id %s", e1.Path, e1.ID)
	}
	// A same-canonical rerun must not overwrite: .N suffix.
	m1b := fakeManifest(7, 30)
	m1b.Session.WallSeconds = 99
	e1b, err := s.Put(m1b)
	if err != nil {
		t.Fatal(err)
	}
	if e1b.ID != e1.ID || e1b.Path == e1.Path {
		t.Fatalf("rerun: id %s path %s (first %s)", e1b.ID, e1b.Path, e1.Path)
	}
	if filepath.Base(e1b.Path) != e1.ID+".1.json" {
		t.Fatalf("rerun name %s", e1b.Path)
	}
	m2 := fakeManifest(8, 28)
	m2.Session.StartedUnix += 100
	e2, err := s.Put(m2)
	if err != nil {
		t.Fatal(err)
	}

	entries, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("listed %d entries", len(entries))
	}
	if entries[len(entries)-1].ID != e2.ID {
		t.Fatalf("latest entry %s, want %s", entries[len(entries)-1].ID, e2.ID)
	}

	for ref, want := range map[string]string{
		"latest":  e2.Path,
		e2.ID:     e2.Path,
		e2.ID[:6]: e2.Path,
		e1b.Path:  e1b.Path,
		e1.ID:     e1.Path, // exact id prefers the unsuffixed file
		"":        e2.Path,
	} {
		got, err := s.Resolve(ref)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", ref, err)
		}
		if got != want {
			t.Fatalf("Resolve(%q) = %s, want %s", ref, got, want)
		}
	}
	if _, err := s.Resolve("ffff"); err == nil {
		t.Fatal("unknown ref should fail")
	}
	if _, err := s.Resolve("baseline"); err == nil {
		t.Fatal("unpinned baseline should fail")
	}
	if _, err := s.SetBaseline(e1.ID); err != nil {
		t.Fatal(err)
	}
	got, err := s.Resolve("baseline")
	if err != nil || got != e1.Path {
		t.Fatalf("baseline resolves to %s (%v), want %s", got, err, e1.Path)
	}

	// Round-trip: loading preserves the canonical bytes and the id.
	loaded, err := Load(e1.Path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := loaded.RunID()
	if err != nil || id != e1.ID {
		t.Fatalf("loaded id %s (%v), want %s", id, err, e1.ID)
	}
}

func TestCompareAndGate(t *testing.T) {
	base := fakeManifest(7, 30)
	same := fakeManifest(7, 30)
	d := Compare(base, same, "a", "b")
	if !d.CanonicalIdentical {
		t.Fatal("identical manifests should compare identical")
	}
	if msgs := d.Gate(GateThresholds{MREPct: 0.1, LatencyPct: 1}); len(msgs) != 0 {
		t.Fatalf("identical runs gated: %v", msgs)
	}

	worse := fakeManifest(7, 36)
	worse.Canonical.Plans[0].Total = 9.5
	d = Compare(base, worse, "base", "new")
	if d.CanonicalIdentical {
		t.Fatal("diverged manifests compared identical")
	}
	msgs := d.Gate(GateThresholds{MREPct: 2, LatencyPct: 5})
	if len(msgs) != 2 {
		t.Fatalf("want MRE + latency regressions, got %v", msgs)
	}
	if !strings.Contains(msgs[0], "accuracy") || !strings.Contains(msgs[1], "plan") {
		t.Fatalf("unexpected gate messages: %v", msgs)
	}
	// Within thresholds: no gate.
	if msgs := d.Gate(GateThresholds{MREPct: 10, LatencyPct: 50}); len(msgs) != 0 {
		t.Fatalf("thresholds not honored: %v", msgs)
	}
	// Disabled gates never fire.
	if msgs := d.Gate(GateThresholds{}); len(msgs) != 0 {
		t.Fatalf("disabled gate fired: %v", msgs)
	}

	out := d.Render()
	for _, want := range []string{
		"=== run diff: base → new ===",
		"canonical sections: DIFFER",
		"accuracy (MRE %)",
		"plans (Eqn-4 total, s)",
		"error attribution (MRE %)",
		"add", // the op bucket key appears in the attribution table
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff rendering missing %q:\n%s", want, out)
		}
	}
	ident := Compare(base, same, "a", "b").Render()
	if !strings.Contains(ident, "canonical sections: identical") {
		t.Fatalf("identical rendering:\n%s", ident)
	}
}

func TestManifestJSONCarriesFingerprint(t *testing.T) {
	m := fakeManifest(3, 20)
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var round Manifest
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatal(err)
	}
	if round.Canonical.ConfigFingerprint != m.Canonical.configFingerprint() {
		t.Fatalf("stored fingerprint %q, want %q",
			round.Canonical.ConfigFingerprint, m.Canonical.configFingerprint())
	}
	if round.Session.Outputs["o"] != "/tmp/model.json" {
		t.Fatal("session outputs lost in round trip")
	}
}
