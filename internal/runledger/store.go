package runledger

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// baselineFile is the store-relative pin written by SetBaseline: the file
// name of the manifest regressions are gated against.
const baselineFile = "BASELINE"

// Store is a content-addressed manifest directory (conventionally "runs/").
// A run is stored as <run-id>.json; reruns with an identical canonical
// section — same content address — take .1, .2, … suffixes instead of
// overwriting, the same collision discipline the BENCH_* archives use, so a
// baseline captured before a change always survives the "after" run.
//
// A nil *Store is fully inert: Put and friends succeed as no-ops, so tools
// thread one pointer and pay nothing when the ledger is off.
type Store struct {
	dir string
}

// Open returns a store rooted at dir ("" returns nil: ledger off). The
// directory is created lazily on first Put.
func Open(dir string) *Store {
	if dir == "" {
		return nil
	}
	return &Store{dir: dir}
}

// Dir returns the store directory ("" on nil).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Entry is one stored run, as listed: its content address, file path, and
// the identity fields list/resolve need without loading full manifests.
type Entry struct {
	ID          string  `json:"id"`
	Path        string  `json:"path"`
	Tool        string  `json:"tool"`
	Seed        int64   `json:"seed"`
	StartedUnix int64   `json:"started_unix"`
	WallSeconds float64 `json:"wall_seconds"`
}

// Put stores the manifest and returns its entry. The zero entry and nil
// error mean the store is nil (ledger off).
func (s *Store) Put(m *Manifest) (Entry, error) {
	if s == nil || m == nil {
		return Entry{}, nil
	}
	id, err := m.RunID()
	if err != nil {
		return Entry{}, err
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return Entry{}, err
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return Entry{}, err
	}
	b = append(b, '\n')
	path := filepath.Join(s.dir, id+".json")
	for n := 1; ; n++ {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			break
		}
		path = filepath.Join(s.dir, fmt.Sprintf("%s.%d.json", id, n))
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return Entry{}, err
	}
	return Entry{
		ID: id, Path: path, Tool: m.Canonical.Tool, Seed: m.Canonical.Seed,
		StartedUnix: m.Session.StartedUnix, WallSeconds: m.Session.WallSeconds,
	}, nil
}

// Load reads one manifest file.
func Load(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("runledger: parse %s: %w", path, err)
	}
	return &m, nil
}

// List returns every stored run, oldest first (start time, then file name —
// the .N rerun suffixes sort after their originals). Nil store lists empty.
func (s *Store) List() ([]Entry, error) {
	if s == nil {
		return nil, nil
	}
	names, err := filepath.Glob(filepath.Join(s.dir, "*.json"))
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, path := range names {
		m, err := Load(path)
		if err != nil {
			return nil, err
		}
		id, err := m.RunID()
		if err != nil {
			return nil, err
		}
		out = append(out, Entry{
			ID: id, Path: path, Tool: m.Canonical.Tool, Seed: m.Canonical.Seed,
			StartedUnix: m.Session.StartedUnix, WallSeconds: m.Session.WallSeconds,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartedUnix != out[j].StartedUnix {
			return out[i].StartedUnix < out[j].StartedUnix
		}
		if out[i].ID != out[j].ID {
			return out[i].Path < out[j].Path
		}
		// Same id: the unsuffixed original first, then .1, .2, … — length
		// before lexicographic so .2 sorts before .10.
		if len(out[i].Path) != len(out[j].Path) {
			return len(out[i].Path) < len(out[j].Path)
		}
		return out[i].Path < out[j].Path
	})
	return out, nil
}

// Resolve turns a run reference into a manifest file path. Accepted forms:
//
//   - "latest" (or ""): the newest stored run
//   - "baseline": the pinned baseline (see SetBaseline)
//   - an existing file path (used verbatim)
//   - a run id or unique id prefix, optionally with a ".N" rerun suffix
func (s *Store) Resolve(ref string) (string, error) {
	if s == nil {
		return "", fmt.Errorf("runledger: no store open")
	}
	switch ref {
	case "", "latest":
		entries, err := s.List()
		if err != nil {
			return "", err
		}
		if len(entries) == 0 {
			return "", fmt.Errorf("runledger: no runs recorded in %s", s.dir)
		}
		return entries[len(entries)-1].Path, nil
	case "baseline":
		return s.Baseline()
	}
	if _, err := os.Stat(ref); err == nil {
		return ref, nil
	}
	// An id (or prefix) names files <id>.json and <id>.N.json; prefer the
	// exact file, else require a unique prefix match.
	if p := filepath.Join(s.dir, ref+".json"); fileExists(p) {
		return p, nil
	}
	matches, err := filepath.Glob(filepath.Join(s.dir, ref+"*.json"))
	if err != nil {
		return "", err
	}
	switch len(matches) {
	case 0:
		return "", fmt.Errorf("runledger: no run matches %q in %s", ref, s.dir)
	case 1:
		return matches[0], nil
	default:
		sort.Strings(matches)
		return "", fmt.Errorf("runledger: %q is ambiguous (%s)", ref, strings.Join(bases(matches), ", "))
	}
}

// SetBaseline resolves ref and pins it as the store's baseline, returning
// the pinned path.
func (s *Store) SetBaseline(ref string) (string, error) {
	path, err := s.Resolve(ref)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return "", err
	}
	// Pin the file name, not the absolute path, so the store directory can
	// move (or live inside a temp dir in tests) without dangling.
	name := filepath.Base(path)
	if err := os.WriteFile(filepath.Join(s.dir, baselineFile), []byte(name+"\n"), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Baseline returns the pinned baseline's path.
func (s *Store) Baseline() (string, error) {
	if s == nil {
		return "", fmt.Errorf("runledger: no store open")
	}
	b, err := os.ReadFile(filepath.Join(s.dir, baselineFile))
	if err != nil {
		if os.IsNotExist(err) {
			return "", fmt.Errorf("runledger: no baseline pinned in %s (use the baseline subcommand)", s.dir)
		}
		return "", err
	}
	name := strings.TrimSpace(string(b))
	path := filepath.Join(s.dir, name)
	if !fileExists(path) {
		return "", fmt.Errorf("runledger: pinned baseline %s is gone", path)
	}
	return path, nil
}

func fileExists(p string) bool {
	_, err := os.Stat(p)
	return err == nil
}

func bases(paths []string) []string {
	out := make([]string, len(paths))
	for i, p := range paths {
		out[i] = filepath.Base(p)
	}
	return out
}
