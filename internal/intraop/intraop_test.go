package intraop

import (
	"math"
	"math/rand"
	"testing"

	"predtop/internal/cluster"
	"predtop/internal/ir"
	"predtop/internal/models"
)

func scenario(p cluster.Platform, meshIdx, confIdx int) cluster.Scenario {
	for _, sc := range cluster.Scenarios(p) {
		if sc.Mesh.Index == meshIdx && sc.Config.Index == confIdx {
			return sc
		}
	}
	panic("scenario not found")
}

// smallChain builds x·W1 → gelu-ish → ·W2 → ·W3 with three weight matmuls.
func smallChain() *ir.Graph {
	b := ir.NewBuilder()
	x := b.Input("x", []int{256, 512}, ir.BF16)
	w1 := b.Weight("w1", []int{512, 2048}, ir.BF16)
	h := b.Dot(x, w1)
	h = b.Unary(ir.KindTanh, h)
	w2 := b.Weight("w2", []int{2048, 512}, ir.BF16)
	h = b.Dot(h, w2)
	w3 := b.Weight("w3", []int{512, 512}, ir.BF16)
	y := b.Dot(h, w3)
	b.Output(y)
	return b.Graph()
}

func TestIsWeightDotDetection(t *testing.T) {
	g := smallChain()
	if NumWeightDots(g) != 3 {
		t.Fatalf("weight dots: %d", NumWeightDots(g))
	}
	// Mixed-precision converts are unwrapped: model graphs store f32 weights
	// converted to bf16 before the dot.
	m := models.Build(models.GPT3())
	sg := m.StageGraph(2, 3, false)
	if NumWeightDots(sg) < 6 { // qkvo + ffn up/down
		t.Fatalf("GPT layer weight dots: %d", NumWeightDots(sg))
	}
}

func TestOptimizeMatchesBruteForce(t *testing.T) {
	g := smallChain()
	for _, sc := range []cluster.Scenario{
		scenario(cluster.Platform2(), 2, 2), // 2-way MP
		scenario(cluster.Platform2(), 3, 2), // 2-DP × 2-MP
		scenario(cluster.Platform2(), 3, 3), // 4-way MP
	} {
		opt := Optimize(g, sc)
		if !opt.Feasible {
			t.Fatalf("%v infeasible", sc)
		}
		best := math.Inf(1)
		n := NumWeightDots(g)
		combos := 1
		for i := 0; i < n; i++ {
			combos *= int(numStrategies)
		}
		for c := 0; c < combos; c++ {
			strat := make([]Strategy, n)
			v := c
			for i := 0; i < n; i++ {
				strat[i] = Strategy(v % int(numStrategies))
				v /= int(numStrategies)
			}
			r := Evaluate(g, sc, strat)
			if r.Latency < best {
				best = r.Latency
			}
		}
		if math.Abs(opt.Latency-best)/best > 1e-9 {
			t.Fatalf("%v: DP found %v, brute force %v", sc, opt.Latency, best)
		}
	}
}

func TestOptimalNeverWorseThanRandom(t *testing.T) {
	m := models.Build(models.GPT3())
	g := m.StageGraph(2, 4, true)
	rng := rand.New(rand.NewSource(7))
	for _, sc := range cluster.Scenarios(cluster.Platform2()) {
		opt := Optimize(g, sc)
		if !opt.Feasible {
			continue
		}
		for trial := 0; trial < 20; trial++ {
			r := Evaluate(g, sc, RandomStrategies(g, rng))
			if r.Feasible && r.Latency < opt.Latency-1e-12 {
				t.Fatalf("%v: random plan %v beats optimal %v", sc, r.Latency, opt.Latency)
			}
		}
	}
}

func TestRandomPlansVaryWidely(t *testing.T) {
	// Precondition for Fig 2: different intra-op plans of the same stage on
	// the same hardware differ substantially in latency.
	m := models.Build(models.GPT3())
	g := m.StageGraph(2, 4, true)
	sc := scenario(cluster.Platform2(), 3, 3)
	rng := rand.New(rand.NewSource(11))
	lo, hi := math.Inf(1), 0.0
	for trial := 0; trial < 40; trial++ {
		r := Evaluate(g, sc, RandomStrategies(g, rng))
		if r.Latency < lo {
			lo = r.Latency
		}
		if r.Latency > hi {
			hi = r.Latency
		}
	}
	if hi/lo < 1.3 {
		t.Fatalf("random plans too uniform: [%v, %v]", lo, hi)
	}
}

func TestModelParallelHelpsBigStages(t *testing.T) {
	// For a many-layer stage, 2-way MP on NVLink must beat replicated
	// single-GPU execution per microbatch.
	m := models.Build(models.GPT3())
	g := m.StageGraph(2, 8, true)
	single := Optimize(g, scenario(cluster.Platform1(), 1, 1))
	mp2 := Optimize(g, scenario(cluster.Platform1(), 2, 2))
	if !single.Feasible || !mp2.Feasible {
		t.Fatal("stage should fit both configs on A40s")
	}
	if mp2.Latency >= single.Latency {
		t.Fatalf("2-way MP (%v) should beat single GPU (%v)", mp2.Latency, single.Latency)
	}
}

func TestCrossNodeMPPaysEthernet(t *testing.T) {
	// 4-way MP on Platform 2 spans the 10 GbE link; for a modest stage the
	// all-reduces can erase the compute gains vs 2-way NVLink MP.
	m := models.Build(models.GPT3())
	g := m.StageGraph(2, 3, true)
	mp2 := Optimize(g, scenario(cluster.Platform2(), 2, 2))
	mp4 := Optimize(g, scenario(cluster.Platform2(), 3, 3))
	if !mp2.Feasible || !mp4.Feasible {
		t.Fatal("both configs should be feasible")
	}
	if mp4.Latency < mp2.Latency*0.8 {
		t.Fatalf("cross-node MP unrealistically fast: mp4=%v mp2=%v", mp4.Latency, mp2.Latency)
	}
}

func TestInfeasibleStage(t *testing.T) {
	m := models.Build(models.GPT3())
	full := m.StageGraph(0, m.NumSegments(), true)
	r := Optimize(full, scenario(cluster.Platform2(), 1, 1))
	if r.Feasible || !math.IsInf(r.Latency, 1) {
		t.Fatal("full GPT-3 training on one A5500 must be infeasible")
	}
}

func TestStrategiesRecorded(t *testing.T) {
	g := smallChain()
	sc := scenario(cluster.Platform2(), 2, 2)
	r := Optimize(g, sc)
	if len(r.Strategies) != NumWeightDots(g) {
		t.Fatalf("recorded %d strategies for %d weight dots", len(r.Strategies), NumWeightDots(g))
	}
	// Re-evaluating the recorded plan reproduces the optimal latency.
	r2 := Evaluate(g, sc, r.Strategies)
	if math.Abs(r2.Latency-r.Latency)/r.Latency > 1e-9 {
		t.Fatalf("replay mismatch: %v vs %v", r2.Latency, r.Latency)
	}
}

func TestDPConfigSyncsGradients(t *testing.T) {
	// Pure data parallelism must pay a gradient all-reduce: on mesh 2 the
	// same stage is slower under DP-2 than half of the single-GPU latency.
	m := models.Build(models.GPT3())
	g := m.StageGraph(2, 3, true)
	single := Optimize(g, scenario(cluster.Platform2(), 1, 1))
	dp2 := Optimize(g, scenario(cluster.Platform2(), 2, 1))
	if dp2.Latency <= single.Latency/2 {
		t.Fatalf("DP-2 (%v) cannot be a free 2x over single (%v)", dp2.Latency, single.Latency)
	}
}

// TestOptimalNeverWorseThanReplicated: the DP must never lose to the
// all-replicated fallback plan, for any stage and scenario.
func TestOptimalNeverWorseThanReplicated(t *testing.T) {
	m := models.Build(models.MoE())
	for _, r := range [][2]int{{1, 2}, {2, 4}, {0, 3}} {
		g := m.StageGraph(r[0], r[1], true)
		for _, sc := range cluster.Scenarios(cluster.Platform2()) {
			opt := Optimize(g, sc)
			if !opt.Feasible {
				continue
			}
			rep := Evaluate(g, sc, replicatedPlan(NumWeightDots(g)))
			if opt.Latency > rep.Latency+1e-12 {
				t.Fatalf("%v stage %v: optimal %v worse than replicated %v", sc, r, opt.Latency, rep.Latency)
			}
		}
	}
}

// TestLatencyScalesWithStageSize: more segments, more latency, everywhere.
func TestLatencyScalesWithStageSize(t *testing.T) {
	m := models.Build(models.GPT3())
	for _, sc := range cluster.Scenarios(cluster.Platform1()) {
		prev := 0.0
		for hi := 3; hi <= 9; hi += 3 {
			g := m.StageGraph(2, hi, true)
			res := Optimize(g, sc)
			if !res.Feasible {
				continue
			}
			if res.Latency <= prev {
				t.Fatalf("%v: latency not increasing at hi=%d (%v <= %v)", sc, hi, res.Latency, prev)
			}
			prev = res.Latency
		}
	}
}

func TestMemGBReported(t *testing.T) {
	m := models.Build(models.GPT3())
	g := m.StageGraph(2, 4, true)
	res := Optimize(g, scenario(cluster.Platform1(), 1, 1))
	if res.MemGB <= 0 {
		t.Fatalf("memory estimate %v", res.MemGB)
	}
}
