// Package ir implements a Jaxpr-like tensor-level intermediate representation
// for deep-learning computations.
//
// A Graph is a directed acyclic graph whose nodes are tensor operations
// (dot_general, element-wise arithmetic, reductions, data movement, and
// collective communication). Nodes carry only metadata — operator kind,
// output shape, output dtype, and node class (input / literal / operator /
// output, Table I of the paper) — never numeric data: the IR exists to be
// costed by the simulator and embedded by the predictors, not executed.
package ir

import (
	"fmt"
	"strings"
)

// DType is a tensor element type.
type DType uint8

// Element types mirroring the JAX dtypes that appear in model stage graphs.
const (
	F32 DType = iota
	F16
	BF16
	I32
	U32
	Bool
	numDTypes
)

// NumDTypes is the size of a dtype one-hot encoding.
const NumDTypes = int(numDTypes)

// Size returns the width of the dtype in bytes.
func (d DType) Size() int {
	switch d {
	case F32, I32, U32:
		return 4
	case F16, BF16:
		return 2
	case Bool:
		return 1
	}
	return 4
}

// String implements fmt.Stringer.
func (d DType) String() string {
	switch d {
	case F32:
		return "f32"
	case F16:
		return "f16"
	case BF16:
		return "bf16"
	case I32:
		return "i32"
	case U32:
		return "u32"
	case Bool:
		return "bool"
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// Class distinguishes the four node roles of Table I.
type Class uint8

// Node classes (Table I "Node Type").
const (
	ClassInput Class = iota
	ClassLiteral
	ClassOperator
	ClassOutput
	numClasses
)

// NumClasses is the size of a class one-hot encoding.
const NumClasses = int(numClasses)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassInput:
		return "input"
	case ClassLiteral:
		return "literal"
	case ClassOperator:
		return "operator"
	case ClassOutput:
		return "output"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Kind is the operator type of a node (Table I "Operator Type").
type Kind uint8

// Operator kinds. KindNone is used for input/literal/output nodes.
const (
	KindNone Kind = iota
	KindDot
	KindAdd
	KindSub
	KindMul
	KindDiv
	KindNeg
	KindExp
	KindLog
	KindTanh
	KindErf
	KindRsqrt
	KindSqrt
	KindMax
	KindMin
	KindCompare
	KindSelect
	KindReduceSum
	KindReduceMax
	KindBroadcast
	KindReshape
	KindTranspose
	KindConvert
	KindGather
	KindScatter
	KindIota
	KindConcat
	KindSlice
	KindOneHot
	KindCumSum
	KindAllReduce
	KindAllGather
	KindReduceScatter
	numKinds
)

// NumKinds is the size of an operator-type one-hot encoding.
const NumKinds = int(numKinds)

var kindNames = [...]string{
	"none", "dot_general", "add", "sub", "mul", "div", "neg", "exp", "log",
	"tanh", "erf", "rsqrt", "sqrt", "max", "min", "compare", "select",
	"reduce_sum", "reduce_max", "broadcast_in_dim", "reshape", "transpose",
	"convert_element_type", "gather", "scatter", "iota", "concatenate",
	"slice", "one_hot", "cumsum", "all_reduce", "all_gather", "reduce_scatter",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsElementwise reports whether k is a cheap element-wise operator, the class
// the simulator fuses into its producer and the pruner may elide.
func (k Kind) IsElementwise() bool {
	switch k {
	case KindAdd, KindSub, KindMul, KindDiv, KindNeg, KindExp, KindLog,
		KindTanh, KindErf, KindRsqrt, KindSqrt, KindMax, KindMin,
		KindCompare, KindSelect:
		return true
	}
	return false
}

// IsCollective reports whether k is a communication collective.
func (k Kind) IsCollective() bool {
	switch k {
	case KindAllReduce, KindAllGather, KindReduceScatter:
		return true
	}
	return false
}

// Node is one vertex of the operator DAG.
type Node struct {
	ID    int
	Kind  Kind
	Class Class
	Shape []int
	DType DType
	Ins   []*Node
	Label string

	// Param marks a literal that is a trainable model weight; the
	// intra-operator optimizer only considers sharding these.
	Param bool
	// Axes holds reduction axes (reduce/cumsum) or a transpose permutation.
	Axes []int
}

// NumElements returns the number of elements of the node's output.
func (n *Node) NumElements() int {
	p := 1
	for _, d := range n.Shape {
		p *= d
	}
	return p
}

// Bytes returns the output size in bytes.
func (n *Node) Bytes() int { return n.NumElements() * n.DType.Size() }

// Flops estimates the floating-point work of the node from shapes alone.
func (n *Node) Flops() int64 {
	switch n.Kind {
	case KindDot:
		// 2·(output elements)·(contraction length). The contraction length
		// is the last axis of the first input.
		if len(n.Ins) > 0 {
			ash := n.Ins[0].Shape
			k := 1
			if len(ash) > 0 {
				k = ash[len(ash)-1]
			}
			return 2 * int64(n.NumElements()) * int64(k)
		}
		return 2 * int64(n.NumElements())
	case KindReduceSum, KindReduceMax, KindCumSum:
		if len(n.Ins) > 0 {
			return int64(n.Ins[0].NumElements())
		}
		return int64(n.NumElements())
	case KindNone:
		return 0
	default:
		if n.Kind.IsCollective() {
			return 0
		}
		return int64(n.NumElements())
	}
}

// ShapeString renders the dtype and shape like jaxpr, e.g. "f32[64,128]".
func (n *Node) ShapeString() string {
	dims := make([]string, len(n.Shape))
	for i, d := range n.Shape {
		dims[i] = fmt.Sprint(d)
	}
	return fmt.Sprintf("%s[%s]", n.DType, strings.Join(dims, ","))
}

// String renders the node for debugging.
func (n *Node) String() string {
	name := n.Kind.String()
	if n.Class != ClassOperator {
		name = n.Class.String()
	}
	return fmt.Sprintf("%%%d:%s = %s(%s)", n.ID, n.ShapeString(), name, insIDs(n.Ins))
}

func insIDs(ins []*Node) string {
	parts := make([]string, len(ins))
	for i, in := range ins {
		parts[i] = fmt.Sprintf("%%%d", in.ID)
	}
	return strings.Join(parts, ", ")
}

// Graph is an operator DAG in topological order (every node appears after
// all of its inputs).
type Graph struct {
	Nodes   []*Node
	Inputs  []*Node
	Outputs []*Node
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// Validate checks topological ordering, ID consistency, class invariants,
// and shape sanity. It returns the first violation found.
func (g *Graph) Validate() error {
	seen := make(map[*Node]bool, len(g.Nodes))
	for i, n := range g.Nodes {
		if n.ID != i {
			return fmt.Errorf("ir: node at position %d has ID %d", i, n.ID)
		}
		for _, in := range n.Ins {
			if !seen[in] {
				return fmt.Errorf("ir: node %%%d uses input %%%d that does not precede it", n.ID, in.ID)
			}
		}
		switch n.Class {
		case ClassInput, ClassLiteral:
			if len(n.Ins) != 0 {
				return fmt.Errorf("ir: %s node %%%d has inputs", n.Class, n.ID)
			}
		case ClassOperator:
			if n.Kind == KindNone {
				return fmt.Errorf("ir: operator node %%%d has no kind", n.ID)
			}
			if len(n.Ins) == 0 && n.Kind != KindIota {
				return fmt.Errorf("ir: operator node %%%d (%s) has no inputs", n.ID, n.Kind)
			}
		case ClassOutput:
			if len(n.Ins) != 1 {
				return fmt.Errorf("ir: output node %%%d must have exactly one input", n.ID)
			}
		}
		for _, d := range n.Shape {
			if d <= 0 {
				return fmt.Errorf("ir: node %%%d has non-positive dimension %v", n.ID, n.Shape)
			}
		}
		seen[n] = true
	}
	return nil
}

// Stats summarizes a graph for reporting.
type Stats struct {
	Nodes      int
	Operators  int
	TotalFlops int64
	TotalBytes int64
	ParamBytes int64
}

// ComputeStats tallies node counts, flops, and byte volumes.
func (g *Graph) ComputeStats() Stats {
	var s Stats
	s.Nodes = len(g.Nodes)
	for _, n := range g.Nodes {
		if n.Class == ClassOperator {
			s.Operators++
			s.TotalFlops += n.Flops()
		}
		s.TotalBytes += int64(n.Bytes())
		if n.Param {
			s.ParamBytes += int64(n.Bytes())
		}
	}
	return s
}

// Consumers returns, for each node ID, the list of nodes that consume it.
func (g *Graph) Consumers() [][]*Node {
	out := make([][]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, in := range n.Ins {
			out[in.ID] = append(out[in.ID], n)
		}
	}
	return out
}

// DOT renders the graph in Graphviz format for inspection.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", name)
	for _, n := range g.Nodes {
		label := n.Kind.String()
		if n.Class != ClassOperator {
			label = n.Class.String()
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\\n%s\"];\n", n.ID, label, n.ShapeString())
	}
	for _, n := range g.Nodes {
		for _, in := range n.Ins {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", in.ID, n.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Render prints the graph one node per line, jaxpr-style.
func (g *Graph) Render() string {
	var b strings.Builder
	for _, n := range g.Nodes {
		b.WriteString(n.String())
		b.WriteByte('\n')
	}
	return b.String()
}
