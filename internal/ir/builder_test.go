package ir

import "testing"

func TestEwiseBroadcastRules(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", []int{4, 8, 16}, F32)
	prefix2 := b.Input("p2", []int{4, 8}, F32)
	prefix1 := b.Input("p1", []int{4}, F32)
	scalar := b.Literal("s", []int{1}, F32)

	for _, y := range []*Node{prefix2, prefix1, scalar} {
		out := b.Ewise(KindAdd, x, y)
		if !sameShape(out.Shape, x.Shape) {
			t.Fatalf("broadcast vs %v: %v", y.Shape, out.Shape)
		}
		// Symmetric: smaller operand first.
		out = b.Ewise(KindMul, y, x)
		if !sameShape(out.Shape, x.Shape) {
			t.Fatalf("reverse broadcast vs %v: %v", y.Shape, out.Shape)
		}
	}
}

func TestEwiseIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder()
	x := b.Input("x", []int{4, 8}, F32)
	y := b.Input("y", []int{8}, F32) // suffix, not prefix
	b.Ewise(KindAdd, x, y)
}

func TestCompareProducesBool(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", []int{3}, F32)
	c := b.Ewise(KindCompare, x, x)
	if c.DType != Bool {
		t.Fatalf("compare dtype %v", c.DType)
	}
}

func TestSelectBroadcast(t *testing.T) {
	b := NewBuilder()
	pred := b.Input("p", []int{4}, Bool)
	x := b.Input("x", []int{4, 8}, F32)
	s := b.Literal("zero", []int{1}, F32)
	out := b.Select(pred, x, s)
	if !sameShape(out.Shape, []int{4, 8}) {
		t.Fatalf("select shape %v", out.Shape)
	}
}

func TestConcatSliceOneHotCumSumIota(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", []int{4, 3}, F32)
	y := b.Input("y", []int{4, 5}, F32)
	cat := b.Concat(1, x, y)
	if !sameShape(cat.Shape, []int{4, 8}) {
		t.Fatalf("concat %v", cat.Shape)
	}
	sl := b.Slice(cat, []int{4, 3})
	if !sameShape(sl.Shape, []int{4, 3}) {
		t.Fatalf("slice %v", sl.Shape)
	}
	idx := b.Iota([]int{6}, I32)
	if idx.Kind != KindIota || idx.DType != I32 {
		t.Fatalf("iota %v %v", idx.Kind, idx.DType)
	}
	oh := b.OneHot(idx, 10, F32)
	if !sameShape(oh.Shape, []int{6, 10}) {
		t.Fatalf("one-hot %v", oh.Shape)
	}
	cs := b.CumSum(oh, 0)
	if !sameShape(cs.Shape, oh.Shape) || cs.Axes[0] != 0 {
		t.Fatalf("cumsum %v %v", cs.Shape, cs.Axes)
	}
}

func TestAllReducePreservesShape(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", []int{128, 64}, BF16)
	ar := b.AllReduce(x)
	if !sameShape(ar.Shape, x.Shape) || !ar.Kind.IsCollective() {
		t.Fatalf("all-reduce %v", ar)
	}
	if ar.Flops() != 0 {
		t.Fatal("collectives carry no local flops")
	}
}

func TestReshapeCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder()
	x := b.Input("x", []int{4, 4}, F32)
	b.Reshape(x, []int{5, 3})
}

func TestDTypeSizes(t *testing.T) {
	cases := map[DType]int{F32: 4, F16: 2, BF16: 2, I32: 4, U32: 4, Bool: 1}
	for dt, want := range cases {
		if dt.Size() != want {
			t.Fatalf("%v size %d", dt, dt.Size())
		}
	}
	for dt := DType(0); dt < DType(NumDTypes); dt++ {
		if dt.String() == "" {
			t.Fatalf("dtype %d unnamed", dt)
		}
	}
}

func TestNodeBytesAndShapeString(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", []int{3, 5}, F16)
	if x.Bytes() != 3*5*2 {
		t.Fatalf("bytes %d", x.Bytes())
	}
	if got := x.ShapeString(); got != "f16[3,5]" {
		t.Fatalf("shape string %q", got)
	}
}

func TestReduceAllAxes(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", []int{3, 5}, F32)
	r := b.Reduce(KindReduceSum, x, 0, 1)
	if !sameShape(r.Shape, []int{1}) {
		t.Fatalf("full reduce %v", r.Shape)
	}
}

func TestBackwardOfEwiseBroadcastReduces(t *testing.T) {
	// Gradient of an implicitly-broadcast operand must be reduced back to
	// its shape.
	b := NewBuilder()
	x := b.Input("x", []int{4, 8}, F32)
	bias := b.Weight("bias", []int{4}, F32)
	y := b.Ewise(KindAdd, x, bias)
	b.Output(y)
	b.AppendBackward()
	g := b.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The bias gradient output must have the bias shape.
	found := false
	for _, o := range g.Outputs[1:] {
		if sameShape(o.Shape, []int{4}) {
			found = true
		}
	}
	if !found {
		t.Fatal("no [4]-shaped gradient output for broadcast bias")
	}
}

func TestBackwardScalarLiteralGrad(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", []int{4, 8}, F32)
	c := b.Weight("c", []int{1}, F32)
	y := b.Ewise(KindMul, x, c)
	b.Output(y)
	b.AppendBackward()
	g := b.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range g.Outputs[1:] {
		if len(o.Shape) == 1 && o.Shape[0] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("no scalar gradient output")
	}
}
