package ir

import "fmt"

// Builder constructs Graphs with per-op shape inference, mirroring how JAX
// traces a function into a jaxpr.
type Builder struct {
	nodes   []*Node
	inputs  []*Node
	outputs []*Node
}

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return &Builder{} }

func (b *Builder) add(n *Node) *Node {
	n.ID = len(b.nodes)
	b.nodes = append(b.nodes, n)
	return n
}

func cloneShape(s []int) []int {
	out := make([]int, len(s))
	copy(out, s)
	return out
}

func (b *Builder) fail(format string, args ...any) {
	panic("ir: " + fmt.Sprintf(format, args...))
}

// Input declares a graph input (e.g. the activation entering a stage).
func (b *Builder) Input(label string, shape []int, dt DType) *Node {
	n := b.add(&Node{Class: ClassInput, Shape: cloneShape(shape), DType: dt, Label: label})
	b.inputs = append(b.inputs, n)
	return n
}

// Weight declares a trainable parameter literal.
func (b *Builder) Weight(label string, shape []int, dt DType) *Node {
	return b.add(&Node{Class: ClassLiteral, Shape: cloneShape(shape), DType: dt, Label: label, Param: true})
}

// Literal declares a constant (non-trainable) literal.
func (b *Builder) Literal(label string, shape []int, dt DType) *Node {
	return b.add(&Node{Class: ClassLiteral, Shape: cloneShape(shape), DType: dt, Label: label})
}

// Output marks x as a graph output.
func (b *Builder) Output(x *Node) *Node {
	n := b.add(&Node{Class: ClassOutput, Shape: cloneShape(x.Shape), DType: x.DType, Ins: []*Node{x}})
	b.outputs = append(b.outputs, n)
	return n
}

// Dot emits a dot_general contracting the last axis of a with the
// second-to-last (or only) axis of b. Leading batch axes of a are kept:
//
//	[..., m, k] · [k, n] → [..., m, n]
//	[..., m, k] · [..., k, n] → [..., m, n]  (equal batch prefixes)
func (b *Builder) Dot(a, c *Node) *Node {
	ash, bsh := a.Shape, c.Shape
	if len(ash) < 1 || len(bsh) < 2 {
		b.fail("Dot needs rank ≥1 · rank ≥2, got %v · %v", ash, bsh)
	}
	k := ash[len(ash)-1]
	if bsh[len(bsh)-2] != k {
		b.fail("Dot contraction mismatch %v · %v", ash, bsh)
	}
	n := bsh[len(bsh)-1]
	if len(bsh) > 2 {
		// Batched RHS: batch prefixes must match.
		if len(ash) != len(bsh) {
			b.fail("Dot batched rank mismatch %v · %v", ash, bsh)
		}
		for i := 0; i < len(bsh)-2; i++ {
			if ash[i] != bsh[i] {
				b.fail("Dot batch dim mismatch %v · %v", ash, bsh)
			}
		}
	}
	out := append(cloneShape(ash[:len(ash)-1]), n)
	return b.add(&Node{Class: ClassOperator, Kind: KindDot, Shape: out, DType: a.DType, Ins: []*Node{a, c}})
}

// Ewise emits an element-wise binary operator. Operands may differ in shape
// when one broadcasts into the other: a scalar ([1] or [1,…]) or a leading
// prefix of the larger shape (the keepdims-free reduction pattern jaxprs
// produce). The output takes the larger shape.
func (b *Builder) Ewise(k Kind, x, y *Node) *Node {
	out, ok := broadcastShapes(x.Shape, y.Shape)
	if !ok {
		b.fail("%s shape mismatch %v vs %v", k, x.Shape, y.Shape)
	}
	dt := x.DType
	if k == KindCompare {
		dt = Bool
	}
	return b.add(&Node{Class: ClassOperator, Kind: k, Shape: out, DType: dt, Ins: []*Node{x, y}})
}

// broadcastShapes returns the common shape of an element-wise op whose
// operands may be equal, scalar, or a leading prefix of one another.
func broadcastShapes(a, b []int) ([]int, bool) {
	switch {
	case sameShape(a, b):
		return cloneShape(a), true
	case isScalarShape(a) || isPrefixShape(a, b):
		return cloneShape(b), true
	case isScalarShape(b) || isPrefixShape(b, a):
		return cloneShape(a), true
	}
	return nil, false
}

func isScalarShape(s []int) bool {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n == 1
}

// isPrefixShape reports whether small equals the leading dims of big.
func isPrefixShape(small, big []int) bool {
	if len(small) >= len(big) {
		return false
	}
	for i, d := range small {
		if big[i] != d {
			return false
		}
	}
	return true
}

// Unary emits an element-wise unary operator.
func (b *Builder) Unary(k Kind, x *Node) *Node {
	return b.add(&Node{Class: ClassOperator, Kind: k, Shape: cloneShape(x.Shape), DType: x.DType, Ins: []*Node{x}})
}

// Select emits select(pred, x, y); operands follow the same broadcasting
// rules as Ewise, with pred shaped like the result or a broadcastable prefix.
func (b *Builder) Select(pred, x, y *Node) *Node {
	out, ok := broadcastShapes(x.Shape, y.Shape)
	if !ok {
		b.fail("Select shape mismatch %v : %v", x.Shape, y.Shape)
	}
	if _, pok := broadcastShapes(pred.Shape, out); !pok {
		b.fail("Select predicate shape %v incompatible with %v", pred.Shape, out)
	}
	return b.add(&Node{Class: ClassOperator, Kind: KindSelect, Shape: out, DType: x.DType, Ins: []*Node{pred, x, y}})
}

// Reduce emits a reduction over the given axes (KindReduceSum/KindReduceMax).
func (b *Builder) Reduce(k Kind, x *Node, axes ...int) *Node {
	drop := make(map[int]bool, len(axes))
	for _, a := range axes {
		if a < 0 || a >= len(x.Shape) {
			b.fail("Reduce axis %d out of range for %v", a, x.Shape)
		}
		drop[a] = true
	}
	var out []int
	for i, d := range x.Shape {
		if !drop[i] {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return b.add(&Node{Class: ClassOperator, Kind: k, Shape: out, DType: x.DType, Ins: []*Node{x}, Axes: cloneShape(axes)})
}

// Broadcast emits broadcast_in_dim to the target shape.
func (b *Builder) Broadcast(x *Node, shape []int) *Node {
	return b.add(&Node{Class: ClassOperator, Kind: KindBroadcast, Shape: cloneShape(shape), DType: x.DType, Ins: []*Node{x}})
}

// Reshape emits a reshape; element counts must match.
func (b *Builder) Reshape(x *Node, shape []int) *Node {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != x.NumElements() {
		b.fail("Reshape %v → %v changes element count", x.Shape, shape)
	}
	return b.add(&Node{Class: ClassOperator, Kind: KindReshape, Shape: cloneShape(shape), DType: x.DType, Ins: []*Node{x}})
}

// Transpose emits a dimension permutation.
func (b *Builder) Transpose(x *Node, perm ...int) *Node {
	if len(perm) != len(x.Shape) {
		b.fail("Transpose perm %v rank mismatch for %v", perm, x.Shape)
	}
	out := make([]int, len(perm))
	for i, p := range perm {
		out[i] = x.Shape[p]
	}
	return b.add(&Node{Class: ClassOperator, Kind: KindTranspose, Shape: out, DType: x.DType, Ins: []*Node{x}, Axes: cloneShape(perm)})
}

// Convert emits convert_element_type to dt.
func (b *Builder) Convert(x *Node, dt DType) *Node {
	return b.add(&Node{Class: ClassOperator, Kind: KindConvert, Shape: cloneShape(x.Shape), DType: dt, Ins: []*Node{x}})
}

// Gather emits a row gather: table[idx] with the given output shape.
func (b *Builder) Gather(table, idx *Node, outShape []int) *Node {
	return b.add(&Node{Class: ClassOperator, Kind: KindGather, Shape: cloneShape(outShape), DType: table.DType, Ins: []*Node{table, idx}})
}

// Scatter emits a scatter-add of src into a tensor shaped like table.
func (b *Builder) Scatter(table, idx, src *Node) *Node {
	return b.add(&Node{Class: ClassOperator, Kind: KindScatter, Shape: cloneShape(table.Shape), DType: table.DType, Ins: []*Node{table, idx, src}})
}

// Iota emits an index-generating op.
func (b *Builder) Iota(shape []int, dt DType) *Node {
	return b.add(&Node{Class: ClassOperator, Kind: KindIota, Shape: cloneShape(shape), DType: dt})
}

// Concat emits concatenation along axis.
func (b *Builder) Concat(axis int, xs ...*Node) *Node {
	if len(xs) == 0 {
		b.fail("Concat of nothing")
	}
	out := cloneShape(xs[0].Shape)
	for _, x := range xs[1:] {
		out[axis] += x.Shape[axis]
	}
	return b.add(&Node{Class: ClassOperator, Kind: KindConcat, Shape: out, DType: xs[0].DType, Ins: append([]*Node{}, xs...)})
}

// Slice emits a slice producing outShape from x.
func (b *Builder) Slice(x *Node, outShape []int) *Node {
	return b.add(&Node{Class: ClassOperator, Kind: KindSlice, Shape: cloneShape(outShape), DType: x.DType, Ins: []*Node{x}})
}

// OneHot emits a one-hot expansion of integer indices to depth classes.
func (b *Builder) OneHot(idx *Node, depth int, dt DType) *Node {
	out := append(cloneShape(idx.Shape), depth)
	return b.add(&Node{Class: ClassOperator, Kind: KindOneHot, Shape: out, DType: dt, Ins: []*Node{idx}})
}

// CumSum emits a cumulative sum along axis.
func (b *Builder) CumSum(x *Node, axis int) *Node {
	return b.add(&Node{Class: ClassOperator, Kind: KindCumSum, Shape: cloneShape(x.Shape), DType: x.DType, Ins: []*Node{x}, Axes: []int{axis}})
}

// AllReduce emits a cross-device all-reduce of x (tensor-parallel sync).
func (b *Builder) AllReduce(x *Node) *Node {
	return b.add(&Node{Class: ClassOperator, Kind: KindAllReduce, Shape: cloneShape(x.Shape), DType: x.DType, Ins: []*Node{x}})
}

// Graph finalizes and validates the constructed graph.
func (b *Builder) Graph() *Graph {
	g := &Graph{Nodes: b.nodes, Inputs: b.inputs, Outputs: b.outputs}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
