package ir

// AppendBackward emits the backward pass for everything built so far,
// seeding a cotangent at every declared output and propagating gradients to
// every trainable weight, whose gradients are marked as new graph outputs.
//
// The emitted operators have faithful kinds and shapes — which is all the
// cost model and the predictors consume — mirroring how JAX's grad transform
// roughly doubles a training stage's jaxpr. Numeric semantics are not
// materialized anywhere in this IR, so rules that would need index bookkeeping
// (e.g. the cotangent of slice) are emitted with shape-level fidelity only.
func (b *Builder) AppendBackward() {
	grads := make(map[*Node]*Node, len(b.nodes))

	// accum adds contribution g to node n's cotangent, reducing over
	// broadcast axes when the forward op implicitly broadcast n into a
	// larger operand.
	accum := func(n *Node, g *Node) {
		if n == nil || g == nil {
			return
		}
		if !sameShape(g.Shape, n.Shape) {
			switch {
			case isScalarShape(n.Shape):
				axes := make([]int, len(g.Shape))
				for i := range axes {
					axes[i] = i
				}
				g = b.Reduce(KindReduceSum, g, axes...)
			case isPrefixShape(n.Shape, g.Shape):
				axes := make([]int, 0, len(g.Shape)-len(n.Shape))
				for i := len(n.Shape); i < len(g.Shape); i++ {
					axes = append(axes, i)
				}
				g = b.Reduce(KindReduceSum, g, axes...)
			}
			if !sameShape(g.Shape, n.Shape) {
				g = b.Reshape(g, n.Shape)
			}
		}
		if prev, ok := grads[n]; ok {
			grads[n] = b.Ewise(KindAdd, prev, g)
			return
		}
		grads[n] = g
	}

	// Seed every forward output with a cotangent literal.
	fwd := append([]*Node{}, b.nodes...)
	for _, out := range b.outputs {
		seed := b.Literal("ct."+out.Label, out.Shape, out.DType)
		accum(out, seed)
	}

	zerosLike := func(n *Node) *Node { return b.Literal("zeros", n.Shape, n.DType) }
	onesLike := func(n *Node) *Node { return b.Literal("ones", n.Shape, n.DType) }

	for i := len(fwd) - 1; i >= 0; i-- {
		n := fwd[i]
		g := grads[n]
		if g == nil {
			continue
		}
		switch n.Class {
		case ClassOutput:
			accum(n.Ins[0], g)
			continue
		case ClassInput, ClassLiteral:
			continue
		}
		switch n.Kind {
		case KindDot:
			a, c := n.Ins[0], n.Ins[1]
			if a.Class != ClassLiteral || a.Param {
				bt := b.Transpose(c, swapLastTwo(len(c.Shape))...)
				accum(a, b.Dot(g, bt))
			}
			if c.Class != ClassLiteral || c.Param {
				at := b.Transpose(a, swapLastTwo(len(a.Shape))...)
				dc := b.Dot(at, g) // [..., k, n]
				// When the weight is rank-2 but activations carry batch
				// axes, the weight gradient reduces over them.
				if len(dc.Shape) > len(c.Shape) {
					axes := make([]int, len(dc.Shape)-len(c.Shape))
					for j := range axes {
						axes[j] = j
					}
					dc = b.Reduce(KindReduceSum, dc, axes...)
				}
				accum(c, dc)
			}
		case KindAdd:
			accum(n.Ins[0], g)
			accum(n.Ins[1], g)
		case KindSub:
			accum(n.Ins[0], g)
			accum(n.Ins[1], b.Unary(KindNeg, g))
		case KindMul:
			accum(n.Ins[0], b.Ewise(KindMul, g, n.Ins[1]))
			accum(n.Ins[1], b.Ewise(KindMul, g, n.Ins[0]))
		case KindDiv:
			t := b.Ewise(KindDiv, g, n.Ins[1])
			accum(n.Ins[0], t)
			q := b.Ewise(KindDiv, n.Ins[0], n.Ins[1])
			accum(n.Ins[1], b.Unary(KindNeg, b.Ewise(KindMul, t, q)))
		case KindMax, KindMin:
			mask := b.Ewise(KindCompare, n.Ins[0], n.Ins[1])
			z := zerosLike(g)
			accum(n.Ins[0], b.Select(mask, g, z))
			accum(n.Ins[1], b.Select(mask, z, g))
		case KindNeg:
			accum(n.Ins[0], b.Unary(KindNeg, g))
		case KindExp:
			accum(n.Ins[0], b.Ewise(KindMul, g, n))
		case KindLog:
			accum(n.Ins[0], b.Ewise(KindDiv, g, n.Ins[0]))
		case KindTanh:
			sq := b.Ewise(KindMul, n, n)
			om := b.Ewise(KindSub, onesLike(n), sq)
			accum(n.Ins[0], b.Ewise(KindMul, g, om))
		case KindErf:
			x2 := b.Ewise(KindMul, n.Ins[0], n.Ins[0])
			e := b.Unary(KindExp, b.Unary(KindNeg, x2))
			accum(n.Ins[0], b.Ewise(KindMul, g, e))
		case KindRsqrt:
			cube := b.Ewise(KindMul, n, b.Ewise(KindMul, n, n))
			accum(n.Ins[0], b.Unary(KindNeg, b.Ewise(KindMul, g, cube)))
		case KindSqrt:
			accum(n.Ins[0], b.Ewise(KindDiv, g, n))
		case KindCompare, KindIota, KindOneHot:
			// No differentiable inputs.
		case KindSelect:
			z := zerosLike(g)
			accum(n.Ins[1], b.Select(n.Ins[0], g, z))
			accum(n.Ins[2], b.Select(n.Ins[0], z, g))
		case KindReduceSum:
			accum(n.Ins[0], b.Broadcast(g, n.Ins[0].Shape))
		case KindReduceMax:
			bg := b.Broadcast(g, n.Ins[0].Shape)
			bm := b.Broadcast(n, n.Ins[0].Shape)
			mask := b.Ewise(KindCompare, n.Ins[0], bm)
			accum(n.Ins[0], b.Select(mask, bg, zerosLike(bg)))
		case KindBroadcast:
			in := n.Ins[0]
			if in.NumElements() == n.NumElements() {
				accum(in, b.Reshape(g, in.Shape))
				break
			}
			red := b.Reduce(KindReduceSum, g, broadcastAxes(in.Shape, n.Shape)...)
			if !sameShape(red.Shape, in.Shape) {
				red = b.Reshape(red, in.Shape)
			}
			accum(in, red)
		case KindReshape:
			accum(n.Ins[0], b.Reshape(g, n.Ins[0].Shape))
		case KindTranspose:
			accum(n.Ins[0], b.Transpose(g, invertPerm(n.Axes)...))
		case KindConvert:
			accum(n.Ins[0], b.Convert(g, n.Ins[0].DType))
		case KindGather:
			table, idx := n.Ins[0], n.Ins[1]
			accum(table, b.Scatter(zerosLike(table), idx, g))
		case KindScatter:
			// Scatter only appears in backward passes we emit ourselves.
		case KindConcat:
			off := 0
			for _, in := range n.Ins {
				_ = off
				accum(in, b.Slice(g, in.Shape))
				off += in.Shape[len(in.Shape)-1]
			}
		case KindSlice:
			// Shape-level stand-in for pad-with-zeros.
			accum(n.Ins[0], b.Broadcast(g, n.Ins[0].Shape))
		case KindCumSum:
			accum(n.Ins[0], b.CumSum(g, n.Axes[0]))
		case KindAllReduce:
			accum(n.Ins[0], b.AllReduce(g))
		case KindAllGather, KindReduceScatter:
			accum(n.Ins[0], g)
		}
	}

	// Expose weight gradients as outputs (they feed the optimizer update).
	for _, n := range fwd {
		if n.Param {
			if g := grads[n]; g != nil {
				b.Output(g)
			}
		}
	}
}

func swapLastTwo(rank int) []int {
	perm := make([]int, rank)
	for i := range perm {
		perm[i] = i
	}
	if rank >= 2 {
		perm[rank-1], perm[rank-2] = perm[rank-2], perm[rank-1]
	}
	return perm
}

func invertPerm(perm []int) []int {
	inv := make([]int, len(perm))
	for i, p := range perm {
		inv[p] = i
	}
	return inv
}

// broadcastAxes returns the output axes introduced or expanded when
// broadcasting in to out. Size-1 input dims are dropped first and the
// remaining input dims are matched against out as a left-to-right
// subsequence; every unmatched output axis is a reduction axis for the
// cotangent (a trailing Reshape restores dropped 1-dims).
func broadcastAxes(in, out []int) []int {
	var kept []int
	for _, d := range in {
		if d != 1 {
			kept = append(kept, d)
		}
	}
	var axes []int
	j := 0
	for i := 0; i < len(out); i++ {
		if j < len(kept) && kept[j] == out[i] && len(out)-i > len(kept)-j-1 {
			j++
			continue
		}
		axes = append(axes, i)
	}
	return axes
}
