package ir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildMLP constructs a small two-layer perceptron forward graph.
func buildMLP() *Builder {
	b := NewBuilder()
	x := b.Input("x", []int{8, 16}, F32)
	w1 := b.Weight("w1", []int{16, 32}, F32)
	w2 := b.Weight("w2", []int{32, 4}, F32)
	h := b.Dot(x, w1)
	h = b.Ewise(KindMax, h, b.Literal("zero", h.Shape, F32))
	y := b.Dot(h, w2)
	b.Output(y)
	return b
}

func TestBuilderShapes(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", []int{4, 8}, F32)
	w := b.Weight("w", []int{8, 3}, F32)
	y := b.Dot(x, w)
	if !sameShape(y.Shape, []int{4, 3}) {
		t.Fatalf("Dot shape %v", y.Shape)
	}
	r := b.Reduce(KindReduceSum, y, 1)
	if !sameShape(r.Shape, []int{4}) {
		t.Fatalf("Reduce shape %v", r.Shape)
	}
	br := b.Broadcast(r, []int{4, 3})
	if !sameShape(br.Shape, []int{4, 3}) {
		t.Fatalf("Broadcast shape %v", br.Shape)
	}
	tr := b.Transpose(y, 1, 0)
	if !sameShape(tr.Shape, []int{3, 4}) {
		t.Fatalf("Transpose shape %v", tr.Shape)
	}
	cv := b.Convert(y, F16)
	if cv.DType != F16 || cv.Bytes() != 4*3*2 {
		t.Fatalf("Convert dtype/bytes %v %d", cv.DType, cv.Bytes())
	}
	b.Output(br)
	g := b.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedDot(t *testing.T) {
	b := NewBuilder()
	a := b.Input("a", []int{2, 4, 8, 16}, F32)
	c := b.Input("c", []int{2, 4, 16, 8}, F32)
	y := b.Dot(a, c)
	if !sameShape(y.Shape, []int{2, 4, 8, 8}) {
		t.Fatalf("batched Dot shape %v", y.Shape)
	}
	// Flops: 2 · out elements · contraction length.
	want := int64(2 * 2 * 4 * 8 * 8 * 16)
	if y.Flops() != want {
		t.Fatalf("Flops %d, want %d", y.Flops(), want)
	}
}

func TestDotShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder()
	x := b.Input("x", []int{4, 8}, F32)
	w := b.Weight("w", []int{9, 3}, F32)
	b.Dot(x, w)
}

func TestValidateCatchesOrderViolation(t *testing.T) {
	b := buildMLP()
	g := b.Graph()
	// Swap two nodes to break topological order.
	g.Nodes[0], g.Nodes[len(g.Nodes)-1] = g.Nodes[len(g.Nodes)-1], g.Nodes[0]
	g.Nodes[0].ID, g.Nodes[len(g.Nodes)-1].ID = 0, len(g.Nodes)-1
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted an out-of-order graph")
	}
}

func TestAppendBackward(t *testing.T) {
	b := buildMLP()
	fwdCount := len(b.nodes)
	b.AppendBackward()
	g := b.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) <= fwdCount+2 {
		t.Fatalf("backward emitted too few nodes: %d fwd, %d total", fwdCount, len(g.Nodes))
	}
	// Every trainable weight must have a gradient output with its shape.
	var weights, gradOuts []*Node
	for _, n := range g.Nodes {
		if n.Param {
			weights = append(weights, n)
		}
	}
	for _, o := range g.Outputs {
		gradOuts = append(gradOuts, o)
	}
	// Outputs: 1 forward + one per weight.
	if len(gradOuts) != 1+len(weights) {
		t.Fatalf("want %d outputs, got %d", 1+len(weights), len(gradOuts))
	}
	shapeSeen := map[string]int{}
	for _, o := range gradOuts[1:] {
		shapeSeen[o.ShapeString()]++
	}
	for _, w := range weights {
		if shapeSeen[w.ShapeString()] == 0 {
			t.Fatalf("no gradient output with shape %s for weight %s", w.ShapeString(), w.Label)
		}
		shapeSeen[w.ShapeString()]--
	}
}

func TestBackwardOfAttentionPattern(t *testing.T) {
	// QKᵀ softmax-style subgraph: exercises batched dots, reduce, broadcast,
	// exp, div in the backward rules.
	b := NewBuilder()
	q := b.Input("q", []int{4, 16, 8}, F32)
	k := b.Input("k", []int{4, 8, 16}, F32)
	s := b.Dot(q, k) // [4,16,16]
	m := b.Reduce(KindReduceMax, s, 2)
	mb := b.Broadcast(m, s.Shape)
	e := b.Unary(KindExp, b.Ewise(KindSub, s, mb))
	z := b.Reduce(KindReduceSum, e, 2)
	zb := b.Broadcast(z, e.Shape)
	p := b.Ewise(KindDiv, e, zb)
	b.Output(p)
	b.AppendBackward()
	g := b.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGatherBackwardEmitsScatter(t *testing.T) {
	b := NewBuilder()
	table := b.Weight("emb", []int{100, 8}, F32)
	idx := b.Input("idx", []int{16}, I32)
	x := b.Gather(table, idx, []int{16, 8})
	b.Output(x)
	b.AppendBackward()
	g := b.Graph()
	found := false
	for _, n := range g.Nodes {
		if n.Kind == KindScatter {
			found = true
		}
	}
	if !found {
		t.Fatal("backward of gather should emit scatter")
	}
}

func TestKindClassification(t *testing.T) {
	if !KindAdd.IsElementwise() || !KindSelect.IsElementwise() {
		t.Fatal("elementwise misclassified")
	}
	if KindDot.IsElementwise() || KindAllReduce.IsElementwise() {
		t.Fatal("non-elementwise misclassified")
	}
	if !KindAllReduce.IsCollective() || KindDot.IsCollective() {
		t.Fatal("collective misclassified")
	}
}

func TestStatsAndStrings(t *testing.T) {
	b := buildMLP()
	g := b.Graph()
	s := g.ComputeStats()
	if s.Nodes != g.NumNodes() || s.Operators == 0 || s.TotalFlops == 0 {
		t.Fatalf("stats %+v", s)
	}
	if s.ParamBytes != int64((16*32+32*4)*4) {
		t.Fatalf("param bytes %d", s.ParamBytes)
	}
	if !strings.Contains(g.DOT("mlp"), "dot_general") {
		t.Fatal("DOT output missing operators")
	}
	if !strings.Contains(g.Render(), "f32[8,32]") {
		t.Fatal("Render missing shapes")
	}
	for k := Kind(0); k < Kind(NumKinds); k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestInvertPermProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		perm := rng.Perm(n)
		inv := invertPerm(perm)
		for i, p := range perm {
			if inv[p] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastAxes(t *testing.T) {
	got := broadcastAxes([]int{3}, []int{4, 5, 3})
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("broadcastAxes %v", got)
	}
	got = broadcastAxes([]int{1, 3}, []int{5, 3})
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("broadcastAxes %v", got)
	}
}

func TestConsumers(t *testing.T) {
	b := buildMLP()
	g := b.Graph()
	cons := g.Consumers()
	// The input x feeds exactly one dot.
	x := g.Inputs[0]
	if len(cons[x.ID]) != 1 || cons[x.ID][0].Kind != KindDot {
		t.Fatalf("consumers of input: %v", cons[x.ID])
	}
}
