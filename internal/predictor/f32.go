package predictor

import (
	"predtop/internal/graphnn"
	"predtop/internal/stage"
)

// Float32Predictor is the opt-in reduced-precision inference engine: a
// float32 snapshot of a trained model behind the same scale-and-floor
// contract as Trained.PredictEncoded. It exists for deployments that trade
// the float64 path's bitwise reproducibility for cheaper forwards; it is
// never used unless explicitly requested (the serve daemon's Float32 config
// flag, predtop-predict -float32). Predictions track the float64 path within
// the tolerance pinned by the float32 determinism table and are themselves
// deterministic run to run.
type Float32Predictor struct {
	f     *graphnn.Forward32
	scale float64
}

// Float32 snapshots the trained model's weights into a float32 inference
// engine. Weights are copied at call time; later training does not affect
// the returned predictor.
func (t Trained) Float32() (*Float32Predictor, error) {
	f, err := graphnn.NewForward32(t.Model)
	if err != nil {
		return nil, err
	}
	return &Float32Predictor{f: f, scale: t.Scale}, nil
}

// PredictEncoded returns the latency prediction in seconds, floored at 1% of
// the label scale exactly like Trained.PredictEncoded.
func (p *Float32Predictor) PredictEncoded(e *stage.Encoded) float64 {
	pred := p.f.Predict(e) * p.scale
	if floor := 0.01 * p.scale; pred < floor {
		return floor
	}
	return pred
}

// PredictEncodedBatch predicts a batch serially in float32. The float32 path
// has no fused batched forward — its win is per-element cost, not batching —
// but the signature mirrors Trained.PredictEncodedBatch so callers can swap
// paths without restructuring.
func (p *Float32Predictor) PredictEncodedBatch(es []*stage.Encoded) []float64 {
	out := make([]float64, len(es))
	for i, e := range es {
		out[i] = p.PredictEncoded(e)
	}
	return out
}
