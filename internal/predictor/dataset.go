// Package predictor assembles stage-latency datasets and trains the
// black-box prediction models exactly as the paper prescribes (§IV-B):
// profiled optimal intra-stage latencies as labels, MAE loss, Adam with
// cosine learning-rate decay from 1e-3, batch size 32, and early stopping
// that restores the best-validation weights.
package predictor

import (
	"math/rand"
	"sync"

	"predtop/internal/cluster"
	"predtop/internal/intraop"
	"predtop/internal/models"
	"predtop/internal/sim"
	"predtop/internal/stage"
)

// Sample is one (stage graph, profiled latency) example.
type Sample struct {
	Spec    stage.Spec
	Encoded *stage.Encoded
	// True is the simulator's exact optimal latency; Measured is the noisy
	// profiled observation used for training and as Eqn 5's ground truth.
	True     float64
	Measured float64
}

// Dataset holds the samples of one benchmark under one runtime scenario.
type Dataset struct {
	Model    *models.Model
	Scenario cluster.Scenario
	Samples  []Sample
}

// Encoder builds and caches encoded stage graphs. Encoding is independent of
// the runtime scenario, so one cache serves every (mesh, config) pair — the
// same economy the paper gets from constructing each stage DAG once.
type Encoder struct {
	Model *models.Model
	Prune bool

	mu    sync.Mutex
	cache map[stage.Spec]*stage.Encoded
}

// NewEncoder returns an encoder for m (pruned per §IV-B4 unless disabled).
func NewEncoder(m *models.Model, prune bool) *Encoder {
	return &Encoder{Model: m, Prune: prune, cache: make(map[stage.Spec]*stage.Encoded)}
}

// Encode returns the encoded predictor input for the stage spec. The
// predictor sees the forward stage graph — what Alpa's intra-operator
// compiler is handed — while labels are profiled on the full training
// (forward+backward) execution.
func (e *Encoder) Encode(sp stage.Spec) *stage.Encoded {
	e.mu.Lock()
	if enc, ok := e.cache[sp]; ok {
		e.mu.Unlock()
		return enc
	}
	e.mu.Unlock()
	g := e.Model.StageGraph(sp.Lo, sp.Hi, false)
	enc := stage.Encode(stage.FromGraph(g, e.Prune))
	e.mu.Lock()
	e.cache[sp] = enc
	e.mu.Unlock()
	return enc
}

// ProfileStage returns the simulator-exact optimal intra-stage training
// latency and a noisy profiled measurement of it. ok is false when the stage
// does not fit the scenario's devices (such stages are not profiled).
func ProfileStage(m *models.Model, sp stage.Spec, sc cluster.Scenario, prof sim.Profiler) (trueLat, measured float64, ok bool) {
	g := m.StageGraph(sp.Lo, sp.Hi, true)
	res := intraop.Optimize(g, sc)
	if !res.Feasible {
		return 0, 0, false
	}
	seed := uint64(sp.Lo)<<40 | uint64(sp.Hi)<<24 |
		uint64(sc.Mesh.Platform.Index)<<16 | uint64(sc.Mesh.Index)<<8 | uint64(sc.Config.Index)
	return res.Latency, prof.Measure(res.Latency, seed), true
}

// BuildDataset profiles every feasible spec under sc and pairs it with its
// encoded graph.
func BuildDataset(enc *Encoder, specs []stage.Spec, sc cluster.Scenario, prof sim.Profiler) *Dataset {
	ds := &Dataset{Model: enc.Model, Scenario: sc}
	for _, sp := range specs {
		trueLat, measured, ok := ProfileStage(enc.Model, sp, sc, prof)
		if !ok {
			continue
		}
		ds.Samples = append(ds.Samples, Sample{
			Spec: sp, Encoded: enc.Encode(sp), True: trueLat, Measured: measured,
		})
	}
	return ds
}

// CollectStages draws the benchmark's stage sample set (§VIII: 409 GPT-3 /
// 205 MoE stages of varied sizes). maxLen bounds the stage length in
// segments; count ≤ 0 takes the whole universe.
func CollectStages(m *models.Model, rng *rand.Rand, count, maxLen int) []stage.Spec {
	if count <= 0 {
		return stage.AllSpecs(m.NumSegments(), maxLen)
	}
	return stage.SampleSpecs(rng, m.NumSegments(), count, maxLen)
}
