package predictor

import (
	"testing"

	"predtop/internal/cluster"
	"predtop/internal/models"
	"predtop/internal/sim"
	"predtop/internal/stage"
)

func TestProfileStageDeterministic(t *testing.T) {
	m := models.Build(models.GPT3())
	sc := cluster.Scenarios(cluster.Platform1())[1]
	prof := sim.DefaultProfiler()
	sp := stage.Spec{Lo: 2, Hi: 4}
	t1, m1, ok1 := ProfileStage(m, sp, sc, prof)
	t2, m2, ok2 := ProfileStage(m, sp, sc, prof)
	if !ok1 || !ok2 || t1 != t2 || m1 != m2 {
		t.Fatalf("profiling not deterministic: (%v,%v) vs (%v,%v)", t1, m1, t2, m2)
	}
}

func TestLabelsDifferAcrossScenarios(t *testing.T) {
	m := models.Build(models.GPT3())
	prof := sim.DefaultProfiler()
	sp := stage.Spec{Lo: 2, Hi: 4}
	seen := map[float64]bool{}
	for _, sc := range cluster.Scenarios(cluster.Platform2()) {
		lat, _, ok := ProfileStage(m, sp, sc, prof)
		if !ok {
			continue
		}
		if seen[lat] {
			t.Fatalf("identical latency %v under two scenarios", lat)
		}
		seen[lat] = true
	}
	if len(seen) < 4 {
		t.Fatalf("only %d distinct scenario latencies", len(seen))
	}
}

func TestSingleGPUSlowerThanParallel(t *testing.T) {
	// For a hefty stage, the optimal latency with 4 devices available must
	// not exceed the single-GPU latency.
	m := models.Build(models.GPT3())
	prof := sim.Profiler{NoiseFrac: 0, Warmup: 1, Trials: 1}
	sp := stage.Spec{Lo: 1, Hi: 9}
	p2 := cluster.Platform2()
	single, _, ok1 := ProfileStage(m, sp, cluster.Scenario{Mesh: cluster.Meshes(p2)[0], Config: cluster.ConfigsFor(cluster.Meshes(p2)[0])[0]}, prof)
	mp2 := cluster.Scenario{Mesh: cluster.Meshes(p2)[1], Config: cluster.ConfigsFor(cluster.Meshes(p2)[1])[1]}
	twoWay, _, ok2 := ProfileStage(m, sp, mp2, prof)
	if !ok1 || !ok2 {
		t.Fatal("stages should be feasible")
	}
	if twoWay >= single {
		t.Fatalf("2-way MP (%v) should beat single GPU (%v) for an 8-layer stage", twoWay, single)
	}
}

func TestEncoderPruneFlag(t *testing.T) {
	m := models.Build(models.GPT3())
	pruned := NewEncoder(m, true).Encode(stage.Spec{Lo: 2, Hi: 3})
	raw := NewEncoder(m, false).Encode(stage.Spec{Lo: 2, Hi: 3})
	if pruned.N() >= raw.N() {
		t.Fatalf("pruned %d !< raw %d", pruned.N(), raw.N())
	}
}

func TestCollectStagesRespectsMaxLen(t *testing.T) {
	m := models.Build(models.MoE())
	specs := CollectStages(m, nil, 0, 2)
	for _, sp := range specs {
		if sp.Len() > 2 {
			t.Fatalf("spec %v exceeds max length", sp)
		}
	}
	if len(specs) != 34+33 {
		t.Fatalf("universe %d", len(specs))
	}
}
