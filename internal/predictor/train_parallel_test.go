package predictor

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"

	"predtop/internal/graphnn"
	"predtop/internal/obs"
	"predtop/internal/tensor"
)

func buildArch(name string, seed int64) graphnn.Model {
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "Tran":
		return graphnn.NewDAGTransformer(rng, graphnn.TransformerConfig{Layers: 1, Dim: 16, Heads: 2, FFNDim: 32})
	case "GCN":
		return graphnn.NewGCN(rng, graphnn.GCNConfig{Layers: 2, Dim: 16})
	case "GAT":
		return graphnn.NewGAT(rng, graphnn.GATConfig{Layers: 1, Dim: 8, Heads: 2})
	}
	panic("unknown arch " + name)
}

// TestParallelTrainingBitwiseDeterministic is the tentpole guarantee: the
// same seeds trained with 1 worker and with many workers must produce
// bitwise-identical weights, loss, and predictions for every architecture —
// with observation hooks attached or absent (hooks observe, never perturb).
// Not skipped in -short mode so `go test -race -short` exercises the
// concurrent hook-instrumented training path.
func TestParallelTrainingBitwiseDeterministic(t *testing.T) {
	_, ds := smallDataset(t, 12)
	n := len(ds.Samples)
	trainIdx := make([]int, 0, n*2/3)
	valIdx := make([]int, 0, n/3)
	for i := 0; i < n; i++ {
		if i%3 == 2 {
			valIdx = append(valIdx, i)
		} else {
			trainIdx = append(trainIdx, i)
		}
	}

	for _, arch := range []string{"Tran", "GCN", "GAT"} {
		t.Run(arch, func(t *testing.T) {
			run := func(workers int, hooked, noArena, serialTapes, simdOff bool) (Trained, TrainResult) {
				if simdOff {
					defer tensor.SetSIMD(tensor.SetSIMD(false))
				}
				cfg := TrainConfig{
					Epochs: 3, Patience: 3, BatchSize: 5, Seed: 13, Workers: workers,
					NoArena: noArena, SerialTapes: serialTapes,
				}
				if hooked {
					// The hooked case carries the full observation surface
					// — metrics, span profiling (per-layer forward/backward
					// attribution), a live flight recorder, and a traced
					// JSONL sink fed from OnEpoch — so the table proves
					// traced and recorded runs are bitwise identical too.
					tc := obs.NewTraceContext(13, "determinism-table")
					fr := obs.NewFlightRecorder(64)
					fr.SetTraceContext(tc)
					sink := obs.NewSink(io.Discard)
					sink.SetTraceContext(tc)
					sink.AttachFlight(fr)
					cfg.Hooks = &TrainHooks{
						OnEpoch:   func(e EpochStats) { sink.Emit(e) },
						OnRestore: func(int, float64) {},
						Metrics:   obs.NewRegistry(),
						Profiler:  obs.NewProfiler(),
						Flight:    fr,
					}
				}
				return Train(buildArch(arch, 42), ds, trainIdx, valIdx, cfg)
			}
			ref, refRes := run(1, false, false, false, false)
			// The determinism table: every worker count, instrumented and
			// not, with arena reuse on (default) and off, plus the fused
			// batched forwards vs per-sample tapes (SerialTapes) and the
			// AVX2 kernels vs the scalar path (SIMD off), must all match the
			// serial uninstrumented arena-on reference bitwise.
			type row struct {
				workers                               int
				hooked, noArena, serialTapes, simdOff bool
			}
			var rows []row
			for _, workers := range []int{1, 4, 7} {
				for _, hooked := range []bool{false, true} {
					for _, noArena := range []bool{false, true} {
						if workers == 1 && !hooked && !noArena {
							continue
						}
						rows = append(rows, row{workers, hooked, noArena, false, false})
					}
				}
			}
			rows = append(rows,
				row{1, false, false, true, false}, // per-sample tapes, serial
				row{4, false, false, true, false}, // per-sample tapes, parallel
				row{1, false, false, false, true}, // scalar kernels, fused batches
				row{4, true, false, false, true},  // scalar kernels, instrumented
				row{1, false, false, true, true},  // scalar kernels, per-sample tapes
			)
			if !tensor.SIMDAvailable() {
				// Without AVX2 the simdOff rows duplicate existing ones.
				rows = rows[:len(rows)-3]
			}
			for _, rw := range rows {
				got, gotRes := run(rw.workers, rw.hooked, rw.noArena, rw.serialTapes, rw.simdOff)
				label := fmt.Sprintf("workers=%d hooks=%v arena=%v serialTapes=%v simd=%v",
					rw.workers, rw.hooked, !rw.noArena, rw.serialTapes, !rw.simdOff)
				if math.Float64bits(gotRes.BestValLoss) != math.Float64bits(refRes.BestValLoss) {
					t.Fatalf("%s BestValLoss %v != %v", label, gotRes.BestValLoss, refRes.BestValLoss)
				}
				if gotRes.EpochsRun != refRes.EpochsRun {
					t.Fatalf("%s EpochsRun %d != %d", label, gotRes.EpochsRun, refRes.EpochsRun)
				}
				if gotRes.BestEpoch != refRes.BestEpoch {
					t.Fatalf("%s BestEpoch %d != %d", label, gotRes.BestEpoch, refRes.BestEpoch)
				}
				if len(gotRes.History) != len(refRes.History) {
					t.Fatalf("%s history length %d != %d", label, len(gotRes.History), len(refRes.History))
				}
				for e := range refRes.History {
					a, b := refRes.History[e], gotRes.History[e]
					if math.Float64bits(a.TrainLoss) != math.Float64bits(b.TrainLoss) ||
						math.Float64bits(a.ValLoss) != math.Float64bits(b.ValLoss) ||
						math.Float64bits(a.GradNorm) != math.Float64bits(b.GradNorm) {
						t.Fatalf("%s history[%d] diverged: %+v != %+v", label, e, b, a)
					}
				}
				refP, gotP := ref.Model.Params(), got.Model.Params()
				if len(refP) != len(gotP) {
					t.Fatalf("param count mismatch")
				}
				for i := range refP {
					for j := range refP[i].V.Data {
						a, b := refP[i].V.Data[j], gotP[i].V.Data[j]
						if math.Float64bits(a) != math.Float64bits(b) {
							t.Fatalf("%s param %s[%d]: %x != %x",
								label, refP[i].Name, j, math.Float64bits(a), math.Float64bits(b))
						}
					}
				}
			}
		})
	}
}

// TestTrainHooksAndHistory checks the observation contract: History has one
// entry per epoch run, OnEpoch fires once per epoch with the same stats,
// BestEpoch points at the restored weights, and OnRestore reports it.
func TestTrainHooksAndHistory(t *testing.T) {
	_, ds := smallDataset(t, 12)
	n := len(ds.Samples)
	var trainIdx, valIdx []int
	for i := 0; i < n; i++ {
		if i%3 == 2 {
			valIdx = append(valIdx, i)
		} else {
			trainIdx = append(trainIdx, i)
		}
	}
	var epochs []EpochStats
	restored := -1
	reg := obs.NewRegistry()
	_, res := Train(buildArch("GCN", 7), ds, trainIdx, valIdx, TrainConfig{
		Epochs: 4, Patience: 4, BatchSize: 5, Seed: 3,
		Hooks: &TrainHooks{
			OnEpoch:   func(e EpochStats) { epochs = append(epochs, e) },
			OnRestore: func(best int, _ float64) { restored = best },
			Metrics:   reg,
		},
	})
	if len(res.History) != res.EpochsRun {
		t.Fatalf("history %d entries for %d epochs", len(res.History), res.EpochsRun)
	}
	if len(epochs) != res.EpochsRun {
		t.Fatalf("OnEpoch fired %d times for %d epochs", len(epochs), res.EpochsRun)
	}
	for i, e := range epochs {
		h := res.History[i]
		if e.Epoch != i+1 || h.Epoch != i+1 {
			t.Fatalf("epoch numbering: hook %d history %d at index %d", e.Epoch, h.Epoch, i)
		}
		if e != h {
			t.Fatalf("hook stats %+v != history %+v", e, h)
		}
		if math.IsNaN(e.TrainLoss) || e.TrainLoss < 0 || e.GradNorm < 0 {
			t.Fatalf("implausible stats %+v", e)
		}
		if e.LR < 0 || e.LR > 1e-3 {
			t.Fatalf("lr %v outside cosine-decay range", e.LR)
		}
	}
	if res.BestEpoch < 1 || res.BestEpoch > res.EpochsRun {
		t.Fatalf("BestEpoch %d out of range", res.BestEpoch)
	}
	if restored != res.BestEpoch {
		t.Fatalf("OnRestore reported %d, result says %d", restored, res.BestEpoch)
	}
	if res.History[res.BestEpoch-1].ValLoss != res.BestValLoss {
		t.Fatalf("BestEpoch val %v != BestValLoss %v", res.History[res.BestEpoch-1].ValLoss, res.BestValLoss)
	}
	wantSamples := int64(len(trainIdx) * res.EpochsRun)
	if got := reg.Counter("train_samples_total").Value(); got != wantSamples {
		t.Fatalf("train_samples_total %d want %d", got, wantSamples)
	}
	if reg.Histogram("train_batch_seconds", nil).Count() == 0 {
		t.Fatal("train_batch_seconds never observed")
	}
}

// TestTrainEarlyStopHook: patience exhaustion must fire OnEarlyStop exactly
// once with the last epoch run, and History must stop there too.
func TestTrainEarlyStopHook(t *testing.T) {
	_, ds := smallDataset(t, 12)
	n := len(ds.Samples)
	var trainIdx, valIdx []int
	for i := 0; i < n; i++ {
		if i%3 == 2 {
			valIdx = append(valIdx, i)
		} else {
			trainIdx = append(trainIdx, i)
		}
	}
	var stops []int
	_, res := Train(buildArch("GCN", 7), ds, trainIdx, valIdx, TrainConfig{
		Epochs: 50, Patience: 1, BatchSize: 5, Seed: 3,
		Hooks: &TrainHooks{OnEarlyStop: func(e int) { stops = append(stops, e) }},
	})
	if res.EpochsRun == 50 {
		t.Skip("no early stop triggered at this seed")
	}
	if len(stops) != 1 || stops[0] != res.EpochsRun {
		t.Fatalf("OnEarlyStop fired %v, EpochsRun %d", stops, res.EpochsRun)
	}
	if len(res.History) != res.EpochsRun {
		t.Fatalf("history %d entries for %d epochs", len(res.History), res.EpochsRun)
	}
}

// TestNilRegistryHotPathZeroAlloc guards the obs no-op contract where it
// matters: the exact instruments the minibatch hot path uses — metrics from
// a disabled (nil) registry, the phase/sample spans from a disabled (nil)
// profiler, breadcrumbs into a disabled (nil) flight recorder, and residuals
// into a disabled (nil) accuracy monitor — must add zero allocations per
// batch.
func TestNilRegistryHotPathZeroAlloc(t *testing.T) {
	var reg *obs.Registry
	batchTimer := reg.Histogram("train_batch_seconds", nil)
	batchCtr := reg.Counter("train_batches_total")
	sampleCtr := reg.Counter("train_samples_total")
	var prof *obs.Profiler
	trainSpan := prof.Start("train")
	var flight *obs.FlightRecorder
	var acc *obs.AccuracyMonitor
	accKey := obs.AccuracyKey{Family: "Tran", Mesh: "2x8", Op: "GPT3"}
	allocs := testing.AllocsPerRun(500, func() {
		bt := batchTimer.Start()
		bs := trainSpan.Start("batch")
		ss := bs.Start("sample")
		ss.End()
		st := bs.Start("step")
		st.End()
		bs.End()
		bt.Stop()
		batchCtr.Inc()
		sampleCtr.Add(32)
		flight.Note("train", "batch")
		if flight.Enabled() {
			t.Error("nil recorder reports enabled")
		}
		acc.Observe(accKey, 1.1, 1.0)
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocated %.1f per batch", allocs)
	}
}

// TestMREWithMonitorMatchesMRE: feeding an accuracy monitor must not change
// the MRE by a single bit (the fold shape is identical with and without the
// monitor), and the monitor's streaming per-family mean must agree with the
// offline figure to within floating-point summation-order tolerance.
func TestMREWithMonitorMatchesMRE(t *testing.T) {
	_, ds := smallDataset(t, 12)
	var trainIdx, testIdx []int
	for i := range ds.Samples {
		if i%3 == 2 {
			testIdx = append(testIdx, i)
		} else {
			trainIdx = append(trainIdx, i)
		}
	}
	trained, _ := Train(buildArch("GCN", 7), ds, trainIdx, testIdx, TrainConfig{
		Epochs: 2, Patience: 2, BatchSize: 5, Seed: 3,
	})
	plain := trained.MRE(ds, testIdx)
	mon := obs.NewAccuracyMonitor(obs.AccuracyConfig{MinSamples: 1})
	key := obs.AccuracyKey{Family: "GCN", Mesh: "2x8", Op: "test"}
	monitored := trained.MREWith(ds, testIdx, mon, key)
	if math.Float64bits(plain) != math.Float64bits(monitored) {
		t.Fatalf("monitor changed the MRE: %x != %x", math.Float64bits(plain), math.Float64bits(monitored))
	}
	st, ok := mon.Stats(key)
	if !ok || st.N != int64(len(testIdx)) {
		t.Fatalf("monitor saw %d residuals, want %d", st.N, len(testIdx))
	}
	// The streaming Welford mean and the tree-reduced offline mean sum in
	// different orders; they agree to numerical noise, not bitwise.
	if math.Abs(st.MeanPct-plain) > 1e-9*(1+math.Abs(plain)) {
		t.Fatalf("monitor mean %.12f, offline MRE %.12f", st.MeanPct, plain)
	}
}

// TestTrainProfilerBuildsPhaseTree: with a profiler attached, one short run
// must produce the train → data/batch{sample,step}/eval phase tree with
// per-layer forward spans and a backward attribution subtree under sample.
func TestTrainProfilerBuildsPhaseTree(t *testing.T) {
	_, ds := smallDataset(t, 12)
	n := len(ds.Samples)
	var trainIdx, valIdx []int
	for i := 0; i < n; i++ {
		if i%3 == 2 {
			valIdx = append(valIdx, i)
		} else {
			trainIdx = append(trainIdx, i)
		}
	}
	prof := obs.NewProfiler()
	Train(buildArch("Tran", 42), ds, trainIdx, valIdx, TrainConfig{
		Epochs: 2, Patience: 2, BatchSize: 5, Seed: 13, Workers: 4,
		Hooks: &TrainHooks{Profiler: prof},
	})
	var buf strings.Builder
	if err := prof.WriteProfileTree(&buf); err != nil {
		t.Fatal(err)
	}
	tree := buf.String()
	for _, want := range []string{
		"train", "  data", "  batch", "    sample", "    step", "  eval",
		"      embed", "      l0.attn", "      l0.ffn", "      head",
		"      backward", "        l0.attn",
	} {
		if !strings.Contains(tree, want+" ") {
			t.Fatalf("profile tree missing %q:\n%s", want, tree)
		}
	}
	// The same instrumentation points must render identically on a second
	// pass — the report is deterministic in layout.
	var again strings.Builder
	if err := prof.WriteProfileTree(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != tree {
		t.Fatal("profile tree render not deterministic")
	}
}

// TestTrainEmptyValSet guards the NaN regression: with no validation
// samples, training must run to completion, report a finite train-set loss
// as BestValLoss, and keep the final (not zero-initialized best) weights.
func TestTrainEmptyValSet(t *testing.T) {
	_, ds := smallDataset(t, 10)
	trainIdx := make([]int, len(ds.Samples))
	for i := range trainIdx {
		trainIdx[i] = i
	}
	trained, res := Train(buildArch("GCN", 5), ds, trainIdx, nil, TrainConfig{
		Epochs: 2, Patience: 1, BatchSize: 4, Seed: 9,
	})
	if math.IsNaN(res.BestValLoss) || math.IsInf(res.BestValLoss, 0) {
		t.Fatalf("BestValLoss not finite: %v", res.BestValLoss)
	}
	if res.EpochsRun != 2 {
		t.Fatalf("empty val set must disable early stopping: ran %d epochs", res.EpochsRun)
	}
	mre := trained.MRE(ds, trainIdx)
	if math.IsNaN(mre) || math.IsInf(mre, 0) {
		t.Fatalf("trained model unusable: MRE %v", mre)
	}
}

// TestTrainEmptyTrainSet: degenerate input must not panic or divide by zero.
func TestTrainEmptyTrainSet(t *testing.T) {
	_, ds := smallDataset(t, 6)
	trained, res := Train(buildArch("GCN", 5), ds, nil, nil, TrainConfig{
		Epochs: 2, BatchSize: 4, Seed: 9,
	})
	if res.EpochsRun != 0 {
		t.Fatalf("trained on nothing for %d epochs", res.EpochsRun)
	}
	if trained.Scale != 1 {
		t.Fatalf("degenerate scale %v", trained.Scale)
	}
}

// TestPredictSteadyStateAllocBudget pins the arena payoff on the serving
// path: once the pooled prediction contexts are warm, PredictEncoded must
// stay within a small fixed allocation budget per call (model forward glue
// like per-head slices — not O(tensor) heap traffic).
func TestPredictSteadyStateAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode degrades sync.Pool; steady-state counts not meaningful")
	}
	_, ds := smallDataset(t, 6)
	var trainIdx []int
	for i := range ds.Samples {
		trainIdx = append(trainIdx, i)
	}
	trained, _ := Train(buildArch("Tran", 42), ds, trainIdx, nil, TrainConfig{
		Epochs: 1, BatchSize: 4, Seed: 13,
	})
	e := ds.Samples[0].Encoded
	trained.PredictEncoded(e) // warm the context pool + arena
	trained.PredictEncoded(e)
	allocs := testing.AllocsPerRun(200, func() { trained.PredictEncoded(e) })
	// Measured steady state is 2 allocs (transformer per-head slice glue);
	// the budget leaves room for a pool refill after a GC but would catch
	// any return to per-tensor heap allocation (previously hundreds/call).
	const budget = 4
	if allocs > budget {
		t.Fatalf("PredictEncoded allocates %.1f per call, budget %d", allocs, budget)
	}
	t.Logf("PredictEncoded steady-state allocs: %.1f", allocs)
}
