package predictor

import (
	"math"
	"math/rand"
	"testing"

	"predtop/internal/graphnn"
)

func buildArch(name string, seed int64) graphnn.Model {
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "Tran":
		return graphnn.NewDAGTransformer(rng, graphnn.TransformerConfig{Layers: 1, Dim: 16, Heads: 2, FFNDim: 32})
	case "GCN":
		return graphnn.NewGCN(rng, graphnn.GCNConfig{Layers: 2, Dim: 16})
	case "GAT":
		return graphnn.NewGAT(rng, graphnn.GATConfig{Layers: 1, Dim: 8, Heads: 2})
	}
	panic("unknown arch " + name)
}

// TestParallelTrainingBitwiseDeterministic is the tentpole guarantee: the
// same seeds trained with 1 worker and with many workers must produce
// bitwise-identical weights, loss, and predictions for every architecture.
// Not skipped in -short mode so `go test -race -short` exercises the
// concurrent training path.
func TestParallelTrainingBitwiseDeterministic(t *testing.T) {
	_, ds := smallDataset(t, 12)
	n := len(ds.Samples)
	trainIdx := make([]int, 0, n*2/3)
	valIdx := make([]int, 0, n/3)
	for i := 0; i < n; i++ {
		if i%3 == 2 {
			valIdx = append(valIdx, i)
		} else {
			trainIdx = append(trainIdx, i)
		}
	}

	for _, arch := range []string{"Tran", "GCN", "GAT"} {
		t.Run(arch, func(t *testing.T) {
			run := func(workers int) (Trained, TrainResult) {
				return Train(buildArch(arch, 42), ds, trainIdx, valIdx, TrainConfig{
					Epochs: 3, Patience: 3, BatchSize: 5, Seed: 13, Workers: workers,
				})
			}
			ref, refRes := run(1)
			for _, workers := range []int{4, 7} {
				got, gotRes := run(workers)
				if math.Float64bits(gotRes.BestValLoss) != math.Float64bits(refRes.BestValLoss) {
					t.Fatalf("workers=%d BestValLoss %v != %v", workers, gotRes.BestValLoss, refRes.BestValLoss)
				}
				if gotRes.EpochsRun != refRes.EpochsRun {
					t.Fatalf("workers=%d EpochsRun %d != %d", workers, gotRes.EpochsRun, refRes.EpochsRun)
				}
				refP, gotP := ref.Model.Params(), got.Model.Params()
				if len(refP) != len(gotP) {
					t.Fatalf("param count mismatch")
				}
				for i := range refP {
					for j := range refP[i].V.Data {
						a, b := refP[i].V.Data[j], gotP[i].V.Data[j]
						if math.Float64bits(a) != math.Float64bits(b) {
							t.Fatalf("workers=%d param %s[%d]: %x != %x",
								workers, refP[i].Name, j, math.Float64bits(a), math.Float64bits(b))
						}
					}
				}
			}
		})
	}
}

// TestTrainEmptyValSet guards the NaN regression: with no validation
// samples, training must run to completion, report a finite train-set loss
// as BestValLoss, and keep the final (not zero-initialized best) weights.
func TestTrainEmptyValSet(t *testing.T) {
	_, ds := smallDataset(t, 10)
	trainIdx := make([]int, len(ds.Samples))
	for i := range trainIdx {
		trainIdx[i] = i
	}
	trained, res := Train(buildArch("GCN", 5), ds, trainIdx, nil, TrainConfig{
		Epochs: 2, Patience: 1, BatchSize: 4, Seed: 9,
	})
	if math.IsNaN(res.BestValLoss) || math.IsInf(res.BestValLoss, 0) {
		t.Fatalf("BestValLoss not finite: %v", res.BestValLoss)
	}
	if res.EpochsRun != 2 {
		t.Fatalf("empty val set must disable early stopping: ran %d epochs", res.EpochsRun)
	}
	mre := trained.MRE(ds, trainIdx)
	if math.IsNaN(mre) || math.IsInf(mre, 0) {
		t.Fatalf("trained model unusable: MRE %v", mre)
	}
}

// TestTrainEmptyTrainSet: degenerate input must not panic or divide by zero.
func TestTrainEmptyTrainSet(t *testing.T) {
	_, ds := smallDataset(t, 6)
	trained, res := Train(buildArch("GCN", 5), ds, nil, nil, TrainConfig{
		Epochs: 2, BatchSize: 4, Seed: 9,
	})
	if res.EpochsRun != 0 {
		t.Fatalf("trained on nothing for %d epochs", res.EpochsRun)
	}
	if trained.Scale != 1 {
		t.Fatalf("degenerate scale %v", trained.Scale)
	}
}
