package predictor

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"predtop/internal/graphnn"
	"predtop/internal/stage"
)

// trainTiny fits a small transformer on a small dataset, shared across the
// batch tests.
func trainTiny(t testing.TB) (Trained, *Dataset) {
	t.Helper()
	_, ds := smallDataset(t, 16)
	net := graphnn.NewDAGTransformer(rand.New(rand.NewSource(3)),
		graphnn.TransformerConfig{Layers: 1, Dim: 16, Heads: 2, FFNDim: 32})
	tr, _ := Train(net, ds, []int{0, 1, 2, 3, 4, 5}, []int{6, 7}, TrainConfig{
		Epochs: 2, Patience: 2, BatchSize: 4, Seed: 1,
	})
	return tr, ds
}

// TestPredictEncodedBatchBitwise: a batched forward must reproduce the
// per-item PredictEncoded results bit for bit, at every worker count,
// including duplicate graphs within one batch.
func TestPredictEncodedBatchBitwise(t *testing.T) {
	tr, ds := trainTiny(t)
	es := make([]*stage.Encoded, 0, len(ds.Samples)+2)
	for i := range ds.Samples {
		es = append(es, ds.Samples[i].Encoded)
	}
	es = append(es, es[0], es[1]) // duplicates must be independent

	want := make([]float64, len(es))
	for i, e := range es {
		want[i] = tr.PredictEncoded(e)
	}
	for _, workers := range []int{1, 2, 0} {
		got := tr.PredictEncodedBatch(es, workers)
		if len(got) != len(es) {
			t.Fatalf("workers=%d: got %d results for %d graphs", workers, len(got), len(es))
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("workers=%d graph %d: batch %v != direct %v", workers, i, got[i], want[i])
			}
		}
	}
	if got := tr.PredictEncodedBatch(nil, 0); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

// TestPredictEncodedBatchConcurrent: concurrent batched forwards through the
// shared context pool must not interfere (run with -race in make ci).
func TestPredictEncodedBatchConcurrent(t *testing.T) {
	tr, ds := trainTiny(t)
	es := make([]*stage.Encoded, len(ds.Samples))
	want := make([]float64, len(ds.Samples))
	for i := range ds.Samples {
		es[i] = ds.Samples[i].Encoded
		want[i] = tr.PredictEncoded(es[i])
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				got := tr.PredictEncodedBatch(es, 2)
				for i := range got {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						panic("concurrent batch diverged from direct prediction")
					}
				}
			}
		}()
	}
	wg.Wait()
}
