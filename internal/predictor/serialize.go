package predictor

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"os"

	"predtop/internal/graphnn"
)

// savedModel is the on-disk representation of a trained predictor: the
// architecture spec to rebuild the network, the label scale, and every
// parameter tensor keyed by its stable name.
type savedModel struct {
	Version int
	Spec    graphnn.ModelSpec
	Scale   float64
	Shapes  map[string][2]int
	Params  map[string][]float64
}

const savedModelVersion = 1

// Save serializes a trained predictor to w (gob encoding).
func Save(w io.Writer, t Trained) error {
	sm := savedModel{
		Version: savedModelVersion,
		Spec:    t.Model.Spec(),
		Scale:   t.Scale,
		Shapes:  map[string][2]int{},
		Params:  map[string][]float64{},
	}
	for _, p := range t.Model.Params() {
		if _, dup := sm.Params[p.Name]; dup {
			return fmt.Errorf("predictor: duplicate parameter name %q", p.Name)
		}
		sm.Shapes[p.Name] = [2]int{p.V.R, p.V.C}
		sm.Params[p.Name] = append([]float64{}, p.V.Data...)
	}
	return gob.NewEncoder(w).Encode(sm)
}

// Load deserializes a trained predictor from r, rebuilding the architecture
// from its spec and restoring every parameter tensor.
func Load(r io.Reader) (Trained, error) {
	var sm savedModel
	if err := gob.NewDecoder(r).Decode(&sm); err != nil {
		return Trained{}, fmt.Errorf("predictor: decode: %w", err)
	}
	if sm.Version != savedModelVersion {
		return Trained{}, fmt.Errorf("predictor: unsupported model version %d", sm.Version)
	}
	model, err := sm.Spec.Build(rand.New(rand.NewSource(0)))
	if err != nil {
		return Trained{}, err
	}
	seen := 0
	for _, p := range model.Params() {
		data, ok := sm.Params[p.Name]
		if !ok {
			return Trained{}, fmt.Errorf("predictor: missing parameter %q", p.Name)
		}
		shape := sm.Shapes[p.Name]
		if shape[0] != p.V.R || shape[1] != p.V.C || len(data) != p.V.Size() {
			return Trained{}, fmt.Errorf("predictor: parameter %q shape mismatch: saved %dx%d, model %dx%d",
				p.Name, shape[0], shape[1], p.V.R, p.V.C)
		}
		copy(p.V.Data, data)
		seen++
	}
	if seen != len(sm.Params) {
		return Trained{}, fmt.Errorf("predictor: saved model has %d parameters, architecture expects %d",
			len(sm.Params), seen)
	}
	return Trained{Model: model, Scale: sm.Scale}, nil
}

// SaveFile writes a trained predictor to path.
func SaveFile(path string, t Trained) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Save(f, t)
}

// LoadFile reads a trained predictor from path.
func LoadFile(path string) (Trained, error) {
	f, err := os.Open(path)
	if err != nil {
		return Trained{}, err
	}
	defer f.Close()
	return Load(f)
}
