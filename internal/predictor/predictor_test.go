package predictor

import (
	"math"
	"math/rand"
	"testing"

	"predtop/internal/cluster"
	"predtop/internal/graphnn"
	"predtop/internal/models"
	"predtop/internal/sim"
	"predtop/internal/stage"
)

func testScenario() cluster.Scenario {
	return cluster.Scenarios(cluster.Platform1())[0] // mesh 1, single A40
}

func smallDataset(t testing.TB, count int) (*Encoder, *Dataset) {
	t.Helper()
	m := models.Build(models.GPT3())
	rng := rand.New(rand.NewSource(1))
	specs := CollectStages(m, rng, count, 3)
	enc := NewEncoder(m, true)
	ds := BuildDataset(enc, specs, testScenario(), sim.DefaultProfiler())
	if len(ds.Samples) < count*3/4 {
		t.Fatalf("only %d of %d stages feasible", len(ds.Samples), count)
	}
	return enc, ds
}

func TestBuildDatasetLabels(t *testing.T) {
	_, ds := smallDataset(t, 24)
	for _, s := range ds.Samples {
		if s.True <= 0 || s.Measured <= 0 {
			t.Fatalf("non-positive latency for %v", s.Spec)
		}
		if math.Abs(s.Measured-s.True)/s.True > 0.1 {
			t.Fatalf("measurement noise too large: %v vs %v", s.Measured, s.True)
		}
		if s.Encoded == nil || s.Encoded.N() == 0 {
			t.Fatalf("missing encoding for %v", s.Spec)
		}
	}
	// Longer stages must take longer (latency grows with work).
	var one, three float64
	var n1, n3 int
	for _, s := range ds.Samples {
		switch s.Spec.Len() {
		case 1:
			one += s.True
			n1++
		case 3:
			three += s.True
			n3++
		}
	}
	if n1 > 0 && n3 > 0 && three/float64(n3) <= one/float64(n1) {
		t.Fatal("3-segment stages should exceed 1-segment latency on average")
	}
}

func TestEncoderCachesAndIsScenarioIndependent(t *testing.T) {
	m := models.Build(models.GPT3())
	enc := NewEncoder(m, true)
	sp := stage.Spec{Lo: 2, Hi: 4}
	a := enc.Encode(sp)
	b := enc.Encode(sp)
	if a != b {
		t.Fatal("encoder did not cache")
	}
}

func TestInfeasibleStagesSkipped(t *testing.T) {
	m := models.Build(models.GPT3())
	enc := NewEncoder(m, true)
	// The full model cannot be trained on a single 24 GB A5500.
	sc := cluster.Scenarios(cluster.Platform2())[0]
	specs := []stage.Spec{{Lo: 0, Hi: m.NumSegments()}, {Lo: 2, Hi: 3}}
	ds := BuildDataset(enc, specs, sc, sim.DefaultProfiler())
	if len(ds.Samples) != 1 {
		t.Fatalf("expected 1 feasible sample, got %d", len(ds.Samples))
	}
}

// naiveMRE is the error of always predicting the training mean.
func naiveMRE(ds *Dataset, trainIdx, testIdx []int) float64 {
	mean := 0.0
	for _, i := range trainIdx {
		mean += ds.Samples[i].Measured
	}
	mean /= float64(len(trainIdx))
	total := 0.0
	for _, i := range testIdx {
		total += math.Abs(mean-ds.Samples[i].Measured) / ds.Samples[i].Measured
	}
	return total / float64(len(testIdx)) * 100
}

func TestTransformerLearnsLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	_, ds := smallDataset(t, 48)
	rng := rand.New(rand.NewSource(2))
	train, val, test := stage.Split(rng, len(ds.Samples), 0.6, 0.15)
	model := graphnn.NewDAGTransformer(rng, graphnn.TransformerConfig{Layers: 2, Dim: 32, Heads: 2})
	trained, res := Train(model, ds, train, val, TrainConfig{Epochs: 30, Patience: 30, BatchSize: 8, Seed: 3})
	if res.EpochsRun == 0 || res.Scale <= 0 {
		t.Fatalf("bad result %+v", res)
	}
	mre := trained.MRE(ds, test)
	base := naiveMRE(ds, train, test)
	if mre >= base {
		t.Fatalf("transformer MRE %.2f%% no better than naive %.2f%%", mre, base)
	}
	if mre > 40 {
		t.Fatalf("transformer MRE %.2f%% too high", mre)
	}
}

func TestEarlyStoppingRestoresBest(t *testing.T) {
	_, ds := smallDataset(t, 20)
	rng := rand.New(rand.NewSource(4))
	train, val, _ := stage.Split(rng, len(ds.Samples), 0.6, 0.2)
	model := graphnn.NewDAGTransformer(rng, graphnn.TransformerConfig{Layers: 1, Dim: 16, Heads: 2})
	_, res := Train(model, ds, train, val, TrainConfig{Epochs: 12, Patience: 2, BatchSize: 8, Seed: 5})
	if res.EpochsRun > 12 {
		t.Fatalf("ran %d epochs", res.EpochsRun)
	}
	if math.IsInf(res.BestValLoss, 1) {
		t.Fatal("no best validation loss recorded")
	}
}

func TestMAEDefaultLoss(t *testing.T) {
	cfg := TrainConfig{}.withDefaults()
	if cfg.Loss != MAE {
		t.Fatal("paper selects MAE (§IV-B7)")
	}
	if cfg.Epochs != 500 || cfg.BatchSize != 32 || cfg.BaseLR != 1e-3 || cfg.Patience != 200 {
		t.Fatalf("defaults diverge from §IV-B6/B8: %+v", cfg)
	}
}

func TestCollectStagesCounts(t *testing.T) {
	m := models.Build(models.GPT3())
	rng := rand.New(rand.NewSource(6))
	all := CollectStages(m, rng, 0, 4)
	if len(all) != 26+25+24+23 {
		t.Fatalf("universe size %d", len(all))
	}
	some := CollectStages(m, rng, 40, 4)
	if len(some) != 40 {
		t.Fatalf("sampled %d", len(some))
	}
}
