//go:build race

package predictor

// raceEnabled reports that this test binary was built with -race, which
// degrades sync.Pool (items are intentionally dropped) and so invalidates
// steady-state allocation counts on pooled paths.
const raceEnabled = true
