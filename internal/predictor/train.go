package predictor

import (
	"math"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"predtop/internal/ag"
	"predtop/internal/graphnn"
	"predtop/internal/obs"
	"predtop/internal/optim"
	"predtop/internal/parallel"
	"predtop/internal/stage"
	"predtop/internal/tensor"
)

// Loss selects the training objective. The paper evaluated both and found
// MAE to always outperform MSE (§IV-B7).
type Loss uint8

// Training losses.
const (
	MAE Loss = iota
	MSE
)

// TrainConfig carries the training hyper-parameters of §IV-B6/B8. The zero
// value is replaced by the paper's settings.
type TrainConfig struct {
	Epochs    int     // cosine-decay horizon (paper: 500)
	BatchSize int     // paper: 32
	BaseLR    float64 // paper: 1e-3 decaying to 0
	Patience  int     // early-stopping patience in epochs (paper: 200)
	Loss      Loss    // paper: MAE
	Seed      int64
	ClipNorm  float64 // gradient clipping (0 = paper default 5)
	// Workers bounds the data-parallel goroutines of the minibatch and
	// evaluation loops: 0 = GOMAXPROCS, 1 = serial. Any setting produces
	// bitwise-identical results — sharding and gradient-reduction order
	// depend only on the minibatch, never on the worker count.
	Workers int
	// NoArena disables tensor-arena reuse on the per-sample tapes, making
	// every intermediate a plain heap allocation (the pre-arena behavior).
	// Arena reuse is on by default because results are bitwise identical
	// either way — each worker tape owns a private arena, so this is purely
	// a debugging/verification escape hatch.
	NoArena bool
	// SerialTapes disables the fused batched minibatch/evaluation forwards,
	// running one tape per sample as earlier versions did. The batched tape
	// shares its inner kernels with the serial path, so results are bitwise
	// identical either way; like NoArena this is a verification escape
	// hatch, not a tuning knob. Models that do not implement
	// graphnn.BatchPredictor always take the serial path.
	SerialTapes bool
	// Hooks, when non-nil, observes training progress (per-epoch stats,
	// early stop, weight restore) and receives hot-path metrics. Hooks only
	// observe — they never perturb the shuffle, sharding, or reduction
	// order — so trained weights stay bitwise identical with hooks attached
	// or absent, at every Workers setting.
	Hooks *TrainHooks
}

// EpochStats is one epoch of a training run, as recorded in
// TrainResult.History and delivered to TrainHooks.OnEpoch. TrainLoss is the
// mean per-sample minibatch loss over the epoch (in label-normalized units,
// accumulated in fixed batch order, so it is bitwise deterministic);
// GradNorm is the mean pre-clip gradient norm over the epoch's batches;
// WallSeconds is cumulative since Train started.
type EpochStats struct {
	Epoch       int     `json:"epoch"` // 1-based
	LR          float64 `json:"lr"`
	TrainLoss   float64 `json:"train_loss"`
	ValLoss     float64 `json:"val_loss"` // 0 when no validation set
	GradNorm    float64 `json:"grad_norm"`
	BadEpochs   int     `json:"bad_epochs"` // epochs since the last val improvement
	WallSeconds float64 `json:"wall_s"`
}

// TrainHooks observes a training run. Every field is optional; the zero
// value observes nothing. Callbacks run on the training goroutine between
// epochs (never inside the data-parallel minibatch loop), so they may block
// but must not mutate the model.
type TrainHooks struct {
	// OnEpoch fires once per epoch, after the optimizer steps and the
	// validation pass.
	OnEpoch func(EpochStats)
	// OnEarlyStop fires at most once, when patience is exhausted; epoch is
	// the 1-based last epoch run.
	OnEarlyStop func(epoch int)
	// OnRestore fires when best-validation weights are restored at the end
	// of a run with a validation set.
	OnRestore func(bestEpoch int, bestValLoss float64)
	// Metrics receives hot-path instruments (train_batches_total,
	// train_samples_total, train_batch_seconds, train_epoch_seconds). A nil
	// registry is a zero-allocation no-op on the minibatch hot path.
	Metrics *obs.Registry
	// Profiler, when non-nil, receives hierarchical phase spans
	// (train → data / batch{sample, step} / eval) with per-layer
	// forward/backward attribution from the model tapes. Like Metrics, a
	// nil profiler keeps every span inert and allocation-free, and spans
	// only observe — trained weights stay bitwise identical with profiling
	// on or off.
	Profiler *obs.Profiler
	// Flight, when non-nil, receives breadcrumbs (one static note per batch,
	// one per epoch) into the crash ring buffer, so a worker panic dump shows
	// where training was. A nil recorder is a zero-allocation no-op, and
	// notes only observe — determinism is untouched.
	Flight *obs.FlightRecorder
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 500
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.BaseLR == 0 {
		c.BaseLR = 1e-3
	}
	if c.Patience == 0 {
		c.Patience = 200
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 5
	}
	return c
}

// TrainResult reports a completed training run.
type TrainResult struct {
	EpochsRun   int
	BestValLoss float64
	// BestEpoch is the 1-based epoch whose weights the run kept: the best
	// validation epoch, or the final epoch when no validation set was given
	// (0 when nothing was trained).
	BestEpoch int
	Scale     float64 // label normalization divisor
	// History holds one entry per epoch run (len == EpochsRun), so callers
	// can plot loss curves without attaching hooks.
	History     []EpochStats
	WallSeconds float64
}

// Trained couples a fitted model with its label scale for inference.
type Trained struct {
	Model graphnn.Model
	Scale float64
}

// Train fits model on ds.Samples[trainIdx], early-stopping on valIdx, and
// restores the best-validation weights (§IV-B8). An empty trainIdx returns
// the untouched model; an empty valIdx disables early stopping, keeps the
// final-epoch weights, and reports the final training loss as BestValLoss.
//
// The minibatch loop is data-parallel: each sample of a batch runs its own
// forward/backward tape into a private ag.GradBuffer shard, and the shards
// are tree-reduced into the shared gradients in an order fixed by the batch
// alone, so every cfg.Workers setting yields bitwise-identical weights.
func Train(model graphnn.Model, ds *Dataset, trainIdx, valIdx []int, cfg TrainConfig) (Trained, TrainResult) {
	cfg = cfg.withDefaults()
	start := time.Now()
	if len(trainIdx) == 0 {
		return Trained{Model: model, Scale: 1}, TrainResult{Scale: 1, WallSeconds: time.Since(start).Seconds()}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Normalize labels so the output head operates near unit scale.
	scale := 0.0
	for _, i := range trainIdx {
		scale += ds.Samples[i].Measured
	}
	scale /= float64(len(trainIdx))
	if scale <= 0 {
		scale = 1
	}

	params := model.Params()
	opt := optim.NewAdam(params)

	// Fused batched path: each minibatch (and evaluation chunk) runs as one
	// tape over a padded stack of graphs, with parameter gradients sharded
	// per panel into the same per-slot buffers the per-sample tapes fill.
	// The batched ops share their inner kernels with the serial ones, so
	// both paths train bitwise-identical weights.
	bm, hasBatch := model.(graphnn.BatchPredictor)
	batched := hasBatch && !cfg.SerialTapes

	// Phase spans nest under one "train" root; with no profiler attached
	// every span below is the inert zero Span (guarded, like the metrics
	// instruments, by TestNilRegistryHotPathZeroAlloc).
	hooks := cfg.Hooks
	var prof *obs.Profiler
	if hooks != nil {
		prof = hooks.Profiler
	}
	trainSpan := prof.Start("train")
	defer trainSpan.End()

	// Forward-only tapes for evaluation, pooled across workers and epochs.
	// Each pooled context owns a private arena, so steady-state evaluation
	// recycles every intermediate instead of allocating.
	ctxPool := parallel.NewPool(func() *ag.Context {
		c := ag.NewContext()
		if cfg.NoArena {
			c.SetArena(nil)
		}
		return c
	})
	lossOf := func(idx []int) float64 {
		if len(idx) == 0 {
			return 0
		}
		es := trainSpan.Start("eval")
		var total float64
		if batched {
			// Fused evaluation: BatchSize graphs share one forward per
			// chunk. vals is filled at the same indices the per-sample
			// MapReduce would use and folded through the identical tree, so
			// the mean is bitwise unchanged.
			vals := make([]float64, len(idx))
			encs := make([]*stage.Encoded, len(idx))
			for k, i := range idx {
				encs[k] = ds.Samples[i].Encoded
			}
			nchunks := (len(idx) + cfg.BatchSize - 1) / cfg.BatchSize
			parallel.ForLimit(nchunks, cfg.Workers, func(ci int) {
				lo := ci * cfg.BatchSize
				hi := lo + cfg.BatchSize
				if hi > len(idx) {
					hi = len(idx)
				}
				ctx := ctxPool.Get()
				ctx.Reset()
				ss := es.Start("sample")
				ctx.SetSpan(ss)
				if nb, err := stage.NewBatch(encs[lo:hi], ctx.Arena()); err == nil {
					preds := bm.PredictBatch(ctx, nb).Value()
					for k := lo; k < hi; k++ {
						vals[k] = sampleLoss(preds.Data[k-lo], ds.Samples[idx[k]].Measured/scale, cfg.Loss)
					}
				} else {
					// Graphs that cannot pool (zero nodes) evaluate one by
					// one on the same tape.
					for k := lo; k < hi; k++ {
						p := model.Predict(ctx, encs[k]).Value().At(0, 0)
						vals[k] = sampleLoss(p, ds.Samples[idx[k]].Measured/scale, cfg.Loss)
					}
				}
				ss.End()
				ctxPool.Put(ctx)
			})
			total = parallel.TreeReduce(vals, func(a, b float64) float64 { return a + b })
		} else {
			total = parallel.MapReduce(len(idx), cfg.Workers, func(k int) float64 {
				s := &ds.Samples[idx[k]]
				ctx := ctxPool.Get()
				ctx.Reset()
				ss := es.Start("sample")
				ctx.SetSpan(ss)
				pred := model.Predict(ctx, s.Encoded).Value().At(0, 0)
				ss.End()
				ctxPool.Put(ctx)
				return sampleLoss(pred, s.Measured/scale, cfg.Loss)
			}, func(a, b float64) float64 { return a + b })
		}
		es.End()
		return total / float64(len(idx))
	}

	// One gradient shard per minibatch slot, each with a dedicated tape.
	// The batched path shares one tape across the whole minibatch but still
	// fills the same per-slot shards (per panel instead of per tape); the
	// dedicated tapes remain the fallback for graphs that cannot pool.
	bufs := make([]*ag.GradBuffer, cfg.BatchSize)
	tapes := make([]*ag.Context, cfg.BatchSize)
	for i := range bufs {
		bufs[i] = ag.NewGradBuffer(params)
		tapes[i] = ag.NewContextInto(bufs[i])
		if cfg.NoArena {
			tapes[i].SetArena(nil)
		}
	}
	var btape *ag.Context
	var bencs []*stage.Encoded
	if batched {
		btape = ag.NewContext()
		if cfg.NoArena {
			btape.SetArena(nil)
		}
		bencs = make([]*stage.Encoded, cfg.BatchSize)
	}

	// Instruments resolve to nil on a nil registry, making every hot-path
	// observation below a zero-allocation no-op (guarded by
	// TestNilRegistryHotPathZeroAlloc).
	var reg *obs.Registry
	if hooks != nil {
		reg = hooks.Metrics
	}
	batchTimer := reg.Histogram("train_batch_seconds", nil)
	epochTimer := reg.Histogram("train_epoch_seconds", nil)
	batchCtr := reg.Counter("train_batches_total")
	sampleCtr := reg.Counter("train_samples_total")
	var flight *obs.FlightRecorder
	if hooks != nil {
		flight = hooks.Flight
	}

	useVal := len(valIdx) > 0
	best := math.Inf(1)
	bestParams := snapshot(params)
	bad := 0
	res := TrainResult{Scale: scale}
	lossVals := make([]float64, cfg.BatchSize)

	// runSerialBatch is the per-sample minibatch: one tape and shard per
	// sample, data-parallel across workers.
	runSerialBatch := func(batch []int, bs obs.Span) {
		parallel.ForLimit(len(batch), cfg.Workers, func(k int) {
			s := &ds.Samples[batch[k]]
			ctx := tapes[k]
			ctx.Reset()
			bufs[k].Zero()
			// Per-sample span: the model's layer marks nest under it
			// for forward timing, and Backward hangs its per-layer
			// attribution subtree off the same node.
			ss := bs.Start("sample")
			ctx.SetSpan(ss)
			pred := model.Predict(ctx, s.Encoded)
			var loss *ag.Node
			if cfg.Loss == MSE {
				loss = ctx.MSELossScalar(pred, s.Measured/scale)
			} else {
				loss = ctx.MAELossScalar(pred, s.Measured/scale)
			}
			lossVals[k] = loss.Value().At(0, 0)
			ctx.Backward(loss)
			ss.End()
		})
	}

	// runBatchedBatch fuses the whole minibatch into one tape. Reports false
	// (without touching weights) when the batch cannot pool, so the caller
	// falls back to the per-sample loop.
	runBatchedBatch := func(batch []int, bs obs.Span) bool {
		ctx := btape
		ctx.Reset()
		for k, bi := range batch {
			bufs[k].Zero()
			bencs[k] = ds.Samples[bi].Encoded
		}
		nb, err := stage.NewBatch(bencs[:len(batch)], ctx.Arena())
		if err != nil {
			return false
		}
		ctx.SetShards(bufs[:len(batch)])
		// One span covers the fused forward/backward; the model's layer
		// marks nest under it exactly as they would on a per-sample tape.
		ss := bs.Start("sample")
		ctx.SetSpan(ss)
		pred := bm.PredictBatch(ctx, nb)
		targets := ctx.Arena().GetUninit(len(batch), 1)
		for k, bi := range batch {
			targets.Data[k] = ds.Samples[bi].Measured / scale
		}
		// Per-row losses with no mean reduction: BackwardVec seeds every row
		// with 1, which is exactly the gradient MeanAll over a 1×1 scalar
		// hands the serial loss, so gradients land bitwise identical.
		diff := ctx.Sub(pred, ctx.Const(targets))
		var loss *ag.Node
		if cfg.Loss == MSE {
			loss = ctx.Square(diff)
		} else {
			loss = ctx.Abs(diff)
		}
		copy(lossVals[:len(batch)], loss.Value().Data)
		ctx.BackwardVec(loss)
		ss.End()
		return true
	}

	order := append([]int{}, trainIdx...)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		et := epochTimer.Start()
		lr := optim.CosineDecay(cfg.BaseLR, epoch, cfg.Epochs)
		dsp := trainSpan.Start("data")
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		dsp.End()
		epochLoss, normSum, numBatches := 0.0, 0.0, 0
		for lo := 0; lo < len(order); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(order) {
				hi = len(order)
			}
			batch := order[lo:hi]
			bt := batchTimer.Start()
			bs := trainSpan.Start("batch")
			if !batched || !runBatchedBatch(batch, bs) {
				runSerialBatch(batch, bs)
			}
			st := bs.Start("step")
			optim.ReduceGrads(params, bufs[:len(batch)])
			optim.ScaleGrads(params, 1/float64(len(batch)))
			norm := optim.ClipGradNorm(params, cfg.ClipNorm)
			opt.Step(lr)
			st.End()
			bs.End()
			bt.Stop()
			batchCtr.Inc()
			sampleCtr.Add(int64(len(batch)))
			flight.Note("train", "batch")
			// Observation only: per-sample losses fold through the same
			// fixed-shape tree as the gradients and accumulate serially in
			// batch order, so History is as deterministic as the weights.
			epochLoss += parallel.TreeReduce(lossVals[:len(batch)], func(a, b float64) float64 { return a + b })
			normSum += norm
			numBatches++
		}
		res.EpochsRun = epoch + 1

		stats := EpochStats{
			Epoch:     epoch + 1,
			LR:        lr,
			TrainLoss: epochLoss / float64(len(order)),
			GradNorm:  normSum / float64(numBatches),
		}
		stopped := false
		if useVal {
			val := lossOf(valIdx)
			stats.ValLoss = val
			if val < best {
				best = val
				res.BestEpoch = epoch + 1
				copyInto(bestParams, params)
				bad = 0
			} else {
				bad++
				stopped = bad >= cfg.Patience
			}
			stats.BadEpochs = bad
		}
		stats.WallSeconds = time.Since(start).Seconds()
		res.History = append(res.History, stats)
		et.Stop()
		if flight.Enabled() { // guard: the message is formatted only when live
			flight.Note("train", "epoch "+strconv.Itoa(epoch+1)+" done")
		}
		if hooks != nil && hooks.OnEpoch != nil {
			hooks.OnEpoch(stats)
		}
		if stopped {
			if hooks != nil && hooks.OnEarlyStop != nil {
				hooks.OnEarlyStop(epoch + 1)
			}
			flight.Note("train", "early stop")
			break
		}
	}
	if useVal {
		restore(params, bestParams)
		res.BestValLoss = best
		if hooks != nil && hooks.OnRestore != nil {
			hooks.OnRestore(res.BestEpoch, best)
		}
	} else {
		res.BestValLoss = lossOf(trainIdx)
		res.BestEpoch = res.EpochsRun
	}
	res.WallSeconds = time.Since(start).Seconds()
	return Trained{Model: model, Scale: scale}, res
}

// predictCtxs recycles forward-only tapes (and their tensor arenas) across
// PredictEncoded calls, so steady-state inference allocates nothing. The
// pool is safe for concurrent predictions; results never depend on which
// pooled context serves a call because every intermediate buffer is fully
// written before it is read.
var predictCtxs = sync.Pool{New: func() any { return ag.NewContext() }}

// PredictEncoded returns the trained model's latency prediction in seconds
// for an encoded stage graph. Latency is a positive quantity, so raw network
// outputs are floored at 1% of the label scale.
func (t Trained) PredictEncoded(e *stage.Encoded) float64 {
	ctx := predictCtxs.Get().(*ag.Context)
	pred := t.Model.Predict(ctx, e).Value().At(0, 0) * t.Scale
	ctx.Reset()
	predictCtxs.Put(ctx)
	if floor := 0.01 * t.Scale; pred < floor {
		return floor
	}
	return pred
}

// PredictGraph returns the latency prediction in seconds for a sample.
func (t Trained) PredictGraph(s *Sample) float64 {
	return t.PredictEncoded(s.Encoded)
}

// predictBatchChunk bounds how many graphs fuse into one padded stack: past
// this, padding waste and the stacked tensors' cache footprint grow without
// amortizing any more per-graph tape overhead.
const predictBatchChunk = 64

// PredictEncodedBatch predicts a whole batch of encoded stage graphs in one
// call. When the model batches (all built-in architectures do), chunks of up
// to 64 graphs fuse into a single padded forward on one pooled tape; chunks
// fan across workers (0 = GOMAXPROCS, 1 = serial). This is the batched
// forward the serving daemon's request coalescer drives. Each out[i] is
// bitwise identical to PredictEncoded(es[i]) at any worker count and any
// chunking — panels of the padded stack never mix, so batching is pure
// amortization, never a numerical change.
func (t Trained) PredictEncodedBatch(es []*stage.Encoded, workers int) []float64 {
	out := make([]float64, len(es))
	bm, ok := t.Model.(graphnn.BatchPredictor)
	if !ok {
		parallel.ForLimit(len(es), workers, func(k int) {
			out[k] = t.PredictEncoded(es[k])
		})
		return out
	}
	nchunks := (len(es) + predictBatchChunk - 1) / predictBatchChunk
	parallel.ForLimit(nchunks, workers, func(ci int) {
		lo := ci * predictBatchChunk
		hi := lo + predictBatchChunk
		if hi > len(es) {
			hi = len(es)
		}
		t.predictFusedChunk(bm, es[lo:hi], out[lo:hi])
	})
	return out
}

// predictFusedChunk runs one chunk as a single padded batched forward,
// falling back to per-graph predictions when the chunk cannot pool (a graph
// with zero nodes).
func (t Trained) predictFusedChunk(bm graphnn.BatchPredictor, es []*stage.Encoded, out []float64) {
	ctx := predictCtxs.Get().(*ag.Context)
	nb, err := stage.NewBatch(es, ctx.Arena())
	if err != nil {
		predictCtxs.Put(ctx)
		for i, e := range es {
			out[i] = t.PredictEncoded(e)
		}
		return
	}
	preds := bm.PredictBatch(ctx, nb).Value()
	floor := 0.01 * t.Scale
	for i := range out {
		p := preds.Data[i] * t.Scale
		if p < floor {
			p = floor
		}
		out[i] = p
	}
	ctx.Reset()
	predictCtxs.Put(ctx)
}

// SupportsBatch reports whether the model fuses whole batches into single
// padded forwards; the serving daemon uses this to count fused coalescer
// groups.
func (t Trained) SupportsBatch() bool {
	_, ok := t.Model.(graphnn.BatchPredictor)
	return ok
}

// MRE computes the mean relative error (Eqn 5, in percent) of the trained
// model over the given sample indices, against the profiled ground truth.
// Samples are evaluated in parallel; the error sum uses a fixed-order tree
// reduction, so the result does not depend on GOMAXPROCS.
func (t Trained) MRE(ds *Dataset, idx []int) float64 {
	return t.MREWith(ds, idx, nil, obs.AccuracyKey{})
}

// MREWith is MRE that additionally streams every predicted-vs-measured pair
// into an accuracy monitor under the given key. Predictions run in parallel,
// but the monitor is fed serially in index order — and the returned MRE folds
// through the same fixed-shape tree as MRE — so results are bitwise identical
// to MRE with or without a monitor attached (a nil monitor skips the feed).
func (t Trained) MREWith(ds *Dataset, idx []int, mon *obs.AccuracyMonitor, key obs.AccuracyKey) float64 {
	if len(idx) == 0 {
		return 0
	}
	es := make([]*stage.Encoded, len(idx))
	for k, i := range idx {
		es[k] = ds.Samples[i].Encoded
	}
	preds := t.PredictEncodedBatch(es, 0)
	errs := make([]float64, len(idx))
	for k, i := range idx {
		errs[k] = math.Abs(preds[k]-ds.Samples[i].Measured) / ds.Samples[i].Measured
	}
	if mon != nil {
		for k := range preds {
			mon.Observe(key, preds[k], ds.Samples[idx[k]].Measured)
		}
	}
	total := parallel.TreeReduce(errs, func(a, b float64) float64 { return a + b })
	return total / float64(len(idx)) * 100
}

// sampleLoss is one sample's contribution to the training objective, shared
// by the serial and batched evaluation paths.
func sampleLoss(pred, target float64, l Loss) float64 {
	diff := pred - target
	if l == MSE {
		return diff * diff
	}
	return math.Abs(diff)
}

func snapshot(params []*ag.Param) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		out[i] = p.V.Clone()
	}
	return out
}

func copyInto(dst []*tensor.Tensor, params []*ag.Param) {
	for i, p := range params {
		copy(dst[i].Data, p.V.Data)
	}
}

func restore(params []*ag.Param, src []*tensor.Tensor) {
	for i, p := range params {
		copy(p.V.Data, src[i].Data)
	}
}
