package predictor

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"predtop/internal/graphnn"
)

// testTrained wraps an untrained (random-init) model: Evaluate only needs a
// deterministic forward, not a good one.
func testTrained(seed int64) Trained {
	rng := rand.New(rand.NewSource(seed))
	m := graphnn.NewDAGTransformer(rng, graphnn.TransformerConfig{Layers: 1, Dim: 16, Heads: 2})
	return Trained{Model: m, Scale: 1}
}

func TestEvaluateMatchesMREBitwise(t *testing.T) {
	_, ds := smallDataset(t, 24)
	tr := testTrained(7)
	idx := make([]int, len(ds.Samples))
	for i := range idx {
		idx[i] = i
	}
	ev := tr.Evaluate(ds, idx)
	if got, want := ev.MREPct, tr.MRE(ds, idx); got != want {
		t.Fatalf("Evaluate MRE %v != MRE %v (must be bitwise identical)", got, want)
	}
	if ev.Attribution.MREPct != ev.MREPct {
		t.Fatalf("attribution MRE %v != evaluation MRE %v", ev.Attribution.MREPct, ev.MREPct)
	}
	if len(ev.Preds) != len(idx) {
		t.Fatalf("got %d preds for %d indices", len(ev.Preds), len(idx))
	}
	// The predictions must be the batched-forward predictions in idx order.
	for k, i := range idx {
		want := tr.PredictEncoded(ds.Samples[i].Encoded)
		if math.Abs(ev.Preds[k]-want) > 1e-9*math.Abs(want) {
			t.Fatalf("pred[%d] = %v, serial forward %v", k, ev.Preds[k], want)
		}
	}
}

func TestEvaluateEmptyAndDeterministic(t *testing.T) {
	_, ds := smallDataset(t, 16)
	tr := testTrained(8)
	if ev := tr.Evaluate(ds, nil); ev.MREPct != 0 || ev.Attribution == nil || ev.Attribution.Samples != 0 {
		t.Fatalf("empty evaluation not empty: %+v", ev)
	}
	idx := []int{0, 3, 5, 7, 9}
	a, _ := json.Marshal(tr.Attribute(ds, idx))
	b, _ := json.Marshal(tr.Attribute(ds, idx))
	if string(a) != string(b) {
		t.Fatal("attribution JSON differs across identical evaluations")
	}
}

func TestAttributionBucketAccounting(t *testing.T) {
	_, ds := smallDataset(t, 24)
	tr := testTrained(9)
	idx := make([]int, len(ds.Samples))
	for i := range idx {
		idx[i] = i
	}
	a := tr.Attribute(ds, idx)
	if a.Samples != len(idx) {
		t.Fatalf("samples %d != %d", a.Samples, len(idx))
	}
	// Node-count and depth buckets each count every sample exactly once.
	for _, axis := range []struct {
		name string
		bs   []AttributionBucket
	}{{"by_nodes", a.ByNodes}, {"by_depth", a.ByDepth}} {
		n := 0
		w := 0.0
		for _, b := range axis.bs {
			n += b.N
			w += b.Weight
		}
		if n != len(idx) || w != float64(len(idx)) {
			t.Fatalf("%s: n=%d weight=%v, want %d samples", axis.name, n, w, len(idx))
		}
	}
	// Op buckets split each sample's unit weight by node share, so the total
	// op weight is the sample count (up to float summation error).
	opW := 0.0
	for _, b := range a.ByOp {
		opW += b.Weight
		if b.MREPct < 0 || b.MaxPct < b.MREPct {
			t.Fatalf("bucket %q: mre %v max %v", b.Key, b.MREPct, b.MaxPct)
		}
	}
	if math.Abs(opW-float64(len(idx))) > 1e-6*float64(len(idx)) {
		t.Fatalf("op weight %v, want ~%d", opW, len(idx))
	}
	// Buckets arrive sorted by key (the canonical JSON contract).
	for _, bs := range [][]AttributionBucket{a.ByOp, a.ByNodes, a.ByDepth} {
		for i := 1; i < len(bs); i++ {
			if bs[i-1].Key >= bs[i].Key {
				t.Fatalf("buckets not strictly sorted: %q >= %q", bs[i-1].Key, bs[i].Key)
			}
		}
	}
}

func TestMergeAttributions(t *testing.T) {
	_, ds := smallDataset(t, 24)
	tr := testTrained(10)
	all := make([]int, len(ds.Samples))
	for i := range all {
		all[i] = i
	}
	half := len(all) / 2
	pa, pb := tr.Attribute(ds, all[:half]), tr.Attribute(ds, all[half:])
	m := MergeAttributions(pa, nil, pb)
	if m.Samples != len(all) {
		t.Fatalf("merged samples %d != %d", m.Samples, len(all))
	}
	whole := tr.Attribute(ds, all)
	if math.Abs(m.MREPct-whole.MREPct) > 1e-9*(1+whole.MREPct) {
		t.Fatalf("merged MRE %v, whole-set MRE %v", m.MREPct, whole.MREPct)
	}
	// Counts and weights merge exactly; means within float tolerance.
	wantByKey := map[string]AttributionBucket{}
	for _, b := range whole.ByNodes {
		wantByKey[b.Key] = b
	}
	if len(m.ByNodes) != len(whole.ByNodes) {
		t.Fatalf("merged %d node buckets, whole set has %d", len(m.ByNodes), len(whole.ByNodes))
	}
	for _, b := range m.ByNodes {
		w := wantByKey[b.Key]
		if b.N != w.N || b.Weight != w.Weight || b.MaxPct != w.MaxPct {
			t.Fatalf("bucket %q: merged %+v, whole %+v", b.Key, b, w)
		}
		if math.Abs(b.MREPct-w.MREPct) > 1e-9*(1+w.MREPct) {
			t.Fatalf("bucket %q: merged MRE %v, whole %v", b.Key, b.MREPct, w.MREPct)
		}
	}
	if empty := MergeAttributions(); empty.Samples != 0 || empty.MREPct != 0 {
		t.Fatalf("merging nothing: %+v", empty)
	}
}

func TestAttributionRender(t *testing.T) {
	_, ds := smallDataset(t, 16)
	tr := testTrained(11)
	idx := []int{0, 1, 2, 3}
	out := tr.Attribute(ds, idx).Render()
	for _, want := range []string{"error attribution: 4 samples", "by op type", "by node count", "by stage depth"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestNodeAndDepthKeys(t *testing.T) {
	cases := map[int]string{1: "nodes 001-008", 8: "nodes 001-008", 9: "nodes 009-016",
		64: "nodes 033-064", 128: "nodes 065-128", 129: "nodes 129+", 10000: "nodes 129+"}
	for n, want := range cases {
		if got := nodeBucketKey(n); got != want {
			t.Fatalf("nodeBucketKey(%d) = %q, want %q", n, got, want)
		}
	}
	if got := depthKey(3); got != "depth 03" {
		t.Fatalf("depthKey(3) = %q", got)
	}
}
