//go:build !race

package predictor

const raceEnabled = false
