package predictor

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"predtop/internal/ir"
	"predtop/internal/parallel"
	"predtop/internal/stage"
)

// Attribution is an error-attribution snapshot: the held-out residuals of one
// evaluation, bucketed along the three axes that localize where a predictor's
// error lives — operator type, stage-graph node count, and stage depth (the
// number of pipeline segments the stage spans). A scalar MRE says *how wrong*
// a predictor is; the attribution says *on which stages*, which is what an
// encoder-variant A/B run needs to adjudicate a design change.
//
// Every figure is an absolute relative error in percent against the profiled
// ground truth. Buckets carry their weight sums so two snapshots merge
// exactly (see Merge); all slices are sorted by Key, so the canonical JSON
// rendering is byte-identical for a fixed seed.
type Attribution struct {
	// Samples is the number of held-out stages evaluated; MREPct is their
	// mean relative error — bitwise identical to Trained.MRE over the same
	// indices (same predictions, same fixed-shape tree reduction).
	Samples int     `json:"samples"`
	MREPct  float64 `json:"mre_pct"`
	// ByOp buckets residuals per operator type: a stage's error contributes
	// to every op kind it contains, weighted by that kind's node share, so
	// the bucket MRE answers "how wrong are predictions on stages dominated
	// by this op".
	ByOp []AttributionBucket `json:"by_op,omitempty"`
	// ByNodes buckets residuals by stage-graph node count (power-of-two
	// ranges), exposing size-dependent error.
	ByNodes []AttributionBucket `json:"by_nodes,omitempty"`
	// ByDepth buckets residuals by stage depth in pipeline segments
	// (Spec.Len()), exposing depth-dependent error.
	ByDepth []AttributionBucket `json:"by_depth,omitempty"`
}

// AttributionBucket aggregates the residuals attributed to one bucket key.
type AttributionBucket struct {
	Key string `json:"key"`
	// N counts contributing samples; Weight is the attribution mass (node
	// share for op buckets, sample count for node/depth buckets). MREPct is
	// the weight-averaged relative error, MaxPct the worst contributing
	// sample's error.
	N      int     `json:"n"`
	Weight float64 `json:"weight"`
	MREPct float64 `json:"mre_pct"`
	MaxPct float64 `json:"max_pct"`
}

// attribAccum is the in-flight form of a bucket: sums instead of means.
type attribAccum struct {
	n      int
	weight float64
	errSum float64 // sum of weight × errPct
	maxPct float64
}

// accAdd folds one observation into m[key], creating the bucket on first use.
func accAdd(m map[string]*attribAccum, key string, weight, errPct float64) {
	a := m[key]
	if a == nil {
		a = &attribAccum{}
		m[key] = a
	}
	a.n++
	a.weight += weight
	a.errSum += weight * errPct
	if errPct > a.maxPct {
		a.maxPct = errPct
	}
}

// finishBuckets renders accumulators as sorted buckets.
func finishBuckets(m map[string]*attribAccum) []AttributionBucket {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]AttributionBucket, 0, len(keys))
	for _, k := range keys {
		a := m[k]
		mre := 0.0
		if a.weight > 0 {
			mre = a.errSum / a.weight
		}
		out = append(out, AttributionBucket{Key: k, N: a.n, Weight: a.weight, MREPct: mre, MaxPct: a.maxPct})
	}
	return out
}

// nodeBucketKey maps a node count onto its power-of-two range key. Keys are
// zero-padded so the lexicographic bucket order is the numeric one.
func nodeBucketKey(n int) string {
	bounds := [...]int{8, 16, 32, 64, 128}
	lo := 1
	for _, hi := range bounds {
		if n <= hi {
			return fmt.Sprintf("nodes %03d-%03d", lo, hi)
		}
		lo = hi + 1
	}
	return "nodes 129+"
}

// sampleKinds counts the operator kinds of one encoded stage from the
// one-hot operator-type block of its feature matrix (the encoder writes
// exactly one 1 in the first ir.NumKinds columns of every row).
func sampleKinds(e *stage.Encoded) []int {
	counts := make([]int, ir.NumKinds)
	for v := 0; v < e.N(); v++ {
		row := e.X.Row(v)
		for k := 0; k < ir.NumKinds; k++ {
			if row[k] == 1 {
				counts[k]++
				break
			}
		}
	}
	return counts
}

// Evaluation is one held-out evaluation of a trained predictor: the scalar
// MRE, the raw predictions (in idx order, for accuracy-monitor feeds), and
// the error-attribution snapshot — all from a single batched forward.
type Evaluation struct {
	MREPct      float64
	Preds       []float64
	Attribution *Attribution
}

// Evaluate runs one batched forward over the indexed samples and derives the
// MRE, per-sample predictions, and the attribution snapshot. The MRE is
// bitwise identical to MRE/MREWith over the same indices: the predictions
// come from the same batched path and the error sum folds through the same
// fixed-shape tree reduction. Pure observation — evaluating never mutates
// the model or the dataset.
func (t Trained) Evaluate(ds *Dataset, idx []int) Evaluation {
	if len(idx) == 0 {
		return Evaluation{Attribution: &Attribution{}}
	}
	es := make([]*stage.Encoded, len(idx))
	for k, i := range idx {
		es[k] = ds.Samples[i].Encoded
	}
	preds := t.PredictEncodedBatch(es, 0)
	errs := make([]float64, len(idx))
	for k, i := range idx {
		errs[k] = math.Abs(preds[k]-ds.Samples[i].Measured) / ds.Samples[i].Measured
	}

	// Bucket before reducing: TreeReduce uses its slice as scratch.
	byOp := map[string]*attribAccum{}
	byNodes := map[string]*attribAccum{}
	byDepth := map[string]*attribAccum{}
	for k, i := range idx {
		s := &ds.Samples[i]
		errPct := errs[k] * 100
		n := s.Encoded.N()
		for kind, c := range sampleKinds(s.Encoded) {
			if c == 0 {
				continue
			}
			accAdd(byOp, ir.Kind(kind).String(), float64(c)/float64(n), errPct)
		}
		accAdd(byNodes, nodeBucketKey(n), 1, errPct)
		accAdd(byDepth, depthKey(s.Spec.Len()), 1, errPct)
	}
	total := parallel.TreeReduce(errs, func(a, b float64) float64 { return a + b })
	mre := total / float64(len(idx)) * 100
	return Evaluation{
		MREPct: mre,
		Preds:  preds,
		Attribution: &Attribution{
			Samples: len(idx),
			MREPct:  mre,
			ByOp:    finishBuckets(byOp),
			ByNodes: finishBuckets(byNodes),
			ByDepth: finishBuckets(byDepth),
		},
	}
}

// depthKey renders a stage depth (segments spanned) as a zero-padded key.
func depthKey(d int) string { return fmt.Sprintf("depth %02d", d) }

// Attribute is Evaluate reduced to its attribution snapshot.
func (t Trained) Attribute(ds *Dataset, idx []int) *Attribution {
	return t.Evaluate(ds, idx).Attribution
}

// MergeAttributions folds snapshots bucket by bucket (weight-averaged MREs,
// max of maxes). Merging is exact — buckets carry their weight sums — but
// float addition is order-sensitive, so callers that need byte-identical
// output must merge in a fixed order. The top-level MREPct becomes the
// sample-weighted mean of the parts. Nil parts are skipped; merging nothing
// returns an empty snapshot.
func MergeAttributions(parts ...*Attribution) *Attribution {
	out := &Attribution{}
	byOp := map[string]*attribAccum{}
	byNodes := map[string]*attribAccum{}
	byDepth := map[string]*attribAccum{}
	errSum := 0.0
	merge := func(m map[string]*attribAccum, bs []AttributionBucket) {
		for _, b := range bs {
			a := m[b.Key]
			if a == nil {
				a = &attribAccum{}
				m[b.Key] = a
			}
			a.n += b.N
			a.weight += b.Weight
			a.errSum += b.Weight * b.MREPct
			if b.MaxPct > a.maxPct {
				a.maxPct = b.MaxPct
			}
		}
	}
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.Samples += p.Samples
		errSum += float64(p.Samples) * p.MREPct
		merge(byOp, p.ByOp)
		merge(byNodes, p.ByNodes)
		merge(byDepth, p.ByDepth)
	}
	if out.Samples > 0 {
		out.MREPct = errSum / float64(out.Samples)
	}
	out.ByOp = finishBuckets(byOp)
	out.ByNodes = finishBuckets(byNodes)
	out.ByDepth = finishBuckets(byDepth)
	return out
}

// Render returns the human rendering of the snapshot: one section per axis,
// rows sorted by key. Pure function of the contents — golden-testable.
func (a *Attribution) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "error attribution: %d samples, MRE %.2f%%\n", a.Samples, a.MREPct)
	section := func(title string, bs []AttributionBucket) {
		if len(bs) == 0 {
			return
		}
		fmt.Fprintf(&b, "%s:\n", title)
		fmt.Fprintf(&b, "  %-24s %6s %10s %9s %9s\n", "bucket", "n", "weight", "mre%", "max%")
		for _, bk := range bs {
			fmt.Fprintf(&b, "  %-24s %6d %10.3f %9.2f %9.2f\n", bk.Key, bk.N, bk.Weight, bk.MREPct, bk.MaxPct)
		}
	}
	section("by op type", a.ByOp)
	section("by node count", a.ByNodes)
	section("by stage depth", a.ByDepth)
	return b.String()
}
