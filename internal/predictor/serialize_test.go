package predictor

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"predtop/internal/graphnn"
	"predtop/internal/stage"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	_, ds := smallDataset(t, 16)
	rng := rand.New(rand.NewSource(1))
	train, val, _ := stage.Split(rng, len(ds.Samples), 0.6, 0.2)
	for _, model := range []graphnn.Model{
		graphnn.NewDAGTransformer(rng, graphnn.TransformerConfig{Layers: 1, Dim: 16, Heads: 2}),
		graphnn.NewGCN(rng, graphnn.GCNConfig{Layers: 2, Dim: 16}),
		graphnn.NewGAT(rng, graphnn.GATConfig{Layers: 1, Dim: 8, Heads: 2}),
	} {
		tr, _ := Train(model, ds, train, val, TrainConfig{Epochs: 3, Patience: 3, BatchSize: 4})
		var buf bytes.Buffer
		if err := Save(&buf, tr); err != nil {
			t.Fatalf("%s save: %v", model.Name(), err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s load: %v", model.Name(), err)
		}
		if loaded.Model.Name() != model.Name() || loaded.Scale != tr.Scale {
			t.Fatalf("%s metadata mismatch", model.Name())
		}
		// Predictions must match bit-for-bit.
		for i := range ds.Samples[:4] {
			want := tr.PredictGraph(&ds.Samples[i])
			got := loaded.PredictGraph(&ds.Samples[i])
			if math.Abs(want-got) > 1e-15 {
				t.Fatalf("%s prediction drift: %v vs %v", model.Name(), want, got)
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	_, ds := smallDataset(t, 12)
	rng := rand.New(rand.NewSource(2))
	train, val, _ := stage.Split(rng, len(ds.Samples), 0.6, 0.2)
	model := graphnn.NewDAGTransformer(rng, graphnn.TransformerConfig{Layers: 1, Dim: 16, Heads: 2})
	tr, _ := Train(model, ds, train, val, TrainConfig{Epochs: 2, Patience: 2, BatchSize: 4})
	path := filepath.Join(t.TempDir(), "model.predtop")
	if err := SaveFile(path, tr); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.PredictGraph(&ds.Samples[0]), tr.PredictGraph(&ds.Samples[0]); got != want {
		t.Fatalf("file round trip drift: %v vs %v", got, want)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a model")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	_, ds := smallDataset(t, 12)
	rng := rand.New(rand.NewSource(3))
	train, val, _ := stage.Split(rng, len(ds.Samples), 0.6, 0.2)
	model := graphnn.NewGCN(rng, graphnn.GCNConfig{Layers: 1, Dim: 8})
	tr, _ := Train(model, ds, train, val, TrainConfig{Epochs: 1, Patience: 1, BatchSize: 4})
	var buf bytes.Buffer
	if err := Save(&buf, tr); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version by re-encoding with a bumped field is complex;
	// instead just verify Load on truncated data fails cleanly.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error on truncated model")
	}
}
