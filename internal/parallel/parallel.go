// Package parallel provides small helpers for data-parallel loops.
//
// All computationally heavy loops in this repository are expressed through
// this package so they scale with GOMAXPROCS and degrade gracefully to a
// plain serial loop on a single-core machine.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n), distributing iterations over up to
// GOMAXPROCS goroutines. It returns once all iterations completed. For small
// n or a single-core machine it runs serially with no goroutine overhead.
func For(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForBlocked runs fn(lo, hi) over contiguous index blocks covering [0, n).
// Useful when per-iteration work is tiny and cache locality matters.
func ForBlocked(n, block int, fn func(lo, hi int)) {
	if block <= 0 {
		block = 1
	}
	blocks := (n + block - 1) / block
	For(blocks, func(b int) {
		lo := b * block
		hi := lo + block
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// Map applies fn to every index and collects the results in order.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) { out[i] = fn(i) })
	return out
}
