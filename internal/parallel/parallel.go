// Package parallel provides small helpers for data-parallel loops.
//
// All computationally heavy loops in this repository are expressed through
// this package so they scale with GOMAXPROCS and degrade gracefully to a
// plain serial loop on a single-core machine. Reductions go through a
// fixed-shape pairwise tree (TreeReduce) whose shape depends only on the
// input length, so non-associative folds — floating-point sums above all —
// are bitwise deterministic regardless of worker count or scheduling.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// WorkerPanic wraps a panic recovered inside a parallel worker goroutine: it
// carries the original panic value and the worker's stack at the point of
// panic. ForLimit re-raises it on the calling goroutine, so a crashing task
// surfaces where the loop was started — attributable and recoverable — while
// Stack preserves where it actually happened.
type WorkerPanic struct {
	Value any
	Stack []byte
}

// Error renders the original panic value and worker stack; WorkerPanic
// implements error so recover sites can handle it uniformly.
func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n\nworker stack:\n%s", p.Value, p.Stack)
}

// panicHook, when set, observes the first worker panic of each loop before
// it is re-raised (the flight recorder installs its dump here).
var panicHook atomic.Pointer[func(recovered any, stack []byte)]

// SetPanicHook installs fn to be called with the original panic value and
// worker stack whenever a parallel loop recovers a worker panic (before the
// panic is re-raised on the caller). One hook is process-wide; nil removes
// it. The hook must not panic.
func SetPanicHook(fn func(recovered any, stack []byte)) {
	if fn == nil {
		panicHook.Store(nil)
		return
	}
	panicHook.Store(&fn)
}

// wrapPanic wraps r in a WorkerPanic capturing the current stack, unless a
// nested parallel loop already wrapped it. Must run on the panicking
// goroutine so the stack is the one that failed.
func wrapPanic(r any) (p *WorkerPanic, wrapped bool) {
	if p, ok := r.(*WorkerPanic); ok {
		return p, false
	}
	return &WorkerPanic{Value: r, Stack: debug.Stack()}, true
}

// notifyPanicHook reports p to the installed hook, if any.
func notifyPanicHook(p *WorkerPanic) {
	if h := panicHook.Load(); h != nil {
		(*h)(p.Value, p.Stack)
	}
}

// For runs fn(i) for every i in [0, n), distributing iterations over up to
// GOMAXPROCS goroutines. It returns once all iterations completed. For small
// n or a single-core machine it runs serially with no goroutine overhead.
func For(n int, fn func(i int)) { ForLimit(n, 0, fn) }

// ForLimit is For with an explicit worker count: workers <= 0 selects
// GOMAXPROCS, workers == 1 runs serially on the calling goroutine, and any
// larger count spawns that many goroutines (capped at n). A count above
// GOMAXPROCS is honored — real goroutines still interleave on few cores,
// which is exactly what race and determinism tests need.
func ForLimit(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		serialLoop(n, fn)
		return
	}
	var next atomic.Int64
	var wp atomic.Pointer[WorkerPanic]
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// First panic wins; losers are dropped (they raced the
					// same failure). Park the claim counter past n so the
					// surviving workers drain instead of running more tasks.
					p, fresh := wrapPanic(r)
					if wp.CompareAndSwap(nil, p) && fresh {
						notifyPanicHook(p)
					}
					next.Store(int64(n))
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if p := wp.Load(); p != nil {
		panic(p)
	}
}

// serialLoop runs the workers<=1 path. It captures panics exactly like the
// parallel path (hook notified, value wrapped in *WorkerPanic) so callers see
// identical failure behaviour regardless of worker count.
func serialLoop(n int, fn func(i int)) {
	defer func() {
		if r := recover(); r != nil {
			p, fresh := wrapPanic(r)
			if fresh {
				notifyPanicHook(p)
			}
			panic(p)
		}
	}()
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// ForBlocked runs fn(lo, hi) over contiguous index blocks covering [0, n).
// Useful when per-iteration work is tiny and cache locality matters.
func ForBlocked(n, block int, fn func(lo, hi int)) {
	if block <= 0 {
		block = 1
	}
	blocks := (n + block - 1) / block
	For(blocks, func(b int) {
		lo := b * block
		hi := lo + block
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// Map applies fn to every index and collects the results in order.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) { out[i] = fn(i) })
	return out
}

// MapReduce computes mapFn(i) for every i in [0, n) in parallel (workers as
// in ForLimit) and folds the results with TreeReduce. Because the fold shape
// depends only on n — never on which goroutine produced which value — the
// result is bitwise deterministic even for non-associative reduceFn such as
// floating-point addition. n == 0 returns the zero value of T.
func MapReduce[T any](n, workers int, mapFn func(i int) T, reduceFn func(a, b T) T) T {
	if n == 0 {
		var zero T
		return zero
	}
	vals := make([]T, n)
	ForLimit(n, workers, func(i int) { vals[i] = mapFn(i) })
	return TreeReduce(vals, reduceFn)
}

// TreeReduce folds vals with a fixed-shape pairwise tree: adjacent pairs at
// stride 1, then 2, 4, … The fold shape is a pure function of len(vals), so
// non-associative reductions are deterministic across worker counts and
// runs. The slice is used as scratch (vals[0] ends up holding the result);
// callers that need the inputs afterwards must pass a copy. Reductions that
// mutate their first argument in place (e.g. tensor accumulation) may simply
// return it. Panics on an empty slice.
func TreeReduce[T any](vals []T, reduceFn func(a, b T) T) T {
	if len(vals) == 0 {
		panic("parallel: TreeReduce of empty slice")
	}
	for stride := 1; stride < len(vals); stride *= 2 {
		for i := 0; i+stride < len(vals); i += 2 * stride {
			vals[i] = reduceFn(vals[i], vals[i+stride])
		}
	}
	return vals[0]
}

// Pool is a free list of reusable worker scratch values (autodiff tapes,
// temporary buffers). Unlike sync.Pool it never discards values under GC
// pressure, so the steady-state allocation count of a loop that Gets and
// Puts is zero once the pool has grown to the peak concurrency.
type Pool[T any] struct {
	mu   sync.Mutex
	free []T
	newT func() T
}

// NewPool returns a pool whose Get falls back to newT when empty.
func NewPool[T any](newT func() T) *Pool[T] {
	return &Pool[T]{newT: newT}
}

// Get removes and returns a pooled value, or makes a fresh one.
func (p *Pool[T]) Get() T {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return v
	}
	p.mu.Unlock()
	return p.newT()
}

// Put returns a value to the pool for reuse.
func (p *Pool[T]) Put(v T) {
	p.mu.Lock()
	p.free = append(p.free, v)
	p.mu.Unlock()
}
