package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1023} {
		var hits atomic.Int64
		seen := make([]atomic.Bool, n+1)
		For(n, func(i int) {
			if i < 0 || i >= n {
				t.Errorf("index %d out of range", i)
				return
			}
			if seen[i].Swap(true) {
				t.Errorf("index %d visited twice", i)
			}
			hits.Add(1)
		})
		if int(hits.Load()) != n {
			t.Fatalf("n=%d: %d iterations", n, hits.Load())
		}
	}
}

func TestForBlockedCoversRange(t *testing.T) {
	f := func(nRaw, blockRaw uint8) bool {
		n := int(nRaw) % 200
		block := int(blockRaw)%16 + 1
		covered := make([]atomic.Int32, n)
		ForBlocked(n, block, func(lo, hi int) {
			if hi-lo > block || lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad block [%d,%d) for n=%d block=%d", lo, hi, n, block)
			}
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
		})
		for i := range covered {
			if covered[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMapOrdering(t *testing.T) {
	out := Map(50, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
