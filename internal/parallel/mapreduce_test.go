package parallel

import (
	"math"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForLimitCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 257} {
		for _, workers := range []int{-1, 0, 1, 2, 7, 100} {
			var hits atomic.Int64
			ForLimit(n, workers, func(i int) {
				if i < 0 || i >= n {
					t.Errorf("index %d out of range", i)
				}
				hits.Add(1)
			})
			if int(hits.Load()) != n {
				t.Fatalf("n=%d workers=%d: %d iterations", n, workers, hits.Load())
			}
		}
	}
}

// TestMapReduceWorkerCountInvariant is the determinism property the training
// engine relies on: a floating-point sum folded by MapReduce is bitwise
// identical for every worker count, because the reduction tree's shape is a
// function of n alone. The inputs are scaled to magnitudes where addition
// order genuinely changes the rounded result, so a schedule-dependent fold
// would fail this test.
func TestMapReduceWorkerCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(nRaw uint16) bool {
		n := int(nRaw)%200 + 1
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(20)-10))
		}
		add := func(a, b float64) float64 { return a + b }
		want := MapReduce(n, 1, func(i int) float64 { return vals[i] }, add)
		for _, workers := range []int{2, 3, 8, 64} {
			got := MapReduce(n, workers, func(i int) float64 { return vals[i] }, add)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("n=%d workers=%d: %x != %x", n, workers, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTreeReduceFixedOrder proves the fold visits inputs in index order: a
// non-commutative reduction (string concatenation) over the pairwise tree
// must reproduce the exact left-to-right concatenation for every length and
// worker count.
func TestTreeReduceFixedOrder(t *testing.T) {
	for n := 1; n <= 33; n++ {
		var want strings.Builder
		for i := 0; i < n; i++ {
			want.WriteByte(byte('a' + i%26))
		}
		for _, workers := range []int{1, 4} {
			got := MapReduce(n, workers, func(i int) string {
				return string(byte('a' + i%26))
			}, func(a, b string) string { return a + b })
			if got != want.String() {
				t.Fatalf("n=%d workers=%d: %q != %q", n, workers, got, want.String())
			}
		}
	}
}

func TestMapReduceEmpty(t *testing.T) {
	got := MapReduce(0, 4, func(i int) float64 { return 1 }, func(a, b float64) float64 { return a + b })
	if got != 0 {
		t.Fatalf("empty MapReduce = %v", got)
	}
}

func TestTreeReduceInPlaceAccumulation(t *testing.T) {
	// Reductions that mutate their first argument (the gradient-buffer
	// pattern) must see every input exactly once.
	bufs := make([]*[3]float64, 7)
	for i := range bufs {
		bufs[i] = &[3]float64{float64(i), 1, 0}
	}
	total := TreeReduce(bufs, func(a, b *[3]float64) *[3]float64 {
		a[0] += b[0]
		a[1] += b[1]
		return a
	})
	if total != bufs[0] {
		t.Fatal("in-place reduction should settle in the first slot")
	}
	if total[0] != 21 || total[1] != 7 {
		t.Fatalf("reduced to %v", *total)
	}
}

func TestPoolReusesValues(t *testing.T) {
	var made atomic.Int64
	p := NewPool(func() *int { made.Add(1); return new(int) })
	a := p.Get()
	p.Put(a)
	if b := p.Get(); b != a {
		t.Fatal("pool did not reuse the freed value")
	}
	if made.Load() != 1 {
		t.Fatalf("allocated %d values", made.Load())
	}
	p.Put(a)
	// A value must never be handed to two workers at once: the unguarded
	// increment below is a data race (caught under -race) if it ever is.
	ForLimit(64, 8, func(i int) {
		v := p.Get()
		*v++
		p.Put(v)
	})
}
