package parallel

import (
	"strings"
	"sync/atomic"
	"testing"
)

// recoverWorkerPanic runs fn and returns the *WorkerPanic it panics with
// (nil if it returns normally). Fails the test if fn panics with anything
// else.
func recoverWorkerPanic(t *testing.T, fn func()) (wp *WorkerPanic) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		var ok bool
		if wp, ok = r.(*WorkerPanic); !ok {
			t.Fatalf("panic value %T, want *WorkerPanic", r)
		}
	}()
	fn()
	return nil
}

// TestForLimitPanicInjection: a panicking task must surface on the caller's
// goroutine as a *WorkerPanic carrying the original value and the worker's
// stack, for both the serial and the parallel path. Runs in -short mode so
// `make ci`'s race pass always covers it.
func TestForLimitPanicInjection(t *testing.T) {
	for _, workers := range []int{1, 4} {
		wp := recoverWorkerPanic(t, func() {
			ForLimit(64, workers, func(i int) {
				if i == 13 {
					panic("injected failure")
				}
			})
		})
		if wp == nil {
			t.Fatalf("workers=%d: injected panic did not surface", workers)
		}
		if wp.Value != "injected failure" {
			t.Fatalf("workers=%d: original panic value lost: %v", workers, wp.Value)
		}
		// The stack must be the worker's at the point of panic, i.e. contain
		// this test's task function, not just the re-panic site.
		if !strings.Contains(string(wp.Stack), "TestForLimitPanicInjection") {
			t.Fatalf("workers=%d: stack does not show the failing task:\n%s", workers, wp.Stack)
		}
		if !strings.Contains(wp.Error(), "injected failure") || !strings.Contains(wp.Error(), "worker stack:") {
			t.Fatalf("workers=%d: Error() rendering: %q", workers, wp.Error())
		}
	}
}

// TestPanicHookObservesFirstPanic: the process-wide hook sees exactly one
// panic per loop (first wins), with the original value and worker stack,
// before the panic reaches the caller.
func TestPanicHookObservesFirstPanic(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var calls atomic.Int64
		var hookValue atomic.Value
		SetPanicHook(func(recovered any, stack []byte) {
			calls.Add(1)
			hookValue.Store(recovered)
			if !strings.Contains(string(stack), "TestPanicHookObservesFirstPanic") {
				t.Errorf("hook stack does not show the failing task:\n%s", stack)
			}
		})
		// Leave no process-wide state behind for other tests.
		defer SetPanicHook(nil)

		wp := recoverWorkerPanic(t, func() {
			ForLimit(64, workers, func(i int) {
				panic("boom") // every task panics; only the first may reach the hook
			})
		})
		if wp == nil {
			t.Fatalf("workers=%d: panic did not surface", workers)
		}
		if got := calls.Load(); got != 1 {
			t.Fatalf("workers=%d: hook called %d times, want 1", workers, got)
		}
		if hookValue.Load() != "boom" {
			t.Fatalf("workers=%d: hook saw %v", workers, hookValue.Load())
		}
		SetPanicHook(nil)
	}
}

// TestNestedLoopPanicNotRewrapped: a WorkerPanic crossing an outer parallel
// loop keeps its original stack and does not re-fire the hook.
func TestNestedLoopPanicNotRewrapped(t *testing.T) {
	var calls atomic.Int64
	SetPanicHook(func(any, []byte) { calls.Add(1) })
	defer SetPanicHook(nil)

	wp := recoverWorkerPanic(t, func() {
		ForLimit(4, 2, func(i int) {
			ForLimit(4, 2, func(j int) {
				if i == 0 && j == 0 {
					panic("inner")
				}
			})
		})
	})
	if wp == nil || wp.Value != "inner" {
		t.Fatalf("nested panic lost: %+v", wp)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("hook called %d times across nested loops, want 1", got)
	}
}

// TestMapReducePanicInjection: the derived helpers inherit worker-panic
// semantics.
func TestMapReducePanicInjection(t *testing.T) {
	wp := recoverWorkerPanic(t, func() {
		MapReduce(32, 4, func(i int) float64 {
			if i == 7 {
				panic("map failure")
			}
			return float64(i)
		}, func(a, b float64) float64 { return a + b })
	})
	if wp == nil || wp.Value != "map failure" {
		t.Fatalf("MapReduce panic lost: %+v", wp)
	}
}

// TestForLimitRecoversForNextLoop: after a panicking loop, the package is
// still usable — the next loop runs all iterations.
func TestForLimitRecoversForNextLoop(t *testing.T) {
	recoverWorkerPanic(t, func() {
		ForLimit(8, 4, func(i int) { panic("x") })
	})
	var hits atomic.Int64
	ForLimit(100, 4, func(i int) { hits.Add(1) })
	if hits.Load() != 100 {
		t.Fatalf("loop after panic ran %d/100 iterations", hits.Load())
	}
}
