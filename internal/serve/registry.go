// Package serve is the predictor-as-a-service layer: a long-running HTTP/JSON
// daemon that keeps a registry of trained predictors resident in memory,
// coalesces concurrent /predict requests into batched forwards through the
// pooled prediction contexts, and memoizes (stage graph, model) → latency in
// a bounded LRU — so answering a what-if latency query costs a map hit or a
// share of one batched forward instead of a model load per query.
//
// The package follows the repository's observability contract: every channel
// (per-endpoint latency histograms, LRU and batch counters, accuracy gauges
// fed by requests that attach ground truth, JSONL request events, flight
// recorder breadcrumbs) is nil-safe and observation-only, and every response
// carries the run's deterministic trace id plus a per-request span id.
package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"predtop/internal/obs"
	"predtop/internal/predictor"
)

// ModelExt is the file extension the registry scans for: the gob files
// written by predictor.SaveFile / predtop-train -o.
const ModelExt = ".predtop"

// Metric names exported by the model registry.
const (
	RegistryGenerationMetric = "predtop_serve_registry_generation"
	RegistryModelsMetric     = "predtop_serve_registry_models"
	ReloadsMetric            = "predtop_serve_reloads_total"
)

// Entry is one resident predictor: the registry key (the model file's name
// without extension), its source path, the predictor family it was trained
// as (Tran/GCN/GAT), and the loaded weights.
type Entry struct {
	Key     string
	Path    string
	Family  string
	Trained predictor.Trained
}

// regSnapshot is one immutable generation of the registry. Lookups read the
// whole snapshot through a single atomic pointer, so a concurrent reload is
// always observed as old-or-new, never torn.
type regSnapshot struct {
	gen     uint64
	entries map[string]*Entry
	keys    []string // sorted, for stable /models listings
}

// Registry holds the trained predictors served by the daemon, hot-reloadable
// from its model directory. Load swaps a fully-built immutable snapshot in
// one atomic store and bumps the generation counter; requests in flight keep
// the snapshot they resolved, so a reload never tears a prediction.
type Registry struct {
	dir  string
	snap atomic.Pointer[regSnapshot]

	// loadMu serializes Load calls so two concurrent reloads cannot race the
	// generation bump; readers never take it.
	loadMu sync.Mutex

	genGauge    *obs.Gauge
	modelsGauge *obs.Gauge
	reloadOK    *obs.Counter
	reloadErr   *obs.Counter
}

// NewRegistry returns a registry over dir. No models are loaded yet — call
// Load before serving. metrics may be nil.
func NewRegistry(dir string, metrics *obs.Registry) *Registry {
	r := &Registry{
		dir:         dir,
		genGauge:    metrics.Gauge(RegistryGenerationMetric),
		modelsGauge: metrics.Gauge(RegistryModelsMetric),
		reloadOK:    metrics.CounterWith(ReloadsMetric, obs.Label{Key: "result", Value: "ok"}),
		reloadErr:   metrics.CounterWith(ReloadsMetric, obs.Label{Key: "result", Value: "error"}),
	}
	r.snap.Store(&regSnapshot{entries: map[string]*Entry{}})
	return r
}

// Dir returns the model directory the registry loads from.
func (r *Registry) Dir() string { return r.dir }

// Load scans the model directory and swaps in a new snapshot holding every
// *.predtop file it contains, returning the new generation and model count.
// The swap is all-or-nothing: any unreadable model file fails the whole load
// and leaves the previous snapshot (and generation) serving.
func (r *Registry) Load() (gen uint64, n int, err error) {
	r.loadMu.Lock()
	defer r.loadMu.Unlock()
	dirents, err := os.ReadDir(r.dir)
	if err != nil {
		r.reloadErr.Inc()
		return r.snap.Load().gen, 0, fmt.Errorf("serve: reading model dir: %w", err)
	}
	entries := map[string]*Entry{}
	var keys []string
	for _, de := range dirents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ModelExt) {
			continue
		}
		path := filepath.Join(r.dir, de.Name())
		tr, err := predictor.LoadFile(path)
		if err != nil {
			r.reloadErr.Inc()
			return r.snap.Load().gen, 0, fmt.Errorf("serve: loading %s: %w", path, err)
		}
		key := strings.TrimSuffix(de.Name(), ModelExt)
		entries[key] = &Entry{Key: key, Path: path, Family: tr.Model.Name(), Trained: tr}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	next := &regSnapshot{gen: r.snap.Load().gen + 1, entries: entries, keys: keys}
	r.snap.Store(next)
	r.genGauge.Set(float64(next.gen))
	r.modelsGauge.Set(float64(len(entries)))
	r.reloadOK.Inc()
	return next.gen, len(entries), nil
}

// Lookup resolves key against the current snapshot, returning the entry and
// the snapshot's generation. An empty key resolves to the sole entry when the
// registry holds exactly one model (the convenient single-model deployment).
func (r *Registry) Lookup(key string) (*Entry, uint64, bool) {
	s := r.snap.Load()
	if key == "" && len(s.keys) == 1 {
		key = s.keys[0]
	}
	e, ok := s.entries[key]
	return e, s.gen, ok
}

// Snapshot returns the current entries in key order plus the generation.
func (r *Registry) Snapshot() ([]*Entry, uint64) {
	s := r.snap.Load()
	out := make([]*Entry, 0, len(s.keys))
	for _, k := range s.keys {
		out = append(out, s.entries[k])
	}
	return out, s.gen
}

// Generation returns the current snapshot's generation (0 before the first
// successful Load).
func (r *Registry) Generation() uint64 { return r.snap.Load().gen }

// Len returns the number of resident models.
func (r *Registry) Len() int { return len(r.snap.Load().keys) }
