package serve

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"
)

// FuzzDecodePredictRequest: the /predict decoder must never panic, and every
// request it accepts must satisfy the bounds the server's fast path assumes —
// a known benchmark, a non-empty stage range within the segment cap, and a
// finite positive ground truth.
func FuzzDecodePredictRequest(f *testing.F) {
	f.Add([]byte(`{"bench":"GPT-3","lo":0,"hi":2}`))
	f.Add([]byte(`{"model":"tran","bench":"moe","layers":8,"lo":1,"hi":4}`))
	f.Add([]byte(`{"bench":"GPT-3","lo":0,"hi":2,"ground_truth":0.01,"mesh":"2x2"}`))
	f.Add([]byte(`{"bench":"GPT-3","lo":0,"hi":2,"ground_truth":1e309}`))
	f.Add([]byte(`{"bench":"GPT-3","lo":-1,"hi":1000000}`))
	f.Add([]byte(`{"bench":"resnet","lo":0,"hi":2}`))
	f.Add([]byte(`{"bench":"GPT-3","layers":999,"lo":0,"hi":2}`))
	f.Add([]byte(`{"bench":`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add([]byte(`{"bench":"GPT-3","lo":9007199254740993,"hi":-9007199254740993}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodePredictRequest(data)
		if err != nil {
			return
		}
		if _, ok := benchConfig(req.Bench, req.Layers); !ok {
			t.Fatalf("accepted unknown bench %q", req.Bench)
		}
		if req.Layers < 0 || req.Layers > MaxLayers {
			t.Fatalf("accepted layers %d", req.Layers)
		}
		if req.Lo < 0 || req.Hi <= req.Lo || req.Hi-req.Lo > MaxStageSegments {
			t.Fatalf("accepted stage range [%d, %d)", req.Lo, req.Hi)
		}
		if gt := req.GroundTruth; gt != nil &&
			(math.IsNaN(*gt) || math.IsInf(*gt, 0) || *gt <= 0) {
			t.Fatalf("accepted ground_truth %v", *gt)
		}
	})
}

// TestServeRejectsMalformed: every malformed /predict body is answered with
// a 4xx — never a panic, never a 5xx — and after the whole gauntlet a valid
// query still returns the exact pre-gauntlet value, proving neither the LRU
// nor the coalescer was poisoned.
func TestServeRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	writeTestModel(t, dir, "tran", "tran", 1)
	s := startTestServer(t, dir, nil)

	// Baseline before the gauntlet.
	valid := PredictRequest{Bench: "GPT-3", Layers: testLayers, Lo: 0, Hi: 2}
	base, code := postPredict(t, s.URL(), valid)
	if code != 200 {
		t.Fatalf("baseline query failed: %d", code)
	}

	cases := []struct {
		name string
		body string
	}{
		{"truncated JSON", `{"bench":"GPT-3","lo":0`},
		{"empty body", ``},
		{"JSON null", `null`},
		{"JSON array", `[1,2,3]`},
		{"missing bench", `{"lo":0,"hi":2}`},
		{"unknown bench", `{"bench":"resnet50","lo":0,"hi":2}`},
		{"NaN ground truth", `{"bench":"GPT-3","lo":0,"hi":2,"ground_truth":"NaN"}`},
		{"Inf ground truth", `{"bench":"GPT-3","lo":0,"hi":2,"ground_truth":1e999}`},
		{"negative ground truth", `{"bench":"GPT-3","lo":0,"hi":2,"ground_truth":-0.5}`},
		{"zero ground truth", `{"bench":"GPT-3","lo":0,"hi":2,"ground_truth":0}`},
		{"negative lo", `{"bench":"GPT-3","lo":-3,"hi":2}`},
		{"inverted range", `{"bench":"GPT-3","lo":5,"hi":2}`},
		{"empty range", `{"bench":"GPT-3","lo":2,"hi":2}`},
		{"oversized stage", fmt.Sprintf(`{"bench":"GPT-3","lo":0,"hi":%d}`, MaxStageSegments+2)},
		{"oversized layers", fmt.Sprintf(`{"bench":"GPT-3","layers":%d,"lo":0,"hi":2}`, MaxLayers+1)},
		{"negative layers", `{"bench":"GPT-3","layers":-1,"lo":0,"hi":2}`},
		{"hi past segments", fmt.Sprintf(`{"bench":"GPT-3","layers":%d,"lo":%d,"hi":%d}`,
			testLayers, testLayers+1, testLayers+3)},
		{"unknown model", `{"model":"nope","bench":"GPT-3","lo":0,"hi":2}`},
		{"huge body", `{"bench":"` + strings.Repeat("x", MaxRequestBytes) + `","lo":0,"hi":2}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(s.URL()+"/predict", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode < 400 || resp.StatusCode >= 500 {
			t.Fatalf("%s: status %d, want 4xx", tc.name, resp.StatusCode)
		}
	}
	// GET on a POST endpoint and vice versa.
	if resp, err := http.Get(s.URL() + "/predict"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /predict: %d", resp.StatusCode)
		}
	}
	if resp, err := http.Post(s.URL()+"/models", "application/json", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST /models: %d", resp.StatusCode)
		}
	}

	// The gauntlet must not have poisoned anything: same query, same bits.
	after, code := postPredict(t, s.URL(), valid)
	if code != 200 {
		t.Fatalf("post-gauntlet query failed: %d", code)
	}
	if math.Float64bits(after.LatencySeconds) != math.Float64bits(base.LatencySeconds) {
		t.Fatalf("latency changed after malformed gauntlet: %v != %v",
			after.LatencySeconds, base.LatencySeconds)
	}
	if !after.Cached {
		t.Fatal("post-gauntlet query should hit the memo")
	}
}
