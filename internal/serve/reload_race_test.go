package serve

import (
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"predtop/internal/models"
	"predtop/internal/obs"
	"predtop/internal/predictor"
	"predtop/internal/stage"
)

// TestReloadOldOrNew: requests racing a hot reload must observe either the
// old registry snapshot or the new one, never a mixture — each response's
// generation must be consistent with the model set it was answered from.
// Run with -race in make ci.
func TestReloadOldOrNew(t *testing.T) {
	dir := t.TempDir()
	trA := writeTestModel(t, dir, "m", "tran", 1)
	s := startTestServer(t, dir, nil)

	m := models.Build(testBenchCfg())
	enc := predictor.NewEncoder(m, true)
	e := enc.Encode(stage.Spec{Lo: 0, Hi: 2})
	wantA := trA.PredictEncoded(e)

	// Overwrite m.predtop with a differently-seeded model mid-flight, then
	// hot-reload. Gen 1 answers must match model A, gen ≥ 2 answers model B.
	trB := trainTestModel(t, "tran", 99)
	wantB := trB.PredictEncoded(e)
	if math.Float64bits(wantA) == math.Float64bits(wantB) {
		t.Fatal("test models coincide; pick different seeds")
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, 256)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, code := postPredict(t, s.URL(), PredictRequest{
					Bench: "GPT-3", Layers: testLayers, Lo: 0, Hi: 2,
				})
				if code != 200 {
					errs <- "non-200 during reload race"
					return
				}
				got := math.Float64bits(resp.LatencySeconds)
				switch {
				case resp.Generation == 1 && got != math.Float64bits(wantA):
					errs <- "generation 1 answered with non-A latency (torn reload)"
					return
				case resp.Generation >= 2 && got != math.Float64bits(wantB):
					errs <- "generation >= 2 answered with non-B latency (torn reload)"
					return
				case resp.Generation == 0:
					errs <- "generation 0 response"
					return
				}
			}
		}()
	}
	if err := predictor.SaveFile(filepath.Join(dir, "m"+ModelExt), trB); err != nil {
		t.Fatalf("overwriting model: %v", err)
	}
	if gen, n, err := s.Reload(); err != nil || gen != 2 || n != 1 {
		t.Fatalf("reload: gen=%d n=%d err=%v", gen, n, err)
	}
	// Let the clients observe the new generation, then stop.
	for i := 0; i < 3; i++ {
		resp, _ := postPredict(t, s.URL(), PredictRequest{Bench: "GPT-3", Layers: testLayers, Lo: 0, Hi: 2})
		if resp.Generation >= 2 {
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// Post-reload, the memo was purged: the first answer after gen 2 came
	// from a fresh forward of model B, not a stale gen-1 entry.
	resp, _ := postPredict(t, s.URL(), PredictRequest{Bench: "GPT-3", Layers: testLayers, Lo: 0, Hi: 2})
	if math.Float64bits(resp.LatencySeconds) != math.Float64bits(wantB) {
		t.Fatalf("post-reload latency %v, want model B's %v", resp.LatencySeconds, wantB)
	}
}

// TestReloadFailureKeepsServing: a reload against a corrupt model file must
// keep the old snapshot serving at the old generation.
func TestReloadFailureKeepsServing(t *testing.T) {
	dir := t.TempDir()
	trA := writeTestModel(t, dir, "m", "tran", 1)
	s := startTestServer(t, dir, nil)

	if err := os.WriteFile(filepath.Join(dir, "broken"+ModelExt), []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Reload(); err == nil {
		t.Fatal("reload of corrupt model dir should fail")
	}
	m := models.Build(testBenchCfg())
	enc := predictor.NewEncoder(m, true)
	want := trA.PredictEncoded(enc.Encode(stage.Spec{Lo: 0, Hi: 2}))
	resp, code := postPredict(t, s.URL(), PredictRequest{Bench: "GPT-3", Layers: testLayers, Lo: 0, Hi: 2})
	if code != 200 || resp.Generation != 1 {
		t.Fatalf("after failed reload: code=%d gen=%d, want 200/1", code, resp.Generation)
	}
	if math.Float64bits(resp.LatencySeconds) != math.Float64bits(want) {
		t.Fatal("failed reload changed the serving model")
	}
}

// TestCoalescerBatchesDeterministically: with the dispatcher paused, N
// submitted jobs must queue; starting the dispatcher must then run them as
// exactly one batch of N — the channel-barrier construction that makes
// batching testable without sleeps.
func TestCoalescerBatchesDeterministically(t *testing.T) {
	tr := trainTestModel(t, "tran", 1)
	m := models.Build(testBenchCfg())
	enc := predictor.NewEncoder(m, true)
	specs := []stage.Spec{{Lo: 0, Hi: 2}, {Lo: 1, Hi: 3}, {Lo: 2, Hi: 5}, {Lo: 0, Hi: 4}, {Lo: 3, Hi: 6}}
	want := make([]float64, len(specs))
	for i, sp := range specs {
		want[i] = tr.PredictEncoded(enc.Encode(sp))
	}

	reg := obs.NewRegistry()
	c := newCoalescer(8, 0, 0, reg) // idle: dispatcher not started yet
	var wg sync.WaitGroup
	got := make([]float64, len(specs))
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, e *stage.Encoded) {
			defer wg.Done()
			j, err := c.submit(tr, e)
			if err != nil {
				panic(err)
			}
			got[i] = j.out
		}(i, enc.Encode(sp))
	}
	// Barrier: wait until all jobs are queued on the paused channel, then
	// start the dispatcher — its drain pass must collect all of them.
	for len(c.ch) < len(specs) {
		runtime.Gosched()
	}
	c.start()
	wg.Wait()
	c.close()

	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("job %d: batched %v != direct %v", i, got[i], want[i])
		}
	}
	snap := metricValues(reg)
	if snap[BatchesMetric] != 1 {
		t.Fatalf("batches = %v, want exactly 1", snap[BatchesMetric])
	}
	if snap[BatchedRequestsMetric] != float64(len(specs)) {
		t.Fatalf("batched requests = %v, want %d", snap[BatchedRequestsMetric], len(specs))
	}
	if snap[BatchMaxMetric] != float64(len(specs)) {
		t.Fatalf("max batch = %v, want %d", snap[BatchMaxMetric], len(specs))
	}
}

// TestCoalescerClosedSubmit: submit after close errors instead of hanging or
// panicking.
func TestCoalescerClosedSubmit(t *testing.T) {
	tr := trainTestModel(t, "tran", 1)
	m := models.Build(testBenchCfg())
	enc := predictor.NewEncoder(m, true)
	c := newCoalescer(4, 0, 0, nil)
	c.start()
	c.close()
	if _, err := c.submit(tr, enc.Encode(stage.Spec{Lo: 0, Hi: 2})); err == nil {
		t.Fatal("submit after close should error")
	}
}

// TestCoalescerStress: many goroutines hammering submit while batching is
// live — every result must still be bitwise correct (run with -race).
func TestCoalescerStress(t *testing.T) {
	tr := trainTestModel(t, "tran", 1)
	m := models.Build(testBenchCfg())
	enc := predictor.NewEncoder(m, true)
	specs := []stage.Spec{{Lo: 0, Hi: 2}, {Lo: 1, Hi: 3}, {Lo: 2, Hi: 5}}
	want := make([]float64, len(specs))
	es := make([]*stage.Encoded, len(specs))
	for i, sp := range specs {
		es[i] = enc.Encode(sp)
		want[i] = tr.PredictEncoded(es[i])
	}
	c := newCoalescer(8, 0, 2, obs.NewRegistry())
	c.start()
	defer c.close()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				i := (g + rep) % len(specs)
				j, err := c.submit(tr, es[i])
				if err != nil {
					panic(err)
				}
				if math.Float64bits(j.out) != math.Float64bits(want[i]) {
					panic("stress batch diverged from direct prediction")
				}
			}
		}(g)
	}
	wg.Wait()
}

// metricValues flattens a registry snapshot to name → value (last labeled
// variant wins; fine for the unlabeled counters the tests read).
func metricValues(r *obs.Registry) map[string]float64 {
	out := map[string]float64{}
	for _, met := range r.Snapshot() {
		out[met.Name] = met.Value
	}
	return out
}
