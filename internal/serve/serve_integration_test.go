package serve

import (
	"math"
	"sync"
	"testing"

	"predtop/internal/models"
	"predtop/internal/obs"
	"predtop/internal/predictor"
	"predtop/internal/stage"
)

// TestServeEndToEnd is the serving integration test: a daemon on an ephemeral
// port holding two predictor families answers a burst of concurrent
// mixed-family requests, and every response must be bitwise identical to
// calling PredictEncoded directly on the same model file — batching,
// coalescing, and memoization are not allowed to change a single bit.
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	trTran := writeTestModel(t, dir, "tran", "tran", 1)
	trGCN := writeTestModel(t, dir, "gcn", "gcn", 2)
	s := startTestServer(t, dir, nil)

	// The expected table, computed directly — the determinism baseline.
	m := models.Build(testBenchCfg())
	enc := predictor.NewEncoder(m, true)
	type query struct {
		model  string
		tr     predictor.Trained
		lo, hi int
	}
	var queries []query
	for _, mt := range []struct {
		key string
		tr  predictor.Trained
	}{{"tran", trTran}, {"gcn", trGCN}} {
		for _, sp := range []stage.Spec{{Lo: 0, Hi: 2}, {Lo: 1, Hi: 4}, {Lo: 3, Hi: 6}} {
			queries = append(queries, query{mt.key, mt.tr, sp.Lo, sp.Hi})
		}
	}
	want := make([]float64, len(queries))
	for i, q := range queries {
		want[i] = q.tr.PredictEncoded(enc.Encode(stage.Spec{Lo: q.lo, Hi: q.hi}))
		if math.IsNaN(want[i]) || math.IsInf(want[i], 0) {
			t.Fatalf("direct prediction %d not finite: %v", i, want[i])
		}
	}

	// Burst: every query issued from 4 goroutines concurrently, so requests
	// for both families interleave through the coalescer.
	const reps = 4
	var wg sync.WaitGroup
	errs := make(chan string, reps*len(queries))
	for rep := 0; rep < reps; rep++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range queries {
				resp, code := postPredict(t, s.URL(), PredictRequest{
					Model: q.model, Bench: "GPT-3", Layers: testLayers, Lo: q.lo, Hi: q.hi,
				})
				if code != 200 {
					errs <- "non-200 response"
					continue
				}
				if math.Float64bits(resp.LatencySeconds) != math.Float64bits(want[i]) {
					errs <- "served latency diverged from direct PredictEncoded"
				}
				if resp.Model != q.model || resp.Generation != 1 {
					errs <- "wrong model or generation in response"
				}
				if resp.TraceID == "" || resp.SpanID == "" {
					errs <- "missing trace/span id"
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// Families must be reported per model.
	if resp, _ := postPredict(t, s.URL(), PredictRequest{Model: "tran", Bench: "GPT-3", Layers: testLayers, Lo: 0, Hi: 2}); resp.Family != "Tran" {
		t.Fatalf("tran family = %q", resp.Family)
	}
	if resp, _ := postPredict(t, s.URL(), PredictRequest{Model: "gcn", Bench: "GPT-3", Layers: testLayers, Lo: 0, Hi: 2}); resp.Family != "GCN" {
		t.Fatalf("gcn family = %q", resp.Family)
	}

	// Determinism unaffected by serving: the direct table still reproduces
	// after the whole burst ran through the shared context pools.
	for i, q := range queries {
		again := q.tr.PredictEncoded(enc.Encode(stage.Spec{Lo: q.lo, Hi: q.hi}))
		if math.Float64bits(again) != math.Float64bits(want[i]) {
			t.Fatalf("direct prediction %d changed after serving: %v != %v", i, again, want[i])
		}
	}

	// Memoization: a repeat of the first query must be served from the LRU.
	resp, code := postPredict(t, s.URL(), PredictRequest{
		Model: "tran", Bench: "GPT-3", Layers: testLayers, Lo: 0, Hi: 2,
	})
	if code != 200 || !resp.Cached {
		t.Fatalf("repeat query not cached (code=%d cached=%v)", code, resp.Cached)
	}
	if math.Float64bits(resp.LatencySeconds) != math.Float64bits(want[0]) {
		t.Fatalf("cached latency diverged: %v != %v", resp.LatencySeconds, want[0])
	}
}

// TestServeGroundTruthAccuracy: a request attaching ground_truth gets a
// relative error back and feeds the accuracy monitor gauges.
func TestServeGroundTruthAccuracy(t *testing.T) {
	dir := t.TempDir()
	tr := writeTestModel(t, dir, "tran", "tran", 1)
	s := startTestServer(t, dir, nil)

	m := models.Build(testBenchCfg())
	enc := predictor.NewEncoder(m, true)
	pred := tr.PredictEncoded(enc.Encode(stage.Spec{Lo: 0, Hi: 2}))
	gt := pred * 1.25 // 20% relative error by construction

	resp, code := postPredict(t, s.URL(), PredictRequest{
		Bench: "GPT-3", Layers: testLayers, Lo: 0, Hi: 2, GroundTruth: &gt, Mesh: "2x2",
	})
	if code != 200 {
		t.Fatalf("code = %d", code)
	}
	if resp.RelErrPct == nil {
		t.Fatal("no rel_err_pct in response")
	}
	if math.Abs(*resp.RelErrPct-20) > 1e-9 {
		t.Fatalf("rel_err_pct = %v, want 20", *resp.RelErrPct)
	}
	// One observation must be visible in the accuracy monitor.
	stats, ok := s.acc.Stats(obs.AccuracyKey{Family: resp.Family, Mesh: "2x2", Op: resp.Bench})
	if !ok || stats.N != 1 {
		t.Fatalf("accuracy monitor: ok=%v stats=%+v", ok, stats)
	}
}

// TestServeSingleModelDefault: with one resident model, requests may omit
// the model key.
func TestServeSingleModelDefault(t *testing.T) {
	dir := t.TempDir()
	writeTestModel(t, dir, "only", "tran", 1)
	s := startTestServer(t, dir, nil)
	resp, code := postPredict(t, s.URL(), PredictRequest{Bench: "GPT-3", Layers: testLayers, Lo: 0, Hi: 2})
	if code != 200 || resp.Model != "only" {
		t.Fatalf("code=%d model=%q", code, resp.Model)
	}
}
