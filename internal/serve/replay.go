package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"predtop/internal/models"
	"predtop/internal/obs"
)

// ReplayConfig drives a synthetic load replay against a running daemon: a
// deterministic stream of /predict queries drawn from the benchmark stage
// universe, issued by a pool of concurrent clients.
type ReplayConfig struct {
	// URL is the daemon's base URL, e.g. "http://127.0.0.1:9400".
	URL string
	// Queries is the total number of /predict calls (default 1000).
	Queries int
	// Concurrency is the client pool size (default 8).
	Concurrency int
	// Seed makes the query stream reproducible.
	Seed int64
	// Benches is the benchmark rotation (default GPT-3 only).
	Benches []string
	// Layers overrides the benchmark depth for every query (default 8,
	// keeping replay graphs small; 0 = the paper's full depth).
	Layers int
	// MaxLen bounds the sampled stage length in segments (default 3).
	MaxLen int
	// Model pins the registry key each query names (default "": the
	// daemon's sole model).
	Model string
	// GroundTruthFrac is the fraction of queries carrying a synthetic
	// ground_truth (exercising the accuracy-monitor path). Default 0.
	GroundTruthFrac float64
	// Client is the HTTP client (default a pooled client with a 30s
	// timeout).
	Client *http.Client
}

// ReplayResult summarizes one replay: client-side throughput and latency
// percentiles plus the server-side batching and cache counters scraped from
// /metrics after the run.
type ReplayResult struct {
	Queries     int     `json:"queries"`
	Errors      int     `json:"errors"`
	WallSeconds float64 `json:"wall_seconds"`
	QPS         float64 `json:"qps"`
	P50ms       float64 `json:"p50_ms"`
	P95ms       float64 `json:"p95_ms"`
	P99ms       float64 `json:"p99_ms"`

	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Batches      int64   `json:"batches"`
	MeanBatch    float64 `json:"mean_batch"`
	MaxBatch     float64 `json:"max_batch"`
	Generation   float64 `json:"generation"`

	// SLO verdicts scraped from the daemon's predtop_slo_* series. The -1
	// sentinels mean the daemon exports no SLO tracker (started without
	// objectives) — distinct from a healthy 0.
	SLOBreached float64 `json:"slo_breached"` // 1 in breach, 0 ok, -1 not configured
	SLOBreaches float64 `json:"slo_breaches"` // ok→breach edges so far, -1 not configured
	SLOBurn1m   float64 `json:"slo_burn_1m"`  // 1m-window error-budget burn rate
	SLOP991m    float64 `json:"slo_p99_1m_s"` // 1m-window p99 latency estimate
}

// SLOConfigured reports whether the scraped daemon exports an SLO tracker.
func (r *ReplayResult) SLOConfigured() bool { return r.SLOBreached >= 0 }

// Replay runs the load driver to completion and returns the summary. The
// only error path is a malformed config or an unreachable daemon on the very
// first query; per-query failures are counted in Errors instead.
func Replay(cfg ReplayConfig) (*ReplayResult, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("serve: replay needs a daemon URL")
	}
	if cfg.Queries <= 0 {
		cfg.Queries = 1000
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if len(cfg.Benches) == 0 {
		cfg.Benches = []string{"GPT-3"}
	}
	if cfg.Layers == 0 {
		cfg.Layers = 8
	}
	if cfg.MaxLen <= 0 {
		cfg.MaxLen = 3
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}

	bodies, err := replayStream(cfg)
	if err != nil {
		return nil, err
	}

	durs := make([]float64, len(bodies))
	var next atomic.Int64
	var errs atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(bodies) {
					return
				}
				t0 := time.Now()
				resp, err := cfg.Client.Post(cfg.URL+"/predict", "application/json",
					bytes.NewReader(bodies[i]))
				durs[i] = time.Since(t0).Seconds()
				if err != nil {
					errs.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	sort.Float64s(durs)
	res := &ReplayResult{
		Queries:     len(bodies),
		Errors:      int(errs.Load()),
		WallSeconds: wall,
		QPS:         float64(len(bodies)) / wall,
		P50ms:       percentile(durs, 0.50) * 1e3,
		P95ms:       percentile(durs, 0.95) * 1e3,
		P99ms:       percentile(durs, 0.99) * 1e3,
	}
	if err := scrapeMetrics(cfg.Client, cfg.URL, res); err != nil {
		return res, fmt.Errorf("serve: scraping /metrics after replay: %w", err)
	}
	return res, nil
}

// replayStream pregenerates the deterministic query bodies.
func replayStream(cfg ReplayConfig) ([][]byte, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	segs := map[string]int{}
	for _, b := range cfg.Benches {
		mc, ok := benchConfig(b, cfg.Layers)
		if !ok {
			return nil, fmt.Errorf("serve: unknown bench %q in replay config", b)
		}
		segs[b] = models.Build(mc).NumSegments()
	}
	bodies := make([][]byte, cfg.Queries)
	for i := range bodies {
		bench := cfg.Benches[rng.Intn(len(cfg.Benches))]
		n := segs[bench]
		length := 1 + rng.Intn(cfg.MaxLen)
		if length > n {
			length = n
		}
		lo := rng.Intn(n - length + 1)
		req := PredictRequest{
			Model: cfg.Model, Bench: bench, Layers: cfg.Layers,
			Lo: lo, Hi: lo + length,
		}
		if cfg.GroundTruthFrac > 0 && rng.Float64() < cfg.GroundTruthFrac {
			gt := 0.01 + rng.Float64()
			req.GroundTruth = &gt
			req.Mesh = "2x2"
		}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	return bodies, nil
}

// percentile reads q from an already-sorted sample (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// scrapeMetrics fills the server-side counters of res from GET /metrics.
func scrapeMetrics(client *http.Client, url string, res *ReplayResult) error {
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	res.SLOBreached, res.SLOBreaches = -1, -1 // until the series prove otherwise
	var batchSum, batchCount float64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := promSample(line)
		if !ok {
			continue
		}
		// The SLO gauges are labeled by window (and quantile); promSample
		// strips labels, so the 1m-window series are matched on the full
		// rendered prefix instead.
		switch {
		case strings.HasPrefix(line, obs.SLOBurnRateMetric+`{window="1m0s"}`):
			res.SLOBurn1m = val
		case strings.HasPrefix(line, obs.SLOLatencyMetric+`{quantile="0.99",window="1m0s"}`):
			res.SLOP991m = val
		}
		switch name {
		case CacheHitsMetric:
			res.CacheHits = int64(val)
		case CacheMissesMetric:
			res.CacheMisses = int64(val)
		case BatchesMetric:
			res.Batches = int64(val)
		case BatchSizeMetric + "_sum":
			batchSum = val
		case BatchSizeMetric + "_count":
			batchCount = val
		case BatchMaxMetric:
			res.MaxBatch = val
		case RegistryGenerationMetric:
			res.Generation = val
		case obs.SLOBreachGauge:
			res.SLOBreached = val
		case obs.SLOBreachesMetric:
			res.SLOBreaches = val
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if batchCount > 0 {
		res.MeanBatch = batchSum / batchCount
	}
	if total := res.CacheHits + res.CacheMisses; total > 0 {
		res.CacheHitRate = float64(res.CacheHits) / float64(total)
	}
	return nil
}

// promSample parses one exposition sample line into (bare name, value),
// dropping any label set.
func promSample(line string) (string, float64, bool) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", 0, false
	}
	val, err := strconv.ParseFloat(line[sp+1:], 64)
	if err != nil {
		return "", 0, false
	}
	name := line[:sp]
	if b := strings.IndexByte(name, '{'); b >= 0 {
		name = name[:b]
	}
	return name, val, true
}
