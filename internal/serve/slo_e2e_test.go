package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"predtop/internal/obs"
)

// jsonlRecords parses a JSONL buffer into per-event record lists.
func jsonlRecords(t *testing.T, buf *bytes.Buffer) map[string][]map[string]any {
	t.Helper()
	out := map[string][]map[string]any{}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		ev, _ := rec["event"].(string)
		out[ev] = append(out[ev], rec)
	}
	return out
}

// TestSLOBreachIncidentBundle is the end-to-end incident drill: an
// artificially slowed forward path pushes /predict latency over a tight p99
// objective, which must trip exactly one edge-triggered breach and produce a
// correlated evidence bundle — a flight-recorder dump and a CPU profile on
// disk, plus one slo_breach JSONL record whose worst-offender span ids all
// appear in the sampled access log.
func TestSLOBreachIncidentBundle(t *testing.T) {
	dir := t.TempDir()
	incidents := t.TempDir()
	writeTestModel(t, dir, "tran", "tran", 1)

	var sinkBuf, accBuf bytes.Buffer
	accSink := obs.NewSink(&accBuf)
	flight := obs.NewFlightRecorder(128)
	s := startTestServer(t, dir, func(cfg *Config) {
		cfg.Sink = obs.NewSink(&sinkBuf)
		cfg.AccessLog = accSink
		cfg.Flight = flight
		cfg.SLOP99 = 5 * time.Millisecond
		cfg.SLOMinSamples = 3
		cfg.IncidentDir = incidents
		cfg.ProfileWindow = 20 * time.Millisecond
	})
	// Slow every batched forward well past the objective. Setting the hook
	// happens-before the first submit's channel send, so the dispatcher (which
	// reads it only after receiving a job) observes it race-free.
	s.coal.beforeForward = func(int) { time.Sleep(15 * time.Millisecond) }

	// Distinct stages so nothing memo-hits; every request rides a slowed
	// forward. MinSamples=3 arms the breach on the third request.
	for lo := 0; lo < 6; lo++ {
		if _, code := postPredict(t, s.URL(), PredictRequest{
			Bench: "GPT-3", Layers: testLayers, Lo: lo, Hi: lo + 1,
		}); code != 200 {
			t.Fatalf("query %d: code %d", lo, code)
		}
	}
	s.incidents.drain()

	// Exactly one ok→breach edge despite six violating requests.
	if n := s.slo.Breaches(); n != 1 {
		t.Fatalf("breaches = %d, want exactly 1", n)
	}
	if !s.slo.Breached() {
		t.Fatal("tracker should still be in breach")
	}

	if err := accSink.Flush(); err != nil {
		t.Fatalf("flushing access log: %v", err)
	}
	recs := jsonlRecords(t, &sinkBuf)
	breaches := recs["slo_breach"]
	if len(breaches) != 1 {
		t.Fatalf("slo_breach records = %d, want exactly 1", len(breaches))
	}
	br := breaches[0]

	// Both artifacts exist and are non-empty, and the record names them.
	flightPath, _ := br["flight_dump"].(string)
	profPath, _ := br["cpu_profile"].(string)
	for what, p := range map[string]string{"flight_dump": flightPath, "cpu_profile": profPath} {
		if p == "" {
			t.Fatalf("slo_breach record missing %s (record: %v)", what, br)
		}
		if filepath.Dir(p) != incidents {
			t.Errorf("%s %q not under incident dir %q", what, p, incidents)
		}
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("stat %s: %v", what, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s %s is empty", what, p)
		}
	}
	// The flight dump is the serving timeline: it must carry predict notes.
	fdump, err := os.ReadFile(flightPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(fdump, []byte("predict")) {
		t.Error("flight dump carries no predict events")
	}

	// Correlation: every worst-offender span id in the breach record appears
	// as a request_span_id in the access log (all six requests were over the
	// slow threshold, so all were sampled).
	worst, _ := br["worst"].([]any)
	if len(worst) == 0 {
		t.Fatal("slo_breach record has no worst offenders")
	}
	accRecs := jsonlRecords(t, &accBuf)["access"]
	if len(accRecs) == 0 {
		t.Fatal("no access records sampled")
	}
	accSpans := map[string]bool{}
	for _, a := range accRecs {
		if id, _ := a["request_span_id"].(string); id != "" {
			accSpans[id] = true
		}
		if reason, _ := a["sampled"].(string); reason != "slow" {
			t.Errorf("access record sampled=%q, want slow (record: %v)", reason, a)
		}
	}
	for _, wr := range worst {
		m, _ := wr.(map[string]any)
		id, _ := m["span_id"].(string)
		if id == "" || !accSpans[id] {
			t.Errorf("worst offender span %q has no access-log record", id)
		}
	}

	// Phase breakdown: an uncached slowed request shows the forward phase
	// dominating, with all five phases present and child span ids set.
	wantPhases := []string{"enqueue", "coalesce_wait", "batch_assembly", "forward", "respond"}
	phases, _ := accRecs[0]["phases"].([]any)
	if len(phases) != len(wantPhases) {
		t.Fatalf("access record phases = %v, want %v", phases, wantPhases)
	}
	var forwardUs float64
	for i, p := range phases {
		m, _ := p.(map[string]any)
		if name, _ := m["name"].(string); name != wantPhases[i] {
			t.Errorf("phase %d = %q, want %q", i, m["name"], wantPhases[i])
		}
		if id, _ := m["span_id"].(string); len(id) != 16 {
			t.Errorf("phase %v has bad span id %q", m["name"], m["span_id"])
		}
		if m["name"] == "forward" {
			forwardUs, _ = m["us"].(float64)
		}
	}
	if forwardUs < 10e3 {
		t.Errorf("forward phase %vµs, want ≥ 10ms (the injected slowdown)", forwardUs)
	}

	// The exposition reflects the breach: gauge up, counter at one edge, and
	// the request histogram carries trace exemplars.
	resp, err := http.Get(s.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	exposition := string(raw)
	for _, want := range []string{
		"predtop_slo_breach 1",
		"predtop_slo_breach_total 1",
		`predtop_slo_latency_seconds{quantile="0.99",window="1m0s"}`,
		`predtop_slo_burn_rate{window="5m0s"}`,
		`predtop_slo_error_rate{window="1h0m0s"}`,
		`# {trace_id="`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// /statusz renders the live verdict with the offenders' trace ids.
	resp, err = http.Get(s.URL() + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	page := string(raw)
	for _, want := range []string{"predtop-serve status", "state: BREACHED", "worst recent requests:", "queue depth:"} {
		if !strings.Contains(page, want) {
			t.Errorf("/statusz missing %q in:\n%s", want, page)
		}
	}
}

// TestSLOBreachSecondEdge: after the tracker recovers (injected clock idling
// past every window), a second excursion fires a second edge and a second
// slo_breach record — the serving layer must not wedge after one incident.
func TestSLOBreachSecondEdge(t *testing.T) {
	dir := t.TempDir()
	writeTestModel(t, dir, "tran", "tran", 1)

	// The injected clock is read by handler goroutines and advanced by the
	// test; an atomic keeps the -race run clean (a plain variable would race —
	// the socket between client and server is no happens-before edge).
	var clockNS atomic.Int64
	clockNS.Store(time.Unix(1000, 0).UnixNano())
	var sinkBuf bytes.Buffer
	s := startTestServer(t, dir, func(cfg *Config) {
		cfg.Sink = obs.NewSink(&sinkBuf)
		cfg.SLOP99 = time.Nanosecond // every request violates
		cfg.SLOMinSamples = 2
		cfg.sloNow = func() time.Time { return time.Unix(0, clockNS.Load()) }
	})

	post := func(lo int) {
		t.Helper()
		if _, code := postPredict(t, s.URL(), PredictRequest{
			Bench: "GPT-3", Layers: testLayers, Lo: lo, Hi: lo + 1,
		}); code != 200 {
			t.Fatalf("query %d failed", lo)
		}
	}
	post(0)
	post(1)
	s.incidents.drain()
	if n := s.slo.Breaches(); n != 1 {
		t.Fatalf("first excursion: breaches = %d, want 1", n)
	}

	// Idle past every window: the tracker recovers and re-arms.
	clockNS.Add(int64(2 * time.Hour))
	if snap := s.slo.Snapshot(); snap.Breached {
		t.Fatal("tracker should have recovered after idle windows")
	}
	post(2)
	post(3)
	s.incidents.drain()
	if n := s.slo.Breaches(); n != 2 {
		t.Fatalf("second excursion: breaches = %d, want 2", n)
	}
	if got := bytes.Count(sinkBuf.Bytes(), []byte(`"event":"slo_breach"`)); got != 2 {
		t.Fatalf("slo_breach records = %d, want 2", got)
	}
}

// TestAccessLogHeadSampling: without an SLO, the default sampler still logs
// the first requests ("head"), including the memo_hit phase for cached
// answers.
func TestAccessLogHeadSampling(t *testing.T) {
	dir := t.TempDir()
	writeTestModel(t, dir, "tran", "tran", 1)
	var accBuf bytes.Buffer
	acc := obs.NewSink(&accBuf)
	s := startTestServer(t, dir, func(cfg *Config) {
		cfg.AccessLog = acc
	})
	for _, lo := range []int{0, 0} { // miss then memo hit
		if _, code := postPredict(t, s.URL(), PredictRequest{
			Bench: "GPT-3", Layers: testLayers, Lo: lo, Hi: lo + 2,
		}); code != 200 {
			t.Fatalf("query failed: %d", code)
		}
	}
	if err := acc.Flush(); err != nil {
		t.Fatal(err)
	}
	recs := jsonlRecords(t, &accBuf)["access"]
	if len(recs) != 2 {
		t.Fatalf("access records = %d, want 2 (head sampling)", len(recs))
	}
	for i, r := range recs {
		if reason, _ := r["sampled"].(string); reason != "head" {
			t.Errorf("record %d sampled=%q, want head", i, reason)
		}
	}
	if cached, _ := recs[1]["cached"].(bool); !cached {
		t.Error("second record should be a memo hit")
	}
	phases, _ := recs[1]["phases"].([]any)
	if len(phases) != 1 {
		t.Fatalf("memo hit phases = %v, want exactly [memo_hit]", phases)
	}
	if m, _ := phases[0].(map[string]any); m["name"] != "memo_hit" {
		t.Errorf("memo hit phase = %v", m)
	}
}
