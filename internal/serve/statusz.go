package serve

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"predtop/internal/obs"
)

// statuszData is everything the /statusz page renders, gathered by
// Server.statuszData and laid out by renderStatusz. The split keeps the
// renderer a pure function of its input, so a golden test can pin the page
// byte-for-byte without a live daemon.
type statuszData struct {
	Addr          string
	ModelDir      string
	Models        int
	Generation    uint64
	UptimeSeconds int64

	QueueDepth    int64
	BatchMax      int64
	Batches       int64
	BatchDist     []statuszBucket
	BatchOverflow int64
	CacheHits     int64
	CacheMisses   int64

	SLOEnabled bool
	SLO        obs.SLOSnapshot
	Incidents  int64
}

// statuszBucket is one batch-size histogram bucket (only non-empty buckets
// appear, in ascending bound order — the registry snapshot's own order).
type statuszBucket struct {
	LE    float64
	Count int64
}

// gfloat renders v the same way the Prometheus exposition does: shortest
// round-trip form, integers without a decimal point.
func gfloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderStatusz writes the human-readable status page: identity and uptime,
// the SLO verdict table with per-window quantiles and burn rates, the worst
// recent requests with their trace ids (the handles into the access log and
// the flight recorder), and the queue/batch/cache counters.
func renderStatusz(w io.Writer, d statuszData) {
	fmt.Fprintf(w, "predtop-serve status\n\n")
	fmt.Fprintf(w, "addr:       %s\n", d.Addr)
	fmt.Fprintf(w, "model dir:  %s\n", d.ModelDir)
	fmt.Fprintf(w, "models:     %d (generation %d)\n", d.Models, d.Generation)
	fmt.Fprintf(w, "uptime:     %ds\n\n", d.UptimeSeconds)

	if !d.SLOEnabled {
		fmt.Fprintf(w, "slo: disabled (start with -slo-p99 / -slo-err)\n\n")
	} else {
		fmt.Fprintf(w, "slo: p99 objective %ss, error budget %s\n",
			gfloat(d.SLO.P99Objective), gfloat(d.SLO.ErrObjective))
		state := "ok"
		if d.SLO.Breached {
			state = "BREACHED"
		}
		fmt.Fprintf(w, "state: %s (%d breach(es), %d incident bundle(s))\n",
			state, d.SLO.Breaches, d.Incidents)
		fmt.Fprintf(w, "%-8s %7s %7s %6s %10s %10s %10s %9s %7s\n",
			"window", "total", "errors", "slow", "p50_s", "p95_s", "p99_s", "err_rate", "burn")
		for _, ws := range d.SLO.Windows {
			fmt.Fprintf(w, "%-8s %7d %7d %6d %10s %10s %10s %9s %7s\n",
				ws.Window, ws.Total, ws.Errors, ws.Slow,
				gfloat(ws.P50), gfloat(ws.P95), gfloat(ws.P99),
				gfloat(ws.ErrRate), gfloat(ws.BurnRate))
		}
		if len(d.SLO.Worst) > 0 {
			fmt.Fprintf(w, "worst recent requests:\n")
			for _, wr := range d.SLO.Worst {
				fmt.Fprintf(w, "  %ss  trace=%s span=%s\n",
					gfloat(wr.LatencySeconds), wr.TraceID, wr.SpanID)
			}
		}
		fmt.Fprintf(w, "\n")
	}

	fmt.Fprintf(w, "queue depth: %d\n", d.QueueDepth)
	fmt.Fprintf(w, "batch max:   %d\n", d.BatchMax)
	fmt.Fprintf(w, "batches:     %d\n", d.Batches)
	if len(d.BatchDist) > 0 || d.BatchOverflow > 0 {
		fmt.Fprintf(w, "batch sizes:\n")
		for _, b := range d.BatchDist {
			fmt.Fprintf(w, "  le %-6s %d\n", gfloat(b.LE), b.Count)
		}
		if d.BatchOverflow > 0 {
			fmt.Fprintf(w, "  overflow  %d\n", d.BatchOverflow)
		}
	}
	fmt.Fprintf(w, "cache:       %d hit(s), %d miss(es)\n", d.CacheHits, d.CacheMisses)
}

// statuszData gathers the live page inputs: registry state, the SLO
// snapshot, and the queue/batch/cache instruments read back from the metrics
// registry snapshot (nil registry → zeros, like everything else).
func (s *Server) statuszData() statuszData {
	entries, gen := s.registry.Snapshot()
	d := statuszData{
		Addr:          s.Addr(),
		ModelDir:      s.cfg.ModelDir,
		Models:        len(entries),
		Generation:    gen,
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
		SLOEnabled:    s.slo != nil,
		SLO:           s.slo.Snapshot(),
		Incidents:     s.incidents.count(),
	}
	for _, m := range s.cfg.Metrics.Snapshot() {
		if m.Labels != "" {
			continue
		}
		switch m.Name {
		case QueueDepthMetric:
			d.QueueDepth = int64(m.Value)
		case BatchMaxMetric:
			d.BatchMax = int64(m.Value)
		case BatchesMetric:
			d.Batches = int64(m.Value)
		case CacheHitsMetric:
			d.CacheHits = int64(m.Value)
		case CacheMissesMetric:
			d.CacheMisses = int64(m.Value)
		case BatchSizeMetric:
			for _, b := range m.Buckets {
				d.BatchDist = append(d.BatchDist, statuszBucket{LE: b.LE, Count: b.Count})
			}
			d.BatchOverflow = m.Overflow
		}
	}
	return d
}

// handleStatusz answers GET /statusz with the rendered page.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request, _ *reqInfo) int {
	if r.Method != http.MethodGet {
		return writeErr(w, http.StatusMethodNotAllowed, "GET only")
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	renderStatusz(w, s.statuszData())
	return http.StatusOK
}
