package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"predtop/internal/obs"
)

// incidentCapture turns SLO breach edges into evidence bundles. Each
// ok→breach transition produces, under IncidentDir, a flight-recorder dump
// (what the daemon was doing in the seconds before the breach) and a
// bounded-window CPU profile (what it was burning time on during it), plus
// one {"event":"slo_breach"} JSONL record naming both artifacts and the worst
// offenders' trace ids — the same ids the access log and the latency
// histogram exemplars carry, so one grep joins the whole incident.
//
// Capture runs on its own goroutine: the request that crossed the line is
// never blocked on file IO or the profile window. A nil capture is inert.
type incidentCapture struct {
	dir    string
	window time.Duration
	flight *obs.FlightRecorder
	sink   *obs.Sink
	log    *obs.Logger

	seq atomic.Int64
	mu  sync.Mutex // serializes captures: at most one CPU profile at a time
	wg  sync.WaitGroup
}

func newIncidentCapture(dir string, window time.Duration, flight *obs.FlightRecorder, sink *obs.Sink, log *obs.Logger) *incidentCapture {
	if window <= 0 {
		window = 250 * time.Millisecond
	}
	return &incidentCapture{dir: dir, window: window, flight: flight, sink: sink, log: log}
}

// onBreach is the SLOTracker edge callback.
func (ic *incidentCapture) onBreach(snap obs.SLOSnapshot) {
	if ic == nil {
		return
	}
	n := ic.seq.Add(1)
	ic.wg.Add(1)
	go func() {
		defer ic.wg.Done()
		ic.capture(n, snap)
	}()
}

// capture writes one incident bundle. Artifact failures degrade to error
// fields on the slo_breach record rather than losing the record itself.
func (ic *incidentCapture) capture(n int64, snap obs.SLOSnapshot) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	rec := map[string]any{
		"event": "slo_breach", "incident": n, "breaches": snap.Breaches,
		"p99_objective_s": snap.P99Objective, "err_objective": snap.ErrObjective,
		"windows": snap.Windows, "worst": snap.Worst,
	}
	if ic.dir != "" {
		if err := os.MkdirAll(ic.dir, 0o755); err != nil {
			rec["dir_error"] = err.Error()
		} else {
			base := filepath.Join(ic.dir, fmt.Sprintf("incident-%03d", n))
			if p, err := ic.dumpFlight(base); err != nil {
				rec["flight_error"] = err.Error()
			} else if p != "" {
				rec["flight_dump"] = p
			}
			if p, err := ic.profile(base); err != nil {
				rec["profile_error"] = err.Error()
			} else {
				rec["cpu_profile"] = p
			}
		}
	}
	ic.sink.Emit(rec)
	_ = ic.sink.Flush() // the bundle must be on disk even if the daemon dies next
	ic.log.Printf("slo breach #%d: %d worst request(s) captured under %s",
		n, len(snap.Worst), ic.dir)
}

// dumpFlight writes the flight-recorder ring to <base>-flight.jsonl. Returns
// "" with no error when no recorder is attached.
func (ic *incidentCapture) dumpFlight(base string) (string, error) {
	if ic.flight == nil {
		return "", nil
	}
	p := base + "-flight.jsonl"
	f, err := os.Create(p)
	if err != nil {
		return "", err
	}
	ic.flight.Dump(f)
	return p, f.Close()
}

// profile collects a CPU profile over the configured window into
// <base>-cpu.pprof. A concurrent profiler (e.g. a live /debug/pprof/profile
// scrape) makes StartCPUProfile fail; that surfaces as profile_error on the
// record instead of aborting the bundle.
func (ic *incidentCapture) profile(base string) (string, error) {
	p := base + "-cpu.pprof"
	f, err := os.Create(p)
	if err != nil {
		return "", err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(p)
		return "", err
	}
	time.Sleep(ic.window)
	pprof.StopCPUProfile()
	return p, f.Close()
}

// drain blocks until every in-flight capture finished — called by
// Server.Close so a breach near shutdown still gets its bundle, and by tests.
func (ic *incidentCapture) drain() {
	if ic == nil {
		return
	}
	ic.wg.Wait()
}

// count returns how many breaches have started capture (0 on nil).
func (ic *incidentCapture) count() int64 {
	if ic == nil {
		return 0
	}
	return ic.seq.Load()
}
